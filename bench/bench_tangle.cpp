// Extension bench -- the paper's footnote 1 names IOTA as the other DAG
// approach. Regenerates the tangle's characteristic curves: tip-count
// equilibrium under load, confirmation confidence vs age (the DAG
// counterpart of §IV-A's depth table), and double-spend starvation vs the
// tip-selection bias alpha.
#include <iostream>
#include <string>

#include "core/json_report.hpp"
#include "core/table.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "support/rng.hpp"
#include "tangle/tangle.hpp"

using namespace dlt;
using namespace dlt::core;
using namespace dlt::tangle;

namespace {

Hash256 payload_of(int i) {
  return crypto::Sha256::digest(as_bytes("p" + std::to_string(i)));
}

/// Grows a tangle where each "round" sees `per_round` arrivals that pick
/// tips from the PREVIOUS round's view (models issuance latency h: txs
/// arriving together cannot see each other -- the whitepaper's L ~ 2*l*h).
Tangle grow_rounds(double alpha, int rounds, int per_round, Rng& rng,
                   std::vector<TxHash>* track = nullptr,
                   obs::Probe probe = {}) {
  TangleParams p;
  p.work_bits = 2;
  p.alpha = alpha;
  Tangle tangle(p);
  tangle.set_probe(probe);
  auto issuer = crypto::KeyPair::from_seed(7);
  int seq = 0;
  for (int r = 0; r < rounds; ++r) {
    std::vector<TangleTx> batch;
    for (int i = 0; i < per_round; ++i) {
      const TxHash trunk = tangle.select_tip(rng);
      const TxHash branch = tangle.select_tip(rng);
      batch.push_back(make_tx(tangle, issuer, trunk, branch,
                              payload_of(seq), seq, rng));
      ++seq;
    }
    for (const TangleTx& tx : batch) {
      if (tangle.attach(tx).ok() && track && track->size() < 4)
        track->push_back(tx.hash());
    }
  }
  return tangle;
}

}  // namespace

int main() {
  std::cout << "=== Extension / footnote 1: the IOTA-style tangle ===\n\n";
  Rng rng(2024);

  // The tangle has no cluster driver; a local registry fed through
  // obs::Probe tallies attach accounting for the report's `metrics`
  // section.
  obs::MetricsRegistry registry;
  JsonArray tips_json, confidence_json, alpha_json;

  std::cout << "Tip-count equilibrium vs arrival rate (txs per latency "
               "window; whitepaper: L ~ 2*lambda*h):\n";
  Table t1({"arrivals/round", "txs", "tips at end"});
  for (int per_round : {1, 2, 4, 8, 16}) {
    Tangle tangle = grow_rounds(0.05, 60, per_round, rng, nullptr,
                                obs::Probe{&registry, nullptr, {}});
    t1.row({std::to_string(per_round), std::to_string(tangle.size()),
            std::to_string(tangle.tip_count())});
    JsonObject row;
    row.put("arrivals_per_round", per_round);
    row.put("txs", static_cast<std::uint64_t>(tangle.size()));
    row.put("tips", static_cast<std::uint64_t>(tangle.tip_count()));
    tips_json.push_raw(row.to_string());
  }
  t1.print();
  std::cout << "Heavier concurrent traffic sustains proportionally more "
               "tips -- the tangle widens instead of queueing (contrast "
               "the §VI-A mempool backlogs).\n";

  std::cout << "\nConfirmation confidence vs age (the DAG analogue of "
               "§IV-A's confirmation-depth table):\n";
  {
    TangleParams p;
    p.work_bits = 2;
    p.alpha = 0.05;
    Tangle tangle(p);
    auto issuer = crypto::KeyPair::from_seed(9);
    int seq = 100;
    // Busy tangle first (8 concurrent issuers per round => many tips),
    // then attach the target like any other transaction.
    auto round = [&](int arrivals) {
      std::vector<TangleTx> batch;
      for (int i = 0; i < arrivals; ++i, ++seq) {
        batch.push_back(make_tx(tangle, issuer, tangle.select_tip(rng),
                                tangle.select_tip(rng), payload_of(seq),
                                seq, rng));
      }
      for (const TangleTx& tx : batch) (void)tangle.attach(tx);
    };
    for (int r = 0; r < 8; ++r) round(8);
    TangleTx target = make_tx(tangle, issuer, tangle.select_tip(rng),
                              tangle.select_tip(rng), payload_of(1), 1,
                              rng);
    (void)tangle.attach(target);

    Table t2({"txs after target", "tip-fraction conf", "walk conf"});
    int grown = 0;
    for (int checkpoint : {0, 8, 32, 64, 128}) {
      while (grown < checkpoint) {
        round(8);
        grown += 8;
      }
      const double tip_conf = tangle.confirmation_confidence(target.hash());
      const double walk_conf =
          tangle.walk_confidence(target.hash(), rng, 128);
      t2.row({std::to_string(checkpoint), fmt(tip_conf, 3),
              fmt(walk_conf, 3)});
      JsonObject row;
      row.put("txs_after_target", checkpoint);
      row.put("tip_fraction_confidence", tip_conf);
      row.put("walk_confidence", walk_conf);
      confidence_json.push_raw(row.to_string());
    }
    t2.print();
    std::cout << "Confidence starts below 1 (concurrent tips do not see "
                 "the target) and converges as new traffic approves it -- "
                 "the probabilistic analogue of waiting 6 blocks.\n";
  }

  std::cout << "\nDouble-spend starvation vs tip-selection bias alpha "
               "(150 honest txs after the conflict):\n";
  Table t3({"alpha", "winner weight", "loser weight", "winner walk conf",
            "loser walk conf"});
  for (double alpha : {0.0, 0.05, 0.2, 0.5, 1.0}) {
    TangleParams p;
    p.work_bits = 2;
    p.alpha = alpha;
    Tangle tangle(p);
    auto issuer = crypto::KeyPair::from_seed(11);
    const Hash256 coin = crypto::Sha256::digest(as_bytes("coin"));
    TangleTx s1 = make_tx(tangle, issuer, tangle.genesis(),
                          tangle.genesis(), payload_of(1), 1, rng, coin);
    (void)tangle.attach(s1);
    TangleTx s2 = make_tx(tangle, issuer, tangle.genesis(),
                          tangle.genesis(), payload_of(2), 2, rng, coin);
    (void)tangle.attach(s2);
    int seq = 10;
    for (int i = 0; i < 150; ++i, ++seq) {
      const TxHash trunk = tangle.select_tip(rng);
      const TxHash branch = tangle.select_tip(rng);
      TangleTx tx = make_tx(tangle, issuer, trunk, branch, payload_of(seq),
                            seq, rng);
      if (!tangle.attach(tx).ok()) {
        TangleTx retry = make_tx(tangle, issuer, trunk, trunk,
                                 payload_of(seq), seq, rng);
        (void)tangle.attach(retry);
      }
    }
    const auto w1 = tangle.cumulative_weight(s1.hash());
    const auto w2 = tangle.cumulative_weight(s2.hash());
    const double c1 = tangle.walk_confidence(s1.hash(), rng, 128);
    const double c2 = tangle.walk_confidence(s2.hash(), rng, 128);
    const bool s1_wins = w1 >= w2;
    t3.row({fmt(alpha, 2), std::to_string(s1_wins ? w1 : w2),
            std::to_string(s1_wins ? w2 : w1),
            fmt(s1_wins ? c1 : c2, 3), fmt(s1_wins ? c2 : c1, 3)});
    JsonObject row;
    row.put("alpha", alpha);
    row.put("winner_weight",
            static_cast<std::uint64_t>(s1_wins ? w1 : w2));
    row.put("loser_weight", static_cast<std::uint64_t>(s1_wins ? w2 : w1));
    row.put("winner_walk_confidence", s1_wins ? c1 : c2);
    row.put("loser_walk_confidence", s1_wins ? c2 : c1);
    alpha_json.push_raw(row.to_string());
  }
  t3.print();
  std::cout << "alpha = 0 (uniform walk) keeps both sides of a double "
               "spend alive indefinitely; a biased walk starves the "
               "lighter cone, resolving the conflict -- the tangle's "
               "counterpart of the §III/§IV fork-resolution mechanisms "
               "(longest chain, weighted votes).\n";

  JsonObject report;
  report.put("bench", "tangle");
  report.put_raw("tip_equilibrium", tips_json.to_string());
  report.put_raw("confidence_vs_age", confidence_json.to_string());
  report.put_raw("alpha_sweep", alpha_json.to_string());
  report.put_raw("metrics", registry.to_json().to_string());
  write_bench_report("tangle", report);
  std::cout << "\nWrote BENCH_tangle.json\n";
  return 0;
}
