// Ablation studies for the design choices DESIGN.md calls out:
//  A1. Lattice vote quorum fraction -- latency vs safety margin.
//  A2. Lattice election duration -- conflict convergence vs rollback churn.
//  A3. Gossip topology -- propagation structure vs PoW fork rate.
// These parameters are fixed constants in the real systems; sweeping them
// shows why the deployed values sit where they do.
#include <iostream>
#include <string>

#include "core/chain_cluster.hpp"
#include "core/json_report.hpp"
#include "core/lattice_cluster.hpp"
#include "core/table.hpp"

using namespace dlt;
using namespace dlt::core;

namespace {

struct QuorumRun {
  double confirm_median = 0;
  std::uint64_t confirmed = 0;
  double safety_margin = 0;  // quorum - largest single rep weight share
  std::string metrics_json;
};

QuorumRun run_quorum(double quorum) {
  LatticeClusterConfig cfg;
  cfg.node_count = 6;
  cfg.representative_count = 4;
  cfg.account_count = 16;
  cfg.params.work_bits = 2;
  cfg.params.vote_quorum = quorum;
  cfg.link = net::LinkParams{0.08, 0.02, 1e8};
  cfg.seed = 41;
  LatticeCluster cluster(cfg);
  cluster.fund_accounts();

  Rng wl(8);
  WorkloadConfig w;
  w.account_count = 16;
  w.tx_rate = 2.0;
  w.duration = 40.0;
  cluster.schedule_workload(generate_payments(w, wl));
  cluster.run_for(80.0);

  QuorumRun out;
  const auto& conf = cluster.node(0).confirmations();
  out.confirmed = conf.blocks_confirmed;
  out.confirm_median =
      conf.time_to_confirm.count() ? conf.time_to_confirm.median() : 0;

  // Largest representative's share of total weight: a quorum below it
  // means one rep could confirm alone (no fault tolerance).
  const auto& ledger = cluster.node(0).ledger();
  lattice::Amount largest = 0;
  for (std::size_t n = 0; n < cluster.node_count(); ++n) {
    const auto* rep = cluster.node(n).representative_key();
    if (rep) largest = std::max(largest, ledger.weight_of(rep->account_id()));
  }
  out.safety_margin =
      quorum - static_cast<double>(largest) /
                   static_cast<double>(ledger.total_weight());
  out.metrics_json = cluster.metrics_json().to_string();
  return out;
}

struct ElectionRun {
  std::uint64_t rollbacks = 0;
  bool converged = false;
  std::uint64_t elections = 0;
};

/// A double-send lands while the representatives are partitioned from
/// each other for 3 s. Elections shorter than the outage close on partial
/// tallies (plurality), so sides pick different winners and must roll
/// back once full votes flow; longer elections wait the outage out.
ElectionRun run_election(double duration) {
  LatticeClusterConfig cfg;
  cfg.node_count = 5;
  cfg.representative_count = 3;
  cfg.account_count = 8;
  cfg.params.work_bits = 2;
  cfg.params.election_duration = duration;
  cfg.link = net::LinkParams{0.05, 0.01, 1e8};
  cfg.seed = 42;
  LatticeCluster cluster(cfg);
  cluster.fund_accounts();

  // Conflict + 3-second representative partition, repeated three times.
  for (double at : {5.0, 15.0, 25.0}) {
    cluster.simulation().schedule_at(
        cluster.simulation().now() + at, [&cluster, at] {
          auto& owner = cluster.owner_of(0);
          const auto& key = cluster.account(0);
          const auto* info = owner.ledger().account(key.account_id());
          if (!info || info->head().balance < 10) return;
          Rng r(static_cast<std::uint64_t>(at) + 77);
          lattice::LatticeBlock s1, s2;
          for (auto* s : {&s1, &s2}) {
            s->type = lattice::BlockType::kSend;
            s->account = key.account_id();
            s->previous = info->head().hash();
            s->representative = info->head().representative;
          }
          s1.balance = info->head().balance - 3;
          s1.link = cluster.account(1).account_id();
          s2.balance = info->head().balance - 7;
          s2.link = cluster.account(2).account_id();
          for (auto* s : {&s1, &s2}) {
            s->solve_work(2);
            s->sign(key, r);
          }
          // Split the reps: nodes {0,1,2} vs {3,4}; one candidate lands
          // on each side, then the wall comes down for 3 s.
          cluster.network().set_partitions(
              {{cluster.node(0).id(), cluster.node(1).id(),
                cluster.node(2).id()},
               {cluster.node(3).id(), cluster.node(4).id()}});
          (void)cluster.node(1).publish(s1);
          (void)cluster.node(3).publish(s2);
        });
    cluster.simulation().schedule_at(
        cluster.simulation().now() + at + 3.0,
        [&cluster] { cluster.network().heal(); });
  }
  cluster.run_for(90.0);
  // A fresh payment after quiescence carries any missing history across
  // (gap backfill) so the convergence check is meaningful.
  (void)cluster.submit_payment(0, 3, 1);
  cluster.run_for(20.0);

  ElectionRun out;
  for (std::size_t n = 0; n < cluster.node_count(); ++n) {
    out.rollbacks +=
        cluster.node(n).confirmations().elections_lost_rollbacks;
    out.elections += cluster.node(n).confirmations().elections_started;
  }
  out.converged = cluster.converged();
  return out;
}

struct TopoRun {
  std::uint64_t orphaned = 0;
  std::uint64_t blocks = 0;
  std::uint64_t messages = 0;
};

TopoRun run_topology(Topology topo) {
  ChainClusterConfig cfg;
  cfg.params = chain::bitcoin_like();
  cfg.params.verify_pow = false;
  cfg.params.retarget_window = 0;
  cfg.params.block_interval = 10.0;
  cfg.params.initial_difficulty = 1e6;
  cfg.node_count = 16;
  cfg.miner_count = 16;
  cfg.total_hashrate = 1e6 / 10.0;
  cfg.account_count = 4;
  cfg.topology = topo;
  cfg.random_degree = 2;
  cfg.link = net::LinkParams{0.4, 0.1, 1e9};
  cfg.seed = 43;
  ChainCluster cluster(cfg);
  cluster.start();
  cluster.run_for(10.0 * 300);

  RunMetrics m = cluster.metrics();
  return TopoRun{m.orphaned_blocks, m.blocks_produced, m.messages};
}

}  // namespace

int main() {
  std::cout << "=== Ablations: why the deployed constants sit where they "
               "do ===\n\n";

  JsonArray quorum_json, election_json, topo_json;
  std::string metrics_section;

  std::cout << "A1. Lattice vote quorum (Nano deploys ~ online-weight "
               "majority; paper §IV-B 'majority vote'):\n";
  Table t1({"quorum", "confirmed", "median s",
            "margin over biggest rep"});
  for (double q : {0.34, 0.50, 0.67, 0.90}) {
    QuorumRun r = run_quorum(q);
    if (metrics_section.empty()) metrics_section = r.metrics_json;
    t1.row({fmt(q, 2), std::to_string(r.confirmed),
            fmt(r.confirm_median, 3), fmt(r.safety_margin, 2)});
    JsonObject row;
    row.put("quorum", q);
    row.put("confirmed", r.confirmed);
    row.put("confirm_median_s", r.confirm_median);
    row.put("safety_margin", r.safety_margin);
    quorum_json.push_raw(row.to_string());
  }
  t1.print();
  std::cout << "Low quorum = fast but a single large representative can "
               "decide alone (negative margin); high quorum = every "
               "straggler vote matters, latency rises and liveness "
               "depends on near-total rep availability.\n";

  std::cout << "\nA2. Election duration vs a 3 s representative "
               "partition during each conflict:\n";
  Table t2({"election s", "elections", "rollbacks (all nodes)",
            "converged"});
  for (double d : {0.5, 2.0, 6.0, 12.0}) {
    ElectionRun r = run_election(d);
    t2.row({fmt(d, 1), std::to_string(r.elections),
            std::to_string(r.rollbacks), r.converged ? "yes" : "NO"});
    JsonObject row;
    row.put("election_duration_s", d);
    row.put("elections", r.elections);
    row.put("rollbacks", r.rollbacks);
    row.put("converged", r.converged);
    election_json.push_raw(row.to_string());
  }
  t2.print();
  std::cout << "Elections that close during the outage decide on partial "
               "tallies, so the minority side adopts the wrong winner and "
               "must roll back (6 rollbacks = 2 cut-off nodes x 3 "
               "conflicts) once confirmation quorum flows after healing. "
               "The system converges at every duration because vote "
               "rebroadcast + frontier sync deliver the full tally "
               "eventually; the duration only shifts WHEN the losing side "
               "pays its rollback cost. Normal traffic is unaffected "
               "(quorum short-circuits elections).\n";

  std::cout << "\nA3. Gossip topology at fixed miner count (16) and delay "
               "(0.4 s, 10 s blocks):\n";
  Table t3({"topology", "blocks", "orphaned", "orphan rate", "messages"});
  const char* names[] = {"complete", "random(d=2)", "small-world"};
  Topology topos[] = {Topology::kComplete, Topology::kRandom,
                      Topology::kSmallWorld};
  for (int i = 0; i < 3; ++i) {
    TopoRun r = run_topology(topos[i]);
    t3.row({names[i], std::to_string(r.blocks), std::to_string(r.orphaned),
            fmt(r.blocks ? static_cast<double>(r.orphaned) /
                               static_cast<double>(r.blocks)
                         : 0.0,
                4),
            std::to_string(r.messages)});
    JsonObject row;
    row.put("topology", names[i]);
    row.put("blocks", r.blocks);
    row.put("orphaned", r.orphaned);
    row.put("messages", r.messages);
    topo_json.push_raw(row.to_string());
  }
  t3.print();
  std::cout << "Sparser overlays propagate blocks over more hops: the "
               "effective delay/interval ratio grows and so does the fork "
               "rate (Fig. 4's mechanism) -- but message cost drops; the "
               "deployed systems pick relay-dense topologies for exactly "
               "this reason.\n";

  JsonObject report;
  report.put("bench", "ablation");
  report.put_raw("quorum_sweep", quorum_json.to_string());
  report.put_raw("election_sweep", election_json.to_string());
  report.put_raw("topology_sweep", topo_json.to_string());
  report.put_raw("metrics", metrics_section);
  write_bench_report("ablation", report);
  std::cout << "\nWrote BENCH_ablation.json\n";
  return 0;
}
