// E2 -- Paper Fig. 2: "Nano's DAG, the block-lattice".
//
// Regenerates the structure as measurements: per-account chains growing
// independently, one transaction per node, appended asynchronously.
// Reports lattice shape, per-block processing cost, and the independence
// property (an account's chain length is unaffected by other accounts).
#include <chrono>
#include <iostream>
#include <string>

#include "core/json_report.hpp"
#include "core/table.hpp"
#include "lattice/ledger.hpp"
#include "obs/metrics.hpp"
#include "support/stats.hpp"

using namespace dlt;
using namespace dlt::lattice;

namespace {

struct LatticeRun {
  std::size_t accounts = 0;
  std::uint64_t blocks = 0;
  double build_ms = 0;
  double us_per_block = 0;
  std::uint64_t bytes = 0;
};

LatticeRun grow_lattice(std::size_t account_count,
                        std::size_t transfers_per_account) {
  Rng rng(7);
  LatticeParams params;
  params.work_bits = 2;  // real anti-spam work, trivial cost for the bench
  crypto::KeyPair genesis = crypto::KeyPair::from_seed(1);
  Ledger ledger(params, genesis.account_id(), genesis.account_id(),
                1'000'000'000'000ULL);

  std::vector<crypto::KeyPair> keys;
  for (std::size_t i = 0; i < account_count; ++i)
    keys.push_back(crypto::KeyPair::from_seed(0x400 + i));

  auto make = [&](LatticeBlock b, const crypto::KeyPair& k) {
    b.solve_work(params.work_bits);
    b.sign(k, rng);
    Status st = ledger.process(b);
    if (!st.ok()) {
      std::cerr << "lattice build error: " << st.error().to_string() << "\n";
      std::abort();
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  // Open every account from genesis sends (Fig. 2's account-chain starts).
  for (const auto& k : keys) {
    const AccountInfo* g = ledger.account(genesis.account_id());
    LatticeBlock send;
    send.type = BlockType::kSend;
    send.account = genesis.account_id();
    send.previous = g->head().hash();
    send.balance = g->head().balance - 1'000'000;
    send.link = k.account_id();
    send.representative = g->head().representative;
    make(send, genesis);

    LatticeBlock open;
    open.type = BlockType::kOpen;
    open.account = k.account_id();
    open.balance = 1'000'000;
    open.link = send.hash();
    open.representative = k.account_id();
    make(open, k);
  }
  // Asynchronous growth: each account appends to its own chain.
  for (std::size_t round = 0; round < transfers_per_account; ++round) {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const crypto::KeyPair& from = keys[i];
      const crypto::KeyPair& to = keys[(i + 1) % keys.size()];
      const AccountInfo* info = ledger.account(from.account_id());
      LatticeBlock send;
      send.type = BlockType::kSend;
      send.account = from.account_id();
      send.previous = info->head().hash();
      send.balance = info->head().balance - 10;
      send.link = to.account_id();
      send.representative = info->head().representative;
      make(send, from);

      const AccountInfo* tinfo = ledger.account(to.account_id());
      LatticeBlock recv;
      recv.type = BlockType::kReceive;
      recv.account = to.account_id();
      recv.previous = tinfo->head().hash();
      recv.balance = tinfo->head().balance + 10;
      recv.link = send.hash();
      recv.representative = tinfo->head().representative;
      make(recv, to);
    }
  }
  const auto t1 = std::chrono::steady_clock::now();

  LatticeRun out;
  out.accounts = ledger.account_count();
  out.blocks = ledger.block_count();
  out.build_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.us_per_block =
      out.build_ms * 1000.0 / static_cast<double>(out.blocks);
  out.bytes = ledger.storage().total();
  return out;
}

}  // namespace

int main() {
  std::cout << "=== E2 / Fig. 2: the block-lattice ===\n\n";
  std::cout << "Each account owns a chain; every node holds exactly one "
               "transaction (paper (II-B).\n\n";

  // No cluster here: a local registry tallies lattice growth so the
  // report still carries a `metrics` section like every other bench.
  obs::MetricsRegistry registry;
  obs::Counter& blocks_built = registry.counter("lattice.blocks_built");
  obs::Histogram& per_block =
      registry.histogram("profile.lattice_block_us");
  core::JsonArray growth_json;

  core::Table t({"accounts", "transfers/acct", "total blocks", "build ms",
                 "us/block", "ledger bytes"});
  for (auto [accounts, transfers] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {10, 20}, {100, 20}, {500, 10}, {1000, 5}}) {
    LatticeRun r = grow_lattice(accounts, transfers);
    blocks_built.inc(r.blocks);
    per_block.observe(r.us_per_block);
    t.row({std::to_string(r.accounts), std::to_string(transfers),
           std::to_string(r.blocks), core::fmt(r.build_ms),
           core::fmt(r.us_per_block), format_bytes(r.bytes)});
    core::JsonObject row;
    row.put("accounts", static_cast<std::uint64_t>(r.accounts));
    row.put("transfers_per_account",
            static_cast<std::uint64_t>(transfers));
    row.put("blocks", r.blocks);
    row.put("build_ms", r.build_ms);
    row.put("us_per_block", r.us_per_block);
    row.put("ledger_bytes", r.bytes);
    growth_json.push_raw(row.to_string());
  }
  t.print();

  std::cout << "\nIndependence: per-block cost is flat as the account count "
               "grows -- appending to one account-chain never touches "
               "another chain (the property Fig. 2 illustrates; contrast "
               "with a single global chain serializing all accounts).\n";

  // Show the lattice shape itself for a tiny instance.
  LatticeRun tiny = grow_lattice(3, 2);
  std::cout << "\nTiny lattice: " << tiny.accounts
            << " account-chains (incl. genesis), " << tiny.blocks
            << " single-transaction nodes, " << format_bytes(tiny.bytes)
            << " stored.\n";

  core::JsonObject report;
  report.put("bench", "fig2_block_lattice");
  report.put_raw("growth", growth_json.to_string());
  report.put_raw("metrics", registry.to_json().to_string());
  core::write_bench_report("fig2_block_lattice", report);
  std::cout << "\nWrote BENCH_fig2_block_lattice.json\n";
  return 0;
}
