// Hot-path crypto measurement harness.
//
// Two layers of evidence for the caching overhaul:
//  1. Micro: ops/sec for the primitives (SHA-256, tagged hashing, digest
//     memoization, PoW midstate, signature-cache hits vs real verifies).
//  2. Macro: the same saturated 8-node ChainCluster run on one seed,
//     caches off / on / on + verify threads / on + sharded validation
//     pipeline. Final metrics must be bit-identical across all four (the
//     caches and the pipeline are semantics-preserving); wall-clock and
//     sigcache hit rate quantify the win.
//  3. Parallel validation: a 2000-signature block connected serially vs
//     through the sharded pipeline (cold sigcache per pass), recording
//     the block-connect speedup and `parallel.validate.*` counters.
//  4. State sharding: the same fully-disjoint block applied serially vs
//     by conflict groups (DLT_PARALLEL_STATE semantics), recording the
//     `parallel.state.*` counters and requiring an identical tip.
//
// Results also land in BENCH_hotpath.json for tooling.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "chain/blockchain.hpp"
#include "chain/transaction.hpp"
#include "core/chain_cluster.hpp"
#include "core/json_report.hpp"
#include "core/table.hpp"
#include "crypto/digest_cache.hpp"
#include "crypto/hash.hpp"
#include "crypto/hashcash.hpp"
#include "crypto/keys.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sigcache.hpp"
#include "obs/metrics.hpp"
#include "support/thread_pool.hpp"

using namespace dlt;
using namespace dlt::core;

namespace {

template <typename Fn>
double time_seconds(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// --------------------------------------------------------------------------
// Micro benchmarks.

struct MicroResult {
  std::string name;
  double ops_per_sec = 0;
};

MicroResult micro_sha256() {
  const Bytes chunk(1 << 20, Byte{0x5a});
  constexpr int kChunks = 64;
  volatile std::uint8_t sink = 0;
  const double secs = time_seconds([&] {
    for (int i = 0; i < kChunks; ++i)
      sink = static_cast<std::uint8_t>(
          crypto::Sha256::digest(chunk).bytes()[0]);
  });
  (void)sink;
  return {"sha256_mb_per_sec", kChunks / secs};
}

MicroResult micro_tagged_hash() {
  const Bytes payload(100, Byte{0x11});
  constexpr int kIters = 200'000;
  volatile std::uint8_t sink = 0;
  const double secs = time_seconds([&] {
    for (int i = 0; i < kIters; ++i)
      sink = static_cast<std::uint8_t>(
          crypto::tagged_hash("bench/tag", payload).bytes()[0]);
  });
  (void)sink;
  return {"tagged_hash_ops_per_sec", kIters / secs};
}

chain::UtxoTransaction sample_tx() {
  Rng rng(1);
  const auto key = crypto::KeyPair::from_seed(1);
  chain::UtxoTransaction tx;
  for (std::uint32_t i = 0; i < 2; ++i)
    tx.inputs.push_back(chain::TxIn{
        chain::Outpoint{crypto::Sha256::digest(as_bytes("coin")),
                        i},
        key.public_key(),
        {}});
  tx.outputs.push_back(chain::TxOut{100, key.account_id()});
  tx.outputs.push_back(chain::TxOut{50, key.account_id()});
  tx.sign_all({key, key}, rng);
  return tx;
}

std::pair<MicroResult, MicroResult> micro_tx_id() {
  const chain::UtxoTransaction tx = sample_tx();
  constexpr int kIters = 500'000;
  volatile std::uint8_t sink = 0;

  crypto::DigestCache::set_enabled(false);
  const double uncached = time_seconds([&] {
    for (int i = 0; i < kIters; ++i)
      sink = static_cast<std::uint8_t>(tx.id().bytes()[0]);
  });
  crypto::DigestCache::set_enabled(true);
  const double memoized = time_seconds([&] {
    for (int i = 0; i < kIters; ++i)
      sink = static_cast<std::uint8_t>(tx.id().bytes()[0]);
  });
  (void)sink;
  return {{"tx_id_uncached_ops_per_sec", kIters / uncached},
          {"tx_id_memoized_ops_per_sec", kIters / memoized}};
}

std::pair<MicroResult, MicroResult> micro_pow() {
  const Bytes payload(80, Byte{0x77});
  constexpr int kIters = 300'000;
  volatile std::uint8_t sink = 0;
  const double full = time_seconds([&] {
    for (int i = 0; i < kIters; ++i)
      sink = static_cast<std::uint8_t>(
          crypto::pow_hash(payload, static_cast<std::uint64_t>(i))
              .bytes()[0]);
  });
  const crypto::PowMidstate mid(payload);
  const double tail = time_seconds([&] {
    for (int i = 0; i < kIters; ++i)
      sink = static_cast<std::uint8_t>(
          mid.digest(static_cast<std::uint64_t>(i)).bytes()[0]);
  });
  (void)sink;
  return {{"pow_hash_ops_per_sec", kIters / full},
          {"pow_midstate_ops_per_sec", kIters / tail}};
}

std::pair<MicroResult, MicroResult> micro_sig_verify() {
  Rng rng(2);
  const auto key = crypto::KeyPair::from_seed(2);
  const Hash256 sighash = crypto::Sha256::digest(as_bytes("m"));
  const crypto::Signature sig = key.sign(sighash.bytes(), rng);
  constexpr int kIters = 200'000;
  volatile bool sink = false;

  const double real = time_seconds([&] {
    for (int i = 0; i < kIters; ++i)
      sink = crypto::verify_cached(nullptr, key.public_key(), sighash, sig);
  });
  crypto::SignatureCache cache;
  cache.insert(key.public_key(), sighash, sig);
  const double cached = time_seconds([&] {
    for (int i = 0; i < kIters; ++i)
      sink = crypto::verify_cached(&cache, key.public_key(), sighash, sig);
  });
  (void)sink;
  return {{"sig_verify_ops_per_sec", kIters / real},
          {"sig_cache_hit_ops_per_sec", kIters / cached}};
}

MicroResult micro_mining() {
  const Bytes payload(80, Byte{0x3c});
  std::uint64_t tries = 0;
  const double secs = time_seconds([&] {
    // Several independent 14-bit puzzles; tries accumulate.
    for (std::uint64_t s = 0; s < 8; ++s) {
      auto sol = crypto::solve(payload, 14, s * 0x100000);
      if (sol) tries += sol->tries;
    }
  });
  return {"mining_hashes_per_sec", static_cast<double>(tries) / secs};
}

// --------------------------------------------------------------------------
// Macro: saturated 8-node cluster, caches on vs off.

std::string fingerprint(const RunMetrics& m) {
  std::ostringstream os;
  os << m.submitted << "/" << m.rejected << "/" << m.included << "/"
     << m.confirmed << "/" << m.pending_end << "/" << m.blocks_produced
     << "/" << m.reorgs << "/" << m.orphaned_blocks << "/" << m.stored_bytes
     << "/" << m.messages << "/" << m.message_bytes;
  return os.str();
}

struct ClusterRun {
  double wall = 0;
  std::string fingerprint;
  std::uint64_t included = 0;
  double hit_rate = 0;
  std::uint64_t sig_checks = 0;
  std::string metrics_json;
  std::string trace_summary_json;
};

ClusterRun run_cluster(bool caches_on, std::size_t verify_threads,
                       bool pipeline = false) {
  ChainClusterConfig cfg;
  cfg.params = chain::bitcoin_like();
  cfg.params.verify_pow = false;
  cfg.params.block_interval = 20.0;
  cfg.params.retarget_window = 0;
  cfg.params.initial_difficulty = 1e6;
  cfg.node_count = 8;
  cfg.miner_count = 2;
  cfg.total_hashrate = 1e6 / 20.0;
  cfg.account_count = 20;
  // Coins sized so a typical payment (amount+fee in [2500, 4000]) gathers
  // two inputs: two signature checks per payment without a long wallet
  // scan per submission.
  cfg.initial_balance = 2'500;
  cfg.genesis_outputs_per_account = 640;
  cfg.seed = 99;
  cfg.crypto.shared_sigcache = caches_on;
  cfg.crypto.verify_threads = verify_threads;
  cfg.crypto.parallel_validation = pipeline;

  crypto::DigestCache::set_enabled(caches_on);
  ClusterRun out;
  out.wall = time_seconds([&] {
    ChainCluster cluster(cfg);
    cluster.start();
    Rng wl_rng(12);
    WorkloadConfig wl;
    wl.account_count = 20;
    wl.tx_rate = 25.0;
    wl.duration = 240.0;
    wl.min_amount = 1500;
    wl.max_amount = 3000;
    cluster.schedule_workload(generate_payments(wl, wl_rng));
    cluster.run_for(300.0);

    const RunMetrics m = cluster.metrics();
    out.fingerprint = fingerprint(m);
    out.included = m.included;
    if (const crypto::SignatureCache* sc = cluster.sigcache()) {
      out.hit_rate = sc->stats().hit_rate();
      out.sig_checks = sc->stats().hits + sc->stats().misses;
    }
    out.metrics_json = cluster.metrics_json().to_string();
    out.trace_summary_json = cluster.trace_summary_json().to_string();
  });
  crypto::DigestCache::set_enabled(true);
  return out;
}

// --------------------------------------------------------------------------
// Parallel validation: one big block connected serially vs through the
// sharded pipeline. Fresh chain + cold signature cache per pass so every
// signature is a real group verify; the block object is reused so digest
// memos are warm in both modes -- the timed difference is the sharding.

struct ConnectResult {
  double serial_ms = 0;    // wall per connect
  double parallel_ms = 0;
  double speedup = 0;
  std::size_t workers = 0;
  std::size_t cores = 0;   // hardware threads actually available
  std::size_t checks_per_block = 0;
  std::uint64_t pv_batches = 0;
  std::uint64_t pv_checks = 0;
};

/// A sealed 1-block chain fixture: `payments` single-input payments, each
/// spending its own genesis coin (fully disjoint — one conflict group per
/// payment, one signature per payment). Shared by the parallel-validation
/// and state-sharding connect benches.
struct BigBlockFixture {
  chain::ChainParams params;
  chain::GenesisSpec genesis;
  chain::Block block;
  std::size_t payments = 0;
};

BigBlockFixture make_big_block(std::size_t tx_count) {
  BigBlockFixture fx;
  fx.params = chain::bitcoin_like();
  fx.params.initial_difficulty = 4.0;
  fx.params.retarget_window = 0;

  const auto payer = crypto::KeyPair::from_seed(0xbeef);
  const auto payee = crypto::KeyPair::from_seed(0xcafe);
  for (std::size_t i = 0; i < tx_count; ++i)
    fx.genesis.allocations.emplace_back(payer.account_id(), 10'000);

  // Build and seal the block once against a reference instance; every
  // timed pass replays it into a fresh chain with the identical genesis.
  chain::Blockchain ref(fx.params, fx.genesis);
  std::vector<chain::Outpoint> coins;
  ref.utxo_set().for_each_owned(
      payer.account_id(),
      [&](const chain::Outpoint& op, const chain::TxOut&) {
        coins.push_back(op);
        return true;
      });
  fx.payments = coins.size();

  Rng rng(71);
  fx.block.txs = chain::UtxoTxList{};
  auto& txs = fx.block.utxo_txs();
  txs.push_back(chain::UtxoTransaction::coinbase(payee.account_id(),
                                                 fx.params.block_reward, 1));
  for (const chain::Outpoint& op : coins) {
    chain::UtxoTransaction tx;
    tx.inputs.push_back(chain::TxIn{op, payer.public_key(), {}});
    tx.outputs.push_back(chain::TxOut{10'000, payee.account_id()});
    tx.sign_all({payer}, rng);
    txs.push_back(std::move(tx));
  }
  fx.block.header.height = 1;
  fx.block.header.parent = ref.tip_hash();
  fx.block.header.timestamp = fx.params.block_interval;
  fx.block.header.difficulty = ref.next_difficulty(ref.tip_hash());
  fx.block.header.proposer = payee.account_id();
  fx.block.header.merkle_root = fx.block.compute_merkle_root();
  for (std::uint64_t nonce = 0;; ++nonce) {
    fx.block.header.nonce = nonce;
    fx.block.header.invalidate_digests();
    if (chain::meets_target(fx.block.header.pow_digest(),
                            fx.block.header.difficulty))
      break;
  }
  return fx;
}

ConnectResult bench_parallel_connect(std::size_t workers) {
  const BigBlockFixture fx = make_big_block(2000);
  const chain::ChainParams& params = fx.params;
  const chain::GenesisSpec& genesis = fx.genesis;
  const chain::Block& block = fx.block;
  constexpr int kIters = 8;

  ConnectResult out;
  out.workers = workers;
  out.cores = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  out.checks_per_block = fx.payments;

  obs::MetricsRegistry reg;
  auto seconds_per_connect = [&](std::size_t threads) {
    auto pool = threads > 0 ? std::make_shared<support::ThreadPool>(threads)
                            : nullptr;
    double total = 0;
    for (int it = -1; it < kIters; ++it) {  // it == -1 warms up
      chain::Blockchain chain(params, genesis);
      chain.set_sigcache(
          std::make_shared<crypto::SignatureCache>(std::size_t{1} << 14));
      if (pool) {
        chain.set_verify_pool(pool);
        chain.set_parallel_validation(true);
      }
      chain.set_metrics(&reg);
      const double secs = time_seconds([&] {
        if (!chain.submit(block).ok()) {
          std::cerr << "parallel-connect bench: submit failed\n";
          std::exit(2);
        }
      });
      if (it >= 0) total += secs;
    }
    return total / kIters;
  };

  const double serial = seconds_per_connect(0);
  const double parallel = seconds_per_connect(workers);
  out.serial_ms = serial * 1e3;
  out.parallel_ms = parallel * 1e3;
  out.speedup = parallel > 0 ? serial / parallel : 0;
  if (const auto* c = reg.find_counter("parallel.validate.batches"))
    out.pv_batches = c->value();
  if (const auto* c = reg.find_counter("parallel.validate.checks"))
    out.pv_checks = c->value();
  return out;
}

// --------------------------------------------------------------------------
// State sharding (ISSUE 5): the same 2000-payment fully-disjoint block
// applied serially vs through conflict-group sharding. Every payment
// spends its own genesis coin, so the partitioner produces one singleton
// group per payment -- the best case for the sharded path. The serial
// pass is the reference; tips must match bit-for-bit.

struct StateShardResult {
  double serial_ms = 0;    // wall per connect
  double sharded_ms = 0;
  double speedup = 0;
  std::size_t workers = 0;
  std::size_t cores = 0;   // hardware threads actually available
  std::size_t txs_per_block = 0;
  std::uint64_t ps_batches = 0;
  std::uint64_t ps_groups = 0;
  std::uint64_t ps_demotions = 0;
  std::uint64_t ps_txs = 0;
  bool tip_identical = false;
};

StateShardResult bench_state_sharding(std::size_t workers) {
  const BigBlockFixture fx = make_big_block(2000);
  constexpr int kIters = 8;

  StateShardResult out;
  out.workers = workers;
  out.cores = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  out.txs_per_block = fx.payments;

  obs::MetricsRegistry reg;
  Hash256 serial_tip;
  Hash256 sharded_tip;
  auto seconds_per_connect = [&](bool sharded, Hash256* tip) {
    auto pool = sharded ? std::make_shared<support::ThreadPool>(workers)
                        : nullptr;
    double total = 0;
    for (int it = -1; it < kIters; ++it) {  // it == -1 warms up
      chain::Blockchain chain(fx.params, fx.genesis);
      chain.set_sigcache(
          std::make_shared<crypto::SignatureCache>(std::size_t{1} << 14));
      if (pool) {
        chain.set_verify_pool(pool);
        chain.set_parallel_state(true);
      }
      chain.set_metrics(&reg);
      const double secs = time_seconds([&] {
        if (!chain.submit(fx.block).ok()) {
          std::cerr << "state-sharding bench: submit failed\n";
          std::exit(2);
        }
      });
      if (it >= 0) total += secs;
      *tip = chain.tip_hash();
    }
    return total / kIters;
  };

  const double serial = seconds_per_connect(false, &serial_tip);
  const double sharded = seconds_per_connect(true, &sharded_tip);
  out.serial_ms = serial * 1e3;
  out.sharded_ms = sharded * 1e3;
  out.speedup = sharded > 0 ? serial / sharded : 0;
  out.tip_identical = serial_tip == sharded_tip;
  if (const auto* c = reg.find_counter("parallel.state.batches"))
    out.ps_batches = c->value();
  if (const auto* c = reg.find_counter("parallel.state.groups"))
    out.ps_groups = c->value();
  if (const auto* c = reg.find_counter("parallel.state.demotions"))
    out.ps_demotions = c->value();
  if (const auto* c = reg.find_counter("parallel.state.txs"))
    out.ps_txs = c->value();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Single-config mode for profilers: run just one macro cluster pass.
  if (argc > 1) {
    const std::string mode = argv[1];
    if (mode == "--connect") {
      const ConnectResult c = bench_parallel_connect(4);
      std::cout << mode << ": serial " << fmt(c.serial_ms, 2)
                << " ms, pipeline " << fmt(c.parallel_ms, 2) << " ms, "
                << fmt(c.speedup, 2) << "x\n";
      return 0;
    }
    if (mode == "--connect-state") {
      const StateShardResult s = bench_state_sharding(4);
      std::cout << mode << ": serial " << fmt(s.serial_ms, 2)
                << " ms, sharded " << fmt(s.sharded_ms, 2) << " ms, "
                << fmt(s.speedup, 2) << "x, tip "
                << (s.tip_identical ? "identical" : "DIVERGED") << "\n";
      return s.tip_identical ? 0 : 1;
    }
    ClusterRun r;
    if (mode == "--cluster-off")
      r = run_cluster(false, 0);
    else if (mode == "--cluster-on")
      r = run_cluster(true, 0);
    else if (mode == "--cluster-par")
      r = run_cluster(true, 2);
    else if (mode == "--cluster-pipe")
      r = run_cluster(true, 4, /*pipeline=*/true);
    else {
      std::cerr << "usage: bench_hotpath [--connect|--connect-state|"
                   "--cluster-off|--cluster-on|--cluster-par|"
                   "--cluster-pipe]\n";
      return 2;
    }
    std::cout << mode << ": wall " << fmt(r.wall, 2) << " s, metrics "
              << r.fingerprint << "\n";
    return 0;
  }

  std::cout << "=== Hot-path crypto benchmarks ===\n\n";

  JsonObject report;
  JsonObject micro_json;

  std::cout << "Micro (primitive ops/sec):\n";
  Table micro({"primitive", "ops/sec"});
  auto add_micro = [&](const MicroResult& r) {
    micro.row({r.name, fmt(r.ops_per_sec, 0)});
    micro_json.put(r.name, r.ops_per_sec);
  };
  add_micro(micro_sha256());
  add_micro(micro_tagged_hash());
  const auto [id_uncached, id_memo] = micro_tx_id();
  add_micro(id_uncached);
  add_micro(id_memo);
  const auto [pow_full, pow_mid] = micro_pow();
  add_micro(pow_full);
  add_micro(pow_mid);
  const auto [ver_real, ver_hit] = micro_sig_verify();
  add_micro(ver_real);
  add_micro(ver_hit);
  add_micro(micro_mining());
  micro.print();
  std::cout << "\n";

  std::cout << "Macro: saturated 8-node bitcoin-like cluster, one seed, "
               "~25 tx/s offered for 240 s.\n";
  const ClusterRun off = run_cluster(/*caches_on=*/false, 0);
  const ClusterRun on = run_cluster(/*caches_on=*/true, 0);
  const ClusterRun par = run_cluster(/*caches_on=*/true, 2);
  const ClusterRun pipe = run_cluster(/*caches_on=*/true, 4, /*pipeline=*/true);

  const bool identical = on.fingerprint == off.fingerprint;
  const bool par_identical = par.fingerprint == on.fingerprint;
  const bool pipe_identical = pipe.fingerprint == on.fingerprint;
  const double speedup = on.wall > 0 ? off.wall / on.wall : 0;

  Table macro({"config", "wall s", "included", "sigcache hit rate",
               "metrics vs baseline"});
  macro.row({"caches off", fmt(off.wall, 2), fmt_u(off.included), "-",
             "(baseline)"});
  macro.row({"caches on", fmt(on.wall, 2), fmt_u(on.included),
             fmt(100 * on.hit_rate, 1) + "%",
             identical ? "identical" : "DIVERGED"});
  macro.row({"caches on + 2 verify threads", fmt(par.wall, 2),
             fmt_u(par.included), fmt(100 * par.hit_rate, 1) + "%",
             par_identical ? "identical" : "DIVERGED"});
  macro.row({"caches on + 4-worker pipeline", fmt(pipe.wall, 2),
             fmt_u(pipe.included), fmt(100 * pipe.hit_rate, 1) + "%",
             pipe_identical ? "identical" : "DIVERGED"});
  macro.print();
  std::cout << "\nSpeedup (off/on): " << fmt(speedup, 2) << "x over "
            << on.sig_checks << " signature checks\n";
  if (!identical || !par_identical || !pipe_identical)
    std::cout << "ERROR: cached/parallel run diverged from baseline -- "
                 "the caches are supposed to be semantics-preserving!\n";

  std::cout << "\nParallel validation: one 2000-signature block, fresh "
               "chain + cold sigcache per pass, serial vs sharded "
               "pipeline.\n";
  const ConnectResult conn = bench_parallel_connect(4);
  Table conn_table({"mode", "ms/connect", "connects/s"});
  conn_table.row({"serial", fmt(conn.serial_ms, 2),
                  fmt(conn.serial_ms > 0 ? 1e3 / conn.serial_ms : 0, 1)});
  conn_table.row({"pipeline (" + std::to_string(conn.workers) + " workers)",
                  fmt(conn.parallel_ms, 2),
                  fmt(conn.parallel_ms > 0 ? 1e3 / conn.parallel_ms : 0, 1)});
  conn_table.print();
  std::cout << "Block-connect speedup: " << fmt(conn.speedup, 2) << "x ("
            << conn.checks_per_block << " checks/block, "
            << conn.pv_batches << " pipelined batches, " << conn.pv_checks
            << " sharded checks, " << conn.cores << " hardware threads)\n";
  if (conn.cores < conn.workers)
    std::cout << "NOTE: host has fewer hardware threads than workers; the "
                 ">=1.5x target applies on >=4-core hosts.\n";

  std::cout << "\nState sharding: the same 2000-payment fully-disjoint "
               "block, serial reference vs conflict-group sharded "
               "application.\n";
  const StateShardResult shard = bench_state_sharding(4);
  Table shard_table({"mode", "ms/connect", "connects/s"});
  shard_table.row({"serial", fmt(shard.serial_ms, 2),
                   fmt(shard.serial_ms > 0 ? 1e3 / shard.serial_ms : 0, 1)});
  shard_table.row({"sharded (" + std::to_string(shard.workers) + " workers)",
                   fmt(shard.sharded_ms, 2),
                   fmt(shard.sharded_ms > 0 ? 1e3 / shard.sharded_ms : 0,
                       1)});
  shard_table.print();
  std::cout << "State-apply speedup: " << fmt(shard.speedup, 2) << "x ("
            << shard.txs_per_block << " txs/block, " << shard.ps_batches
            << " sharded batches, " << shard.ps_groups << " conflict groups, "
            << shard.ps_demotions << " demotions, " << shard.cores
            << " hardware threads), tip "
            << (shard.tip_identical ? "identical" : "DIVERGED") << "\n";
  if (shard.cores < shard.workers)
    std::cout << "NOTE: host has fewer hardware threads than workers; "
                 "expect ~1x here, the sharded path must only not lose.\n";
  if (!shard.tip_identical)
    std::cout << "ERROR: sharded state application diverged from the serial "
                 "reference tip!\n";

  JsonObject macro_json;
  macro_json.put("wall_seconds_caches_off", off.wall);
  macro_json.put("wall_seconds_caches_on", on.wall);
  macro_json.put("wall_seconds_parallel", par.wall);
  macro_json.put("speedup", speedup);
  macro_json.put("sigcache_hit_rate", on.hit_rate);
  macro_json.put("sigcache_checks", on.sig_checks);
  macro_json.put("included_payments", on.included);
  macro_json.put("node_count", std::uint64_t{8});
  macro_json.put("metrics_identical", identical);
  macro_json.put("parallel_metrics_identical", par_identical);
  macro_json.put("wall_seconds_pipeline", pipe.wall);
  macro_json.put("pipeline_metrics_identical", pipe_identical);

  JsonObject pv_json;
  pv_json.put("workers", static_cast<std::uint64_t>(conn.workers));
  pv_json.put("hardware_threads", static_cast<std::uint64_t>(conn.cores));
  pv_json.put("checks_per_block",
              static_cast<std::uint64_t>(conn.checks_per_block));
  pv_json.put("serial_ms_per_connect", conn.serial_ms);
  pv_json.put("pipeline_ms_per_connect", conn.parallel_ms);
  pv_json.put("block_connect_speedup", conn.speedup);
  pv_json.put("batches", conn.pv_batches);
  pv_json.put("checks", conn.pv_checks);

  JsonObject ps_json;
  ps_json.put("workers", static_cast<std::uint64_t>(shard.workers));
  ps_json.put("hardware_threads", static_cast<std::uint64_t>(shard.cores));
  ps_json.put("txs_per_block",
              static_cast<std::uint64_t>(shard.txs_per_block));
  ps_json.put("serial_ms_per_connect", shard.serial_ms);
  ps_json.put("sharded_ms_per_connect", shard.sharded_ms);
  ps_json.put("state_apply_speedup", shard.speedup);
  ps_json.put("batches", shard.ps_batches);
  ps_json.put("groups", shard.ps_groups);
  ps_json.put("demotions", shard.ps_demotions);
  ps_json.put("txs", shard.ps_txs);
  ps_json.put("tip_identical", shard.tip_identical);

  report.put("bench", "hotpath");
  report.put_raw("micro", micro_json.to_string());
  report.put_raw("cluster", macro_json.to_string());
  report.put_raw("parallel_validate", pv_json.to_string());
  report.put_raw("parallel_state", ps_json.to_string());
  report.put_raw("metrics", on.metrics_json);  // caches-on reference run
  report.put_raw("trace_summary", on.trace_summary_json);
  write_bench_report("hotpath", report);
  std::cout << "Wrote BENCH_hotpath.json\n";

  return identical && par_identical && pipe_identical && shard.tip_identical
             ? 0
             : 1;
}
