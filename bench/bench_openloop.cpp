// E20 -- Open-loop heavy traffic with mempool admission control (ISSUE 10).
//
// The closed-loop workload benches (E8/E9) measure protocol ceilings by
// saturating the ledgers with a pre-drawn payment list. This bench drives
// the open-loop TrafficSource instead: arrivals fire on sim-time events
// independent of ledger progress, so offered load past the service rate
// has to go SOMEWHERE — the admission pipeline queues it, evicts it
// (fee-market displacement), or backpressures it, and the tallies must
// reconcile exactly:
//
//   admission.submitted == admitted + rejected + evicted + backpressured
//
// Each ledger sweeps offered load from under capacity to well past
// saturation and reports the offered-vs-achieved gap plus the latency
// knee: submit→confirm percentiles (overall and per fee class) grow
// sharply once arrivals outpace the drain, and the highest fee class
// buys its way past the queue (per-class p99 ordering).
//
// Determinism contract: every figure in BENCH_openloop.json is sim-time
// arithmetic from the dedicated traffic RNG stream, so the determinism
// gate diffs the report byte-for-byte across DLT_VERIFY_THREADS,
// DLT_PARALLEL_STATE and DLT_STORAGE settings.
//
// Gates (exit non-zero on violation):
//   - admission tallies reconcile on every row
//   - offered > achieved at the top sweep point of every ledger
//   - per-fee-class latency histograms are non-empty at the top point
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "core/chain_cluster.hpp"
#include "core/json_report.hpp"
#include "core/lattice_cluster.hpp"
#include "core/table.hpp"
#include "core/tangle_cluster.hpp"
#include "obs/trace.hpp"
#include "storage/config.hpp"

using namespace dlt;
using namespace dlt::core;

namespace {

constexpr std::size_t kAccounts = 24;

// Arrival windows are short (the determinism gate runs this bench six
// times); the sweep tops are chosen well past each ledger's service rate
// so the knee still shows. The tangle window is shorter still: MCMC tip
// selection walks cumulative weights, so wall-clock per attach grows with
// cone size and the leg's cost is superlinear in attached transactions.
constexpr double kChainDuration = 40.0;
constexpr double kDagDuration = 30.0;
constexpr double kTangleDuration = 10.0;

struct ClassStat {
  std::uint32_t cls = 0;
  std::uint64_t count = 0;
  double p50 = 0, p99 = 0, p999 = 0;
};

struct Row {
  std::string system;
  double offered_target = 0;  // configured traffic rate
  double offered = 0;         // arrivals actually fired / duration
  double achieved = 0;        // traffic txs confirmed / duration
  std::uint64_t confirmed = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t submitted = 0, admitted = 0, rejected = 0, evicted = 0,
                 backpressured = 0;
  bool reconciles = false;
  std::uint64_t lat_count = 0;
  double p50 = 0, p99 = 0, p999 = 0;
  std::vector<ClassStat> classes;
  std::string metrics_json;
  std::string trace_summary_json;
};

void read_histograms(const obs::MetricsRegistry& reg, std::size_t classes,
                     Row& row) {
  if (const obs::Histogram* h =
          reg.find_histogram("latency.submit_to_confirm")) {
    row.lat_count = h->count();
    if (h->count() > 0) {
      row.p50 = h->percentiles().median();
      row.p99 = h->percentiles().p99();
      row.p999 = h->percentiles().p999();
    }
  }
  for (std::size_t k = 0; k < classes; ++k) {
    const obs::Histogram* h = reg.find_histogram(
        "latency.class." + std::to_string(k) + ".submit_to_confirm");
    ClassStat cs;
    cs.cls = static_cast<std::uint32_t>(k);
    if (h && h->count() > 0) {
      cs.count = h->count();
      cs.p50 = h->percentiles().median();
      cs.p99 = h->percentiles().p99();
      cs.p999 = h->percentiles().p999();
    }
    row.classes.push_back(cs);
  }
}

template <typename Cluster>
Row collect(Cluster& cluster, const std::string& system, double rate,
            double duration, const std::string& trace_path) {
  Row row;
  row.system = system;
  row.offered_target = rate;
  const RunMetrics m = cluster.metrics();
  row.submitted = m.admission_submitted;
  row.admitted = m.admission_admitted;
  row.rejected = m.admission_rejected;
  row.evicted = m.admission_evicted;
  row.backpressured = m.admission_backpressured;
  row.reconciles = row.submitted == row.admitted + row.rejected +
                                        row.evicted + row.backpressured;
  row.offered = static_cast<double>(row.submitted) / duration;
  // Achieved = traffic transactions confirmed (the lifecycle tracker only
  // holds engine-submitted txs, so funding/setup blocks never pollute it).
  row.confirmed = cluster.lifecycle().confirmed();
  row.in_flight = cluster.lifecycle().in_flight();
  row.achieved = static_cast<double>(row.confirmed) / duration;
  read_histograms(cluster.metrics_registry(),
                  cluster.config().traffic.fee_class_count, row);
  row.metrics_json = cluster.metrics_json().to_string();
  row.trace_summary_json = cluster.trace_summary_json().to_string();
  if (!trace_path.empty() && cluster.tracer().enabled() &&
      !cluster.tracer().events().empty()) {
    if (cluster.tracer().export_jsonl(trace_path))
      std::cout << "Wrote " << trace_path << "\n";
  }
  return row;
}

/// Shared traffic shape: sweep points override rate/duration AFTER the
/// DLT_TRAFFIC_* env pass, so the gate can restyle the process / skew /
/// seed but the sweep stays a sweep.
TrafficConfig traffic_config(double rate, double duration,
                             std::uint64_t queue_bytes) {
  TrafficConfig tc;
  tc.enabled = true;
  tc.queue_capacity_bytes = queue_bytes;
  apply_env_traffic(tc);
  tc.rate = rate;
  tc.duration = duration;
  return tc;
}

// pos-like account chain: 4 s blocks, 8M gas. Intrinsic-gas payments cap
// inclusion near 95 TPS, but the mempool byte cap (~48 KiB) bites first,
// so the top sweep point evicts and backpressures.
Row run_chain(double rate, const std::string& trace_path = {}) {
  chain::ChainParams params = chain::pos_like();
  params.verify_pow = false;
  params.retarget_window = 0;

  ChainClusterConfig cfg;
  cfg.params = params;
  apply_env_crypto(cfg.crypto);             // DLT_VERIFY_THREADS
  storage::apply_env_storage(cfg.storage);  // DLT_STORAGE
  cfg.obs.trace_capacity = obs::trace_capacity_from_env();
  if (!trace_path.empty()) cfg.obs.trace_sink = obs::trace_sink_from_env();
  cfg.node_count = 4;
  cfg.miner_count = 2;
  cfg.validator_count = 4;
  cfg.total_hashrate = 1e6 / params.block_interval;
  cfg.params.initial_difficulty = 1e6;
  cfg.account_count = kAccounts;
  cfg.initial_balance = 1'000'000'000;
  cfg.seed = 23;
  cfg.traffic = traffic_config(rate, kChainDuration, 48 * 1024);
  ChainCluster cluster(cfg);
  cluster.start();
  cluster.schedule_traffic();
  // Tail: depth-11 confirmation needs ~11 blocks past the last arrival.
  cluster.run_for(kChainDuration +
                  params.block_interval *
                      (cfg.params.confirmation_depth + 2.0));
  return collect(cluster, "pos-like", rate, kChainDuration, trace_path);
}

// nano-like lattice: admission queues in front of each owner node,
// aggregate service 4 nodes x 4/0.2 s = 80 tx/s but Zipf-skewed onto the
// hot owner, which saturates well below that.
Row run_lattice(double rate) {
  LatticeClusterConfig cfg;
  cfg.node_count = 4;
  cfg.representative_count = 2;
  cfg.account_count = kAccounts;
  cfg.initial_balance = 50'000'000;
  cfg.params.work_bits = 2;
  apply_env_crypto(cfg.crypto);
  storage::apply_env_storage(cfg.storage);
  cfg.obs.trace_capacity = obs::trace_capacity_from_env();
  cfg.seed = 23;
  cfg.traffic = traffic_config(rate, kDagDuration, 16 * 1024);
  LatticeCluster cluster(cfg);
  cluster.fund_accounts();
  cluster.schedule_traffic();
  cluster.run_for(kDagDuration + 20.0);  // vote quorum settles fast
  return collect(cluster, "nano-like", rate, kDagDuration, {});
}

// iota-like tangle: same per-issuer admission queues; confirmation is the
// recurring tip-cone confidence sweep on the reference replica.
Row run_tangle(double rate) {
  TangleClusterConfig cfg;
  cfg.node_count = 4;
  cfg.account_count = kAccounts;
  cfg.params.work_bits = 2;
  apply_env_crypto(cfg.crypto);
  storage::apply_env_storage(cfg.storage);
  cfg.obs.trace_capacity = obs::trace_capacity_from_env();
  cfg.seed = 23;
  cfg.traffic = traffic_config(rate, kTangleDuration, 8 * 1024);
  // Halve the per-queue drain so the fee market saturates inside the short
  // window the attach cost allows.
  cfg.traffic.drain_burst = 2;
  TangleCluster cluster(cfg);
  cluster.start();
  cluster.schedule_traffic();
  cluster.run_for(kTangleDuration + 20.0);
  return collect(cluster, "iota-like", rate, kTangleDuration, {});
}

std::string class_summary(const Row& r) {
  std::string s;
  for (const ClassStat& c : r.classes) {
    if (!s.empty()) s += " ";
    s += "c" + std::to_string(c.cls) + ":" +
         (c.count ? fmt(c.p99, 1) : std::string("-"));
  }
  return s;
}

}  // namespace

int main() {
  std::cout << "=== E20: open-loop heavy traffic & admission control ===\n\n";

  // Sweep points: under capacity, near the knee, well past saturation.
  const double chain_sweep[] = {20.0, 60.0, 150.0};
  const double dag_sweep[] = {10.0, 30.0, 80.0};
  const double tangle_sweep[] = {10.0, 25.0, 60.0};

  // Wall-clock per leg goes to stdout only; the JSON stays deterministic.
  auto timed = [](const char* label, double rate, auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    Row row = fn();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::cout << "[" << label << " @" << rate << " tx/s: " << fmt(secs, 1)
              << "s wall]\n";
    return row;
  };
  std::vector<Row> rows;
  std::string metrics_section, trace_section;
  for (double rate : chain_sweep) {
    const bool reference = rate == chain_sweep[2];
    Row r = timed("chain", rate, [&] {
      return run_chain(rate, reference ? "TRACE_openloop.jsonl" : "");
    });
    if (reference) {
      metrics_section = r.metrics_json;
      trace_section = r.trace_summary_json;
    }
    rows.push_back(std::move(r));
  }
  for (double rate : dag_sweep)
    rows.push_back(timed("lattice", rate, [&] { return run_lattice(rate); }));
  for (double rate : tangle_sweep)
    rows.push_back(timed("tangle", rate, [&] { return run_tangle(rate); }));

  Table t({"system", "offered", "fired/s", "achieved", "admitted", "rejected",
           "evicted", "backpressure", "p50 s", "p99 s", "class p99s"});
  for (const Row& r : rows) {
    t.row({r.system, fmt(r.offered_target, 0), fmt(r.offered, 1),
           fmt(r.achieved, 1), std::to_string(r.admitted),
           std::to_string(r.rejected), std::to_string(r.evicted),
           std::to_string(r.backpressured),
           r.lat_count ? fmt(r.p50, 2) : "-",
           r.lat_count ? fmt(r.p99, 2) : "-", class_summary(r)});
  }
  t.print();

  // ---- Gates --------------------------------------------------------------
  bool ok = true;
  for (const Row& r : rows) {
    if (!r.reconciles) {
      std::cout << "\nFAIL: " << r.system << " @" << r.offered_target
                << " tx/s does not reconcile: " << r.submitted
                << " != " << r.admitted << "+" << r.rejected << "+"
                << r.evicted << "+" << r.backpressured << "\n";
      ok = false;
    }
  }
  // Top sweep point per ledger: saturation must show as an
  // offered-vs-achieved gap and populated per-class histograms.
  for (std::size_t top : {2u, 5u, 8u}) {
    const Row& r = rows[top];
    if (r.offered <= r.achieved) {
      std::cout << "\nFAIL: " << r.system
                << " top point not saturated (offered " << fmt(r.offered, 1)
                << " <= achieved " << fmt(r.achieved, 1) << ")\n";
      ok = false;
    }
    for (const ClassStat& c : r.classes) {
      if (c.count == 0) {
        std::cout << "\nFAIL: " << r.system << " fee class " << c.cls
                  << " histogram is empty at the top sweep point\n";
        ok = false;
      }
    }
    if (r.evicted + r.backpressured == 0) {
      std::cout << "\nFAIL: " << r.system
                << " top point shows no admission pressure\n";
      ok = false;
    }
  }

  JsonArray rows_json;
  for (const Row& r : rows) {
    JsonObject adm;
    adm.put("submitted", r.submitted);
    adm.put("admitted", r.admitted);
    adm.put("rejected", r.rejected);
    adm.put("evicted", r.evicted);
    adm.put("backpressured", r.backpressured);
    adm.put("reconciles", r.reconciles);
    JsonArray classes;
    for (const ClassStat& c : r.classes) {
      JsonObject cj;
      cj.put("class", static_cast<std::uint64_t>(c.cls));
      cj.put("count", c.count);
      cj.put("p50_s", c.p50);
      cj.put("p99_s", c.p99);
      cj.put("p999_s", c.p999);
      classes.push_raw(cj.to_string());
    }
    JsonObject row;
    row.put("system", r.system);
    row.put("offered_tps", r.offered_target);
    row.put("fired_tps", r.offered);
    row.put("achieved_tps", r.achieved);
    row.put("confirmed", r.confirmed);
    row.put("in_flight", r.in_flight);
    row.put("latency_count", r.lat_count);
    row.put("latency_p50_s", r.p50);
    row.put("latency_p99_s", r.p99);
    row.put("latency_p999_s", r.p999);
    row.put_raw("admission", adm.to_string());
    row.put_raw("classes", classes.to_string());
    rows_json.push_raw(row.to_string());
  }
  JsonObject report;
  report.put("bench", "openloop");
  report.put_raw("sweep", rows_json.to_string());
  report.put_raw("metrics", metrics_section);
  report.put_raw("trace_summary", trace_section);
  write_bench_report("openloop", report);
  std::cout << "\nWrote BENCH_openloop.json\n";

  std::cout << "\nShape check: below the knee, achieved tracks offered and "
               "submit->confirm latency sits near the block/vote cadence; "
               "past it, the gap widens and the queues surface the fee "
               "market — low classes evict or backpressure while the top "
               "class holds a bounded p99 (it out-bids its way in).\n";
  if (!ok) std::cout << "\nE20 GATES FAILED\n";
  return ok ? 0 : 1;
}
