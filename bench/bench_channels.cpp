// E11 -- Paper §VI-A: payment channels (Lightning / Raiden).
//
// "The involved parties are able to run micro transactions at high volume
// and speed, avoiding the transaction cap of the network." Two on-chain
// transactions (open + close) buy an unbounded number of instant off-chain
// payments; effective TPS amplification grows with channel lifetime.
#include <chrono>
#include <iostream>
#include <string>

#include "core/json_report.hpp"
#include "core/table.hpp"
#include "obs/metrics.hpp"
#include "scaling/channel.hpp"
#include "support/stats.hpp"

using namespace dlt;
using namespace dlt::core;
using namespace dlt::scaling;

int main() {
  std::cout << "=== E11 / §VI-A: off-chain payment channels ===\n\n";

  Rng rng(3);
  auto a = crypto::KeyPair::from_seed(1);
  auto b = crypto::KeyPair::from_seed(2);

  // No cluster here: a local registry tallies the channel activity so the
  // report still carries a `metrics` section like every other bench.
  obs::MetricsRegistry registry;
  obs::Counter& payments_total = registry.counter("channels.payments");
  JsonArray amp_json;

  std::cout << "Amplification: on-chain cost is constant (2 txs: open + "
               "close) regardless of payments routed:\n";
  Table t({"channel payments", "on-chain txs", "amplification",
           "effective TPS on a 7-TPS chain*"});
  for (std::size_t payments : {10u, 100u, 1'000u, 10'000u, 100'000u}) {
    PaymentChannel channel(a, b, 1'000'000, 1'000'000, rng);
    for (std::size_t i = 0; i < payments; ++i) {
      Status st = channel.pay(1, i % 2 == 0, rng);
      if (!st.ok()) break;
    }
    const double amp = static_cast<double>(channel.payments_made()) / 2.0;
    payments_total.inc(channel.payments_made());
    t.row({std::to_string(channel.payments_made()), "2", fmt(amp, 0),
           format_si(7.0 * amp)});
    JsonObject row;
    row.put("payments", static_cast<std::uint64_t>(channel.payments_made()));
    row.put("on_chain_txs", std::uint64_t{2});
    row.put("amplification", amp);
    amp_json.push_raw(row.to_string());
  }
  t.print();
  std::cout << "* each base-chain slot used for channel open/close carries "
               "`amplification` payments instead of 1.\n";

  std::cout << "\nOff-chain payment latency (co-signing only, no blocks):\n";
  {
    PaymentChannel channel(a, b, 10'000'000, 10'000'000, rng);
    const int n = 20000;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < n; ++i) (void)channel.pay(1, i % 2 == 0, rng);
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / n;
    registry.histogram("profile.channel_pay_us").observe(us);
    payments_total.inc(static_cast<std::uint64_t>(n));
    Table t2({"metric", "value"});
    t2.row({"payments", std::to_string(n)});
    t2.row({"mean latency", fmt(us, 2) + " us (vs minutes on-chain)"});
    t2.row({"throughput",
            format_si(1e6 / us) + " payments/s on one channel"});
    t2.print();
  }

  std::cout << "\nSecurity: the dispute game makes stale-state publication "
               "unprofitable:\n";
  {
    PaymentChannel channel(a, b, 1000, 1000, rng);
    (void)channel.pay(600, true, rng);   // a -> b: a=400
    (void)channel.pay(100, false, rng);  // b -> a: a=500
    auto stale = channel.state_at(1);    // cheater prefers a=400? no: b does
    auto final_state = channel.latest();
    auto settled = PaymentChannel::resolve_dispute(
        *stale, final_state, a.public_key(), b.public_key());
    Table t3({"scenario", "settles at seq", "balance a", "balance b"});
    t3.row({"cheater posts stale state, victim counters",
            std::to_string(settled.state.sequence),
            std::to_string(settled.state.balance_a),
            std::to_string(settled.state.balance_b)});
    auto unchallenged = PaymentChannel::resolve_dispute(
        *stale, std::nullopt, a.public_key(), b.public_key());
    t3.row({"victim offline during dispute window",
            std::to_string(unchallenged.state.sequence),
            std::to_string(unchallenged.state.balance_a),
            std::to_string(unchallenged.state.balance_b)});
    t3.print();
  }

  std::cout << "\nShape check (paper §VI-A): channels lift the throughput "
               "cap for repeated counterparties -- capacity prepaid and "
               "locked for the channel's lifetime, final balances recorded "
               "on chain at close (see tests/scaling_channel_test.cpp for "
               "the full on-chain lifecycle).\n";

  JsonObject report;
  report.put("bench", "channels");
  report.put_raw("amplification", amp_json.to_string());
  report.put_raw("metrics", registry.to_json().to_string());
  write_bench_report("channels", report);
  std::cout << "\nWrote BENCH_channels.json\n";
  return 0;
}
