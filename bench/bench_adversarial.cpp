// E18 -- Adversarial & fairness scenario suite (paper §III-§IV, extended
// by the SoK attack literature): attacker power × tip-selection strategy
// sweeps with measured safety metrics.
//
// Three scenario families, all driven by core/adversary.hpp actors against
// the same cluster engines the honest benches use:
//
//   parasite — a withheld double-spending side-tangle released at once;
//     attack.parasite.flip_probability measures how often a fresh
//     tip-selection walk approves the parasite side. Rises with attacker
//     power under every strategy; the MCMC walk (weight-biased) holds out
//     longest — the whitepaper's argument for it.
//   spam — lazy-tip flooding anchored at genesis;
//     attack.spam.honest_tip_share falls as spam outpaces honest issuance
//     (the Feng–King–Duffy tip-stationarity breakdown, reported via
//     tangle.tips.stationarity.{mean,variance}).
//   selfish — private mining against the chain cluster for paradigm
//     contrast; attack.selfish.revenue_share is the attacker's slice of
//     the active chain.
//
// Every run also reports fairness.inclusion_gini over per-issuer include
// rates from the lifecycle tracker. The zero-power column of each sweep
// is the honest baseline: byte-identical to a run with no adversary at
// all (tests/adversarial_test.cpp holds the trace bytes to that).
#include <iostream>
#include <string>

#include "core/adversary.hpp"
#include "core/json_report.hpp"
#include "core/table.hpp"
#include "obs/trace.hpp"
#include "tangle/tip_selection.hpp"
#include "storage/config.hpp"

using namespace dlt;
using namespace dlt::core;

namespace {

constexpr double kTangleDuration = 10.0;  // honest workload window
constexpr double kTangleTail = 8.0;       // attack release + settling

TangleClusterConfig tangle_config(tangle::TipStrategy strategy,
                                  const std::string& trace_path) {
  TangleClusterConfig cfg;
  apply_env_crypto(cfg.crypto);  // DLT_VERIFY_THREADS (determinism gate)
  storage::apply_env_storage(cfg.storage);  // DLT_STORAGE (disk legs)
  cfg.obs.trace_capacity = obs::trace_capacity_from_env();
  // DLT_TRACE_SINK streams the reference run write-through (ring optional).
  if (!trace_path.empty()) cfg.obs.trace_sink = obs::trace_sink_from_env();
  cfg.node_count = 4;
  cfg.account_count = 12;
  cfg.params.work_bits = 2;
  cfg.params.alpha = 0.05;
  cfg.params.tip_selection = strategy;
  cfg.seed = 31;
  return cfg;
}

struct TangleScenario {
  double power = 0.0;
  double flip_probability = 0.0;
  double honest_tip_share = 1.0;
  double gini = 0.0;
  double stat_mean = 0.0;
  double stat_variance = 0.0;
  std::size_t injected = 0;
  std::uint64_t tips_end = 0;
  std::string metrics_json;
  std::string trace_summary_json;
};

/// One tangle attack run: honest workload plus an adversary of the given
/// kind/power, tip-count stationarity sampled once per simulated second.
/// Parasite runs end the workload before the release (the withheld branch
/// races a settled honest tangle); spam runs keep honest traffic flowing
/// to the end (the metric is the steady-state competition for approvers).
TangleScenario run_tangle(AdversaryKind kind, tangle::TipStrategy strategy,
                          double power, const std::string& trace_path = {}) {
  TangleClusterConfig cfg = tangle_config(strategy, trace_path);
  TangleCluster cluster(cfg);

  AdversaryConfig ac;
  ac.kind = kind;
  ac.power = power;
  ac.node = 1;
  ac.start_time = 3.0;
  ac.release_time = kTangleDuration + 2.0;
  ac.interval = 1.0;
  TangleAdversary adversary(cluster, ac);

  cluster.start();
  adversary.start();

  Rng wl_rng(5);
  WorkloadConfig wl;
  wl.account_count = cfg.account_count;
  wl.tx_rate = 4.0;
  wl.duration = kind == AdversaryKind::kSpam
                    ? kTangleDuration + kTangleTail
                    : kTangleDuration;
  wl.max_amount = 50;
  cluster.schedule_workload(generate_payments(wl, wl_rng));

  // Interleaved 1s slices are trace-identical to one long run_for; each
  // boundary samples the reference replica's tip count.
  TipStationarity stationarity(16);
  const int slices = static_cast<int>(kTangleDuration + kTangleTail);
  for (int s = 0; s < slices; ++s) {
    cluster.run_for(1.0);
    stationarity.sample(cluster.node(0).tangle().tip_count());
  }

  adversary.measure();
  stationarity.publish(
      obs::Probe{&cluster.metrics_registry(), nullptr, {}});

  TangleScenario out;
  out.power = power;
  out.flip_probability = adversary.flip_probability();
  out.honest_tip_share = adversary.honest_tip_share();
  out.gini = inclusion_gini(cluster.lifecycle());
  out.stat_mean = stationarity.mean();
  out.stat_variance = stationarity.variance();
  out.injected = adversary.txs_injected();
  out.tips_end = cluster.node(0).tangle().tip_count();
  out.metrics_json = cluster.metrics_json().to_string();
  out.trace_summary_json = cluster.trace_summary_json().to_string();
  if (!trace_path.empty() && cluster.tracer().enabled() &&
      !cluster.tracer().events().empty()) {  // sink-only mode has no ring
    if (cluster.tracer().export_jsonl(trace_path))
      std::cout << "Wrote " << trace_path << "\n";
  }
  return out;
}

struct SelfishScenario {
  double power = 0.0;
  double revenue_share = 0.0;
  std::uint64_t blocks_mined = 0;
  std::uint64_t blocks_released = 0;
  std::uint32_t height = 0;
  double gini = 0.0;
  std::string metrics_json;
};

SelfishScenario run_selfish(double power) {
  ChainClusterConfig cfg;
  cfg.params = chain::bitcoin_like();
  cfg.params.verify_pow = false;
  cfg.params.retarget_window = 0;
  cfg.params.block_interval = 5.0;
  cfg.params.initial_difficulty = 1e6;
  apply_env_crypto(cfg.crypto);
  storage::apply_env_storage(cfg.storage);
  cfg.obs.trace_capacity = obs::trace_capacity_from_env();
  cfg.node_count = 4;
  cfg.miner_count = 2;
  cfg.total_hashrate = 1e6 / cfg.params.block_interval;
  cfg.account_count = 12;
  cfg.initial_balance = 1'000'000'000;
  cfg.seed = 33;
  ChainCluster cluster(cfg);

  SelfishMinerConfig sc;
  sc.power = power;
  sc.node = 1;
  sc.start_time = 1.0;
  sc.poll_interval = 2.5;
  ChainSelfishMiner miner(cluster, sc);

  cluster.start();
  miner.start();

  const double duration = 120.0;
  Rng wl_rng(6);
  WorkloadConfig wl;
  wl.account_count = cfg.account_count;
  wl.tx_rate = 1.0;
  wl.duration = duration;
  wl.max_amount = 100;
  cluster.schedule_workload(generate_payments(wl, wl_rng));
  cluster.run_for(duration + 6.0 * cfg.params.block_interval);

  miner.measure();
  SelfishScenario out;
  out.power = power;
  out.revenue_share = miner.revenue_share();
  out.blocks_mined = miner.blocks_mined();
  out.blocks_released = miner.blocks_released();
  out.height = cluster.node(0).chain().height();
  out.gini = inclusion_gini(cluster.lifecycle());
  out.metrics_json = cluster.metrics_json().to_string();
  return out;
}

std::string scenario_json(const TangleScenario& r,
                          tangle::TipStrategy strategy, const char* metric,
                          double value) {
  JsonObject row;
  row.put("power", r.power);
  row.put("strategy", tangle::to_string(strategy));
  row.put(metric, value);
  row.put("inclusion_gini", r.gini);
  row.put("stationarity_mean", r.stat_mean);
  row.put("stationarity_variance", r.stat_variance);
  row.put("injected", static_cast<std::uint64_t>(r.injected));
  row.put("tips_end", r.tips_end);
  return row.to_string();
}

}  // namespace

int main() {
  std::cout << "=== E18: adversarial & fairness scenario suite ===\n\n";

  const std::vector<tangle::TipStrategy> strategies{
      tangle::TipStrategy::kMcmc, tangle::TipStrategy::kUniform};
  const std::vector<double> powers{0.0, 0.25, 0.5, 0.75};

  JsonArray parasite_json, spam_json, selfish_json;
  std::string metrics_section, trace_section;

  std::cout << "Parasite chain: flip probability of the withheld "
               "double-spend vs attacker power (walk measured on the "
               "reference replica):\n";
  Table t1({"strategy", "power", "flip prob", "gini", "injected"});
  for (tangle::TipStrategy strategy : strategies) {
    for (double power : powers) {
      const bool reference = metrics_section.empty();
      TangleScenario r =
          run_tangle(AdversaryKind::kParasite, strategy, power,
                     reference ? "TRACE_adversarial.jsonl" : "");
      if (reference) {
        metrics_section = r.metrics_json;
        trace_section = r.trace_summary_json;
      }
      t1.row({std::string(tangle::to_string(strategy)), fmt(power, 2),
              fmt(r.flip_probability, 3), fmt(r.gini, 3),
              std::to_string(r.injected)});
      parasite_json.push_raw(scenario_json(r, strategy, "flip_probability",
                                           r.flip_probability));
    }
  }
  t1.print();
  std::cout << "Zero power = honest baseline (flip 0 by construction). The "
               "weight-biased MCMC walk resists the parasite longer than "
               "uniform tip selection at equal power.\n";

  std::cout << "\nLazy-tip spam: honest share of the reference replica's "
               "tips vs attacker power:\n";
  Table t2({"strategy", "power", "honest tip share", "tip-count var",
            "injected"});
  for (tangle::TipStrategy strategy : strategies) {
    for (double power : powers) {
      TangleScenario r = run_tangle(AdversaryKind::kSpam, strategy, power);
      t2.row({std::string(tangle::to_string(strategy)), fmt(power, 2),
              fmt(r.honest_tip_share, 3), fmt(r.stat_variance, 1),
              std::to_string(r.injected)});
      spam_json.push_raw(scenario_json(r, strategy, "honest_tip_share",
                                       r.honest_tip_share));
    }
  }
  t2.print();
  std::cout << "Spam anchored at genesis starves honest tips of approvers: "
               "the share falls and the tip-count process loses "
               "stationarity (variance grows with power).\n";

  std::cout << "\nSelfish mining (chain, for paradigm contrast): attacker "
               "revenue share of the active chain vs hash power:\n";
  Table t3({"power", "revenue share", "mined", "released", "height",
            "gini"});
  for (double power : {0.0, 0.2, 0.35, 0.45}) {
    SelfishScenario r = run_selfish(power);
    t3.row({fmt(r.power, 2), fmt(r.revenue_share, 3),
            std::to_string(r.blocks_mined),
            std::to_string(r.blocks_released), std::to_string(r.height),
            fmt(r.gini, 3)});
    JsonObject row;
    row.put("power", r.power);
    row.put("revenue_share", r.revenue_share);
    row.put("blocks_mined", r.blocks_mined);
    row.put("blocks_released", r.blocks_released);
    row.put("height", static_cast<std::uint64_t>(r.height));
    row.put("inclusion_gini", r.gini);
    selfish_json.push_raw(row.to_string());
  }
  t3.print();
  std::cout << "A withheld branch only pays once the attacker can outrun "
               "the public chain; below ~1/3 hash share the branch is "
               "usually abandoned (§IV-A's security argument).\n";

  JsonObject report;
  report.put("bench", "adversarial");
  report.put_raw("parasite", parasite_json.to_string());
  report.put_raw("spam", spam_json.to_string());
  report.put_raw("selfish", selfish_json.to_string());
  report.put_raw("metrics", metrics_section);
  report.put_raw("trace_summary", trace_section);
  write_bench_report("adversarial", report);
  std::cout << "\nWrote BENCH_adversarial.json\n";
  return 0;
}
