// Micro-benchmarks for the cryptographic substrate everything else rests
// on: SHA-256, Merkle trees, the state trie, hashcash and signatures.
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "crypto/hashcash.hpp"
#include "crypto/keys.hpp"
#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"
#include "crypto/trie.hpp"
#include "obs/metrics.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"

namespace dlt::crypto {
namespace {

void BM_Sha256(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  Bytes data(size, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::digest(ByteView{data.data(), size}));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_Sha256d(benchmark::State& state) {
  Bytes data(80, 0x5a);  // a block header's worth
  for (auto _ : state)
    benchmark::DoNotOptimize(sha256d(ByteView{data.data(), data.size()}));
}
BENCHMARK(BM_Sha256d);

void BM_MerkleRoot(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<Hash256> leaves;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string s = "tx" + std::to_string(i);
    leaves.push_back(Sha256::digest(as_bytes(s)));
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(MerkleTree::compute_root(leaves));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MerkleRoot)->Arg(16)->Arg(256)->Arg(4096);

void BM_MerkleProveVerify(benchmark::State& state) {
  std::vector<Hash256> leaves;
  for (std::size_t i = 0; i < 1024; ++i)
    leaves.push_back(Sha256::digest(as_bytes("tx" + std::to_string(i))));
  MerkleTree tree(leaves);
  for (auto _ : state) {
    auto proof = tree.prove(512);
    benchmark::DoNotOptimize(
        MerkleTree::verify(tree.root(), leaves[512], 512, *proof));
  }
}
BENCHMARK(BM_MerkleProveVerify);

void BM_TriePut(benchmark::State& state) {
  const std::size_t base = static_cast<std::size_t>(state.range(0));
  Trie trie;
  for (std::size_t i = 0; i < base; ++i)
    trie = trie.put(Sha256::digest(as_bytes("k" + std::to_string(i))),
                    to_bytes("v" + std::to_string(i)));
  std::uint64_t i = base;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trie.put(Sha256::digest(as_bytes("k" + std::to_string(i++))),
                 to_bytes("fresh")));
  }
}
BENCHMARK(BM_TriePut)->Arg(100)->Arg(10000);

void BM_TrieRootHash(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Trie trie;
  for (std::size_t i = 0; i < n; ++i)
    trie = trie.put(Sha256::digest(as_bytes("k" + std::to_string(i))),
                    to_bytes("value"));
  for (auto _ : state) {
    // One fresh leaf invalidates a path; root recomputes incrementally.
    Trie t = trie.put(Sha256::digest(as_bytes("probe")), to_bytes("x"));
    benchmark::DoNotOptimize(t.root_hash());
  }
}
BENCHMARK(BM_TrieRootHash)->Arg(1000);

void BM_HashcashSolve(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::string payload = "blk" + std::to_string(i++);
    benchmark::DoNotOptimize(solve(as_bytes(payload), bits));
  }
}
BENCHMARK(BM_HashcashSolve)->Arg(8)->Arg(12)->Arg(16);

void BM_SignVerify(benchmark::State& state) {
  Rng rng(1);
  KeyPair kp = KeyPair::generate(rng);
  const Bytes msg = to_bytes("a payment of 100 units");
  for (auto _ : state) {
    Signature sig = kp.sign(ByteView{msg.data(), msg.size()}, rng);
    benchmark::DoNotOptimize(
        verify(kp.public_key(), ByteView{msg.data(), msg.size()}, sig));
  }
}
BENCHMARK(BM_SignVerify);

}  // namespace
}  // namespace dlt::crypto

namespace {

/// Console output as usual, plus every run lands in a MetricsRegistry so
/// BENCH_crypto.json carries the same `metrics` section as the other
/// benches (wall-clock micro timings under the profile. prefix).
class RegistryReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      registry.histogram("profile." + run.benchmark_name() + "_ns")
          .observe(run.GetAdjustedRealTime());
    }
  }

  dlt::obs::MetricsRegistry registry;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  RegistryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  dlt::support::JsonObject report;
  report.put("bench", "crypto");
  report.put_raw("metrics", reporter.registry.to_json().to_string());
  dlt::support::write_bench_report("crypto", report);
  std::cout << "Wrote BENCH_crypto.json\n";
  return 0;
}
