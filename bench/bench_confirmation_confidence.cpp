// E5 -- Paper §IV-A: confirmation confidence vs depth.
//
// "The number of appended blocks that guarantee block inclusion with high
// probability are six for Bitcoin and five to eleven for Ethereum."
// We regenerate both sides of that claim:
//  (a) analytically, via Nakamoto's reversal probability, and
//  (b) by simulation, racing an attacker miner against the honest chain
//      and counting how often a depth-z block is reverted.
#include <cmath>
#include <iostream>
#include <string>

#include "chain/blockchain.hpp"
#include "core/confidence.hpp"
#include "core/json_report.hpp"
#include "core/table.hpp"
#include "obs/metrics.hpp"
#include "support/rng.hpp"

using namespace dlt;
using namespace dlt::core;

namespace {

/// Monte-Carlo double-spend race: honest chain extends at rate p, attacker
/// at rate q from z blocks behind; success if the attacker ever gets ahead
/// (within a generous horizon). Mirrors the analytic model's assumptions.
double simulate_reversal(double q, std::uint32_t z, int trials, Rng& rng) {
  int wins = 0;
  const double p = 1.0 - q;
  for (int t = 0; t < trials; ++t) {
    // Stage 1 (Poisson mixing): attacker progress while the merchant
    // waits for z honest confirmations.
    int attacker = 0;
    int honest = 0;
    while (honest < static_cast<int>(z)) {
      if (rng.chance(q))
        ++attacker;
      else
        ++honest;
    }
    // Stage 2: gambler's ruin from the deficit.
    int deficit = static_cast<int>(z) - attacker;  // blocks behind (+1 rule)
    if (deficit <= 0) {
      ++wins;
      continue;
    }
    bool caught = false;
    // Catch-up probability (q/p)^deficit, bounded walk for simulation.
    for (int step = 0; step < 100000; ++step) {
      if (rng.chance(q))
        --deficit;
      else
        ++deficit;
      if (deficit <= 0) {
        caught = true;
        break;
      }
      // Prune hopeless walks: probability of recovery < 1e-12.
      if (static_cast<double>(deficit) * std::log(p / q) > 28.0) break;
    }
    if (caught) ++wins;
  }
  (void)p;
  return static_cast<double>(wins) / trials;
}

}  // namespace

int main() {
  std::cout << "=== E5 / §IV-A: confirmation confidence vs depth ===\n\n";

  std::cout << "Reversal probability (analytic = Nakamoto formula; "
               "simulated = Monte-Carlo race, 20k trials):\n";
  // No cluster here: a local registry tallies the Monte-Carlo work so the
  // report still carries a `metrics` section like every other bench.
  obs::MetricsRegistry registry;
  obs::Counter& trials = registry.counter("confidence.trials");
  obs::Histogram& gap = registry.histogram("confidence.analytic_sim_gap");
  Rng rng(2024);
  JsonArray curves_json;
  for (double q : {0.10, 0.25, 0.40}) {
    std::cout << "\nattacker hash share q = " << q << ":\n";
    Table t({"depth z", "analytic P(reversal)", "simulated P(reversal)"});
    for (std::uint32_t z : {0u, 1u, 2u, 4u, 6u, 8u, 11u, 15u}) {
      const double analytic = reversal_probability(q, z);
      const double sim = simulate_reversal(q, z, 20000, rng);
      trials.inc(20000);
      gap.observe(std::abs(analytic - sim));
      t.row({std::to_string(z), fmt(analytic, 6), fmt(sim, 6)});
      JsonObject row;
      row.put("attacker_share", q);
      row.put("depth", static_cast<std::uint64_t>(z));
      row.put("analytic", analytic);
      row.put("simulated", sim);
      curves_json.push_raw(row.to_string());
    }
    t.print();
  }

  std::cout << "\nDepth needed for risk < 0.1% (Nakamoto's table):\n";
  Table t({"attacker share q", "required depth z"});
  JsonArray depth_json;
  for (double q : {0.08, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40}) {
    const std::uint32_t z = depth_for_risk(q, 0.001);
    t.row({fmt(q, 2), std::to_string(z)});
    JsonObject row;
    row.put("attacker_share", q);
    row.put("required_depth", static_cast<std::uint64_t>(z));
    depth_json.push_raw(row.to_string());
  }
  t.print();

  std::cout << "\nShape check (paper §IV-A): at ~10% attacker share, "
               "~6 confirmations reduce reversal risk below 0.1% -- "
               "Bitcoin's six-block rule. Ethereum's faster blocks carry "
               "less work each, so its community waits 5-11 blocks; the "
               "same table read at higher q covers that range.\n";

  std::cout << "\nNano contrast (paper §IV-B): confirmation is a "
               "majority vote by weighted representatives, not a "
               "probabilistic depth -- see bench_vote_confirmation.\n";

  JsonObject report;
  report.put("bench", "confirmation_confidence");
  report.put_raw("reversal_curves", curves_json.to_string());
  report.put_raw("depth_for_risk", depth_json.to_string());
  report.put_raw("metrics", registry.to_json().to_string());
  write_bench_report("confirmation_confidence", report);
  std::cout << "\nWrote BENCH_confirmation_confidence.json\n";
  return 0;
}
