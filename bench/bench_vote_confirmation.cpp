// E6 -- Paper §IV-B: Nano confirmation by weighted representative vote.
//
// "A transaction is confirmed when it receives a majority vote... beside
// voting on conflicts, representatives vote automatically on blocks they
// have not seen before", plus block cementing. Measures time-to-quorum vs
// representative count and weight distribution, and conflict resolution.
#include <iostream>
#include <string>

#include "core/json_report.hpp"
#include "core/lattice_cluster.hpp"
#include "core/table.hpp"

using namespace dlt;
using namespace dlt::core;

namespace {

struct VoteRun {
  double confirm_median = 0;
  double confirm_p95 = 0;
  std::uint64_t confirmed = 0;
  std::uint64_t cemented = 0;
  std::uint64_t elections = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t vote_messages = 0;
  std::string metrics_json;
};

VoteRun run(std::size_t reps, double link_delay, bool inject_conflicts) {
  LatticeClusterConfig cfg;
  cfg.node_count = std::max<std::size_t>(reps, 4);
  cfg.representative_count = reps;
  cfg.account_count = 16;
  cfg.params.work_bits = 2;
  cfg.link = net::LinkParams{link_delay, link_delay * 0.2, 1e8};
  cfg.seed = 7 + reps;
  LatticeCluster cluster(cfg);
  cluster.fund_accounts();

  Rng wl_rng(11);
  WorkloadConfig wl;
  wl.account_count = cfg.account_count;
  wl.tx_rate = 2.0;
  wl.duration = 40.0;
  cluster.schedule_workload(generate_payments(wl, wl_rng));

  if (inject_conflicts) {
    // A malicious double-send every 10 s: build two blocks on one root.
    for (double at : {10.0, 20.0, 30.0}) {
      cluster.simulation().schedule_at(
          cluster.simulation().now() + at, [&cluster, at] {
            auto& owner = cluster.owner_of(0);
            const auto& key = cluster.account(0);
            const auto* info = owner.ledger().account(key.account_id());
            if (!info || info->head().balance < 2) return;
            Rng rng(static_cast<std::uint64_t>(at));
            lattice::LatticeBlock s1, s2;
            for (auto* s : {&s1, &s2}) {
              s->type = lattice::BlockType::kSend;
              s->account = key.account_id();
              s->previous = info->head().hash();
              s->representative = info->head().representative;
            }
            s1.balance = info->head().balance - 1;
            s1.link = cluster.account(1).account_id();
            s2.balance = info->head().balance - 2;
            s2.link = cluster.account(2).account_id();
            for (auto* s : {&s1, &s2}) {
              s->solve_work(2);
              s->sign(key, rng);
            }
            // Publish the conflicting pair from different nodes.
            (void)cluster.node(0).publish(s1);
            (void)cluster.node(1).publish(s2);
          });
    }
  }

  cluster.run_for(wl.duration + 30.0);

  VoteRun out;
  const auto& conf = cluster.node(0).confirmations();
  out.confirmed = conf.blocks_confirmed;
  out.cemented = conf.blocks_cemented;
  out.elections = conf.elections_started;
  out.rollbacks = conf.elections_lost_rollbacks;
  out.confirm_median =
      conf.time_to_confirm.count() ? conf.time_to_confirm.median() : 0;
  out.confirm_p95 =
      conf.time_to_confirm.count() ? conf.time_to_confirm.p95() : 0;
  const auto traffic = cluster.network().traffic_by_type();
  if (auto votes = traffic.find("lat-vote"); votes != traffic.end())
    out.vote_messages = votes->second.messages;
  out.metrics_json = cluster.metrics_json().to_string();
  return out;
}

}  // namespace

int main() {
  std::cout << "=== E6 / §IV-B: vote-based confirmation & cementing ===\n\n";

  std::cout << "Time to majority-vote confirmation vs representative count "
               "(50 ms links):\n";
  JsonArray reps_json, delay_json, conflict_json;
  std::string metrics_section;
  Table t1({"representatives", "confirmed", "cemented", "median s", "p95 s",
            "vote msgs"});
  for (std::size_t reps : {1u, 2u, 4u, 8u}) {
    VoteRun r = run(reps, 0.05, false);
    if (metrics_section.empty()) metrics_section = r.metrics_json;
    t1.row({std::to_string(reps), std::to_string(r.confirmed),
            std::to_string(r.cemented), fmt(r.confirm_median, 3),
            fmt(r.confirm_p95, 3), std::to_string(r.vote_messages)});
    JsonObject row;
    row.put("representatives", static_cast<std::uint64_t>(reps));
    row.put("confirmed", r.confirmed);
    row.put("cemented", r.cemented);
    row.put("confirm_median_s", r.confirm_median);
    row.put("confirm_p95_s", r.confirm_p95);
    row.put("vote_messages", r.vote_messages);
    reps_json.push_raw(row.to_string());
  }
  t1.print();

  std::cout << "\nEffect of network delay (4 representatives):\n";
  Table t2({"link delay s", "median s", "p95 s"});
  for (double delay : {0.02, 0.1, 0.3, 1.0}) {
    VoteRun r = run(4, delay, false);
    t2.row({fmt(delay, 2), fmt(r.confirm_median, 3), fmt(r.confirm_p95, 3)});
    JsonObject row;
    row.put("link_delay_s", delay);
    row.put("confirm_median_s", r.confirm_median);
    row.put("confirm_p95_s", r.confirm_p95);
    delay_json.push_raw(row.to_string());
  }
  t2.print();

  std::cout << "\nConflict resolution (malicious double-sends injected):\n";
  Table t3({"representatives", "elections", "rollbacks", "confirmed"});
  for (std::size_t reps : {2u, 4u}) {
    VoteRun r = run(reps, 0.05, true);
    t3.row({std::to_string(reps), std::to_string(r.elections),
            std::to_string(r.rollbacks), std::to_string(r.confirmed)});
    JsonObject row;
    row.put("representatives", static_cast<std::uint64_t>(reps));
    row.put("elections", r.elections);
    row.put("rollbacks", r.rollbacks);
    row.put("confirmed", r.confirmed);
    conflict_json.push_raw(row.to_string());
  }
  t3.print();

  std::cout
      << "\nShape check (paper §IV-B): confirmation latency is a few "
         "network round-trips -- independent of any block interval -- and "
         "rises with link delay, not with load. Conflicts trigger "
         "elections; losers are rolled back, and cemented blocks are "
         "immune (paper: block-cementing prevents rollback). For a "
         "transaction with no issues, no extra voting round is required "
         "beyond the automatic vote broadcast (§III-B).\n";

  JsonObject report;
  report.put("bench", "vote_confirmation");
  report.put_raw("representative_sweep", reps_json.to_string());
  report.put_raw("delay_sweep", delay_json.to_string());
  report.put_raw("conflict_resolution", conflict_json.to_string());
  report.put_raw("metrics", metrics_section);
  write_bench_report("vote_confirmation", report);
  std::cout << "\nWrote BENCH_vote_confirmation.json\n";
  return 0;
}
