// E17 -- Paper §VI-B (extended): tangle throughput through the unified
// cluster engine.
//
// The paper's DAG discussion names IOTA's tangle as the other DAG family
// (§II-B footnote 1). Like the block-lattice, the tangle has no protocol
// throughput cap: every transaction approves two others, so issuers ARE
// the validators and capacity scales with offered load until the
// environment (per-tx proof of work, link bandwidth) pushes back. This
// bench drives TangleCluster — the same ClusterEngine that powers the
// chain and lattice throughput benches — so the §VI paradigm comparison
// covers all three ledgers with one metrics schema.
#include <iostream>
#include <string>

#include "core/json_report.hpp"
#include "core/table.hpp"
#include "core/tangle_cluster.hpp"
#include "obs/trace.hpp"
#include "storage/config.hpp"

using namespace dlt;
using namespace dlt::core;

namespace {

struct TangleRun {
  double offered = 0;
  double achieved_tps = 0;
  double confirmed_tps = 0;
  std::uint64_t tips_end = 0;
  bool converged = false;
  std::string metrics_json;
  std::string trace_summary_json;
  std::string latency_line;
};

/// When `trace_path` is non-empty and DLT_TRACE is set, the run's event
/// trace is exported as JSONL (byte-identical across identical-seed runs).
TangleRun run(double offered_tps, double bandwidth, int work_bits,
              const std::string& trace_path = {}) {
  TangleClusterConfig cfg;
  apply_env_crypto(cfg.crypto);  // DLT_VERIFY_THREADS (determinism gate)
  storage::apply_env_storage(cfg.storage);  // DLT_STORAGE (disk legs)
  cfg.obs.trace_capacity = obs::trace_capacity_from_env();
  // DLT_TRACE_SINK streams the reference run write-through (ring optional).
  if (!trace_path.empty()) cfg.obs.trace_sink = obs::trace_sink_from_env();
  cfg.node_count = 6;
  cfg.account_count = 48;
  cfg.params.work_bits = work_bits;
  cfg.params.alpha = 0.05;
  cfg.link = net::LinkParams{0.04, 0.01, bandwidth};
  cfg.seed = 77;
  TangleCluster cluster(cfg);
  cluster.start();

  // Cone walks are O(tangle size) per attach, so runtime grows
  // quadratically with duration × rate; keep the window tight enough for
  // the determinism gate to run this bench at several worker counts.
  const double duration = 25.0;
  Rng wl_rng(4);
  WorkloadConfig wl;
  wl.account_count = cfg.account_count;
  wl.tx_rate = offered_tps;
  wl.duration = duration;
  wl.max_amount = 50;
  cluster.schedule_workload(generate_payments(wl, wl_rng));
  cluster.run_for(duration + 20.0);

  RunMetrics m = cluster.metrics();
  TangleRun out;
  out.offered = offered_tps;
  out.achieved_tps = static_cast<double>(m.included) / duration;
  out.confirmed_tps = static_cast<double>(m.confirmed) / duration;
  out.tips_end = m.pending_end;
  out.converged = cluster.converged();
  out.metrics_json = cluster.metrics_json().to_string();
  out.trace_summary_json = cluster.trace_summary_json().to_string();
  out.latency_line = latency_summary_line(cluster.metrics_registry());
  if (!trace_path.empty() && cluster.tracer().enabled() &&
      !cluster.tracer().events().empty()) {  // sink-only mode has no ring
    if (cluster.tracer().export_jsonl(trace_path))
      std::cout << "Wrote " << trace_path << "\n";
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "=== E17 / §VI-B: tangle throughput scales with offered load "
               "(unified engine) ===\n\n";

  auto tangle_json = [](const TangleRun& r, double bandwidth) {
    JsonObject row;
    row.put("offered_tps", r.offered);
    row.put("achieved_tps", r.achieved_tps);
    row.put("confirmed_tps", r.confirmed_tps);
    row.put("tips_end", r.tips_end);
    row.put("converged", r.converged);
    row.put("link_bandwidth", bandwidth);
    return row.to_string();
  };
  JsonArray generous_json, constrained_json;
  std::string metrics_section, trace_section;

  std::cout << "Generous environment (100 Mbit links, trivial work):\n";
  Table t1({"offered TPS", "achieved TPS", "confirmed TPS", "tips at end",
            "converged"});
  for (double offered : {2.0, 6.0, 16.0}) {
    const bool reference = metrics_section.empty();
    TangleRun r = run(offered, 1.25e7, 2,
                      reference ? "TRACE_throughput_tangle.jsonl" : "");
    if (reference) {
      metrics_section = r.metrics_json;
      trace_section = r.trace_summary_json;
      if (!r.latency_line.empty())
        std::cout << r.latency_line << " (reference run)\n";
    }
    t1.row({fmt(r.offered, 0), fmt(r.achieved_tps, 1),
            fmt(r.confirmed_tps, 1), std::to_string(r.tips_end),
            r.converged ? "yes" : "no"});
    generous_json.push_raw(tangle_json(r, 1.25e7));
  }
  t1.print();
  std::cout << "Every issuer validates two predecessors, so achieved tracks "
               "offered -- no block-interval knee.\n";

  std::cout << "\nConstrained network (links throttled; gossip floods share "
               "the pipe):\n";
  Table t2({"link bandwidth", "offered TPS", "achieved TPS", "tips at end",
            "converged"});
  for (double bw : {1.25e6, 1.0e4, 3.0e3}) {
    TangleRun r = run(16.0, bw, 2);
    t2.row({format_bytes(static_cast<std::uint64_t>(bw)) + "/s", "16",
            fmt(r.achieved_tps, 1), std::to_string(r.tips_end),
            r.converged ? "yes" : "no"});
    constrained_json.push_raw(tangle_json(r, bw));
  }
  t2.print();
  std::cout << "Issuance never slows (issuers are the validators), but "
               "shrinking links delay gossip and replicas drift apart -- "
               "the tangle's ceiling is the network, exactly the §VI-B "
               "claim for DAGs.\n";

  JsonObject report;
  report.put("bench", "throughput_tangle");
  report.put_raw("generous", generous_json.to_string());
  report.put_raw("constrained", constrained_json.to_string());
  report.put_raw("metrics", metrics_section);
  report.put_raw("trace_summary", trace_section);
  write_bench_report("throughput_tangle", report);
  std::cout << "\nWrote BENCH_throughput_tangle.json\n";
  return 0;
}
