// E19 -- Paper §V re-measured as real on-disk bytes (supersedes the
// model-byte accounting of E7, which this bench still reports alongside).
//
// "Bitcoin is estimated to be 145.95 GB... Ethereum 39.62 GB... Nano's
// ledger size is 3.42 GB with around 6,700,078 blocks."
// The same payment workload runs through all four implementations with the
// pluggable storage layer in DISK mode by default (DLT_STORAGE=memory
// flips it), so the §V comparison is made on bytes a node actually keeps:
// each system's block log + state arena under bench-scratch/, then each
// §V-A size-reduction discipline as a log-catalog operation:
//   bitcoin-like   prune_bodies   (headers + chainstate + recent blocks)
//   ethereum-like  prune_states   (+ fast-sync download plan)
//   nano-like      prune_history  (head blocks only)
//   iota-like      prune_history  (tip sites only; excluded from the §V
//                                  trio ordering, the paper sizes BTC/ETH/
//                                  Nano point-in-time deployments)
//
// Determinism contract: every figure in BENCH_ledger_size.json is
// mode-independent arithmetic (the storage.* gauges are identical in
// memory and disk mode), so the determinism gate can diff the report
// across DLT_STORAGE settings byte-for-byte. Real file sizes are verified
// against the gauges after each cluster shuts down and printed to stdout
// only.
//
// The final stanza grows one ledger past a deliberately small RAM budget
// (4 MiB) with bodies offloaded to the log as it grows: the on-disk ledger
// ends larger than the budget while resident model bytes stay under it --
// the operational point of §V pruning/offload, demonstrated for real.
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "chain/fast_sync.hpp"
#include "core/chain_cluster.hpp"
#include "core/json_report.hpp"
#include "core/lattice_cluster.hpp"
#include "core/table.hpp"
#include "core/tangle_cluster.hpp"
#include "storage/config.hpp"
#include "storage/ledger_store.hpp"

using namespace dlt;
using namespace dlt::core;

namespace {

constexpr std::size_t kAccounts = 40;
constexpr double kTxRate = 3.0;
constexpr double kDuration = 400.0;

storage::StorageConfig storage_config() {
  storage::StorageConfig cfg;
  cfg.mode = storage::StorageMode::kDisk;
  cfg.path = "bench-scratch/ledger_size";
  storage::apply_env_storage(cfg);  // DLT_STORAGE=memory|disk[:dir] override
  return cfg;
}

WorkloadConfig workload() {
  WorkloadConfig wl;
  wl.account_count = kAccounts;
  wl.tx_rate = kTxRate;
  wl.duration = kDuration;
  wl.max_amount = 500;
  return wl;
}

struct SizeRow {
  std::string system;
  std::uint64_t txs = 0;
  // Real bytes (storage.* gauges; == file bytes on disk, identical
  // arithmetic in memory mode).
  std::uint64_t log_full = 0;
  std::uint64_t log_pruned = 0;
  std::uint64_t state_bytes = 0;
  std::uint64_t segments = 0;
  std::uint64_t pruned_gauge = 0;
  // Historical E7 model-byte accounting, kept for trajectory continuity.
  std::uint64_t model_full = 0;
  std::uint64_t model_pruned = 0;
  std::string detail;
  std::string metrics_json;
  // Post-shutdown verification (disk mode only).
  std::string dir;
  std::uint64_t expect_state = 0;
};

void capture_store(SizeRow& row, const storage::LedgerStore& store,
                   bool full_leg) {
  if (full_leg) {
    row.log_full = store.log_bytes();
  } else {
    row.log_pruned = store.log_bytes();
    row.state_bytes = store.state_bytes();
    row.segments = store.log().segment_count();
    row.pruned_gauge = store.pruned_bytes();
    row.dir = store.dir();
    row.expect_state = store.state_bytes();
  }
}

SizeRow run_chain(chain::ChainParams params, const std::string& label,
                  bool eth_style) {
  // Compress the block interval so the fixed workload spans many blocks;
  // ledger bytes depend on content, not on wall-clock pacing.
  params.verify_pow = false;
  params.retarget_window = 0;
  params.block_interval = eth_style ? 5.0 : 40.0;
  params.initial_difficulty = 1e6;

  ChainClusterConfig cfg;
  cfg.params = params;
  cfg.node_count = 4;
  cfg.miner_count = 2;
  cfg.total_hashrate = 1e6 / params.block_interval;
  cfg.account_count = kAccounts;
  cfg.initial_balance = 50'000'000;
  // Plenty of independent coins so the wallet never throttles (UTXO).
  cfg.genesis_outputs_per_account =
      static_cast<std::size_t>(kTxRate * kDuration / kAccounts) + 2;
  cfg.seed = 5;
  cfg.storage = storage_config();
  ChainCluster cluster(cfg);
  cluster.start();

  Rng wl_rng(99);  // identical workload stream across systems
  cluster.schedule_workload(generate_payments(workload(), wl_rng));
  cluster.run_for(kDuration + 40 * params.block_interval);

  auto& bc = cluster.node(0).chain();
  SizeRow row;
  row.system = label;
  row.txs = cluster.metrics().included;
  row.model_full = bc.storage().total();
  capture_store(row, *bc.store(), /*full_leg=*/true);

  if (eth_style) {
    // §V-A: discard state deltas; then measure what a fast-syncing node
    // must download vs a full replay.
    auto fast = chain::plan_fast_sync(bc, 8);
    std::string sync;
    if (fast.ok()) {
      auto full = chain::plan_full_sync(bc);
      sync = "fast sync " + format_bytes(fast->total_bytes()) + " vs full " +
             format_bytes(full.total_bytes());
    }
    bc.prune_states(8);  // scaled-down keep window (geth: 1024 blocks)
    row.detail = sync;
  } else {
    // §V-A: Bitcoin prune mode keeps headers + chainstate + recent
    // blocks (keep window scaled to this run; mainnet keeps 288).
    bc.prune_bodies(3);
    row.detail = "prune keeps recent blocks + headers + UTXO set";
  }
  row.model_pruned = bc.storage().total();
  capture_store(row, *bc.store(), /*full_leg=*/false);
  row.metrics_json = cluster.metrics_json().to_string();
  return row;
}

SizeRow run_lattice() {
  LatticeClusterConfig cfg;
  cfg.node_count = 4;
  cfg.representative_count = 2;
  cfg.account_count = kAccounts;
  cfg.initial_balance = 50'000'000;
  cfg.params.work_bits = 2;
  cfg.seed = 5;
  cfg.storage = storage_config();
  LatticeCluster cluster(cfg);
  cluster.fund_accounts();

  Rng wl_rng(99);
  cluster.schedule_workload(generate_payments(workload(), wl_rng));
  cluster.run_for(kDuration + 60.0);

  auto& ledger = cluster.node(0).ledger();
  SizeRow row;
  row.system = "nano-like";
  row.txs = cluster.metrics().included;
  row.model_full = ledger.storage().total();
  capture_store(row, *ledger.store(), /*full_leg=*/true);
  ledger.prune_history();
  row.model_pruned = ledger.storage().total();
  capture_store(row, *ledger.store(), /*full_leg=*/false);
  row.metrics_json = cluster.metrics_json().to_string();
  row.detail = "head-only: balances survive, history discarded";
  return row;
}

SizeRow run_tangle() {
  TangleClusterConfig cfg;
  cfg.node_count = 4;
  cfg.account_count = kAccounts;
  cfg.params.work_bits = 2;
  cfg.seed = 5;
  cfg.storage = storage_config();
  TangleCluster cluster(cfg);
  cluster.start();

  Rng wl_rng(99);
  cluster.schedule_workload(generate_payments(workload(), wl_rng));
  cluster.run_for(kDuration + 60.0);

  auto& tangle = cluster.node(0).tangle();
  SizeRow row;
  row.system = "iota-like";
  row.txs = cluster.metrics().included;
  row.model_full = tangle.stored_bytes();
  capture_store(row, *tangle.store(), /*full_leg=*/true);
  tangle.prune_history();  // storage-only: the in-RAM DAG keeps serving
  row.model_pruned = tangle.stored_bytes();
  capture_store(row, *tangle.store(), /*full_leg=*/false);
  row.metrics_json = cluster.metrics_json().to_string();
  row.detail = "log keeps tip sites only; in-RAM DAG untouched";
  return row;
}

// ---------------------------------------------------------------------------
// Post-shutdown verification: the gauges promised file bytes; check them.

std::uint64_t sum_files(const std::string& dir, const std::string& suffix) {
  namespace fs = std::filesystem;
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0)
      total += static_cast<std::uint64_t>(fs::file_size(entry.path(), ec));
  }
  return total;
}

bool verify_disk_bytes(const SizeRow& row) {
  if (row.dir.empty()) return true;  // memory mode: nothing on disk
  const std::uint64_t log_actual = sum_files(row.dir, ".dlog");
  const std::uint64_t state_actual = sum_files(row.dir, "state.arena");
  bool ok = true;
  if (log_actual != row.log_pruned) {
    std::cout << "  MISMATCH " << row.system << ": log gauge "
              << row.log_pruned << " B vs files " << log_actual << " B\n";
    ok = false;
  }
  if (state_actual != row.expect_state) {
    std::cout << "  MISMATCH " << row.system << ": state gauge "
              << row.expect_state << " B vs arena " << state_actual << " B\n";
    ok = false;
  }
  if (ok)
    std::cout << "  " << row.system << ": " << format_bytes(log_actual)
              << " log + " << format_bytes(state_actual)
              << " arena on disk == gauges\n";
  return ok;
}

// ---------------------------------------------------------------------------
// Overbudget stanza: grow a UTXO chain past a small RAM budget with bodies
// offloaded to the log (disk mode), proving the ledger can exceed what the
// node keeps resident.

struct OverbudgetResult {
  std::uint64_t budget = 0;
  std::uint64_t blocks = 0;
  std::uint64_t txs = 0;
  std::uint64_t log_bytes = 0;   // mode-independent gauge
  std::uint64_t model_bytes = 0;  // §V accounting (bodies still counted)
  // Disk-mode-only figures (offload is a no-op without a disk copy).
  std::uint64_t offloaded = 0;
  std::uint64_t resident_model = 0;
  bool disk = false;
  std::string dir;
};

OverbudgetResult run_overbudget() {
  constexpr std::uint64_t kBudget = 4ull << 20;  // 4 MiB resident budget
  constexpr std::size_t kFan = 16;               // spend chains per block
  constexpr std::uint32_t kKeepDepth = 8;        // bodies kept resident

  chain::ChainParams params = chain::bitcoin_like();
  params.verify_pow = false;
  params.retarget_window = 0;
  params.block_interval = 1.0;

  crypto::KeyPair wallet = crypto::KeyPair::from_seed(0xB16);
  crypto::KeyPair miner = crypto::KeyPair::from_seed(0xC01);
  chain::GenesisSpec genesis;
  for (std::size_t i = 0; i < kFan; ++i)
    genesis.allocations.emplace_back(wallet.account_id(), 1'000'000);
  chain::Blockchain bc(params, genesis);

  auto store =
      std::make_shared<storage::LedgerStore>(storage_config(), "overbudget");
  bc.attach_store(store);

  OverbudgetResult out;
  out.budget = kBudget;
  out.disk = store->disk();
  out.dir = store->dir();

  // Each spend chain rolls one genesis coin forward: block N's tx j spends
  // block N-1's tx j. Chainstate stays ~constant while the log grows.
  std::vector<chain::Outpoint> frontier;
  const chain::UtxoTransaction& mint =
      bc.at_height(0)->utxo_txs().front();
  for (std::size_t i = 0; i < kFan; ++i)
    frontier.push_back({mint.id(), static_cast<std::uint32_t>(i)});

  Rng rng(0xE19);
  const std::vector<crypto::KeyPair> signer{wallet};
  // offload_bodies() reports bodies + undo dropped in one figure, but the
  // §V breakdown keeps counting offloaded bodies (they exist, on disk).
  // Track the body-only share by differencing the undo breakdown, so
  // resident = model total - bodies-on-disk.
  std::uint64_t bodies_on_disk = 0;
  auto offload = [&](std::uint32_t keep) {
    const std::uint64_t undo_before = bc.storage().undo_data;
    const std::uint64_t dropped = bc.offload_bodies(keep);
    bodies_on_disk += dropped - (undo_before - bc.storage().undo_data);
    out.offloaded += dropped;
  };
  // Stop once the log is comfortably past the budget (same gauge in both
  // modes, so the loop count is mode-independent).
  while (store->log_bytes() < kBudget + kBudget / 2 && out.blocks < 8000) {
    const chain::Block* tip = bc.find(bc.tip_hash());
    chain::UtxoTxList txs;
    txs.push_back(chain::UtxoTransaction::coinbase(
        miner.account_id(), params.block_reward, tip->header.height + 1));
    for (std::size_t j = 0; j < kFan; ++j) {
      chain::UtxoTransaction tx;
      tx.inputs.push_back(chain::TxIn{frontier[j], wallet.public_key(), {}});
      tx.outputs.push_back(chain::TxOut{1'000'000, wallet.account_id()});
      tx.sign_all(signer, rng);
      frontier[j] = chain::Outpoint{tx.id(), 0};
      txs.push_back(std::move(tx));
    }
    chain::Block b;
    b.header.height = tip->header.height + 1;
    b.header.parent = bc.tip_hash();
    b.header.timestamp = tip->header.timestamp + params.block_interval;
    b.header.difficulty = bc.next_difficulty(b.header.parent);
    b.header.proposer = miner.account_id();
    b.txs = std::move(txs);
    b.header.merkle_root = b.compute_merkle_root();  // nonce 0: pow off
    auto res = bc.submit(b);
    if (!res) {
      std::cout << "overbudget: submit failed at height "
                << b.header.height << ": " << res.error().to_string() << "\n";
      break;
    }
    ++out.blocks;
    out.txs += kFan;
    if (out.blocks % 64 == 0) offload(kKeepDepth);
  }
  offload(kKeepDepth);
  out.log_bytes = store->log_bytes();
  out.model_bytes = bc.storage().total();
  out.resident_model = out.model_bytes - bodies_on_disk;
  return out;
}

std::string per_tx(std::uint64_t bytes, std::uint64_t txs) {
  if (txs == 0) return "-";
  return std::to_string(bytes / txs) + " B/tx";
}

}  // namespace

int main() {
  const storage::StorageConfig scfg = storage_config();
  std::cout << "=== E19 / §V: on-disk ledger size under one identical "
               "workload (storage: "
            << storage::to_string(scfg.mode) << ") ===\n\n";

  // Wall-clock per leg goes to stdout only; the JSON stays deterministic.
  auto timed = [](const char* label, auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    SizeRow row = fn();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::cout << "[" << label << " leg: " << static_cast<int>(secs)
              << "s wall]\n";
    return row;
  };
  std::vector<SizeRow> rows;
  rows.push_back(timed("bitcoin", [] {
    return run_chain(chain::bitcoin_like(), "bitcoin-like", false);
  }));
  rows.push_back(timed("ethereum", [] {
    return run_chain(chain::ethereum_like(), "ethereum-like", true);
  }));
  rows.push_back(timed("nano", run_lattice));
  rows.push_back(timed("iota", run_tangle));
  std::cout << "\n";

  Table t({"system", "payments", "log (full)", "full B/tx", "log (pruned)",
           "pruned B/tx", "state", "segments"});
  for (const SizeRow& r : rows) {
    t.row({r.system, std::to_string(r.txs), format_bytes(r.log_full),
           per_tx(r.log_full, r.txs), format_bytes(r.log_pruned),
           per_tx(r.log_pruned, r.txs), format_bytes(r.state_bytes),
           std::to_string(r.segments)});
  }
  t.print();

  std::cout << "\nMechanism details:\n";
  for (const SizeRow& r : rows)
    if (!r.detail.empty())
      std::cout << "  " << r.system << ": " << r.detail << "\n";

  std::cout << "\nModel-byte accounting (E7 continuity):\n";
  Table t2({"system", "model full", "model pruned", "at 300M txs (full)"});
  for (const SizeRow& r : rows) {
    if (r.txs == 0) continue;
    const double full = static_cast<double>(r.model_full) /
                        static_cast<double>(r.txs) * 3e8;
    t2.row({r.system, format_bytes(r.model_full), format_bytes(r.model_pruned),
            format_bytes(static_cast<std::uint64_t>(full))});
  }
  t2.print();

  // Every §V-A discipline must actually shrink its log.
  bool prune_ok = true;
  for (const SizeRow& r : rows) {
    if (r.log_pruned >= r.log_full) {
      std::cout << "\nFAIL: " << r.system << " pruning did not shrink the log ("
                << r.log_full << " -> " << r.log_pruned << " B)\n";
      prune_ok = false;
    }
  }

  // §V ordering on operating footprints: an archival UTXO node keeps the
  // full block log (Bitcoin's 145.95 GB is the unpruned chain), a
  // state-pruning account node keeps headers + recent states (geth
  // default), a lattice node keeps head blocks only (Nano's 3.42 GB is
  // already near-minimal). The iota-like row is reported but not part of
  // the paper's trio comparison.
  const std::uint64_t utxo_full = rows[0].log_full;
  const std::uint64_t account_pruned = rows[1].log_pruned;
  const std::uint64_t lattice_pruned = rows[2].log_pruned;
  const bool ordering =
      utxo_full > account_pruned && account_pruned > lattice_pruned;
  std::cout << "\n§V ordering (operating footprints): UTXO archival "
            << format_bytes(utxo_full) << " > account state-pruned "
            << format_bytes(account_pruned) << " > lattice head-only "
            << format_bytes(lattice_pruned) << " : "
            << (ordering ? "HOLDS" : "VIOLATED") << "\n";

  std::cout << "\nOn-disk verification (after node shutdown):\n";
  bool disk_ok = true;
  for (const SizeRow& r : rows) disk_ok = verify_disk_bytes(r) && disk_ok;
  if (rows.front().dir.empty())
    std::cout << "  (memory mode: gauges computed by the same arithmetic, "
                 "nothing written)\n";

  // Overbudget stanza.
  OverbudgetResult ob = run_overbudget();
  std::cout << "\nOverbudget ledger (RAM budget "
            << format_bytes(ob.budget) << "):\n  " << ob.blocks << " blocks / "
            << ob.txs << " spends -> log " << format_bytes(ob.log_bytes)
            << " (model " << format_bytes(ob.model_bytes) << ")\n";
  const bool ob_grown = ob.log_bytes > ob.budget;
  bool ob_resident_ok = true;
  if (ob.disk) {
    std::cout << "  offloaded " << format_bytes(ob.offloaded)
              << " of bodies; resident model " << format_bytes(ob.resident_model)
              << (ob.resident_model < ob.budget ? " < budget\n"
                                                : " EXCEEDS budget\n");
    ob_resident_ok = ob.resident_model < ob.budget;
    const std::uint64_t ob_files = sum_files(ob.dir, ".dlog");
    if (ob_files != ob.log_bytes) {
      std::cout << "  MISMATCH overbudget: log gauge " << ob.log_bytes
                << " B vs files " << ob_files << " B\n";
      disk_ok = false;
    }
  } else {
    std::cout << "  (memory mode: offload is a no-op without a disk copy)\n";
  }
  if (!ob_grown)
    std::cout << "  FAIL: ledger did not outgrow the RAM budget\n";

  std::cout
      << "\nShape check (paper §V): the UTXO chain's archival log stores the "
         "most per transaction (inputs + outputs + change), the account "
         "chain less once state deltas are pruned, and the balance-carrying "
         "lattice prunes to near-constant size per account -- reproducing "
         "BTC >> ETH >> Nano on real bytes. The trade-off is historical "
         "accessibility (pruned nodes cannot serve history).\n";

  JsonArray rows_json;
  for (const SizeRow& r : rows) {
    JsonObject storage_json;
    storage_json.put("log_bytes_full", r.log_full);
    storage_json.put("log_bytes_pruned", r.log_pruned);
    storage_json.put("state_bytes", r.state_bytes);
    storage_json.put("segments", r.segments);
    storage_json.put("pruned_bytes", r.pruned_gauge);
    JsonObject row;
    row.put("system", r.system);
    row.put("payments", r.txs);
    row.put("full_bytes", r.model_full);
    row.put("pruned_bytes", r.model_pruned);
    row.put_raw("storage", storage_json.to_string());
    rows_json.push_raw(row.to_string());
  }
  JsonObject ordering_json;
  ordering_json.put("utxo_full_log", utxo_full);
  ordering_json.put("account_pruned_log", account_pruned);
  ordering_json.put("lattice_pruned_log", lattice_pruned);
  ordering_json.put("holds", ordering);
  JsonObject ob_json;  // mode-independent members only: the model bytes
  // stay stdout-only (offload clears undo data, which memory mode keeps)
  ob_json.put("budget_bytes", ob.budget);
  ob_json.put("blocks", ob.blocks);
  ob_json.put("spends", ob.txs);
  ob_json.put("log_bytes", ob.log_bytes);
  ob_json.put("exceeds_budget", ob_grown);
  JsonObject report;
  report.put("bench", "ledger_size");
  report.put_raw("systems", rows_json.to_string());
  report.put_raw("ordering", ordering_json.to_string());
  report.put_raw("overbudget", ob_json.to_string());
  report.put_raw("metrics", rows.front().metrics_json);
  write_bench_report("ledger_size", report);
  std::cout << "\nWrote BENCH_ledger_size.json\n";

  const bool ok = prune_ok && ordering && disk_ok && ob_grown && ob_resident_ok;
  if (!ok) std::cout << "\nE19 GATES FAILED\n";
  return ok ? 0 : 1;
}
