// E7 -- Paper §V: ledger size and pruning.
//
// "Bitcoin is estimated to be 145.95 GB... Ethereum 39.62 GB... Nano's
// ledger size is 3.42 GB with around 6,700,078 blocks."
// We run the *same* payment workload through all three implementations and
// measure stored bytes, then exercise each system's §V size-reduction
// mechanism: Bitcoin block-file pruning, Ethereum state-delta pruning +
// fast sync, and Nano head-only pruning.
#include <iostream>

#include "chain/fast_sync.hpp"
#include "core/chain_cluster.hpp"
#include "core/json_report.hpp"
#include "core/lattice_cluster.hpp"
#include "core/table.hpp"

using namespace dlt;
using namespace dlt::core;

namespace {

constexpr std::size_t kAccounts = 40;
constexpr double kTxRate = 3.0;
constexpr double kDuration = 400.0;

WorkloadConfig workload() {
  WorkloadConfig wl;
  wl.account_count = kAccounts;
  wl.tx_rate = kTxRate;
  wl.duration = kDuration;
  wl.max_amount = 500;
  return wl;
}

struct SizeRow {
  std::string system;
  std::uint64_t txs = 0;
  std::uint64_t full_bytes = 0;
  std::uint64_t pruned_bytes = 0;
  std::string detail;
  std::string metrics_json;
};

SizeRow run_chain(chain::ChainParams params, const std::string& label,
                  bool eth_style) {
  // Compress the block interval so the fixed workload spans many blocks;
  // ledger bytes depend on content, not on wall-clock pacing.
  params.verify_pow = false;
  params.retarget_window = 0;
  params.block_interval = eth_style ? 5.0 : 40.0;
  params.initial_difficulty = 1e6;

  ChainClusterConfig cfg;
  cfg.params = params;
  cfg.node_count = 4;
  cfg.miner_count = 2;
  cfg.total_hashrate = 1e6 / params.block_interval;
  cfg.account_count = kAccounts;
  cfg.initial_balance = 50'000'000;
  // Plenty of independent coins so the wallet never throttles (UTXO).
  cfg.genesis_outputs_per_account =
      static_cast<std::size_t>(kTxRate * kDuration / kAccounts) + 2;
  cfg.seed = 5;
  ChainCluster cluster(cfg);
  cluster.start();

  Rng wl_rng(99);  // identical workload stream across systems
  cluster.schedule_workload(generate_payments(workload(), wl_rng));
  cluster.run_for(kDuration + 40 * params.block_interval);

  auto& bc = cluster.node(0).chain();
  SizeRow row;
  row.system = label;
  row.txs = cluster.metrics().included;
  row.full_bytes = bc.storage().total();
  row.metrics_json = cluster.metrics_json().to_string();

  if (eth_style) {
    // §V-A: discard state deltas; then measure what a fast-syncing node
    // must download vs a full replay.
    auto fast = chain::plan_fast_sync(bc, 8);
    std::string sync;
    if (fast.ok()) {
      auto full = chain::plan_full_sync(bc);
      sync = "fast sync " + format_bytes(fast->total_bytes()) + " vs full " +
             format_bytes(full.total_bytes());
    }
    bc.prune_states(8);  // scaled-down keep window (geth: 1024 blocks)
    row.pruned_bytes = bc.storage().total();
    row.detail = sync;
  } else {
    // §V-A: Bitcoin prune mode keeps headers + chainstate + recent
    // blocks (keep window scaled to this run; mainnet keeps 288).
    bc.prune_bodies(3);
    row.pruned_bytes = bc.storage().total();
    row.detail = "prune keeps recent blocks + headers + UTXO set";
  }
  return row;
}

SizeRow run_lattice() {
  LatticeClusterConfig cfg;
  cfg.node_count = 4;
  cfg.representative_count = 2;
  cfg.account_count = kAccounts;
  cfg.initial_balance = 50'000'000;
  cfg.params.work_bits = 2;
  cfg.seed = 5;
  LatticeCluster cluster(cfg);
  cluster.fund_accounts();

  Rng wl_rng(99);
  cluster.schedule_workload(generate_payments(workload(), wl_rng));
  cluster.run_for(kDuration + 60.0);

  auto& ledger = cluster.node(0).ledger();
  SizeRow row;
  row.system = "nano-like";
  row.txs = cluster.metrics().included;
  row.full_bytes = ledger.storage().total();
  row.metrics_json = cluster.metrics_json().to_string();
  ledger.prune_history();
  row.pruned_bytes = ledger.storage().total();
  row.detail = "head-only: balances survive, history discarded";
  return row;
}

std::string per_tx(std::uint64_t bytes, std::uint64_t txs) {
  if (txs == 0) return "-";
  return std::to_string(bytes / txs) + " B/tx";
}

}  // namespace

int main() {
  std::cout << "=== E7 / §V: ledger size under one identical workload ===\n\n";

  std::vector<SizeRow> rows;
  rows.push_back(run_chain(chain::bitcoin_like(), "bitcoin-like", false));
  rows.push_back(run_chain(chain::ethereum_like(), "ethereum-like", true));
  rows.push_back(run_lattice());

  Table t({"system", "payments on ledger", "full size", "full B/tx",
           "after pruning", "pruned B/tx"});
  for (const SizeRow& r : rows) {
    t.row({r.system, std::to_string(r.txs), format_bytes(r.full_bytes),
           per_tx(r.full_bytes, r.txs), format_bytes(r.pruned_bytes),
           per_tx(r.pruned_bytes, r.txs)});
  }
  t.print();

  std::cout << "\nMechanism details:\n";
  for (const SizeRow& r : rows)
    if (!r.detail.empty()) std::cout << "  " << r.system << ": " << r.detail
                                     << "\n";

  std::cout << "\nExtrapolation to the paper's point-in-time observations "
               "(§V: BTC 145.95 GB >> ETH 39.62 GB >> Nano 3.42 GB):\n";
  Table t2({"system", "bytes/tx (full)", "at 300M txs", "at 300M txs pruned"});
  for (const SizeRow& r : rows) {
    if (r.txs == 0) continue;
    const double full = static_cast<double>(r.full_bytes) /
                        static_cast<double>(r.txs) * 3e8;
    const double pruned = static_cast<double>(r.pruned_bytes) /
                          static_cast<double>(r.txs) * 3e8;
    t2.row({r.system, per_tx(r.full_bytes, r.txs),
            format_bytes(static_cast<std::uint64_t>(full)),
            format_bytes(static_cast<std::uint64_t>(pruned))});
  }
  t2.print();

  std::cout
      << "\nShape check (paper §V): the UTXO chain stores the most per "
         "transaction (inputs + outputs + change), the account chain less "
         "(single balance entries; receipts and state deltas prunable), "
         "and the balance-carrying lattice prunes to near-constant size "
         "per account -- reproducing BTC >> ETH >> Nano. The trade-off is "
         "historical accessibility (pruned nodes cannot serve history).\n";

  JsonArray rows_json;
  for (const SizeRow& r : rows) {
    JsonObject row;
    row.put("system", r.system);
    row.put("payments", r.txs);
    row.put("full_bytes", r.full_bytes);
    row.put("pruned_bytes", r.pruned_bytes);
    rows_json.push_raw(row.to_string());
  }
  JsonObject report;
  report.put("bench", "ledger_size");
  report.put_raw("systems", rows_json.to_string());
  report.put_raw("metrics", rows.front().metrics_json);
  write_bench_report("ledger_size", report);
  std::cout << "\nWrote BENCH_ledger_size.json\n";
  return 0;
}
