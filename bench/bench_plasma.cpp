// E12 -- Paper §VI-A: Plasma-style nested chains.
//
// "Only Merkle roots created in the sidechains are periodically
// broadcasted to the main network during non-faulty states allowing
// scalable transactions. For faulty states, stakeholders need to display
// proof of fraud and the Byzantine node gets penalized."
#include <iostream>
#include <string>

#include "core/json_report.hpp"
#include "core/table.hpp"
#include "obs/metrics.hpp"
#include "scaling/plasma.hpp"
#include "support/stats.hpp"

using namespace dlt;
using namespace dlt::core;
using namespace dlt::scaling;

int main() {
  std::cout << "=== E12 / §VI-A: Plasma child chains ===\n\n";

  Rng rng(5);
  std::vector<crypto::KeyPair> users;
  for (int i = 0; i < 32; ++i)
    users.push_back(crypto::KeyPair::from_seed(0x800 + i));

  // No cluster here: a local registry tallies the child-chain activity so
  // the report still carries a `metrics` section like every other bench.
  obs::MetricsRegistry registry;
  obs::Counter& child_txs = registry.counter("plasma.child_txs");
  obs::Counter& commitments = registry.counter("plasma.commitments");
  JsonArray footprint_json;

  std::cout << "Root-chain footprint vs child-chain activity (commitments "
               "are 32-byte roots):\n";
  Table t({"child txs", "child blocks", "root-chain commitments",
           "root-chain bytes", "bytes if all on root chain"});
  for (std::size_t txs : {100u, 1'000u, 10'000u}) {
    PlasmaContract contract(1'000'000);
    PlasmaOperator op(contract, /*block_tx_limit=*/500);
    for (const auto& u : users) op.sync_deposit(u.account_id(), 1'000'000);

    std::vector<std::uint64_t> nonces(users.size(), 0);
    std::size_t submitted = 0;
    Rng traffic(9);
    while (submitted < txs) {
      const std::size_t from = traffic.uniform(users.size());
      const std::size_t to = traffic.uniform(users.size());
      if (from == to) continue;
      PlasmaTx tx;
      tx.to = users[to].account_id();
      tx.amount = 1 + traffic.uniform(10);
      tx.nonce = nonces[from];
      tx.sign(users[from], rng);
      if (op.submit(tx).ok()) {
        ++nonces[from];
        ++submitted;
      }
      if (op.pending() >= 500) (void)op.seal_and_commit();
    }
    while (op.pending() > 0) (void)op.seal_and_commit();

    const std::uint64_t root_bytes = contract.commitments() * (32 + 80);
    const std::uint64_t naive_bytes = txs * 124;  // account-tx size
    child_txs.inc(txs);
    commitments.inc(contract.commitments());
    t.row({std::to_string(txs), std::to_string(op.blocks().size()),
           std::to_string(contract.commitments()), format_bytes(root_bytes),
           format_bytes(naive_bytes)});
    JsonObject row;
    row.put("child_txs", static_cast<std::uint64_t>(txs));
    row.put("child_blocks", static_cast<std::uint64_t>(op.blocks().size()));
    row.put("commitments",
            static_cast<std::uint64_t>(contract.commitments()));
    row.put("root_chain_bytes", root_bytes);
    row.put("naive_bytes", naive_bytes);
    footprint_json.push_raw(row.to_string());
  }
  t.print();

  std::cout << "\nExit with Merkle proof (user leaves the child chain):\n";
  {
    PlasmaContract contract(1'000'000);
    PlasmaOperator op(contract, 500);
    op.sync_deposit(users[0].account_id(), 10'000);
    PlasmaTx tx;
    tx.to = users[1].account_id();
    tx.amount = 4'000;
    tx.nonce = 0;
    tx.sign(users[0], rng);
    (void)op.submit(tx);
    auto block = op.seal_and_commit();
    auto proof = op.prove(block->number, 0);
    Status st =
        contract.exit(users[1].account_id(), 4'000, block->number,
                      block->txs[0], 0, *proof);
    Table t2({"step", "result"});
    t2.row({"commit root on root chain", "ok"});
    t2.row({"exit 4000 with inclusion proof", st.ok() ? "accepted"
                                                      : st.to_string()});
    t2.row({"proof size",
            std::to_string(proof->size() * 32) + " bytes"});
    t2.print();
  }

  std::cout << "\nFraud proof (operator commits an invalid block):\n";
  {
    PlasmaContract contract(1'000'000);
    PlasmaOperator op(contract, 500);
    op.sync_deposit(users[0].account_id(), 10'000);
    PlasmaTx forged;
    forged.to = users[2].account_id();
    forged.amount = 9'999;
    forged.nonce = 0;
    forged.sign(users[0], rng);
    forged.signature.s ^= 1;  // broken signature hidden in the block
    PlasmaBlock bad = op.seal_with_forgery(forged);
    auto proof = op.prove(bad.number, bad.txs.size() - 1);
    Status st = contract.challenge(bad.number, forged,
                                   bad.txs.size() - 1, *proof);
    Table t3({"step", "result"});
    t3.row({"operator bond before", "1000000"});
    t3.row({"challenge with fraud proof",
            st.ok() ? "accepted" : st.to_string()});
    t3.row({"operator slashed",
            contract.operator_slashed() ? "yes (bond burned)" : "no"});
    t3.row({"operator bond after", std::to_string(contract.operator_bond())});
    t3.print();
  }

  std::cout << "\nShape check (paper §VI-A): thousands of child "
               "transactions reach the root chain as a handful of 32-byte "
               "roots; misbehaviour is punishable on-chain via fraud "
               "proofs, penalizing the Byzantine operator.\n";

  JsonObject report;
  report.put("bench", "plasma");
  report.put_raw("footprint", footprint_json.to_string());
  report.put_raw("metrics", registry.to_json().to_string());
  write_bench_report("plasma", report);
  std::cout << "\nWrote BENCH_plasma.json\n";
  return 0;
}
