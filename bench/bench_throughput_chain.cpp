// E8 -- Paper §VI-A: blockchain throughput ceilings.
//
// "Bitcoin... 3 to 7 transactions per second"; "Ethereum's transaction
// rate [is] roughly between 7 to 15 transactions per second"; "the
// transition to PoS should decrease Ethereum's block generation time to 4
// seconds"; Visa processes 56,000 TPS. We saturate each chain and measure
// the achieved inclusion rate plus the §VI pending-transaction backlog.
#include <iostream>
#include <string>

#include "core/chain_cluster.hpp"
#include "core/json_report.hpp"
#include "core/table.hpp"
#include "obs/trace.hpp"
#include "storage/config.hpp"

using namespace dlt;
using namespace dlt::core;

namespace {

struct TpRun {
  double tps_included = 0;
  double tps_confirmed = 0;
  std::uint64_t pending = 0;
  double incl_median = 0;
  double conf_median = 0;
  std::uint64_t blocks = 0;
  std::string metrics_json;
  std::string trace_summary_json;
  std::string latency_line;
};

/// Saturating run: offered load is well above capacity; the measured
/// inclusion rate IS the protocol ceiling.
///
/// When `trace_path` is non-empty and DLT_TRACE is set, the run's event
/// trace is exported as JSONL (byte-identical across identical-seed runs).
TpRun run(chain::ChainParams params, double offered_tps, double duration,
          std::size_t accounts, const std::string& trace_path = {}) {
  params.verify_pow = false;
  params.retarget_window = 0;

  ChainClusterConfig cfg;
  cfg.params = params;
  apply_env_crypto(cfg.crypto);  // DLT_VERIFY_THREADS (determinism gate)
  storage::apply_env_storage(cfg.storage);  // DLT_STORAGE (disk legs)
  cfg.obs.trace_capacity = obs::trace_capacity_from_env();
  // DLT_TRACE_SINK streams the reference run write-through (ring optional).
  if (!trace_path.empty()) cfg.obs.trace_sink = obs::trace_sink_from_env();
  cfg.node_count = 4;
  cfg.miner_count = 2;
  cfg.validator_count = 4;
  cfg.total_hashrate = 1e6 / params.block_interval;
  cfg.params.initial_difficulty = 1e6;
  cfg.account_count = accounts;
  cfg.initial_balance = 1'000'000'000;
  // Enough independent coins that the wallet never throttles the offered
  // load (UTXO model only).
  cfg.genesis_outputs_per_account = static_cast<std::size_t>(
      offered_tps * duration / static_cast<double>(accounts)) + 2;
  if (params.tx_model == chain::TxModel::kAccount)
    cfg.account_tx_data_mean = 250;  // Ethereum-realistic gas weighting
  cfg.seed = 21;
  ChainCluster cluster(cfg);
  cluster.start();

  Rng wl_rng(55);
  WorkloadConfig wl;
  wl.account_count = accounts;
  wl.tx_rate = offered_tps;
  wl.duration = duration;
  wl.min_amount = 1;
  wl.max_amount = 100;
  cluster.schedule_workload(generate_payments(wl, wl_rng));
  // Run past the workload window (like the dag/tangle benches) so the
  // depth-k rule has room to confirm: a bitcoin-like run stopped dead at
  // `duration` seals ~6 blocks and nothing is ever 6 deep.
  cluster.run_for(duration + cfg.params.block_interval *
                                 (cfg.params.confirmation_depth + 2.0));

  RunMetrics m = cluster.metrics();
  TpRun out;
  // Rate up to the last sealed block (avoids end-of-window truncation on
  // long block intervals).
  const auto& bc = cluster.node(0).chain();
  const double span = bc.height() > 0
                          ? bc.at_height(bc.height())->header.timestamp
                          : duration;
  out.tps_included = static_cast<double>(m.included) / span;
  out.tps_confirmed = static_cast<double>(m.confirmed) / span;
  out.pending = m.pending_end;
  out.incl_median =
      m.inclusion_latency.count() ? m.inclusion_latency.median() : 0;
  out.conf_median =
      m.confirmation_latency.count() ? m.confirmation_latency.median() : 0;
  out.blocks = cluster.node(0).chain().height();
  out.metrics_json = cluster.metrics_json().to_string();
  out.trace_summary_json = cluster.trace_summary_json().to_string();
  out.latency_line = latency_summary_line(cluster.metrics_registry());
  if (!trace_path.empty() && cluster.tracer().enabled() &&
      !cluster.tracer().events().empty()) {  // sink-only mode has no ring
    if (cluster.tracer().export_jsonl(trace_path))
      std::cout << "Wrote " << trace_path << "\n";
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "=== E8 / §VI-A: blockchain transaction throughput ===\n\n";

  // Bitcoin: 1 MB / 600 s. Our UTXO payment (1 in, 2 out) is 146 bytes vs
  // Bitcoin's ~250-400 B average (richer scripts), so the same mechanism
  // lands in the same 3-7 TPS band once sizes are comparable. We report
  // both our raw measure and the 400-B-normalized figure.
  chain::ChainParams btc = chain::bitcoin_like();
  btc.block_interval = 600.0;

  chain::ChainParams eth = chain::ethereum_like();
  chain::ChainParams pos = chain::pos_like();

  std::cout << "Saturating load (offered well above capacity):\n";
  Table t({"system", "block interval", "cap", "measured TPS", "norm. TPS*",
           "pending at end", "inclusion median s", "confirm median s"});

  JsonObject systems_json;
  std::string metrics_section, trace_section;
  auto record = [&](const char* name, const TpRun& r) {
    JsonObject sys;
    sys.put("tps_included", r.tps_included);
    sys.put("tps_confirmed", r.tps_confirmed);
    sys.put("pending_at_end", r.pending);
    sys.put("inclusion_median_s", r.incl_median);
    sys.put("confirmation_median_s", r.conf_median);
    sys.put("blocks", r.blocks);
    systems_json.put_raw(name, sys.to_string());
  };

  {
    TpRun r = run(btc, 14.0, 3600.0, 60, "TRACE_throughput_chain.jsonl");
    metrics_section = r.metrics_json;       // reference run: bitcoin-like
    trace_section = r.trace_summary_json;
    if (!r.latency_line.empty())
      std::cout << r.latency_line << " (bitcoin-like reference run)\n";
    const double norm = r.tps_included * (146.0 / 400.0);
    t.row({"bitcoin-like", "600 s", "1 MB", fmt(r.tps_included, 2),
           fmt(norm, 2), std::to_string(r.pending), fmt(r.incl_median, 0),
           fmt(r.conf_median, 0)});
    record("bitcoin_like", r);
  }
  {
    TpRun r = run(eth, 40.0, 600.0, 60);  // avg tx ~38k gas (calldata)
    t.row({"ethereum-like", "15 s", "8M gas", fmt(r.tps_included, 2), "-",
           std::to_string(r.pending), fmt(r.incl_median, 0),
           fmt(r.conf_median, 0)});
    record("ethereum_like", r);
  }
  {
    TpRun r = run(pos, 90.0, 600.0, 60);
    t.row({"pos-like", "4 s", "8M gas", fmt(r.tps_included, 2), "-",
           std::to_string(r.pending), fmt(r.incl_median, 0),
           fmt(r.conf_median, 0)});
    record("pos_like", r);
  }
  t.row({"visa (reference)", "-", "-", "56000", "-", "-", "-", "-"});
  t.print();
  std::cout << "* bitcoin-like normalized to Bitcoin's ~400 B average "
               "transaction (our simulated payments are 146 B).\n";

  std::cout << "\nAdding miners does not add throughput (difficulty "
               "retargets to hold the interval, paper §VI-A):\n";
  Table t2({"miners", "blocks in 2000 s", "measured TPS"});
  JsonArray miners_json;
  for (std::size_t miners : {1u, 2u, 4u, 8u}) {
    chain::ChainParams p = chain::bitcoin_like();
    p.verify_pow = false;
    p.block_interval = 50.0;
    p.retarget_window = 10;  // live retargeting
    p.initial_difficulty = 1e6;

    ChainClusterConfig cfg;
    cfg.params = p;
    apply_env_crypto(cfg.crypto);
    storage::apply_env_storage(cfg.storage);
    cfg.params.initial_difficulty = static_cast<double>(miners) * 1e6;
    cfg.node_count = std::max<std::size_t>(miners, 2);
    cfg.miner_count = miners;
    // Total hashrate grows with the miner count -- yet TPS stays flat.
    cfg.total_hashrate = static_cast<double>(miners) * (1e6 / 50.0);
    cfg.account_count = 30;
    cfg.initial_balance = 1'000'000'000;
    cfg.genesis_outputs_per_account = 2100;  // covers 30 TPS x 2000 s
    cfg.seed = 31;
    ChainCluster cluster(cfg);
    cluster.start();
    Rng wl_rng(56);
    WorkloadConfig wl;
    wl.account_count = 30;
    wl.tx_rate = 30.0;
    wl.duration = 2000.0;
    cluster.schedule_workload(generate_payments(wl, wl_rng));
    cluster.run_for(2000.0);
    RunMetrics m = cluster.metrics();
    t2.row({std::to_string(miners),
            std::to_string(cluster.node(0).chain().height()),
            fmt(static_cast<double>(m.included) / 2000.0, 2)});
    JsonObject row;
    row.put("miners", static_cast<std::uint64_t>(miners));
    row.put("blocks", static_cast<std::uint64_t>(
                          cluster.node(0).chain().height()));
    row.put("tps", static_cast<double>(m.included) / 2000.0);
    miners_json.push_raw(row.to_string());
  }
  t2.print();

  JsonObject report;
  report.put("bench", "throughput_chain");
  report.put_raw("systems", systems_json.to_string());
  report.put_raw("miner_scaling", miners_json.to_string());
  report.put_raw("metrics", metrics_section);
  report.put_raw("trace_summary", trace_section);
  write_bench_report("throughput_chain", report);
  std::cout << "\nWrote BENCH_throughput_chain.json\n";

  std::cout
      << "\nShape check (paper §VI-A): the cap is block_size/interval "
         "(Bitcoin ~3-7 TPS normalized) and gas_limit/interval (Ethereum "
         "7-15 TPS; PoS at 4 s roughly one 15/4 multiple higher); the "
         "backlog grows without bound under saturating load (the paper's "
         "186,951 pending Bitcoin transactions), and extra miners only "
         "raise difficulty, never throughput.\n";
  return 0;
}
