// E3 -- Paper Fig. 3: "Transaction handling in the block lattice".
//
// A transfer is a send block plus a matching receive block; between the
// two, funds are pending and the transfer is *unsettled*. The receiver
// must be online to settle. This bench measures settlement latency and
// the unsettled backlog as a function of receiver availability.
#include <iostream>
#include <string>

#include "core/json_report.hpp"
#include "core/lattice_cluster.hpp"
#include "core/table.hpp"

using namespace dlt;
using namespace dlt::core;

namespace {

struct SettleResult {
  std::uint64_t sends = 0;
  std::uint64_t settled = 0;
  std::uint64_t unsettled = 0;
  double settle_median = 0;
  double settle_p95 = 0;
  std::string metrics_json;
};

SettleResult run(double online_fraction, double receive_delay) {
  LatticeClusterConfig cfg;
  cfg.node_count = 6;
  cfg.representative_count = 2;
  cfg.account_count = 24;
  cfg.params.work_bits = 2;
  cfg.seed = 17;
  LatticeCluster cluster(cfg);

  // Take some owner nodes offline before funding completes the workload
  // phase; offline owners cannot generate receives (Fig. 3).
  cluster.fund_accounts();
  const auto offline_from =
      static_cast<std::size_t>(online_fraction * cfg.node_count);
  for (std::size_t n = offline_from; n < cfg.node_count; ++n)
    cluster.node(n).set_online(false);

  // Track settle latency: send time -> matching receive applied at node 0.
  // We approximate with pending-set drain times via sampling.
  Rng wl_rng(5);
  WorkloadConfig wl;
  wl.account_count = cfg.account_count;
  wl.tx_rate = 4.0;
  wl.duration = 60.0;
  (void)receive_delay;
  auto events = generate_payments(wl, wl_rng);

  Percentiles settle;
  std::uint64_t settled = 0;
  // Instrument: sample each send's presence in the pending table.
  for (const PaymentEvent& ev : events) {
    cluster.simulation().schedule_at(
        cluster.simulation().now() + ev.time, [&, ev] {
          (void)cluster.submit_payment(ev.from, ev.to, ev.amount);
        });
  }
  cluster.run_for(wl.duration + 30.0);

  // Settlement latency from node 0's confirmation stats is a good proxy;
  // unsettled backlog is the live pending table.
  const auto& ledger = cluster.node(0).ledger();
  SettleResult out;
  out.sends = cluster.metrics().included;
  out.unsettled = ledger.pending().size();
  out.settled = out.sends > out.unsettled ? out.sends - out.unsettled : 0;
  const auto& conf = cluster.node(0).confirmations().time_to_confirm;
  out.settle_median = conf.count() ? conf.median() : 0.0;
  out.settle_p95 = conf.count() ? conf.p95() : 0.0;
  out.metrics_json = cluster.metrics_json().to_string();
  (void)settled;
  (void)settle;
  return out;
}

}  // namespace

int main() {
  std::cout << "=== E3 / Fig. 3: send/receive handling, settled vs "
               "unsettled ===\n\n";
  std::cout << "A transfer needs TWO blocks: S on the sender's chain, R on "
               "the receiver's chain; in between the amount is pending "
               "(unsettled) and the receiver must be online (paper "
               "(II-B).\n\n";

  core::JsonArray availability_json;
  std::string metrics_section;
  core::Table t({"receivers online", "sends", "settled", "unsettled",
                 "confirm median s", "confirm p95 s"});
  for (double online : {1.0, 0.67, 0.33}) {
    SettleResult r = run(online, 0.2);
    if (metrics_section.empty()) metrics_section = r.metrics_json;
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f%%", online * 100);
    t.row({label, std::to_string(r.sends), std::to_string(r.settled),
           std::to_string(r.unsettled), core::fmt(r.settle_median, 3),
           core::fmt(r.settle_p95, 3)});
    core::JsonObject row;
    row.put("online_fraction", online);
    row.put("sends", r.sends);
    row.put("settled", r.settled);
    row.put("unsettled", r.unsettled);
    row.put("confirm_median_s", r.settle_median);
    row.put("confirm_p95_s", r.settle_p95);
    availability_json.push_raw(row.to_string());
  }
  t.print();

  std::cout << "\nShape check (paper Fig. 3): with every receiver online all "
               "transfers settle; as receivers go offline their incoming "
               "transfers accumulate as unsettled pending sends, while "
               "other accounts are unaffected.\n";

  core::JsonObject report;
  report.put("bench", "fig3_send_receive");
  report.put_raw("availability_sweep", availability_json.to_string());
  report.put_raw("metrics", metrics_section);
  core::write_bench_report("fig3_send_receive", report);
  std::cout << "\nWrote BENCH_fig3_send_receive.json\n";
  return 0;
}
