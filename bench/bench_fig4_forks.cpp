// E4 -- Paper Fig. 4: "Temporary blockchain forks".
//
// "A soft fork can occur when two different blocks are created at roughly
// the same time. Due to network delays, some nodes will receive one block
// over the other... The problem resolves itself when a block is mined that
// makes one chain longer than the other."
//
// Sweep the ratio of network delay to block interval and measure fork
// frequency, orphaned blocks and reorg depth: the canonical result is that
// fork rate rises sharply as propagation delay approaches the interval,
// which is exactly why Bitcoin uses 10-minute blocks (paper §VI-A).
#include <iostream>
#include <string>

#include "core/chain_cluster.hpp"
#include "core/json_report.hpp"
#include "core/table.hpp"

using namespace dlt;
using namespace dlt::core;

namespace {

struct ForkRun {
  std::uint64_t blocks = 0;
  std::uint64_t orphaned = 0;
  std::uint64_t reorgs = 0;
  std::uint32_t max_depth = 0;
  double orphan_rate = 0;
  std::string metrics_json;
};

ForkRun run(double block_interval, double delay, std::uint64_t seed) {
  ChainClusterConfig cfg;
  cfg.params = chain::bitcoin_like();
  cfg.params.verify_pow = false;  // statistical mining race (DESIGN.md §2)
  cfg.params.block_interval = block_interval;
  cfg.params.initial_difficulty = 1e6;
  cfg.params.retarget_window = 0;
  cfg.node_count = 8;
  cfg.miner_count = 8;
  cfg.total_hashrate = 1e6 / block_interval;
  cfg.link = net::LinkParams{delay, delay * 0.2, 1e9};
  cfg.account_count = 4;
  cfg.seed = seed;

  ChainCluster cluster(cfg);
  cluster.start();
  // Run long enough for ~400 blocks.
  cluster.run_for(block_interval * 400.0);

  RunMetrics m = cluster.metrics();
  ForkRun out;
  out.blocks = m.blocks_produced;
  out.orphaned = m.orphaned_blocks;
  out.reorgs = m.reorgs;
  out.max_depth = m.max_reorg_depth;
  out.orphan_rate = m.blocks_produced
                        ? static_cast<double>(m.orphaned_blocks) /
                              static_cast<double>(m.blocks_produced)
                        : 0.0;
  out.metrics_json = cluster.metrics_json().to_string();
  return out;
}

std::string fork_row_json(double interval, double delay, const ForkRun& r) {
  JsonObject row;
  row.put("block_interval_s", interval);
  row.put("delay_s", delay);
  row.put("blocks", r.blocks);
  row.put("orphaned", r.orphaned);
  row.put("orphan_rate", r.orphan_rate);
  row.put("reorgs", r.reorgs);
  row.put("max_reorg_depth", static_cast<std::uint64_t>(r.max_depth));
  return row.to_string();
}

}  // namespace

int main() {
  std::cout << "=== E4 / Fig. 4: temporary forks vs propagation delay ===\n\n";

  std::cout << "Fixed delay (2 s one-way), varying block interval:\n";
  core::Table t1({"interval s", "delay/interval", "blocks mined",
                  "orphaned", "orphan rate", "reorgs", "max reorg depth"});
  JsonArray interval_json, delay_json;
  std::string metrics_section;
  for (double interval : {600.0, 60.0, 15.0, 5.0, 2.0}) {
    ForkRun r = run(interval, 2.0, 42);
    if (metrics_section.empty()) metrics_section = r.metrics_json;
    t1.row({core::fmt(interval, 0), core::fmt(2.0 / interval, 3),
            std::to_string(r.blocks), std::to_string(r.orphaned),
            core::fmt(r.orphan_rate, 4), std::to_string(r.reorgs),
            std::to_string(r.max_depth)});
    interval_json.push_raw(fork_row_json(interval, 2.0, r));
  }
  t1.print();

  std::cout << "\nFixed interval (15 s, Ethereum-like), varying delay:\n";
  core::Table t2({"delay s", "delay/interval", "blocks mined", "orphaned",
                  "orphan rate", "reorgs", "max reorg depth"});
  for (double delay : {0.1, 0.5, 1.0, 3.0, 7.0}) {
    ForkRun r = run(15.0, delay, 43);
    t2.row({core::fmt(delay, 1), core::fmt(delay / 15.0, 3),
            std::to_string(r.blocks), std::to_string(r.orphaned),
            core::fmt(r.orphan_rate, 4), std::to_string(r.reorgs),
            std::to_string(r.max_depth)});
    delay_json.push_raw(fork_row_json(15.0, delay, r));
  }
  t2.print();

  std::cout
      << "\nShape check (paper Fig. 4 + §IV-A): forks are rare when the "
         "block interval dwarfs propagation delay (Bitcoin: 600 s vs "
         "seconds) and frequent when they are comparable; deeper 'atypical' "
         "forks (the figure's bottom chain) appear only in the high-ratio "
         "regime. Orphaned blocks' transactions return to the mempool for "
         "re-inclusion.\n";

  JsonObject report;
  report.put("bench", "fig4_forks");
  report.put_raw("interval_sweep", interval_json.to_string());
  report.put_raw("delay_sweep", delay_json.to_string());
  report.put_raw("metrics", metrics_section);
  write_bench_report("fig4_forks", report);
  std::cout << "\nWrote BENCH_fig4_forks.json\n";
  return 0;
}
