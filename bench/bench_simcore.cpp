// Discrete-event core microbenchmarks.
//
// The slab scheduler rewrite (sim/simulation) claims two things: the fire
// order is exactly the historical contract (time order, equal timestamps
// FIFO by sequence, cancellation honored), and schedule/fire got at least
// 2x faster by dropping the per-event hash-map insert/erase and the
// heap-allocated std::function. Both claims are checked here:
//
//  1. A verbatim copy of the historical priority_queue + fns_ hash map +
//     cancelled_ set scheduler runs the same mixed schedule/cancel
//     workload; the (time, tag) fire sequences must hash identically.
//  2. schedule/fire and schedule/cancel microbenches time both engines;
//     the gossip-flood bench times the integrated sim+net stack.
//
// BENCH_simcore.json splits into a `deterministic` section (checksums,
// counts — byte-stable across runs; tools/determinism_gate.sh replays the
// bench and diffs it) and a `perf` section (wall-clock rates, excluded
// from exact gating). Exits nonzero if the engines diverge.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/json_report.hpp"
#include "core/table.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "support/rng.hpp"

using namespace dlt;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// --------------------------------------------------------------------------
// The pre-slab scheduler, verbatim: priority_queue of (at, seq, id) with a
// side hash map for callbacks and a tombstone set for cancellations. Kept
// here as the differential baseline and the denominator of the speedup.

class LegacySimulation {
 public:
  using Time = double;
  using EventId = std::uint64_t;

  Time now() const { return now_; }

  EventId schedule_at(Time at, std::function<void()> fn) {
    if (at < now_) at = now_;
    const EventId id = next_seq_;
    heap_.push(Event{at, next_seq_, id});
    fns_.emplace(id, std::move(fn));
    ++next_seq_;
    return id;
  }
  EventId schedule_in(Time delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  bool cancel(EventId id) {
    auto it = fns_.find(id);
    if (it == fns_.end()) return false;
    fns_.erase(it);
    cancelled_.insert(id);
    return true;
  }

  bool step() {
    while (!heap_.empty()) {
      Event ev = heap_.top();
      heap_.pop();
      auto c = cancelled_.find(ev.id);
      if (c != cancelled_.end()) {
        cancelled_.erase(c);
        continue;
      }
      auto it = fns_.find(ev.id);
      std::function<void()> fn = std::move(it->second);
      fns_.erase(it);
      now_ = ev.at;
      ++fired_;
      fn();
      return true;
    }
    return false;
  }

  std::uint64_t run() {
    std::uint64_t n = 0;
    while (step()) ++n;
    return n;
  }

  std::uint64_t events_fired() const { return fired_; }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_map<EventId, std::function<void()>> fns_;
  std::unordered_set<EventId> cancelled_;
};

// --------------------------------------------------------------------------
// Differential: a mixed schedule/cancel workload driven identically on both
// engines, hashing the (time, tag) fire sequence.

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 1099511628211ull;
}

// Deterministic scenario: `chains` self-rescheduling chains with staggered
// periods (producing many equal-timestamp collisions), plus every 4th step
// scheduling a side event and every 8th cancelling the previous side event.
template <typename Sim>
std::uint64_t run_differential(Sim& sim, std::uint64_t total_events) {
  struct State {
    std::uint64_t hash = 14695981039346656037ull;
    std::uint64_t fired = 0;
    std::uint64_t side_tag = 0;
  };
  auto state = std::make_shared<State>();
  constexpr int kChains = 16;

  for (int c = 0; c < kChains; ++c) {
    auto chain = std::make_shared<std::function<void(int)>>();
    *chain = [state, &sim, chain, total_events](int id) {
      state->hash = fnv_mix(state->hash, static_cast<std::uint64_t>(id));
      state->hash =
          fnv_mix(state->hash, static_cast<std::uint64_t>(sim.now() * 16.0));
      if (++state->fired >= total_events) return;
      // Integer-valued delays on a coarse grid force timestamp ties
      // across chains; FIFO tiebreak order is what the hash pins down.
      const double delay = 0.25 * (1 + (id + state->fired) % 8);
      sim.schedule_in(delay, [chain, id] { (*chain)(id); });
      if (state->fired % 4 == 0) {
        const auto side = sim.schedule_in(
            delay, [state] { state->hash = fnv_mix(state->hash, 77); });
        if (state->fired % 8 == 0) sim.cancel(side);
        state->side_tag = static_cast<std::uint64_t>(side);
      }
    };
    sim.schedule_at(0.5 * (c % 4), [chain, c] { (*chain)(c); });
  }
  sim.run();
  return state->hash;
}

// --------------------------------------------------------------------------
// Perf legs.

// Self-rescheduling chains: the steady-state pattern of every cluster run
// (each fired event schedules its successor). The callable is 56 bytes —
// the size of net::Network's delivery closure, the dominant event in every
// cluster run — which the legacy std::function boxes per event and
// InplaceFunction stores inline.
template <typename Sim>
struct ChainTask {
  Sim* sim;
  std::uint64_t* remaining;
  double period;
  std::uint64_t payload[4] = {0, 0, 0, 0};  // pads to delivery-closure size
  void operator()() {
    if (*remaining == 0 || --*remaining == 0) return;
    ++payload[0];
    sim->schedule_in(period, ChainTask{*this});
  }
};

template <typename Sim>
double bench_schedule_fire(Sim& sim, std::uint64_t total_events) {
  static_assert(sizeof(ChainTask<Sim>) == 56);
  const auto t0 = std::chrono::steady_clock::now();
  // Pending-set depth in the same regime as real cluster runs (chain bench
  // heap_peak is ~257, lattice/tangle lower).
  constexpr int kChains = 64;
  std::uint64_t remaining = total_events;
  for (int c = 0; c < kChains; ++c) {
    const double period = 0.001 * (c + 1);
    sim.schedule_in(period, ChainTask<Sim>{&sim, &remaining, period});
  }
  sim.run();
  return seconds_since(t0);
}

// Schedule a burst, cancel every other event, fire the rest — the miner
// retarget pattern (chain::Node cancels its mining event on every new tip).
template <typename Sim>
double bench_schedule_cancel(Sim& sim, std::uint64_t rounds,
                             std::uint64_t burst) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<decltype(sim.schedule_at(0.0, [] {}))> ids;
  ids.reserve(burst);
  for (std::uint64_t r = 0; r < rounds; ++r) {
    ids.clear();
    for (std::uint64_t i = 0; i < burst; ++i)
      ids.push_back(sim.schedule_in(0.001 * (i % 7 + 1), [] {}));
    for (std::uint64_t i = 0; i < burst; i += 2) sim.cancel(ids[i]);
    sim.run();
  }
  return seconds_since(t0);
}

struct GossipResult {
  double wall = 0.0;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
};

// Integrated stack: flood `floods` payloads through a 32-node small world,
// timing the sim+net hot path end to end.
GossipResult bench_gossip_flood(std::uint64_t floods) {
  sim::Simulation sim;
  net::Network net(sim, Rng(0x51c0));
  std::vector<net::NodeId> ids;
  for (int i = 0; i < 32; ++i) ids.push_back(net.add_node());
  Rng topo_rng(1234);
  net::build_small_world(net, ids, 6, 0.1, topo_rng);
  auto count = std::make_shared<std::uint64_t>(0);
  for (net::NodeId id : ids)
    net.set_handler(id, [count](const net::Message&) { ++*count; });

  const net::MsgType kFlood = net::msg_type("simcore-flood");
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t f = 0; f < floods; ++f) {
    sim.schedule_at(0.01 * f, [&net, &ids, f, kFlood] {
      net.gossip(ids[f % ids.size()],
                 net::make_message(kFlood, f, 256));
    });
  }
  sim.run();
  GossipResult r;
  r.wall = seconds_since(t0);
  r.events = sim.events_fired();
  r.messages = net.traffic().messages;
  return r;
}

}  // namespace

int main() {
  std::cout << "=== sim core microbench: slab scheduler vs legacy ===\n\n";

  // ---- differential: fire order must be bit-identical ----
  const std::uint64_t kDiffEvents = 200'000;
  LegacySimulation legacy_diff;
  sim::Simulation slab_diff;
  const std::uint64_t legacy_hash = run_differential(legacy_diff, kDiffEvents);
  const std::uint64_t slab_hash = run_differential(slab_diff, kDiffEvents);
  const bool order_identical = legacy_hash == slab_hash;
  std::cout << "fire-order hash  legacy=" << legacy_hash
            << "  slab=" << slab_hash
            << (order_identical ? "  [identical]\n" : "  [DIVERGED]\n");

  // ---- schedule/fire ----
  // Best of three alternating passes per engine (after a short warmup):
  // the host is a single busy core, and one stolen timeslice would
  // otherwise decide the ratio.
  const std::uint64_t kFireEvents = 2'000'000;
  double legacy_wall = 1e300, slab_wall = 1e300;
  std::size_t slab_capacity = 0, heap_peak = 0;
  {
    sim::Simulation warmup;
    bench_schedule_fire(warmup, kFireEvents / 10);
  }
  for (int pass = 0; pass < 3; ++pass) {
    LegacySimulation legacy_fire;
    sim::Simulation slab_fire;
    legacy_wall =
        std::min(legacy_wall, bench_schedule_fire(legacy_fire, kFireEvents));
    slab_wall =
        std::min(slab_wall, bench_schedule_fire(slab_fire, kFireEvents));
    slab_capacity = slab_fire.slab_capacity();
    heap_peak = slab_fire.heap_peak();
  }
  const double legacy_rate = static_cast<double>(kFireEvents) / legacy_wall;
  const double slab_rate = static_cast<double>(kFireEvents) / slab_wall;
  const double speedup = legacy_wall / slab_wall;

  // ---- schedule/cancel ----
  const std::uint64_t kRounds = 200, kBurst = 4096;
  double legacy_cancel_wall = 1e300, slab_cancel_wall = 1e300;
  for (int pass = 0; pass < 3; ++pass) {
    LegacySimulation legacy_cancel;
    sim::Simulation slab_cancel;
    legacy_cancel_wall = std::min(
        legacy_cancel_wall, bench_schedule_cancel(legacy_cancel, kRounds, kBurst));
    slab_cancel_wall = std::min(
        slab_cancel_wall, bench_schedule_cancel(slab_cancel, kRounds, kBurst));
  }
  const double cancel_ops = static_cast<double>(kRounds * kBurst);

  // ---- gossip flood (integrated sim+net) ----
  const GossipResult gossip = bench_gossip_flood(2'000);

  core::Table table({"bench", "legacy ev/s", "slab ev/s", "speedup"});
  table.row({"schedule/fire", core::fmt(legacy_rate, 0),
             core::fmt(slab_rate, 0), core::fmt(speedup, 2)});
  table.row({"schedule/cancel", core::fmt(cancel_ops / legacy_cancel_wall, 0),
             core::fmt(cancel_ops / slab_cancel_wall, 0),
             core::fmt(legacy_cancel_wall / slab_cancel_wall, 2)});
  table.row({"gossip-flood", "-",
             core::fmt(static_cast<double>(gossip.events) / gossip.wall, 0),
             "-"});
  table.print();
  std::cout << "\nslab slab_capacity=" << slab_capacity
            << " heap_peak=" << heap_peak << "\n";

  core::JsonObject deterministic;
  deterministic.put("fire_order_hash_legacy", legacy_hash);
  deterministic.put("fire_order_hash_slab", slab_hash);
  deterministic.put("fire_order_identical", order_identical);
  deterministic.put("differential_events", kDiffEvents);
  deterministic.put("schedule_fire_events", kFireEvents);
  deterministic.put("schedule_fire_slab_capacity",
                    static_cast<std::uint64_t>(slab_capacity));
  deterministic.put("schedule_fire_heap_peak",
                    static_cast<std::uint64_t>(heap_peak));
  deterministic.put("gossip_floods", std::uint64_t{2'000});
  deterministic.put("gossip_events", gossip.events);
  deterministic.put("gossip_messages", gossip.messages);

  core::JsonObject perf;
  perf.put("schedule_fire_events_per_sec_legacy", legacy_rate);
  perf.put("schedule_fire_events_per_sec", slab_rate);
  perf.put("speedup_vs_legacy", speedup);
  perf.put("schedule_cancel_ops_per_sec_legacy",
           cancel_ops / legacy_cancel_wall);
  perf.put("schedule_cancel_ops_per_sec", cancel_ops / slab_cancel_wall);
  perf.put("schedule_cancel_speedup_vs_legacy",
           legacy_cancel_wall / slab_cancel_wall);
  perf.put("gossip_events_per_sec",
           static_cast<double>(gossip.events) / gossip.wall);
  perf.put("wall_seconds_schedule_fire_slab", slab_wall);
  perf.put("wall_seconds_schedule_fire_legacy", legacy_wall);

  core::JsonObject report;
  report.put("bench", "simcore");
  report.put_raw("deterministic", deterministic.to_string());
  report.put_raw("perf", perf.to_string());
  core::write_bench_report("simcore", report);

  if (!order_identical) {
    std::cerr << "FAIL: slab scheduler fire order diverges from legacy\n";
    return 1;
  }
  return 0;
}
