// E13 -- Paper §VI-A: sharding.
//
// "Sharding splits the network in K partitions, no longer forcing all
// nodes in the network to process all incoming transactions... In a more
// complex scenario, cross shard communication is available." Measures
// throughput scaling with K and the cross-shard overhead that motivates
// making cross-shard communication transparent (and the protocol more
// complex).
#include <iostream>
#include <string>

#include "core/json_report.hpp"
#include "core/table.hpp"
#include "crypto/keys.hpp"
#include "obs/metrics.hpp"
#include "scaling/sharding.hpp"
#include "support/rng.hpp"

using namespace dlt;
using namespace dlt::core;
using namespace dlt::scaling;

namespace {

struct ShardRun {
  double tps = 0;
  double cross_fraction = 0;
  double rounds_to_drain = 0;
  std::uint64_t receipts = 0;
};

ShardRun run(std::size_t shards, std::size_t accounts_count,
             std::size_t transfers, bool local_traffic) {
  ShardedLedger ledger(ShardParams{shards, 100, 15.0});
  std::vector<crypto::AccountId> accounts;
  for (std::uint64_t i = 0; i < accounts_count; ++i) {
    accounts.push_back(
        crypto::KeyPair::from_seed(0x1000 + i).account_id());
    ledger.credit(accounts.back(), 1'000'000);
  }

  // Pre-bucket accounts by shard for the locality-controlled workload.
  std::vector<std::vector<crypto::AccountId>> by_shard(shards);
  for (const auto& a : accounts) by_shard[ledger.shard_of(a)].push_back(a);

  Rng rng(31);
  std::size_t submitted = 0;
  while (submitted < transfers) {
    crypto::AccountId from, to;
    if (local_traffic) {
      // All traffic stays inside a shard (the "simplest form" in §VI-A).
      const auto& bucket = by_shard[rng.uniform(shards)];
      if (bucket.size() < 2) continue;
      from = bucket[rng.uniform(bucket.size())];
      to = bucket[rng.uniform(bucket.size())];
    } else {
      from = accounts[rng.uniform(accounts.size())];
      to = accounts[rng.uniform(accounts.size())];
    }
    if (from == to) continue;
    if (ledger.transfer(from, to, 1).ok()) ++submitted;
  }

  std::uint64_t rounds = 0;
  while (ledger.pending_ops() > 0) {
    ledger.seal_round();
    ++rounds;
  }

  ShardRun out;
  // Each round is one block interval across all shards.
  out.tps = static_cast<double>(transfers) /
            (static_cast<double>(rounds) * 15.0);
  out.cross_fraction = ledger.cross_shard_fraction();
  out.rounds_to_drain = static_cast<double>(rounds);
  out.receipts = ledger.aggregate_stats().receipts_emitted;
  return out;
}

}  // namespace

int main() {
  std::cout << "=== E13 / §VI-A: sharding ===\n\n";

  constexpr std::size_t kTransfers = 20'000;

  // No cluster here: a local registry tallies the sweeps so the report
  // still carries a `metrics` section like every other bench.
  obs::MetricsRegistry registry;
  obs::Counter& transfers = registry.counter("sharding.transfers");
  obs::Histogram& local_tps = registry.histogram("sharding.local_tps");
  obs::Histogram& uniform_tps = registry.histogram("sharding.uniform_tps");
  JsonArray local_json, uniform_json;

  auto shard_row_json = [](std::size_t k, const ShardRun& r) {
    JsonObject row;
    row.put("shards", static_cast<std::uint64_t>(k));
    row.put("tps", r.tps);
    row.put("rounds_to_drain", r.rounds_to_drain);
    row.put("cross_shard_fraction", r.cross_fraction);
    row.put("receipts", r.receipts);
    return row.to_string();
  };

  std::cout << "Throughput vs shard count, shard-local traffic (every "
               "shard processes only its own transactions):\n";
  Table t1({"shards K", "TPS", "rounds to drain", "speedup vs K=1"});
  double base = 0;
  for (std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
    ShardRun r = run(k, 64 * k, kTransfers, /*local_traffic=*/true);
    if (k == 1) base = r.tps;
    transfers.inc(kTransfers);
    local_tps.observe(r.tps);
    local_json.push_raw(shard_row_json(k, r));
    t1.row({std::to_string(k), fmt(r.tps, 1), fmt(r.rounds_to_drain, 0),
            fmt(r.tps / base, 2) + "x"});
  }
  t1.print();

  std::cout << "\nUniform (cross-shard heavy) traffic -- each cross-shard "
               "transfer costs an op on BOTH shards plus a receipt "
               "round-trip:\n";
  Table t2({"shards K", "cross-shard fraction", "TPS", "receipts",
            "speedup vs K=1"});
  base = 0;
  for (std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
    ShardRun r = run(k, 64 * k, kTransfers, /*local_traffic=*/false);
    if (k == 1) base = r.tps;
    transfers.inc(kTransfers);
    uniform_tps.observe(r.tps);
    uniform_json.push_raw(shard_row_json(k, r));
    t2.row({std::to_string(k), fmt(r.cross_fraction, 2), fmt(r.tps, 1),
            std::to_string(r.receipts), fmt(r.tps / base, 2) + "x"});
  }
  t2.print();

  std::cout
      << "\nShape check (paper §VI-A): with shard-local traffic, capacity "
         "scales ~linearly in K (the whole point of sharding); with "
         "uniform traffic the cross-shard fraction approaches (K-1)/K and "
         "every such transfer consumes capacity on two shards plus a "
         "receipt delay -- the overhead that makes transparent cross-shard "
         "communication 'further increase the complexity of the "
         "protocol'.\n";

  JsonObject report;
  report.put("bench", "sharding");
  report.put_raw("local_traffic", local_json.to_string());
  report.put_raw("uniform_traffic", uniform_json.to_string());
  report.put_raw("metrics", registry.to_json().to_string());
  write_bench_report("sharding", report);
  std::cout << "\nWrote BENCH_sharding.json\n";
  return 0;
}
