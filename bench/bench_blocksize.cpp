// E10 -- Paper §VI-A: increasing the block size (Segwit2x).
//
// "Increasing the block size also increases the maximum amount of
// transactions that fit into a block, effectively increasing transaction
// rate. However, the block size increase would eventually lead to
// centralization due to the fact that consumer hardware would become
// unable to process blocks."
#include <iostream>
#include <string>

#include "core/chain_cluster.hpp"
#include "core/json_report.hpp"
#include "core/table.hpp"

using namespace dlt;
using namespace dlt::core;

namespace {

struct SizeRun {
  double tps = 0;
  std::uint64_t orphaned = 0;
  std::uint64_t blocks = 0;
  double propagation_s = 0;  // modelled block transfer time per hop
  std::string metrics_json;
};

SizeRun run(std::uint64_t block_bytes) {
  chain::ChainParams p = chain::bitcoin_like();
  p.verify_pow = false;
  p.retarget_window = 0;
  p.block_interval = 120.0;  // compressed 10-minute analogue
  p.max_block_bytes = block_bytes;
  p.initial_difficulty = 1e6;

  ChainClusterConfig cfg;
  cfg.params = p;
  cfg.node_count = 4;
  cfg.miner_count = 2;
  cfg.total_hashrate = 1e6 / p.block_interval;
  cfg.account_count = 40;
  cfg.initial_balance = 1'000'000'000;
  // Consumer-grade uplinks: ~1.6 Mbit/s. Big blocks hog the pipe, so
  // propagation time becomes a visible fraction of the interval.
  cfg.link = net::LinkParams{0.08, 0.02, 2.0e5};
  const double offered = static_cast<double>(block_bytes) / 146.0 /
                             p.block_interval * 1.2 +
                         2.0;  // saturating
  cfg.genesis_outputs_per_account =
      static_cast<std::size_t>(offered * 600.0 / 40.0) + 2;
  cfg.seed = 13;
  ChainCluster cluster(cfg);
  cluster.start();

  Rng wl_rng(66);
  WorkloadConfig wl;
  wl.account_count = 40;
  wl.tx_rate = offered;
  wl.duration = 600.0;
  wl.max_amount = 50;
  cluster.schedule_workload(generate_payments(wl, wl_rng));
  cluster.run_for(600.0);

  RunMetrics m = cluster.metrics();
  SizeRun out;
  const auto& bc = cluster.node(0).chain();
  const double span = bc.height() > 0
                          ? bc.at_height(bc.height())->header.timestamp
                          : 600.0;
  out.tps = static_cast<double>(m.included) / span;
  out.orphaned = m.orphaned_blocks;
  out.blocks = m.blocks_produced;
  out.propagation_s = static_cast<double>(block_bytes) / 2.0e5;
  out.metrics_json = cluster.metrics_json().to_string();
  return out;
}

}  // namespace

int main() {
  std::cout << "=== E10 / §VI-A: block-size increase (Segwit2x-style) ===\n\n";

  JsonArray sweep_json, fork_json;
  std::string metrics_section;

  Table t({"block size", "measured TPS", "blocks", "orphaned",
           "xfer time/hop s", "xfer/interval"});
  for (std::uint64_t size :
       {250'000ULL, 500'000ULL, 1'000'000ULL, 2'000'000ULL}) {
    SizeRun r = run(size);
    if (metrics_section.empty()) metrics_section = r.metrics_json;
    t.row({format_bytes(size), fmt(r.tps, 1), std::to_string(r.blocks),
           std::to_string(r.orphaned), fmt(r.propagation_s, 2),
           fmt(r.propagation_s / 120.0, 4)});
    JsonObject row;
    row.put("block_bytes", size);
    row.put("tps", r.tps);
    row.put("blocks", r.blocks);
    row.put("orphaned", r.orphaned);
    row.put("propagation_s", r.propagation_s);
    sweep_json.push_raw(row.to_string());
  }
  t.print();

  std::cout << "\nFork pressure from propagation alone (blocks padded to "
               "the full cap on the wire; 400 blocks each, 120 s "
               "interval, 1.6 Mbit/s links):\n";
  Table tf({"block size", "xfer+latency / interval", "orphaned/400",
            "orphan rate", "reorgs"});
  for (std::uint64_t size :
       {250'000ULL, 1'000'000ULL, 4'000'000ULL, 16'000'000ULL}) {
    chain::ChainParams p = chain::bitcoin_like();
    p.verify_pow = false;
    p.retarget_window = 0;
    p.block_interval = 120.0;
    p.initial_difficulty = 1e6;
    p.simulated_extra_block_bytes = size;
    ChainClusterConfig cfg;
    cfg.params = p;
    cfg.node_count = 6;
    cfg.miner_count = 6;
    cfg.total_hashrate = 1e6 / 120.0;
    cfg.account_count = 4;
    cfg.link = net::LinkParams{0.08, 0.02, 2.0e5};
    cfg.seed = 23;
    ChainCluster cluster(cfg);
    cluster.start();
    cluster.run_for(120.0 * 400);
    RunMetrics m = cluster.metrics();
    const double ratio =
        (static_cast<double>(size) / 2.0e5 + 0.08) / 120.0;
    tf.row({format_bytes(size), fmt(ratio, 3),
            std::to_string(m.orphaned_blocks),
            fmt(static_cast<double>(m.orphaned_blocks) /
                    static_cast<double>(std::max<std::uint64_t>(
                        m.blocks_produced, 1)),
                4),
            std::to_string(m.reorgs)});
    JsonObject row;
    row.put("block_bytes", size);
    row.put("transfer_over_interval", ratio);
    row.put("orphaned", m.orphaned_blocks);
    row.put("blocks", m.blocks_produced);
    row.put("reorgs", m.reorgs);
    fork_json.push_raw(row.to_string());
  }
  tf.print();

  std::cout
      << "\nShape check (paper §VI-A): doubling the cap (1 MB -> 2 MB, the "
         "Segwit2x proposal) roughly doubles TPS -- but transfer time per "
         "hop grows linearly with block size on consumer links, raising "
         "the fork/orphan pressure and the hardware bar for full "
         "validation; pushed far enough 'the network [ends up] relying on "
         "supercomputers', the centralization argument against scaling by "
         "block size alone.\n";

  // Centralization proxy: validation cost per block vs consumer budget.
  std::cout << "\nValidation load per block (signature checks at ~1 us "
               "each, consumer budget ~1 core):\n";
  Table t2({"block size", "txs/block", "sig checks/s needed at 120 s "
            "interval"});
  for (std::uint64_t size :
       {1'000'000ULL, 2'000'000ULL, 8'000'000ULL, 32'000'000ULL}) {
    const double txs = static_cast<double>(size) / 146.0;
    t2.row({format_bytes(size), fmt(txs, 0), format_si(txs / 120.0)});
  }
  t2.print();

  JsonObject report;
  report.put("bench", "blocksize");
  report.put_raw("size_sweep", sweep_json.to_string());
  report.put_raw("fork_pressure", fork_json.to_string());
  report.put_raw("metrics", metrics_section);
  write_bench_report("blocksize", report);
  std::cout << "\nWrote BENCH_blocksize.json\n";
  return 0;
}
