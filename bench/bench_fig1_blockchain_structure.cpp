// E1 -- Paper Fig. 1: "Blockchain as a data structure".
//
// Regenerates the figure's content as measurements: blocks of hashed,
// Merkle-committed transactions linked by predecessor hashes. Reports the
// cost of building and validating the structure, the byte layout of a
// block, and the tamper-evidence property the figure illustrates.
#include <chrono>
#include <iostream>
#include <string>

#include "chain/blockchain.hpp"
#include "core/json_report.hpp"
#include "core/table.hpp"
#include "crypto/merkle.hpp"
#include "obs/metrics.hpp"
#include "support/stats.hpp"

using namespace dlt;
using namespace dlt::chain;

namespace {

struct BuildResult {
  double build_ms = 0;
  double validate_ms = 0;
  std::size_t block_bytes = 0;
  std::size_t header_bytes = 0;
};

BuildResult build_chain(std::size_t blocks, std::size_t txs_per_block,
                        dlt::obs::MetricsRegistry* registry = nullptr) {
  Rng rng(1);
  std::vector<crypto::KeyPair> keys;
  GenesisSpec genesis;
  for (int i = 0; i < 8; ++i) {
    keys.push_back(crypto::KeyPair::from_seed(0x300 + i));
    genesis.allocations.emplace_back(keys.back().account_id(),
                                     1'000'000'000);
  }
  ChainParams params = bitcoin_like();
  params.initial_difficulty = 2.0;  // real PoW, trivial target
  params.retarget_window = 0;

  Blockchain chain(params, genesis);
  Blockchain verifier(params, genesis);
  // Wall-clock connect_block timings land in the registry under profile.*
  // (same hook the cluster drivers use).
  verifier.set_metrics(registry);

  BuildResult out;
  std::vector<Block> built;

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t h = 1; h <= blocks; ++h) {
    UtxoTxList txs{UtxoTransaction::coinbase(
        keys[0].account_id(), params.block_reward,
        static_cast<std::uint32_t>(h))};
    // Fill the block with independent spends, one per wallet.
    const std::size_t spends =
        std::min(txs_per_block > 0 ? txs_per_block - 1 : 0, keys.size());
    for (std::size_t t = 0; t < spends; ++t) {
      auto coins = chain.utxo_set().find_owned(keys[t].account_id());
      if (coins.empty()) continue;
      UtxoTransaction tx;
      tx.inputs.push_back(TxIn{coins[0].first, 0, {}});
      tx.outputs.push_back(TxOut{coins[0].second.value,
                                 keys[(t + 1) % keys.size()].account_id()});
      tx.sign_all({keys[t]}, rng);
      txs.push_back(tx);
    }
    Block b;
    b.header.height = static_cast<std::uint32_t>(h);
    b.header.parent = chain.tip_hash();
    b.header.timestamp = static_cast<double>(h) * params.block_interval;
    b.header.difficulty = chain.next_difficulty(chain.tip_hash());
    b.header.proposer = keys[0].account_id();
    b.txs = std::move(txs);
    b.header.merkle_root = b.compute_merkle_root();
    for (std::uint64_t nonce = 0;; ++nonce) {
      b.header.nonce = nonce;
      if (meets_target(b.header.pow_digest(), b.header.difficulty)) break;
    }
    auto res = chain.submit(b);
    if (!res) {
      std::cerr << "build failed: " << res.error().to_string() << "\n";
      break;
    }
    built.push_back(b);
  }
  const auto t1 = std::chrono::steady_clock::now();
  for (const Block& b : built) {
    auto res = verifier.submit(b);
    (void)res;
  }
  const auto t2 = std::chrono::steady_clock::now();

  out.build_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.validate_ms =
      std::chrono::duration<double, std::milli>(t2 - t1).count();
  if (!built.empty()) {
    out.block_bytes = built.back().serialized_size();
    out.header_bytes = built.back().header.serialized_size();
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "=== E1 / Fig. 1: blockchain as a data structure ===\n\n";

  std::cout << "Block anatomy (paper Fig. 1: header with predecessor hash +"
               " Merkle-committed transactions):\n";
  {
    core::Table t({"component", "bytes"});
    BuildResult r = build_chain(4, 2);
    t.row({"header (incl. parent hash, merkle root, nonce)",
           std::to_string(r.header_bytes)});
    t.row({"parent-hash link", "32"});
    t.row({"merkle root", "32"});
    t.row({"full block (2 txs)", std::to_string(r.block_bytes)});
    t.print();
  }

  std::cout << "\nBuild + revalidate cost of the linked structure:\n";
  obs::MetricsRegistry registry;
  core::JsonArray scaling_json;
  core::Table t({"blocks", "build ms", "validate ms", "us/block validate"});
  for (std::size_t blocks : {50u, 200u, 800u}) {
    BuildResult r = build_chain(blocks, 2, &registry);
    t.row({std::to_string(blocks), core::fmt(r.build_ms),
           core::fmt(r.validate_ms),
           core::fmt(r.validate_ms * 1000.0 / static_cast<double>(blocks))});
    core::JsonObject row;
    row.put("blocks", static_cast<std::uint64_t>(blocks));
    row.put("build_ms", r.build_ms);
    row.put("validate_ms", r.validate_ms);
    scaling_json.push_raw(row.to_string());
  }
  t.print();

  std::cout << "\nTamper evidence: flipping one transaction bit breaks the "
               "Merkle root; altering any block breaks every successor's "
               "parent-hash link (verified structurally in tests/"
               "chain_blockchain_test.cpp).\n";

  // Demonstrate the Merkle inclusion proof a light client would use.
  std::vector<Hash256> leaves;
  for (int i = 0; i < 2048; ++i)
    leaves.push_back(
        crypto::Sha256::digest(as_bytes("tx" + std::to_string(i))));
  crypto::MerkleTree tree(leaves);
  auto proof = tree.prove(1024);
  std::cout << "\nLight-client inclusion proof for 1 of 2048 txs: "
            << proof->size() << " hashes ("
            << proof->size() * 32 << " bytes vs "
            << leaves.size() * 32 << " bytes for the full list)\n";

  core::JsonObject report;
  report.put("bench", "fig1_blockchain_structure");
  report.put_raw("validate_scaling", scaling_json.to_string());
  report.put("merkle_proof_hashes",
             static_cast<std::uint64_t>(proof->size()));
  report.put_raw("metrics", registry.to_json().to_string());
  core::write_bench_report("fig1_blockchain_structure", report);
  std::cout << "\nWrote BENCH_fig1_blockchain_structure.json\n";
  return 0;
}
