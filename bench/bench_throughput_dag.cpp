// E9 -- Paper §VI-B: DAG throughput.
//
// "There is no inherent cap in the transaction throughput in the protocol
// itself. However, peak throughput on a test reached on the main network
// was 306 TPS with an average of 105.75 TPS. The limit is currently
// determined by the quality of consumer grade hardware and network
// conditions."
//
// We drive the lattice at increasing offered load under (a) generous and
// (b) constrained network/work budgets: throughput tracks the offered
// load (no protocol ceiling) until the environment -- link bandwidth and
// per-block anti-spam work -- becomes the limit.
#include <cmath>
#include <iostream>
#include <string>

#include "core/json_report.hpp"
#include "core/lattice_cluster.hpp"
#include "core/table.hpp"
#include "obs/trace.hpp"
#include "storage/config.hpp"

using namespace dlt;
using namespace dlt::core;

namespace {

struct DagRun {
  double offered = 0;
  double achieved_tps = 0;
  double confirm_median = 0;
  std::uint64_t unsettled = 0;
  std::string metrics_json;
  std::string trace_summary_json;
  std::string latency_line;
};

/// When `trace_path` is non-empty and DLT_TRACE is set, the run's event
/// trace is exported as JSONL (byte-identical across identical-seed runs).
DagRun run(double offered_tps, double bandwidth, int work_bits,
           const std::string& trace_path = {}) {
  LatticeClusterConfig cfg;
  apply_env_crypto(cfg.crypto);  // DLT_VERIFY_THREADS (determinism gate)
  storage::apply_env_storage(cfg.storage);  // DLT_STORAGE (disk legs)
  cfg.obs.trace_capacity = obs::trace_capacity_from_env();
  // DLT_TRACE_SINK streams the reference run write-through (ring optional).
  if (!trace_path.empty()) cfg.obs.trace_sink = obs::trace_sink_from_env();
  cfg.node_count = 6;
  cfg.representative_count = 2;
  cfg.account_count = 48;
  cfg.params.work_bits = work_bits;
  // Work is solved for real: higher bits = slower issuance per user,
  // exactly Nano's spam throttle. To keep runtime sane we only verify.
  cfg.params.verify_work = work_bits <= 8;
  cfg.link = net::LinkParams{0.04, 0.01, bandwidth};
  cfg.seed = 77;
  LatticeCluster cluster(cfg);
  cluster.fund_accounts();

  const double duration = 40.0;
  Rng wl_rng(4);
  WorkloadConfig wl;
  wl.account_count = cfg.account_count;
  wl.tx_rate = offered_tps;
  wl.duration = duration;
  wl.max_amount = 50;
  cluster.schedule_workload(generate_payments(wl, wl_rng));
  cluster.run_for(duration + 20.0);

  RunMetrics m = cluster.metrics();
  DagRun out;
  out.offered = offered_tps;
  // Included sends (minus the funding sends) over the workload window.
  const std::uint64_t funding = cfg.account_count;
  out.achieved_tps =
      static_cast<double>(m.included > funding ? m.included - funding : 0) /
      duration;
  out.confirm_median = m.confirmation_latency.count()
                           ? m.confirmation_latency.median()
                           : 0;
  out.unsettled = m.pending_end;
  out.metrics_json = cluster.metrics_json().to_string();
  out.trace_summary_json = cluster.trace_summary_json().to_string();
  out.latency_line = latency_summary_line(cluster.metrics_registry());
  if (!trace_path.empty() && cluster.tracer().enabled() &&
      !cluster.tracer().events().empty()) {  // sink-only mode has no ring
    if (cluster.tracer().export_jsonl(trace_path))
      std::cout << "Wrote " << trace_path << "\n";
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "=== E9 / §VI-B: DAG throughput is environment-bound, not "
               "protocol-bound ===\n\n";

  auto dag_json = [](const DagRun& r, double bandwidth) {
    JsonObject row;
    row.put("offered_tps", r.offered);
    row.put("achieved_tps", r.achieved_tps);
    row.put("confirm_median_s", r.confirm_median);
    row.put("unsettled", r.unsettled);
    row.put("link_bandwidth", bandwidth);
    return row.to_string();
  };
  JsonArray generous_json, constrained_json;
  std::string metrics_section, trace_section;

  std::cout << "Generous environment (100 Mbit links, trivial work):\n";
  Table t1({"offered TPS", "achieved TPS", "confirm median s", "unsettled"});
  for (double offered : {5.0, 20.0, 60.0, 120.0}) {
    const bool reference = metrics_section.empty();
    DagRun r = run(offered, 1.25e7, 2,
                   reference ? "TRACE_throughput_dag.jsonl" : "");
    if (reference) {
      metrics_section = r.metrics_json;
      trace_section = r.trace_summary_json;
      if (!r.latency_line.empty())
        std::cout << r.latency_line << " (reference run)\n";
    }
    t1.row({fmt(r.offered, 0), fmt(r.achieved_tps, 1),
            fmt(r.confirm_median, 3), std::to_string(r.unsettled)});
    generous_json.push_raw(dag_json(r, 1.25e7));
  }
  t1.print();
  std::cout << "No knee: achieved tracks offered -- contrast with the hard "
               "ceilings in bench_throughput_chain.\n";

  std::cout << "\nConstrained network (links throttled; blocks + votes "
               "must share the pipe):\n";
  Table t2({"link bandwidth", "offered TPS", "achieved TPS",
            "confirm median s", "unsettled at end"});
  for (double bw : {1.25e6, 1.0e5, 3.0e4, 1.0e4}) {
    DagRun r = run(120.0, bw, 2);
    t2.row({format_bytes(static_cast<std::uint64_t>(bw)) + "/s", "120",
            fmt(r.achieved_tps, 1), fmt(r.confirm_median, 3),
            std::to_string(r.unsettled)});
    constrained_json.push_raw(dag_json(r, bw));
  }
  t2.print();

  JsonObject report;
  report.put("bench", "throughput_dag");
  report.put_raw("generous", generous_json.to_string());
  report.put_raw("constrained", constrained_json.to_string());
  report.put_raw("metrics", metrics_section);
  report.put_raw("trace_summary", trace_section);
  write_bench_report("throughput_dag", report);
  std::cout << "\nWrote BENCH_throughput_dag.json\n";

  std::cout << "\nAnti-spam work as the per-user issuance throttle "
               "(paper §III-B; solving 2^bits hashes per block):\n";
  Table t3({"work bits", "expected hashes/block", "1-thread blocks/s*"});
  for (int bits : {8, 16, 20, 24}) {
    const double hashes = std::ldexp(1.0, bits);
    // ~2.5 MH/s single-thread SHA-256d (see bench_crypto on this host).
    t3.row({std::to_string(bits), format_si(hashes),
            fmt(2.5e6 / hashes, 2)});
  }
  t3.print();
  std::cout << "* the issuance-rate cap a consumer CPU faces per account; "
               "validators only verify (one hash), so the *network* stays "
               "uncapped.\n";

  std::cout
      << "\nShape check (paper §VI-B): the protocol imposes no cap; "
         "measured limits come from bandwidth (achieved TPS collapses as "
         "links shrink) and from the sender-side hashcash work -- matching "
         "Nano's observed 306 TPS peak / 105.75 TPS average being a "
         "hardware/network artifact.\n";
  return 0;
}
