// A malicious double-send on the block-lattice, resolved by weighted
// representative voting (paper §III-B, §IV-B).
//
// "Forks in Nano are only possible as a result of a malicious attack or
// bad programming... In the case of a conflict, the winning transaction is
// the one that gained the most votes with regards to the voter's weight."
#include <iostream>

#include "core/lattice_cluster.hpp"
#include "support/hex.hpp"

using namespace dlt;
using namespace dlt::core;

int main() {
  LatticeClusterConfig cfg;
  cfg.node_count = 4;
  cfg.representative_count = 3;
  cfg.account_count = 6;
  cfg.params.work_bits = 4;
  cfg.seed = 7;
  LatticeCluster cluster(cfg);
  cluster.fund_accounts();
  std::cout << "Network: " << cfg.node_count << " nodes, "
            << cfg.representative_count
            << " representatives holding delegated weight.\n\n";

  // Mallory (account 0) signs TWO sends spending the same chain position:
  // one pays account 1, the other pays account 2.
  auto& owner = cluster.owner_of(0);
  const auto& mallory = cluster.account(0);
  const auto* info = owner.ledger().account(mallory.account_id());
  Rng rng(13);

  lattice::LatticeBlock pay1, pay2;
  for (auto* b : {&pay1, &pay2}) {
    b->type = lattice::BlockType::kSend;
    b->account = mallory.account_id();
    b->previous = info->head().hash();
    b->representative = info->head().representative;
  }
  pay1.balance = info->head().balance - 1000;
  pay1.link = cluster.account(1).account_id();
  pay2.balance = info->head().balance - 2000;
  pay2.link = cluster.account(2).account_id();
  for (auto* b : {&pay1, &pay2}) {
    b->solve_work(cfg.params.work_bits);
    b->sign(mallory, rng);
  }
  std::cout << "Mallory double-sends from one chain position:\n"
            << "  candidate X " << short_hex(pay1.hash())
            << " pays account 1\n"
            << "  candidate Y " << short_hex(pay2.hash())
            << " pays account 2\n\n";

  // The two conflicting blocks enter the network at different nodes.
  (void)cluster.node(1).publish(pay1);
  cluster.run_for(0.01);
  (void)cluster.node(2).publish(pay2);
  std::cout << "Published X at node 1 and Y at node 2 -- nodes disagree, "
               "elections begin...\n\n";
  cluster.run_for(30.0);

  // Outcome: every node settled on the same winner.
  const auto head0 =
      cluster.node(0).ledger().head_of(mallory.account_id());
  std::cout << "After voting:\n";
  bool all_agree = true;
  for (std::size_t n = 0; n < cluster.node_count(); ++n) {
    auto head = cluster.node(n).ledger().head_of(mallory.account_id());
    std::cout << "  node " << n << " head of mallory's chain: "
              << (head ? short_hex(*head) : std::string("?")) << "\n";
    if (head != head0) all_agree = false;
  }
  const char* winner = *head0 == pay1.hash()   ? "X"
                       : *head0 == pay2.hash() ? "Y"
                                               : "?";
  std::cout << "\nAll nodes agree: " << (all_agree ? "yes" : "NO")
            << "; winner is candidate " << winner << ".\n";

  std::uint64_t elections = 0, rollbacks = 0;
  for (std::size_t n = 0; n < cluster.node_count(); ++n) {
    elections += cluster.node(n).confirmations().elections_started;
    rollbacks += cluster.node(n).confirmations().elections_lost_rollbacks;
  }
  std::cout << "Elections started across nodes: " << elections
            << ", losing blocks rolled back: " << rollbacks << "\n";
  std::cout << "Cemented (irreversible): "
            << (cluster.node(0).ledger().is_cemented(*head0) ? "yes" : "no")
            << "  -- block-cementing, paper §IV-B.\n";
  std::cout << "Value conserved on every node: "
            << (cluster.node(0).ledger().conserves_value() &&
                        cluster.node(1).ledger().conserves_value()
                    ? "yes"
                    : "NO")
            << "\n\nNote the contrast with fork_anatomy: no blocks of "
               "unrelated accounts were disturbed -- the conflict stayed "
               "inside one account-chain.\n";
  return 0;
}
