// Quickstart: the two DLT paradigms side by side in ~100 lines.
//
// 1. Blockchain: mine a few real-PoW blocks carrying UTXO payments.
// 2. Block-lattice: run send -> receive transfers on per-account chains.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <iostream>

#include "chain/blockchain.hpp"
#include "lattice/ledger.hpp"
#include "support/hex.hpp"

using namespace dlt;

namespace {

void blockchain_demo() {
  std::cout << "--- Blockchain (paper §II-A) ---\n";
  Rng rng(1);
  auto alice = crypto::KeyPair::from_seed(1);
  auto bob = crypto::KeyPair::from_seed(2);
  auto miner = crypto::KeyPair::from_seed(3);

  // Genesis hard-codes the initial state: alice owns 1000 coins.
  chain::ChainParams params = chain::bitcoin_like();
  params.initial_difficulty = 64.0;  // real PoW, laptop-friendly
  params.retarget_window = 0;
  chain::GenesisSpec genesis;
  genesis.allocations.emplace_back(alice.account_id(), 1000);
  chain::Blockchain chain(params, genesis);
  std::cout << "genesis " << short_hex(chain.tip_hash()) << ", alice owns "
            << chain.utxo_set().total_value() << "\n";

  // Alice pays bob 400 (spending her genesis coin, 100 back as change
  // would imply a fee; here she sends exact change).
  auto coins = chain.utxo_set().find_owned(alice.account_id());
  chain::UtxoTransaction pay;
  pay.inputs.push_back(chain::TxIn{coins[0].first, 0, {}});
  pay.outputs.push_back(chain::TxOut{400, bob.account_id()});
  pay.outputs.push_back(chain::TxOut{600, alice.account_id()});
  pay.sign_all({alice}, rng);

  // A miner bundles it into a block and solves the PoW puzzle for real.
  chain::Block block;
  block.header.height = 1;
  block.header.parent = chain.tip_hash();
  block.header.timestamp = 600.0;
  block.header.difficulty = chain.next_difficulty(chain.tip_hash());
  block.header.proposer = miner.account_id();
  block.txs = chain::UtxoTxList{
      chain::UtxoTransaction::coinbase(miner.account_id(),
                                       params.block_reward, 1),
      pay};
  block.header.merkle_root = block.compute_merkle_root();
  std::uint64_t tries = 0;
  for (std::uint64_t nonce = 0;; ++nonce, ++tries) {
    block.header.nonce = nonce;
    if (chain::meets_target(block.header.pow_digest(),
                            block.header.difficulty))
      break;
  }
  auto res = chain.submit(block);
  std::cout << "mined block " << short_hex(block.hash()) << " after "
            << tries << " hash attempts (difficulty "
            << block.header.difficulty << ")\n";
  std::cout << "accepted: " << (res.ok() ? "yes" : res.error().to_string())
            << ", height " << chain.height() << "\n";
  std::cout << "alice: "
            << chain.utxo_set().find_owned(alice.account_id())[0].second.value
            << ", bob: "
            << chain.utxo_set().find_owned(bob.account_id())[0].second.value
            << ", tx confirmations: " << chain.confirmations(pay.id())
            << "\n\n";
}

void lattice_demo() {
  std::cout << "--- Block-lattice (paper §II-B, Figs. 2-3) ---\n";
  Rng rng(2);
  auto genesis_key = crypto::KeyPair::from_seed(10);
  auto alice = crypto::KeyPair::from_seed(11);

  lattice::LatticeParams params;
  params.work_bits = 8;  // real anti-spam hashcash
  lattice::Ledger ledger(params, genesis_key.account_id(),
                         genesis_key.account_id(), 1000);
  std::cout << "genesis account holds " << ledger.supply() << "\n";

  // Send: deducted from the sender, pending in the network (unsettled).
  const auto& ghead = ledger.account(genesis_key.account_id())->head();
  lattice::LatticeBlock send;
  send.type = lattice::BlockType::kSend;
  send.account = genesis_key.account_id();
  send.previous = ghead.hash();
  send.balance = ghead.balance - 250;
  send.link = alice.account_id();
  send.representative = ghead.representative;
  send.solve_work(params.work_bits);
  send.sign(genesis_key, rng);
  auto st = ledger.process(send);
  std::cout << "send 250 -> " << st.to_string() << "; pending transfers: "
            << ledger.pending().size() << " (unsettled, Fig. 3)\n";

  // Receive (an `open`, since alice's chain does not exist yet): settles.
  lattice::LatticeBlock open;
  open.type = lattice::BlockType::kOpen;
  open.account = alice.account_id();
  open.balance = 250;
  open.link = send.hash();
  open.representative = alice.account_id();
  open.solve_work(params.work_bits);
  open.sign(alice, rng);
  st = ledger.process(open);
  std::cout << "receive  -> " << st.to_string()
            << "; alice balance: " << ledger.balance_of(alice.account_id())
            << ", pending: " << ledger.pending().size() << " (settled)\n";
  std::cout << "account-chains: " << ledger.account_count()
            << ", one transaction per lattice node, "
            << ledger.block_count() << " blocks total\n";
  std::cout << "voting weight of alice's representative: "
            << ledger.weight_of(alice.account_id()) << " (paper §III-B)\n";
}

}  // namespace

int main() {
  blockchain_demo();
  lattice_demo();
  return 0;
}
