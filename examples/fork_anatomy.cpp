// Anatomy of a temporary fork (paper Fig. 4), narrated step by step.
//
// Provokes the figure's two scenarios on a real Blockchain instance:
//  - typical fork: two blocks claim the same predecessor; the next block
//    resolves it, orphaning one branch;
//  - atypical fork: the losing branch grows two deep before losing.
#include <iostream>

#include "chain/blockchain.hpp"
#include "support/hex.hpp"

using namespace dlt;
using namespace dlt::chain;

namespace {

Block seal(const Blockchain& chain, const BlockHash& parent,
           const crypto::AccountId& miner) {
  const Block* p = chain.find(parent);
  if (!p) {
    std::cerr << "seal: parent " << short_hex(parent)
              << " is not in the chain (submit it first)\n";
    std::exit(1);
  }
  Block b;
  b.header.height = p->header.height + 1;
  b.header.parent = parent;
  b.header.timestamp = p->header.timestamp + 600.0;
  b.header.difficulty = chain.next_difficulty(parent);
  b.header.proposer = miner;
  b.txs = UtxoTxList{UtxoTransaction::coinbase(
      miner, chain.params().block_reward, b.header.height)};
  b.header.merkle_root = b.compute_merkle_root();
  for (std::uint64_t nonce = 0;; ++nonce) {
    b.header.nonce = nonce;
    if (meets_target(b.header.pow_digest(), b.header.difficulty)) break;
  }
  return b;
}

void show(const Blockchain& chain, const std::string& caption) {
  std::cout << caption << "\n"
            << chain.render_tree() << "(active chain in [brackets])\n\n";
}

const char* name_of(Accept a) {
  switch (a) {
    case Accept::kConnected: return "connected (new tip)";
    case Accept::kReorged: return "REORG: switched to the heavier branch";
    case Accept::kSideChain: return "stored on a side chain";
    case Accept::kOrphaned: return "orphaned (parent unknown)";
    case Accept::kDuplicate: return "duplicate";
  }
  return "?";
}

}  // namespace

int main() {
  auto alice = crypto::KeyPair::from_seed(1);  // miner A
  auto bob = crypto::KeyPair::from_seed(2);    // miner B

  ChainParams params = bitcoin_like();
  params.initial_difficulty = 16.0;
  params.retarget_window = 0;
  GenesisSpec genesis;
  genesis.allocations.emplace_back(alice.account_id(), 1000);
  Blockchain chain(params, genesis);

  std::cout << "=== Typical fork (top chain of paper Fig. 4) ===\n\n";
  // "Two different blocks are created at roughly the same time."
  Block a1 = seal(chain, chain.tip_hash(), alice.account_id());
  Block b1 = seal(chain, chain.tip_hash(), bob.account_id());
  auto r = chain.submit(a1);
  std::cout << "miner A's block " << short_hex(a1.hash()) << ": "
            << name_of(r->outcome) << "\n";
  r = chain.submit(b1);
  std::cout << "miner B's block " << short_hex(b1.hash()) << ": "
            << name_of(r->outcome)
            << "  <-- two blocks claim the same predecessor\n\n";
  show(chain, "The ledger now holds two histories:");

  // "The problem resolves itself when a block is mined that makes one
  // chain longer than the other."
  Block b2 = seal(chain, b1.hash(), bob.account_id());
  r = chain.submit(b2);
  std::cout << "miner B extends its branch with " << short_hex(b2.hash())
            << ": " << name_of(r->outcome) << " (depth "
            << r->reorg_depth << ")\n\n";
  show(chain, "Resolved: the longer chain wins, A's block is orphaned:");

  std::cout << "=== Atypical fork (bottom chain of paper Fig. 4) ===\n\n";
  // The current tip is b2. Alice mines two blocks from b1, releasing the
  // first immediately and building the second on top of it.
  Block a2 = seal(chain, b1.hash(), alice.account_id());
  r = chain.submit(a2);
  std::cout << "rival block at the same height as the tip: "
            << name_of(r->outcome) << "\n";
  Block a3 = seal(chain, a2.hash(), alice.account_id());
  r = chain.submit(a3);
  std::cout << "second rival block: " << name_of(r->outcome) << " (depth "
            << r->reorg_depth << ")\n\n";
  show(chain, "A two-deep branch displaced the previous tip:");

  std::cout << "Fork statistics for this session:\n"
            << "  reorgs: " << chain.fork_stats().reorgs
            << ", blocks disconnected: "
            << chain.fork_stats().blocks_disconnected
            << ", deepest reorg: " << chain.fork_stats().max_reorg_depth
            << "\n\n"
            << "This is why exchanges wait 6 confirmations (paper §IV-A): "
               "a block's transactions only become trustworthy once enough "
               "work is stacked above them -- see "
               "bench_confirmation_confidence.\n";
  return 0;
}
