// The other DAG (paper §II-B, footnote 1): an IOTA-style tangle session.
//
// Issues transactions that each approve two earlier ones, watches
// confirmation confidence grow, then stages a double spend and lets the
// biased tip-selection walk starve the losing side.
#include <iostream>

#include "support/hex.hpp"
#include "tangle/tangle.hpp"

using namespace dlt;
using namespace dlt::tangle;

int main() {
  Rng rng(7);
  TangleParams params;
  params.work_bits = 6;  // real per-transaction hashcash
  params.alpha = 0.3;
  Tangle tangle(params);
  auto issuer = crypto::KeyPair::from_seed(1);
  int seq = 0;
  auto payload = [&] {
    return crypto::Sha256::digest(as_bytes("tx" + std::to_string(seq)));
  };

  std::cout << "Tangle genesis: " << short_hex(tangle.genesis()) << "\n\n";

  // A first payment, then traffic on top of it.
  TangleTx payment = make_tx(tangle, issuer, tangle.select_tip(rng),
                             tangle.select_tip(rng), payload(), seq++, rng);
  (void)tangle.attach(payment);
  std::cout << "payment " << short_hex(payment.hash())
            << " attached, approving two tips; confidence over time:\n";
  for (int burst = 0; burst < 4; ++burst) {
    for (int i = 0; i < 8; ++i) {
      TangleTx tx = make_tx(tangle, issuer, tangle.select_tip(rng),
                            tangle.select_tip(rng), payload(), seq++, rng);
      (void)tangle.attach(tx);
    }
    std::cout << "  after " << tangle.size() - 2
              << " more txs: walk confidence = "
              << tangle.walk_confidence(payment.hash(), rng, 64)
              << ", tips = " << tangle.tip_count() << "\n";
  }

  // Double spend: two transactions with the same spend key on disjoint
  // branches. Honest traffic must pick a side.
  std::cout << "\nStaging a double spend of one coin...\n";
  const Hash256 coin = crypto::Sha256::digest(as_bytes("the-coin"));
  TangleTx s1 = make_tx(tangle, issuer, tangle.select_tip(rng, {coin}),
                        tangle.genesis(), payload(), seq++, rng, coin);
  (void)tangle.attach(s1);
  TangleTx s2 = make_tx(tangle, issuer, tangle.genesis(),
                        tangle.genesis(), payload(), seq++, rng, coin);
  (void)tangle.attach(s2);
  std::cout << "  spend A " << short_hex(s1.hash()) << "\n  spend B "
            << short_hex(s2.hash()) << "\n";

  for (int i = 0; i < 80; ++i) {
    const TxHash trunk = tangle.select_tip(rng);
    const TxHash branch = tangle.select_tip(rng);
    TangleTx tx = make_tx(tangle, issuer, trunk, branch, payload(), seq++,
                          rng);
    if (!tangle.attach(tx).ok()) {
      // Cannot merge conflicting cones; fall back to one parent.
      TangleTx retry =
          make_tx(tangle, issuer, trunk, trunk, payload(), seq++, rng);
      (void)tangle.attach(retry);
    }
  }

  const double ca = tangle.walk_confidence(s1.hash(), rng, 128);
  const double cb = tangle.walk_confidence(s2.hash(), rng, 128);
  std::cout << "\nAfter 80 honest transactions:\n"
            << "  spend A: weight " << tangle.cumulative_weight(s1.hash())
            << ", walk confidence " << ca << "\n"
            << "  spend B: weight " << tangle.cumulative_weight(s2.hash())
            << ", walk confidence " << cb << "\n"
            << "  -> the " << (ca > cb ? "A" : "B")
            << " side won; the other is starved (no one extends it).\n\n"
            << "Contrast with the lattice (dag_conflict_resolution): the "
               "tangle resolves conflicts by cumulative-weight attraction "
               "instead of explicit representative votes.\n";
  return 0;
}
