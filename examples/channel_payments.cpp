// Full payment-channel lifecycle on a real chain (paper §VI-A):
// open on-chain -> stream micro-payments off-chain -> settle on-chain.
#include <iostream>

#include "chain/blockchain.hpp"
#include "scaling/channel.hpp"
#include "support/hex.hpp"

using namespace dlt;
using namespace dlt::chain;
using namespace dlt::scaling;

namespace {

Block seal(const Blockchain& chain, UtxoTxList txs,
           const crypto::AccountId& miner) {
  const Block* p = chain.find(chain.tip_hash());
  Block b;
  b.header.height = p->header.height + 1;
  b.header.parent = chain.tip_hash();
  b.header.timestamp = p->header.timestamp + 600.0;
  b.header.difficulty = chain.next_difficulty(chain.tip_hash());
  b.header.proposer = miner;
  txs.insert(txs.begin(),
             UtxoTransaction::coinbase(miner, chain.params().block_reward,
                                       b.header.height));
  b.txs = std::move(txs);
  b.header.merkle_root = b.compute_merkle_root();
  for (std::uint64_t nonce = 0;; ++nonce) {
    b.header.nonce = nonce;
    if (meets_target(b.header.pow_digest(), b.header.difficulty)) break;
  }
  return b;
}

Amount balance_of(const Blockchain& chain, const crypto::AccountId& who) {
  Amount sum = 0;
  for (const auto& [op, out] : chain.utxo_set().find_owned(who))
    sum += out.value;
  return sum;
}

}  // namespace

int main() {
  Rng rng(4);
  auto alice = crypto::KeyPair::from_seed(1);
  auto bob = crypto::KeyPair::from_seed(2);
  auto miner = crypto::KeyPair::from_seed(3);

  ChainParams params = bitcoin_like();
  params.initial_difficulty = 16.0;
  params.retarget_window = 0;
  GenesisSpec genesis;
  genesis.allocations.emplace_back(alice.account_id(), 100'000);
  genesis.allocations.emplace_back(bob.account_id(), 100'000);
  Blockchain chain(params, genesis);

  std::cout << "On-chain balances: alice "
            << balance_of(chain, alice.account_id()) << ", bob "
            << balance_of(chain, bob.account_id()) << "\n\n";

  // 1. Open: both parties lock a prepaid amount for the channel lifetime.
  PaymentChannel channel(alice, bob, 60'000, 40'000, rng);
  auto funding = channel.make_funding_tx(
      chain.utxo_set().find_owned(alice.account_id()),
      chain.utxo_set().find_owned(bob.account_id()), rng);
  auto r1 = chain.submit(seal(chain, {funding}, miner.account_id()));
  std::cout << "1. funding tx " << short_hex(funding.id()) << " mined: "
            << (r1.ok() ? "ok" : r1.error().to_string())
            << " -- 100k locked in channel " << short_hex(channel.id())
            << "\n";

  // 2. Stream micro-payments: instant, free, invisible to the chain.
  int coffee = 0;
  for (int day = 0; day < 30; ++day) {
    for (int i = 0; i < 3; ++i, ++coffee)
      (void)channel.pay(450, /*alice buys coffee from bob*/ true, rng);
    (void)channel.pay(5'000, /*bob pays alice rent share*/ false, rng);
  }
  std::cout << "2. " << channel.payments_made()
            << " payments streamed off-chain (" << coffee
            << " coffees, 30 rent shares); chain height is still "
            << chain.height() << "\n";
  std::cout << "   channel state seq " << channel.sequence() << ": alice "
            << channel.balance_a() << ", bob " << channel.balance_b()
            << "\n";

  // 3. Close cooperatively: one settlement tx records final balances.
  auto final_state = channel.cooperative_close();
  auto settle = channel.make_settlement_tx(Outpoint{funding.id(), 0},
                                           final_state, rng);
  auto r2 = chain.submit(seal(chain, {settle}, miner.account_id()));
  std::cout << "3. settlement tx mined: "
            << (r2.ok() ? "ok" : r2.error().to_string()) << "\n\n";

  std::cout << "Final on-chain balances: alice "
            << balance_of(chain, alice.account_id()) << ", bob "
            << balance_of(chain, bob.account_id()) << "\n";
  std::cout << "On-chain transactions used: 2 (open + close) for "
            << channel.payments_made()
            << " payments -- 'micro transactions at high volume and "
               "speed, avoiding the transaction cap' (paper §VI-A).\n";
  return 0;
}
