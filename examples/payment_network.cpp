// A payment day on all three ledgers: the paper's comparison in miniature.
//
// The same Poisson/zipf payment workload is run through a Bitcoin-like
// network, an Ethereum-like network and a Nano-like network; the program
// prints the §IV/§V/§VI comparison table for the run.
#include <iostream>

#include "core/chain_cluster.hpp"
#include "core/lattice_cluster.hpp"
#include "core/table.hpp"

using namespace dlt;
using namespace dlt::core;

namespace {

constexpr std::size_t kAccounts = 20;
constexpr double kRate = 0.5;        // payments per second
constexpr double kDuration = 600.0;  // ten minutes of traffic

RunMetrics run_chain(chain::ChainParams params, double interval) {
  params.verify_pow = false;
  params.retarget_window = 0;
  params.block_interval = interval;
  params.initial_difficulty = 1e6;

  ChainClusterConfig cfg;
  cfg.params = params;
  cfg.node_count = 5;
  cfg.miner_count = 3;
  cfg.validator_count = 4;
  cfg.total_hashrate = 1e6 / interval;
  cfg.account_count = kAccounts;
  cfg.initial_balance = 100'000'000;
  cfg.genesis_outputs_per_account = 32;
  cfg.seed = 9;
  ChainCluster cluster(cfg);
  cluster.start();

  Rng wl(123);
  WorkloadConfig w;
  w.account_count = kAccounts;
  w.tx_rate = kRate;
  w.duration = kDuration;
  cluster.schedule_workload(generate_payments(w, wl));
  cluster.run_for(kDuration + 20 * interval);
  return cluster.metrics();
}

RunMetrics run_lattice() {
  LatticeClusterConfig cfg;
  cfg.node_count = 5;
  cfg.representative_count = 3;
  cfg.account_count = kAccounts;
  cfg.initial_balance = 100'000'000;
  cfg.params.work_bits = 2;
  cfg.seed = 9;
  LatticeCluster cluster(cfg);
  cluster.fund_accounts();

  Rng wl(123);
  WorkloadConfig w;
  w.account_count = kAccounts;
  w.tx_rate = kRate;
  w.duration = kDuration;
  cluster.schedule_workload(generate_payments(w, wl));
  cluster.run_for(kDuration + 30.0);
  return cluster.metrics();
}

std::string lat(const Percentiles& p) {
  if (p.count() == 0) return "-";
  return fmt(p.median(), 1) + " s";
}

}  // namespace

int main() {
  std::cout << "Same workload (" << kAccounts << " accounts, " << kRate
            << " tx/s for " << kDuration
            << " s) on the paper's three reference designs:\n\n";

  RunMetrics btc = run_chain(chain::bitcoin_like(), 600.0);
  RunMetrics eth = run_chain(chain::ethereum_like(), 15.0);
  RunMetrics nano = run_lattice();

  Table t({"metric", "bitcoin-like", "ethereum-like", "nano-like"});
  t.row({"payments submitted", fmt_u(btc.submitted), fmt_u(eth.submitted),
         fmt_u(nano.submitted)});
  t.row({"included in ledger", fmt_u(btc.included), fmt_u(eth.included),
         fmt_u(nano.included)});
  t.row({"confirmed", fmt_u(btc.confirmed), fmt_u(eth.confirmed),
         fmt_u(nano.confirmed)});
  t.row({"confirmation rule", "6 blocks deep", "11 blocks deep",
         "majority vote"});
  t.row({"median confirm latency", lat(btc.confirmation_latency),
         lat(eth.confirmation_latency), lat(nano.confirmation_latency)});
  t.row({"blocks produced", fmt_u(btc.blocks_produced),
         fmt_u(eth.blocks_produced), fmt_u(nano.blocks_produced)});
  t.row({"ledger bytes stored", format_bytes(btc.stored_bytes),
         format_bytes(eth.stored_bytes), format_bytes(nano.stored_bytes)});
  t.row({"orphaned blocks / reorgs",
         fmt_u(btc.orphaned_blocks) + " / " + fmt_u(btc.reorgs),
         fmt_u(eth.orphaned_blocks) + " / " + fmt_u(eth.reorgs),
         "0 / 0 (no global chain)"});
  t.row({"network messages", fmt_u(btc.messages), fmt_u(eth.messages),
         fmt_u(nano.messages)});
  t.print();

  std::cout << "\nReading the table against the paper:\n"
            << " - §IV: chain confirmations take many block intervals; the\n"
            << "   lattice confirms in network round-trips via weighted "
               "votes.\n"
            << " - §V: per-payment storage is highest for the UTXO chain "
               "(and\n"
            << "   the lattice prunes to balances; see bench_ledger_size).\n"
            << " - §VI: at this light load all systems keep up -- the "
               "chains'\n"
            << "   hard caps only bite under saturation (see "
               "bench_throughput_*).\n";
  return 0;
}
