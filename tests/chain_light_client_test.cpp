// SPV light client (paper §II-A): header-chain validation and Merkle
// inclusion proofs against a real full node.
#include <gtest/gtest.h>

#include "chain/light_client.hpp"
#include "chain_test_util.hpp"

namespace dlt::chain {
namespace {

using testutil::cheap_pow_utxo;
using testutil::fund_all;
using testutil::make_keys;
using testutil::seal_block;
using testutil::seal_empty_utxo;

class LightClientTest : public ::testing::Test {
 protected:
  LightClientTest()
      : keys(make_keys(3)),
        chain(cheap_pow_utxo(), fund_all(keys, 100'000)),
        client(cheap_pow_utxo()),
        rng(5) {
    EXPECT_TRUE(client.set_genesis(chain.at_height(0)->header).ok());
  }

  /// Mines a block containing one payment and feeds its header to the
  /// client. Returns the payment's txid.
  TxId grow_with_payment() {
    auto coins = chain.utxo_set().find_owned(keys[0].account_id());
    UtxoTransaction tx;
    tx.inputs.push_back(TxIn{coins[0].first, 0, {}});
    tx.outputs.push_back(TxOut{coins[0].second.value, keys[1].account_id()});
    tx.sign_all({keys[0]}, rng);
    const TxId id = tx.id();

    UtxoTxList txs{UtxoTransaction::coinbase(keys[2].account_id(),
                                             chain.params().block_reward,
                                             chain.height() + 1),
                   tx};
    Block b = seal_block(chain, chain.tip_hash(), std::move(txs),
                         keys[2].account_id());
    EXPECT_TRUE(chain.submit(b).ok());
    EXPECT_TRUE(client.accept_header(b.header).ok());
    // Swap ownership back for repeated use.
    std::swap(keys[0], keys[1]);
    return id;
  }

  void grow_empty(int n) {
    for (int i = 0; i < n; ++i) {
      Block b = seal_empty_utxo(chain, keys[2].account_id(),
                                chain.tip_hash());
      ASSERT_TRUE(chain.submit(b).ok());
      ASSERT_TRUE(client.accept_header(b.header).ok());
    }
  }

  std::vector<crypto::KeyPair> keys;
  Blockchain chain;
  LightClient client;
  Rng rng;
};

TEST_F(LightClientTest, GenesisRules) {
  LightClient fresh(cheap_pow_utxo());
  BlockHeader bogus = chain.at_height(0)->header;
  bogus.parent.v[0] = 1;  // has a parent -> not genesis
  EXPECT_FALSE(fresh.set_genesis(bogus).ok());
  EXPECT_TRUE(fresh.set_genesis(chain.at_height(0)->header).ok());
  EXPECT_FALSE(fresh.set_genesis(chain.at_height(0)->header).ok());
}

TEST_F(LightClientTest, FollowsHeaderChain) {
  grow_empty(5);
  EXPECT_EQ(client.height(), 5u);
  EXPECT_EQ(client.tip().hash(), chain.tip_hash());
  // A light client stores only headers: O(height), not the ledger (§V).
  EXPECT_EQ(client.stored_bytes(), 6 * BlockHeader::kSerializedSize);
}

TEST_F(LightClientTest, RejectsBadHeaders) {
  grow_empty(2);
  Block next = seal_empty_utxo(chain, keys[2].account_id(),
                               chain.tip_hash());

  BlockHeader wrong_parent = next.header;
  wrong_parent.parent.v[3] ^= 1;
  EXPECT_EQ(client.accept_header(wrong_parent).error().code, "wrong-parent");

  BlockHeader bad_pow = next.header;
  for (std::uint64_t n = 0;; ++n) {
    bad_pow.nonce = n;
    if (!meets_target(bad_pow.pow_digest(), bad_pow.difficulty)) break;
  }
  EXPECT_EQ(client.accept_header(bad_pow).error().code, "bad-pow");

  BlockHeader bad_diff = next.header;
  bad_diff.difficulty *= 0.5;  // claims an easier target than scheduled
  EXPECT_EQ(client.accept_header(bad_diff).error().code, "bad-difficulty");

  EXPECT_TRUE(client.accept_header(next.header).ok());
}

TEST_F(LightClientTest, VerifiesInclusionAndConfirmations) {
  const TxId txid = grow_with_payment();
  grow_empty(5);

  auto proof = make_inclusion_proof(chain, txid);
  ASSERT_TRUE(proof.ok()) << proof.error().to_string();
  auto confirmations = client.verify_inclusion(*proof);
  ASSERT_TRUE(confirmations.ok()) << confirmations.error().to_string();
  // 1 block containing it + 5 on top = 6: Bitcoin's §IV-A threshold.
  EXPECT_EQ(*confirmations, 6u);
}

TEST_F(LightClientTest, RejectsForgedProofs) {
  const TxId txid = grow_with_payment();
  grow_empty(1);
  auto proof = make_inclusion_proof(chain, txid);
  ASSERT_TRUE(proof.ok());

  InclusionProof tampered = *proof;
  tampered.txid.v[0] ^= 1;  // different transaction
  EXPECT_FALSE(client.verify_inclusion(tampered).ok());

  InclusionProof wrong_height = *proof;
  wrong_height.height += 1;  // claims a different block
  EXPECT_FALSE(client.verify_inclusion(wrong_height).ok());

  InclusionProof future = *proof;
  future.height = 999;
  EXPECT_EQ(client.verify_inclusion(future).error().code, "unknown-height");
}

TEST_F(LightClientTest, ProofUnavailableAfterPruning) {
  const TxId txid = grow_with_payment();
  grow_empty(8);
  chain.prune_bodies(2);
  auto proof = make_inclusion_proof(chain, txid);
  ASSERT_FALSE(proof.ok());
  EXPECT_EQ(proof.error().code, "pruned");  // §V-A's trade-off, observed
}

TEST_F(LightClientTest, UnknownTxRejected) {
  grow_empty(2);
  TxId ghost;
  ghost.v[7] = 0x77;
  EXPECT_EQ(make_inclusion_proof(chain, ghost).error().code, "unknown-tx");
}

TEST_F(LightClientTest, TracksDifficultyRetarget) {
  // Client must compute the same retarget schedule as full nodes.
  ChainParams p = cheap_pow_utxo();
  p.retarget_window = 4;
  p.initial_difficulty = 8.0;
  auto ks = make_keys(1);
  Blockchain full(p, testutil::fund_all(ks, 1000));
  LightClient spv(p);
  ASSERT_TRUE(spv.set_genesis(full.at_height(0)->header).ok());

  double t = 0;
  for (int i = 0; i < 9; ++i) {
    t += p.block_interval * 3;  // slow blocks: difficulty must drop
    UtxoTxList txs{UtxoTransaction::coinbase(ks[0].account_id(),
                                             p.block_reward,
                                             full.height() + 1)};
    Block b = seal_block(full, full.tip_hash(), std::move(txs),
                         ks[0].account_id(), t);
    ASSERT_TRUE(full.submit(b).ok()) << i;
    ASSERT_TRUE(spv.accept_header(b.header).ok()) << i;
  }
  EXPECT_EQ(spv.next_difficulty(), full.next_difficulty(full.tip_hash()));
  EXPECT_LT(spv.tip().difficulty, 8.0);
}

}  // namespace
}  // namespace dlt::chain
