// Block-lattice ledger: validation of all four block types, forks, gaps,
// rollback with cascades, cementing, pruning, conservation (paper §II-B,
// §III-B, §IV-B, §V-B).
#include <gtest/gtest.h>

#include "lattice_test_util.hpp"

namespace dlt::lattice {
namespace {

using testutil::Builder;
using testutil::cheap_params;

class LedgerTest : public ::testing::Test {
 protected:
  LedgerTest()
      : genesis(crypto::KeyPair::from_seed(1)),
        alice(crypto::KeyPair::from_seed(2)),
        bob(crypto::KeyPair::from_seed(3)),
        rng(7),
        ledger(cheap_params(), genesis.account_id(), genesis.account_id(),
               1'000'000),
        b{ledger, rng, cheap_params().work_bits} {}

  /// Funds `who` with `amount` via a settled send+open pair.
  BlockHash fund(const crypto::KeyPair& who, Amount amount) {
    LatticeBlock send = b.send(genesis, who.account_id(), amount);
    EXPECT_TRUE(ledger.process(send).ok());
    LatticeBlock open =
        b.open(who, send.hash(), amount, who.account_id());
    EXPECT_TRUE(ledger.process(open).ok());
    return open.hash();
  }

  crypto::KeyPair genesis, alice, bob;
  Rng rng;
  Ledger ledger;
  Builder b;
};

TEST_F(LedgerTest, GenesisDefinesInitialState) {
  EXPECT_EQ(ledger.account_count(), 1u);
  EXPECT_EQ(ledger.block_count(), 1u);
  EXPECT_EQ(ledger.balance_of(genesis.account_id()), 1'000'000u);
  EXPECT_EQ(ledger.weight_of(genesis.account_id()), 1'000'000u);
  EXPECT_TRUE(ledger.is_cemented(ledger.genesis().hash()));
  EXPECT_TRUE(ledger.conserves_value());
}

TEST_F(LedgerTest, SendCreatesPending) {
  LatticeBlock send = b.send(genesis, alice.account_id(), 100);
  ASSERT_TRUE(ledger.process(send).ok());
  EXPECT_EQ(ledger.balance_of(genesis.account_id()), 999'900u);
  ASSERT_EQ(ledger.pending().size(), 1u);
  const PendingInfo& p = ledger.pending().begin()->second;
  EXPECT_EQ(p.amount, 100u);
  EXPECT_EQ(p.destination, alice.account_id());
  EXPECT_EQ(ledger.total_pending(), 100u);
  // Unsettled value is not voting weight (§III-B).
  EXPECT_EQ(ledger.total_weight(), 999'900u);
  EXPECT_TRUE(ledger.conserves_value());
}

TEST_F(LedgerTest, OpenClaimsPending) {
  LatticeBlock send = b.send(genesis, alice.account_id(), 100);
  ASSERT_TRUE(ledger.process(send).ok());
  LatticeBlock open = b.open(alice, send.hash(), 100, bob.account_id());
  ASSERT_TRUE(ledger.process(open).ok());

  EXPECT_EQ(ledger.balance_of(alice.account_id()), 100u);
  EXPECT_TRUE(ledger.pending().empty());
  // Alice delegated to bob: bob's weight is alice's balance.
  EXPECT_EQ(ledger.weight_of(bob.account_id()), 100u);
  EXPECT_TRUE(ledger.conserves_value());
}

TEST_F(LedgerTest, ReceiveExtendsExistingChain) {
  fund(alice, 100);
  LatticeBlock send2 = b.send(genesis, alice.account_id(), 50);
  ASSERT_TRUE(ledger.process(send2).ok());
  LatticeBlock recv = b.receive(alice, send2.hash(), 50);
  ASSERT_TRUE(ledger.process(recv).ok());
  EXPECT_EQ(ledger.balance_of(alice.account_id()), 150u);
  EXPECT_EQ(ledger.account(alice.account_id())->height(), 2u);
}

TEST_F(LedgerTest, ChangeMovesWeightOnly) {
  fund(alice, 200);
  EXPECT_EQ(ledger.weight_of(alice.account_id()), 200u);
  LatticeBlock change = b.change(alice, bob.account_id());
  ASSERT_TRUE(ledger.process(change).ok());
  EXPECT_EQ(ledger.balance_of(alice.account_id()), 200u);
  EXPECT_EQ(ledger.weight_of(alice.account_id()), 0u);
  EXPECT_EQ(ledger.weight_of(bob.account_id()), 200u);
}

TEST_F(LedgerTest, DuplicateRejected) {
  LatticeBlock send = b.send(genesis, alice.account_id(), 100);
  ASSERT_TRUE(ledger.process(send).ok());
  EXPECT_EQ(ledger.process(send).error().code, "duplicate");
}

TEST_F(LedgerTest, BadSignatureRejected) {
  LatticeBlock send = b.send(genesis, alice.account_id(), 100);
  send.signature.s ^= 1;
  EXPECT_EQ(ledger.process(send).error().code, "bad-signature");
}

TEST_F(LedgerTest, InsufficientWorkRejected) {
  // Spam protection (§III-B): a block without valid hashcash is dropped.
  LatticeParams strict = cheap_params();
  strict.work_bits = 24;
  Ledger hard(strict, genesis.account_id(), genesis.account_id(), 1000);
  Builder hb{hard, rng, 4};  // solves only 4 bits
  LatticeBlock send = hb.send(genesis, alice.account_id(), 10);
  EXPECT_EQ(hard.process(send).error().code, "insufficient-work");
}

TEST_F(LedgerTest, OverspendRejected) {
  LatticeBlock send = b.send(genesis, alice.account_id(), 100);
  send.balance = 2'000'000;  // "negative" send: balance increases
  send = b.finish(std::move(send), genesis);
  EXPECT_EQ(ledger.process(send).error().code, "bad-balance");
}

TEST_F(LedgerTest, ReceiveWrongAmountRejected) {
  LatticeBlock send = b.send(genesis, alice.account_id(), 100);
  ASSERT_TRUE(ledger.process(send).ok());
  LatticeBlock open = b.open(alice, send.hash(), 150, alice.account_id());
  EXPECT_EQ(ledger.process(open).error().code, "bad-balance");
}

TEST_F(LedgerTest, ReceiveWrongDestinationRejected) {
  LatticeBlock send = b.send(genesis, alice.account_id(), 100);
  ASSERT_TRUE(ledger.process(send).ok());
  // Bob tries to claim alice's pending send.
  LatticeBlock theft = b.open(bob, send.hash(), 100, bob.account_id());
  EXPECT_EQ(ledger.process(theft).error().code, "wrong-destination");
}

TEST_F(LedgerTest, DoubleReceiveRejected) {
  fund(alice, 100);
  LatticeBlock send = b.send(genesis, alice.account_id(), 50);
  ASSERT_TRUE(ledger.process(send).ok());
  LatticeBlock r1 = b.receive(alice, send.hash(), 50);
  ASSERT_TRUE(ledger.process(r1).ok());
  LatticeBlock r2 = b.receive(alice, send.hash(), 50);
  EXPECT_EQ(ledger.process(r2).error().code, "already-claimed");
}

TEST_F(LedgerTest, GapPreviousReported) {
  // A block referencing an unknown predecessor (paper §IV-B: the network
  // ignores successors of a missing block).
  fund(alice, 100);
  LatticeBlock send = b.send(alice, bob.account_id(), 10);
  send.previous = crypto::Sha256::digest(as_bytes("unknown"));
  send = b.finish(std::move(send), alice);
  EXPECT_EQ(ledger.process(send).error().code, "gap-previous");
}

TEST_F(LedgerTest, GapSourceReported) {
  LatticeBlock open = b.open(alice, crypto::Sha256::digest(as_bytes("nope")),
                             10, alice.account_id());
  EXPECT_EQ(ledger.process(open).error().code, "gap-source");
}

TEST_F(LedgerTest, ForkDetected) {
  // Two sends claim the same predecessor (paper §IV-B: only possible as a
  // result of a malicious attack or bad programming).
  LatticeBlock s1 = b.send(genesis, alice.account_id(), 100);
  LatticeBlock s2 = b.send(genesis, bob.account_id(), 200);  // same previous
  ASSERT_TRUE(ledger.process(s1).ok());
  auto st = ledger.process(s2);
  EXPECT_EQ(st.error().code, "fork");

  // The fork root resolves to the applied block.
  Root root{genesis.account_id(), s1.previous};
  auto occupant = ledger.block_at_root(root);
  ASSERT_TRUE(occupant.has_value());
  EXPECT_EQ(occupant->hash(), s1.hash());
}

TEST_F(LedgerTest, RollbackSimpleSend) {
  LatticeBlock send = b.send(genesis, alice.account_id(), 100);
  ASSERT_TRUE(ledger.process(send).ok());
  auto removed = ledger.rollback(send.hash());
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed->size(), 1u);
  EXPECT_EQ(ledger.balance_of(genesis.account_id()), 1'000'000u);
  EXPECT_TRUE(ledger.pending().empty());
  EXPECT_EQ(ledger.weight_of(genesis.account_id()), 1'000'000u);
  EXPECT_TRUE(ledger.conserves_value());
}

TEST_F(LedgerTest, RollbackReceiveRestoresPending) {
  fund(alice, 100);
  LatticeBlock send = b.send(genesis, alice.account_id(), 50);
  ASSERT_TRUE(ledger.process(send).ok());
  LatticeBlock recv = b.receive(alice, send.hash(), 50);
  ASSERT_TRUE(ledger.process(recv).ok());

  auto removed = ledger.rollback(recv.hash());
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(ledger.balance_of(alice.account_id()), 100u);
  EXPECT_EQ(ledger.pending().size(), 1u);
  EXPECT_EQ(ledger.total_pending(), 50u);
  EXPECT_TRUE(ledger.conserves_value());
}

TEST_F(LedgerTest, RollbackCascadesThroughClaims) {
  // Roll back genesis' send after alice already opened with it: the open
  // (a dependent block in another chain) must unwind first.
  LatticeBlock send = b.send(genesis, alice.account_id(), 100);
  ASSERT_TRUE(ledger.process(send).ok());
  LatticeBlock open = b.open(alice, send.hash(), 100, alice.account_id());
  ASSERT_TRUE(ledger.process(open).ok());

  auto removed = ledger.rollback(send.hash());
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed->size(), 2u);  // open + send
  EXPECT_EQ(ledger.account(alice.account_id()), nullptr);
  EXPECT_EQ(ledger.balance_of(genesis.account_id()), 1'000'000u);
  EXPECT_TRUE(ledger.pending().empty());
  EXPECT_TRUE(ledger.conserves_value());
}

TEST_F(LedgerTest, RollbackCascadesDeep) {
  // genesis -> alice -> bob: rolling back the first send unwinds all.
  LatticeBlock s1 = b.send(genesis, alice.account_id(), 100);
  ASSERT_TRUE(ledger.process(s1).ok());
  LatticeBlock open_a = b.open(alice, s1.hash(), 100, alice.account_id());
  ASSERT_TRUE(ledger.process(open_a).ok());
  LatticeBlock s2 = b.send(alice, bob.account_id(), 40);
  ASSERT_TRUE(ledger.process(s2).ok());
  LatticeBlock open_b = b.open(bob, s2.hash(), 40, bob.account_id());
  ASSERT_TRUE(ledger.process(open_b).ok());

  auto removed = ledger.rollback(s1.hash());
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed->size(), 4u);
  EXPECT_EQ(ledger.account_count(), 1u);  // only genesis remains
  EXPECT_EQ(ledger.balance_of(genesis.account_id()), 1'000'000u);
  EXPECT_TRUE(ledger.conserves_value());
}

TEST_F(LedgerTest, CementPreventsRollback) {
  LatticeBlock send = b.send(genesis, alice.account_id(), 100);
  ASSERT_TRUE(ledger.process(send).ok());
  ASSERT_TRUE(ledger.cement(send.hash()).ok());
  EXPECT_TRUE(ledger.is_cemented(send.hash()));
  auto res = ledger.rollback(send.hash());
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().code, "cemented");
}

TEST_F(LedgerTest, CementCoversAncestors) {
  LatticeBlock s1 = b.send(genesis, alice.account_id(), 10);
  ASSERT_TRUE(ledger.process(s1).ok());
  LatticeBlock s2 = b.send(genesis, bob.account_id(), 10);
  ASSERT_TRUE(ledger.process(s2).ok());
  ASSERT_TRUE(ledger.cement(s2.hash()).ok());
  EXPECT_TRUE(ledger.is_cemented(s1.hash()));  // ancestor implicitly
}

TEST_F(LedgerTest, PruneKeepsHeadsAndBalances) {
  // Build some history, cement it, prune (§V-B): balances survive, old
  // blocks vanish.
  fund(alice, 100);
  for (int i = 0; i < 5; ++i) {
    LatticeBlock send = b.send(genesis, alice.account_id(), 10);
    ASSERT_TRUE(ledger.process(send).ok());
    LatticeBlock recv = b.receive(alice, send.hash(), 10);
    ASSERT_TRUE(ledger.process(recv).ok());
  }
  // Cement everything at head.
  ASSERT_TRUE(
      ledger.cement(ledger.account(genesis.account_id())->head().hash()).ok());
  ASSERT_TRUE(
      ledger.cement(ledger.account(alice.account_id())->head().hash()).ok());

  const std::uint64_t blocks_before = ledger.block_count();
  const auto storage_before = ledger.storage();
  const std::uint64_t reclaimed = ledger.prune_history();
  EXPECT_GT(reclaimed, 0u);
  EXPECT_LT(ledger.block_count(), blocks_before);
  EXPECT_LT(ledger.storage().blocks, storage_before.blocks);

  // The head block's balance field carries the account state (§V-B).
  EXPECT_EQ(ledger.balance_of(alice.account_id()), 150u);
  EXPECT_EQ(ledger.balance_of(genesis.account_id()), 1'000'000u - 150u);
  EXPECT_TRUE(ledger.conserves_value());

  // New blocks still append after pruning.
  LatticeBlock more = b.send(alice, genesis.account_id(), 5);
  EXPECT_TRUE(ledger.process(more).ok());
}

TEST_F(LedgerTest, PruneWithoutCementKeepsEverything) {
  fund(alice, 100);
  LatticeBlock send = b.send(genesis, alice.account_id(), 10);
  ASSERT_TRUE(ledger.process(send).ok());
  // Nothing cemented beyond genesis: nothing prunable except genesis tail.
  const std::uint64_t blocks = ledger.block_count();
  ledger.prune_history();
  EXPECT_EQ(ledger.block_count(), blocks);
}

TEST_F(LedgerTest, FindBlockAndHeads) {
  LatticeBlock send = b.send(genesis, alice.account_id(), 100);
  ASSERT_TRUE(ledger.process(send).ok());
  auto found = ledger.find_block(send.hash());
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->balance, 999'900u);
  EXPECT_EQ(*ledger.head_of(genesis.account_id()), send.hash());
  EXPECT_FALSE(ledger.head_of(alice.account_id()).has_value());
}

}  // namespace
}  // namespace dlt::lattice
