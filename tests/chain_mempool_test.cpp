// Mempools: fee priority, conflicts, nonce queues, reorg reinjection
// (paper §IV-A, §VI).
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "chain/mempool.hpp"
#include "chain_test_util.hpp"

namespace dlt::chain {
namespace {

using testutil::make_keys;

class UtxoMempoolTest : public ::testing::Test {
 protected:
  UtxoMempoolTest() : keys(make_keys(4)), rng(1) {
    UtxoTransaction mint;
    for (int i = 0; i < 4; ++i)
      mint.outputs.push_back(TxOut{100'000, keys[static_cast<std::size_t>(i)].account_id()});
    mint_id = mint.id();
    utxo.apply_transaction(mint);
  }

  UtxoTransaction spend(std::size_t who, Amount out_value) {
    UtxoTransaction tx;
    tx.inputs.push_back(
        TxIn{Outpoint{mint_id, static_cast<std::uint32_t>(who)}, 0, {}});
    tx.outputs.push_back(TxOut{out_value, keys[(who + 1) % 4].account_id()});
    tx.sign_all({keys[who]}, rng);
    return tx;
  }

  std::vector<crypto::KeyPair> keys;
  Rng rng;
  UtxoSet utxo;
  TxId mint_id;
  UtxoMempool pool;
};

TEST_F(UtxoMempoolTest, AddAndSelect) {
  auto tx = spend(0, 99'000);  // fee 1000
  ASSERT_TRUE(pool.add(tx, utxo, 1).ok());
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_TRUE(pool.contains(tx.id()));
  auto selected = pool.select(1'000'000);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0].id(), tx.id());
}

TEST_F(UtxoMempoolTest, RejectsInvalid) {
  auto tx = spend(0, 200'000);  // inflation
  EXPECT_FALSE(pool.add(tx, utxo, 1).ok());
  EXPECT_EQ(pool.size(), 0u);
}

TEST_F(UtxoMempoolTest, RejectsPoolConflict) {
  auto tx1 = spend(0, 99'000);
  auto tx2 = spend(0, 98'000);  // same input, different tx
  ASSERT_TRUE(pool.add(tx1, utxo, 1).ok());
  auto st = pool.add(tx2, utxo, 1);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "mempool-conflict");
}

TEST_F(UtxoMempoolTest, SelectionPrefersFeeRate) {
  auto cheap = spend(0, 99'900);   // fee 100
  auto rich = spend(1, 90'000);    // fee 10000
  auto mid = spend(2, 99'000);     // fee 1000
  ASSERT_TRUE(pool.add(cheap, utxo, 1).ok());
  ASSERT_TRUE(pool.add(rich, utxo, 1).ok());
  ASSERT_TRUE(pool.add(mid, utxo, 1).ok());

  // Budget for only one transaction: the richest fee must win.
  auto selected = pool.select(cheap.serialized_size());
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0].id(), rich.id());
}

TEST_F(UtxoMempoolTest, ByteBudgetRespected) {
  for (std::size_t i = 0; i < 4; ++i)
    ASSERT_TRUE(pool.add(spend(i, 99'000), utxo, 1).ok());
  const std::size_t one = spend(0, 99'000).serialized_size();
  auto selected = pool.select(one * 2);
  EXPECT_EQ(selected.size(), 2u);
}

TEST_F(UtxoMempoolTest, RemoveIncludedDropsConflicts) {
  auto tx1 = spend(0, 99'000);
  ASSERT_TRUE(pool.add(tx1, utxo, 1).ok());
  // A different tx spending the same coin got mined instead.
  auto rival = spend(0, 95'000);
  pool.remove_included({rival});
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.pending_bytes(), 0u);
}

TEST_F(UtxoMempoolTest, ReinjectAfterDisconnect) {
  auto tx = spend(0, 99'000);
  // Simulate: tx was mined (not in pool), then its block was orphaned.
  pool.reinject({tx}, utxo, 1);
  EXPECT_TRUE(pool.contains(tx.id()));
  // Coinbases never come back.
  auto cb = UtxoTransaction::coinbase(keys[0].account_id(), 50, 3);
  pool.reinject({cb}, utxo, 3);
  EXPECT_FALSE(pool.contains(cb.id()));
}

// --- fee-market eviction edge cases (ISSUE 10) --------------------------

TEST_F(UtxoMempoolTest, ExactCapacityBoundaryAdmitsWithoutEviction) {
  std::vector<TxId> evicted;
  pool.set_evict_handler(
      [&](const UtxoTransaction& tx) { evicted.push_back(tx.id()); });
  const auto t0 = spend(0, 99'900);  // fee 100, the eviction floor
  const auto t1 = spend(1, 99'800);  // fee 200
  const std::uint64_t sz = t0.serialized_size();
  ASSERT_EQ(sz, t1.serialized_size());
  pool.set_capacity(2 * sz);

  // Filling the pool to EXACTLY its byte capacity is not an overflow.
  ASSERT_TRUE(pool.add(t0, utxo, 1).ok());
  ASSERT_TRUE(pool.add(t1, utxo, 1).ok());
  EXPECT_EQ(pool.pending_bytes(), pool.capacity());
  EXPECT_TRUE(evicted.empty());

  // One byte over: exactly one victim — the worst fee rate — makes room.
  const auto rich = spend(2, 90'000);  // fee 10000
  ASSERT_TRUE(pool.add(rich, utxo, 1).ok());
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], t0.id());
  EXPECT_FALSE(pool.contains(t0.id()));
  EXPECT_TRUE(pool.contains(t1.id()));
  EXPECT_TRUE(pool.contains(rich.id()));
  EXPECT_EQ(pool.pending_bytes(), pool.capacity());
}

TEST_F(UtxoMempoolTest, FeeRateTieFifoPreservedAcrossEvictions) {
  std::vector<TxId> evicted;
  pool.set_evict_handler(
      [&](const UtxoTransaction& tx) { evicted.push_back(tx.id()); });
  const auto t0 = spend(0, 99'500);  // identical fee 500 → identical rate
  const auto t1 = spend(1, 99'500);
  const auto t2 = spend(2, 99'500);
  const std::uint64_t sz = t0.serialized_size();
  pool.set_capacity(3 * sz);
  ASSERT_TRUE(pool.add(t0, utxo, 1).ok());
  ASSERT_TRUE(pool.add(t1, utxo, 1).ok());
  ASSERT_TRUE(pool.add(t2, utxo, 1).ok());

  // Overflow inside a rate tie evicts the NEWEST of the tie only.
  const auto rich = spend(3, 90'000);
  ASSERT_TRUE(pool.add(rich, utxo, 1).ok());
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], t2.id());

  // The surviving tie keeps its original FIFO order under selection.
  const auto got = pool.select(1 << 20);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].id(), rich.id());
  EXPECT_EQ(got[1].id(), t0.id());
  EXPECT_EQ(got[2].id(), t1.id());
}

TEST_F(UtxoMempoolTest, ReadmissionAfterEvictionGetsFreshSeq) {
  const auto t0 = spend(0, 99'500);  // fee 500
  const auto t1 = spend(1, 99'500);  // fee 500, same rate as t0
  const std::uint64_t sz = t0.serialized_size();
  pool.set_capacity(2 * sz);
  ASSERT_TRUE(pool.add(t0, utxo, 1).ok());
  ASSERT_TRUE(pool.add(t1, utxo, 1).ok());

  // Evict t1 (newest of the rate tie) with a richer arrival.
  const auto rich = spend(2, 90'000);
  ASSERT_TRUE(pool.add(rich, utxo, 1).ok());
  ASSERT_FALSE(pool.contains(t1.id()));

  // Make room, admit a fresh same-rate tx, then re-admit t1. If t1 kept
  // its original admission sequence it would outrank t2 in the FIFO tie;
  // a fresh seq puts it at the back of the tie instead.
  pool.set_capacity(4 * sz);
  const auto t2 = spend(3, 99'500);
  ASSERT_TRUE(pool.add(t2, utxo, 1).ok());
  ASSERT_TRUE(pool.add(t1, utxo, 1).ok());
  const auto got = pool.select(1 << 20);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].id(), rich.id());
  EXPECT_EQ(got[1].id(), t0.id());
  EXPECT_EQ(got[2].id(), t2.id());
  EXPECT_EQ(got[3].id(), t1.id());  // re-admission is a NEW arrival
}

TEST_F(UtxoMempoolTest, CascadeEvictionDropsChainedChild) {
  std::vector<TxId> evicted;
  pool.set_evict_handler(
      [&](const UtxoTransaction& tx) { evicted.push_back(tx.id()); });

  // parent (fee 200, the pool's worst rate) pays keys[1]; child spends
  // the parent's unconfirmed output. The UTXO view sees the parent (the
  // cluster's mempool-aware view) while the pool still holds it.
  const auto parent = spend(0, 99'800);
  ASSERT_TRUE(pool.add(parent, utxo, 1).ok());
  utxo.apply_transaction(parent);
  UtxoTransaction child;
  child.inputs.push_back(TxIn{Outpoint{parent.id(), 0}, 0, {}});
  child.outputs.push_back(TxOut{99'000, keys[2].account_id()});
  child.sign_all({keys[1]}, rng);
  ASSERT_TRUE(pool.add(child, utxo, 1).ok());

  pool.set_capacity(pool.pending_bytes());  // pool exactly full
  const auto rich = spend(2, 90'000);
  ASSERT_TRUE(pool.add(rich, utxo, 1).ok());

  // Evicting the parent took its pooled descendant with it — children
  // first, so no dangling claim ever exists.
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(evicted[0], child.id());
  EXPECT_EQ(evicted[1], parent.id());
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_TRUE(pool.contains(rich.id()));
  EXPECT_EQ(pool.pending_bytes(), rich.serialized_size());
}

class AccountMempoolTest : public ::testing::Test {
 protected:
  AccountMempoolTest() : keys(make_keys(3)), rng(2) {
    state = WorldState{}
                .credit(keys[0].account_id(), 10'000'000)
                .credit(keys[1].account_id(), 10'000'000);
  }

  AccountTransaction tx_with(std::size_t who, std::uint64_t nonce,
                             Amount gas_price) {
    AccountTransaction tx;
    tx.to = keys[2].account_id();
    tx.value = 100;
    tx.nonce = nonce;
    tx.gas_limit = 21'000;
    tx.gas_price = gas_price;
    tx.sign(keys[who], rng);
    return tx;
  }

  std::vector<crypto::KeyPair> keys;
  Rng rng;
  WorldState state;
  AccountMempool pool;
};

TEST_F(AccountMempoolTest, NonceOrderEnforced) {
  ASSERT_TRUE(pool.add(tx_with(0, 0, 1), state).ok());
  ASSERT_TRUE(pool.add(tx_with(0, 1, 1), state).ok());
  auto gap = pool.add(tx_with(0, 5, 1), state);
  ASSERT_FALSE(gap.ok());
  EXPECT_EQ(gap.error().code, "nonce-gap");
  auto stale = pool.add(tx_with(0, 0, 2), state);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.error().code, "duplicate-nonce");
}

TEST_F(AccountMempoolTest, SelectRespectsGasLimitAndPrice) {
  ASSERT_TRUE(pool.add(tx_with(0, 0, 5), state).ok());
  ASSERT_TRUE(pool.add(tx_with(0, 1, 9), state).ok());
  ASSERT_TRUE(pool.add(tx_with(1, 0, 7), state).ok());

  // Budget for two 21k txs.
  auto selected = pool.select(42'000, state);
  ASSERT_EQ(selected.size(), 2u);
  // Sender-0 nonce order must hold even though its second tx pays more.
  EXPECT_EQ(selected[0].gas_price, 7u);  // key1's tx (highest executable)
  EXPECT_EQ(selected[1].gas_price, 5u);  // key0 nonce 0 before nonce 1
}

TEST_F(AccountMempoolTest, SelectAllWhenRoomy) {
  ASSERT_TRUE(pool.add(tx_with(0, 0, 1), state).ok());
  ASSERT_TRUE(pool.add(tx_with(0, 1, 1), state).ok());
  ASSERT_TRUE(pool.add(tx_with(1, 0, 2), state).ok());
  auto selected = pool.select(0 /* unlimited */, state);
  EXPECT_EQ(selected.size(), 3u);
  EXPECT_EQ(pool.pending_gas(), 3 * 21'000u);
}

TEST_F(AccountMempoolTest, RemoveIncludedAdvancesQueue) {
  auto t0 = tx_with(0, 0, 1);
  auto t1 = tx_with(0, 1, 1);
  ASSERT_TRUE(pool.add(t0, state).ok());
  ASSERT_TRUE(pool.add(t1, state).ok());
  pool.remove_included({t0});
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_TRUE(pool.contains(t1.id()));
}

TEST_F(AccountMempoolTest, RevalidateDropsStaleNonces) {
  auto t0 = tx_with(0, 0, 1);
  ASSERT_TRUE(pool.add(t0, state).ok());
  // The chain advanced: sender nonce is now 1.
  WorldState advanced = state.with_account(
      keys[0].account_id(), AccountState{10'000'000, 1, 0});
  pool.revalidate(advanced);
  EXPECT_EQ(pool.size(), 0u);
}

TEST_F(AccountMempoolTest, ReinjectSortsByNonce) {
  auto t0 = tx_with(0, 0, 1);
  auto t1 = tx_with(0, 1, 1);
  // Deliberately out of order.
  pool.reinject({t1, t0}, state);
  EXPECT_EQ(pool.size(), 2u);
}

TEST_F(AccountMempoolTest, BadSignatureRejected) {
  auto tx = tx_with(0, 0, 1);
  tx.value = 999;
  tx.invalidate_digests();  // direct field writes bypass the digest memo
  EXPECT_FALSE(pool.add(tx, state).ok());
}

// --- differential: incremental indexes vs the old full-scan greedy ------

class MempoolDifferentialTest : public ::testing::Test {
 protected:
  MempoolDifferentialTest() : keys(make_keys(12)), rng(7) {
    UtxoTransaction mint;
    for (std::size_t i = 0; i < keys.size(); ++i)
      mint.outputs.push_back(TxOut{1'000'000, keys[i].account_id()});
    mint_id = mint.id();
    utxo.apply_transaction(mint);
  }

  UtxoTransaction spend(std::size_t who, Amount out_value) {
    UtxoTransaction tx;
    tx.inputs.push_back(
        TxIn{Outpoint{mint_id, static_cast<std::uint32_t>(who)}, 0, {}});
    tx.outputs.push_back(TxOut{out_value, keys[(who + 1) % keys.size()].account_id()});
    tx.sign_all({keys[who]}, rng);
    return tx;
  }

  // The pre-index selection algorithm, reimplemented verbatim: snapshot
  // the pool, sort by fee rate descending, greedy-pack skipping txs that
  // bust the byte budget.
  static std::vector<UtxoTransaction> legacy_select(
      const std::vector<std::pair<UtxoTransaction, double>>& entries,
      std::uint64_t max_bytes) {
    auto sorted = entries;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const auto& a, const auto& b) {
                       return a.second > b.second;
                     });
    std::vector<UtxoTransaction> out;
    std::uint64_t used = 0;
    for (const auto& [tx, rate] : sorted) {
      const std::uint64_t sz = tx.serialized_size();
      if (used + sz > max_bytes) continue;
      used += sz;
      out.push_back(tx);
    }
    return out;
  }

  std::vector<crypto::KeyPair> keys;
  Rng rng;
  UtxoSet utxo;
  TxId mint_id;
};

TEST_F(MempoolDifferentialTest, UtxoSelectMatchesLegacyGreedy) {
  // Distinct fee rates make the legacy order total, so the incremental
  // index must reproduce it transaction for transaction at every budget.
  UtxoMempool pool;
  std::vector<std::pair<UtxoTransaction, double>> reference;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const Amount fee = 100 * (static_cast<Amount>(i * 7 % 12) + 1);
    auto tx = spend(i, 1'000'000 - fee);
    ASSERT_TRUE(pool.add(tx, utxo, 1).ok());
    reference.emplace_back(
        tx, static_cast<double>(fee) /
                static_cast<double>(tx.serialized_size()));
  }
  const std::uint64_t one = reference[0].first.serialized_size();
  for (std::uint64_t budget :
       {one / 2, one, one * 3, one * 7, one * 12, one * 100}) {
    const auto got = pool.select(budget);
    const auto want = legacy_select(reference, budget);
    ASSERT_EQ(got.size(), want.size()) << "budget " << budget;
    for (std::size_t i = 0; i < got.size(); ++i)
      EXPECT_EQ(got[i].id(), want[i].id()) << "budget " << budget << " pos " << i;
  }
}

TEST_F(MempoolDifferentialTest, UtxoEqualRatesSelectFifo) {
  // Equal fee rates: the index breaks ties by admission order (the old
  // sort left this to container iteration order). FIFO is the documented
  // canonical behavior.
  UtxoMempool pool;
  std::vector<TxId> admitted;
  for (std::size_t i = 0; i < 6; ++i) {
    auto tx = spend(i, 1'000'000 - 500);  // identical fee, identical size
    ASSERT_TRUE(pool.add(tx, utxo, 1).ok());
    admitted.push_back(tx.id());
  }
  const auto got = pool.select(1 << 20);
  ASSERT_EQ(got.size(), admitted.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got[i].id(), admitted[i]) << i;
}

TEST_F(MempoolDifferentialTest, UtxoSelectTracksRemovals) {
  // The incremental index must stay consistent through remove_included.
  UtxoMempool pool;
  std::vector<std::pair<UtxoTransaction, double>> reference;
  for (std::size_t i = 0; i < 8; ++i) {
    const Amount fee = 100 * (static_cast<Amount>(i) + 1);
    auto tx = spend(i, 1'000'000 - fee);
    ASSERT_TRUE(pool.add(tx, utxo, 1).ok());
    reference.emplace_back(
        tx, static_cast<double>(fee) /
                static_cast<double>(tx.serialized_size()));
  }
  // Mine the two richest.
  pool.remove_included({reference[7].first, reference[6].first});
  reference.erase(reference.begin() + 6, reference.end());
  const auto got = pool.select(1 << 20);
  const auto want = legacy_select(reference, 1 << 20);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got[i].id(), want[i].id()) << i;
}

TEST_F(AccountMempoolTest, SelectMatchesReferenceScan) {
  // Heap-based pick vs the old O(senders) scan: with nonce chains per
  // sender and distinct gas prices the order is total; outputs must agree
  // at every gas budget.
  ASSERT_TRUE(pool.add(tx_with(0, 0, 50), state).ok());
  ASSERT_TRUE(pool.add(tx_with(0, 1, 90), state).ok());
  ASSERT_TRUE(pool.add(tx_with(0, 2, 10), state).ok());
  ASSERT_TRUE(pool.add(tx_with(1, 0, 70), state).ok());
  ASSERT_TRUE(pool.add(tx_with(1, 1, 30), state).ok());

  // Reference: repeatedly scan sender heads, take the highest-priced head
  // that fits the remaining gas.
  auto reference = [&](std::uint64_t gas_limit) {
    struct Head { std::size_t who; std::vector<AccountTransaction> q; std::size_t i = 0; };
    std::vector<Head> heads;
    heads.push_back({0, {tx_with(0, 0, 50), tx_with(0, 1, 90), tx_with(0, 2, 10)}});
    heads.push_back({1, {tx_with(1, 0, 70), tx_with(1, 1, 30)}});
    std::vector<AccountTransaction> out;
    std::uint64_t used = 0;
    for (;;) {
      Head* best = nullptr;
      for (auto& h : heads) {
        if (h.i >= h.q.size()) continue;
        if (used + h.q[h.i].gas_limit > gas_limit) continue;
        if (!best || h.q[h.i].gas_price > best->q[best->i].gas_price)
          best = &h;
      }
      if (!best) break;
      out.push_back(best->q[best->i]);
      used += best->q[best->i].gas_limit;
      ++best->i;
    }
    return out;
  };

  for (std::uint64_t budget : {21'000ull, 42'000ull, 63'000ull, 84'000ull,
                               105'000ull, 1'000'000ull}) {
    const auto got = pool.select(budget, state);
    const auto want = reference(budget);
    ASSERT_EQ(got.size(), want.size()) << "budget " << budget;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].nonce, want[i].nonce) << "budget " << budget;
      EXPECT_EQ(got[i].gas_price, want[i].gas_price) << "budget " << budget;
    }
  }
}

}  // namespace
}  // namespace dlt::chain
