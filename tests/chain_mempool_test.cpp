// Mempools: fee priority, conflicts, nonce queues, reorg reinjection
// (paper §IV-A, §VI).
#include <gtest/gtest.h>

#include "chain/mempool.hpp"
#include "chain_test_util.hpp"

namespace dlt::chain {
namespace {

using testutil::make_keys;

class UtxoMempoolTest : public ::testing::Test {
 protected:
  UtxoMempoolTest() : keys(make_keys(4)), rng(1) {
    UtxoTransaction mint;
    for (int i = 0; i < 4; ++i)
      mint.outputs.push_back(TxOut{100'000, keys[static_cast<std::size_t>(i)].account_id()});
    mint_id = mint.id();
    utxo.apply_transaction(mint);
  }

  UtxoTransaction spend(std::size_t who, Amount out_value) {
    UtxoTransaction tx;
    tx.inputs.push_back(
        TxIn{Outpoint{mint_id, static_cast<std::uint32_t>(who)}, 0, {}});
    tx.outputs.push_back(TxOut{out_value, keys[(who + 1) % 4].account_id()});
    tx.sign_all({keys[who]}, rng);
    return tx;
  }

  std::vector<crypto::KeyPair> keys;
  Rng rng;
  UtxoSet utxo;
  TxId mint_id;
  UtxoMempool pool;
};

TEST_F(UtxoMempoolTest, AddAndSelect) {
  auto tx = spend(0, 99'000);  // fee 1000
  ASSERT_TRUE(pool.add(tx, utxo, 1).ok());
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_TRUE(pool.contains(tx.id()));
  auto selected = pool.select(1'000'000);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0].id(), tx.id());
}

TEST_F(UtxoMempoolTest, RejectsInvalid) {
  auto tx = spend(0, 200'000);  // inflation
  EXPECT_FALSE(pool.add(tx, utxo, 1).ok());
  EXPECT_EQ(pool.size(), 0u);
}

TEST_F(UtxoMempoolTest, RejectsPoolConflict) {
  auto tx1 = spend(0, 99'000);
  auto tx2 = spend(0, 98'000);  // same input, different tx
  ASSERT_TRUE(pool.add(tx1, utxo, 1).ok());
  auto st = pool.add(tx2, utxo, 1);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "mempool-conflict");
}

TEST_F(UtxoMempoolTest, SelectionPrefersFeeRate) {
  auto cheap = spend(0, 99'900);   // fee 100
  auto rich = spend(1, 90'000);    // fee 10000
  auto mid = spend(2, 99'000);     // fee 1000
  ASSERT_TRUE(pool.add(cheap, utxo, 1).ok());
  ASSERT_TRUE(pool.add(rich, utxo, 1).ok());
  ASSERT_TRUE(pool.add(mid, utxo, 1).ok());

  // Budget for only one transaction: the richest fee must win.
  auto selected = pool.select(cheap.serialized_size());
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0].id(), rich.id());
}

TEST_F(UtxoMempoolTest, ByteBudgetRespected) {
  for (std::size_t i = 0; i < 4; ++i)
    ASSERT_TRUE(pool.add(spend(i, 99'000), utxo, 1).ok());
  const std::size_t one = spend(0, 99'000).serialized_size();
  auto selected = pool.select(one * 2);
  EXPECT_EQ(selected.size(), 2u);
}

TEST_F(UtxoMempoolTest, RemoveIncludedDropsConflicts) {
  auto tx1 = spend(0, 99'000);
  ASSERT_TRUE(pool.add(tx1, utxo, 1).ok());
  // A different tx spending the same coin got mined instead.
  auto rival = spend(0, 95'000);
  pool.remove_included({rival});
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.pending_bytes(), 0u);
}

TEST_F(UtxoMempoolTest, ReinjectAfterDisconnect) {
  auto tx = spend(0, 99'000);
  // Simulate: tx was mined (not in pool), then its block was orphaned.
  pool.reinject({tx}, utxo, 1);
  EXPECT_TRUE(pool.contains(tx.id()));
  // Coinbases never come back.
  auto cb = UtxoTransaction::coinbase(keys[0].account_id(), 50, 3);
  pool.reinject({cb}, utxo, 3);
  EXPECT_FALSE(pool.contains(cb.id()));
}

class AccountMempoolTest : public ::testing::Test {
 protected:
  AccountMempoolTest() : keys(make_keys(3)), rng(2) {
    state = WorldState{}
                .credit(keys[0].account_id(), 10'000'000)
                .credit(keys[1].account_id(), 10'000'000);
  }

  AccountTransaction tx_with(std::size_t who, std::uint64_t nonce,
                             Amount gas_price) {
    AccountTransaction tx;
    tx.to = keys[2].account_id();
    tx.value = 100;
    tx.nonce = nonce;
    tx.gas_limit = 21'000;
    tx.gas_price = gas_price;
    tx.sign(keys[who], rng);
    return tx;
  }

  std::vector<crypto::KeyPair> keys;
  Rng rng;
  WorldState state;
  AccountMempool pool;
};

TEST_F(AccountMempoolTest, NonceOrderEnforced) {
  ASSERT_TRUE(pool.add(tx_with(0, 0, 1), state).ok());
  ASSERT_TRUE(pool.add(tx_with(0, 1, 1), state).ok());
  auto gap = pool.add(tx_with(0, 5, 1), state);
  ASSERT_FALSE(gap.ok());
  EXPECT_EQ(gap.error().code, "nonce-gap");
  auto stale = pool.add(tx_with(0, 0, 2), state);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.error().code, "duplicate-nonce");
}

TEST_F(AccountMempoolTest, SelectRespectsGasLimitAndPrice) {
  ASSERT_TRUE(pool.add(tx_with(0, 0, 5), state).ok());
  ASSERT_TRUE(pool.add(tx_with(0, 1, 9), state).ok());
  ASSERT_TRUE(pool.add(tx_with(1, 0, 7), state).ok());

  // Budget for two 21k txs.
  auto selected = pool.select(42'000, state);
  ASSERT_EQ(selected.size(), 2u);
  // Sender-0 nonce order must hold even though its second tx pays more.
  EXPECT_EQ(selected[0].gas_price, 7u);  // key1's tx (highest executable)
  EXPECT_EQ(selected[1].gas_price, 5u);  // key0 nonce 0 before nonce 1
}

TEST_F(AccountMempoolTest, SelectAllWhenRoomy) {
  ASSERT_TRUE(pool.add(tx_with(0, 0, 1), state).ok());
  ASSERT_TRUE(pool.add(tx_with(0, 1, 1), state).ok());
  ASSERT_TRUE(pool.add(tx_with(1, 0, 2), state).ok());
  auto selected = pool.select(0 /* unlimited */, state);
  EXPECT_EQ(selected.size(), 3u);
  EXPECT_EQ(pool.pending_gas(), 3 * 21'000u);
}

TEST_F(AccountMempoolTest, RemoveIncludedAdvancesQueue) {
  auto t0 = tx_with(0, 0, 1);
  auto t1 = tx_with(0, 1, 1);
  ASSERT_TRUE(pool.add(t0, state).ok());
  ASSERT_TRUE(pool.add(t1, state).ok());
  pool.remove_included({t0});
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_TRUE(pool.contains(t1.id()));
}

TEST_F(AccountMempoolTest, RevalidateDropsStaleNonces) {
  auto t0 = tx_with(0, 0, 1);
  ASSERT_TRUE(pool.add(t0, state).ok());
  // The chain advanced: sender nonce is now 1.
  WorldState advanced = state.with_account(
      keys[0].account_id(), AccountState{10'000'000, 1, 0});
  pool.revalidate(advanced);
  EXPECT_EQ(pool.size(), 0u);
}

TEST_F(AccountMempoolTest, ReinjectSortsByNonce) {
  auto t0 = tx_with(0, 0, 1);
  auto t1 = tx_with(0, 1, 1);
  // Deliberately out of order.
  pool.reinject({t1, t0}, state);
  EXPECT_EQ(pool.size(), 2u);
}

TEST_F(AccountMempoolTest, BadSignatureRejected) {
  auto tx = tx_with(0, 0, 1);
  tx.value = 999;
  tx.invalidate_digests();  // direct field writes bypass the digest memo
  EXPECT_FALSE(pool.add(tx, state).ok());
}

}  // namespace
}  // namespace dlt::chain
