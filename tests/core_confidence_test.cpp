// Nakamoto confirmation confidence (paper §IV-A): the analytic numbers
// behind "six for Bitcoin".
#include <gtest/gtest.h>

#include "core/confidence.hpp"

namespace dlt::core {
namespace {

TEST(Confidence, CatchUpBasics) {
  EXPECT_DOUBLE_EQ(catch_up_probability(0.0, 5), 0.0);
  EXPECT_DOUBLE_EQ(catch_up_probability(0.5, 5), 1.0);
  EXPECT_DOUBLE_EQ(catch_up_probability(0.6, 3), 1.0);
  // q=0.1: (1/9)^z
  EXPECT_NEAR(catch_up_probability(0.1, 1), 1.0 / 9.0, 1e-12);
  EXPECT_NEAR(catch_up_probability(0.1, 2), 1.0 / 81.0, 1e-12);
}

TEST(Confidence, ReversalMatchesNakamotoTable) {
  // Values from the Bitcoin whitepaper, section 11 (q = 0.1):
  //   z=0 -> 1.0, z=1 -> 0.2045873, z=2 -> 0.0509779, z=3 -> 0.0131722,
  //   z=4 -> 0.0034552, z=5 -> 0.0009137, z=6 -> 0.0002428.
  EXPECT_NEAR(reversal_probability(0.1, 0), 1.0, 1e-7);
  EXPECT_NEAR(reversal_probability(0.1, 1), 0.2045873, 1e-6);
  EXPECT_NEAR(reversal_probability(0.1, 2), 0.0509779, 1e-6);
  EXPECT_NEAR(reversal_probability(0.1, 3), 0.0131722, 1e-6);
  EXPECT_NEAR(reversal_probability(0.1, 4), 0.0034552, 1e-6);
  EXPECT_NEAR(reversal_probability(0.1, 5), 0.0009137, 1e-6);
  EXPECT_NEAR(reversal_probability(0.1, 6), 0.0002428, 1e-6);
}

TEST(Confidence, ReversalMatchesNakamotoTableQ30) {
  // q = 0.3 rows: z=5 -> 0.1773523, z=10 -> 0.0416605.
  EXPECT_NEAR(reversal_probability(0.3, 5), 0.1773523, 1e-6);
  EXPECT_NEAR(reversal_probability(0.3, 10), 0.0416605, 1e-6);
}

TEST(Confidence, MonotonicInDepth) {
  for (double q : {0.05, 0.1, 0.2, 0.3, 0.45}) {
    double prev = 2.0;
    for (std::uint32_t z = 0; z <= 30; ++z) {
      const double p = reversal_probability(q, z);
      EXPECT_LE(p, prev + 1e-12) << "q=" << q << " z=" << z;
      prev = p;
    }
  }
}

TEST(Confidence, MonotonicInAttackerShare) {
  for (std::uint32_t z : {1u, 3u, 6u, 12u}) {
    double prev = -1.0;
    for (double q = 0.02; q < 0.5; q += 0.02) {
      const double p = reversal_probability(q, z);
      EXPECT_GE(p, prev - 1e-12) << "q=" << q << " z=" << z;
      prev = p;
    }
  }
}

TEST(Confidence, MajorityAttackerAlwaysWins) {
  EXPECT_DOUBLE_EQ(reversal_probability(0.5, 100), 1.0);
  EXPECT_DOUBLE_EQ(reversal_probability(0.7, 100), 1.0);
}

TEST(Confidence, DepthForRiskReproducesPaperNumbers) {
  // Nakamoto's "P < 0.001" table: q=0.10 -> z=5, q=0.15 -> z=8,
  // q=0.20 -> z=11, q=0.25 -> z=15, q=0.30 -> z=24, q=0.45 -> z=340.
  EXPECT_EQ(depth_for_risk(0.10, 0.001), 5u);
  EXPECT_EQ(depth_for_risk(0.15, 0.001), 8u);
  EXPECT_EQ(depth_for_risk(0.20, 0.001), 11u);
  EXPECT_EQ(depth_for_risk(0.25, 0.001), 15u);
  EXPECT_EQ(depth_for_risk(0.30, 0.001), 24u);
  EXPECT_EQ(depth_for_risk(0.45, 0.001, 1000), 340u);
  // The paper's 6-block Bitcoin rule sits right at this regime
  // (q slightly above 0.10 at the 0.1% risk level).
  EXPECT_LE(depth_for_risk(0.11, 0.001), 6u);
}

TEST(Confidence, DepthForRiskCapped) {
  EXPECT_EQ(depth_for_risk(0.49, 1e-9, 50), 50u);
}

}  // namespace
}  // namespace dlt::core
