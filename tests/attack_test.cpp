// Adversarial scenarios across both paradigms (paper §III, §IV):
// majority/minority double-spend races, private-chain releases, theft
// attempts on the lattice, spam without work, PoS equivocation.
//
// The race and private-chain scenarios run through the adversary actor
// layer (core/adversary.hpp, ISSUE 8); the historical inline models are
// kept below as parity oracles — same seeds, bit-equal outcomes.
#include <gtest/gtest.h>

#include "core/adversary.hpp"
#include "core/chain_cluster.hpp"
#include "core/confidence.hpp"
#include "core/lattice_cluster.hpp"
#include "chain_test_util.hpp"
#include "lattice_test_util.hpp"

namespace dlt {
namespace {

using chain::testutil::cheap_pow_utxo;
using chain::testutil::fund_all;
using chain::testutil::make_keys;
using chain::testutil::seal_empty_utxo;

// ---------------------------------------------------------------------------
// §IV-A: double-spend race as a function of attacker hash share.

struct RaceResult {
  int attacker_wins = 0;
  int trials = 0;
};

/// Parity oracle for core::run_double_spend_races — the historical inline
/// merchant model: wait for `depth` confirmations, then see if an
/// attacker with hash share q can overtake from the fork point.
RaceResult run_races(double q, std::uint32_t depth, int trials,
                     std::uint64_t seed) {
  Rng rng(seed);
  RaceResult out;
  out.trials = trials;
  for (int t = 0; t < trials; ++t) {
    // Honest chain mines `depth` blocks; attacker mines privately.
    int attacker = 0;
    int honest = 0;
    while (honest < static_cast<int>(depth)) {
      if (rng.chance(q))
        ++attacker;
      else
        ++honest;
    }
    // Attacker keeps going until ahead or hopeless.
    int deficit = honest - attacker;
    bool win = deficit <= 0;  // caught up = wins (Nakamoto's convention)
    int steps = 0;
    while (!win && steps < 10000) {
      if (rng.chance(q))
        --deficit;
      else
        ++deficit;
      if (deficit <= 0) win = true;
      if (deficit > 60) break;  // < 1e-12 recovery probability
      ++steps;
    }
    if (win) ++out.attacker_wins;
  }
  return out;
}

/// Adversary-layer run, gated against the inline oracle at the same seed.
core::RaceOutcome run_races_checked(double q, std::uint32_t depth,
                                    int trials, std::uint64_t seed) {
  const core::RaceOutcome actor =
      core::run_double_spend_races(q, depth, trials, seed);
  const RaceResult oracle = run_races(q, depth, trials, seed);
  EXPECT_EQ(actor.attacker_wins, oracle.attacker_wins);
  EXPECT_EQ(actor.trials, oracle.trials);
  return actor;
}

TEST(DoubleSpendRace, MinorityUsuallyLosesAtDepthSix) {
  core::RaceOutcome r = run_races_checked(0.10, 6, 4000, 7);
  const double rate =
      static_cast<double>(r.attacker_wins) / static_cast<double>(r.trials);
  // Analytic value is ~0.0002; allow generous sampling noise.
  EXPECT_LT(rate, 0.005);
}

TEST(DoubleSpendRace, MajorityAlwaysWinsEventually) {
  core::RaceOutcome r = run_races_checked(0.60, 6, 300, 8);
  EXPECT_EQ(r.attacker_wins, r.trials);
}

TEST(DoubleSpendRace, MatchesAnalyticOrdering) {
  // Higher q, higher success; deeper confirmation, lower success.
  const double shallow =
      static_cast<double>(run_races_checked(0.3, 2, 4000, 9).attacker_wins) /
      4000;
  const double deep =
      static_cast<double>(run_races_checked(0.3, 10, 4000, 10).attacker_wins) /
      4000;
  EXPECT_GT(shallow, deep);
  EXPECT_NEAR(shallow, core::reversal_probability(0.3, 2), 0.05);
}

// ---------------------------------------------------------------------------
// Private-chain release: a withheld branch displaces public history
// (the §IV-A "no guarantee it will remain a valid entry").

/// Parity oracle: the historical hand-rolled private chain must be
/// byte-identical to what core::PrivateChainMiner seals for the same
/// params/genesis/miner (both follow the reference seal discipline).
chain::BlockHash oracle_private_tip(const chain::GenesisSpec& genesis,
                                    crypto::AccountId miner,
                                    std::size_t blocks) {
  chain::Blockchain attacker(cheap_pow_utxo(), genesis);
  for (std::size_t i = 0; i < blocks; ++i) {
    chain::Block b = seal_empty_utxo(attacker, miner, attacker.tip_hash());
    EXPECT_TRUE(attacker.submit(b).ok());
  }
  return attacker.tip_hash();
}

TEST(PrivateChain, DeepReorgRevertsConfirmedBlocks) {
  auto keys = make_keys(2);
  const chain::GenesisSpec genesis = fund_all(keys, 1000);
  chain::Blockchain victim(cheap_pow_utxo(), genesis);

  // Public chain: 3 blocks everyone sees.
  for (int i = 0; i < 3; ++i) {
    chain::Block b =
        seal_empty_utxo(victim, keys[0].account_id(), victim.tip_hash());
    ASSERT_TRUE(victim.submit(b).ok());
  }
  const chain::BlockHash public_tip = victim.tip_hash();

  // Attacker mines 5 blocks privately from genesis.
  core::PrivateChainMiner miner(cheap_pow_utxo(), genesis,
                                keys[1].account_id());
  miner.extend(5);
  EXPECT_EQ(miner.chain().tip_hash(),
            oracle_private_tip(genesis, keys[1].account_id(), 5));

  // Release: victim adopts the heavier branch wholesale.
  const auto outcome = miner.release_into(victim);
  EXPECT_EQ(outcome.accepted, 5u);
  EXPECT_TRUE(outcome.reorged);
  EXPECT_EQ(outcome.reorg_depth, 3u);

  EXPECT_EQ(victim.tip_hash(), miner.chain().tip_hash());
  EXPECT_FALSE(victim.on_active_chain(public_tip));
  EXPECT_EQ(victim.fork_stats().max_reorg_depth, 3u);
}

TEST(PrivateChain, FinalityStopsTheRelease) {
  // With a Casper-style finalized checkpoint the same release fails
  // (paper §IV-A: "non-reversible checkpoints, guaranteeing inclusion").
  auto keys = make_keys(2);
  const chain::GenesisSpec genesis = fund_all(keys, 1000);
  chain::Blockchain victim(cheap_pow_utxo(), genesis);

  for (int i = 0; i < 3; ++i) {
    chain::Block b =
        seal_empty_utxo(victim, keys[0].account_id(), victim.tip_hash());
    ASSERT_TRUE(victim.submit(b).ok());
  }
  ASSERT_TRUE(victim.finalize(victim.at_height(2)->hash()).ok());

  core::PrivateChainMiner miner(cheap_pow_utxo(), genesis,
                                keys[1].account_id());
  miner.extend(5);
  EXPECT_EQ(miner.chain().tip_hash(),
            oracle_private_tip(genesis, keys[1].account_id(), 5));

  const chain::BlockHash old_tip = victim.tip_hash();
  const auto outcome = miner.release_into(victim);
  EXPECT_FALSE(outcome.reorged);
  EXPECT_EQ(victim.tip_hash(), old_tip);
}

// ---------------------------------------------------------------------------
// Lattice attacks (paper §III-B, §IV-B).

using lattice::testutil::Builder;
using lattice::testutil::cheap_params;

class LatticeAttack : public ::testing::Test {
 protected:
  LatticeAttack()
      : genesis(crypto::KeyPair::from_seed(1)),
        mallory(crypto::KeyPair::from_seed(66)),
        victim(crypto::KeyPair::from_seed(3)),
        rng(4),
        ledger(cheap_params(), genesis.account_id(), genesis.account_id(),
               1'000'000),
        b{ledger, rng, cheap_params().work_bits} {}

  crypto::KeyPair genesis, mallory, victim;
  Rng rng;
  lattice::Ledger ledger;
  Builder b;
};

TEST_F(LatticeAttack, CannotStealPendingFunds) {
  lattice::LatticeBlock send = b.send(genesis, victim.account_id(), 500);
  ASSERT_TRUE(ledger.process(send).ok());
  // Mallory tries to claim the victim's pending send.
  lattice::LatticeBlock theft =
      b.open(mallory, send.hash(), 500, mallory.account_id());
  EXPECT_EQ(ledger.process(theft).error().code, "wrong-destination");
  EXPECT_EQ(ledger.balance_of(mallory.account_id()), 0u);
}

TEST_F(LatticeAttack, CannotForgeBlocksForOthersChains) {
  lattice::LatticeBlock send = b.send(genesis, victim.account_id(), 500);
  ASSERT_TRUE(ledger.process(send).ok());
  lattice::LatticeBlock open =
      b.open(victim, send.hash(), 500, victim.account_id());
  ASSERT_TRUE(ledger.process(open).ok());

  // Mallory crafts a send FROM the victim's account, signed by mallory.
  lattice::LatticeBlock forged;
  forged.type = lattice::BlockType::kSend;
  forged.account = victim.account_id();
  forged.previous = open.hash();
  forged.balance = 0;
  forged.link = mallory.account_id();
  forged.representative = victim.account_id();
  forged.solve_work(cheap_params().work_bits);
  forged.sign(mallory, rng);  // wrong key
  EXPECT_EQ(ledger.process(forged).error().code, "bad-signature");
  EXPECT_EQ(ledger.balance_of(victim.account_id()), 500u);
}

TEST_F(LatticeAttack, CannotMintValue) {
  lattice::LatticeBlock send = b.send(genesis, victim.account_id(), 500);
  ASSERT_TRUE(ledger.process(send).ok());
  // Victim claims MORE than was sent.
  lattice::LatticeBlock greedy =
      b.open(victim, send.hash(), 9'999, victim.account_id());
  EXPECT_EQ(ledger.process(greedy).error().code, "bad-balance");
  EXPECT_TRUE(ledger.conserves_value());
}

TEST_F(LatticeAttack, DoubleReceiveOfSameSendRejected) {
  lattice::LatticeBlock send = b.send(genesis, victim.account_id(), 500);
  ASSERT_TRUE(ledger.process(send).ok());
  lattice::LatticeBlock open =
      b.open(victim, send.hash(), 500, victim.account_id());
  ASSERT_TRUE(ledger.process(open).ok());
  lattice::LatticeBlock again = b.receive(victim, send.hash(), 500);
  EXPECT_EQ(ledger.process(again).error().code, "already-claimed");
}

TEST(LatticeSpam, WorklessFloodRejectedNetworkWide) {
  // §III-B: PoW as spam protection. A flood of signature-valid but
  // work-less blocks is dropped by every node.
  core::LatticeClusterConfig cfg;
  cfg.node_count = 3;
  cfg.account_count = 4;
  cfg.params.work_bits = 12;  // meaningful threshold
  cfg.seed = 3;
  core::LatticeCluster cluster(cfg);
  cluster.fund_accounts();

  auto& owner = cluster.owner_of(0);
  const auto& key = cluster.account(0);
  Rng rng(5);
  const std::uint64_t before = cluster.node(1).ledger().block_count();

  for (int i = 0; i < 20; ++i) {
    const auto* info = owner.ledger().account(key.account_id());
    lattice::LatticeBlock spam;
    spam.type = lattice::BlockType::kSend;
    spam.account = key.account_id();
    spam.previous = info->head().hash();
    spam.balance = info->head().balance - 1;
    spam.link = cluster.account(1).account_id();
    spam.representative = info->head().representative;
    spam.work = static_cast<std::uint64_t>(i);  // no real work
    if (spam.verify_work(12)) continue;         // (astronomically unlikely)
    spam.sign(key, rng);
    (void)cluster.node(0).publish(spam);
  }
  cluster.run_for(5.0);
  EXPECT_EQ(cluster.node(1).ledger().block_count(), before);
}

// ---------------------------------------------------------------------------
// PoS: whole-block equivocation slashed network-wide (paper §III-A2).

TEST(PosAttack, EquivocatingProposerLosesStake) {
  core::ChainClusterConfig cfg;
  cfg.params = chain::pos_like();
  cfg.params.epoch_length = 10;
  cfg.node_count = 4;
  cfg.validator_count = 4;
  cfg.account_count = 4;
  cfg.seed = 12;
  core::ChainCluster cluster(cfg);
  cluster.start();
  cluster.run_for(30.0);  // a few slots of honest operation

  // Forge two different blocks for the same slot by the same proposer and
  // deliver both to node 0.
  auto& honest = cluster.node(0);
  const chain::Block* tip = honest.chain().find(honest.chain().tip_hash());
  ASSERT_NE(tip, nullptr);
  ASSERT_GT(tip->header.slot, 0u);

  const chain::Amount stake_before =
      honest.validators().stake_of(tip->header.proposer);
  ASSERT_GT(stake_before, 0u);

  chain::Block evil = *tip;
  evil.header.timestamp += 0.001;  // different content, same slot+proposer
  evil.header.invalidate_digests();  // direct field write bypasses the memo
  honest.chain();  // (documenting intent; delivery below)
  // Deliver the equivocating block directly through the message path.
  cluster.network().send(
      cluster.node(1).id(), honest.id(),
      net::make_message("block", evil, evil.serialized_size()));
  cluster.run_for(5.0);

  EXPECT_EQ(honest.validators().stake_of(tip->header.proposer), 0u);
  EXPECT_LT(honest.validators().total_stake(),
            4 * cfg.stake_per_validator);
}

}  // namespace
}  // namespace dlt
