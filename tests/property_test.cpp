// Property-based sweeps across seeds and parameters: the invariants that
// must hold for ANY workload on every ledger implementation.
#include <gtest/gtest.h>

#include <map>

#include "core/adversary.hpp"
#include "core/chain_cluster.hpp"
#include "core/lattice_cluster.hpp"
#include "core/tangle_cluster.hpp"

namespace dlt::core {
namespace {

// ---------------------------------------------------------------------------
// UTXO chain: value conservation and convergence across random workloads.

class UtxoChainProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UtxoChainProperty, ConservationAndConvergence) {
  ChainClusterConfig cfg;
  cfg.params = chain::bitcoin_like();
  cfg.params.verify_pow = false;
  cfg.params.retarget_window = 0;
  cfg.params.block_interval = 25.0;
  cfg.params.initial_difficulty = 1e6;
  cfg.node_count = 4;
  cfg.miner_count = 2;
  cfg.total_hashrate = 1e6 / 25.0;
  cfg.account_count = 12;
  cfg.initial_balance = 1'000'000;
  cfg.genesis_outputs_per_account = 8;
  cfg.seed = GetParam();
  ChainCluster cluster(cfg);
  cluster.start();

  Rng wl(GetParam() * 31 + 1);
  WorkloadConfig w;
  w.account_count = 12;
  w.tx_rate = 1.0;
  w.duration = 400.0;
  w.max_amount = 5000;
  cluster.schedule_workload(generate_payments(w, wl));
  cluster.run_for(700.0);

  // Conservation: UTXO total == genesis allocation + mined subsidies
  // minus fees claimed... fees flow INTO coinbases, so total value is
  // exactly genesis + height * reward + (fees paid - fees claimed == 0).
  const auto& bc = cluster.node(0).chain();
  const chain::Amount genesis_total = 12ull * 8ull * 1'000'000ull;
  chain::Amount fees_in_flight = 0;
  // Fees of transactions still in the mempool are not yet claimed; every
  // included tx's fee was claimed by its block's coinbase. Unclaimed fee
  // value simply remains in the senders' UTXOs until inclusion, so the
  // set total is exact:
  EXPECT_EQ(bc.utxo_set().total_value() + fees_in_flight,
            genesis_total + static_cast<chain::Amount>(bc.height()) *
                                bc.params().block_reward);

  cluster.run_for(200.0);
  EXPECT_TRUE(cluster.converged()) << "replicas diverged";

  // All replicas expose the same UTXO set value.
  for (std::size_t i = 1; i < cluster.node_count(); ++i)
    EXPECT_EQ(cluster.node(i).chain().utxo_set().total_value(),
              bc.utxo_set().total_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, UtxoChainProperty,
                         ::testing::Values(101, 202, 303, 404));

// ---------------------------------------------------------------------------
// Account chain: supply == genesis + rewards, nonces strictly sequential.

class AccountChainProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(AccountChainProperty, SupplyAndNonceDiscipline) {
  ChainClusterConfig cfg;
  cfg.params = chain::ethereum_like();
  cfg.params.verify_pow = false;
  cfg.params.retarget_window = 0;
  cfg.params.initial_difficulty = 1e5;
  cfg.node_count = 4;
  cfg.miner_count = 2;
  cfg.total_hashrate = 1e5 / 15.0;
  cfg.account_count = 10;
  cfg.initial_balance = 50'000'000;
  cfg.seed = GetParam();
  ChainCluster cluster(cfg);
  cluster.start();

  Rng wl(GetParam() * 17 + 5);
  WorkloadConfig w;
  w.account_count = 10;
  w.tx_rate = 2.0;
  w.duration = 300.0;
  cluster.schedule_workload(generate_payments(w, wl));
  cluster.run_for(500.0);

  const auto& bc = cluster.node(0).chain();
  EXPECT_EQ(bc.world_state().total_supply(),
            10ull * 50'000'000ull +
                static_cast<chain::Amount>(bc.height()) *
                    bc.params().block_reward);

  // Nonce discipline: walking the chain, each sender's nonces appear in
  // strictly increasing order with no gaps.
  std::map<crypto::AccountId, std::uint64_t> next_nonce;
  for (std::uint32_t h = 1; h <= bc.height(); ++h) {
    for (const auto& tx : bc.at_height(h)->account_txs()) {
      EXPECT_EQ(tx.nonce, next_nonce[tx.from]) << "h=" << h;
      next_nonce[tx.from] = tx.nonce + 1;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccountChainProperty,
                         ::testing::Values(11, 22, 33));

// ---------------------------------------------------------------------------
// Lattice: conservation, settlement progress, and convergence.

class LatticeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LatticeProperty, ConservationAndConvergence) {
  LatticeClusterConfig cfg;
  cfg.node_count = 4;
  cfg.representative_count = 2;
  cfg.account_count = 10;
  cfg.params.work_bits = 2;
  cfg.seed = GetParam();
  LatticeCluster cluster(cfg);
  cluster.fund_accounts();

  Rng wl(GetParam() * 7 + 3);
  WorkloadConfig w;
  w.account_count = 10;
  w.tx_rate = 1.5;
  w.duration = 60.0;
  cluster.schedule_workload(generate_payments(w, wl));
  cluster.run_for(120.0);

  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    EXPECT_TRUE(cluster.node(i).ledger().conserves_value()) << i;
  }
  EXPECT_TRUE(cluster.converged());
  // Everything settled once the network quiesces (all receivers online).
  EXPECT_EQ(cluster.node(0).ledger().pending().size(), 0u);
  // Every node agrees on every balance.
  for (std::size_t a = 0; a < 10; ++a) {
    const auto id = cluster.account(a).account_id();
    const auto b0 = cluster.node(0).ledger().balance_of(id);
    for (std::size_t n = 1; n < cluster.node_count(); ++n)
      EXPECT_EQ(cluster.node(n).ledger().balance_of(id), b0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatticeProperty,
                         ::testing::Values(7, 77, 777, 7777));

// ---------------------------------------------------------------------------
// Parallel-validation toggling: flipping the sharded pipeline on and off
// MID-RUN (between simulation segments) must leave every invariant — and
// the exact final state — untouched, because both modes are proven
// equivalent per block. The toggled run is compared against a plain
// serial run of the same seed.

class ParallelToggleProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ParallelToggleProperty, UtxoChainToggleMidRunMatchesSerial) {
  const std::uint64_t seed = GetParam();
  auto run = [&](bool toggled) {
    ChainClusterConfig cfg;
    cfg.params = chain::bitcoin_like();
    cfg.params.verify_pow = false;
    cfg.params.retarget_window = 0;
    cfg.params.block_interval = 25.0;
    cfg.params.initial_difficulty = 1e6;
    cfg.node_count = 4;
    cfg.miner_count = 2;
    cfg.total_hashrate = 1e6 / 25.0;
    cfg.account_count = 10;
    cfg.initial_balance = 1'000'000;
    cfg.genesis_outputs_per_account = 4;
    cfg.seed = seed;
    if (toggled) {
      // A 2-thread pool exists from the start; whether connects route
      // through it is flipped randomly between segments below.
      cfg.crypto.verify_threads = 2;
      cfg.crypto.parallel_validation = false;
    }
    ChainCluster cluster(cfg);
    cluster.start();
    Rng wl(seed * 31 + 1);
    WorkloadConfig w;
    w.account_count = 10;
    w.tx_rate = 1.0;
    w.duration = 400.0;
    w.max_amount = 5000;
    cluster.schedule_workload(generate_payments(w, wl));
    if (toggled) {
      Rng toggle_rng(seed ^ 0x70661e);
      for (int segment = 0; segment < 8; ++segment) {
        cluster.set_parallel_validation(toggle_rng.uniform(2) == 1);
        cluster.run_for(75.0);
      }
    } else {
      cluster.run_for(600.0);
    }
    cluster.run_for(200.0);  // quiesce
    EXPECT_TRUE(cluster.converged()) << "toggled=" << toggled;
    const auto& bc = cluster.node(0).chain();
    const chain::Amount genesis_total = 10ull * 4ull * 1'000'000ull;
    EXPECT_EQ(bc.utxo_set().total_value(),
              genesis_total + static_cast<chain::Amount>(bc.height()) *
                                  bc.params().block_reward)
        << "toggled=" << toggled;
    return std::pair{bc.tip_hash(), bc.utxo_set().total_value()};
  };
  EXPECT_EQ(run(false), run(true));
}

TEST_P(ParallelToggleProperty, LatticeToggleMidRunMatchesSerial) {
  const std::uint64_t seed = GetParam();
  auto run = [&](bool toggled) {
    LatticeClusterConfig cfg;
    cfg.node_count = 4;
    cfg.representative_count = 2;
    cfg.account_count = 10;
    cfg.params.work_bits = 2;
    cfg.seed = seed;
    if (toggled) {
      cfg.crypto.verify_threads = 2;
      cfg.crypto.parallel_validation = false;
    }
    LatticeCluster cluster(cfg);
    cluster.fund_accounts();
    Rng wl(seed * 7 + 3);
    WorkloadConfig w;
    w.account_count = 10;
    w.tx_rate = 1.5;
    w.duration = 60.0;
    cluster.schedule_workload(generate_payments(w, wl));
    if (toggled) {
      Rng toggle_rng(seed ^ 0x70661e);
      for (int segment = 0; segment < 6; ++segment) {
        cluster.set_parallel_validation(toggle_rng.uniform(2) == 1);
        cluster.run_for(20.0);
      }
    } else {
      cluster.run_for(120.0);
    }
    for (std::size_t i = 0; i < cluster.node_count(); ++i)
      EXPECT_TRUE(cluster.node(i).ledger().conserves_value())
          << "node=" << i << " toggled=" << toggled;
    EXPECT_TRUE(cluster.converged()) << "toggled=" << toggled;
    std::vector<lattice::Amount> balances;
    for (std::size_t a = 0; a < 10; ++a)
      balances.push_back(cluster.node(0).ledger().balance_of(
          cluster.account(a).account_id()));
    return balances;
  };
  EXPECT_EQ(run(false), run(true));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelToggleProperty,
                         ::testing::Values(19, 38, 57));

// ---------------------------------------------------------------------------
// State-sharding toggling: like the validation toggle above, but flipping
// the conflict-group state-application pipeline (ISSUE 5) on and off
// mid-run. Sharded connects are committed through the serial replay, so
// any segment mix must reproduce the plain serial history bit for bit.

class StateToggleProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(StateToggleProperty, UtxoChainToggleMidRunMatchesSerial) {
  const std::uint64_t seed = GetParam();
  auto run = [&](bool toggled) {
    ChainClusterConfig cfg;
    cfg.params = chain::bitcoin_like();
    cfg.params.verify_pow = false;
    cfg.params.retarget_window = 0;
    cfg.params.block_interval = 25.0;
    cfg.params.initial_difficulty = 1e6;
    cfg.node_count = 4;
    cfg.miner_count = 2;
    cfg.total_hashrate = 1e6 / 25.0;
    cfg.account_count = 10;
    cfg.initial_balance = 1'000'000;
    cfg.genesis_outputs_per_account = 4;
    cfg.seed = seed;
    if (toggled) {
      // A 2-thread pool exists from the start; whether connect_block
      // shards state application is flipped randomly between segments.
      cfg.crypto.verify_threads = 2;
      cfg.crypto.parallel_state = false;
    }
    ChainCluster cluster(cfg);
    cluster.start();
    Rng wl(seed * 31 + 1);
    WorkloadConfig w;
    w.account_count = 10;
    w.tx_rate = 1.0;
    w.duration = 400.0;
    w.max_amount = 5000;
    cluster.schedule_workload(generate_payments(w, wl));
    if (toggled) {
      Rng toggle_rng(seed ^ 0x57a7e5);
      for (int segment = 0; segment < 8; ++segment) {
        cluster.set_parallel_state(toggle_rng.uniform(2) == 1);
        cluster.run_for(75.0);
      }
    } else {
      cluster.run_for(600.0);
    }
    cluster.run_for(200.0);  // quiesce
    EXPECT_TRUE(cluster.converged()) << "toggled=" << toggled;
    const auto& bc = cluster.node(0).chain();
    const chain::Amount genesis_total = 10ull * 4ull * 1'000'000ull;
    EXPECT_EQ(bc.utxo_set().total_value(),
              genesis_total + static_cast<chain::Amount>(bc.height()) *
                                  bc.params().block_reward)
        << "toggled=" << toggled;
    return std::pair{bc.tip_hash(), bc.utxo_set().total_value()};
  };
  EXPECT_EQ(run(false), run(true));
}

TEST_P(StateToggleProperty, AccountChainToggleMidRunMatchesSerial) {
  const std::uint64_t seed = GetParam();
  auto run = [&](bool toggled) {
    ChainClusterConfig cfg;
    cfg.params = chain::ethereum_like();
    cfg.params.verify_pow = false;
    cfg.params.retarget_window = 0;
    cfg.params.initial_difficulty = 1e5;
    cfg.node_count = 4;
    cfg.miner_count = 2;
    cfg.total_hashrate = 1e5 / 15.0;
    cfg.account_count = 10;
    cfg.initial_balance = 50'000'000;
    cfg.seed = seed;
    if (toggled) {
      cfg.crypto.verify_threads = 2;
      cfg.crypto.parallel_state = false;
    }
    ChainCluster cluster(cfg);
    cluster.start();
    Rng wl(seed * 17 + 5);
    WorkloadConfig w;
    w.account_count = 10;
    w.tx_rate = 2.0;
    w.duration = 300.0;
    cluster.schedule_workload(generate_payments(w, wl));
    if (toggled) {
      Rng toggle_rng(seed ^ 0x57a7e5);
      for (int segment = 0; segment < 6; ++segment) {
        cluster.set_parallel_state(toggle_rng.uniform(2) == 1);
        cluster.run_for(60.0);
      }
    } else {
      cluster.run_for(360.0);
    }
    cluster.run_for(140.0);  // quiesce
    EXPECT_TRUE(cluster.converged()) << "toggled=" << toggled;
    const auto& bc = cluster.node(0).chain();
    EXPECT_EQ(bc.world_state().total_supply(),
              10ull * 50'000'000ull +
                  static_cast<chain::Amount>(bc.height()) *
                      bc.params().block_reward)
        << "toggled=" << toggled;
    return bc.tip_hash();
  };
  EXPECT_EQ(run(false), run(true));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StateToggleProperty,
                         ::testing::Values(23, 46, 69));

// ---------------------------------------------------------------------------
// Tangle gap healing: gossip over jittery links delivers transactions out
// of order, so children routinely arrive before their parents and park in
// the per-node gap pool (§IV-B's missing-predecessor analogue). For any
// seed the pools must drain completely once the network quiesces, with
// every replica converging on the same tangle.

class TangleGapProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TangleGapProperty, OutOfOrderDeliveryHealsAndConverges) {
  TangleClusterConfig cfg;
  cfg.node_count = 5;
  cfg.account_count = 12;
  cfg.params.work_bits = 2;
  // Jitter comparable to the base latency: arrival order scrambles hard
  // enough that parent-before-child cannot be assumed anywhere.
  cfg.link = net::LinkParams{0.08, 0.08, 1e7};
  cfg.seed = GetParam();
  TangleCluster cluster(cfg);
  cluster.start();

  Rng wl(GetParam() * 13 + 7);
  WorkloadConfig w;
  w.account_count = 12;
  w.tx_rate = 6.0;
  w.duration = 20.0;
  w.max_amount = 100;
  cluster.schedule_workload(generate_payments(w, wl));
  cluster.run_for(60.0);

  // The sweep is only meaningful if reordering actually happened.
  const obs::Counter* parked =
      cluster.metrics_registry().find_counter("tangle.gap.parked");
  ASSERT_NE(parked, nullptr);
  EXPECT_GT(parked->value(), 0u) << "workload never exercised the gap pool";

  // Healing: every pool drained, every replica identical.
  for (std::size_t i = 0; i < cluster.node_count(); ++i)
    EXPECT_EQ(cluster.node(i).gap_pool_size(), 0u) << "node " << i;
  EXPECT_TRUE(cluster.converged());
  const std::size_t size0 = cluster.node(0).tangle().size();
  EXPECT_GT(size0, 1u);
  for (std::size_t i = 1; i < cluster.node_count(); ++i)
    EXPECT_EQ(cluster.node(i).tangle().size(), size0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TangleGapProperty,
                         ::testing::Values(5, 55, 555, 5555));

// ---------------------------------------------------------------------------
// Tangle tip-count stationarity (ISSUE 8 satellite; Feng–King–Duffy): for
// any seed an honest tangle's tip process is stationary — the windowed
// variance stays bounded — while genesis-anchored lazy-tip spam breaks
// one-endedness and the tip count grows without bound.

class TangleStationarityProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TangleStationarityProperty, HonestConvergesSpamDiverges) {
  auto windowed_variance = [&](double spam_power) {
    TangleClusterConfig cfg;
    cfg.node_count = 3;
    cfg.account_count = 10;
    cfg.params.work_bits = 2;
    cfg.seed = GetParam();
    TangleCluster cluster(cfg);

    AdversaryConfig ac;
    ac.kind = AdversaryKind::kSpam;
    ac.power = spam_power;
    ac.node = 1;
    ac.start_time = 2.0;
    ac.interval = 1.0;
    TangleAdversary adversary(cluster, ac);

    cluster.start();
    adversary.start();

    Rng wl(GetParam() * 17 + 3);
    WorkloadConfig w;
    w.account_count = 10;
    w.tx_rate = 4.0;
    w.duration = 16.0;
    w.max_amount = 100;
    cluster.schedule_workload(generate_payments(w, wl));

    TipStationarity stat(12);
    for (int s = 0; s < 16; ++s) {
      cluster.run_for(1.0);
      stat.sample(cluster.node(0).tangle().tip_count());
    }
    EXPECT_EQ(stat.samples(), 16u);
    return stat.variance();
  };

  const double honest = windowed_variance(0.0);
  const double spam = windowed_variance(0.9);
  // Honest: the tip count hovers around its small equilibrium. Spam: the
  // count ramps linearly through the window, so the windowed variance
  // explodes relative to honest noise.
  EXPECT_LT(honest, 30.0);
  EXPECT_GT(spam, 10.0 * honest + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TangleStationarityProperty,
                         ::testing::Values(2, 22, 222, 2222));

// ---------------------------------------------------------------------------
// Deterministic replay for the chain clusters (the lattice variant lives
// in core_cluster_test.cpp).

TEST(ChainDeterminism, SameSeedSameTip) {
  auto run_once = [] {
    ChainClusterConfig cfg;
    cfg.params = chain::bitcoin_like();
    cfg.params.verify_pow = false;
    cfg.params.retarget_window = 0;
    cfg.params.block_interval = 20.0;
    cfg.params.initial_difficulty = 1e6;
    cfg.node_count = 4;
    cfg.miner_count = 3;
    cfg.total_hashrate = 1e6 / 20.0;
    cfg.account_count = 6;
    cfg.seed = 555;
    ChainCluster cluster(cfg);
    cluster.start();
    Rng wl(99);
    WorkloadConfig w;
    w.account_count = 6;
    w.tx_rate = 0.5;
    w.duration = 300.0;
    cluster.schedule_workload(generate_payments(w, wl));
    cluster.run_for(500.0);
    return cluster.node(0).chain().tip_hash();
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---------------------------------------------------------------------------
// Admission accounting (ISSUE 10): under open-loop traffic past saturation,
// every submitted transaction lands in exactly one bucket
// (admitted / rejected / evicted / backpressured) and every ADMITTED one is
// eventually confirmed, explicitly evicted, or still accounted in flight —
// nothing leaks.

class TrafficAdmissionProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrafficAdmissionProperty, ChainAdmittedConfirmsOrEvicts) {
  ChainClusterConfig cfg;
  cfg.params = chain::pos_like();
  cfg.params.verify_pow = false;
  cfg.params.retarget_window = 0;
  cfg.params.initial_difficulty = 1e6;
  cfg.params.block_interval = 2.0;
  cfg.params.confirmation_depth = 3;
  cfg.node_count = 3;
  cfg.miner_count = 2;
  cfg.validator_count = 3;
  cfg.total_hashrate = 1e6 / 2.0;
  cfg.account_count = 10;
  cfg.initial_balance = 1'000'000'000;
  cfg.seed = GetParam();
  cfg.traffic.enabled = true;
  cfg.traffic.rate = 80.0;
  cfg.traffic.duration = 20.0;
  cfg.traffic.queue_capacity_bytes = 4 * 1024;  // well under the offered load
  ChainCluster cluster(cfg);
  cluster.start();
  cluster.schedule_traffic();
  cluster.run_for(20.0 + 2.0 * 5.0);

  const RunMetrics m = cluster.metrics();
  // Exact reconciliation: the four outcome buckets partition submissions.
  EXPECT_GT(m.admission_submitted, 0u);
  EXPECT_EQ(m.admission_submitted,
            m.admission_admitted + m.admission_rejected + m.admission_evicted +
                m.admission_backpressured);
  // The config is past saturation by construction.
  EXPECT_GT(m.admission_evicted + m.admission_backpressured, 0u);
  EXPECT_GT(m.admission_admitted, 0u);

  // Lifecycle completeness: each admitted tx got a tracker entry, and each
  // entry is confirmed, explicitly evicted, or still in flight.
  const obs::LatencyTracker& lt = cluster.lifecycle();
  EXPECT_EQ(lt.submitted(), lt.confirmed() + lt.evicted() + lt.in_flight());
  EXPECT_EQ(lt.submitted(), m.admission_admitted + m.admission_evicted);
  EXPECT_EQ(lt.evicted(), m.admission_evicted);
  EXPECT_LE(lt.confirmed(), m.admission_admitted);
  EXPECT_GT(lt.confirmed(), 0u);
}

TEST_P(TrafficAdmissionProperty, LatticeAdmissionReconciles) {
  LatticeClusterConfig cfg;
  cfg.node_count = 3;
  cfg.representative_count = 2;
  cfg.account_count = 10;
  cfg.params.work_bits = 2;
  cfg.seed = GetParam();
  cfg.traffic.enabled = true;
  cfg.traffic.rate = 60.0;
  cfg.traffic.duration = 8.0;
  cfg.traffic.queue_capacity_bytes = 1536;
  cfg.traffic.drain_burst = 2;
  LatticeCluster cluster(cfg);
  cluster.fund_accounts();
  cluster.schedule_traffic();
  cluster.run_for(8.0 + 12.0);

  const RunMetrics m = cluster.metrics();
  EXPECT_GT(m.admission_submitted, 0u);
  EXPECT_EQ(m.admission_submitted,
            m.admission_admitted + m.admission_rejected + m.admission_evicted +
                m.admission_backpressured);
  EXPECT_GT(m.admission_evicted + m.admission_backpressured, 0u);

  // Queue-evicted payments never reached the ledger (no lifecycle entry),
  // so the tracker covers exactly the drained-and-issued population.
  const obs::LatencyTracker& lt = cluster.lifecycle();
  EXPECT_EQ(lt.submitted(), lt.confirmed() + lt.evicted() + lt.in_flight());
  EXPECT_LE(lt.submitted(), m.admission_admitted);
  EXPECT_GT(lt.confirmed(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrafficAdmissionProperty,
                         ::testing::Values(41, 42, 43));

// Different seeds must explore different histories (sanity of the sweep).
TEST(ChainDeterminism, DifferentSeedsDiffer) {
  auto run_with = [](std::uint64_t seed) {
    ChainClusterConfig cfg;
    cfg.params = chain::bitcoin_like();
    cfg.params.verify_pow = false;
    cfg.params.retarget_window = 0;
    cfg.params.block_interval = 20.0;
    cfg.params.initial_difficulty = 1e6;
    cfg.node_count = 3;
    cfg.miner_count = 2;
    cfg.total_hashrate = 1e6 / 20.0;
    cfg.account_count = 4;
    cfg.seed = seed;
    ChainCluster cluster(cfg);
    cluster.start();
    cluster.run_for(300.0);
    return cluster.node(0).chain().tip_hash();
  };
  EXPECT_NE(run_with(1), run_with(2));
}

}  // namespace
}  // namespace dlt::core
