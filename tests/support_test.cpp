// Unit tests for the support substrate: hex, Result, Rng, serialization,
// statistics.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "support/hex.hpp"
#include "support/inplace_function.hpp"
#include "support/result.hpp"
#include "support/rng.hpp"
#include "support/serialize.hpp"
#include "support/stats.hpp"
#include "support/thread_pool.hpp"

namespace dlt {
namespace {

TEST(Hex, RoundTrip) {
  const Bytes data{0x00, 0x01, 0xab, 0xff, 0x10};
  const std::string hex = to_hex(ByteView{data.data(), data.size()});
  EXPECT_EQ(hex, "0001abff10");
  auto back = from_hex(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(Hex, UpperCaseAccepted) {
  auto v = from_hex("ABCDEF");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ((*v)[0], 0xab);
}

TEST(Hex, RejectsOddLength) { EXPECT_FALSE(from_hex("abc").has_value()); }

TEST(Hex, RejectsBadChars) { EXPECT_FALSE(from_hex("zz").has_value()); }

TEST(Hex, FixedFromHexChecksLength) {
  EXPECT_FALSE(fixed_from_hex<32>("abcd").has_value());
  const std::string full(64, 'a');
  EXPECT_TRUE(fixed_from_hex<32>(full).has_value());
}

TEST(Hex, ShortHexTruncates) {
  Hash256 h;
  for (std::size_t i = 0; i < 32; ++i) h.v[i] = static_cast<Byte>(i);
  EXPECT_EQ(short_hex(h), "00010203..");
}

TEST(FixedBytes, OrderingAndHashing) {
  Hash256 a, b;
  b.v[31] = 1;
  EXPECT_LT(a, b);
  EXPECT_NE(std::hash<Hash256>{}(a), std::hash<Hash256>{}(b));
  EXPECT_TRUE(a.is_zero());
  EXPECT_FALSE(b.is_zero());
}

TEST(Result, ValueAndError) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  Result<int> err = make_error("nope", "details");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, "nope");
  EXPECT_EQ(err.error().to_string(), "nope: details");
  EXPECT_EQ(err.value_or(7), 7);
}

TEST(Result, StatusDefaultsToSuccess) {
  Status st;
  EXPECT_TRUE(st.ok());
  Status bad = make_error("x");
  EXPECT_FALSE(bad.ok());
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformBoundRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(Rng, Uniform01Range) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(99);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, NormalMoments) {
  Rng rng(42);
  Summary s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng(5);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[rng.zipf(100, 1.0)];
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(Rng, ZipfHandlesParameterChange) {
  Rng rng(5);
  (void)rng.zipf(10, 1.0);
  const std::size_t r = rng.zipf(50, 0.5);  // re-caches cdf
  EXPECT_LT(r, 50u);
}

TEST(Rng, ForkIndependent) {
  Rng a(123);
  Rng b = a.fork();
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, ShufflePermutes) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Serialize, FixedWidthRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  Reader r(ByteView{w.bytes().data(), w.size()});
  EXPECT_EQ(*r.u8(), 0xab);
  EXPECT_EQ(*r.u16(), 0x1234);
  EXPECT_EQ(*r.u32(), 0xdeadbeefu);
  EXPECT_EQ(*r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, VarintRoundTrip) {
  const std::uint64_t cases[] = {0, 1, 127, 128, 300, 1ULL << 20,
                                 ~0ULL};
  for (std::uint64_t v : cases) {
    Writer w;
    w.varint(v);
    EXPECT_EQ(w.size(), varint_size(v));
    Reader r(ByteView{w.bytes().data(), w.size()});
    EXPECT_EQ(*r.varint(), v) << v;
  }
}

TEST(Serialize, BlobAndString) {
  Writer w;
  w.str("hello world");
  w.blob(to_bytes("xy"));
  Reader r(ByteView{w.bytes().data(), w.size()});
  EXPECT_EQ(*r.str(), "hello world");
  EXPECT_EQ(*r.blob(), to_bytes("xy"));
}

TEST(Serialize, TruncationDetected) {
  Writer w;
  w.u32(5);
  Reader r(ByteView{w.bytes().data(), w.size()});
  EXPECT_TRUE(r.u32().ok());
  auto fail = r.u64();
  ASSERT_FALSE(fail.ok());
  EXPECT_EQ(fail.error().code, "truncated");
}

TEST(Serialize, BlobLengthOverflowRejected) {
  Writer w;
  w.varint(1000);  // claims 1000 bytes, provides none
  Reader r(ByteView{w.bytes().data(), w.size()});
  EXPECT_FALSE(r.blob().ok());
}

TEST(Stats, SummaryWelford) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);
}

TEST(Stats, SummaryMerge) {
  Summary a, b, all;
  for (int i = 0; i < 50; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 50; i < 100; ++i) {
    b.add(i);
    all.add(i);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(Stats, Percentiles) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_NEAR(p.median(), 50.5, 0.01);
  EXPECT_NEAR(p.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(p.quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(p.p95(), 95.05, 0.01);
  EXPECT_NEAR(p.p999(), p.quantile(0.999), 1e-12);
}

TEST(Stats, PercentilesExactBelowSampleCap) {
  // Below the cap the reservoir never kicks in: quantiles are exact and
  // identical to an uncapped accumulator's.
  Percentiles capped, exact;
  capped.set_sample_cap(1000);
  for (int i = 1; i <= 1000; ++i) {
    capped.add(i);
    exact.add(i);
  }
  EXPECT_EQ(capped.count(), 1000u);
  EXPECT_EQ(capped.sample_count(), 1000u);
  for (double q : {0.0, 0.25, 0.5, 0.95, 0.99, 0.999, 1.0})
    EXPECT_NEAR(capped.quantile(q), exact.quantile(q), 1e-12);
}

TEST(Stats, PercentilesReservoirIsDeterministicAboveCap) {
  // Above the cap: total count keeps climbing while retained samples stay
  // bounded, and the seeded reservoir makes two identical runs agree to
  // the bit (the determinism contract latency histograms rely on).
  Percentiles a, b;
  a.set_sample_cap(64);
  b.set_sample_cap(64);
  for (int i = 0; i < 10000; ++i) {
    const double x = (i * 2654435761u) % 100000;
    a.add(x);
    b.add(x);
  }
  EXPECT_EQ(a.count(), 10000u);
  EXPECT_EQ(a.sample_count(), 64u);
  for (double q : {0.0, 0.5, 0.95, 0.99, 0.999, 1.0})
    EXPECT_EQ(a.quantile(q), b.quantile(q));
  // The sampled quantile still lands in the data's ballpark.
  EXPECT_GE(a.median(), 0.0);
  EXPECT_LE(a.median(), 100000.0);
}

TEST(Stats, PercentilesSampleCapShrinksRetainedSamples) {
  Percentiles p;
  for (int i = 1; i <= 500; ++i) p.add(i);
  EXPECT_EQ(p.sample_count(), 500u);
  p.set_sample_cap(100);
  EXPECT_EQ(p.sample_count(), 100u);
  EXPECT_EQ(p.count(), 500u);  // total observations are not forgotten
  p.add(501.0);
  EXPECT_EQ(p.count(), 501u);
  EXPECT_EQ(p.sample_count(), 100u);
}

TEST(Stats, HistogramBuckets) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  h.add(-1.0);
  h.add(100.0);
  EXPECT_EQ(h.count(), 12u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(h.bucket(i), 1u);
  EXPECT_FALSE(h.render().empty());
}

TEST(Stats, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_bytes(1ULL << 30), "1.00 GiB");
}

// ---------------------------------------------------------------------------
// ThreadPool edge cases (the coverage sweep lives in crypto_sigcache_test;
// here: empty batches, exception propagation, teardown discipline).

TEST(ThreadPool, ZeroTaskSubmitIsANoOpInEveryMode) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    support::ThreadPool pool(threads);
    bool called = false;
    pool.parallel_for(0, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called) << "threads=" << threads;
    // An empty batch must not wedge the pool for later work.
    std::atomic<int> ran{0};
    pool.parallel_for(5, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 5);
  }
}

TEST(ThreadPool, WorkerExceptionPropagatesToCaller) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    support::ThreadPool pool(threads);
    EXPECT_THROW(
        pool.parallel_for(64,
                          [&](std::size_t i) {
                            if (i % 7 == 3)
                              throw std::runtime_error("task " +
                                                       std::to_string(i));
                          }),
        std::runtime_error) << "threads=" << threads;
  }
}

TEST(ThreadPool, ReportsTheFailedIndexAndStaysUsable) {
  support::ThreadPool pool(4);
  // A single throwing index always runs (skip-after-failure only triggers
  // once somebody has thrown), so the rethrown exception is exactly its.
  try {
    pool.parallel_for(32, [](std::size_t i) {
      if (i == 13) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "13");
  }
  // The failure state is per-batch: the pool keeps working afterwards.
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);

  // The inline path (threads <= 1) propagates the first failure directly,
  // so the lowest index is exact there.
  support::ThreadPool inline_pool(1);
  try {
    inline_pool.parallel_for(8, [](std::size_t i) {
      throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "0");
  }
}

TEST(ThreadPool, DestructionWithUnconsumedWorkJoinsCleanly) {
  // Destroying a pool right after batches finish (workers possibly still
  // waking from the join) and destroying one that never ran any work must
  // both shut down without hangs or leaks. TSan/ASan runs of this test
  // guard the teardown handshake.
  {
    support::ThreadPool idle(8);
  }
  std::atomic<int> ran{0};
  {
    support::ThreadPool pool(8);
    for (int batch = 0; batch < 16; ++batch)
      pool.parallel_for(256, [&](std::size_t) { ran.fetch_add(1); });
  }
  EXPECT_EQ(ran.load(), 16 * 256);
}

// --- InplaceFunction -----------------------------------------------------

TEST(InplaceFunction, EmptyAndBool) {
  support::InplaceFunction<int()> f;
  EXPECT_FALSE(f);
  f = [] { return 7; };
  EXPECT_TRUE(f);
  EXPECT_EQ(f(), 7);
  f.reset();
  EXPECT_FALSE(f);
}

TEST(InplaceFunction, SmallCallableStaysInline) {
  int hits = 0;
  support::InplaceFunction<void()> f([&hits] { ++hits; });
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceFunction, MoveOnlyCallable) {
  auto p = std::make_unique<int>(41);
  support::InplaceFunction<int()> f([p = std::move(p)] { return *p + 1; });
  EXPECT_EQ(f(), 42);
}

TEST(InplaceFunction, MoveTransfersState) {
  int hits = 0;
  support::InplaceFunction<void()> a([&hits] { ++hits; });
  support::InplaceFunction<void()> b(std::move(a));
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): post-move empty
  ASSERT_TRUE(b);
  b();
  EXPECT_EQ(hits, 1);
  support::InplaceFunction<void()> c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceFunction, OversizedCallableBoxes) {
  // Capture larger than the 24-byte capacity: falls back to one heap box
  // but behaves identically.
  std::array<std::uint64_t, 16> big{};
  big[0] = 5;
  big[15] = 6;
  support::InplaceFunction<std::uint64_t(), 24> f(
      [big] { return big[0] + big[15]; });
  EXPECT_EQ(f(), 11u);
  auto moved = std::move(f);
  EXPECT_EQ(moved(), 11u);
}

TEST(InplaceFunction, NonTrivialCapturesDestroyed) {
  auto token = std::make_shared<int>(0);
  EXPECT_EQ(token.use_count(), 1);
  {
    support::InplaceFunction<void()> f([token] {});
    EXPECT_EQ(token.use_count(), 2);
    f.reset();  // reset must run the capture's destructor immediately
    EXPECT_EQ(token.use_count(), 1);
    f = [token] {};
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);  // wrapper destructor releases too
}

TEST(InplaceFunction, EmplaceReplacesHeldCallable) {
  support::InplaceFunction<int()> f([] { return 1; });
  f.emplace([] { return 2; });
  EXPECT_EQ(f(), 2);
}

TEST(InplaceFunction, TrivialCallableMoveIsExact) {
  // Trivially-copyable callables take the manager-free path (bytes are
  // state); a moved-to wrapper must reproduce the captured values.
  struct Pod {
    std::uint64_t a, b, c;
    std::uint64_t operator()() const { return a + b + c; }
  };
  support::InplaceFunction<std::uint64_t()> f(Pod{10, 20, 30});
  auto g = std::move(f);
  EXPECT_EQ(g(), 60u);
}

TEST(InplaceFunction, ArgumentsAndReturn) {
  support::InplaceFunction<int(int, int)> f([](int a, int b) { return a * b; });
  EXPECT_EQ(f(6, 7), 42);
}

}  // namespace
}  // namespace dlt
