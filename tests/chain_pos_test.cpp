// Proof of Stake: stake-weighted election, slashing, Casper FFG finality
// (paper §III-A2, §IV-A).
#include <gtest/gtest.h>

#include <map>

#include "chain/pos.hpp"
#include "chain_test_util.hpp"

namespace dlt::chain {
namespace {

using testutil::make_keys;

TEST(ValidatorSet, DepositWithdrawSlash) {
  auto keys = make_keys(2);
  ValidatorSet vs;
  vs.deposit(keys[0].account_id(), keys[0].public_key(), 100);
  vs.deposit(keys[1].account_id(), keys[1].public_key(), 300);
  vs.deposit(keys[0].account_id(), keys[0].public_key(), 50);  // top-up
  EXPECT_EQ(vs.total_stake(), 450u);
  EXPECT_EQ(vs.stake_of(keys[0].account_id()), 150u);

  EXPECT_TRUE(vs.withdraw(keys[0].account_id()).ok());
  EXPECT_EQ(vs.total_stake(), 300u);
  EXPECT_FALSE(vs.withdraw(keys[0].account_id()).ok());

  // "Burning stake has the same economic effect as dismantling an
  // attacker's mining equipment" (§III-A2).
  EXPECT_EQ(vs.slash(keys[1].account_id()), 300u);
  EXPECT_EQ(vs.total_stake(), 0u);
  EXPECT_EQ(vs.total_slashed(), 300u);
  EXPECT_EQ(vs.slash(keys[1].account_id()), 0u);  // idempotent
}

TEST(ValidatorSet, EmptySetHasNoProposer) {
  ValidatorSet vs;
  EXPECT_FALSE(vs.proposer_for_slot(Hash256{}, 1).ok());
}

TEST(ValidatorSet, ProposerDeterministicAcrossReplicas) {
  auto keys = make_keys(4);
  ValidatorSet a, b;
  for (const auto& k : keys) {
    a.deposit(k.account_id(), k.public_key(), 100);
    b.deposit(k.account_id(), k.public_key(), 100);
  }
  Hash256 seed = crypto::Sha256::digest(as_bytes("seed"));
  for (std::uint64_t slot = 0; slot < 50; ++slot)
    EXPECT_EQ(*a.proposer_for_slot(seed, slot),
              *b.proposer_for_slot(seed, slot));
}

TEST(ValidatorSet, SelectionProportionalToStake) {
  // "The more tokens a validator stakes, it has a higher chance to create
  // the next block" (§III-A2).
  auto keys = make_keys(2);
  ValidatorSet vs;
  vs.deposit(keys[0].account_id(), keys[0].public_key(), 900);
  vs.deposit(keys[1].account_id(), keys[1].public_key(), 100);

  Hash256 seed = crypto::Sha256::digest(as_bytes("prop"));
  std::map<crypto::AccountId, int> wins;
  const int slots = 5000;
  for (int s = 0; s < slots; ++s)
    ++wins[*vs.proposer_for_slot(seed, static_cast<std::uint64_t>(s))];

  const double big = wins[keys[0].account_id()];
  EXPECT_NEAR(big / slots, 0.9, 0.03);
}

class FfgTest : public ::testing::Test {
 protected:
  FfgTest() : keys(make_keys(3)), params(pos_like()), rng(9) {
    for (const auto& k : keys)
      validators.deposit(k.account_id(), k.public_key(), 100);
    genesis = crypto::Sha256::digest(as_bytes("genesis"));
    gadget = std::make_unique<FinalityGadget>(params, validators, genesis);
    for (int e = 1; e <= 4; ++e) {
      checkpoint[e] =
          crypto::Sha256::digest(as_bytes("cp" + std::to_string(e)));
    }
  }

  CheckpointVote vote(std::size_t who, std::uint64_t se, Hash256 sh,
                      std::uint64_t te, Hash256 th) {
    CheckpointVote v;
    v.source_epoch = se;
    v.source_hash = sh;
    v.target_epoch = te;
    v.target_hash = th;
    v.sign(keys[who], rng);
    return v;
  }

  std::vector<crypto::KeyPair> keys;
  ChainParams params;
  ValidatorSet validators;
  Hash256 genesis;
  std::unique_ptr<FinalityGadget> gadget;
  std::map<int, Hash256> checkpoint;
  Rng rng;
};

TEST_F(FfgTest, SupermajorityJustifiesAndFinalizes) {
  // Two of three validators (2/3 stake) link genesis -> epoch 1.
  auto o1 = gadget->process_vote(vote(0, 0, genesis, 1, checkpoint[1]));
  ASSERT_TRUE(o1.ok());
  EXPECT_TRUE(o1->counted);
  EXPECT_FALSE(o1->justified_target);  // 1/3 < 2/3

  auto o2 = gadget->process_vote(vote(1, 0, genesis, 1, checkpoint[1]));
  ASSERT_TRUE(o2.ok());
  EXPECT_TRUE(o2->justified_target);
  // Consecutive-epoch link finalizes the source (genesis, already final).
  EXPECT_EQ(gadget->last_justified_epoch(), 1u);
  EXPECT_TRUE(gadget->is_justified(1, checkpoint[1]));

  // Next epoch: votes 1 -> 2 finalize checkpoint 1.
  ASSERT_TRUE(gadget->process_vote(vote(0, 1, checkpoint[1], 2, checkpoint[2])).ok());
  auto o3 = gadget->process_vote(vote(1, 1, checkpoint[1], 2, checkpoint[2]));
  ASSERT_TRUE(o3.ok());
  EXPECT_TRUE(o3->justified_target);
  EXPECT_TRUE(o3->finalized_source);
  EXPECT_EQ(gadget->last_finalized_epoch(), 1u);
  EXPECT_EQ(gadget->last_finalized_hash(), checkpoint[1]);
}

TEST_F(FfgTest, MinorityNeverJustifies) {
  auto o = gadget->process_vote(vote(0, 0, genesis, 1, checkpoint[1]));
  ASSERT_TRUE(o.ok());
  EXPECT_FALSE(gadget->is_justified(1, checkpoint[1]));
  EXPECT_EQ(gadget->last_justified_epoch(), 0u);
}

TEST_F(FfgTest, UnjustifiedSourceRejected) {
  auto o = gadget->process_vote(vote(0, 1, checkpoint[1], 2, checkpoint[2]));
  ASSERT_FALSE(o.ok());
  EXPECT_EQ(o.error().code, "unjustified-source");
}

TEST_F(FfgTest, BadSignatureRejected) {
  auto v = vote(0, 0, genesis, 1, checkpoint[1]);
  v.signature.s ^= 1;
  EXPECT_FALSE(gadget->process_vote(v).ok());
}

TEST_F(FfgTest, UnknownValidatorRejected) {
  auto ghost = crypto::KeyPair::from_seed(0xbeef);
  CheckpointVote v;
  v.source_epoch = 0;
  v.source_hash = genesis;
  v.target_epoch = 1;
  v.target_hash = checkpoint[1];
  v.sign(ghost, rng);
  auto o = gadget->process_vote(v);
  ASSERT_FALSE(o.ok());
  EXPECT_EQ(o.error().code, "unknown-validator");
}

TEST_F(FfgTest, DoubleVoteSlashed) {
  ASSERT_TRUE(gadget->process_vote(vote(0, 0, genesis, 1, checkpoint[1])).ok());
  // Same target epoch, different hash: Casper commandment violated.
  Hash256 rival = crypto::Sha256::digest(as_bytes("rival"));
  auto o = gadget->process_vote(vote(0, 0, genesis, 1, rival));
  ASSERT_TRUE(o.ok());
  ASSERT_TRUE(o->slashed.has_value());
  EXPECT_EQ(*o->slashed, keys[0].account_id());
  EXPECT_EQ(validators.stake_of(keys[0].account_id()), 0u);
  EXPECT_EQ(gadget->slashings(), 1u);
}

TEST_F(FfgTest, SurroundVoteSlashed) {
  // Justify epochs 1 and 2 with the other validators so sources exist.
  ASSERT_TRUE(gadget->process_vote(vote(1, 0, genesis, 1, checkpoint[1])).ok());
  ASSERT_TRUE(gadget->process_vote(vote(2, 0, genesis, 1, checkpoint[1])).ok());
  // keys[0] votes 1 -> 2, then a surrounding 0 -> 3.
  ASSERT_TRUE(
      gadget->process_vote(vote(0, 1, checkpoint[1], 2, checkpoint[2])).ok());
  auto o = gadget->process_vote(vote(0, 0, genesis, 3, checkpoint[3]));
  ASSERT_TRUE(o.ok());
  ASSERT_TRUE(o->slashed.has_value());
  EXPECT_EQ(*o->slashed, keys[0].account_id());
}

TEST_F(FfgTest, DuplicateIdenticalVoteNotDoubleCounted) {
  ASSERT_TRUE(gadget->process_vote(vote(0, 0, genesis, 1, checkpoint[1])).ok());
  ASSERT_TRUE(gadget->process_vote(vote(0, 0, genesis, 1, checkpoint[1])).ok());
  // Still only 1/3 of stake: not justified.
  EXPECT_FALSE(gadget->is_justified(1, checkpoint[1]));
}

TEST_F(FfgTest, SlashedValidatorLosesVotingPower) {
  // Slash keys[0] via double vote.
  ASSERT_TRUE(gadget->process_vote(vote(0, 0, genesis, 1, checkpoint[1])).ok());
  Hash256 rival = crypto::Sha256::digest(as_bytes("rival"));
  ASSERT_TRUE(gadget->process_vote(vote(0, 0, genesis, 1, rival)).ok());
  EXPECT_EQ(validators.total_stake(), 200u);

  // Now the remaining two validators ARE the supermajority (200/200).
  ASSERT_TRUE(gadget->process_vote(vote(1, 0, genesis, 1, checkpoint[1])).ok());
  auto o = gadget->process_vote(vote(2, 0, genesis, 1, checkpoint[1]));
  ASSERT_TRUE(o.ok());
  EXPECT_TRUE(o->justified_target);
}

TEST_F(FfgTest, BadLinkRejected) {
  auto o = gadget->process_vote(vote(0, 1, genesis, 1, checkpoint[1]));
  ASSERT_FALSE(o.ok());
  EXPECT_EQ(o.error().code, "bad-link");
}

}  // namespace
}  // namespace dlt::chain
