// Lattice block primitives: hashing, signing, anti-spam work, fork roots.
#include <gtest/gtest.h>

#include "lattice/block.hpp"
#include "lattice/voting.hpp"

namespace dlt::lattice {
namespace {

LatticeBlock sample_block() {
  LatticeBlock b;
  b.type = BlockType::kSend;
  b.account = crypto::KeyPair::from_seed(1).account_id();
  b.previous = crypto::Sha256::digest(as_bytes("prev"));
  b.balance = 500;
  b.link = crypto::KeyPair::from_seed(2).account_id();
  b.representative = crypto::KeyPair::from_seed(3).account_id();
  return b;
}

TEST(LatticeBlock, HashCommitsToContentNotWork) {
  LatticeBlock b = sample_block();
  const BlockHash h = b.hash();
  b.work = 12345;  // work excluded, as in Nano
  EXPECT_EQ(b.hash(), h);
  b.balance = 501;
  b.invalidate_digests();  // direct field writes bypass the digest memo
  EXPECT_NE(b.hash(), h);
}

TEST(LatticeBlock, SignVerify) {
  Rng rng(1);
  auto key = crypto::KeyPair::from_seed(1);
  LatticeBlock b = sample_block();
  b.sign(key, rng);
  EXPECT_TRUE(b.verify_signature());
  b.balance ^= 1;
  b.invalidate_digests();
  EXPECT_FALSE(b.verify_signature());
}

TEST(LatticeBlock, ForeignKeyCannotSignForAccount) {
  Rng rng(2);
  auto other = crypto::KeyPair::from_seed(99);
  LatticeBlock b = sample_block();  // account belongs to seed 1
  b.sign(other, rng);
  EXPECT_FALSE(b.verify_signature());
}

TEST(LatticeBlock, WorkSolveVerify) {
  LatticeBlock b = sample_block();
  EXPECT_FALSE(b.verify_work(12));  // work=0 almost surely fails
  b.solve_work(12);
  EXPECT_TRUE(b.verify_work(12));
  EXPECT_TRUE(b.verify_work(8));  // weaker threshold also passes
}

TEST(LatticeBlock, WorkBoundToPosition) {
  // The work covers the predecessor; a different position needs new work.
  LatticeBlock b = sample_block();
  b.solve_work(12);
  LatticeBlock moved = b;
  moved.previous = crypto::Sha256::digest(as_bytes("elsewhere"));
  EXPECT_FALSE(moved.verify_work(12));
}

TEST(LatticeBlock, OpenWorkCoversAccount) {
  LatticeBlock b = sample_block();
  b.type = BlockType::kOpen;
  b.previous = BlockHash{};  // open: zero previous -> work over account
  b.solve_work(10);
  EXPECT_TRUE(b.verify_work(10));
}

TEST(LatticeBlock, SerializedSizeMatchesNano) {
  EXPECT_EQ(sample_block().serialized_size(), 216u);
}

TEST(LatticeBlock, TypeNames) {
  EXPECT_STREQ(to_string(BlockType::kOpen), "open");
  EXPECT_STREQ(to_string(BlockType::kSend), "send");
  EXPECT_STREQ(to_string(BlockType::kReceive), "receive");
  EXPECT_STREQ(to_string(BlockType::kChange), "change");
}

TEST(Root, EqualityAndHashing) {
  Root a{crypto::KeyPair::from_seed(1).account_id(),
         crypto::Sha256::digest(as_bytes("p"))};
  Root b = a;
  EXPECT_EQ(a, b);
  b.previous.v[0] ^= 1;
  EXPECT_NE(a, b);
  EXPECT_NE(std::hash<Root>{}(a), std::hash<Root>{}(b));
}

TEST(Vote, SignVerifyAndTamper) {
  Rng rng(3);
  auto rep = crypto::KeyPair::from_seed(10);
  Vote v;
  v.root = Root{crypto::KeyPair::from_seed(1).account_id(), {}};
  v.block = crypto::Sha256::digest(as_bytes("candidate"));
  v.sequence = 7;
  v.sign(rep, rng);
  EXPECT_TRUE(v.verify());
  v.block.v[0] ^= 1;
  EXPECT_FALSE(v.verify());
}

}  // namespace
}  // namespace dlt::lattice
