// State trie: CRUD, root authentication, insertion-order independence,
// structural sharing (state deltas), proofs (paper §V-A).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <unordered_set>

#include "crypto/sha256.hpp"
#include "crypto/trie.hpp"
#include "support/rng.hpp"

namespace dlt::crypto {
namespace {

Hash256 key_of(std::uint64_t i) {
  const std::string s = "key-" + std::to_string(i);
  return Sha256::digest(as_bytes(s));
}

Bytes val_of(std::uint64_t i) {
  return to_bytes("value-" + std::to_string(i));
}

TEST(Trie, EmptyTrie) {
  Trie t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.get(key_of(0)).has_value());
  EXPECT_EQ(t.root_hash(), Trie().root_hash());
}

TEST(Trie, PutGetSingle) {
  Trie t = Trie().put(key_of(1), val_of(1));
  EXPECT_EQ(t.size(), 1u);
  auto v = t.get(key_of(1));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, val_of(1));
  EXPECT_FALSE(t.get(key_of(2)).has_value());
}

TEST(Trie, OverwriteKeepsSize) {
  Trie t = Trie().put(key_of(1), val_of(1)).put(key_of(1), val_of(99));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(*t.get(key_of(1)), val_of(99));
}

TEST(Trie, PersistenceOldVersionUnchanged) {
  Trie v1 = Trie().put(key_of(1), val_of(1));
  Trie v2 = v1.put(key_of(2), val_of(2));
  Trie v3 = v2.put(key_of(1), val_of(111));

  EXPECT_EQ(v1.size(), 1u);
  EXPECT_FALSE(v1.contains(key_of(2)));
  EXPECT_EQ(*v2.get(key_of(1)), val_of(1));
  EXPECT_EQ(*v3.get(key_of(1)), val_of(111));
  EXPECT_EQ(*v3.get(key_of(2)), val_of(2));
}

TEST(Trie, EraseRemovesAndRebalances) {
  Trie t;
  for (std::uint64_t i = 0; i < 20; ++i) t = t.put(key_of(i), val_of(i));
  const Hash256 with_all = t.root_hash();

  Trie t2 = t.erase(key_of(7));
  EXPECT_EQ(t2.size(), 19u);
  EXPECT_FALSE(t2.contains(key_of(7)));
  EXPECT_TRUE(t2.contains(key_of(8)));
  EXPECT_NE(t2.root_hash(), with_all);

  // Erase of missing key is a no-op.
  Trie t3 = t2.erase(key_of(7));
  EXPECT_EQ(t3.size(), 19u);
  EXPECT_EQ(t3.root_hash(), t2.root_hash());
}

TEST(Trie, EraseToEmptyMatchesFreshTrie) {
  Trie t = Trie().put(key_of(1), val_of(1)).put(key_of(2), val_of(2));
  t = t.erase(key_of(1)).erase(key_of(2));
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.root_hash(), Trie().root_hash());
}

TEST(Trie, RootIndependentOfInsertionOrder) {
  std::vector<std::uint64_t> ids;
  for (std::uint64_t i = 0; i < 64; ++i) ids.push_back(i);

  Trie forward;
  for (auto i : ids) forward = forward.put(key_of(i), val_of(i));

  Rng rng(17);
  for (int round = 0; round < 5; ++round) {
    rng.shuffle(ids);
    Trie shuffled;
    for (auto i : ids) shuffled = shuffled.put(key_of(i), val_of(i));
    EXPECT_EQ(shuffled.root_hash(), forward.root_hash()) << round;
  }
}

TEST(Trie, RootChangesWithAnyValue) {
  Trie t;
  for (std::uint64_t i = 0; i < 10; ++i) t = t.put(key_of(i), val_of(i));
  const Hash256 base = t.root_hash();
  Trie modified = t.put(key_of(3), to_bytes("different"));
  EXPECT_NE(modified.root_hash(), base);
}

TEST(Trie, InsertEraseRoundTripRestoresRoot) {
  Trie t;
  for (std::uint64_t i = 0; i < 32; ++i) t = t.put(key_of(i), val_of(i));
  const Hash256 base = t.root_hash();
  Trie t2 = t.put(key_of(1000), val_of(1000)).erase(key_of(1000));
  EXPECT_EQ(t2.root_hash(), base);
}

TEST(Trie, ForEachVisitsAllInOrder) {
  Trie t;
  const std::size_t n = 50;
  for (std::uint64_t i = 0; i < n; ++i) t = t.put(key_of(i), val_of(i));

  std::vector<Nibbles> keys;
  std::size_t count = 0;
  t.for_each([&](const Nibbles& k, const Bytes&) {
    keys.push_back(k);
    ++count;
  });
  EXPECT_EQ(count, n);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  for (const auto& k : keys) EXPECT_EQ(k.size(), 64u);  // full-depth keys
}

TEST(Trie, StructuralSharingMeasuredAsDeltas) {
  Trie v1;
  for (std::uint64_t i = 0; i < 100; ++i) v1 = v1.put(key_of(i), val_of(i));
  Trie v2 = v1.put(key_of(3), to_bytes("updated"));

  auto [n1, b1] = v1.measure();
  std::unordered_set<const Trie::Node*> seen;
  auto [first_n, first_b] = v1.collect_nodes(seen);
  auto [delta_n, delta_b] = v2.collect_nodes(seen);

  EXPECT_EQ(first_n, n1);
  // The second version adds only the rewritten path, far less than a copy.
  EXPECT_GT(delta_n, 0u);
  EXPECT_LT(delta_n, n1 / 4);
  EXPECT_GT(first_b, 0u);
  EXPECT_GT(delta_b, 0u);
}

TEST(Trie, ProofVerifies) {
  Trie t;
  for (std::uint64_t i = 0; i < 40; ++i) t = t.put(key_of(i), val_of(i));
  const Hash256 root = t.root_hash();
  for (std::uint64_t i = 0; i < 40; ++i) {
    auto proof = t.prove(key_of(i));
    ASSERT_TRUE(proof.has_value()) << i;
    EXPECT_TRUE(Trie::verify_proof(root, key_of(i), val_of(i), *proof)) << i;
  }
}

TEST(Trie, ProofRejectsWrongValue) {
  Trie t;
  for (std::uint64_t i = 0; i < 10; ++i) t = t.put(key_of(i), val_of(i));
  auto proof = t.prove(key_of(4));
  ASSERT_TRUE(proof.has_value());
  EXPECT_FALSE(
      Trie::verify_proof(t.root_hash(), key_of(4), to_bytes("fake"), *proof));
}

TEST(Trie, ProofRejectsWrongRoot) {
  Trie t;
  for (std::uint64_t i = 0; i < 10; ++i) t = t.put(key_of(i), val_of(i));
  auto proof = t.prove(key_of(4));
  ASSERT_TRUE(proof.has_value());
  Hash256 bad_root = t.root_hash();
  bad_root.v[0] ^= 1;
  EXPECT_FALSE(Trie::verify_proof(bad_root, key_of(4), val_of(4), *proof));
}

TEST(Trie, ProofForAbsentKeyIsNull) {
  Trie t = Trie().put(key_of(1), val_of(1));
  EXPECT_FALSE(t.prove(key_of(999)).has_value());
}

class TrieRandomOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieRandomOps, MatchesReferenceMap) {
  // Property: the trie behaves exactly like a std::map under random
  // puts/erases, and equal content implies equal roots.
  Rng rng(GetParam());
  Trie t;
  std::map<std::uint64_t, Bytes> reference;

  for (int op = 0; op < 400; ++op) {
    const std::uint64_t id = rng.uniform(60);
    if (rng.chance(0.3) && !reference.empty()) {
      t = t.erase(key_of(id));
      reference.erase(id);
    } else {
      Bytes v = val_of(rng.next() % 1000);
      t = t.put(key_of(id), v);
      reference[id] = v;
    }
  }

  EXPECT_EQ(t.size(), reference.size());
  for (const auto& [id, v] : reference) {
    auto got = t.get(key_of(id));
    ASSERT_TRUE(got.has_value()) << id;
    EXPECT_EQ(*got, v);
  }

  // Rebuild from scratch in sorted order: same root.
  Trie rebuilt;
  for (const auto& [id, v] : reference) rebuilt = rebuilt.put(key_of(id), v);
  EXPECT_EQ(rebuilt.root_hash(), t.root_hash());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieRandomOps,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace dlt::crypto
