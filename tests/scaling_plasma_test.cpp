// Plasma child chains (paper §VI-A): commitments, exits with Merkle
// proofs, fraud proofs and operator slashing.
#include <gtest/gtest.h>

#include "scaling/plasma.hpp"

namespace dlt::scaling {
namespace {

class PlasmaTest : public ::testing::Test {
 protected:
  PlasmaTest()
      : alice(crypto::KeyPair::from_seed(1)),
        bob(crypto::KeyPair::from_seed(2)),
        rng(3),
        contract(10'000),
        op(contract, /*block_tx_limit=*/100) {
    op.sync_deposit(alice.account_id(), 5000);
    op.sync_deposit(bob.account_id(), 1000);
  }

  PlasmaTx transfer(const crypto::KeyPair& from,
                    const crypto::AccountId& to, Amount amount,
                    std::uint64_t nonce) {
    PlasmaTx tx;
    tx.to = to;
    tx.amount = amount;
    tx.nonce = nonce;
    tx.sign(from, rng);
    return tx;
  }

  crypto::KeyPair alice, bob;
  Rng rng;
  PlasmaContract contract;
  PlasmaOperator op;
};

TEST_F(PlasmaTest, DepositsTracked) {
  EXPECT_EQ(contract.total_deposits(), 6000u);
  EXPECT_EQ(op.balance_of(alice.account_id()), 5000u);
  EXPECT_EQ(op.balance_of(bob.account_id()), 1000u);
}

TEST_F(PlasmaTest, TransferAndSeal) {
  ASSERT_TRUE(op.submit(transfer(alice, bob.account_id(), 700, 0)).ok());
  EXPECT_EQ(op.pending(), 1u);
  auto block = op.seal_and_commit();
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->txs.size(), 1u);
  EXPECT_EQ(op.balance_of(bob.account_id()), 1700u);
  EXPECT_EQ(contract.commitments(), 1u);
  // Only a 32-byte root hit the "root chain", not the transaction.
  EXPECT_EQ(*contract.committed_root(0), block->merkle_root);
}

TEST_F(PlasmaTest, InvalidSubmissionsRejected) {
  EXPECT_FALSE(op.submit(transfer(alice, bob.account_id(), 700, 5)).ok());
  EXPECT_FALSE(op.submit(transfer(alice, bob.account_id(), 99'999, 0)).ok());
  PlasmaTx bad = transfer(alice, bob.account_id(), 10, 0);
  bad.amount = 20;
  EXPECT_FALSE(op.submit(bad).ok());
  EXPECT_EQ(op.pending(), 0u);
}

TEST_F(PlasmaTest, SealRespectsTxLimit) {
  PlasmaOperator small(contract, 2);
  small.sync_deposit(alice.account_id(), 100);
  for (std::uint64_t i = 0; i < 5; ++i)
    ASSERT_TRUE(small.submit(transfer(alice, bob.account_id(), 1, i)).ok());
  auto block = small.seal_and_commit();
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->txs.size(), 2u);
  EXPECT_EQ(small.pending(), 3u);
}

TEST_F(PlasmaTest, ExitWithValidProof) {
  ASSERT_TRUE(op.submit(transfer(alice, bob.account_id(), 700, 0)).ok());
  ASSERT_TRUE(op.submit(transfer(alice, bob.account_id(), 300, 1)).ok());
  auto block = op.seal_and_commit();
  ASSERT_TRUE(block.has_value());

  auto proof = op.prove(block->number, 0);
  ASSERT_TRUE(proof.ok());
  Status st = contract.exit(bob.account_id(), 700, block->number,
                            block->txs[0], 0, *proof);
  EXPECT_TRUE(st.ok()) << st.to_string();
}

TEST_F(PlasmaTest, ExitWithWrongProofRejected) {
  ASSERT_TRUE(op.submit(transfer(alice, bob.account_id(), 700, 0)).ok());
  ASSERT_TRUE(op.submit(transfer(alice, bob.account_id(), 300, 1)).ok());
  auto block = op.seal_and_commit();
  auto proof = op.prove(block->number, 1);  // proof for the other tx
  ASSERT_TRUE(proof.ok());
  EXPECT_EQ(contract
                .exit(bob.account_id(), 700, block->number, block->txs[0], 0,
                      *proof)
                .error()
                .code,
            "bad-proof");
}

TEST_F(PlasmaTest, ExitByNonBeneficiaryRejected) {
  ASSERT_TRUE(op.submit(transfer(alice, bob.account_id(), 700, 0)).ok());
  auto block = op.seal_and_commit();
  auto proof = op.prove(block->number, 0);
  EXPECT_EQ(contract
                .exit(alice.account_id(), 700, block->number, block->txs[0],
                      0, *proof)
                .error()
                .code,
            "not-beneficiary");
}

TEST_F(PlasmaTest, FraudProofSlashesOperator) {
  // "For faulty states, stakeholders need to display proof of fraud and
  // the Byzantine node gets penalized" (§VI-A).
  PlasmaTx forged = transfer(alice, bob.account_id(), 999, 0);
  forged.signature.s ^= 1;  // invalid signature sneaked into a block
  PlasmaBlock bad = op.seal_with_forgery(forged);

  const std::size_t idx = bad.txs.size() - 1;
  auto proof = op.prove(bad.number, idx);
  ASSERT_TRUE(proof.ok());
  Status st = contract.challenge(bad.number, forged, idx, *proof);
  EXPECT_TRUE(st.ok()) << st.to_string();
  EXPECT_TRUE(contract.operator_slashed());
  EXPECT_EQ(contract.operator_bond(), 0u);
}

TEST_F(PlasmaTest, ChallengeAgainstValidTxFails) {
  ASSERT_TRUE(op.submit(transfer(alice, bob.account_id(), 10, 0)).ok());
  auto block = op.seal_and_commit();
  auto proof = op.prove(block->number, 0);
  EXPECT_EQ(
      contract.challenge(block->number, block->txs[0], 0, *proof).error().code,
      "no-fraud");
  EXPECT_FALSE(contract.operator_slashed());
}

TEST_F(PlasmaTest, ThroughputAmplification) {
  // 100 child transfers commit as a single 32-byte root: the §VI-A point.
  for (std::uint64_t i = 0; i < 100; ++i)
    ASSERT_TRUE(op.submit(transfer(alice, bob.account_id(), 1, i)).ok());
  auto block = op.seal_and_commit();
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->txs.size(), 100u);
  EXPECT_EQ(contract.commitments(), 1u);
}

}  // namespace
}  // namespace dlt::scaling
