// Differential harness for the pluggable storage layer (ISSUE 9).
//
// The storage determinism contract (DESIGN.md): in-RAM structures stay
// authoritative in both modes, writes go through at the same commit
// points, and every byte-accounting figure is mode-independent
// arithmetic. Hence flipping StorageConfig::mode between memory and disk
// must leave traces byte-identical, RunMetrics equal, and every
// non-wall-clock registry metric — including the storage.* gauges
// themselves — byte-identical per seed, for all three ledger families.
//
// The recovery half kills the writer mid-append (chops bytes off the last
// log segment, i.e. a torn frame), reopens, and asserts the replayed
// ledger converges to the same tips/heads/state as a clean run of the
// surviving prefix — plus reopen idempotence (replaying twice is a no-op).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "chain_test_util.hpp"
#include "core/chain_cluster.hpp"
#include "core/lattice_cluster.hpp"
#include "core/tangle_cluster.hpp"
#include "core/workload.hpp"
#include "lattice_test_util.hpp"
#include "storage/ledger_store.hpp"

namespace dlt {
namespace {

/// Fresh scratch directory per test, removed on destruction.
struct ScratchDir {
  std::filesystem::path path;
  explicit ScratchDir(const std::string& tag) {
    path = std::filesystem::temp_directory_path() /
           ("dlt_storage_eq_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

storage::StorageConfig disk_config(const ScratchDir& scratch) {
  storage::StorageConfig cfg;
  cfg.mode = storage::StorageMode::kDisk;
  cfg.path = scratch.str();
  return cfg;
}

/// Chops `n` bytes off the end of the newest log segment in `dir` —
/// simulating a writer killed mid-append (torn final frame).
void chop_last_segment(const std::string& dir, std::uint64_t n) {
  std::filesystem::path last;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 5 && name.substr(name.size() - 5) == ".dlog" &&
        (last.empty() || entry.path().filename() > last.filename()))
      last = entry.path();
  }
  ASSERT_FALSE(last.empty()) << "no log segment in " << dir;
  const std::uint64_t size = std::filesystem::file_size(last);
  ASSERT_GT(size, n);
  std::filesystem::resize_file(last, size - n);
}

void expect_run_metrics_eq(const core::RunMetrics& a,
                           const core::RunMetrics& b) {
  EXPECT_EQ(a.system, b.system);
  EXPECT_DOUBLE_EQ(a.sim_duration, b.sim_duration);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.included, b.included);
  EXPECT_EQ(a.confirmed, b.confirmed);
  EXPECT_EQ(a.pending_end, b.pending_end);
  EXPECT_EQ(a.reorgs, b.reorgs);
  EXPECT_EQ(a.orphaned_blocks, b.orphaned_blocks);
  EXPECT_EQ(a.max_reorg_depth, b.max_reorg_depth);
  EXPECT_EQ(a.blocks_produced, b.blocks_produced);
  EXPECT_EQ(a.stored_bytes, b.stored_bytes);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.message_bytes, b.message_bytes);
  EXPECT_EQ(a.inclusion_latency.count(), b.inclusion_latency.count());
  EXPECT_EQ(a.confirmation_latency.count(), b.confirmation_latency.count());
}

// ----------------------------------------------- registry JSON filtering

bool volatile_metric(const std::string& key) {
  return key.find("profile.") != std::string::npos ||
         key.find("_us") != std::string::npos ||
         key.find(".workers") != std::string::npos;
}

/// Same linear-scan filter as the state-sharding harness: drops wall-clock
/// members, keeps everything else — including the storage.* gauges, which
/// the determinism contract requires to be numerically identical across
/// modes (byte accounting is pure arithmetic, never file-system feedback).
std::string filter_registry_json(const std::string& obj) {
  std::string out = "{";
  bool first = true;
  std::size_t i = 1;
  while (i + 1 < obj.size()) {
    if (obj[i] == ',') {
      ++i;
      continue;
    }
    const std::size_t key_end = obj.find('"', i + 1);
    const std::string key = obj.substr(i + 1, key_end - i - 1);
    i = key_end + 2;
    const std::size_t value_start = i;
    if (obj[i] == '{') {
      int depth = 0;
      do {
        if (obj[i] == '{') ++depth;
        if (obj[i] == '}') --depth;
        ++i;
      } while (depth > 0);
    } else {
      while (i + 1 < obj.size() && obj[i] != ',') ++i;
    }
    std::string value = obj.substr(value_start, i - value_start);
    if (volatile_metric(key)) continue;
    if (!value.empty() && value[0] == '{') value = filter_registry_json(value);
    if (!first) out += ',';
    first = false;
    out += '"';
    out += key;
    out += "\":";
    out += value;
  }
  out += '}';
  return out;
}

// ------------------------------------------- cluster differential: chain

struct ChainOutcome {
  std::string trace;
  core::RunMetrics metrics;
  chain::BlockHash tip;
  bool converged = false;
  std::string registry_json;
};

core::ChainClusterConfig chain_base_config(chain::ChainParams params) {
  core::ChainClusterConfig cfg;
  cfg.params = std::move(params);
  cfg.params.verify_pow = false;
  cfg.params.initial_difficulty = 1e6;
  cfg.params.block_interval = 5.0;
  cfg.params.retarget_window = 0;
  cfg.node_count = 4;
  cfg.miner_count = 3;
  cfg.total_hashrate = 1e6 / 5.0;
  cfg.account_count = 8;
  cfg.link = net::LinkParams{1.0, 0.3, 1e7};
  cfg.seed = 11;
  cfg.obs.trace_capacity = 1u << 16;
  return cfg;
}

ChainOutcome run_chain(core::ChainClusterConfig cfg) {
  core::ChainCluster cluster(cfg);
  cluster.start();
  Rng wl_rng(7);
  core::WorkloadConfig wl;
  wl.account_count = cfg.account_count;
  wl.tx_rate = 0.5;
  wl.duration = 300.0;
  cluster.schedule_workload(core::generate_payments(wl, wl_rng));
  cluster.run_for(400.0);

  ChainOutcome out;
  out.trace = cluster.tracer().to_jsonl();
  out.metrics = cluster.metrics();
  out.tip = cluster.node(0).chain().tip_hash();
  out.converged = cluster.converged();
  out.registry_json =
      filter_registry_json(cluster.metrics_registry().to_json().to_string());
  return out;
}

void expect_chain_modes_equal(chain::ChainParams params, const char* tag) {
  const ChainOutcome mem = run_chain(chain_base_config(params));
  EXPECT_TRUE(mem.converged);
  EXPECT_GT(mem.metrics.included, 0u);
  // The memory run's registry must already carry the storage gauges.
  EXPECT_NE(mem.registry_json.find("storage.log_bytes"), std::string::npos);

  ScratchDir scratch(tag);
  core::ChainClusterConfig cfg = chain_base_config(params);
  cfg.storage = disk_config(scratch);
  const ChainOutcome disk = run_chain(cfg);

  EXPECT_EQ(disk.trace, mem.trace);
  expect_run_metrics_eq(disk.metrics, mem.metrics);
  EXPECT_EQ(disk.tip, mem.tip);
  EXPECT_TRUE(disk.converged);
  EXPECT_EQ(disk.registry_json, mem.registry_json);
  // The disk run wrote real files.
  EXPECT_FALSE(std::filesystem::is_empty(scratch.path));
}

TEST(StorageEquivalence, ChainUtxoClusterDiskMatchesMemory) {
  expect_chain_modes_equal(chain::bitcoin_like(), "chain_utxo");
}

TEST(StorageEquivalence, ChainAccountClusterDiskMatchesMemory) {
  expect_chain_modes_equal(chain::ethereum_like(), "chain_account");
}

// ----------------------------------------- cluster differential: lattice

struct LatticeOutcome {
  std::string trace;
  core::RunMetrics metrics;
  bool converged = false;
  std::vector<lattice::Amount> balances;
  std::string registry_json;
};

LatticeOutcome run_lattice(const storage::StorageConfig& storage) {
  core::LatticeClusterConfig cfg;
  cfg.node_count = 3;
  cfg.representative_count = 2;
  cfg.account_count = 6;
  cfg.params.work_bits = 2;
  cfg.seed = 99;
  cfg.obs.trace_capacity = 1u << 16;
  cfg.storage = storage;
  core::LatticeCluster cluster(cfg);
  cluster.fund_accounts();
  Rng wl_rng(42);
  core::WorkloadConfig wl;
  wl.account_count = 6;
  wl.tx_rate = 1.0;
  wl.duration = 30.0;
  wl.max_amount = 1000;
  cluster.schedule_workload(core::generate_payments(wl, wl_rng));
  cluster.run_for(60.0);

  LatticeOutcome out;
  out.trace = cluster.tracer().to_jsonl();
  out.metrics = cluster.metrics();
  out.converged = cluster.converged();
  const lattice::Ledger& ledger = cluster.node(0).ledger();
  for (std::size_t i = 0; i < cfg.account_count; ++i)
    out.balances.push_back(ledger.balance_of(cluster.account(i).account_id()));
  out.registry_json =
      filter_registry_json(cluster.metrics_registry().to_json().to_string());
  return out;
}

TEST(StorageEquivalence, LatticeClusterDiskMatchesMemory) {
  const LatticeOutcome mem = run_lattice({});
  EXPECT_TRUE(mem.converged);
  EXPECT_GT(mem.metrics.included, 0u);

  ScratchDir scratch("lattice");
  const LatticeOutcome disk = run_lattice(disk_config(scratch));
  EXPECT_EQ(disk.trace, mem.trace);
  expect_run_metrics_eq(disk.metrics, mem.metrics);
  EXPECT_TRUE(disk.converged);
  EXPECT_EQ(disk.balances, mem.balances);
  EXPECT_EQ(disk.registry_json, mem.registry_json);
  EXPECT_FALSE(std::filesystem::is_empty(scratch.path));
}

// ------------------------------------------ cluster differential: tangle

struct TangleOutcome {
  std::string trace;
  core::RunMetrics metrics;
  bool converged = false;
  std::size_t size = 0;
  std::vector<tangle::TxHash> tips;
  std::string registry_json;
};

TangleOutcome run_tangle(const storage::StorageConfig& storage) {
  core::TangleClusterConfig cfg;
  cfg.node_count = 4;
  cfg.account_count = 8;
  cfg.params.work_bits = 2;
  cfg.seed = 5;
  cfg.obs.trace_capacity = 1u << 16;
  cfg.storage = storage;
  core::TangleCluster cluster(cfg);
  cluster.start();
  Rng wl_rng(3);
  core::WorkloadConfig wl;
  wl.account_count = 8;
  wl.tx_rate = 2.0;
  wl.duration = 15.0;
  wl.max_amount = 100;
  cluster.schedule_workload(core::generate_payments(wl, wl_rng));
  cluster.run_for(40.0);

  TangleOutcome out;
  out.trace = cluster.tracer().to_jsonl();
  out.metrics = cluster.metrics();
  out.converged = cluster.converged();
  out.size = cluster.node(0).tangle().size();
  out.tips = cluster.node(0).tangle().tips();
  out.registry_json =
      filter_registry_json(cluster.metrics_registry().to_json().to_string());
  return out;
}

TEST(StorageEquivalence, TangleClusterDiskMatchesMemory) {
  const TangleOutcome mem = run_tangle({});
  EXPECT_TRUE(mem.converged);
  EXPECT_GT(mem.size, 1u);

  ScratchDir scratch("tangle");
  const TangleOutcome disk = run_tangle(disk_config(scratch));
  EXPECT_EQ(disk.trace, mem.trace);
  expect_run_metrics_eq(disk.metrics, mem.metrics);
  EXPECT_TRUE(disk.converged);
  EXPECT_EQ(disk.size, mem.size);
  EXPECT_EQ(disk.tips, mem.tips);
  EXPECT_EQ(disk.registry_json, mem.registry_json);
  EXPECT_FALSE(std::filesystem::is_empty(scratch.path));
}

// ----------------------------------------------- crash recovery: chain

TEST(StorageRecovery, ChainReopenIdempotentAndTornTailConverges) {
  const auto keys = chain::testutil::make_keys(2);
  const chain::GenesisSpec genesis = chain::testutil::fund_all(keys, 1'000'000);
  const crypto::AccountId miner = keys[0].account_id();
  const chain::ChainParams params = chain::testutil::cheap_pow_utxo();

  ScratchDir scratch("chain_crash");
  const storage::StorageConfig scfg = disk_config(scratch);

  std::vector<chain::BlockHash> tips;  // tip after each block
  std::string dir;
  {
    chain::Blockchain chain(params, genesis);
    auto store = std::make_shared<storage::LedgerStore>(scfg, "chain");
    chain.attach_store(store);
    dir = store->dir();
    for (std::uint64_t h = 1; h <= 3; ++h) {
      const chain::Block b = chain::testutil::seal_block(
          chain, chain.tip_hash(),
          chain::UtxoTxList{chain::UtxoTransaction::coinbase(
              miner, params.block_reward, h)},
          miner);
      ASSERT_TRUE(chain.submit(b));
      tips.push_back(chain.tip_hash());
    }
  }  // writer exits cleanly: segments flushed and closed

  // Clean reopen: replay reconstructs the full chain; replaying again is
  // a no-op (reopen idempotence).
  {
    chain::Blockchain chain(params, genesis);
    auto store =
        std::make_shared<storage::LedgerStore>(scfg, "chain", false);
    EXPECT_EQ(store->log().truncated_tail_bytes(), 0u);
    chain.attach_store(store);
    EXPECT_EQ(chain.replay_from_store(), 3u);
    EXPECT_EQ(chain.tip_hash(), tips[2]);
    EXPECT_EQ(chain.replay_from_store(), 0u);
    EXPECT_EQ(chain.tip_hash(), tips[2]);
  }

  // Kill the writer mid-append: chop into the last frame (block 3's body
  // record). Recovery drops the torn record; the replayed chain converges
  // to the clean prefix — tip at height 2.
  chop_last_segment(dir, 8);
  {
    chain::Blockchain chain(params, genesis);
    auto store =
        std::make_shared<storage::LedgerStore>(scfg, "chain", false);
    EXPECT_GT(store->log().truncated_tail_bytes(), 0u);
    chain.attach_store(store);
    EXPECT_EQ(chain.replay_from_store(), 2u);
    EXPECT_EQ(chain.tip_hash(), tips[1]);
    EXPECT_EQ(chain.height(), 2u);
  }
}

// ---------------------------------------------- crash recovery: lattice

TEST(StorageRecovery, LatticeReopenIdempotentAndTornTailConverges) {
  const lattice::LatticeParams params = lattice::testutil::cheap_params();
  const crypto::KeyPair genesis_key = crypto::KeyPair::from_seed(1);
  const crypto::KeyPair alice = crypto::KeyPair::from_seed(0x500);
  constexpr lattice::Amount kSupply = 1'000'000;

  ScratchDir scratch("lattice_crash");
  const storage::StorageConfig scfg = disk_config(scratch);

  std::vector<lattice::LatticeBlock> blocks;
  lattice::BlockHash full_head, prefix_head;
  std::string dir;
  {
    lattice::Ledger ledger(params, genesis_key.account_id(),
                           genesis_key.account_id(), kSupply);
    auto store = std::make_shared<storage::LedgerStore>(scfg, "lat");
    ledger.attach_store(store);
    dir = store->dir();
    Rng rng(9);
    lattice::testutil::Builder build{ledger, rng, params.work_bits};
    blocks.push_back(build.send(genesis_key, alice.account_id(), 10'000));
    ASSERT_TRUE(ledger.process(blocks.back()).ok());
    blocks.push_back(build.open(alice, blocks[0].hash(), 10'000,
                                genesis_key.account_id()));
    ASSERT_TRUE(ledger.process(blocks.back()).ok());
    blocks.push_back(build.send(
        alice, crypto::KeyPair::from_seed(0x501).account_id(), 11));
    ASSERT_TRUE(ledger.process(blocks.back()).ok());
    prefix_head = ledger.head_of(alice.account_id()).value();
    blocks.push_back(build.send(
        alice, crypto::KeyPair::from_seed(0x502).account_id(), 12));
    ASSERT_TRUE(ledger.process(blocks.back()).ok());
    full_head = ledger.head_of(alice.account_id()).value();
  }

  {
    lattice::Ledger ledger(params, genesis_key.account_id(),
                           genesis_key.account_id(), kSupply);
    auto store = std::make_shared<storage::LedgerStore>(scfg, "lat", false);
    ledger.attach_store(store);
    EXPECT_EQ(ledger.replay_from_store(), 4u);
    EXPECT_EQ(ledger.head_of(alice.account_id()), full_head);
    EXPECT_TRUE(ledger.conserves_value());
    EXPECT_EQ(ledger.replay_from_store(), 0u);
  }

  // Torn final kBlock frame: replay converges to the surviving prefix.
  chop_last_segment(dir, 8);
  {
    lattice::Ledger ledger(params, genesis_key.account_id(),
                           genesis_key.account_id(), kSupply);
    auto store = std::make_shared<storage::LedgerStore>(scfg, "lat", false);
    EXPECT_GT(store->log().truncated_tail_bytes(), 0u);
    ledger.attach_store(store);
    EXPECT_EQ(ledger.replay_from_store(), 3u);
    EXPECT_EQ(ledger.head_of(alice.account_id()), prefix_head);
    EXPECT_TRUE(ledger.conserves_value());
  }
}

// ----------------------------------------------- crash recovery: tangle

TEST(StorageRecovery, TangleReopenIdempotentAndTornTailConverges) {
  tangle::TangleParams params;
  params.work_bits = 2;
  const crypto::KeyPair issuer = crypto::KeyPair::from_seed(2);

  ScratchDir scratch("tangle_crash");
  const storage::StorageConfig scfg = disk_config(scratch);

  std::vector<tangle::TangleTx> txs;
  std::vector<tangle::TxHash> full_tips, prefix_tips;
  std::string dir;
  {
    tangle::Tangle ref(params);
    auto store = std::make_shared<storage::LedgerStore>(scfg, "tgl");
    ref.attach_store(store);
    dir = store->dir();
    Rng rng(4);
    for (int i = 0; i < 5; ++i) {
      const tangle::TxHash trunk = ref.select_tip(rng);
      const tangle::TxHash branch = ref.select_tip(rng);
      tangle::TangleTx tx = tangle::make_tx(
          ref, issuer, trunk, branch,
          crypto::Sha256::digest(as_bytes("rec-" + std::to_string(i))),
          static_cast<double>(i), rng);
      ASSERT_TRUE(ref.attach(tx).ok());
      txs.push_back(tx);
      if (i == 3) prefix_tips = ref.tips();
    }
    full_tips = ref.tips();
  }

  {
    tangle::Tangle got(params);
    auto store = std::make_shared<storage::LedgerStore>(scfg, "tgl", false);
    got.attach_store(store);
    EXPECT_EQ(got.replay_from_store(), 5u);
    EXPECT_EQ(got.size(), 6u);  // genesis + 5
    EXPECT_EQ(got.tips(), full_tips);
    EXPECT_EQ(got.replay_from_store(), 0u);
  }

  // Torn final kSite frame: the last transaction is dropped; the replica
  // converges to the 4-transaction prefix, tip set included.
  chop_last_segment(dir, 8);
  {
    tangle::Tangle got(params);
    auto store = std::make_shared<storage::LedgerStore>(scfg, "tgl", false);
    EXPECT_GT(store->log().truncated_tail_bytes(), 0u);
    got.attach_store(store);
    EXPECT_EQ(got.replay_from_store(), 4u);
    EXPECT_EQ(got.size(), 5u);
    EXPECT_EQ(got.tips(), prefix_tips);
  }
}

// ------------------------------------- pruning as log-catalog operations
// Memory mode suffices here: the equivalence tests above prove the
// accounting is mode-independent, so byte movements are identical on disk.

TEST(StoragePruning, ChainBodyPruneShrinksLogKeepsTip) {
  const auto keys = chain::testutil::make_keys(1);
  const chain::GenesisSpec genesis = chain::testutil::fund_all(keys, 1'000'000);
  const crypto::AccountId miner = keys[0].account_id();
  const chain::ChainParams params = chain::testutil::cheap_pow_utxo();

  chain::Blockchain chain(params, genesis);
  auto store = std::make_shared<storage::LedgerStore>(
      storage::StorageConfig{}, "prune-chain");
  chain.attach_store(store);
  for (std::uint64_t h = 1; h <= 6; ++h) {
    const chain::Block b = chain::testutil::seal_block(
        chain, chain.tip_hash(),
        chain::UtxoTxList{
            chain::UtxoTransaction::coinbase(miner, params.block_reward, h)},
        miner);
    ASSERT_TRUE(chain.submit(b));
  }
  const chain::BlockHash tip = chain.tip_hash();
  const std::uint64_t before = store->log_bytes();

  EXPECT_GT(chain.prune_bodies(2), 0u);
  EXPECT_LT(store->log_bytes(), before);
  EXPECT_GT(store->pruned_bytes(), 0u);
  EXPECT_EQ(chain.tip_hash(), tip);
  // Headers survive body pruning: header-only history remains readable.
  EXPECT_TRUE(store->log().contains(storage::RecordType::kHeader, tip));
}

TEST(StoragePruning, ChainStatePruneShrinksLogKeepsState) {
  const auto keys = chain::testutil::make_keys(2);
  const chain::GenesisSpec genesis = chain::testutil::fund_all(keys, 1'000'000);
  const crypto::AccountId proposer = keys[0].account_id();
  const chain::ChainParams params = chain::testutil::cheap_pow_account();
  Rng rng(6);

  chain::Blockchain chain(params, genesis);
  auto store = std::make_shared<storage::LedgerStore>(
      storage::StorageConfig{}, "prune-acct");
  chain.attach_store(store);
  for (std::uint64_t nonce = 0; nonce < 6; ++nonce) {
    chain::AccountTransaction tx;
    tx.to = keys[1].account_id();
    tx.value = 100;
    tx.nonce = nonce;
    tx.gas_limit = tx.intrinsic_gas();
    tx.gas_price = 1;
    tx.sign(keys[0], rng);
    const chain::Block b = chain::testutil::seal_account_tip(
        chain, chain::AccountTxList{std::move(tx)}, proposer);
    ASSERT_TRUE(chain.submit(b));
  }
  const chain::BlockHash tip = chain.tip_hash();
  const auto balance = chain.world_state().balance_of(keys[1].account_id());
  const std::uint64_t before = store->log_bytes();

  EXPECT_GT(chain.prune_states(2), 0u);
  EXPECT_LT(store->log_bytes(), before);
  EXPECT_GT(store->pruned_bytes(), 0u);
  EXPECT_EQ(chain.tip_hash(), tip);
  EXPECT_EQ(chain.world_state().balance_of(keys[1].account_id()), balance);
}

TEST(StoragePruning, LatticeHeadOnlyPruneShrinksLogKeepsHeads) {
  const lattice::LatticeParams params = lattice::testutil::cheap_params();
  const crypto::KeyPair genesis_key = crypto::KeyPair::from_seed(1);
  const crypto::KeyPair alice = crypto::KeyPair::from_seed(0x600);
  constexpr lattice::Amount kSupply = 1'000'000;

  lattice::Ledger ledger(params, genesis_key.account_id(),
                         genesis_key.account_id(), kSupply);
  auto store = std::make_shared<storage::LedgerStore>(
      storage::StorageConfig{}, "prune-lat");
  ledger.attach_store(store);
  Rng rng(9);
  lattice::testutil::Builder build{ledger, rng, params.work_bits};
  const lattice::LatticeBlock fund =
      build.send(genesis_key, alice.account_id(), 10'000);
  ASSERT_TRUE(ledger.process(fund).ok());
  ASSERT_TRUE(
      ledger
          .process(build.open(alice, fund.hash(), 10'000,
                              genesis_key.account_id()))
          .ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ledger
                    .process(build.send(
                        alice,
                        crypto::KeyPair::from_seed(0x610 + i).account_id(),
                        10 + i))
                    .ok());
  }
  const lattice::BlockHash head = ledger.head_of(alice.account_id()).value();
  // Only cemented history may be pruned (§IV-B irreversibility).
  ASSERT_TRUE(ledger.cement(head).ok());
  const std::uint64_t before = store->log_bytes();

  EXPECT_GT(ledger.prune_history(), 0u);
  EXPECT_LT(store->log_bytes(), before);
  EXPECT_GT(store->pruned_bytes(), 0u);
  EXPECT_EQ(ledger.head_of(alice.account_id()), head);
  // The head block's record survives (the §V-B "current" node keeps it).
  EXPECT_TRUE(store->log().contains(storage::RecordType::kBlock, head));
}

TEST(StoragePruning, TangleHeadOnlyPruneShrinksLogKeepsTips) {
  tangle::TangleParams params;
  params.work_bits = 2;
  const crypto::KeyPair issuer = crypto::KeyPair::from_seed(3);

  tangle::Tangle tangle(params);
  auto store = std::make_shared<storage::LedgerStore>(
      storage::StorageConfig{}, "prune-tgl");
  tangle.attach_store(store);
  Rng rng(5);
  for (int i = 0; i < 8; ++i) {
    const tangle::TxHash trunk = tangle.select_tip(rng);
    const tangle::TxHash branch = tangle.select_tip(rng);
    ASSERT_TRUE(tangle
                    .attach(tangle::make_tx(
                        tangle, issuer, trunk, branch,
                        crypto::Sha256::digest(
                            as_bytes("pr-" + std::to_string(i))),
                        static_cast<double>(i), rng))
                    .ok());
  }
  const auto tips = tangle.tips();
  const std::size_t size = tangle.size();
  const std::uint64_t before = store->log_bytes();

  EXPECT_GT(tangle.prune_history(), 0u);
  EXPECT_LT(store->log_bytes(), before);
  EXPECT_GT(store->pruned_bytes(), 0u);
  // Storage-only discipline: the in-RAM DAG is untouched.
  EXPECT_EQ(tangle.tips(), tips);
  EXPECT_EQ(tangle.size(), size);
  for (const tangle::TxHash& tip : tips)
    EXPECT_TRUE(store->log().contains(storage::RecordType::kSite, tip));
}

// ---------------------------------------- per-tx weights (PR 8 carry-over)

TEST(TangleWeights, RejectsZeroAndOverMaxWeight) {
  tangle::TangleParams params;
  params.work_bits = 2;
  params.max_own_weight = 4;
  tangle::Tangle tangle(params);
  const crypto::KeyPair issuer = crypto::KeyPair::from_seed(7);
  Rng rng(1);

  tangle::TangleTx heavy = tangle::make_tx(
      tangle, issuer, tangle.genesis(), tangle.genesis(),
      crypto::Sha256::digest(as_bytes("w-over")), 1.0, rng, {}, 5);
  const Status over = tangle.attach(heavy);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.error().code, "bad-weight");

  tangle::TangleTx zero = tangle::make_tx(
      tangle, issuer, tangle.genesis(), tangle.genesis(),
      crypto::Sha256::digest(as_bytes("w-zero")), 1.0, rng, {}, 0);
  const Status z = tangle.attach(zero);
  ASSERT_FALSE(z.ok());
  EXPECT_EQ(z.error().code, "bad-weight");

  tangle::TangleTx ok = tangle::make_tx(
      tangle, issuer, tangle.genesis(), tangle.genesis(),
      crypto::Sha256::digest(as_bytes("w-ok")), 1.0, rng, {}, 4);
  EXPECT_TRUE(tangle.attach(ok).ok());
}

TEST(TangleWeights, CumulativeWeightMonotoneInOwnWeight) {
  // A fixed 4-transaction chain issued at own weight W: the cumulative
  // weight of the chain's root is 4W (its future cone is the whole chain)
  // and the genesis sees 1 + 4W. Larger W strictly increases both — the
  // lever the large-weight-spam adversary pulls.
  std::uint64_t prev_root = 0, prev_genesis = 0;
  for (const std::uint64_t w : {1u, 8u, 64u}) {
    tangle::TangleParams params;
    params.work_bits = 2;
    params.max_own_weight = 64;
    tangle::Tangle tangle(params);
    const crypto::KeyPair issuer = crypto::KeyPair::from_seed(11);
    Rng rng(2);
    tangle::TxHash parent = tangle.genesis();
    tangle::TxHash root{};
    for (int i = 0; i < 4; ++i) {
      tangle::TangleTx tx = tangle::make_tx(
          tangle, issuer, parent, parent,
          crypto::Sha256::digest(as_bytes("wm-" + std::to_string(i))),
          static_cast<double>(i), rng, {}, w);
      ASSERT_TRUE(tangle.attach(tx).ok());
      if (i == 0) root = tx.hash();
      parent = tx.hash();
    }
    const std::uint64_t cw_root = tangle.cumulative_weight(root);
    const std::uint64_t cw_genesis = tangle.cumulative_weight(tangle.genesis());
    EXPECT_EQ(cw_root, 4 * w);
    EXPECT_EQ(cw_genesis, 1 + 4 * w);
    EXPECT_GT(cw_root, prev_root);
    EXPECT_GT(cw_genesis, prev_genesis);
    prev_root = cw_root;
    prev_genesis = cw_genesis;
  }
}

}  // namespace
}  // namespace dlt
