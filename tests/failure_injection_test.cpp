// Failure injection: partitions, message loss, and offline nodes, across
// both paradigms. The systems must degrade gracefully and re-converge.
#include <gtest/gtest.h>

#include "core/chain_cluster.hpp"
#include "core/lattice_cluster.hpp"

namespace dlt::core {
namespace {

TEST(ChainPartition, SplitBrainHealsByHeaviestChain) {
  // A partitioned PoW network mines two divergent histories; on healing,
  // the heavier one wins everywhere (paper Fig. 4 at partition scale).
  ChainClusterConfig cfg;
  cfg.params = chain::bitcoin_like();
  cfg.params.verify_pow = false;
  cfg.params.retarget_window = 0;
  cfg.params.block_interval = 20.0;
  cfg.params.initial_difficulty = 1e6;
  cfg.node_count = 6;
  cfg.miner_count = 6;
  cfg.total_hashrate = 1e6 / 20.0;
  cfg.account_count = 4;
  cfg.seed = 19;
  ChainCluster cluster(cfg);
  cluster.start();
  cluster.run_for(100.0);  // shared prefix

  // Partition 5 miners vs 1: the big side mines ~5x faster.
  std::vector<net::NodeId> side_a, side_b;
  for (std::size_t i = 0; i < 5; ++i) side_a.push_back(cluster.node(i).id());
  side_b.push_back(cluster.node(5).id());
  cluster.network().set_partitions({side_a, side_b});
  cluster.run_for(600.0);

  const auto tip_a = cluster.node(0).chain().tip_hash();
  const auto tip_b = cluster.node(5).chain().tip_hash();
  EXPECT_NE(tip_a, tip_b) << "partition should diverge";
  const double work_a = cluster.node(0).chain().total_work();
  const double work_b = cluster.node(5).chain().total_work();
  EXPECT_GT(work_a, work_b) << "majority side accumulates more work";

  // Heal. New blocks gossip across; each side learns the other exists,
  // but only blocks mined after healing propagate (no explicit sync
  // protocol) -- so convergence arrives with the next blocks.
  cluster.network().heal();
  cluster.run_for(600.0);
  // The minority side must have abandoned its branch by now: its tip is
  // a descendant of the majority-side history (identical tips).
  EXPECT_TRUE(cluster.converged());
  EXPECT_GT(cluster.node(5).chain().fork_stats().reorgs, 0u);
}

TEST(ChainLoss, MildMessageLossOnlySlowsConvergence) {
  ChainClusterConfig cfg;
  cfg.params = chain::bitcoin_like();
  cfg.params.verify_pow = false;
  cfg.params.retarget_window = 0;
  cfg.params.block_interval = 30.0;
  cfg.params.initial_difficulty = 1e6;
  cfg.node_count = 5;
  cfg.miner_count = 3;
  cfg.total_hashrate = 1e6 / 30.0;
  cfg.account_count = 4;
  cfg.seed = 20;
  ChainCluster cluster(cfg);
  cluster.start();
  cluster.network().set_loss_rate(0.15);
  cluster.run_for(1500.0);
  cluster.network().set_loss_rate(0.0);
  cluster.run_for(300.0);

  // Redundant gossip paths mask the loss: every node still follows one
  // chain, and heights stay close even if orphan processing lagged.
  std::uint32_t min_h = ~0u, max_h = 0;
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    min_h = std::min(min_h, cluster.node(i).chain().height());
    max_h = std::max(max_h, cluster.node(i).chain().height());
  }
  EXPECT_GT(min_h, 20u);
  EXPECT_LE(max_h - min_h, 3u);
}

TEST(LatticePartition, UnsettledDuringSplitSettlesAfterHeal) {
  LatticeClusterConfig cfg;
  cfg.node_count = 4;
  cfg.representative_count = 2;
  cfg.account_count = 8;
  cfg.params.work_bits = 2;
  cfg.seed = 21;
  LatticeCluster cluster(cfg);
  cluster.fund_accounts();

  // Account 0 (node 0) pays account 1 (node 1) while node 1 is cut off.
  cluster.network().set_partitions(
      {{cluster.node(0).id(), cluster.node(2).id(), cluster.node(3).id()},
       {cluster.node(1).id()}});
  ASSERT_TRUE(cluster.submit_payment(0, 1, 777).ok());
  cluster.run_for(10.0);
  // The send exists on the majority side but cannot settle: the receiver
  // (its owner node) never saw it (Fig. 3's offline case, by partition).
  EXPECT_GE(cluster.node(0).ledger().pending().size(), 1u);
  EXPECT_EQ(cluster.node(1).ledger().pending().size(), 0u);

  cluster.network().heal();
  // Nothing re-broadcasts old blocks automatically; a new payment from
  // the same account carries the history across via the gap-pool retry.
  ASSERT_TRUE(cluster.submit_payment(0, 1, 1).ok());
  cluster.run_for(20.0);
  EXPECT_EQ(cluster.node(1)
                .ledger()
                .pending_for(cluster.account(1).account_id())
                .size(),
            0u)
      << "receiver settled both sends after healing";
  EXPECT_EQ(cluster.node(1).ledger().balance_of(
                cluster.account(1).account_id()),
            cluster.node(0).ledger().balance_of(
                cluster.account(1).account_id()));
}

TEST(LatticeLoss, GossipRedundancyMasksLoss) {
  LatticeClusterConfig cfg;
  cfg.node_count = 5;
  cfg.representative_count = 2;
  cfg.account_count = 10;
  cfg.params.work_bits = 2;
  cfg.seed = 22;
  LatticeCluster cluster(cfg);
  cluster.fund_accounts();

  cluster.network().set_loss_rate(0.10);
  Rng wl(3);
  WorkloadConfig w;
  w.account_count = 10;
  w.tx_rate = 2.0;
  w.duration = 30.0;
  cluster.schedule_workload(generate_payments(w, wl));
  cluster.run_for(60.0);
  cluster.network().set_loss_rate(0.0);

  // Most transfers settle despite loss (complete graph => 4 paths/node).
  const auto& ledger = cluster.node(0).ledger();
  EXPECT_LE(ledger.pending().size(), 6u);
  EXPECT_TRUE(ledger.conserves_value());
}

TEST(LatticeOffline, ReceiverDowntimeNeverLosesFunds) {
  LatticeClusterConfig cfg;
  cfg.node_count = 3;
  cfg.account_count = 4;
  cfg.params.work_bits = 2;
  cfg.seed = 23;
  LatticeCluster cluster(cfg);
  cluster.fund_accounts();

  // Take account 1's owner offline, fire several payments at it.
  cluster.owner_of(1).set_online(false);
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(cluster.submit_payment(0, 1, 100).ok());
  cluster.run_for(10.0);
  const auto dest = cluster.account(1).account_id();
  EXPECT_EQ(cluster.node(0).ledger().pending_for(dest).size(), 5u);

  // Back online: claim everything manually.
  auto& owner = cluster.owner_of(1);
  owner.set_online(true);
  for (const auto& [hash, info] : owner.ledger().pending_for(dest))
    EXPECT_TRUE(owner.receive_pending(cluster.account(1), hash).ok());
  cluster.run_for(10.0);
  EXPECT_EQ(cluster.node(0).ledger().pending_for(dest).size(), 0u);
  EXPECT_TRUE(cluster.node(0).ledger().conserves_value());
}

}  // namespace
}  // namespace dlt::core
