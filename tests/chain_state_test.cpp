// Account-model world state over the trie: execution semantics, fees,
// nonces, version store (paper §II-A, §V-A).
#include <gtest/gtest.h>

#include "chain/state.hpp"
#include "chain_test_util.hpp"

namespace dlt::chain {
namespace {

using testutil::make_keys;

class WorldStateTest : public ::testing::Test {
 protected:
  WorldStateTest() : keys(make_keys(3)), rng(7) {
    state = WorldState{}
                .credit(keys[0].account_id(), 1'000'000)
                .credit(keys[1].account_id(), 500'000);
    miner = keys[2].account_id();
  }

  AccountTransaction transfer(std::size_t from, std::size_t to, Amount value,
                              std::uint64_t nonce, Amount gas_price = 1) {
    AccountTransaction tx;
    tx.to = keys[to].account_id();
    tx.value = value;
    tx.nonce = nonce;
    tx.gas_limit = 30'000;
    tx.gas_price = gas_price;
    tx.sign(keys[from], rng);
    return tx;
  }

  std::vector<crypto::KeyPair> keys;
  Rng rng;
  WorldState state;
  crypto::AccountId miner;
};

TEST_F(WorldStateTest, EncodeDecodeRoundTrip) {
  AccountState st{12345, 67, 890};
  auto decoded = AccountState::decode(
      ByteView{st.encode().data(), st.encode().size()});
  // encode() is called twice above; take a stable copy instead.
  const Bytes raw = st.encode();
  decoded = AccountState::decode(ByteView{raw.data(), raw.size()});
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->balance, 12345u);
  EXPECT_EQ(decoded->nonce, 67u);
  EXPECT_EQ(decoded->code_size, 890u);
}

TEST_F(WorldStateTest, TransferMovesValueAndPaysFee) {
  auto tx = transfer(0, 1, 100'000, 0, /*gas_price=*/2);
  auto next = state.apply_transaction(tx, miner);
  ASSERT_TRUE(next.ok()) << next.error().to_string();

  const Amount fee = 21'000 * 2;
  EXPECT_EQ(next->balance_of(keys[0].account_id()),
            1'000'000u - 100'000u - fee);
  EXPECT_EQ(next->balance_of(keys[1].account_id()), 600'000u);
  EXPECT_EQ(next->balance_of(miner), fee);
  EXPECT_EQ(next->get(keys[0].account_id())->nonce, 1u);
  // Value conservation.
  EXPECT_EQ(next->total_supply(), state.total_supply());
}

TEST_F(WorldStateTest, OriginalStateUntouched) {
  auto tx = transfer(0, 1, 100, 0);
  auto next = state.apply_transaction(tx, miner);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(state.balance_of(keys[0].account_id()), 1'000'000u);
  EXPECT_EQ(state.get(keys[0].account_id())->nonce, 0u);
}

TEST_F(WorldStateTest, BadNonceRejected) {
  auto tx = transfer(0, 1, 100, 5);
  auto next = state.apply_transaction(tx, miner);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.error().code, "bad-nonce");
}

TEST_F(WorldStateTest, ReplayRejected) {
  auto tx = transfer(0, 1, 100, 0);
  auto s1 = state.apply_transaction(tx, miner);
  ASSERT_TRUE(s1.ok());
  auto replay = s1->apply_transaction(tx, miner);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.error().code, "bad-nonce");
}

TEST_F(WorldStateTest, InsufficientBalanceCoversMaxFee) {
  // balance must cover value + gas_limit*price, not just value.
  auto tx = transfer(1, 0, 500'000 - 10'000, 0);  // leaves < max_fee
  auto next = state.apply_transaction(tx, miner);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.error().code, "insufficient-balance");
}

TEST_F(WorldStateTest, UnknownSenderRejected) {
  auto ghost = crypto::KeyPair::from_seed(0xdead);
  AccountTransaction tx;
  tx.to = keys[0].account_id();
  tx.value = 1;
  tx.sign(ghost, rng);
  auto next = state.apply_transaction(tx, miner);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.error().code, "unknown-sender");
}

TEST_F(WorldStateTest, BadSignatureRejected) {
  auto tx = transfer(0, 1, 100, 0);
  tx.value = 200;
  tx.invalidate_digests();  // direct field writes bypass the digest memo
  auto next = state.apply_transaction(tx, miner);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.error().code, "bad-signature");
}

TEST_F(WorldStateTest, GasLimitBelowIntrinsicRejected) {
  auto tx = transfer(0, 1, 100, 0);
  tx.gas_limit = 1000;
  tx.sign(keys[0], rng);
  auto next = state.apply_transaction(tx, miner);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.error().code, "out-of-gas");
}

TEST_F(WorldStateTest, ContractCreationMakesAccount) {
  AccountTransaction tx;
  // to == zero -> creation
  tx.value = 5000;
  tx.data_size = 200;
  tx.gas_limit = 100'000;
  tx.sign(keys[0], rng);
  auto next = state.apply_transaction(tx, miner);
  ASSERT_TRUE(next.ok()) << next.error().to_string();
  auto contract = next->get(tx.id());
  ASSERT_TRUE(contract.has_value());
  EXPECT_EQ(contract->balance, 5000u);
  EXPECT_EQ(contract->code_size, 200u);
}

TEST_F(WorldStateTest, RootReflectsContent) {
  const Hash256 r0 = state.root();
  auto tx = transfer(0, 1, 100, 0);
  auto next = state.apply_transaction(tx, miner);
  ASSERT_TRUE(next.ok());
  EXPECT_NE(next->root(), r0);
  EXPECT_EQ(state.root(), r0);
}

TEST(StateDB, VersionsAndPruning) {
  auto keys = make_keys(2);
  StateDB db;
  WorldState s0 = WorldState{}.credit(keys[0].account_id(), 100);
  WorldState s1 = s0.credit(keys[1].account_id(), 50);
  WorldState s2 = s1.credit(keys[0].account_id(), 25);
  db.put(s0.root(), s0);
  db.put(s1.root(), s1);
  db.put(s2.root(), s2);
  EXPECT_EQ(db.version_count(), 3u);
  ASSERT_TRUE(db.get(s1.root()).has_value());
  EXPECT_EQ(db.get(s1.root())->balance_of(keys[1].account_id()), 50u);

  const auto [nodes_all, bytes_all] = db.measure();
  EXPECT_GT(nodes_all, 0u);

  // Prune to the newest version only (§V-A deltas discarded).
  EXPECT_EQ(db.prune_except({s2.root()}), 2u);
  EXPECT_EQ(db.version_count(), 1u);
  EXPECT_FALSE(db.get(s0.root()).has_value());
  const auto [nodes_one, bytes_one] = db.measure();
  EXPECT_LE(nodes_one, nodes_all);
  EXPECT_GT(bytes_one, 0u);
  (void)bytes_all;
}

TEST(StateDB, SharedNodesCountedOnce) {
  auto keys = make_keys(64);
  WorldState base;
  for (const auto& k : keys) base = base.credit(k.account_id(), 10);
  WorldState tweaked = base.credit(keys[0].account_id(), 1);

  StateDB db;
  db.put(base.root(), base);
  db.put(tweaked.root(), tweaked);
  const auto [nodes_both, b2] = db.measure();
  const auto [nodes_single, b1] = base.trie().measure();
  // Both versions together cost barely more than one (structural sharing).
  EXPECT_LT(nodes_both, nodes_single + nodes_single / 4);
  EXPECT_GT(b2, b1);
}

}  // namespace
}  // namespace dlt::chain
