// SHA-256 against FIPS 180-4 / NIST test vectors, plus the hashing helpers.
#include <gtest/gtest.h>

#include "crypto/hash.hpp"
#include "crypto/sha256.hpp"
#include "support/hex.hpp"

namespace dlt::crypto {
namespace {

std::string digest_hex(std::string_view msg) {
  return to_hex(Sha256::digest(as_bytes(msg)));
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(digest_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64 bytes: padding spills into a second block.
  const std::string msg(64, 'a');
  EXPECT_EQ(digest_hex(msg),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256, FiftyFiveAndFiftySixBytes) {
  // 55 bytes: the largest message whose padding fits one block.
  EXPECT_EQ(digest_hex(std::string(55, 'a')),
            "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
  EXPECT_EQ(digest_hex(std::string(56, 'a')),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(as_bytes(chunk));
  EXPECT_EQ(to_hex(ctx.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingEqualsOneShot) {
  const std::string msg =
      "the quick brown fox jumps over the lazy dog and keeps going";
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 ctx;
    ctx.update(as_bytes(std::string_view(msg).substr(0, split)));
    ctx.update(as_bytes(std::string_view(msg).substr(split)));
    EXPECT_EQ(ctx.finalize(), Sha256::digest(as_bytes(msg))) << split;
  }
}

TEST(Sha256, DoubleHashDiffersFromSingle) {
  const Hash256 once = Sha256::digest(as_bytes("abc"));
  const Hash256 twice = sha256d(as_bytes("abc"));
  EXPECT_NE(once, twice);
  EXPECT_EQ(twice, Sha256::digest(once.view()));
}

TEST(TaggedHash, DomainSeparation) {
  const Hash256 a = tagged_hash("domain-a", as_bytes("payload"));
  const Hash256 b = tagged_hash("domain-b", as_bytes("payload"));
  EXPECT_NE(a, b);
  // Deterministic.
  EXPECT_EQ(a, tagged_hash("domain-a", as_bytes("payload")));
}

TEST(TaggedHash, CombineOrderMatters) {
  Hash256 l = Sha256::digest(as_bytes("l"));
  Hash256 r = Sha256::digest(as_bytes("r"));
  EXPECT_NE(combine("t", l, r), combine("t", r, l));
}

TEST(HashHelpers, PrefixU64BigEndian) {
  Hash256 h;
  h.v[0] = 0x01;
  h.v[7] = 0xff;
  EXPECT_EQ(hash_prefix_u64(h), 0x01000000000000ffULL);
}

TEST(HashHelpers, LeadingZeroBits) {
  Hash256 h;  // all zero
  EXPECT_EQ(leading_zero_bits(h), 256);
  h.v[0] = 0x80;
  EXPECT_EQ(leading_zero_bits(h), 0);
  h.v[0] = 0x01;
  EXPECT_EQ(leading_zero_bits(h), 7);
  h.v[0] = 0x00;
  h.v[1] = 0x10;
  EXPECT_EQ(leading_zero_bits(h), 11);
}

}  // namespace
}  // namespace dlt::crypto
