// Differential + safety harness for the adversary actor layer (ISSUE 8):
//
//  - a zero-power adversary of every kind is byte-identical (trace and
//    metrics) to a run with no adversary constructed at all;
//  - any-power attack runs are byte-identical across the crypto modes
//    {serial, 2 verify threads, 4 threads + parallel state} — the
//    adversary draws only from its private RNG stream and acts only on
//    the serial sim thread;
//  - the measured safety metrics move the right way: parasite flip
//    probability is monotone nondecreasing in attacker power, the honest
//    tip share under spam is monotone nonincreasing, under both tip
//    selection strategies;
//  - inclusion_gini and TipStationarity behave per their definitions.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/adversary.hpp"
#include "core/chain_cluster.hpp"
#include "core/tangle_cluster.hpp"
#include "obs/latency.hpp"
#include "tangle/tip_selection.hpp"

namespace dlt {
namespace {

using core::AdversaryConfig;
using core::AdversaryKind;
using core::TangleAdversary;

/// Crypto-mode axis of the differential matrix (the test-side mirror of
/// DLT_VERIFY_THREADS × DLT_PARALLEL_STATE).
struct Mode {
  const char* name;
  std::size_t threads;
  bool parallel_state;
};

constexpr Mode kModes[] = {{"w2", 2, false}, {"w4ps", 4, true}};

core::TangleClusterConfig tangle_config(tangle::TipStrategy strategy) {
  core::TangleClusterConfig cfg;
  cfg.node_count = 3;
  cfg.account_count = 8;
  cfg.params.work_bits = 2;
  cfg.params.alpha = 0.05;
  cfg.params.tip_selection = strategy;
  cfg.seed = 77;
  cfg.obs.trace_capacity = 1u << 16;
  return cfg;
}

struct TangleOutcome {
  std::string trace;
  core::RunMetrics metrics;
  double flip = 0.0;
  double share = 1.0;
  double side_a = 0.0;
  double side_b = 0.0;
  std::size_t injected = 0;
  std::string metrics_json;
};

/// Honest workload + adversary of the given kind/power. The adversary is
/// always constructed — a zero-power one must not perturb the run.
TangleOutcome run_tangle(core::TangleClusterConfig cfg, AdversaryKind kind,
                         double power) {
  core::TangleCluster cluster(cfg);

  AdversaryConfig ac;
  ac.kind = kind;
  ac.power = power;
  ac.node = 1;
  ac.start_time = 2.0;
  ac.release_time = 8.0;
  ac.interval = 1.0;
  TangleAdversary adversary(cluster, ac);

  cluster.start();
  adversary.start();

  Rng wl_rng(4);
  core::WorkloadConfig wl;
  wl.account_count = cfg.account_count;
  wl.tx_rate = 3.0;
  wl.duration = 10.0;
  wl.max_amount = 40;
  cluster.schedule_workload(core::generate_payments(wl, wl_rng));
  cluster.run_for(12.0);

  adversary.measure();

  TangleOutcome out;
  out.trace = cluster.tracer().to_jsonl();
  out.metrics = cluster.metrics();
  out.flip = adversary.flip_probability();
  out.share = adversary.honest_tip_share();
  out.side_a = adversary.side_a_confidence();
  out.side_b = adversary.side_b_confidence();
  out.injected = adversary.txs_injected();
  out.metrics_json = cluster.metrics_json().to_string();
  return out;
}

void expect_same_run(const TangleOutcome& got, const TangleOutcome& base) {
  EXPECT_EQ(got.trace, base.trace);
  EXPECT_EQ(got.metrics.submitted, base.metrics.submitted);
  EXPECT_EQ(got.metrics.included, base.metrics.included);
  EXPECT_EQ(got.metrics.confirmed, base.metrics.confirmed);
  EXPECT_EQ(got.metrics.messages, base.metrics.messages);
  EXPECT_EQ(got.metrics.message_bytes, base.metrics.message_bytes);
  EXPECT_EQ(got.injected, base.injected);
}

// ------------------------------------------------- zero power == honest

TEST(Adversarial, ZeroPowerIsByteIdenticalToHonestBaseline) {
  // The honest reference never even constructs an adversary.
  core::TangleClusterConfig cfg = tangle_config(tangle::TipStrategy::kMcmc);
  TangleOutcome honest;
  {
    core::TangleCluster cluster(cfg);
    cluster.start();
    Rng wl_rng(4);
    core::WorkloadConfig wl;
    wl.account_count = cfg.account_count;
    wl.tx_rate = 3.0;
    wl.duration = 10.0;
    wl.max_amount = 40;
    cluster.schedule_workload(core::generate_payments(wl, wl_rng));
    cluster.run_for(12.0);
    honest.trace = cluster.tracer().to_jsonl();
    honest.metrics = cluster.metrics();
  }
  ASSERT_FALSE(honest.trace.empty());
  ASSERT_GT(honest.metrics.included, 0u);

  for (AdversaryKind kind : {AdversaryKind::kNone, AdversaryKind::kParasite,
                             AdversaryKind::kSpam, AdversaryKind::kRace}) {
    SCOPED_TRACE(static_cast<int>(kind));
    const TangleOutcome got = run_tangle(cfg, kind, 0.0);
    EXPECT_EQ(got.trace, honest.trace);
    EXPECT_EQ(got.metrics.included, honest.metrics.included);
    EXPECT_EQ(got.metrics.messages, honest.metrics.messages);
    EXPECT_EQ(got.injected, 0u);
    // Zero power reads as "no attack" in the metrics too.
    EXPECT_EQ(got.flip, 0.0);
    EXPECT_EQ(got.share, 1.0);
  }
}

// ------------------------------------- crypto-mode trace differential

TEST(Adversarial, ParasiteTraceIdenticalAcrossCryptoModes) {
  core::TangleClusterConfig cfg = tangle_config(tangle::TipStrategy::kMcmc);
  const TangleOutcome base = run_tangle(cfg, AdversaryKind::kParasite, 0.6);
  EXPECT_GT(base.injected, 0u);

  for (const Mode& mode : kModes) {
    SCOPED_TRACE(mode.name);
    core::TangleClusterConfig mc = cfg;
    mc.crypto.verify_threads = mode.threads;
    mc.crypto.parallel_validation = true;
    mc.crypto.parallel_state = mode.parallel_state;
    const TangleOutcome got = run_tangle(mc, AdversaryKind::kParasite, 0.6);
    expect_same_run(got, base);
    EXPECT_EQ(got.flip, base.flip);
  }
}

TEST(Adversarial, SpamTraceIdenticalAcrossCryptoModes) {
  core::TangleClusterConfig cfg =
      tangle_config(tangle::TipStrategy::kUniform);
  const TangleOutcome base = run_tangle(cfg, AdversaryKind::kSpam, 0.5);
  EXPECT_GT(base.injected, 0u);

  for (const Mode& mode : kModes) {
    SCOPED_TRACE(mode.name);
    core::TangleClusterConfig mc = cfg;
    mc.crypto.verify_threads = mode.threads;
    mc.crypto.parallel_validation = true;
    mc.crypto.parallel_state = mode.parallel_state;
    const TangleOutcome got = run_tangle(mc, AdversaryKind::kSpam, 0.5);
    expect_same_run(got, base);
    EXPECT_EQ(got.share, base.share);
  }
}

TEST(Adversarial, RaceTraceIdenticalAcrossCryptoModes) {
  core::TangleClusterConfig cfg = tangle_config(tangle::TipStrategy::kMcmc);
  const TangleOutcome base = run_tangle(cfg, AdversaryKind::kRace, 0.4);
  EXPECT_EQ(base.injected, 2u);  // one conflicting spend per side
  EXPECT_GE(base.side_a, 0.0);
  EXPECT_LE(base.side_a, 1.0);
  EXPECT_GE(base.side_b, 0.0);
  EXPECT_LE(base.side_b, 1.0);

  for (const Mode& mode : kModes) {
    SCOPED_TRACE(mode.name);
    core::TangleClusterConfig mc = cfg;
    mc.crypto.verify_threads = mode.threads;
    mc.crypto.parallel_validation = true;
    mc.crypto.parallel_state = mode.parallel_state;
    const TangleOutcome got = run_tangle(mc, AdversaryKind::kRace, 0.4);
    expect_same_run(got, base);
    EXPECT_EQ(got.side_a, base.side_a);
    EXPECT_EQ(got.side_b, base.side_b);
  }
}

// -------------------------------------------------- metric monotonicity

TEST(Adversarial, ParasiteFlipProbabilityMonotoneInPower) {
  for (tangle::TipStrategy strategy :
       {tangle::TipStrategy::kMcmc, tangle::TipStrategy::kUniform}) {
    SCOPED_TRACE(tangle::to_string(strategy));
    core::TangleClusterConfig cfg = tangle_config(strategy);
    double prev = -1.0;
    for (double power : {0.0, 0.4, 0.8}) {
      const TangleOutcome r =
          run_tangle(cfg, AdversaryKind::kParasite, power);
      EXPECT_GE(r.flip, prev) << "power " << power;
      prev = r.flip;
    }
    EXPECT_GT(prev, 0.0);  // the strongest attacker flips some walks
  }
}

TEST(Adversarial, SpamHonestTipShareMonotoneInPower) {
  for (tangle::TipStrategy strategy :
       {tangle::TipStrategy::kMcmc, tangle::TipStrategy::kUniform}) {
    SCOPED_TRACE(tangle::to_string(strategy));
    core::TangleClusterConfig cfg = tangle_config(strategy);
    double prev = 2.0;
    for (double power : {0.0, 0.4, 0.8}) {
      const TangleOutcome r = run_tangle(cfg, AdversaryKind::kSpam, power);
      EXPECT_LE(r.share, prev) << "power " << power;
      prev = r.share;
    }
    EXPECT_LT(prev, 1.0);  // the strongest attacker displaces some walks
  }
}

// ------------------------------------------------ selfish miner (chain)

core::ChainClusterConfig selfish_config() {
  core::ChainClusterConfig cfg;
  cfg.params = chain::bitcoin_like();
  cfg.params.verify_pow = false;
  cfg.params.retarget_window = 0;
  cfg.params.block_interval = 5.0;
  cfg.params.initial_difficulty = 1e6;
  cfg.node_count = 3;
  cfg.miner_count = 2;
  cfg.total_hashrate = 1e6 / 5.0;
  cfg.account_count = 8;
  cfg.initial_balance = 1'000'000'000;
  cfg.seed = 21;
  cfg.obs.trace_capacity = 1u << 16;
  return cfg;
}

struct SelfishOutcome {
  std::string trace;
  core::RunMetrics metrics;
  chain::BlockHash tip;
  double revenue = 0.0;
  std::uint64_t mined = 0;
};

SelfishOutcome run_selfish(core::ChainClusterConfig cfg, double power) {
  core::ChainCluster cluster(cfg);
  core::SelfishMinerConfig sc;
  sc.power = power;
  sc.node = 1;
  sc.start_time = 1.0;
  sc.poll_interval = 2.5;
  core::ChainSelfishMiner miner(cluster, sc);

  cluster.start();
  miner.start();
  Rng wl_rng(6);
  core::WorkloadConfig wl;
  wl.account_count = cfg.account_count;
  wl.tx_rate = 0.5;
  wl.duration = 60.0;
  cluster.schedule_workload(core::generate_payments(wl, wl_rng));
  cluster.run_for(90.0);
  miner.measure();

  SelfishOutcome out;
  out.trace = cluster.tracer().to_jsonl();
  out.metrics = cluster.metrics();
  out.tip = cluster.node(0).chain().tip_hash();
  out.revenue = miner.revenue_share();
  out.mined = miner.blocks_mined();
  return out;
}

TEST(Adversarial, ZeroPowerSelfishMinerIsByteIdenticalToHonestBaseline) {
  core::ChainClusterConfig cfg = selfish_config();
  SelfishOutcome honest;
  {
    core::ChainCluster cluster(cfg);
    cluster.start();
    Rng wl_rng(6);
    core::WorkloadConfig wl;
    wl.account_count = cfg.account_count;
    wl.tx_rate = 0.5;
    wl.duration = 60.0;
    cluster.schedule_workload(core::generate_payments(wl, wl_rng));
    cluster.run_for(90.0);
    honest.trace = cluster.tracer().to_jsonl();
    honest.tip = cluster.node(0).chain().tip_hash();
  }
  ASSERT_FALSE(honest.trace.empty());

  const SelfishOutcome got = run_selfish(cfg, 0.0);
  EXPECT_EQ(got.trace, honest.trace);
  EXPECT_EQ(got.tip, honest.tip);
  EXPECT_EQ(got.mined, 0u);
  EXPECT_EQ(got.revenue, 0.0);
}

TEST(Adversarial, SelfishMinerTraceIdenticalAcrossCryptoModes) {
  core::ChainClusterConfig cfg = selfish_config();
  const SelfishOutcome base = run_selfish(cfg, 0.45);
  EXPECT_GT(base.mined, 0u);

  for (const Mode& mode : kModes) {
    SCOPED_TRACE(mode.name);
    core::ChainClusterConfig mc = cfg;
    mc.crypto.verify_threads = mode.threads;
    mc.crypto.parallel_validation = true;
    mc.crypto.parallel_state = mode.parallel_state;
    const SelfishOutcome got = run_selfish(mc, 0.45);
    EXPECT_EQ(got.trace, base.trace);
    EXPECT_EQ(got.tip, base.tip);
    EXPECT_EQ(got.mined, base.mined);
    EXPECT_EQ(got.revenue, base.revenue);
  }
}

// ------------------------------------------------- fairness / stationarity

TEST(Adversarial, InclusionGiniDefinition) {
  obs::LatencyTracker empty;
  EXPECT_EQ(core::inclusion_gini(empty), 0.0);

  // Perfectly fair: every issuer's submissions are all included.
  obs::LatencyTracker fair;
  fair.enable(obs::Probe{});
  for (std::uint64_t issuer = 0; issuer < 4; ++issuer) {
    for (int i = 0; i < 5; ++i) {
      const std::uint64_t id = issuer * 100 + static_cast<std::uint64_t>(i);
      fair.on_submit(id, 0.0, 0, issuer);
      fair.on_include(id, 1.0, 0);
    }
  }
  EXPECT_DOUBLE_EQ(core::inclusion_gini(fair), 0.0);

  // Concentrated: issuer 0 gets everything in, the other three nothing.
  obs::LatencyTracker skewed;
  skewed.enable(obs::Probe{});
  for (std::uint64_t issuer = 0; issuer < 4; ++issuer) {
    for (int i = 0; i < 5; ++i) {
      const std::uint64_t id = issuer * 100 + static_cast<std::uint64_t>(i);
      skewed.on_submit(id, 0.0, 0, issuer);
      if (issuer == 0) skewed.on_include(id, 1.0, 0);
    }
  }
  // Rates (1, 0, 0, 0): G = sum |xi-xj| / (2 n^2 mu) = 6/(2*16*0.25).
  EXPECT_NEAR(core::inclusion_gini(skewed), 0.75, 1e-12);
  EXPECT_GT(core::inclusion_gini(skewed), core::inclusion_gini(fair));
}

TEST(Adversarial, TipStationarityWindowedMoments) {
  core::TipStationarity stat(4);
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.variance(), 0.0);

  for (int i = 0; i < 10; ++i) stat.sample(3);
  EXPECT_EQ(stat.samples(), 10u);
  EXPECT_DOUBLE_EQ(stat.mean(), 3.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);

  // The window slides: only the trailing 4 samples count.
  for (std::size_t v : {10u, 20u, 30u, 40u}) stat.sample(v);
  EXPECT_DOUBLE_EQ(stat.mean(), 25.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 125.0);  // population variance
}

// -------------------------------------------- double-spend race model

TEST(Adversarial, DoubleSpendRaceModelIsDeterministicAndSane) {
  const core::RaceOutcome weak =
      core::run_double_spend_races(0.1, 6, 400, 1234);
  const core::RaceOutcome strong =
      core::run_double_spend_races(0.45, 1, 400, 1234);
  EXPECT_EQ(weak.trials, 400);
  EXPECT_EQ(strong.trials, 400);
  // §IV-A: six confirmations against a 10% attacker is safe; one
  // confirmation against a 45% attacker is not.
  EXPECT_LT(weak.attacker_wins, strong.attacker_wins);
  EXPECT_LT(weak.attacker_wins * 100, weak.trials);  // < 1% win rate

  // Pure function of the seed.
  const core::RaceOutcome again =
      core::run_double_spend_races(0.1, 6, 400, 1234);
  EXPECT_EQ(again.attacker_wins, weak.attacker_wins);
}

}  // namespace
}  // namespace dlt
