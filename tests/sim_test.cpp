// Discrete-event engine: ordering, cancellation, horizons, determinism.
#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace dlt::sim {
namespace {

TEST(Simulation, FiresInTimeOrder) {
  Simulation s;
  std::vector<int> order;
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

TEST(Simulation, EqualTimesFifo) {
  Simulation s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    s.schedule_at(5.0, [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulation, ScheduleInIsRelative) {
  Simulation s;
  double fired_at = -1.0;
  s.schedule_at(10.0, [&] {
    s.schedule_in(5.0, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Simulation, CancelPreventsFiring) {
  Simulation s;
  bool fired = false;
  EventId id = s.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // double cancel fails
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelAfterFireFails) {
  Simulation s;
  EventId id = s.schedule_at(1.0, [] {});
  s.run();
  EXPECT_FALSE(s.cancel(id));
}

TEST(Simulation, RunUntilLeavesFutureEvents) {
  Simulation s;
  int fired = 0;
  s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(2.0, [&] { ++fired; });
  s.schedule_at(10.0, [&] { ++fired; });
  const auto n = s.run_until(5.0);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);  // clock advances to the horizon
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) s.schedule_in(1.0, chain);
  };
  s.schedule_in(1.0, chain);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(s.now(), 100.0);
}

TEST(Simulation, RequestStopBreaksRun) {
  Simulation s;
  int fired = 0;
  for (int i = 1; i <= 10; ++i)
    s.schedule_at(i, [&] {
      if (++fired == 3) s.request_stop();
    });
  s.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(s.pending(), 7u);
}

TEST(Simulation, StepReturnsFalseWhenEmpty) {
  Simulation s;
  EXPECT_FALSE(s.step());
  s.schedule_at(1.0, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulation, EventsFiredCounter) {
  Simulation s;
  for (int i = 0; i < 5; ++i) s.schedule_at(i, [] {});
  s.run();
  EXPECT_EQ(s.events_fired(), 5u);
}

TEST(Simulation, CancelledEventsNotCountedPending) {
  Simulation s;
  EventId a = s.schedule_at(1.0, [] {});
  s.schedule_at(2.0, [] {});
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
}

}  // namespace
}  // namespace dlt::sim
