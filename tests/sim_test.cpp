// Discrete-event engine: ordering, cancellation, horizons, determinism.
#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace dlt::sim {
namespace {

TEST(Simulation, FiresInTimeOrder) {
  Simulation s;
  std::vector<int> order;
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

TEST(Simulation, EqualTimesFifo) {
  Simulation s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    s.schedule_at(5.0, [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulation, ScheduleInIsRelative) {
  Simulation s;
  double fired_at = -1.0;
  s.schedule_at(10.0, [&] {
    s.schedule_in(5.0, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Simulation, CancelPreventsFiring) {
  Simulation s;
  bool fired = false;
  EventId id = s.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // double cancel fails
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelAfterFireFails) {
  Simulation s;
  EventId id = s.schedule_at(1.0, [] {});
  s.run();
  EXPECT_FALSE(s.cancel(id));
}

TEST(Simulation, RunUntilLeavesFutureEvents) {
  Simulation s;
  int fired = 0;
  s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(2.0, [&] { ++fired; });
  s.schedule_at(10.0, [&] { ++fired; });
  const auto n = s.run_until(5.0);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);  // clock advances to the horizon
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) s.schedule_in(1.0, chain);
  };
  s.schedule_in(1.0, chain);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(s.now(), 100.0);
}

TEST(Simulation, RequestStopBreaksRun) {
  Simulation s;
  int fired = 0;
  for (int i = 1; i <= 10; ++i)
    s.schedule_at(i, [&] {
      if (++fired == 3) s.request_stop();
    });
  s.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(s.pending(), 7u);
}

TEST(Simulation, StepReturnsFalseWhenEmpty) {
  Simulation s;
  EXPECT_FALSE(s.step());
  s.schedule_at(1.0, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulation, EventsFiredCounter) {
  Simulation s;
  for (int i = 0; i < 5; ++i) s.schedule_at(i, [] {});
  s.run();
  EXPECT_EQ(s.events_fired(), 5u);
}

TEST(Simulation, CancelledEventsNotCountedPending) {
  Simulation s;
  EventId a = s.schedule_at(1.0, [] {});
  s.schedule_at(2.0, [] {});
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
}

// --- slab scheduler semantics -------------------------------------------

TEST(Simulation, StaleIdDoesNotCancelSlotReuser) {
  // After an event fires, its slab slot is recycled for the next schedule;
  // the generation bump must make the old EventId inert rather than
  // cancelling the new occupant.
  Simulation s;
  EventId first = s.schedule_at(1.0, [] {});
  s.run();
  bool second_fired = false;
  s.schedule_at(2.0, [&] { second_fired = true; });
  EXPECT_FALSE(s.cancel(first));  // stale id, same slot: must be a no-op
  s.run();
  EXPECT_TRUE(second_fired);
}

TEST(Simulation, CancelFromWithinOwnCallbackFails) {
  // The firing event's id is invalidated before its callback runs.
  Simulation s;
  bool cancel_result = true;
  EventId id = kInvalidEvent;
  id = s.schedule_at(1.0, [&] { cancel_result = s.cancel(id); });
  s.run();
  EXPECT_FALSE(cancel_result);
}

TEST(Simulation, CancelOfInvalidEventFails) {
  Simulation s;
  EXPECT_FALSE(s.cancel(kInvalidEvent));
  EXPECT_FALSE(s.cancel(12345));  // never-issued id
}

TEST(Simulation, FifoTiebreakAtScale) {
  // 100k events at one timestamp (mixed with cancellations) must fire in
  // exact scheduling order — the FIFO sequence in the heap key, not slot
  // or slab order, decides ties.
  Simulation s;
  constexpr int kEvents = 100'000;
  std::vector<int> order;
  order.reserve(kEvents);
  std::vector<EventId> ids;
  ids.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i)
    ids.push_back(s.schedule_at(7.0, [&order, i] { order.push_back(i); }));
  for (int i = 0; i < kEvents; i += 3) s.cancel(ids[i]);
  s.run();
  int expect = 0;
  for (int got : order) {
    while (expect % 3 == 0) ++expect;  // cancelled every 3rd
    EXPECT_EQ(got, expect);
    if (got != expect) break;
    ++expect;
  }
  EXPECT_EQ(order.size(), static_cast<std::size_t>(kEvents - 33334));
}

TEST(Simulation, SlabCapacityBoundedBySelfRescheduling) {
  // A self-rescheduling chain reuses freed slots: the slab must stay at
  // the concurrency high-water mark, not grow with total events.
  Simulation s;
  int remaining = 10'000;
  std::function<void()> chain = [&] {
    if (--remaining > 0) s.schedule_in(1.0, chain);
  };
  s.schedule_in(1.0, chain);
  s.run();
  EXPECT_EQ(s.events_fired(), 10'000u);
  EXPECT_LE(s.slab_capacity(), 256u);  // one chunk, not 10k slots
  EXPECT_LE(s.heap_peak(), 2u);
}

TEST(Simulation, SchedulerCounters) {
  Simulation s;
  EventId a = s.schedule_at(1.0, [] {});
  s.schedule_at(2.0, [] {});
  s.schedule_at(3.0, [] {});
  s.cancel(a);
  s.run();
  EXPECT_EQ(s.events_scheduled(), 3u);
  EXPECT_EQ(s.events_fired(), 2u);
  EXPECT_EQ(s.events_cancelled(), 1u);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulation, NegativeZeroTimestampOrdersAsZero) {
  // The heap compares IEEE bit patterns; -0.0 must not sort after +inf.
  Simulation s;
  std::vector<int> order;
  s.schedule_at(-0.0, [&] { order.push_back(0); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(Simulation, PendingAccountsForFireCancelInterleave) {
  Simulation s;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i)
    ids.push_back(s.schedule_at(1.0 + i, [] {}));
  for (int i = 0; i < 100; i += 2) s.cancel(ids[i]);
  EXPECT_EQ(s.pending(), 50u);
  s.run_until(50.5);  // fires the odd-indexed events scheduled <= 50.5
  EXPECT_EQ(s.pending(), 25u);
  s.run();
  EXPECT_EQ(s.pending(), 0u);
}

}  // namespace
}  // namespace dlt::sim
