// Simulated P2P network: delivery, latency, bandwidth, gossip, partitions.
#include <gtest/gtest.h>

#include "net/network.hpp"

namespace dlt::net {
namespace {

struct Fixture {
  sim::Simulation sim;
  Network net{sim, Rng(1)};
};

TEST(Network, PointToPointDelivery) {
  Fixture f;
  NodeId a = f.net.add_node();
  NodeId b = f.net.add_node();
  f.net.connect(a, b, LinkParams{0.1, 0.0, 1e9});

  std::string got;
  double arrival = -1;
  f.net.set_handler(b, [&](const Message& m) {
    got = payload_as<std::string>(m);
    arrival = f.sim.now();
  });
  f.net.send(a, b, make_message("t", std::string("ping"), 100));
  f.sim.run();
  EXPECT_EQ(got, "ping");
  EXPECT_NEAR(arrival, 0.1, 1e-6);  // latency dominated (tiny tx time)
}

TEST(Network, NoLinkNoDelivery) {
  Fixture f;
  NodeId a = f.net.add_node();
  NodeId b = f.net.add_node();
  bool delivered = false;
  f.net.set_handler(b, [&](const Message&) { delivered = true; });
  f.net.send(a, b, make_message("t", 1, 10));
  f.sim.run();
  EXPECT_FALSE(delivered);
}

TEST(Network, BandwidthSerializesLargeMessages) {
  Fixture f;
  NodeId a = f.net.add_node();
  NodeId b = f.net.add_node();
  // 1 MB at 1 MB/s with zero latency: ~1 second transmit time.
  f.net.connect(a, b, LinkParams{0.0, 0.0, 1'000'000.0});
  double arrival = -1;
  f.net.set_handler(b, [&](const Message&) { arrival = f.sim.now(); });
  f.net.send(a, b, make_message("t", 0, 1'000'000));
  f.sim.run();
  EXPECT_NEAR(arrival, 1.0, 1e-6);
}

TEST(Network, BackToBackMessagesQueue) {
  Fixture f;
  NodeId a = f.net.add_node();
  NodeId b = f.net.add_node();
  f.net.connect(a, b, LinkParams{0.0, 0.0, 1'000'000.0});
  std::vector<double> arrivals;
  f.net.set_handler(b, [&](const Message&) {
    arrivals.push_back(f.sim.now());
  });
  // Two 0.5 MB messages sent at t=0 share the pipe.
  f.net.send(a, b, make_message("t", 1, 500'000));
  f.net.send(a, b, make_message("t", 2, 500'000));
  f.sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[0], 0.5, 1e-6);
  EXPECT_NEAR(arrivals[1], 1.0, 1e-6);
}

TEST(Network, GossipReachesAllNodesOnce) {
  Fixture f;
  std::vector<NodeId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(f.net.add_node());
  build_ring(f.net, ids);

  std::vector<int> received(10, 0);
  for (int i = 0; i < 10; ++i)
    f.net.set_handler(ids[static_cast<std::size_t>(i)],
                      [&received, i](const Message&) { ++received[static_cast<std::size_t>(i)]; });

  f.net.gossip(ids[0], make_message("g", 42, 100));
  f.sim.run();

  EXPECT_EQ(received[0], 0);  // origin does not deliver to itself
  for (int i = 1; i < 10; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], 1) << i;
}

TEST(Network, GossipDedupOnDenseGraph) {
  Fixture f;
  std::vector<NodeId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(f.net.add_node());
  build_complete(f.net, ids);

  std::vector<int> received(8, 0);
  for (int i = 0; i < 8; ++i)
    f.net.set_handler(ids[static_cast<std::size_t>(i)],
                      [&received, i](const Message&) { ++received[static_cast<std::size_t>(i)]; });

  f.net.gossip(ids[0], make_message("g", 1, 10));
  f.sim.run();
  for (int i = 1; i < 8; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], 1) << i;
}

TEST(Network, PartitionBlocksTraffic) {
  Fixture f;
  NodeId a = f.net.add_node();
  NodeId b = f.net.add_node();
  f.net.connect(a, b);
  int delivered = 0;
  f.net.set_handler(b, [&](const Message&) { ++delivered; });

  f.net.set_partitions({{a}, {b}});
  f.net.send(a, b, make_message("t", 1, 10));
  f.sim.run();
  EXPECT_EQ(delivered, 0);

  f.net.heal();
  f.net.send(a, b, make_message("t", 1, 10));
  f.sim.run();
  EXPECT_EQ(delivered, 1);
}

TEST(Network, GossipCrossesHealedPartitionOnResend) {
  Fixture f;
  std::vector<NodeId> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(f.net.add_node());
  build_complete(f.net, ids);
  std::vector<int> got(4, 0);
  for (int i = 0; i < 4; ++i)
    f.net.set_handler(ids[static_cast<std::size_t>(i)],
                      [&got, i](const Message&) { ++got[static_cast<std::size_t>(i)]; });

  f.net.set_partitions({{ids[0], ids[1]}, {ids[2], ids[3]}});
  f.net.gossip(ids[0], make_message("g", 1, 10));
  f.sim.run();
  EXPECT_EQ(got[1], 1);
  EXPECT_EQ(got[2], 0);
  EXPECT_EQ(got[3], 0);
}

TEST(Network, LossRateDropsEverything) {
  Fixture f;
  NodeId a = f.net.add_node();
  NodeId b = f.net.add_node();
  f.net.connect(a, b);
  f.net.set_loss_rate(1.0);
  int delivered = 0;
  f.net.set_handler(b, [&](const Message&) { ++delivered; });
  for (int i = 0; i < 20; ++i) f.net.send(a, b, make_message("t", i, 10));
  f.sim.run();
  EXPECT_EQ(delivered, 0);
}

TEST(Network, TrafficAccounting) {
  Fixture f;
  NodeId a = f.net.add_node();
  NodeId b = f.net.add_node();
  f.net.connect(a, b);
  f.net.set_handler(b, [](const Message&) {});
  f.net.send(a, b, make_message("blocks", 1, 500));
  f.net.send(a, b, make_message("votes", 2, 50));
  f.sim.run();
  EXPECT_EQ(f.net.traffic().messages, 2u);
  EXPECT_EQ(f.net.traffic().bytes, 550u);
  EXPECT_EQ(f.net.traffic_by_type().at("blocks").bytes, 500u);
  EXPECT_EQ(f.net.traffic_by_type().at("votes").messages, 1u);
}

TEST(Network, JitterVariesDelay) {
  Fixture f;
  NodeId a = f.net.add_node();
  NodeId b = f.net.add_node();
  f.net.connect(a, b, LinkParams{0.1, 0.02, 1e9});
  std::vector<double> arrivals;
  f.net.set_handler(b, [&](const Message&) { arrivals.push_back(f.sim.now()); });
  double last_send = 0;
  for (int i = 0; i < 50; ++i) {
    f.sim.schedule_at(last_send, [&f, a, b] {
      f.net.send(a, b, make_message("t", 0, 1));
    });
    last_send += 10.0;
  }
  f.sim.run();
  ASSERT_EQ(arrivals.size(), 50u);
  // Delays should not all be identical under jitter.
  bool varied = false;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    const double d0 = arrivals[0] - 0.0;
    const double di = arrivals[i] - static_cast<double>(i) * 10.0;
    if (std::abs(di - d0) > 1e-9) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST(Topology, RandomGraphConnected) {
  Fixture f;
  std::vector<NodeId> ids;
  for (int i = 0; i < 20; ++i) ids.push_back(f.net.add_node());
  Rng rng(3);
  build_random(f.net, ids, 3, rng);
  // Ring backbone guarantees reachability: gossip must reach everyone.
  std::vector<int> got(20, 0);
  for (int i = 0; i < 20; ++i)
    f.net.set_handler(ids[static_cast<std::size_t>(i)],
                      [&got, i](const Message&) { ++got[static_cast<std::size_t>(i)]; });
  f.net.gossip(ids[0], make_message("g", 1, 10));
  f.sim.run();
  for (int i = 1; i < 20; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], 1) << i;
}

TEST(Topology, SmallWorldReachable) {
  Fixture f;
  std::vector<NodeId> ids;
  for (int i = 0; i < 30; ++i) ids.push_back(f.net.add_node());
  Rng rng(5);
  build_small_world(f.net, ids, 4, 0.2, rng);
  std::vector<int> got(30, 0);
  for (int i = 0; i < 30; ++i)
    f.net.set_handler(ids[static_cast<std::size_t>(i)],
                      [&got, i](const Message&) { ++got[static_cast<std::size_t>(i)]; });
  f.net.gossip(ids[0], make_message("g", 1, 10));
  f.sim.run();
  int reached = 0;
  for (int i = 1; i < 30; ++i) reached += got[static_cast<std::size_t>(i)];
  EXPECT_EQ(reached, 29);
}

// --- gossip dedup window -------------------------------------------------

TEST(GossipDedup, WindowEvictsAndCounts) {
  Fixture f;
  NodeId a = f.net.add_node();
  NodeId b = f.net.add_node();
  f.net.connect(a, b, LinkParams{0.001, 0.0, 1e9});
  f.net.set_gossip_dedup_window(8);  // rotate after 4 insertions per node

  int delivered = 0;
  f.net.set_handler(b, [&](const Message&) { ++delivered; });
  for (int i = 0; i < 20; ++i) {
    f.net.gossip(a, make_message("g", i, 10));
    f.sim.run();
  }
  EXPECT_EQ(delivered, 20);
  // Each node tracked at most one full window of flood ids...
  EXPECT_LE(f.net.gossip_dedup_entries(a), 8u);
  EXPECT_LE(f.net.gossip_dedup_entries(b), 8u);
  // ...and the overflow was evicted, not accumulated.
  EXPECT_GT(f.net.gossip_dedup_evictions(), 0u);
}

TEST(GossipDedup, ExactlyOnceWithinWindow) {
  // A small window must not cause duplicate deliveries while a flood is
  // in flight: ids seen during the current flood stay in cur/prev.
  Fixture f;
  std::vector<NodeId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(f.net.add_node());
  build_complete(f.net, ids);
  f.net.set_gossip_dedup_window(4);

  std::vector<int> received(8, 0);
  for (int i = 0; i < 8; ++i)
    f.net.set_handler(ids[static_cast<std::size_t>(i)],
                      [&received, i](const Message&) {
                        ++received[static_cast<std::size_t>(i)];
                      });
  for (int round = 0; round < 10; ++round) {
    f.net.gossip(ids[0], make_message("g", round, 10));
    f.sim.run();
    for (int i = 1; i < 8; ++i)
      EXPECT_EQ(received[static_cast<std::size_t>(i)], round + 1) << i;
  }
}

TEST(GossipDedup, LongRunMemoryStaysBounded) {
  // Regression for unbounded seen-set growth: many floods through a
  // default-window network must keep per-node dedup memory at the window,
  // not at total-floods.
  Fixture f;
  NodeId a = f.net.add_node();
  NodeId b = f.net.add_node();
  f.net.connect(a, b, LinkParams{0.0001, 0.0, 1e9});
  f.net.set_gossip_dedup_window(64);

  for (int i = 0; i < 5'000; ++i) {
    f.net.gossip(a, make_message("g", i, 8));
    f.sim.run();
  }
  EXPECT_LE(f.net.gossip_dedup_entries(a), 64u);
  EXPECT_LE(f.net.gossip_dedup_entries(b), 64u);
  EXPECT_GE(f.net.gossip_dedup_evictions(),
            2u * (5'000u - 64u));  // both nodes evicted nearly every id
}

TEST(GossipDedup, WindowFloorIsTwo) {
  // Degenerate windows are clamped so the two-generation scheme stays
  // correct (a window of 0/1 would dedup nothing).
  Fixture f;
  NodeId a = f.net.add_node();
  NodeId b = f.net.add_node();
  f.net.connect(a, b, LinkParams{0.001, 0.0, 1e9});
  f.net.set_gossip_dedup_window(0);
  int delivered = 0;
  f.net.set_handler(b, [&](const Message&) { ++delivered; });
  f.net.gossip(a, make_message("g", 1, 10));
  f.sim.run();
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace dlt::net
