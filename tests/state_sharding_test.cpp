// Differential harness for the sharded state-application pipeline (ISSUE
// 5): with `parallel_state` on, blocks and batches are partitioned into
// disjoint conflict groups (core/partition.hpp), the groups are checked
// concurrently against frozen pre-batch state, and mutations are committed
// serially in item order. The serial path is the oracle: every seed run
// serially and at worker counts {1, 2, 4, 8} must produce byte-identical
// traces, equal RunMetrics, identical rejection codes, and converged final
// state — and the `parallel.state.*` work accounting (batches, groups,
// demotions, txs) must be a pure function of the input, independent of the
// worker count.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "chain_test_util.hpp"
#include "core/chain_cluster.hpp"
#include "core/lattice_cluster.hpp"
#include "core/partition.hpp"
#include "lattice_test_util.hpp"
#include "support/thread_pool.hpp"
#include "tangle/tangle.hpp"

namespace dlt {
namespace {

/// One sharding mode of the differential matrix. `threads == 0` is the
/// serial reference; otherwise state application shards onto a pool of
/// `threads` (1 = inline on the caller, still exercising partition,
/// overlay and commit phases).
struct Mode {
  const char* name;
  std::size_t threads;
};

constexpr Mode kShardModes[] = {{"w1", 1}, {"w2", 2}, {"w4", 4}, {"w8", 8}};

void apply_mode(core::CryptoConfig& crypto, const Mode& mode) {
  crypto.verify_threads = mode.threads;
  crypto.parallel_state = mode.threads > 0;
}

std::shared_ptr<support::ThreadPool> make_pool(std::size_t threads) {
  return std::make_shared<support::ThreadPool>(threads);
}

void expect_run_metrics_eq(const core::RunMetrics& a,
                           const core::RunMetrics& b, const char* mode) {
  SCOPED_TRACE(mode);
  EXPECT_EQ(a.system, b.system);
  EXPECT_DOUBLE_EQ(a.sim_duration, b.sim_duration);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.included, b.included);
  EXPECT_EQ(a.confirmed, b.confirmed);
  EXPECT_EQ(a.pending_end, b.pending_end);
  EXPECT_EQ(a.reorgs, b.reorgs);
  EXPECT_EQ(a.orphaned_blocks, b.orphaned_blocks);
  EXPECT_EQ(a.max_reorg_depth, b.max_reorg_depth);
  EXPECT_EQ(a.blocks_produced, b.blocks_produced);
  EXPECT_EQ(a.stored_bytes, b.stored_bytes);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.message_bytes, b.message_bytes);
  EXPECT_EQ(a.inclusion_latency.count(), b.inclusion_latency.count());
  EXPECT_EQ(a.confirmation_latency.count(), b.confirmation_latency.count());
}

/// The `parallel.state.*` work accounting read back from a registry.
struct ShardStats {
  std::uint64_t batches = 0;
  std::uint64_t groups = 0;
  std::uint64_t demotions = 0;
  std::uint64_t txs = 0;

  static ShardStats read(const obs::MetricsRegistry& reg) {
    ShardStats s;
    auto get = [&](const char* name) -> std::uint64_t {
      const obs::Counter* c = reg.find_counter(name);
      return c ? c->value() : 0;
    };
    s.batches = get("parallel.state.batches");
    s.groups = get("parallel.state.groups");
    s.demotions = get("parallel.state.demotions");
    s.txs = get("parallel.state.txs");
    return s;
  }
  bool operator==(const ShardStats& o) const {
    return batches == o.batches && groups == o.groups &&
           demotions == o.demotions && txs == o.txs;
  }
};

// ----------------------------------------------- registry JSON filtering

bool volatile_metric(const std::string& key) {
  return key.find("profile.") != std::string::npos ||
         key.find("_us") != std::string::npos ||
         key.find(".workers") != std::string::npos;
}

/// Rebuilds the registry's canonical JSON without wall-clock and
/// topology-dependent members: any metric whose name contains "profile."
/// (scoped timings), "_us" (latency histograms) or ".workers" (pool-size
/// gauges). The registry's encoder emits no whitespace, keys carry no
/// escapes, and every value is either a number or a balanced object, so a
/// linear scan suffices. Everything that survives the filter must be
/// byte-identical across worker counts.
std::string filter_registry_json(const std::string& obj) {
  std::string out = "{";
  bool first = true;
  std::size_t i = 1;  // past the opening '{'
  while (i + 1 < obj.size()) {
    if (obj[i] == ',') {
      ++i;
      continue;
    }
    const std::size_t key_end = obj.find('"', i + 1);
    const std::string key = obj.substr(i + 1, key_end - i - 1);
    i = key_end + 2;  // past closing quote and ':'
    const std::size_t value_start = i;
    if (obj[i] == '{') {
      int depth = 0;
      do {
        if (obj[i] == '{') ++depth;
        if (obj[i] == '}') --depth;
        ++i;
      } while (depth > 0);
    } else {
      while (i + 1 < obj.size() && obj[i] != ',') ++i;
    }
    std::string value = obj.substr(value_start, i - value_start);
    if (volatile_metric(key)) continue;
    if (!value.empty() && value[0] == '{') value = filter_registry_json(value);
    if (!first) out += ',';
    first = false;
    out += '"';
    out += key;
    out += "\":";
    out += value;
  }
  out += '}';
  return out;
}

TEST(StateShardingFilter, DropsVolatileMembersKeepsTheRest) {
  obs::MetricsRegistry reg;
  reg.counter("parallel.state.batches").inc(3);
  reg.gauge("parallel.state.workers").set(8);
  reg.counter("blocks.connected").inc(12);
  reg.histogram("parallel.state.join_us").observe(17.0);
  reg.histogram("profile.connect").observe(4.0);
  const std::string filtered = filter_registry_json(reg.to_json().to_string());
  EXPECT_NE(filtered.find("parallel.state.batches"), std::string::npos);
  EXPECT_NE(filtered.find("blocks.connected"), std::string::npos);
  EXPECT_EQ(filtered.find("workers"), std::string::npos);
  EXPECT_EQ(filtered.find("join_us"), std::string::npos);
  EXPECT_EQ(filtered.find("profile."), std::string::npos);
}

// ------------------------------------------------- partitioner unit tests

Hash256 key_of(std::uint8_t b) {
  Hash256 k{};
  k[0] = b;
  return k;
}

TEST(ConflictPartitioner, EmptyAndSingleton) {
  core::ConflictPartitioner empty(0);
  EXPECT_EQ(empty.item_count(), 0u);
  EXPECT_EQ(empty.group_count(), 0u);
  EXPECT_TRUE(empty.groups().empty());

  core::ConflictPartitioner one(1);
  one.add_key(0, key_of(1));
  EXPECT_EQ(one.group_count(), 1u);
  EXPECT_EQ(one.group_of(0), 0u);
  const auto groups = one.groups();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], std::vector<std::size_t>{0});
}

TEST(ConflictPartitioner, DisjointKeysFormSingletons) {
  core::ConflictPartitioner p(4);
  for (std::size_t i = 0; i < 4; ++i)
    p.add_key(i, key_of(static_cast<std::uint8_t>(i)));
  EXPECT_EQ(p.group_count(), 4u);
  const auto groups = p.groups();
  ASSERT_EQ(groups.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(groups[i], std::vector<std::size_t>{i});
    EXPECT_EQ(p.group_of(i), i);
  }
}

TEST(ConflictPartitioner, SharedKeysMergeTransitively) {
  // 0-1 share key a, 1-2 share key b: {0,1,2} is one group. 3 is alone.
  core::ConflictPartitioner p(4);
  p.add_key(0, key_of(0xa));
  p.add_key(1, key_of(0xa));
  p.add_key(1, key_of(0xb));
  p.add_key(2, key_of(0xb));
  p.add_key(3, key_of(0xc));
  EXPECT_EQ(p.group_count(), 2u);
  const auto groups = p.groups();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(groups[1], std::vector<std::size_t>{3});
  EXPECT_EQ(p.group_of(2), 0u);  // canonical id = smallest member
}

TEST(ConflictPartitioner, DuplicateKeysAreHarmless) {
  core::ConflictPartitioner p(3);
  p.add_key(0, key_of(1));
  p.add_key(0, key_of(1));  // repeated within one item
  p.add_key(1, key_of(2));
  p.add_key(1, key_of(2));
  p.add_key(2, key_of(1));  // joins item 0
  p.add_key(2, key_of(1));  // repeated (item, key) pair
  EXPECT_EQ(p.group_count(), 2u);
  const auto groups = p.groups();
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(groups[1], std::vector<std::size_t>{1});
}

TEST(ConflictPartitioner, CanonicalLayoutSurvivesMergeOrder) {
  // Merging high indices first must still yield smallest-member group ids
  // and ascending layout: {0,2,4} via key a (added 4, 2, 0) and {1,3} via
  // key b (added 3, 1).
  core::ConflictPartitioner p(5);
  p.add_key(4, key_of(0xa));
  p.add_key(2, key_of(0xa));
  p.add_key(3, key_of(0xb));
  p.add_key(1, key_of(0xb));
  p.add_key(0, key_of(0xa));
  EXPECT_EQ(p.group_count(), 2u);
  const auto groups = p.groups();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 2, 4}));
  EXPECT_EQ(groups[1], (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(p.group_of(4), 0u);
  EXPECT_EQ(p.group_of(3), 1u);
}

// ------------------------------------------------------- chain (clusters)

struct ChainOutcome {
  std::string trace;
  core::RunMetrics metrics;
  chain::BlockHash tip;
  bool converged = false;
  ShardStats shard;
  std::string registry_json;  // filtered: no timings, no worker gauges
  std::vector<chain::Amount> balances;  // account model only
};

core::ChainClusterConfig chain_base_config(chain::ChainParams params) {
  core::ChainClusterConfig cfg;
  cfg.params = std::move(params);
  cfg.params.verify_pow = false;
  cfg.params.initial_difficulty = 1e6;
  cfg.params.block_interval = 5.0;
  cfg.params.retarget_window = 0;
  cfg.node_count = 4;
  cfg.miner_count = 3;
  cfg.total_hashrate = 1e6 / 5.0;
  cfg.account_count = 8;
  cfg.link = net::LinkParams{1.0, 0.3, 1e7};  // delay → forks + reorgs
  cfg.seed = 11;
  cfg.obs.trace_capacity = 1u << 16;
  return cfg;
}

ChainOutcome run_chain(core::ChainClusterConfig cfg) {
  core::ChainCluster cluster(cfg);
  cluster.start();
  Rng wl_rng(7);
  core::WorkloadConfig wl;
  wl.account_count = cfg.account_count;
  wl.tx_rate = 0.5;
  wl.duration = 300.0;
  cluster.schedule_workload(core::generate_payments(wl, wl_rng));
  cluster.run_for(400.0);

  ChainOutcome out;
  out.trace = cluster.tracer().to_jsonl();
  out.metrics = cluster.metrics();
  out.tip = cluster.node(0).chain().tip_hash();
  out.converged = cluster.converged();
  out.shard = ShardStats::read(cluster.metrics_registry());
  out.registry_json =
      filter_registry_json(cluster.metrics_registry().to_json().to_string());
  if (cfg.params.tx_model == chain::TxModel::kAccount) {
    const chain::WorldState& state = cluster.node(0).chain().world_state();
    for (std::size_t i = 0; i < cfg.account_count; ++i)
      out.balances.push_back(state.balance_of(cluster.account(i).account_id()));
  }
  return out;
}

TEST(StateShardingChain, UtxoClusterMatchesSerialAtAllWorkerCounts) {
  core::ChainClusterConfig serial = chain_base_config(chain::bitcoin_like());
  const ChainOutcome base = run_chain(serial);
  EXPECT_TRUE(base.converged);
  EXPECT_GT(base.metrics.included, 0u);
  EXPECT_EQ(base.shard.batches, 0u);  // serial reference never shards

  ChainOutcome prev{};
  bool have_prev = false;
  for (const Mode& mode : kShardModes) {
    core::ChainClusterConfig cfg = chain_base_config(chain::bitcoin_like());
    apply_mode(cfg.crypto, mode);
    const ChainOutcome got = run_chain(cfg);
    SCOPED_TRACE(mode.name);
    EXPECT_EQ(got.trace, base.trace);
    expect_run_metrics_eq(got.metrics, base.metrics, mode.name);
    EXPECT_EQ(got.tip, base.tip);
    EXPECT_TRUE(got.converged);
    EXPECT_GT(got.shard.batches, 0u);
    EXPECT_GT(got.shard.txs, 0u);
    // Partitioning is a pure function of block content: batch, group,
    // demotion and applied-tx counts — and every other non-timing metric
    // in the registry — agree at every worker count.
    if (have_prev) {
      EXPECT_TRUE(got.shard == prev.shard);
      EXPECT_EQ(got.registry_json, prev.registry_json);
    }
    prev = got;
    have_prev = true;
  }
}

TEST(StateShardingChain, AccountClusterMatchesSerialAtAllWorkerCounts) {
  core::ChainClusterConfig serial = chain_base_config(chain::ethereum_like());
  const ChainOutcome base = run_chain(serial);
  EXPECT_TRUE(base.converged);
  EXPECT_GT(base.metrics.included, 0u);

  ChainOutcome prev{};
  bool have_prev = false;
  for (const Mode& mode : kShardModes) {
    core::ChainClusterConfig cfg = chain_base_config(chain::ethereum_like());
    apply_mode(cfg.crypto, mode);
    const ChainOutcome got = run_chain(cfg);
    SCOPED_TRACE(mode.name);
    EXPECT_EQ(got.trace, base.trace);
    expect_run_metrics_eq(got.metrics, base.metrics, mode.name);
    EXPECT_EQ(got.tip, base.tip);
    EXPECT_EQ(got.balances, base.balances);
    EXPECT_TRUE(got.converged);
    EXPECT_GT(got.shard.batches, 0u);
    if (have_prev) {
      EXPECT_TRUE(got.shard == prev.shard);
      EXPECT_EQ(got.registry_json, prev.registry_json);
    }
    prev = got;
    have_prev = true;
  }
}

TEST(StateShardingChain, ComposesWithParallelValidation) {
  // Both pipelines on at once: stateless verdict sharding feeds the
  // stateful group check; the trace must still match the serial oracle.
  core::ChainClusterConfig serial = chain_base_config(chain::bitcoin_like());
  const ChainOutcome base = run_chain(serial);

  core::ChainClusterConfig cfg = chain_base_config(chain::bitcoin_like());
  cfg.crypto.verify_threads = 4;
  cfg.crypto.parallel_validation = true;
  cfg.crypto.parallel_state = true;
  const ChainOutcome got = run_chain(cfg);
  EXPECT_EQ(got.trace, base.trace);
  expect_run_metrics_eq(got.metrics, base.metrics, "pv+ps");
  EXPECT_EQ(got.tip, base.tip);
  EXPECT_TRUE(got.converged);
  EXPECT_GT(got.shard.batches, 0u);
}

// --------------------------------------------- chain (direct, rejections)

/// Re-solves a block whose body was edited after sealing (merkle root and
/// header hash change; the PoW payload is re-derived from scratch).
void reseal(chain::Block& b) {
  b.header.merkle_root = b.compute_merkle_root();
  b.header.invalidate_digests();
  for (std::uint64_t nonce = 0;; ++nonce) {
    b.header.nonce = nonce;
    if (chain::meets_target(b.header.pow_digest(), b.header.difficulty)) break;
  }
}

/// A fresh chain with state sharding enabled on `threads` workers
/// (0 = plain serial chain).
std::unique_ptr<chain::Blockchain> make_chain(const chain::ChainParams& params,
                                              const chain::GenesisSpec& genesis,
                                              std::size_t threads,
                                              obs::MetricsRegistry* reg) {
  auto c = std::make_unique<chain::Blockchain>(params, genesis);
  if (reg) c->set_metrics(reg);
  if (threads > 0) {
    c->set_sigcache(std::make_shared<crypto::SignatureCache>(1u << 12));
    c->set_verify_pool(make_pool(threads));
    c->set_parallel_state(true);
  }
  return c;
}

TEST(StateShardingChain, UtxoTamperedSignatureRejectsIdentically) {
  const auto keys = chain::testutil::make_keys(2);
  const chain::GenesisSpec genesis = chain::testutil::fund_all(keys, 1'000'000);
  const crypto::AccountId miner = keys[0].account_id();
  Rng rng(5);

  chain::Blockchain ref(chain::testutil::cheap_pow_utxo(), genesis);

  chain::Outpoint coin;
  chain::Amount coin_value = 0;
  ref.utxo_set().for_each_owned(
      keys[0].account_id(),
      [&](const chain::Outpoint& op, const chain::TxOut& out) {
        coin = op;
        coin_value = out.value;
        return false;
      });
  ASSERT_GT(coin_value, 0u);

  chain::UtxoTransaction spend;
  spend.inputs.push_back(chain::TxIn{coin, keys[0].public_key(), {}});
  spend.outputs.push_back(chain::TxOut{coin_value, keys[1].account_id()});
  spend.sign_all({keys[0]}, rng);

  const chain::Block good = chain::testutil::seal_block(
      ref, ref.tip_hash(),
      chain::UtxoTxList{
          chain::UtxoTransaction::coinbase(miner, ref.params().block_reward, 1),
          spend},
      miner);
  ASSERT_TRUE(ref.submit(good));

  chain::Outpoint coin2;
  chain::Amount coin2_value = 0;
  ref.utxo_set().for_each_owned(
      keys[1].account_id(),
      [&](const chain::Outpoint& op, const chain::TxOut& out) {
        coin2 = op;
        coin2_value = out.value;
        return false;
      });
  ASSERT_GT(coin2_value, 0u);

  chain::UtxoTransaction spend2;
  spend2.inputs.push_back(chain::TxIn{coin2, keys[1].public_key(), {}});
  spend2.outputs.push_back(chain::TxOut{coin2_value, keys[0].account_id()});
  spend2.sign_all({keys[1]}, rng);

  chain::Block bad = chain::testutil::seal_block(
      ref, ref.tip_hash(),
      chain::UtxoTxList{
          chain::UtxoTransaction::coinbase(miner, ref.params().block_reward, 2),
          spend2},
      miner);
  std::get<chain::UtxoTxList>(bad.txs)[1].inputs[0].signature.s ^= 1;
  std::get<chain::UtxoTxList>(bad.txs)[1].invalidate_digests();
  reseal(bad);

  auto run_mode = [&](std::size_t threads) {
    auto chain =
        make_chain(chain::testutil::cheap_pow_utxo(), genesis, threads, nullptr);
    EXPECT_TRUE(chain->submit(good)) << "threads=" << threads;
    auto rejected = chain->submit(bad);
    EXPECT_FALSE(rejected);
    return std::pair{rejected ? std::string{} : rejected.error().code,
                     chain->tip_hash()};
  };

  const auto [serial_code, serial_tip] = run_mode(0);
  EXPECT_EQ(serial_code, "bad-signature");
  for (const Mode& mode : kShardModes) {
    SCOPED_TRACE(mode.name);
    const auto [code, tip] = run_mode(mode.threads);
    EXPECT_EQ(code, serial_code);
    EXPECT_EQ(tip, serial_tip);
  }
}

TEST(StateShardingChain, AccountTamperedSignatureRejectsIdentically) {
  const auto keys = chain::testutil::make_keys(2);
  const chain::GenesisSpec genesis = chain::testutil::fund_all(keys, 1'000'000);
  const crypto::AccountId proposer = keys[0].account_id();
  Rng rng(6);

  chain::Blockchain ref(chain::testutil::cheap_pow_account(), genesis);

  auto make_payment = [&](std::uint64_t nonce) {
    chain::AccountTransaction tx;
    tx.to = keys[1].account_id();
    tx.value = 500;
    tx.nonce = nonce;
    tx.gas_limit = tx.intrinsic_gas();
    tx.gas_price = 1;
    tx.sign(keys[0], rng);
    return tx;
  };

  const chain::Block good = chain::testutil::seal_account_tip(
      ref, chain::AccountTxList{make_payment(0)}, proposer);
  ASSERT_TRUE(ref.submit(good));
  const chain::Block next = chain::testutil::seal_account_tip(
      ref, chain::AccountTxList{make_payment(1)}, proposer);

  chain::Block bad = next;
  std::get<chain::AccountTxList>(bad.txs)[0].signature.s ^= 1;
  std::get<chain::AccountTxList>(bad.txs)[0].invalidate_digests();
  reseal(bad);

  auto run_mode = [&](std::size_t threads) {
    auto chain = make_chain(chain::testutil::cheap_pow_account(), genesis,
                            threads, nullptr);
    EXPECT_TRUE(chain->submit(good));
    auto rejected = chain->submit(bad);
    EXPECT_FALSE(rejected);
    return std::pair{rejected ? std::string{} : rejected.error().code,
                     chain->tip_hash()};
  };

  const auto [serial_code, serial_tip] = run_mode(0);
  EXPECT_EQ(serial_code, "bad-signature");
  for (const Mode& mode : kShardModes) {
    SCOPED_TRACE(mode.name);
    const auto [code, tip] = run_mode(mode.threads);
    EXPECT_EQ(code, serial_code);
    EXPECT_EQ(tip, serial_tip);
  }
}

TEST(StateShardingChain, InBlockDoubleSpendRejectsIdentically) {
  // Two payments spending the same outpoint share a conflict key, so they
  // land in one group whose check fails; the block demotes to the serial
  // path and must report the exact serial error at every worker count.
  const auto keys = chain::testutil::make_keys(3);
  const chain::GenesisSpec genesis = chain::testutil::fund_all(keys, 1'000'000);
  const crypto::AccountId miner = keys[0].account_id();
  Rng rng(8);

  chain::Blockchain ref(chain::testutil::cheap_pow_utxo(), genesis);
  auto coin_of = [&](std::size_t k) {
    chain::Outpoint coin;
    chain::Amount value = 0;
    ref.utxo_set().for_each_owned(
        keys[k].account_id(),
        [&](const chain::Outpoint& op, const chain::TxOut& out) {
          coin = op;
          value = out.value;
          return false;
        });
    EXPECT_GT(value, 0u);
    return std::pair{coin, value};
  };

  const auto [coin0, value0] = coin_of(0);
  const auto [coin1, value1] = coin_of(1);

  auto spend_to = [&](const chain::Outpoint& coin, chain::Amount value,
                      const crypto::KeyPair& owner, std::size_t to) {
    chain::UtxoTransaction tx;
    tx.inputs.push_back(chain::TxIn{coin, owner.public_key(), {}});
    tx.outputs.push_back(chain::TxOut{value, keys[to].account_id()});
    tx.sign_all({owner}, rng);
    return tx;
  };

  // First and second payment double-spend coin0 (conflicting group); the
  // third spends coin1 (disjoint group), so the partition genuinely forms
  // multiple groups before the conflicting one fails.
  const chain::Block bad = chain::testutil::seal_block(
      ref, ref.tip_hash(),
      chain::UtxoTxList{
          chain::UtxoTransaction::coinbase(miner, ref.params().block_reward, 1),
          spend_to(coin0, value0, keys[0], 1),
          spend_to(coin0, value0, keys[0], 2),
          spend_to(coin1, value1, keys[1], 2)},
      miner);

  auto run_mode = [&](std::size_t threads, obs::MetricsRegistry* reg) {
    auto chain =
        make_chain(chain::testutil::cheap_pow_utxo(), genesis, threads, reg);
    auto rejected = chain->submit(bad);
    EXPECT_FALSE(rejected);
    return std::pair{rejected ? std::string{} : rejected.error().code,
                     chain->tip_hash()};
  };

  const auto [serial_code, serial_tip] = run_mode(0, nullptr);
  EXPECT_FALSE(serial_code.empty());
  for (const Mode& mode : kShardModes) {
    SCOPED_TRACE(mode.name);
    obs::MetricsRegistry reg;
    const auto [code, tip] = run_mode(mode.threads, &reg);
    EXPECT_EQ(code, serial_code);
    EXPECT_EQ(tip, serial_tip);
    const ShardStats s = ShardStats::read(reg);
    EXPECT_EQ(s.batches, 1u);
    EXPECT_EQ(s.demotions, 1u);  // group-check failure demotes
    EXPECT_EQ(s.txs, 0u);        // nothing applied via the sharded commit
  }
}

TEST(StateShardingChain, FullyConflictingBlockDemotes) {
  // A payment chain inside one block (tx N spends tx N-1's output) shares
  // the created-outpoint key between neighbours: one spanning group, so
  // the block demotes to the serial path — and still connects.
  const auto keys = chain::testutil::make_keys(3);
  const chain::GenesisSpec genesis = chain::testutil::fund_all(keys, 1'000'000);
  const crypto::AccountId miner = keys[0].account_id();
  Rng rng(4);

  chain::Blockchain ref(chain::testutil::cheap_pow_utxo(), genesis);
  chain::Outpoint coin;
  chain::Amount value = 0;
  ref.utxo_set().for_each_owned(
      keys[0].account_id(),
      [&](const chain::Outpoint& op, const chain::TxOut& out) {
        coin = op;
        value = out.value;
        return false;
      });
  ASSERT_GT(value, 0u);

  chain::UtxoTransaction hop1;
  hop1.inputs.push_back(chain::TxIn{coin, keys[0].public_key(), {}});
  hop1.outputs.push_back(chain::TxOut{value, keys[1].account_id()});
  hop1.sign_all({keys[0]}, rng);

  chain::UtxoTransaction hop2;
  hop2.inputs.push_back(
      chain::TxIn{chain::Outpoint{hop1.id(), 0}, keys[1].public_key(), {}});
  hop2.outputs.push_back(chain::TxOut{value, keys[2].account_id()});
  hop2.sign_all({keys[1]}, rng);

  const chain::Block block = chain::testutil::seal_block(
      ref, ref.tip_hash(),
      chain::UtxoTxList{
          chain::UtxoTransaction::coinbase(miner, ref.params().block_reward, 1),
          hop1, hop2},
      miner);
  ASSERT_TRUE(ref.submit(block));

  for (const Mode& mode : kShardModes) {
    SCOPED_TRACE(mode.name);
    obs::MetricsRegistry reg;
    auto chain = make_chain(chain::testutil::cheap_pow_utxo(), genesis,
                            mode.threads, &reg);
    ASSERT_TRUE(chain->submit(block));
    EXPECT_EQ(chain->tip_hash(), ref.tip_hash());
    const ShardStats s = ShardStats::read(reg);
    EXPECT_EQ(s.batches, 1u);
    EXPECT_EQ(s.groups, 1u);  // one spanning group
    EXPECT_EQ(s.demotions, 1u);
    EXPECT_EQ(s.txs, 0u);
  }
}

TEST(StateShardingChain, DisjointBlockFormsSingletonGroups) {
  // Six payments spending six unrelated genesis coins to six distinct
  // owners: the partition must form exactly six singleton groups and the
  // sharded commit applies all of them.
  constexpr std::size_t kPayments = 6;
  const auto keys = chain::testutil::make_keys(2 * kPayments);
  const chain::GenesisSpec genesis = chain::testutil::fund_all(keys, 1'000'000);
  const crypto::AccountId miner = keys[0].account_id();
  Rng rng(12);

  chain::Blockchain ref(chain::testutil::cheap_pow_utxo(), genesis);
  chain::UtxoTxList txs{
      chain::UtxoTransaction::coinbase(miner, ref.params().block_reward, 1)};
  for (std::size_t i = 0; i < kPayments; ++i) {
    chain::Outpoint coin;
    chain::Amount value = 0;
    ref.utxo_set().for_each_owned(
        keys[i].account_id(),
        [&](const chain::Outpoint& op, const chain::TxOut& out) {
          coin = op;
          value = out.value;
          return false;
        });
    ASSERT_GT(value, 0u);
    chain::UtxoTransaction tx;
    tx.inputs.push_back(chain::TxIn{coin, keys[i].public_key(), {}});
    tx.outputs.push_back(
        chain::TxOut{value, keys[kPayments + i].account_id()});
    tx.sign_all({keys[i]}, rng);
    txs.push_back(std::move(tx));
  }
  const chain::Block block = chain::testutil::seal_block(
      ref, ref.tip_hash(), std::move(txs), miner);
  ASSERT_TRUE(ref.submit(block));

  for (const Mode& mode : kShardModes) {
    SCOPED_TRACE(mode.name);
    obs::MetricsRegistry reg;
    auto chain = make_chain(chain::testutil::cheap_pow_utxo(), genesis,
                            mode.threads, &reg);
    ASSERT_TRUE(chain->submit(block));
    EXPECT_EQ(chain->tip_hash(), ref.tip_hash());
    const ShardStats s = ShardStats::read(reg);
    EXPECT_EQ(s.batches, 1u);
    EXPECT_EQ(s.groups, kPayments);
    EXPECT_EQ(s.demotions, 0u);
    EXPECT_EQ(s.txs, kPayments);
  }
}

// ------------------------------------------------------------------ lattice

struct LatticeOutcome {
  std::string trace;
  core::RunMetrics metrics;
  bool converged = false;
  bool conserves = false;
  std::vector<lattice::Amount> balances;
};

LatticeOutcome run_lattice_cluster(const Mode& mode, bool enable) {
  core::LatticeClusterConfig cfg;
  cfg.node_count = 3;
  cfg.representative_count = 2;
  cfg.account_count = 6;
  cfg.params.work_bits = 2;
  cfg.seed = 99;
  cfg.obs.trace_capacity = 1u << 16;
  if (enable) apply_mode(cfg.crypto, mode);
  core::LatticeCluster cluster(cfg);
  cluster.fund_accounts();
  Rng wl_rng(42);
  core::WorkloadConfig wl;
  wl.account_count = 6;
  wl.tx_rate = 1.0;
  wl.duration = 30.0;
  wl.max_amount = 1000;
  cluster.schedule_workload(core::generate_payments(wl, wl_rng));
  cluster.run_for(60.0);

  LatticeOutcome out;
  out.trace = cluster.tracer().to_jsonl();
  out.metrics = cluster.metrics();
  out.converged = cluster.converged();
  const lattice::Ledger& ledger = cluster.node(0).ledger();
  out.conserves = ledger.conserves_value();
  for (std::size_t i = 0; i < cfg.account_count; ++i)
    out.balances.push_back(ledger.balance_of(cluster.account(i).account_id()));
  return out;
}

TEST(StateShardingLattice, ClusterTogglesAreTraceNeutral) {
  // Lattice nodes apply gossip one block at a time, so the cluster never
  // forms a multi-item batch — the toggle must be an exact no-op on the
  // trace, not merely equivalent.
  const LatticeOutcome base = run_lattice_cluster(Mode{"serial", 0}, false);
  EXPECT_TRUE(base.converged);
  EXPECT_TRUE(base.conserves);
  EXPECT_GT(base.metrics.included, 0u);

  for (const Mode& mode : kShardModes) {
    const LatticeOutcome got = run_lattice_cluster(mode, true);
    SCOPED_TRACE(mode.name);
    EXPECT_EQ(got.trace, base.trace);
    expect_run_metrics_eq(got.metrics, base.metrics, mode.name);
    EXPECT_TRUE(got.converged);
    EXPECT_TRUE(got.conserves);
    EXPECT_EQ(got.balances, base.balances);
  }
}

/// Snapshot of a ledger's externally observable state for the batch
/// differential: balances and head hashes per account plus the global
/// conservation invariant.
struct LatticeSnapshot {
  std::vector<lattice::Amount> balances;
  std::vector<lattice::BlockHash> heads;
  std::uint64_t block_count = 0;
  bool conserves = false;

  static LatticeSnapshot of(const lattice::Ledger& ledger,
                            const std::vector<crypto::KeyPair>& accounts) {
    LatticeSnapshot s;
    for (const crypto::KeyPair& k : accounts) {
      s.balances.push_back(ledger.balance_of(k.account_id()));
      const lattice::AccountInfo* info = ledger.account(k.account_id());
      s.heads.push_back(info ? info->head().hash() : lattice::BlockHash{});
    }
    s.block_count = ledger.block_count();
    s.conserves = ledger.conserves_value();
    return s;
  }
  bool operator==(const LatticeSnapshot& o) const {
    return balances == o.balances && heads == o.heads &&
           block_count == o.block_count && conserves == o.conserves;
  }
};

TEST(StateShardingLattice, BatchMatchesSerialLoopAtAllWorkerCounts) {
  const lattice::LatticeParams params = lattice::testutil::cheap_params();
  const crypto::KeyPair genesis_key = crypto::KeyPair::from_seed(1);
  constexpr lattice::Amount kSupply = 1'000'000;
  const auto accounts = chain::testutil::make_keys(4, 0x200);

  // Construct every block once against a scratch ledger; each mode then
  // replays identical bytes.
  lattice::Ledger scratch(params, genesis_key.account_id(),
                          genesis_key.account_id(), kSupply);
  Rng rng(9);
  lattice::testutil::Builder build{scratch, rng, params.work_bits};

  // Prefix (applied serially in every mode): fund and open each account.
  std::vector<lattice::LatticeBlock> prefix;
  for (const crypto::KeyPair& k : accounts) {
    lattice::LatticeBlock send =
        build.send(genesis_key, k.account_id(), 10'000);
    ASSERT_TRUE(scratch.process(send).ok());
    lattice::LatticeBlock open =
        build.open(k, send.hash(), 10'000, genesis_key.account_id());
    ASSERT_TRUE(scratch.process(open).ok());
    prefix.push_back(std::move(send));
    prefix.push_back(std::move(open));
  }

  // Batch 1 — fully disjoint: each account sends to a fresh external
  // address, so no keys (account, head, link) are shared.
  std::vector<lattice::LatticeBlock> batch1;
  for (std::size_t i = 0; i < accounts.size(); ++i) {
    batch1.push_back(build.send(
        accounts[i], crypto::KeyPair::from_seed(0x900 + i).account_id(),
        100 + static_cast<lattice::Amount>(i)));
  }
  for (const lattice::LatticeBlock& b : batch1)
    ASSERT_TRUE(scratch.process(b).ok());

  // Batch 2 — mixed: an in-batch chain on account 0 (shared account key),
  // an independent send, a tampered signature, a resubmitted prefix block
  // and a dangling predecessor.
  std::vector<lattice::LatticeBlock> batch2;
  batch2.push_back(build.send(
      accounts[0], crypto::KeyPair::from_seed(0x910).account_id(), 11));
  ASSERT_TRUE(scratch.process(batch2.back()).ok());
  batch2.push_back(build.send(
      accounts[0], crypto::KeyPair::from_seed(0x911).account_id(), 12));
  ASSERT_TRUE(scratch.process(batch2.back()).ok());
  batch2.push_back(build.send(
      accounts[1], crypto::KeyPair::from_seed(0x912).account_id(), 13));
  ASSERT_TRUE(scratch.process(batch2.back()).ok());

  lattice::LatticeBlock tampered = build.send(
      accounts[2], crypto::KeyPair::from_seed(0x913).account_id(), 14);
  tampered.signature.s ^= 1;
  batch2.push_back(tampered);

  batch2.push_back(prefix[1]);  // duplicate of account 0's open block

  lattice::LatticeBlock gap;
  gap.type = lattice::BlockType::kSend;
  gap.account = accounts[3].account_id();
  gap.previous = crypto::Sha256::digest(as_bytes("no-such-block"));
  gap.balance = 1;
  gap.link = crypto::KeyPair::from_seed(0x914).account_id();
  gap.representative = genesis_key.account_id();
  batch2.push_back(build.finish(std::move(gap), accounts[3]));

  auto run_mode = [&](std::size_t threads, obs::MetricsRegistry* reg) {
    lattice::Ledger ledger(params, genesis_key.account_id(),
                           genesis_key.account_id(), kSupply);
    if (reg) ledger.set_metrics(reg);
    if (threads > 0) {
      ledger.set_verify_pool(make_pool(threads));
      ledger.set_parallel_state(true);
    }
    std::vector<std::string> codes;
    auto push = [&](const Status& st) {
      codes.push_back(st.ok() ? "ok" : st.error().code);
    };
    for (const lattice::LatticeBlock& b : prefix) push(ledger.process(b));
    if (threads > 0) {
      for (const Status& st : ledger.process_batch(batch1)) push(st);
      for (const Status& st : ledger.process_batch(batch2)) push(st);
    } else {
      for (const lattice::LatticeBlock& b : batch1) push(ledger.process(b));
      for (const lattice::LatticeBlock& b : batch2) push(ledger.process(b));
    }
    return std::pair{codes, LatticeSnapshot::of(ledger, accounts)};
  };

  const auto [serial_codes, serial_state] = run_mode(0, nullptr);
  EXPECT_TRUE(serial_state.conserves);
  // The mixed batch's tail: tampered, duplicate, dangling predecessor.
  ASSERT_GE(serial_codes.size(), 3u);
  EXPECT_EQ(serial_codes[serial_codes.size() - 3], "bad-signature");
  EXPECT_EQ(serial_codes[serial_codes.size() - 2], "duplicate");
  EXPECT_EQ(serial_codes[serial_codes.size() - 1], "gap-previous");

  ShardStats prev{};
  bool have_prev = false;
  for (const Mode& mode : kShardModes) {
    SCOPED_TRACE(mode.name);
    obs::MetricsRegistry reg;
    const auto [codes, state] = run_mode(mode.threads, &reg);
    EXPECT_EQ(codes, serial_codes);
    EXPECT_TRUE(state == serial_state);
    const ShardStats s = ShardStats::read(reg);
    EXPECT_EQ(s.batches, 2u);
    EXPECT_EQ(s.demotions, 0u);  // both batches form >= 2 groups
    if (have_prev) {
      EXPECT_TRUE(s == prev);
    }
    prev = s;
    have_prev = true;
  }
}

TEST(StateShardingLattice, ChainedBatchDemotesToSerial) {
  const lattice::LatticeParams params = lattice::testutil::cheap_params();
  const crypto::KeyPair genesis_key = crypto::KeyPair::from_seed(1);
  const crypto::KeyPair alice = crypto::KeyPair::from_seed(0x300);
  constexpr lattice::Amount kSupply = 1'000'000;

  lattice::Ledger scratch(params, genesis_key.account_id(),
                          genesis_key.account_id(), kSupply);
  Rng rng(3);
  lattice::testutil::Builder build{scratch, rng, params.work_bits};
  const lattice::LatticeBlock fund =
      build.send(genesis_key, alice.account_id(), 5'000);
  ASSERT_TRUE(scratch.process(fund).ok());
  const lattice::LatticeBlock open =
      build.open(alice, fund.hash(), 5'000, genesis_key.account_id());
  ASSERT_TRUE(scratch.process(open).ok());

  // Two consecutive sends from one account: the shared account key forms
  // a single spanning group, so the batch demotes to the serial loop.
  std::vector<lattice::LatticeBlock> batch;
  batch.push_back(build.send(
      alice, crypto::KeyPair::from_seed(0x920).account_id(), 10));
  ASSERT_TRUE(scratch.process(batch.back()).ok());
  batch.push_back(build.send(
      alice, crypto::KeyPair::from_seed(0x921).account_id(), 20));
  ASSERT_TRUE(scratch.process(batch.back()).ok());

  for (const Mode& mode : kShardModes) {
    SCOPED_TRACE(mode.name);
    obs::MetricsRegistry reg;
    lattice::Ledger ledger(params, genesis_key.account_id(),
                           genesis_key.account_id(), kSupply);
    ledger.set_metrics(&reg);
    ledger.set_verify_pool(make_pool(mode.threads));
    ledger.set_parallel_state(true);
    ASSERT_TRUE(ledger.process(fund).ok());
    ASSERT_TRUE(ledger.process(open).ok());
    for (const Status& st : ledger.process_batch(batch))
      EXPECT_TRUE(st.ok());
    EXPECT_EQ(ledger.head_of(alice.account_id()),
              scratch.head_of(alice.account_id()));
    const ShardStats s = ShardStats::read(reg);
    EXPECT_EQ(s.batches, 1u);
    EXPECT_EQ(s.groups, 1u);
    EXPECT_EQ(s.demotions, 1u);
    EXPECT_EQ(s.txs, 0u);
  }
}

// ------------------------------------------------------------------ tangle

TEST(StateShardingTangle, BatchMatchesSerialAttachLoop) {
  tangle::TangleParams params;
  params.work_bits = 2;
  const crypto::KeyPair issuer = crypto::KeyPair::from_seed(1);

  // Build all transactions once against a reference tangle. The prefix is
  // attached serially everywhere; the two batches replay through
  // attach_batch (serial oracle: one attach() per item in order).
  std::vector<tangle::TangleTx> prefix;
  std::vector<tangle::TangleTx> batch1;
  std::vector<tangle::TangleTx> batch2;
  {
    tangle::Tangle ref(params);
    Rng rng(3);
    for (int i = 0; i < 10; ++i) {
      const tangle::TxHash trunk = ref.select_tip(rng);
      const tangle::TxHash branch = ref.select_tip(rng);
      tangle::TangleTx tx = tangle::make_tx(
          ref, issuer, trunk, branch,
          crypto::Sha256::digest(as_bytes("ss-prefix" + std::to_string(i))),
          i, rng);
      ASSERT_TRUE(ref.attach(tx).ok());
      prefix.push_back(tx);
    }

    // Batch 1 — disjoint: each tx approves its own prefix site (trunk ==
    // branch), so the only shared structure is the long-settled past cone.
    for (int i = 0; i < 6; ++i) {
      batch1.push_back(tangle::make_tx(
          ref, issuer, prefix[i].hash(), prefix[i].hash(),
          crypto::Sha256::digest(as_bytes("ss-b1-" + std::to_string(i))),
          20.0 + i, rng));
    }
    for (const tangle::TangleTx& tx : batch1) ASSERT_TRUE(ref.attach(tx).ok());

    // Batch 2 — mixed: an in-batch parent chain, a forward reference
    // (child ordered before its parent — both serial and sharded reject
    // the child), a tampered signature, a duplicate, and an in-batch
    // double spend (child re-spends a key already spent in its own cone).
    tangle::TangleTx chain_a = tangle::make_tx(
        ref, issuer, batch1[0].hash(), batch1[0].hash(),
        crypto::Sha256::digest(as_bytes("ss-b2-chain-a")), 30.0, rng);
    tangle::TangleTx chain_b = tangle::make_tx(
        ref, issuer, chain_a.hash(), chain_a.hash(),
        crypto::Sha256::digest(as_bytes("ss-b2-chain-b")), 31.0, rng);
    tangle::TangleTx orphan_parent = tangle::make_tx(
        ref, issuer, batch1[1].hash(), batch1[1].hash(),
        crypto::Sha256::digest(as_bytes("ss-b2-late-parent")), 32.0, rng);
    tangle::TangleTx forward_child = tangle::make_tx(
        ref, issuer, orphan_parent.hash(), orphan_parent.hash(),
        crypto::Sha256::digest(as_bytes("ss-b2-early-child")), 33.0, rng);
    tangle::TangleTx tampered = tangle::make_tx(
        ref, issuer, batch1[2].hash(), batch1[2].hash(),
        crypto::Sha256::digest(as_bytes("ss-b2-tampered")), 34.0, rng);
    tampered.payload.v[0] ^= 1;  // breaks the signature
    const Hash256 spend_key =
        crypto::Sha256::digest(as_bytes("ss-spend-key"));
    tangle::TangleTx spender = tangle::make_tx(
        ref, issuer, batch1[3].hash(), batch1[3].hash(),
        crypto::Sha256::digest(as_bytes("ss-b2-spender")), 35.0, rng,
        spend_key);
    tangle::TangleTx respender = tangle::make_tx(
        ref, issuer, spender.hash(), spender.hash(),
        crypto::Sha256::digest(as_bytes("ss-b2-respender")), 36.0, rng,
        spend_key);

    batch2 = {chain_a,  chain_b,  forward_child, orphan_parent,
              tampered, prefix[5], spender,      respender};
  }

  struct Outcome {
    std::vector<std::string> codes;
    std::size_t size = 0;
    std::vector<tangle::TxHash> tips;
    std::size_t genesis_weight = 0;
    std::string trace;
    ShardStats shard;
  };
  auto run_mode = [&](std::size_t threads) {
    obs::MetricsRegistry reg;
    obs::Tracer tracer;
    tracer.enable(1u << 12);
    tangle::Tangle tangle(params);
    tangle.set_probe(obs::Probe{&reg, &tracer, {}});
    if (threads > 0) {
      tangle.set_verify_pool(make_pool(threads));
      tangle.set_parallel_state(true);
    }
    Outcome out;
    auto push = [&](const Status& st) {
      out.codes.push_back(st.ok() ? "ok" : st.error().code);
    };
    for (const tangle::TangleTx& tx : prefix) push(tangle.attach(tx));
    if (threads > 0) {
      for (const Status& st : tangle.attach_batch(batch1)) push(st);
      for (const Status& st : tangle.attach_batch(batch2)) push(st);
    } else {
      for (const tangle::TangleTx& tx : batch1) push(tangle.attach(tx));
      for (const tangle::TangleTx& tx : batch2) push(tangle.attach(tx));
    }
    out.size = tangle.size();
    out.tips = tangle.tips();
    out.genesis_weight = tangle.cumulative_weight(tangle.genesis());
    out.trace = tracer.to_jsonl();
    out.shard = ShardStats::read(reg);
    return out;
  };

  const Outcome base = run_mode(0);
  // batch2 tail: forward child before its parent, then the parent lands;
  // tampered sig, duplicate, double-spend in own cone.
  const std::size_t n = base.codes.size();
  EXPECT_EQ(base.codes[n - 6], "unknown-trunk");  // forward_child
  EXPECT_EQ(base.codes[n - 5], "ok");             // orphan_parent
  EXPECT_EQ(base.codes[n - 4], "bad-signature");  // tampered
  EXPECT_EQ(base.codes[n - 3], "duplicate");      // prefix[5] again
  EXPECT_EQ(base.codes[n - 2], "ok");             // spender
  EXPECT_EQ(base.codes[n - 1], "double-spend");   // respender
  EXPECT_EQ(base.shard.batches, 0u);

  ShardStats prev{};
  bool have_prev = false;
  for (const Mode& mode : kShardModes) {
    SCOPED_TRACE(mode.name);
    const Outcome got = run_mode(mode.threads);
    EXPECT_EQ(got.codes, base.codes);
    EXPECT_EQ(got.size, base.size);
    EXPECT_EQ(got.tips, base.tips);
    EXPECT_EQ(got.genesis_weight, base.genesis_weight);
    EXPECT_EQ(got.trace, base.trace);  // commit replays events in order
    EXPECT_EQ(got.shard.batches, 2u);
    if (have_prev) {
      EXPECT_TRUE(got.shard == prev);
    }
    prev = got.shard;
    have_prev = true;
  }
}

TEST(StateShardingTangle, DisjointBatchFormsSingletonGroups) {
  tangle::TangleParams params;
  params.work_bits = 2;
  const crypto::KeyPair issuer = crypto::KeyPair::from_seed(2);
  constexpr std::size_t kBatch = 5;

  std::vector<tangle::TangleTx> prefix;
  std::vector<tangle::TangleTx> batch;
  {
    tangle::Tangle ref(params);
    Rng rng(7);
    for (std::size_t i = 0; i < kBatch; ++i) {
      const tangle::TxHash trunk = ref.select_tip(rng);
      const tangle::TxHash branch = ref.select_tip(rng);
      tangle::TangleTx tx = tangle::make_tx(
          ref, issuer, trunk, branch,
          crypto::Sha256::digest(as_bytes("ssd-p" + std::to_string(i))),
          static_cast<double>(i), rng);
      ASSERT_TRUE(ref.attach(tx).ok());
      prefix.push_back(tx);
    }
    for (std::size_t i = 0; i < kBatch; ++i) {
      batch.push_back(tangle::make_tx(
          ref, issuer, prefix[i].hash(), prefix[i].hash(),
          crypto::Sha256::digest(as_bytes("ssd-b" + std::to_string(i))),
          10.0 + static_cast<double>(i), rng));
    }
  }

  for (const Mode& mode : kShardModes) {
    SCOPED_TRACE(mode.name);
    obs::MetricsRegistry reg;
    tangle::Tangle tangle(params);
    tangle.set_probe(obs::Probe{&reg, nullptr, {}});
    tangle.set_verify_pool(make_pool(mode.threads));
    tangle.set_parallel_state(true);
    for (const tangle::TangleTx& tx : prefix)
      ASSERT_TRUE(tangle.attach(tx).ok());
    for (const Status& st : tangle.attach_batch(batch))
      EXPECT_TRUE(st.ok());
    const ShardStats s = ShardStats::read(reg);
    EXPECT_EQ(s.batches, 1u);
    EXPECT_EQ(s.groups, kBatch);
    EXPECT_EQ(s.demotions, 0u);
    EXPECT_EQ(s.txs, kBatch);
  }
}

TEST(StateShardingTangle, ChainedBatchDemotesToSerial) {
  tangle::TangleParams params;
  params.work_bits = 2;
  const crypto::KeyPair issuer = crypto::KeyPair::from_seed(3);

  std::vector<tangle::TangleTx> batch;
  std::size_t ref_size = 0;
  std::vector<tangle::TxHash> ref_tips;
  {
    tangle::Tangle ref(params);
    Rng rng(5);
    // Every tx approves the previous one: hash keys chain the whole batch
    // into a single spanning group.
    tangle::TxHash parent = ref.genesis();
    for (int i = 0; i < 4; ++i) {
      tangle::TangleTx tx = tangle::make_tx(
          ref, issuer, parent, parent,
          crypto::Sha256::digest(as_bytes("ssc-" + std::to_string(i))),
          static_cast<double>(i), rng);
      parent = tx.hash();
      ASSERT_TRUE(ref.attach(tx).ok());
      batch.push_back(tx);
    }
    ref_size = ref.size();
    ref_tips = ref.tips();
  }

  for (const Mode& mode : kShardModes) {
    SCOPED_TRACE(mode.name);
    obs::MetricsRegistry reg;
    tangle::Tangle tangle(params);
    tangle.set_probe(obs::Probe{&reg, nullptr, {}});
    tangle.set_verify_pool(make_pool(mode.threads));
    tangle.set_parallel_state(true);
    for (const Status& st : tangle.attach_batch(batch))
      EXPECT_TRUE(st.ok());
    EXPECT_EQ(tangle.size(), ref_size);
    EXPECT_EQ(tangle.tips(), ref_tips);
    const ShardStats s = ShardStats::read(reg);
    EXPECT_EQ(s.batches, 1u);
    EXPECT_EQ(s.groups, 1u);
    EXPECT_EQ(s.demotions, 1u);
    EXPECT_EQ(s.txs, 0u);
  }
}

}  // namespace
}  // namespace dlt
