// IOTA-style tangle (paper §II-B footnote 1): attachment rules, weights,
// tip selection, confirmation confidence, double-spend starvation.
#include <gtest/gtest.h>

#include <algorithm>

#include "tangle/tangle.hpp"

namespace dlt::tangle {
namespace {

TangleParams cheap() {
  TangleParams p;
  p.work_bits = 2;
  return p;
}

Hash256 payload_of(int i) {
  return crypto::Sha256::digest(as_bytes("payload" + std::to_string(i)));
}

class TangleTest : public ::testing::Test {
 protected:
  TangleTest() : issuer(crypto::KeyPair::from_seed(1)), rng(3),
                 tangle(cheap()) {}

  TangleTx issue(const TxHash& trunk, const TxHash& branch, int i,
                 const Hash256& spend = {}) {
    return make_tx(tangle, issuer, trunk, branch, payload_of(i), i, rng,
                   spend);
  }

  /// Grows the tangle by n transactions using honest tip selection.
  std::vector<TxHash> grow(int n, int base = 1000) {
    std::vector<TxHash> out;
    for (int i = 0; i < n; ++i) {
      const TxHash trunk = tangle.select_tip(rng);
      const TxHash branch = tangle.select_tip(rng);
      TangleTx tx = issue(trunk, branch, base + i);
      EXPECT_TRUE(tangle.attach(tx).ok());
      out.push_back(tx.hash());
    }
    return out;
  }

  crypto::KeyPair issuer;
  Rng rng;
  Tangle tangle;
};

TEST_F(TangleTest, GenesisIsInitialTip) {
  EXPECT_EQ(tangle.size(), 1u);
  EXPECT_EQ(tangle.tip_count(), 1u);
  EXPECT_EQ(tangle.tips()[0], tangle.genesis());
  EXPECT_EQ(tangle.cumulative_weight(tangle.genesis()), 1u);
}

TEST_F(TangleTest, AttachApprovesTwoParents) {
  TangleTx a = issue(tangle.genesis(), tangle.genesis(), 1);
  ASSERT_TRUE(tangle.attach(a).ok());
  EXPECT_EQ(tangle.size(), 2u);
  EXPECT_EQ(tangle.tip_count(), 1u);  // genesis is approved, a is the tip
  EXPECT_EQ(tangle.cumulative_weight(tangle.genesis()), 2u);

  TangleTx b = issue(a.hash(), tangle.genesis(), 2);
  ASSERT_TRUE(tangle.attach(b).ok());
  EXPECT_EQ(tangle.tip_count(), 1u);
  EXPECT_EQ(tangle.cumulative_weight(tangle.genesis()), 3u);
  EXPECT_EQ(tangle.cumulative_weight(a.hash()), 2u);
}

TEST_F(TangleTest, RejectsUnknownParents) {
  TxHash ghost;
  ghost.v[0] = 9;
  TangleTx tx = issue(ghost, tangle.genesis(), 1);
  EXPECT_EQ(tangle.attach(tx).error().code, "unknown-trunk");
  TangleTx tx2 = issue(tangle.genesis(), ghost, 2);
  EXPECT_EQ(tangle.attach(tx2).error().code, "unknown-branch");
}

TEST_F(TangleTest, RejectsBadSignatureAndWork) {
  TangleTx tx = issue(tangle.genesis(), tangle.genesis(), 1);
  tx.payload.v[0] ^= 1;  // breaks the signature
  EXPECT_EQ(tangle.attach(tx).error().code, "bad-signature");

  TangleParams strict = cheap();
  strict.work_bits = 20;
  Tangle hard(strict);
  TangleTx lazy = issue(hard.genesis(), hard.genesis(), 2);  // 2-bit work
  if (!lazy.verify_work(20)) {
    EXPECT_EQ(hard.attach(lazy).error().code, "insufficient-work");
  }
}

TEST_F(TangleTest, DuplicateRejected) {
  TangleTx tx = issue(tangle.genesis(), tangle.genesis(), 1);
  ASSERT_TRUE(tangle.attach(tx).ok());
  EXPECT_EQ(tangle.attach(tx).error().code, "duplicate");
}

TEST_F(TangleTest, WeightsAreMonotonicAlongApproval) {
  grow(60);
  // Genesis is in every cone: maximal weight. Every tx's weight is at
  // least 1 and at most its parents'.
  const std::size_t g = tangle.cumulative_weight(tangle.genesis());
  EXPECT_EQ(g, tangle.size());
  for (const TxHash& tip : tangle.tips())
    EXPECT_EQ(tangle.cumulative_weight(tip), 1u);
}

TEST_F(TangleTest, ConfidenceGrowsWithApproval) {
  auto txs = grow(10);
  const TxHash early = txs.front();
  const double early_conf = tangle.confirmation_confidence(early);
  grow(50, 2000);
  // An early transaction ends up in (almost) every tip's cone.
  EXPECT_GE(tangle.confirmation_confidence(early), early_conf);
  EXPECT_GT(tangle.confirmation_confidence(early), 0.9);
  // Genesis is always fully confirmed.
  EXPECT_DOUBLE_EQ(tangle.confirmation_confidence(tangle.genesis()), 1.0);
}

TEST_F(TangleTest, SelectTipReturnsATip) {
  grow(30);
  for (int i = 0; i < 10; ++i) {
    const TxHash t = tangle.select_tip(rng);
    const auto tips = tangle.tips();
    EXPECT_NE(std::find(tips.begin(), tips.end(), t), tips.end());
  }
}

TEST_F(TangleTest, DoubleSpendSecondConeRejected) {
  const Hash256 coin = crypto::Sha256::digest(as_bytes("coin-1"));
  TangleTx spend1 = issue(tangle.genesis(), tangle.genesis(), 1, coin);
  ASSERT_TRUE(tangle.attach(spend1).ok());
  // A second spend of the same key directly on top of the first: its own
  // cone would contain both -> rejected at attach.
  TangleTx naive = issue(spend1.hash(), spend1.hash(), 2, coin);
  EXPECT_EQ(tangle.attach(naive).error().code, "double-spend");
}

TEST_F(TangleTest, ConflictingBranchesCannotMerge) {
  const Hash256 coin = crypto::Sha256::digest(as_bytes("coin-2"));
  // Two spends of the same coin on DISJOINT branches: both individually
  // valid (the real double-spend attack).
  TangleTx spend1 = issue(tangle.genesis(), tangle.genesis(), 1, coin);
  ASSERT_TRUE(tangle.attach(spend1).ok());
  TangleTx spend2 = issue(tangle.genesis(), tangle.genesis(), 2, coin);
  ASSERT_TRUE(tangle.attach(spend2).ok());

  // No transaction may approve both branches.
  TangleTx merge = issue(spend1.hash(), spend2.hash(), 3);
  EXPECT_EQ(tangle.attach(merge).error().code, "inconsistent-parents");
}

TEST_F(TangleTest, HonestTrafficStarvesOneConflictSide) {
  // A stronger walk bias makes starvation decisive (the whitepaper's
  // argument for alpha > 0; see bench_tangle for the sweep).
  TangleParams p = cheap();
  p.alpha = 0.5;
  Tangle biased(p);

  auto issue_on = [&](const TxHash& trunk, const TxHash& branch, int i,
                      const Hash256& spend = {}) {
    return make_tx(biased, issuer, trunk, branch, payload_of(i), i, rng,
                   spend);
  };
  const Hash256 coin = crypto::Sha256::digest(as_bytes("coin-3"));
  TangleTx spend1 = issue_on(biased.genesis(), biased.genesis(), 1, coin);
  ASSERT_TRUE(biased.attach(spend1).ok());
  TangleTx spend2 = issue_on(biased.genesis(), biased.genesis(), 2, coin);
  ASSERT_TRUE(biased.attach(spend2).ok());

  // Honest issuers extend whatever tip selection returns; a walk can only
  // ever follow one side of the conflict, and weight feedback
  // concentrates traffic there.
  for (int i = 0; i < 150; ++i) {
    const TxHash trunk = biased.select_tip(rng);
    const TxHash branch_candidate = biased.select_tip(rng);
    TangleTx tx = issue_on(trunk, branch_candidate, 100 + i);
    if (!biased.attach(tx).ok()) {
      // The issuer must not merge conflicting cones; retry like a client.
      TangleTx retry = issue_on(trunk, trunk, 100 + i);
      ASSERT_TRUE(biased.attach(retry).ok());
    }
  }

  const double w1 =
      static_cast<double>(biased.cumulative_weight(spend1.hash()));
  const double w2 =
      static_cast<double>(biased.cumulative_weight(spend2.hash()));
  // One side's approving weight dominates decisively.
  EXPECT_GT(std::max(w1, w2) / std::max(1.0, std::min(w1, w2)), 3.0);

  // Tip cones are mutually exclusive w.r.t. the conflict: confidences can
  // never sum above 1 -- the double spend cannot have both sides settle.
  const double c1 = biased.confirmation_confidence(spend1.hash());
  const double c2 = biased.confirmation_confidence(spend2.hash());
  EXPECT_LE(c1 + c2, 1.0 + 1e-9);
}

TEST_F(TangleTest, SpendAwareTipSelectionAvoidsConflicts) {
  const Hash256 coin = crypto::Sha256::digest(as_bytes("coin-4"));
  TangleTx spend1 = issue(tangle.genesis(), tangle.genesis(), 1, coin);
  ASSERT_TRUE(tangle.attach(spend1).ok());
  grow(20);  // traffic on top (all built over spend1's side or genesis)

  // An issuer about to spend `coin` again asks for tips avoiding it: the
  // walk must return a tip whose cone excludes spend1.
  for (int i = 0; i < 5; ++i) {
    const TxHash tip = tangle.select_tip(rng, {coin});
    EXPECT_FALSE(tangle.cone_spend_keys(tip).count(coin))
        << "walk entered a conflicting cone";
  }
}

TEST_F(TangleTest, StorageModel) {
  grow(10);
  EXPECT_EQ(tangle.stored_bytes(), 11 * TangleTx::kSerializedSize);
}

}  // namespace
}  // namespace dlt::tangle
