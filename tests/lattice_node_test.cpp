// LatticeNode network behaviour: propagation, auto-receive (Fig. 3),
// gap healing, conflict elections (§III-B/§IV-B), cementing, offline
// receivers, node roles (§V-B).
#include <gtest/gtest.h>

#include <memory>

#include "lattice/node.hpp"
#include "lattice_test_util.hpp"

namespace dlt::lattice {
namespace {

using testutil::cheap_params;

class LatticeNetTest : public ::testing::Test {
 protected:
  LatticeNetTest()
      : genesis_key(crypto::KeyPair::from_seed(0x6e5)),
        alice(crypto::KeyPair::from_seed(2)),
        bob(crypto::KeyPair::from_seed(3)),
        net(sim, Rng(1)) {}

  LatticeNode& add_node(LatticeNodeConfig cfg = {}) {
    nodes.push_back(std::make_unique<LatticeNode>(
        net, cheap_params(), genesis_key, 1'000'000, cfg,
        Rng(100 + nodes.size())));
    return *nodes.back();
  }

  void connect_all() {
    std::vector<net::NodeId> ids;
    for (auto& n : nodes) ids.push_back(n->id());
    net::build_complete(net, ids, net::LinkParams{0.05, 0.0, 1e8});
  }

  crypto::KeyPair genesis_key, alice, bob;
  sim::Simulation sim;
  net::Network net;
  std::vector<std::unique_ptr<LatticeNode>> nodes;
};

TEST_F(LatticeNetTest, SendPropagatesToAllNodes) {
  LatticeNode& a = add_node();
  LatticeNode& b = add_node();
  LatticeNode& c = add_node();
  a.add_account(genesis_key);
  connect_all();

  auto sent = a.send(genesis_key, alice.account_id(), 100);
  ASSERT_TRUE(sent.ok()) << sent.error().to_string();
  sim.run_until(5.0);

  for (LatticeNode* n : {&b, &c}) {
    EXPECT_TRUE(n->ledger().contains(*sent));
    EXPECT_EQ(n->ledger().balance_of(genesis_key.account_id()), 999'900u);
    EXPECT_EQ(n->ledger().pending().size(), 1u);
  }
}

TEST_F(LatticeNetTest, AutoReceiveSettlesTransfer) {
  // Fig. 3: the receiver's node generates the matching receive when the
  // send arrives, settling the transfer.
  LatticeNode& a = add_node();
  LatticeNode& b = add_node();
  a.add_account(genesis_key);
  b.add_account(alice);
  connect_all();

  ASSERT_TRUE(a.send(genesis_key, alice.account_id(), 100).ok());
  sim.run_until(10.0);

  for (LatticeNode* n : {&a, &b}) {
    EXPECT_EQ(n->ledger().balance_of(alice.account_id()), 100u);
    EXPECT_TRUE(n->ledger().pending().empty()) << "transfer settled";
  }
}

TEST_F(LatticeNetTest, OfflineNodeDoesNotReceive) {
  // "A node has to be online in order to receive a transaction" (Fig. 3).
  LatticeNode& a = add_node();
  LatticeNodeConfig offline;
  offline.online = false;
  LatticeNode& b = add_node(offline);
  a.add_account(genesis_key);
  b.add_account(alice);
  connect_all();

  ASSERT_TRUE(a.send(genesis_key, alice.account_id(), 100).ok());
  sim.run_until(10.0);
  EXPECT_EQ(a.ledger().pending().size(), 1u);  // still unsettled
  EXPECT_EQ(a.ledger().balance_of(alice.account_id()), 0u);

  // Back online: the owner claims it manually.
  b.set_online(true);
  auto pendings = b.ledger().pending_for(alice.account_id());
  ASSERT_EQ(pendings.size(), 1u);
  ASSERT_TRUE(b.receive_pending(alice, pendings[0].first).ok());
  sim.run_until(20.0);
  EXPECT_TRUE(a.ledger().pending().empty());
  EXPECT_EQ(a.ledger().balance_of(alice.account_id()), 100u);
}

TEST_F(LatticeNetTest, VotesConfirmAndCementBlocks) {
  // Node 0 holds the genesis weight, so its vote alone is a majority
  // (paper §IV-B: confirmed on majority vote).
  LatticeNode& a = add_node();
  LatticeNode& b = add_node();
  a.add_account(genesis_key);
  b.add_account(alice);
  connect_all();

  auto sent = a.send(genesis_key, alice.account_id(), 100);
  ASSERT_TRUE(sent.ok());
  sim.run_until(10.0);

  EXPECT_TRUE(a.is_confirmed(*sent));
  EXPECT_TRUE(b.is_confirmed(*sent));
  EXPECT_TRUE(a.ledger().is_cemented(*sent));
  EXPECT_TRUE(b.ledger().is_cemented(*sent));
  EXPECT_GE(a.confirmations().blocks_confirmed, 1u);
  EXPECT_GT(b.confirmations().time_to_confirm.count(), 0u);
}

TEST_F(LatticeNetTest, GapHealedWhenPredecessorArrives) {
  LatticeNode& a = add_node();
  LatticeNode& b = add_node();
  a.add_account(genesis_key);
  connect_all();

  // Create two chained sends while partitioned, then deliver them to b in
  // reverse order via direct publish after healing.
  net.set_partitions({{a.id()}, {b.id()}});
  auto s1 = a.send(genesis_key, alice.account_id(), 10);
  auto s2 = a.send(genesis_key, bob.account_id(), 10);
  ASSERT_TRUE(s1.ok() && s2.ok());
  sim.run_until(1.0);
  EXPECT_FALSE(b.ledger().contains(*s1));

  net.heal();
  // Deliver out of order: successor first -> parked in the gap pool.
  auto blk2 = a.ledger().find_block(*s2);
  auto blk1 = a.ledger().find_block(*s1);
  ASSERT_TRUE(blk1 && blk2);
  (void)b.publish(*blk2);
  sim.run_until(2.0);
  EXPECT_FALSE(b.ledger().contains(*s2));
  EXPECT_GE(b.gap_pool_size(), 1u);

  (void)b.publish(*blk1);
  sim.run_until(3.0);
  EXPECT_TRUE(b.ledger().contains(*s1));
  EXPECT_TRUE(b.ledger().contains(*s2));  // gap retried automatically
  EXPECT_EQ(b.gap_pool_size(), 0u);
}

TEST_F(LatticeNetTest, ForkResolvedByWeightedVote) {
  // A malicious double-send: two blocks on the same root reach different
  // nodes first; representatives vote and all nodes converge (§IV-B).
  LatticeNode& a = add_node();  // holds genesis weight -> decisive rep
  LatticeNode& b = add_node();
  LatticeNode& c = add_node();
  a.add_account(genesis_key);
  connect_all();

  // Build the two conflicting sends directly against a's ledger state.
  Rng rng(9);
  testutil::Builder builder{a.ledger(), rng, cheap_params().work_bits};
  LatticeBlock s_alice = builder.send(genesis_key, alice.account_id(), 100);
  LatticeBlock s_bob = builder.send(genesis_key, bob.account_id(), 200);
  ASSERT_NE(s_alice.hash(), s_bob.hash());

  // b sees the alice-send first, c sees the bob-send first.
  (void)b.publish(s_alice);
  sim.run_until(0.01);  // give b's copy a head start at some nodes
  (void)c.publish(s_bob);
  sim.run_until(30.0);

  // All full nodes must agree on one winner at the root.
  const auto head_a = a.ledger().head_of(genesis_key.account_id());
  const auto head_b = b.ledger().head_of(genesis_key.account_id());
  const auto head_c = c.ledger().head_of(genesis_key.account_id());
  ASSERT_TRUE(head_a.has_value());
  EXPECT_EQ(*head_a, *head_b);
  EXPECT_EQ(*head_a, *head_c);
  EXPECT_TRUE(*head_a == s_alice.hash() || *head_a == s_bob.hash());

  // Everyone conserves value whatever won.
  for (LatticeNode* n : {&a, &b, &c})
    EXPECT_TRUE(n->ledger().conserves_value());
  EXPECT_GE(b.confirmations().elections_started +
                c.confirmations().elections_started,
            1u);
}

TEST_F(LatticeNetTest, CurrentNodePrunesAutomatically) {
  LatticeNodeConfig current;
  current.role = NodeRole::kCurrent;
  current.prune_interval = 5.0;

  LatticeNode& a = add_node();
  LatticeNode& b = add_node(current);
  a.add_account(genesis_key);
  b.start();
  connect_all();

  // Generate history: several settled self-sends at a.
  a.add_account(alice);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(a.send(genesis_key, alice.account_id(), 10).ok());
    sim.run_until(sim.now() + 5.0);
  }
  sim.run_until(60.0);

  // The pruning node stores fewer blocks than the historical one, but
  // agrees on balances (§V-B trade-off).
  EXPECT_LT(b.ledger().block_count(), a.ledger().block_count());
  EXPECT_EQ(b.ledger().balance_of(alice.account_id()),
            a.ledger().balance_of(alice.account_id()));
}

TEST_F(LatticeNetTest, LightNodeHoldsNoLedger) {
  LatticeNode& a = add_node();
  LatticeNodeConfig light;
  light.role = NodeRole::kLight;
  LatticeNode& l = add_node(light);
  a.add_account(genesis_key);
  connect_all();

  ASSERT_TRUE(a.send(genesis_key, alice.account_id(), 100).ok());
  sim.run_until(10.0);

  // The light node never applied anything beyond its genesis bootstrap.
  EXPECT_EQ(l.ledger().block_count(), 1u);
}

TEST_F(LatticeNetTest, SpamRequiresWorkPerBlock) {
  // §III-B: per-block hashcash throttles over-generation. A block with
  // no work is rejected by every full node.
  LatticeNode& a = add_node();
  LatticeNode& b = add_node();
  a.add_account(genesis_key);
  connect_all();

  Rng rng(5);
  testutil::Builder builder{a.ledger(), rng, cheap_params().work_bits};
  LatticeBlock lazy = builder.send(genesis_key, alice.account_id(), 1);
  lazy.work = 0;  // strip the proof
  if (lazy.verify_work(cheap_params().work_bits))
    GTEST_SKIP() << "nonce 0 happens to satisfy the tiny test difficulty";
  lazy.sign(genesis_key, rng);

  (void)b.publish(lazy);
  sim.run_until(5.0);
  EXPECT_FALSE(a.ledger().contains(lazy.hash()));
  EXPECT_FALSE(b.ledger().contains(lazy.hash()));
}

TEST_F(LatticeNetTest, FrontierSyncHealsMissedHistory) {
  // A node that was cut off during traffic catches up via the periodic
  // frontier exchange (Nano's frontier request / bulk pull).
  LatticeNodeConfig syncing;
  syncing.frontier_interval = 2.0;
  LatticeNode& a = add_node(syncing);
  LatticeNode& b = add_node(syncing);
  a.add_account(genesis_key);
  a.start();
  b.start();
  connect_all();

  net.set_partitions({{a.id()}, {b.id()}});
  auto s1 = a.send(genesis_key, alice.account_id(), 10);
  auto s2 = a.send(genesis_key, bob.account_id(), 20);
  ASSERT_TRUE(s1.ok() && s2.ok());
  sim.run_until(sim.now() + 1.0);
  EXPECT_FALSE(b.ledger().contains(*s1));

  net.heal();
  // No new traffic at all: frontier sync alone must carry the history.
  sim.run_until(sim.now() + 15.0);
  EXPECT_TRUE(b.ledger().contains(*s1));
  EXPECT_TRUE(b.ledger().contains(*s2));
  EXPECT_EQ(b.ledger().head_of(genesis_key.account_id()),
            a.ledger().head_of(genesis_key.account_id()));
}

TEST_F(LatticeNetTest, GapBackfillPullsMissingParent) {
  // Receiving a block with an unknown predecessor triggers a direct
  // request to the sender -- no frontier round needed.
  LatticeNode& a = add_node();
  LatticeNode& b = add_node();
  a.add_account(genesis_key);
  connect_all();

  net.set_partitions({{a.id()}, {b.id()}});
  auto s1 = a.send(genesis_key, alice.account_id(), 10);
  auto s2 = a.send(genesis_key, bob.account_id(), 20);
  ASSERT_TRUE(s1.ok() && s2.ok());
  sim.run_until(sim.now() + 1.0);
  net.heal();

  // Deliver only the SECOND block; b must fetch the first from a.
  auto blk2 = a.ledger().find_block(*s2);
  ASSERT_TRUE(blk2.has_value());
  net.send(a.id(), b.id(),
           net::make_message("lat-block", *blk2, blk2->serialized_size()));
  sim.run_until(sim.now() + 5.0);
  EXPECT_TRUE(b.ledger().contains(*s1)) << "parent fetched via backfill";
  EXPECT_TRUE(b.ledger().contains(*s2));
}

}  // namespace
}  // namespace dlt::lattice
