// Pluggable tip selection (ISSUE 8 tentpole): pins the strategy contract
// that makes the adversarial differential harness possible —
//
//  - canonical names round-trip and the DLT_TIP_SELECTION env knob parses;
//  - the RNG draw discipline is exact (uniform/mrts: one uniform01 per
//    selection, genesis fallback: zero), so a strategy swap can never
//    shift any other consumer's stream;
//  - draws and selected tips are identical whether the tangle was built
//    serially or through the parallel validation/state pipelines;
//  - on a star tangle (all tips weight 1) the MCMC walk degenerates to
//    the uniform distribution — measured over thousands of draws.
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "crypto/sha256.hpp"
#include "support/thread_pool.hpp"
#include "tangle/tip_selection.hpp"

namespace dlt::tangle {
namespace {

Hash256 payload_for(int i) {
  return crypto::Sha256::digest(as_bytes("tip-sel-" + std::to_string(i)));
}

/// How many next() outputs `before` must advance to reach `after`'s
/// position (matched on a 4-output fingerprint); nullopt past 4096.
std::optional<std::size_t> draws_consumed(Rng before, Rng after) {
  auto fingerprint = [](Rng r) {
    std::array<std::uint64_t, 4> f{};
    for (auto& x : f) x = r.next();
    return f;
  };
  const auto target = fingerprint(after);
  for (std::size_t k = 0; k <= 4096; ++k) {
    if (fingerprint(before) == target) return k;
    before.next();
  }
  return std::nullopt;
}

TangleParams cheap_params() {
  TangleParams p;
  p.work_bits = 0;
  return p;
}

/// Genesis plus `leaves` direct children: every tip has weight 1, the
/// shape where every strategy's selection distribution is analysable.
struct Star {
  Tangle tangle;
  std::vector<TxHash> leaves;

  explicit Star(int n, TangleParams params = cheap_params())
      : tangle(params) {
    const crypto::KeyPair issuer = crypto::KeyPair::from_seed(7);
    Rng rng(11);
    for (int i = 0; i < n; ++i) {
      TangleTx tx = make_tx(tangle, issuer, tangle.genesis(),
                            tangle.genesis(), payload_for(i),
                            /*timestamp=*/1.0 + i, rng);
      EXPECT_TRUE(tangle.attach(tx).ok());
      leaves.push_back(tx.hash());
    }
  }
};

// ----------------------------------------------------------- name plumbing

TEST(TipSelection, NamesRoundTrip) {
  for (TipStrategy s :
       {TipStrategy::kMcmc, TipStrategy::kUniform, TipStrategy::kMrts}) {
    EXPECT_EQ(parse_tip_strategy(to_string(s)), s);
    EXPECT_EQ(make_tip_selector(s)->strategy(), s);
  }
  EXPECT_EQ(parse_tip_strategy("weighted-walk"), std::nullopt);
  EXPECT_EQ(parse_tip_strategy(""), std::nullopt);
}

TEST(TipSelection, EnvOverride) {
  ::setenv("DLT_TIP_SELECTION", "uniform", 1);
  EXPECT_EQ(tip_strategy_from_env(TipStrategy::kMcmc),
            TipStrategy::kUniform);
  TangleParams params;
  apply_env_tip_selection(params);
  EXPECT_EQ(params.tip_selection, TipStrategy::kUniform);

  ::setenv("DLT_TIP_SELECTION", "not-a-strategy", 1);
  EXPECT_EQ(tip_strategy_from_env(TipStrategy::kMrts), TipStrategy::kMrts);

  ::unsetenv("DLT_TIP_SELECTION");
  EXPECT_EQ(tip_strategy_from_env(TipStrategy::kMcmc), TipStrategy::kMcmc);
}

// ------------------------------------------------------- draw discipline

TEST(TipSelection, UniformAndMrtsConsumeExactlyOneDraw) {
  Star star(6);
  for (TipStrategy s : {TipStrategy::kUniform, TipStrategy::kMrts}) {
    SCOPED_TRACE(to_string(s));
    Rng rng(21);
    const Rng before = rng;
    const TxHash tip = star.tangle.select_tip_with(s, rng);
    EXPECT_TRUE(star.tangle.contains(tip));
    EXPECT_EQ(draws_consumed(before, rng), 1u);
  }
}

TEST(TipSelection, GenesisFallbackConsumesNoDraws) {
  // Every tip's cone carries the contested spend key, so uniform/mrts
  // must fall back to genesis without burning a draw.
  const Hash256 contested = crypto::Sha256::digest(as_bytes("contested"));
  Tangle tangle(cheap_params());
  const crypto::KeyPair issuer = crypto::KeyPair::from_seed(9);
  Rng build(13);
  for (int i = 0; i < 3; ++i) {
    TangleTx tx = make_tx(tangle, issuer, tangle.genesis(),
                          tangle.genesis(), payload_for(100 + i), 1.0 + i,
                          build, contested);
    ASSERT_TRUE(tangle.attach(tx).ok());
  }

  for (TipStrategy s : {TipStrategy::kUniform, TipStrategy::kMrts}) {
    SCOPED_TRACE(to_string(s));
    Rng rng(31);
    const Rng before = rng;
    EXPECT_EQ(tangle.select_tip_with(s, rng, {contested}),
              tangle.genesis());
    EXPECT_EQ(draws_consumed(before, rng), 0u);
  }
}

TEST(TipSelection, SelectorObjectMatchesDirectDispatch) {
  Star star(5);
  for (TipStrategy s :
       {TipStrategy::kMcmc, TipStrategy::kUniform, TipStrategy::kMrts}) {
    SCOPED_TRACE(to_string(s));
    Rng a(17), b(17);
    EXPECT_EQ(make_tip_selector(s)->select(star.tangle, a),
              star.tangle.select_tip_with(s, b));
    EXPECT_EQ(a.next(), b.next());  // identical stream positions after
  }
}

TEST(TipSelection, MrtsSelectsOnlyMostRecentTips) {
  // Three tips at timestamps 1, 2, 2: mrts must never pick the stale one.
  Tangle tangle(cheap_params());
  const crypto::KeyPair issuer = crypto::KeyPair::from_seed(3);
  Rng build(5);
  std::vector<TxHash> tips;
  for (int i = 0; i < 3; ++i) {
    TangleTx tx = make_tx(tangle, issuer, tangle.genesis(),
                          tangle.genesis(), payload_for(200 + i),
                          /*timestamp=*/i == 0 ? 1.0 : 2.0, build);
    ASSERT_TRUE(tangle.attach(tx).ok());
    tips.push_back(tx.hash());
  }

  Rng rng(41);
  for (int i = 0; i < 200; ++i) {
    const TxHash pick = tangle.select_tip_with(TipStrategy::kMrts, rng);
    EXPECT_NE(pick, tips[0]) << "stale tip selected";
  }
}

// --------------------------------------- parallel-built == serial-built

TEST(TipSelection, DrawsIndependentOfHowTheTangleWasBuilt) {
  // Build the same 24-transaction history serially and through the
  // parallel verify + state pipelines; each copy must then satisfy every
  // strategy with identical draws and identical selections.
  std::vector<TangleTx> txs;
  {
    Tangle ref(cheap_params());
    const crypto::KeyPair issuer = crypto::KeyPair::from_seed(2);
    Rng rng(19);
    for (int i = 0; i < 24; ++i) {
      const TxHash trunk = ref.select_tip(rng);
      const TxHash branch = ref.select_tip(rng);
      TangleTx tx = make_tx(ref, issuer, trunk, branch, payload_for(i),
                            1.0 + i, rng);
      EXPECT_TRUE(ref.attach(tx).ok());
      txs.push_back(tx);
    }
  }

  auto build = [&](bool parallel) {
    auto tangle = std::make_unique<Tangle>(cheap_params());
    if (parallel) {
      tangle->set_verify_pool(std::make_shared<support::ThreadPool>(4));
      tangle->set_parallel_validation(true);
      tangle->set_parallel_state(true);
      for (const Status& st : tangle->attach_batch(txs))
        EXPECT_TRUE(st.ok());
    } else {
      for (const TangleTx& tx : txs) EXPECT_TRUE(tangle->attach(tx).ok());
    }
    return tangle;
  };

  const auto serial = build(false);
  const auto parallel = build(true);
  EXPECT_EQ(serial->tips(), parallel->tips());

  for (TipStrategy s :
       {TipStrategy::kMcmc, TipStrategy::kUniform, TipStrategy::kMrts}) {
    SCOPED_TRACE(to_string(s));
    Rng a(23), b(23);
    const Rng before = a;
    const TxHash pick_serial = serial->select_tip_with(s, a);
    const TxHash pick_parallel = parallel->select_tip_with(s, b);
    EXPECT_EQ(pick_serial, pick_parallel);
    EXPECT_EQ(draws_consumed(before, a), draws_consumed(before, b));
  }
}

// --------------------------------------------- distribution: mcmc alpha→0

TEST(TipSelection, McmcMatchesUniformOnEqualWeightTips) {
  // On a star every tip has cumulative weight 1, so the walk's
  // exp(alpha * w) bias cancels and one step from genesis must be the
  // uniform tip distribution — for any alpha, including alpha → 0.
  constexpr int kLeaves = 8;
  constexpr int kDraws = 4000;
  TangleParams params = cheap_params();
  params.alpha = 1e-9;
  Star star(kLeaves, params);

  auto frequencies = [&](TipStrategy s, std::uint64_t seed) {
    std::vector<int> counts(star.leaves.size(), 0);
    Rng rng(seed);
    for (int i = 0; i < kDraws; ++i) {
      const TxHash pick = star.tangle.select_tip_with(s, rng);
      for (std::size_t j = 0; j < star.leaves.size(); ++j)
        if (pick == star.leaves[j]) ++counts[j];
    }
    return counts;
  };

  const std::vector<int> mcmc = frequencies(TipStrategy::kMcmc, 101);
  const std::vector<int> uniform = frequencies(TipStrategy::kUniform, 102);
  const double expected = static_cast<double>(kDraws) / kLeaves;
  for (std::size_t j = 0; j < star.leaves.size(); ++j) {
    SCOPED_TRACE(j);
    // ±25% of the expected bin mass is ~6 binomial standard deviations.
    EXPECT_NEAR(mcmc[j], expected, expected * 0.25);
    EXPECT_NEAR(uniform[j], expected, expected * 0.25);
  }
}

}  // namespace
}  // namespace dlt::tangle
