// Engine-parity differential tests (ISSUE 4 tentpole acceptance).
//
// ChainCluster and LatticeCluster used to be hand-written drivers; they
// are now thin facades over ClusterEngine<Traits>. These tests pin the
// refactor's determinism contract by re-implementing the PRE-refactor
// drivers verbatim (LegacyChainCluster / LegacyLatticeCluster below,
// copied from the last pre-engine revision) and asserting that on the
// same seed the engine path produces
//
//   - a byte-identical JSONL event trace,
//   - a byte-identical metrics-registry JSON export, and
//   - an equal RunMetrics snapshot
//
// for both ledger kinds. The tangle (which never had a legacy driver)
// is pinned the other way: serial vs 2 vs 4 verify workers must agree
// byte-for-byte, the same invariance the determinism gate enforces.
#include <gtest/gtest.h>

#include <cassert>
#include <memory>
#include <regex>
#include <string>
#include <unordered_set>
#include <vector>

#include "chain/node.hpp"
#include "core/chain_cluster.hpp"
#include "core/lattice_cluster.hpp"
#include "core/tangle_cluster.hpp"
#include "core/workload.hpp"
#include "lattice/node.hpp"

namespace dlt::core {
namespace {

/// Wall-clock profiling histograms (profile.*_us) are documented as
/// outside the determinism surface (obs/trace.hpp) and tools/bench_diff.py
/// skips them too; strip them before comparing registry exports
/// byte-for-byte.
std::string strip_profile(std::string json) {
  static const std::regex kProfile("\"profile\\.[^\"]*\":\\{[^{}]*\\},?");
  // sim.wall_seconds / sim.events_per_sec are wall-clock gauges — real
  // measurements, not part of the determinism surface.
  static const std::regex kWallClock(
      "\"sim\\.(wall_seconds|events_per_sec)\":[^,}]*,?");
  // The legacy drivers are frozen snapshots of the pre-engine clusters and
  // predate the storage layer's storage.* gauges; memory/disk equivalence
  // of those gauges is proven by the storage differential tests instead.
  static const std::regex kStorage("\"storage\\.[^\"]*\":[^,}]*,?");
  json = std::regex_replace(json, kStorage, "");
  return std::regex_replace(std::regex_replace(json, kProfile, ""),
                            kWallClock, "");
}

void expect_percentiles_equal(const Percentiles& a, const Percentiles& b) {
  ASSERT_EQ(a.count(), b.count());
  if (a.count() == 0) return;
  EXPECT_EQ(a.quantile(0.0), b.quantile(0.0));
  EXPECT_EQ(a.median(), b.median());
  EXPECT_EQ(a.p95(), b.p95());
  EXPECT_EQ(a.quantile(1.0), b.quantile(1.0));
}

void expect_metrics_equal(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.system, b.system);
  EXPECT_EQ(a.sim_duration, b.sim_duration);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.included, b.included);
  EXPECT_EQ(a.confirmed, b.confirmed);
  EXPECT_EQ(a.pending_end, b.pending_end);
  expect_percentiles_equal(a.inclusion_latency, b.inclusion_latency);
  expect_percentiles_equal(a.confirmation_latency, b.confirmation_latency);
  EXPECT_EQ(a.reorgs, b.reorgs);
  EXPECT_EQ(a.orphaned_blocks, b.orphaned_blocks);
  EXPECT_EQ(a.max_reorg_depth, b.max_reorg_depth);
  EXPECT_EQ(a.blocks_produced, b.blocks_produced);
  EXPECT_EQ(a.stored_bytes, b.stored_bytes);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.message_bytes, b.message_bytes);
}

// ---------------------------------------------------------------------------
// LegacyChainCluster: the pre-engine ChainCluster driver, copied verbatim
// (modulo member spelling) from the revision before the refactor. Do not
// "improve" this code — its whole value is being the historical behavior.
// ---------------------------------------------------------------------------
class LegacyChainCluster {
 public:
  explicit LegacyChainCluster(ChainClusterConfig config)
      : config_(std::move(config)),
        rng_(config_.seed),
        crypto_(make_cluster_crypto(config_.crypto)),
        obs_(config_.obs) {
    submitted_ = &obs_.metrics.counter("cluster.submitted");
    rejected_ = &obs_.metrics.counter("cluster.rejected");

    net_ = std::make_unique<net::Network>(sim_, rng_.fork());
    net_->set_probe(obs_.probe());

    accounts_ = make_workload_accounts(config_.account_count);
    chain::GenesisSpec genesis;
    for (std::size_t i = 0; i < config_.account_count; ++i) {
      const std::size_t coins =
          std::max<std::size_t>(1, config_.genesis_outputs_per_account);
      for (std::size_t j = 0; j < coins; ++j)
        genesis.allocations.emplace_back(accounts_[i].account_id(),
                                         config_.initial_balance);
    }
    next_nonce_.assign(config_.account_count, 0);

    std::vector<chain::StakeAllocation> stakes;
    if (config_.params.consensus == chain::ConsensusKind::kProofOfStake) {
      for (std::size_t i = 0; i < config_.validator_count; ++i) {
        const crypto::KeyPair key = crypto::KeyPair::from_seed(0x4000 + i);
        stakes.push_back(chain::StakeAllocation{
            key.account_id(), key.public_key(), config_.stake_per_validator});
      }
    }

    for (std::size_t i = 0; i < config_.node_count; ++i) {
      chain::NodeConfig nc;
      nc.wallet_seed = 0x4000 + i;
      if (config_.params.consensus == chain::ConsensusKind::kProofOfWork &&
          i < config_.miner_count) {
        nc.hashrate =
            config_.total_hashrate / static_cast<double>(config_.miner_count);
        nc.solve_pow = config_.params.verify_pow;
      }
      nc.sigcache = crypto_.sigcache;
      if (crypto_.verify_pool && !nc.sigcache)
        nc.sigcache = std::make_shared<crypto::SignatureCache>(
            config_.crypto.sigcache_capacity);
      nc.verify_pool = crypto_.verify_pool;
      nc.parallel_validation = config_.crypto.parallel_validation;
      nc.probe = obs_.probe();
      nodes_.push_back(std::make_unique<chain::ChainNode>(
          *net_, config_.params, genesis, nc, rng_.fork(), stakes));
    }

    std::vector<net::NodeId> ids;
    for (const auto& n : nodes_) ids.push_back(n->id());
    build_topology(*net_, ids, config_.topology, config_.link,
                   config_.random_degree, rng_);
  }

  void start() {
    for (auto& n : nodes_) n->start();
  }

  Status submit_payment(std::size_t from, std::size_t to,
                        chain::Amount amount) {
    Status st = config_.params.tx_model == chain::TxModel::kUtxo
                    ? submit_utxo_payment(from, to, amount)
                    : submit_account_payment(from, to, amount);
    if (st.ok())
      submitted_->inc();
    else
      rejected_->inc();
    return st;
  }

  void schedule_workload(const std::vector<PaymentEvent>& events) {
    for (const PaymentEvent& ev : events) {
      sim_.schedule_at(sim_.now() + ev.time, [this, ev] {
        (void)submit_payment(ev.from, ev.to, ev.amount);
      });
    }
  }

  void run_for(double seconds) { sim_.run_until(sim_.now() + seconds); }

  RunMetrics metrics() const {
    RunMetrics m;
    m.system = config_.params.name;
    m.sim_duration = sim_.now();
    m.submitted = submitted_->value();
    m.rejected = rejected_->value();

    const chain::Blockchain& chain = nodes_[0]->chain();
    std::uint64_t included = 0, confirmed = 0;
    for (std::uint32_t h = 1; h <= chain.height(); ++h) {
      const chain::Block* b = chain.at_height(h);
      const std::uint64_t txs =
          b->is_utxo() ? b->tx_count() - 1 : b->tx_count();
      included += txs;
      if (chain.height() - h + 1 >= chain.params().confirmation_depth)
        confirmed += txs;
    }
    m.included = included;
    m.confirmed = confirmed;
    m.pending_end = nodes_[0]->mempool_size();

    for (const auto& n : nodes_) m.blocks_produced += n->blocks_mined();
    m.inclusion_latency = nodes_[0]->timings().inclusion_latency;
    m.confirmation_latency = nodes_[0]->timings().confirmation_latency;

    const chain::ForkStats& f = chain.fork_stats();
    m.reorgs = f.reorgs;
    m.orphaned_blocks = f.side_chain_blocks + f.blocks_disconnected;
    m.max_reorg_depth = f.max_reorg_depth;
    m.stored_bytes = chain.storage().total();
    m.messages = net_->traffic().messages;
    m.message_bytes = net_->traffic().bytes;
    return m;
  }

  bool converged() const {
    const chain::BlockHash tip = nodes_[0]->chain().tip_hash();
    for (const auto& n : nodes_)
      if (!(n->chain().tip_hash() == tip)) return false;
    return true;
  }

  support::JsonObject metrics_json() {
    obs_.capture_sim(sim_);
    return obs_.metrics.to_json();
  }
  obs::Tracer& tracer() { return obs_.tracer; }

 private:
  Status submit_utxo_payment(std::size_t from, std::size_t to,
                             chain::Amount amount) {
    chain::ChainNode& node = *nodes_[0];
    const crypto::KeyPair& key = accounts_[from];
    const chain::Amount fee = 1000;

    std::vector<std::pair<chain::Outpoint, chain::TxOut>> selected;
    chain::Amount gathered = 0;
    node.chain().utxo_set().for_each_owned(
        key.account_id(),
        [&](const chain::Outpoint& op, const chain::TxOut& out) {
          if (reserved_.count(op)) return true;
          selected.emplace_back(op, out);
          gathered += out.value;
          return gathered < amount + fee;
        });
    if (gathered < amount + fee)
      return make_error("insufficient-funds", "wallet cannot cover amount+fee");

    chain::UtxoTransaction tx;
    for (const auto& [op, out] : selected)
      tx.inputs.push_back(chain::TxIn{op, key.public_key(), {}});
    tx.outputs.push_back(chain::TxOut{amount, accounts_[to].account_id()});
    if (gathered > amount + fee)
      tx.outputs.push_back(
          chain::TxOut{gathered - amount - fee, key.account_id()});
    tx.sign_all({key}, rng_);

    Status st = node.submit_transaction(tx);
    if (st.ok())
      for (const auto& [op, out] : selected) reserved_.insert(op);
    if (reserved_.size() > reserved_compact_at_) {
      for (auto it = reserved_.begin(); it != reserved_.end();) {
        it = node.chain().utxo_set().contains(*it) ? std::next(it)
                                                   : reserved_.erase(it);
      }
      reserved_compact_at_ = std::max<std::size_t>(8192, reserved_.size() * 2);
    }
    return st;
  }

  Status submit_account_payment(std::size_t from, std::size_t to,
                                chain::Amount amount) {
    chain::ChainNode& node = *nodes_[0];
    const crypto::KeyPair& key = accounts_[from];

    chain::AccountTransaction tx;
    tx.to = accounts_[to].account_id();
    tx.value = amount;
    tx.nonce = next_nonce_[from];
    if (config_.account_tx_data_mean > 0)
      tx.data_size = static_cast<std::uint32_t>(
          rng_.uniform(2 * config_.account_tx_data_mean + 1));
    tx.gas_limit = tx.intrinsic_gas();
    tx.gas_price = 1 + rng_.uniform(10);
    tx.sign(key, rng_);

    Status st = node.submit_transaction(tx);
    if (st.ok()) ++next_nonce_[from];
    return st;
  }

  ChainClusterConfig config_;
  Rng rng_;
  ClusterCrypto crypto_;
  ClusterObs obs_;
  sim::Simulation sim_;
  std::unique_ptr<net::Network> net_;
  std::vector<std::unique_ptr<chain::ChainNode>> nodes_;
  std::vector<crypto::KeyPair> accounts_;
  std::unordered_set<chain::Outpoint> reserved_;
  std::size_t reserved_compact_at_ = 8192;
  std::vector<std::uint64_t> next_nonce_;
  obs::Counter* submitted_ = nullptr;
  obs::Counter* rejected_ = nullptr;
};

// ---------------------------------------------------------------------------
// LegacyLatticeCluster: the pre-engine LatticeCluster driver, same deal.
// ---------------------------------------------------------------------------
class LegacyLatticeCluster {
 public:
  explicit LegacyLatticeCluster(LatticeClusterConfig config)
      : config_(std::move(config)),
        rng_(config_.seed),
        crypto_(make_cluster_crypto(config_.crypto)),
        obs_(config_.obs),
        genesis_key_(crypto::KeyPair::from_seed(0x6e5)) {
    submitted_ = &obs_.metrics.counter("cluster.submitted");
    rejected_ = &obs_.metrics.counter("cluster.rejected");

    if (config_.supply == 0) {
      config_.supply = config_.initial_balance *
                       static_cast<lattice::Amount>(config_.account_count) *
                       5 / 4;
    }
    net_ = std::make_unique<net::Network>(sim_, rng_.fork());
    net_->set_probe(obs_.probe());

    accounts_ = make_workload_accounts(config_.account_count);

    for (std::size_t i = 0; i < config_.node_count; ++i) {
      lattice::LatticeNodeConfig nc;
      if (i < config_.roles.size()) nc.role = config_.roles[i];
      nc.solve_work = config_.params.verify_work;
      nc.sigcache = crypto_.sigcache;
      nc.verify_pool = crypto_.verify_pool;
      nc.parallel_validation = config_.crypto.parallel_validation;
      nc.probe = obs_.probe();
      nodes_.push_back(std::make_unique<lattice::LatticeNode>(
          *net_, config_.params, genesis_key_, config_.supply, nc,
          rng_.fork()));
    }

    nodes_[0]->add_account(genesis_key_);
    for (std::size_t i = 1; i < config_.node_count; ++i)
      nodes_[i]->add_account(crypto::KeyPair::from_seed(0x7000 + i));

    for (std::size_t i = 0; i < config_.account_count; ++i)
      owner_of(i).add_account(accounts_[i]);

    std::vector<net::NodeId> ids;
    for (const auto& n : nodes_) ids.push_back(n->id());
    build_topology(*net_, ids, config_.topology, config_.link,
                   config_.random_degree, rng_);

    for (auto& n : nodes_) n->start();
  }

  lattice::LatticeNode& owner_of(std::size_t account_index) {
    return *nodes_[account_index % nodes_.size()];
  }

  void fund_accounts() {
    for (std::size_t i = 0; i < config_.account_count; ++i) {
      auto sent = nodes_[0]->send(genesis_key_, accounts_[i].account_id(),
                                  config_.initial_balance);
      assert(sent);
      (void)sent;
    }
    run_for(30.0);

    const std::size_t reps = std::max<std::size_t>(
        1, std::min(config_.representative_count, nodes_.size() - 1));
    for (std::size_t i = 0; i < config_.account_count; ++i) {
      lattice::LatticeNode& owner = owner_of(i);
      const std::size_t rep_node = 1 + (i % reps);
      const crypto::KeyPair* rep = nodes_[rep_node]->representative_key();
      assert(rep);
      (void)owner.change_representative(accounts_[i], rep->account_id());
    }
    run_for(30.0);
  }

  Status submit_payment(std::size_t from, std::size_t to,
                        lattice::Amount amount) {
    lattice::LatticeNode& owner = owner_of(from);
    auto res =
        owner.send(accounts_[from], accounts_[to].account_id(), amount);
    if (res) {
      submitted_->inc();
      return Status::success();
    }
    rejected_->inc();
    return res.error();
  }

  void schedule_workload(const std::vector<PaymentEvent>& events) {
    for (const PaymentEvent& ev : events) {
      sim_.schedule_at(sim_.now() + ev.time, [this, ev] {
        (void)submit_payment(ev.from, ev.to, ev.amount);
      });
    }
  }

  void run_for(double seconds) { sim_.run_until(sim_.now() + seconds); }

  RunMetrics metrics() const {
    RunMetrics m;
    m.system = "nano-like";
    m.sim_duration = sim_.now();
    m.submitted = submitted_->value();
    m.rejected = rejected_->value();

    const lattice::Ledger& ledger = nodes_[0]->ledger();
    std::uint64_t sends = 0;
    for (std::size_t i = 0; i < config_.account_count; ++i) {
      const lattice::AccountInfo* info =
          ledger.account(accounts_[i].account_id());
      if (!info) continue;
      for (const lattice::LatticeBlock& b : info->chain)
        if (b.type == lattice::BlockType::kSend) ++sends;
    }
    if (const lattice::AccountInfo* g =
            ledger.account(genesis_key_.account_id())) {
      for (const lattice::LatticeBlock& b : g->chain)
        if (b.type == lattice::BlockType::kSend) ++sends;
    }
    m.included = sends;
    m.confirmed = nodes_[0]->confirmations().blocks_confirmed;
    m.pending_end = ledger.pending().size();

    m.confirmation_latency = nodes_[0]->confirmations().time_to_confirm;
    m.blocks_produced = ledger.block_count();
    m.stored_bytes = ledger.storage().total();
    m.messages = net_->traffic().messages;
    m.message_bytes = net_->traffic().bytes;
    return m;
  }

  bool converged() const {
    for (std::size_t i = 0; i < config_.account_count; ++i) {
      auto head0 = nodes_[0]->ledger().head_of(accounts_[i].account_id());
      for (std::size_t n = 1; n < nodes_.size(); ++n) {
        if (nodes_[n]->config().role == lattice::NodeRole::kLight) continue;
        if (nodes_[n]->ledger().head_of(accounts_[i].account_id()) != head0)
          return false;
      }
    }
    return true;
  }

  support::JsonObject metrics_json() {
    obs_.capture_sim(sim_);
    return obs_.metrics.to_json();
  }
  obs::Tracer& tracer() { return obs_.tracer; }

 private:
  LatticeClusterConfig config_;
  Rng rng_;
  ClusterCrypto crypto_;
  ClusterObs obs_;
  crypto::KeyPair genesis_key_;
  sim::Simulation sim_;
  std::unique_ptr<net::Network> net_;
  std::vector<std::unique_ptr<lattice::LatticeNode>> nodes_;
  std::vector<crypto::KeyPair> accounts_;
  obs::Counter* submitted_ = nullptr;
  obs::Counter* rejected_ = nullptr;
};

// ---------------------------------------------------------------------------
// Chain parity: legacy driver vs engine facade, same seed, same workload.
// ---------------------------------------------------------------------------

ChainClusterConfig parity_chain_config() {
  ChainClusterConfig cfg;
  cfg.params = chain::bitcoin_like();
  cfg.params.verify_pow = false;
  cfg.params.initial_difficulty = 1e6;
  cfg.params.block_interval = 30.0;
  cfg.params.retarget_window = 0;
  cfg.node_count = 5;
  cfg.miner_count = 3;
  cfg.total_hashrate = 1e6 / 30.0;
  cfg.account_count = 10;
  cfg.link = net::LinkParams{0.05, 0.01, 1e7};
  cfg.seed = 1234;
  cfg.obs.trace_capacity = 1u << 20;
  return cfg;
}

TEST(ClusterEngineParity, ChainMatchesLegacyDriver) {
  ChainClusterConfig cfg = parity_chain_config();
  // The legacy driver predates lifecycle tracking; keep the comparison
  // apples-to-apples (latency.* metrics + lifecycle trace events off).
  cfg.obs.track_latency = false;
  Rng wl_a(7), wl_b(7);
  WorkloadConfig wl;
  wl.account_count = cfg.account_count;
  wl.tx_rate = 0.5;
  wl.duration = 400.0;

  LegacyChainCluster legacy(cfg);
  legacy.start();
  legacy.schedule_workload(generate_payments(wl, wl_a));
  legacy.run_for(600.0);

  ChainCluster engine(cfg);
  engine.start();
  engine.schedule_workload(generate_payments(wl, wl_b));
  engine.run_for(600.0);

  // The whole refactor hinges on these three lines.
  EXPECT_EQ(legacy.tracer().to_jsonl(), engine.tracer().to_jsonl());
  EXPECT_EQ(strip_profile(legacy.metrics_json().to_string()),
            strip_profile(engine.metrics_json().to_string()));
  expect_metrics_equal(legacy.metrics(), engine.metrics());
  EXPECT_EQ(legacy.converged(), engine.converged());
  EXPECT_GT(legacy.metrics().included, 0u);  // the run did something
  EXPECT_GT(legacy.tracer().recorded(), 0u);
}

TEST(ClusterEngineParity, ChainAccountModelMatchesLegacyDriver) {
  ChainClusterConfig cfg;
  cfg.params = chain::ethereum_like();
  cfg.params.verify_pow = false;
  cfg.params.initial_difficulty = 1e5;
  cfg.params.retarget_window = 0;
  cfg.node_count = 4;
  cfg.miner_count = 2;
  cfg.total_hashrate = 1e5 / cfg.params.block_interval;
  cfg.account_count = 8;
  cfg.account_tx_data_mean = 512;  // exercises the rng-drawn calldata path
  cfg.link = net::LinkParams{0.05, 0.01, 1e7};
  cfg.seed = 99;
  cfg.obs.trace_capacity = 1u << 20;
  cfg.obs.track_latency = false;  // legacy driver has no lifecycle tracker

  Rng wl_a(3), wl_b(3);
  WorkloadConfig wl;
  wl.account_count = cfg.account_count;
  wl.tx_rate = 1.0;
  wl.duration = 120.0;

  LegacyChainCluster legacy(cfg);
  legacy.start();
  legacy.schedule_workload(generate_payments(wl, wl_a));
  legacy.run_for(240.0);

  ChainCluster engine(cfg);
  engine.start();
  engine.schedule_workload(generate_payments(wl, wl_b));
  engine.run_for(240.0);

  EXPECT_EQ(legacy.tracer().to_jsonl(), engine.tracer().to_jsonl());
  EXPECT_EQ(strip_profile(legacy.metrics_json().to_string()),
            strip_profile(engine.metrics_json().to_string()));
  expect_metrics_equal(legacy.metrics(), engine.metrics());
  EXPECT_GT(legacy.metrics().included, 0u);
}

// ---------------------------------------------------------------------------
// Lattice parity: includes the fund_accounts() choreography (genesis
// shower + delegation), which is the RNG-heaviest part of lattice setup.
// ---------------------------------------------------------------------------

TEST(ClusterEngineParity, LatticeMatchesLegacyDriver) {
  LatticeClusterConfig cfg;
  cfg.node_count = 4;
  cfg.representative_count = 3;
  cfg.account_count = 8;
  cfg.link = net::LinkParams{0.05, 0.01, 1e7};
  cfg.seed = 2024;
  cfg.obs.trace_capacity = 1u << 20;
  cfg.obs.track_latency = false;  // legacy driver has no lifecycle tracker

  Rng wl_a(11), wl_b(11);
  WorkloadConfig wl;
  wl.account_count = cfg.account_count;
  wl.tx_rate = 2.0;
  wl.duration = 60.0;

  LegacyLatticeCluster legacy(cfg);
  legacy.fund_accounts();
  legacy.schedule_workload(generate_payments(wl, wl_a));
  legacy.run_for(120.0);

  LatticeCluster engine(cfg);
  engine.fund_accounts();
  engine.schedule_workload(generate_payments(wl, wl_b));
  engine.run_for(120.0);

  EXPECT_EQ(legacy.tracer().to_jsonl(), engine.tracer().to_jsonl());
  EXPECT_EQ(strip_profile(legacy.metrics_json().to_string()),
            strip_profile(engine.metrics_json().to_string()));
  expect_metrics_equal(legacy.metrics(), engine.metrics());
  EXPECT_EQ(legacy.converged(), engine.converged());
  EXPECT_GT(legacy.metrics().included, 0u);
  EXPECT_GT(legacy.tracer().recorded(), 0u);
}

// ---------------------------------------------------------------------------
// Tangle worker-count invariance: the third ledger has no legacy driver,
// so its determinism pin is serial vs 2 vs 4 verify workers — the same
// invariance tools/determinism_gate.sh checks on the bench binary.
// ---------------------------------------------------------------------------

TangleClusterConfig parity_tangle_config(std::size_t verify_threads) {
  TangleClusterConfig cfg;
  cfg.node_count = 4;
  cfg.account_count = 12;
  cfg.params.work_bits = 2;
  cfg.params.alpha = 0.05;
  cfg.link = net::LinkParams{0.04, 0.01, 1e7};
  cfg.seed = 7;
  cfg.obs.trace_capacity = 1u << 20;
  cfg.crypto.verify_threads = verify_threads;
  cfg.crypto.parallel_validation = verify_threads > 0;
  return cfg;
}

struct TangleRunResult {
  std::string trace;
  RunMetrics metrics;
  bool converged = false;
};

TangleRunResult run_tangle(std::size_t verify_threads) {
  TangleCluster cluster(parity_tangle_config(verify_threads));
  cluster.start();
  Rng wl_rng(4);
  WorkloadConfig wl;
  wl.account_count = 12;
  wl.tx_rate = 4.0;
  wl.duration = 15.0;
  wl.max_amount = 50;
  cluster.schedule_workload(generate_payments(wl, wl_rng));
  cluster.run_for(30.0);
  TangleRunResult out;
  out.trace = cluster.tracer().to_jsonl();
  out.metrics = cluster.metrics();
  out.converged = cluster.converged();
  return out;
}

TEST(ClusterEngineParity, TangleInvariantAcrossVerifyWorkerCounts) {
  const TangleRunResult serial = run_tangle(0);
  const TangleRunResult two = run_tangle(2);
  const TangleRunResult four = run_tangle(4);

  ASSERT_FALSE(serial.trace.empty());
  EXPECT_GT(serial.metrics.included, 0u);
  EXPECT_TRUE(serial.converged);
  EXPECT_TRUE(two.converged);
  EXPECT_TRUE(four.converged);

  EXPECT_EQ(serial.trace, two.trace);
  EXPECT_EQ(serial.trace, four.trace);
  expect_metrics_equal(serial.metrics, two.metrics);
  expect_metrics_equal(serial.metrics, four.metrics);
}

// ---------------------------------------------------------------------------
// Lifecycle-latency determinism (ISSUE 7 tentpole acceptance): the
// latency.* registry section — reservoir-sampled percentiles included —
// must be byte-identical across serial, 2/4 verify-worker and
// parallel-state runs of the same seed, for all three ledgers. (The full
// registry export can't be compared here: parallel.* instrumentation
// counters legitimately differ across worker counts.)
// ---------------------------------------------------------------------------

/// Extracts every "latency.*" member (histograms and the in-flight gauge)
/// from the name-ordered registry export, one per line.
std::string latency_json(const obs::MetricsRegistry& reg) {
  const std::string json = reg.to_json().to_string();
  static const std::regex kLatency(
      "\"latency\\.[^\"]*\":(\\{[^{}]*\\}|[^,}]*)");
  std::string out;
  for (std::sregex_iterator it(json.begin(), json.end(), kLatency), end;
       it != end; ++it)
    out += it->str() + "\n";
  return out;
}

struct ParallelMode {
  std::size_t verify_threads = 0;
  bool parallel_state = false;
};

constexpr ParallelMode kParallelModes[] = {
    {0, false}, {2, false}, {4, false}, {2, true}};

void apply_mode(CryptoConfig& crypto, const ParallelMode& mode) {
  crypto.verify_threads = mode.verify_threads;
  crypto.parallel_validation = mode.verify_threads > 0;
  crypto.parallel_state = mode.parallel_state;
}

TEST(LifecycleLatency, ChainDeterministicAcrossParallelModes) {
  std::string reference_latency, reference_trace;
  for (const ParallelMode& mode : kParallelModes) {
    ChainClusterConfig cfg = parity_chain_config();
    // Small percentile reservoir so the capped sampling path itself is
    // under the determinism pin, not just exact accumulation.
    cfg.obs.latency_sample_cap = 32;
    apply_mode(cfg.crypto, mode);
    ChainCluster cluster(cfg);
    cluster.start();
    Rng wl_rng(7);
    WorkloadConfig wl;
    wl.account_count = cfg.account_count;
    wl.tx_rate = 0.5;
    wl.duration = 400.0;
    cluster.schedule_workload(generate_payments(wl, wl_rng));
    cluster.run_for(600.0);

    const std::string latency =
        latency_json(cluster.metrics_registry());
    const std::string trace = cluster.tracer().to_jsonl();
    EXPECT_GT(cluster.lifecycle().confirmed(), 0u);
    if (reference_latency.empty()) {
      reference_latency = latency;
      reference_trace = trace;
      EXPECT_NE(latency.find("latency.submit_to_confirm"),
                std::string::npos);
    } else {
      EXPECT_EQ(latency, reference_latency)
          << "verify_threads=" << mode.verify_threads
          << " parallel_state=" << mode.parallel_state;
      EXPECT_EQ(trace, reference_trace);
    }
  }
}

TEST(LifecycleLatency, LatticeDeterministicAcrossParallelModes) {
  std::string reference_latency, reference_trace;
  for (const ParallelMode& mode : kParallelModes) {
    LatticeClusterConfig cfg;
    cfg.node_count = 4;
    cfg.representative_count = 3;
    cfg.account_count = 8;
    cfg.link = net::LinkParams{0.05, 0.01, 1e7};
    cfg.seed = 2024;
    cfg.obs.trace_capacity = 1u << 20;
    cfg.obs.latency_sample_cap = 32;
    apply_mode(cfg.crypto, mode);
    LatticeCluster cluster(cfg);
    cluster.fund_accounts();
    Rng wl_rng(11);
    WorkloadConfig wl;
    wl.account_count = cfg.account_count;
    wl.tx_rate = 2.0;
    wl.duration = 60.0;
    cluster.schedule_workload(generate_payments(wl, wl_rng));
    cluster.run_for(120.0);

    const std::string latency =
        latency_json(cluster.metrics_registry());
    const std::string trace = cluster.tracer().to_jsonl();
    EXPECT_GT(cluster.lifecycle().confirmed(), 0u);
    if (reference_latency.empty()) {
      reference_latency = latency;
      reference_trace = trace;
    } else {
      EXPECT_EQ(latency, reference_latency)
          << "verify_threads=" << mode.verify_threads
          << " parallel_state=" << mode.parallel_state;
      EXPECT_EQ(trace, reference_trace);
    }
  }
}

TEST(LifecycleLatency, TangleDeterministicAcrossParallelModes) {
  std::string reference_latency, reference_trace;
  for (const ParallelMode& mode : kParallelModes) {
    TangleClusterConfig cfg = parity_tangle_config(mode.verify_threads);
    cfg.obs.latency_sample_cap = 32;
    cfg.crypto.parallel_state = mode.parallel_state;
    TangleCluster cluster(cfg);
    cluster.start();
    Rng wl_rng(4);
    WorkloadConfig wl;
    wl.account_count = cfg.account_count;
    wl.tx_rate = 4.0;
    wl.duration = 15.0;
    wl.max_amount = 50;
    cluster.schedule_workload(generate_payments(wl, wl_rng));
    cluster.run_for(30.0);

    const std::string latency =
        latency_json(cluster.metrics_registry());
    const std::string trace = cluster.tracer().to_jsonl();
    EXPECT_GT(cluster.lifecycle().confirmed(), 0u);
    if (reference_latency.empty()) {
      reference_latency = latency;
      reference_trace = trace;
    } else {
      EXPECT_EQ(latency, reference_latency)
          << "verify_threads=" << mode.verify_threads
          << " parallel_state=" << mode.parallel_state;
      EXPECT_EQ(trace, reference_trace);
    }
  }
}

// ---------------------------------------------------------------------------
// Per-node metric namespacing (ObsConfig::per_node_metrics).
// ---------------------------------------------------------------------------

TEST(ClusterEngine, PerNodeMetricNamespacing) {
  ChainClusterConfig cfg = parity_chain_config();
  cfg.obs.trace_capacity = 0;

  ChainCluster aggregated(cfg);
  aggregated.start();
  aggregated.run_for(600.0);

  cfg.obs.per_node_metrics = true;
  ChainCluster namespaced(cfg);
  namespaced.start();
  namespaced.run_for(600.0);

  // Namespacing is observability-only: the simulation itself is untouched.
  expect_metrics_equal(aggregated.metrics(), namespaced.metrics());

  // Node counters moved under "node.<i>."; the aggregate name is gone.
  EXPECT_EQ(namespaced.metrics_registry().find_counter("chain.blocks_mined"),
            nullptr);
  const obs::Counter* agg =
      aggregated.metrics_registry().find_counter("chain.blocks_mined");
  ASSERT_NE(agg, nullptr);
  std::uint64_t per_node_sum = 0;
  for (std::size_t i = 0; i < cfg.node_count; ++i) {
    const obs::Counter* c = namespaced.metrics_registry().find_counter(
        "node." + std::to_string(i) + ".chain.blocks_mined");
    ASSERT_NE(c, nullptr) << "missing per-node counter for node " << i;
    per_node_sum += c->value();
  }
  EXPECT_EQ(per_node_sum, agg->value());

  // Network metrics stay unprefixed — they belong to no single node.
  EXPECT_NE(namespaced.metrics_registry().find_counter("net.messages"),
            nullptr);
}

}  // namespace
}  // namespace dlt::core
