// Blockchain engine: genesis, extension, validation, soft forks/reorgs
// (paper Fig. 4), orphan pool, difficulty, confirmations.
#include <gtest/gtest.h>

#include "chain_test_util.hpp"

namespace dlt::chain {
namespace {

using testutil::cheap_pow_utxo;
using testutil::fund_all;
using testutil::make_keys;
using testutil::seal_block;
using testutil::seal_empty_utxo;

class BlockchainTest : public ::testing::Test {
 protected:
  BlockchainTest()
      : keys(make_keys(4)),
        chain(cheap_pow_utxo(), fund_all(keys, 100'000)),
        miner(keys[0].account_id()),
        rng(11) {}

  Block extend_tip() { return seal_empty_utxo(chain, miner, chain.tip_hash()); }

  /// Builds a spend of `amount` from keys[from] to keys[to] using the
  /// genesis allocation output (or any owned coin).
  UtxoTransaction make_spend(std::size_t from, std::size_t to,
                             Amount amount) {
    auto coins = chain.utxo_set().find_owned(keys[from].account_id());
    UtxoTransaction tx;
    Amount gathered = 0;
    for (const auto& [op, out] : coins) {
      tx.inputs.push_back(TxIn{op, 0, {}});
      gathered += out.value;
      if (gathered >= amount) break;
    }
    tx.outputs.push_back(TxOut{amount, keys[to].account_id()});
    if (gathered > amount)
      tx.outputs.push_back(TxOut{gathered - amount, keys[from].account_id()});
    std::vector<crypto::KeyPair> signers(tx.inputs.size(), keys[from]);
    tx.sign_all(signers, rng);
    return tx;
  }

  std::vector<crypto::KeyPair> keys;
  Blockchain chain;
  crypto::AccountId miner;
  Rng rng;
};

TEST_F(BlockchainTest, GenesisState) {
  EXPECT_EQ(chain.height(), 0u);
  EXPECT_EQ(chain.blocks_known(), 1u);
  EXPECT_EQ(chain.utxo_set().size(), 4u);
  EXPECT_EQ(chain.utxo_set().total_value(), 400'000u);
  const Block* genesis = chain.at_height(0);
  ASSERT_NE(genesis, nullptr);
  EXPECT_TRUE(genesis->header.is_genesis());
}

TEST_F(BlockchainTest, SharedGenesisIsDeterministic) {
  Blockchain other(cheap_pow_utxo(), fund_all(keys, 100'000));
  EXPECT_EQ(chain.tip_hash(), other.tip_hash());
}

TEST_F(BlockchainTest, ConnectExtendsTip) {
  Block b = extend_tip();
  auto res = chain.submit(b);
  ASSERT_TRUE(res.ok()) << res.error().to_string();
  EXPECT_EQ(res->outcome, Accept::kConnected);
  EXPECT_EQ(chain.height(), 1u);
  EXPECT_EQ(chain.tip_hash(), b.hash());
  // Coinbase credited.
  EXPECT_EQ(chain.utxo_set().total_value(),
            400'000u + chain.params().block_reward);
}

TEST_F(BlockchainTest, DuplicateDetected) {
  Block b = extend_tip();
  ASSERT_TRUE(chain.submit(b).ok());
  auto res = chain.submit(b);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->outcome, Accept::kDuplicate);
}

TEST_F(BlockchainTest, BadPowRejected) {
  Block b = extend_tip();
  // Find a nonce that fails the target.
  for (std::uint64_t n = 0;; ++n) {
    b.header.nonce = n;
    if (!meets_target(b.header.pow_digest(), b.header.difficulty)) break;
  }
  auto res = chain.submit(b);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().code, "bad-pow");
}

TEST_F(BlockchainTest, BadMerkleRootRejected) {
  Block b = extend_tip();
  b.header.merkle_root.v[0] ^= 1;
  auto res = chain.submit(b);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().code, "bad-merkle-root");
}

TEST_F(BlockchainTest, MissingCoinbaseRejected) {
  Block b = extend_tip();
  b.txs = UtxoTxList{};  // strip everything
  b.header.merkle_root = b.compute_merkle_root();
  auto res = chain.submit(b);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().code, "missing-coinbase");
}

TEST_F(BlockchainTest, WrongHeightRejected) {
  Block b = extend_tip();
  b.header.height = 5;
  b.header.merkle_root = b.compute_merkle_root();
  for (std::uint64_t n = 0;; ++n) {
    b.header.nonce = n;
    if (meets_target(b.header.pow_digest(), b.header.difficulty)) break;
  }
  auto res = chain.submit(b);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().code, "bad-height");
}

TEST_F(BlockchainTest, CoinbaseInflationRejected) {
  const Block* tip = chain.find(chain.tip_hash());
  UtxoTxList txs{UtxoTransaction::coinbase(
      miner, chain.params().block_reward + 1, tip->header.height + 1)};
  Block b = seal_block(chain, chain.tip_hash(), std::move(txs), miner);
  auto res = chain.submit(b);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().code, "coinbase-inflation");
}

TEST_F(BlockchainTest, CoinbaseMayClaimFees) {
  UtxoTransaction spend = make_spend(1, 2, 60'000);
  // Fee = 40k change omitted? No: change returned, so fee is 0 here.
  // Rebuild with an explicit fee: send 60k, change 30k, fee 10k.
  UtxoTransaction tx;
  auto coins = chain.utxo_set().find_owned(keys[1].account_id());
  tx.inputs.push_back(TxIn{coins[0].first, 0, {}});
  tx.outputs.push_back(TxOut{60'000, keys[2].account_id()});
  tx.outputs.push_back(TxOut{30'000, keys[1].account_id()});
  tx.sign_all({keys[1]}, rng);

  const Block* tip = chain.find(chain.tip_hash());
  UtxoTxList txs{UtxoTransaction::coinbase(
      miner, chain.params().block_reward + 10'000, tip->header.height + 1)};
  txs.push_back(tx);
  Block b = seal_block(chain, chain.tip_hash(), std::move(txs), miner);
  auto res = chain.submit(b);
  ASSERT_TRUE(res.ok()) << res.error().to_string();
  (void)spend;
}

TEST_F(BlockchainTest, DoubleSpendAcrossBlocksRejected) {
  UtxoTransaction tx = make_spend(1, 2, 50'000);
  const Block* tip = chain.find(chain.tip_hash());
  UtxoTxList txs{UtxoTransaction::coinbase(miner, chain.params().block_reward,
                                           tip->header.height + 1),
                 tx};
  ASSERT_TRUE(chain.submit(
      seal_block(chain, chain.tip_hash(), std::move(txs), miner)).ok());

  // Same tx again in the next block: inputs are gone.
  UtxoTxList txs2{UtxoTransaction::coinbase(miner, chain.params().block_reward,
                                            chain.height() + 1),
                  tx};
  auto res =
      chain.submit(seal_block(chain, chain.tip_hash(), std::move(txs2), miner));
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().code, "missing-utxo");
}

TEST_F(BlockchainTest, OrphanHeldUntilParentArrives) {
  Block b1 = extend_tip();
  // Build b2 on top of b1 without submitting b1 (need a temp chain).
  Blockchain scratch(cheap_pow_utxo(), fund_all(keys, 100'000));
  ASSERT_TRUE(scratch.submit(b1).ok());
  Block b2 = seal_empty_utxo(scratch, miner, b1.hash());

  auto res = chain.submit(b2);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->outcome, Accept::kOrphaned);
  EXPECT_EQ(chain.height(), 0u);

  ASSERT_TRUE(chain.submit(b1).ok());
  // b2 should have been adopted from the orphan pool automatically.
  EXPECT_EQ(chain.height(), 2u);
  EXPECT_EQ(chain.tip_hash(), b2.hash());
}

TEST_F(BlockchainTest, SoftForkAndReorg) {
  // Fig. 4: two blocks claim the same predecessor.
  Block a = seal_empty_utxo(chain, keys[0].account_id(), chain.tip_hash());
  Block b = seal_empty_utxo(chain, keys[1].account_id(), chain.tip_hash());
  ASSERT_NE(a.hash(), b.hash());

  ASSERT_EQ(chain.submit(a)->outcome, Accept::kConnected);
  // Same work: first-seen wins, the rival parks on a side chain.
  ASSERT_EQ(chain.submit(b)->outcome, Accept::kSideChain);
  EXPECT_EQ(chain.tip_hash(), a.hash());
  EXPECT_EQ(chain.fork_stats().side_chain_blocks, 1u);

  // A block on top of `b` makes that branch heavier -> reorg.
  Blockchain scratch(cheap_pow_utxo(), fund_all(keys, 100'000));
  ASSERT_TRUE(scratch.submit(b).ok());
  Block b2 = seal_empty_utxo(scratch, keys[1].account_id(), b.hash());

  auto res = chain.submit(b2);
  ASSERT_TRUE(res.ok()) << res.error().to_string();
  EXPECT_EQ(res->outcome, Accept::kReorged);
  EXPECT_EQ(res->reorg_depth, 1u);
  EXPECT_EQ(chain.tip_hash(), b2.hash());
  EXPECT_EQ(chain.height(), 2u);
  EXPECT_EQ(chain.fork_stats().reorgs, 1u);
  EXPECT_EQ(chain.fork_stats().max_reorg_depth, 1u);
  // Orphaned miner's coinbase is gone from the UTXO set.
  EXPECT_TRUE(chain.utxo_set().find_owned(keys[0].account_id()).size() == 1);
}

TEST_F(BlockchainTest, ReorgRevertsAndReplaysState) {
  // Branch A spends key1 -> key2; branch B (winner) leaves it unspent.
  UtxoTransaction tx = make_spend(1, 2, 70'000);
  const Block* tip = chain.find(chain.tip_hash());
  UtxoTxList txs_a{UtxoTransaction::coinbase(
                       miner, chain.params().block_reward,
                       tip->header.height + 1),
                   tx};
  Block a = seal_block(chain, chain.tip_hash(), std::move(txs_a), miner);
  ASSERT_TRUE(chain.submit(a).ok());
  EXPECT_EQ(chain.utxo_set().find_owned(keys[2].account_id()).size(), 2u);

  Blockchain scratch(cheap_pow_utxo(), fund_all(keys, 100'000));
  Block b1 = seal_empty_utxo(scratch, keys[3].account_id(),
                             scratch.tip_hash());
  ASSERT_TRUE(scratch.submit(b1).ok());
  Block b2 = seal_empty_utxo(scratch, keys[3].account_id(), b1.hash());

  ASSERT_TRUE(chain.submit(b1).ok());
  auto res = chain.submit(b2);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->outcome, Accept::kReorged);
  // The spend rolled back with branch A.
  EXPECT_EQ(chain.utxo_set().find_owned(keys[2].account_id()).size(), 1u);
  EXPECT_EQ(chain.confirmations(tx.id()), 0u);
}

TEST_F(BlockchainTest, ConfirmationsDeepen) {
  UtxoTransaction tx = make_spend(1, 2, 10'000);
  UtxoTxList txs{UtxoTransaction::coinbase(miner, chain.params().block_reward,
                                           1),
                 tx};
  ASSERT_TRUE(chain.submit(
      seal_block(chain, chain.tip_hash(), std::move(txs), miner)).ok());
  EXPECT_EQ(chain.confirmations(tx.id()), 1u);

  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(chain.submit(extend_tip()).ok());
  // Six blocks deep: Bitcoin's confirmation rule satisfied (paper §IV-A).
  EXPECT_EQ(chain.confirmations(tx.id()), 6u);
  EXPECT_GE(chain.confirmations(tx.id()), chain.params().confirmation_depth);
}

TEST_F(BlockchainTest, FinalityBlocksDeepReorg) {
  Block a1 = extend_tip();
  ASSERT_TRUE(chain.submit(a1).ok());
  ASSERT_TRUE(chain.finalize(a1.hash()).ok());

  // A heavier branch from genesis must be refused (finality violation).
  Blockchain scratch(cheap_pow_utxo(), fund_all(keys, 100'000));
  Block b1 = seal_empty_utxo(scratch, keys[1].account_id(),
                             scratch.tip_hash());
  ASSERT_TRUE(scratch.submit(b1).ok());
  Block b2 = seal_empty_utxo(scratch, keys[1].account_id(), b1.hash());
  ASSERT_TRUE(scratch.submit(b2).ok());

  ASSERT_TRUE(chain.submit(b1).ok());  // side chain, fine
  auto res = chain.submit(b2);         // would reorg below finalized
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.error().code, "finality-violation");
  EXPECT_EQ(chain.tip_hash(), a1.hash());
}

TEST_F(BlockchainTest, RenderTreeShowsBranches) {
  Block a = extend_tip();
  ASSERT_TRUE(chain.submit(a).ok());
  Block rival = seal_empty_utxo(chain, keys[1].account_id(),
                                chain.at_height(0)->hash());
  ASSERT_TRUE(chain.submit(rival).ok());
  const std::string tree = chain.render_tree();
  EXPECT_NE(tree.find("h=0"), std::string::npos);
  EXPECT_NE(tree.find("h=1"), std::string::npos);
}

TEST(Difficulty, RetargetMovesTowardTarget) {
  ChainParams p = bitcoin_like();
  // Blocks came twice as fast as intended -> difficulty doubles.
  EXPECT_NEAR(retarget_difficulty(p, 1000.0, p.block_interval * 100 / 2, 100),
              2000.0, 1e-6);
  // Twice as slow -> halves.
  EXPECT_NEAR(retarget_difficulty(p, 1000.0, p.block_interval * 100 * 2, 100),
              500.0, 1e-6);
}

TEST(Difficulty, ClampLimitsSwing) {
  ChainParams p = bitcoin_like();  // clamp 4x
  EXPECT_NEAR(retarget_difficulty(p, 1000.0, 1e-9, 100), 4000.0, 1e-3);
  EXPECT_NEAR(retarget_difficulty(p, 1000.0, 1e12, 100), 250.0, 1e-6);
}

TEST(Difficulty, RetargetAppliedAtWindow) {
  ChainParams p = testutil::cheap_pow_utxo();
  p.retarget_window = 4;
  p.initial_difficulty = 8.0;
  auto keys = make_keys(1);
  Blockchain chain(p, fund_all(keys, 1000));

  // Mine 3 blocks with timestamps far apart (slow) -> at height 4 the
  // difficulty must drop.
  double t = 0;
  for (int i = 0; i < 3; ++i) {
    t += p.block_interval * 10;  // 10x slower than target
    UtxoTxList txs{UtxoTransaction::coinbase(keys[0].account_id(),
                                             p.block_reward,
                                             chain.height() + 1)};
    Block b = seal_block(chain, chain.tip_hash(), std::move(txs),
                         keys[0].account_id(), t);
    ASSERT_TRUE(chain.submit(b).ok());
  }
  const double next = chain.next_difficulty(chain.tip_hash());
  EXPECT_LT(next, 8.0);
  EXPECT_GE(next, 8.0 / p.retarget_clamp - 1e-9);
}

}  // namespace
}  // namespace dlt::chain
