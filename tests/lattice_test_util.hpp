// Shared helpers for block-lattice tests: a funded ledger fixture and
// block builders mirroring what LatticeNode does.
#pragma once

#include <vector>

#include "lattice/ledger.hpp"

namespace dlt::lattice::testutil {

inline LatticeParams cheap_params() {
  LatticeParams p;
  p.work_bits = 4;  // trivial real hashcash
  p.verify_work = true;
  return p;
}

struct Builder {
  Ledger& ledger;
  Rng& rng;
  int work_bits;

  LatticeBlock finish(LatticeBlock b, const crypto::KeyPair& key) {
    b.solve_work(work_bits);
    b.sign(key, rng);
    return b;
  }

  LatticeBlock send(const crypto::KeyPair& from,
                    const crypto::AccountId& to, Amount amount) {
    const AccountInfo* info = ledger.account(from.account_id());
    LatticeBlock b;
    b.type = BlockType::kSend;
    b.account = from.account_id();
    b.previous = info->head().hash();
    b.balance = info->head().balance - amount;
    b.link = to;
    b.representative = info->head().representative;
    return finish(std::move(b), from);
  }

  LatticeBlock open(const crypto::KeyPair& owner, const BlockHash& source,
                    Amount amount, const crypto::AccountId& rep) {
    LatticeBlock b;
    b.type = BlockType::kOpen;
    b.account = owner.account_id();
    b.balance = amount;
    b.link = source;
    b.representative = rep;
    return finish(std::move(b), owner);
  }

  LatticeBlock receive(const crypto::KeyPair& owner, const BlockHash& source,
                       Amount amount) {
    const AccountInfo* info = ledger.account(owner.account_id());
    LatticeBlock b;
    b.type = BlockType::kReceive;
    b.account = owner.account_id();
    b.previous = info->head().hash();
    b.balance = info->head().balance + amount;
    b.link = source;
    b.representative = info->head().representative;
    return finish(std::move(b), owner);
  }

  LatticeBlock change(const crypto::KeyPair& owner,
                      const crypto::AccountId& new_rep) {
    const AccountInfo* info = ledger.account(owner.account_id());
    LatticeBlock b;
    b.type = BlockType::kChange;
    b.account = owner.account_id();
    b.previous = info->head().hash();
    b.balance = info->head().balance;
    b.representative = new_rep;
    return finish(std::move(b), owner);
  }
};

}  // namespace dlt::lattice::testutil
