// Differential harness for the sharded validation pipeline (ISSUE 3): the
// same seed run serially and at worker counts {1, 2, 4, 8} must produce
// byte-identical traces, equal RunMetrics, and the same final ledger state
// for the blockchain (UTXO and account model), the block-lattice, and the
// tangle — and tampered signatures must be rejected identically in every
// mode (the verdict join feeds the exact error the serial path reports).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "chain_test_util.hpp"
#include "core/chain_cluster.hpp"
#include "core/lattice_cluster.hpp"
#include "lattice_test_util.hpp"
#include "support/thread_pool.hpp"
#include "tangle/tangle.hpp"

namespace dlt {
namespace {

/// One validation mode of the differential matrix. `threads == 0` is the
/// serial reference; otherwise the sharded pipeline runs on a pool of
/// `threads` (1 = inline on the caller, still exercising the verdict path).
struct Mode {
  const char* name;
  std::size_t threads;
};

constexpr Mode kPipelineModes[] = {{"w1", 1}, {"w2", 2}, {"w4", 4}, {"w8", 8}};

void apply_mode(core::CryptoConfig& crypto, const Mode& mode) {
  crypto.verify_threads = mode.threads;
  crypto.parallel_validation = mode.threads > 0;
}

std::shared_ptr<support::ThreadPool> make_pool(std::size_t threads) {
  return std::make_shared<support::ThreadPool>(threads);
}

void expect_run_metrics_eq(const core::RunMetrics& a,
                           const core::RunMetrics& b, const char* mode) {
  SCOPED_TRACE(mode);
  EXPECT_EQ(a.system, b.system);
  EXPECT_DOUBLE_EQ(a.sim_duration, b.sim_duration);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.included, b.included);
  EXPECT_EQ(a.confirmed, b.confirmed);
  EXPECT_EQ(a.pending_end, b.pending_end);
  EXPECT_EQ(a.reorgs, b.reorgs);
  EXPECT_EQ(a.orphaned_blocks, b.orphaned_blocks);
  EXPECT_EQ(a.max_reorg_depth, b.max_reorg_depth);
  EXPECT_EQ(a.blocks_produced, b.blocks_produced);
  EXPECT_EQ(a.stored_bytes, b.stored_bytes);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.message_bytes, b.message_bytes);
  EXPECT_EQ(a.inclusion_latency.count(), b.inclusion_latency.count());
  EXPECT_EQ(a.confirmation_latency.count(), b.confirmation_latency.count());
  if (a.confirmation_latency.count() > 0) {
    EXPECT_DOUBLE_EQ(a.confirmation_latency.median(),
                     b.confirmation_latency.median());
  }
}

// ------------------------------------------------------- chain (clusters)

struct ChainOutcome {
  std::string trace;
  core::RunMetrics metrics;
  chain::BlockHash tip;
  bool converged = false;
  std::uint64_t pv_batches = 0;
  std::uint64_t pv_checks = 0;
  std::vector<chain::Amount> balances;  // account model only
};

core::ChainClusterConfig chain_base_config(chain::ChainParams params) {
  core::ChainClusterConfig cfg;
  cfg.params = std::move(params);
  cfg.params.verify_pow = false;
  cfg.params.initial_difficulty = 1e6;
  cfg.params.block_interval = 5.0;
  cfg.params.retarget_window = 0;
  cfg.node_count = 4;
  cfg.miner_count = 3;
  cfg.total_hashrate = 1e6 / 5.0;
  cfg.account_count = 8;
  cfg.link = net::LinkParams{1.0, 0.3, 1e7};  // delay → forks + reorgs
  cfg.seed = 11;
  cfg.obs.trace_capacity = 1u << 16;
  return cfg;
}

ChainOutcome run_chain(core::ChainClusterConfig cfg) {
  core::ChainCluster cluster(cfg);
  cluster.start();
  Rng wl_rng(7);
  core::WorkloadConfig wl;
  wl.account_count = cfg.account_count;
  wl.tx_rate = 0.5;
  wl.duration = 300.0;
  cluster.schedule_workload(core::generate_payments(wl, wl_rng));
  cluster.run_for(400.0);

  ChainOutcome out;
  out.trace = cluster.tracer().to_jsonl();
  out.metrics = cluster.metrics();
  out.tip = cluster.node(0).chain().tip_hash();
  out.converged = cluster.converged();
  const auto& reg = cluster.metrics_registry();
  if (const obs::Counter* c = reg.find_counter("parallel.validate.batches"))
    out.pv_batches = c->value();
  if (const obs::Counter* c = reg.find_counter("parallel.validate.checks"))
    out.pv_checks = c->value();
  if (cfg.params.tx_model == chain::TxModel::kAccount) {
    const chain::WorldState& state = cluster.node(0).chain().world_state();
    for (std::size_t i = 0; i < cfg.account_count; ++i)
      out.balances.push_back(state.balance_of(cluster.account(i).account_id()));
  }
  return out;
}

TEST(ParallelValidationChain, UtxoClusterMatchesSerialAtAllWorkerCounts) {
  core::ChainClusterConfig serial = chain_base_config(chain::bitcoin_like());
  const ChainOutcome base = run_chain(serial);
  EXPECT_TRUE(base.converged);
  EXPECT_GT(base.metrics.included, 0u);
  EXPECT_EQ(base.pv_batches, 0u);  // serial reference never shards

  for (const Mode& mode : kPipelineModes) {
    core::ChainClusterConfig cfg = chain_base_config(chain::bitcoin_like());
    apply_mode(cfg.crypto, mode);
    const ChainOutcome got = run_chain(cfg);
    SCOPED_TRACE(mode.name);
    EXPECT_EQ(got.trace, base.trace);
    expect_run_metrics_eq(got.metrics, base.metrics, mode.name);
    EXPECT_EQ(got.tip, base.tip);
    EXPECT_TRUE(got.converged);
    EXPECT_GT(got.pv_batches, 0u);
  }

  // The pipeline's work accounting (batches sharded, checks joined) is part
  // of the deterministic surface: every worker count sees the same blocks
  // in the same order, so the counters agree across worker counts.
  core::ChainClusterConfig two = chain_base_config(chain::bitcoin_like());
  apply_mode(two.crypto, Mode{"w2", 2});
  core::ChainClusterConfig eight = chain_base_config(chain::bitcoin_like());
  apply_mode(eight.crypto, Mode{"w8", 8});
  const ChainOutcome a = run_chain(two);
  const ChainOutcome b = run_chain(eight);
  EXPECT_EQ(a.pv_batches, b.pv_batches);
  EXPECT_EQ(a.pv_checks, b.pv_checks);
}

TEST(ParallelValidationChain, AccountClusterMatchesSerialAtAllWorkerCounts) {
  core::ChainClusterConfig serial = chain_base_config(chain::ethereum_like());
  const ChainOutcome base = run_chain(serial);
  EXPECT_TRUE(base.converged);
  EXPECT_GT(base.metrics.included, 0u);

  for (const Mode& mode : kPipelineModes) {
    core::ChainClusterConfig cfg = chain_base_config(chain::ethereum_like());
    apply_mode(cfg.crypto, mode);
    const ChainOutcome got = run_chain(cfg);
    SCOPED_TRACE(mode.name);
    EXPECT_EQ(got.trace, base.trace);
    expect_run_metrics_eq(got.metrics, base.metrics, mode.name);
    EXPECT_EQ(got.tip, base.tip);
    EXPECT_EQ(got.balances, base.balances);
    EXPECT_TRUE(got.converged);
    EXPECT_GT(got.pv_batches, 0u);
  }
}

// ------------------------------------------- chain (direct, tampered sig)

/// Re-solves a block whose body was edited after sealing (merkle root and
/// header hash change; the PoW payload is re-derived from scratch).
void reseal(chain::Block& b) {
  b.header.merkle_root = b.compute_merkle_root();
  b.header.invalidate_digests();
  for (std::uint64_t nonce = 0;; ++nonce) {
    b.header.nonce = nonce;
    if (chain::meets_target(b.header.pow_digest(), b.header.difficulty)) break;
  }
}

TEST(ParallelValidationChain, UtxoTamperedSignatureRejectsIdentically) {
  const auto keys = chain::testutil::make_keys(2);
  const chain::GenesisSpec genesis =
      chain::testutil::fund_all(keys, 1'000'000);
  const crypto::AccountId miner = keys[0].account_id();
  Rng rng(5);

  // Reference chain builds the canonical good and tampered blocks once;
  // every mode replays the same bytes.
  chain::Blockchain ref(chain::testutil::cheap_pow_utxo(), genesis);

  chain::Outpoint coin;
  chain::Amount coin_value = 0;
  ref.utxo_set().for_each_owned(
      keys[0].account_id(),
      [&](const chain::Outpoint& op, const chain::TxOut& out) {
        coin = op;
        coin_value = out.value;
        return false;
      });
  ASSERT_GT(coin_value, 0u);

  chain::UtxoTransaction spend;
  spend.inputs.push_back(chain::TxIn{coin, keys[0].public_key(), {}});
  spend.outputs.push_back(chain::TxOut{coin_value, keys[1].account_id()});
  spend.sign_all({keys[0]}, rng);

  const chain::Block good = chain::testutil::seal_block(
      ref, ref.tip_hash(),
      chain::UtxoTxList{
          chain::UtxoTransaction::coinbase(miner, ref.params().block_reward,
                                           1),
          spend},
      miner);
  ASSERT_TRUE(ref.submit(good));

  // Second block extends `good` (so rejection happens in the connect
  // phase, not on a side chain) spending keys[1]'s genesis coin; its
  // signature gets one bit flipped and the block is resealed so only the
  // state phase can reject it.
  chain::Outpoint coin2;
  chain::Amount coin2_value = 0;
  ref.utxo_set().for_each_owned(
      keys[1].account_id(),
      [&](const chain::Outpoint& op, const chain::TxOut& out) {
        coin2 = op;
        coin2_value = out.value;
        return false;
      });
  ASSERT_GT(coin2_value, 0u);

  chain::UtxoTransaction spend2;
  spend2.inputs.push_back(chain::TxIn{coin2, keys[1].public_key(), {}});
  spend2.outputs.push_back(chain::TxOut{coin2_value, keys[0].account_id()});
  spend2.sign_all({keys[1]}, rng);

  chain::Block bad = chain::testutil::seal_block(
      ref, ref.tip_hash(),
      chain::UtxoTxList{
          chain::UtxoTransaction::coinbase(miner, ref.params().block_reward,
                                           2),
          spend2},
      miner);
  std::get<chain::UtxoTxList>(bad.txs)[1].inputs[0].signature.s ^= 1;
  std::get<chain::UtxoTxList>(bad.txs)[1].invalidate_digests();
  reseal(bad);

  auto run_mode = [&](std::size_t threads) {
    chain::Blockchain chain(chain::testutil::cheap_pow_utxo(), genesis);
    if (threads > 0) {
      chain.set_sigcache(std::make_shared<crypto::SignatureCache>(1u << 12));
      chain.set_verify_pool(make_pool(threads));
      chain.set_parallel_validation(true);
    }
    auto ok = chain.submit(good);
    EXPECT_TRUE(ok) << "good block must connect (threads=" << threads << ")";
    auto rejected = chain.submit(bad);
    EXPECT_FALSE(rejected);
    return std::pair{rejected ? std::string{} : rejected.error().code,
                     chain.tip_hash()};
  };

  const auto [serial_code, serial_tip] = run_mode(0);
  EXPECT_EQ(serial_code, "bad-signature");
  for (const Mode& mode : kPipelineModes) {
    SCOPED_TRACE(mode.name);
    const auto [code, tip] = run_mode(mode.threads);
    EXPECT_EQ(code, serial_code);
    EXPECT_EQ(tip, serial_tip);
  }
}

TEST(ParallelValidationChain, AccountTamperedSignatureRejectsIdentically) {
  const auto keys = chain::testutil::make_keys(2);
  const chain::GenesisSpec genesis =
      chain::testutil::fund_all(keys, 1'000'000);
  const crypto::AccountId proposer = keys[0].account_id();
  Rng rng(6);

  chain::Blockchain ref(chain::testutil::cheap_pow_account(), genesis);

  auto make_payment = [&](std::uint64_t nonce) {
    chain::AccountTransaction tx;
    tx.to = keys[1].account_id();
    tx.value = 500;
    tx.nonce = nonce;
    tx.gas_limit = tx.intrinsic_gas();
    tx.gas_price = 1;
    tx.sign(keys[0], rng);
    return tx;
  };

  const chain::Block good = chain::testutil::seal_account_tip(
      ref, chain::AccountTxList{make_payment(0)}, proposer);
  ASSERT_TRUE(ref.submit(good));
  const chain::Block next = chain::testutil::seal_account_tip(
      ref, chain::AccountTxList{make_payment(1)}, proposer);

  chain::Block bad = next;
  std::get<chain::AccountTxList>(bad.txs)[0].signature.s ^= 1;
  std::get<chain::AccountTxList>(bad.txs)[0].invalidate_digests();
  reseal(bad);

  auto run_mode = [&](std::size_t threads) {
    chain::Blockchain chain(chain::testutil::cheap_pow_account(), genesis);
    if (threads > 0) {
      chain.set_sigcache(std::make_shared<crypto::SignatureCache>(1u << 12));
      chain.set_verify_pool(make_pool(threads));
      chain.set_parallel_validation(true);
    }
    EXPECT_TRUE(chain.submit(good));
    auto rejected = chain.submit(bad);
    EXPECT_FALSE(rejected);
    return std::pair{rejected ? std::string{} : rejected.error().code,
                     chain.tip_hash()};
  };

  const auto [serial_code, serial_tip] = run_mode(0);
  EXPECT_EQ(serial_code, "bad-signature");
  for (const Mode& mode : kPipelineModes) {
    SCOPED_TRACE(mode.name);
    const auto [code, tip] = run_mode(mode.threads);
    EXPECT_EQ(code, serial_code);
    EXPECT_EQ(tip, serial_tip);
  }
}

// ----------------------------------------------------------------- lattice

struct LatticeOutcome {
  std::string trace;
  core::RunMetrics metrics;
  bool converged = false;
  bool conserves = false;
  std::vector<lattice::Amount> balances;
  std::uint64_t pv_batches = 0;
};

LatticeOutcome run_lattice(const Mode& mode) {
  core::LatticeClusterConfig cfg;
  cfg.node_count = 3;
  cfg.representative_count = 2;
  cfg.account_count = 6;
  cfg.params.work_bits = 2;
  cfg.seed = 99;
  cfg.obs.trace_capacity = 1u << 16;
  apply_mode(cfg.crypto, mode);
  core::LatticeCluster cluster(cfg);
  cluster.fund_accounts();
  Rng wl_rng(42);
  core::WorkloadConfig wl;
  wl.account_count = 6;
  wl.tx_rate = 1.0;
  wl.duration = 30.0;
  wl.max_amount = 1000;
  cluster.schedule_workload(core::generate_payments(wl, wl_rng));
  cluster.run_for(60.0);

  LatticeOutcome out;
  out.trace = cluster.tracer().to_jsonl();
  out.metrics = cluster.metrics();
  out.converged = cluster.converged();
  const lattice::Ledger& ledger = cluster.node(0).ledger();
  out.conserves = ledger.conserves_value();
  for (std::size_t i = 0; i < cfg.account_count; ++i)
    out.balances.push_back(
        ledger.balance_of(cluster.account(i).account_id()));
  if (const obs::Counter* c =
          cluster.metrics_registry().find_counter("parallel.validate.batches"))
    out.pv_batches = c->value();
  return out;
}

TEST(ParallelValidationLattice, ClusterMatchesSerialAtAllWorkerCounts) {
  const LatticeOutcome base = run_lattice(Mode{"serial", 0});
  EXPECT_TRUE(base.converged);
  EXPECT_TRUE(base.conserves);
  EXPECT_GT(base.metrics.included, 0u);
  EXPECT_EQ(base.pv_batches, 0u);

  for (const Mode& mode : kPipelineModes) {
    const LatticeOutcome got = run_lattice(mode);
    SCOPED_TRACE(mode.name);
    EXPECT_EQ(got.trace, base.trace);
    expect_run_metrics_eq(got.metrics, base.metrics, mode.name);
    EXPECT_TRUE(got.converged);
    EXPECT_TRUE(got.conserves);
    EXPECT_EQ(got.balances, base.balances);
    EXPECT_GT(got.pv_batches, 0u);
  }
}

TEST(ParallelValidationLattice, TamperedBlocksRejectIdentically) {
  const crypto::KeyPair genesis_key = crypto::KeyPair::from_seed(1);
  const crypto::KeyPair receiver = crypto::KeyPair::from_seed(2);
  const lattice::LatticeParams params = lattice::testutil::cheap_params();
  constexpr lattice::Amount kSupply = 1'000'000;

  // Build the block sequence once against a scratch ledger; each mode then
  // replays the identical bytes.
  lattice::Ledger scratch(params, genesis_key.account_id(),
                          genesis_key.account_id(), kSupply);
  Rng rng(9);
  lattice::testutil::Builder build{scratch, rng, params.work_bits};
  const lattice::LatticeBlock send =
      build.send(genesis_key, receiver.account_id(), 250);
  ASSERT_TRUE(scratch.process(send).ok());

  lattice::LatticeBlock tampered =
      build.send(genesis_key, receiver.account_id(), 100);
  tampered.signature.s ^= 1;

  // Valid signature over weak (zero-bit) work: the signature check passes
  // and the hashcash check must be the one that rejects.
  lattice::testutil::Builder weak{scratch, rng, 0};
  lattice::LatticeBlock lazy =
      weak.send(genesis_key, receiver.account_id(), 100);
  const bool lazy_meets_work = lazy.verify_work(params.work_bits);

  auto run_mode = [&](std::size_t threads) {
    lattice::Ledger ledger(params, genesis_key.account_id(),
                           genesis_key.account_id(), kSupply);
    if (threads > 0) {
      ledger.set_sigcache(std::make_shared<crypto::SignatureCache>(1u << 12));
      ledger.set_verify_pool(make_pool(threads));
      ledger.set_parallel_validation(true);
    }
    std::vector<std::string> codes;
    const std::array<const lattice::LatticeBlock*, 3> sequence{
        &send, &tampered, &lazy};
    for (const lattice::LatticeBlock* b : sequence) {
      const Status st = ledger.process(*b);
      codes.push_back(st.ok() ? "ok" : st.error().code);
    }
    return codes;
  };

  const std::vector<std::string> serial = run_mode(0);
  EXPECT_EQ(serial[0], "ok");
  EXPECT_EQ(serial[1], "bad-signature");
  if (!lazy_meets_work) {
    EXPECT_EQ(serial[2], "insufficient-work");
  }
  for (const Mode& mode : kPipelineModes) {
    SCOPED_TRACE(mode.name);
    EXPECT_EQ(run_mode(mode.threads), serial);
  }
}

// ------------------------------------------------------------------ tangle

TEST(ParallelValidationTangle, AttachSequenceMatchesSerialAtAllWorkerCounts) {
  tangle::TangleParams params;
  params.work_bits = 2;
  const crypto::KeyPair issuer = crypto::KeyPair::from_seed(1);

  // Build the transaction sequence once against a reference tangle (tip
  // selection consumes the rng, so construction must track a live state),
  // then replay the same transactions into every mode.
  std::vector<tangle::TangleTx> txs;
  {
    tangle::Tangle ref(params);
    Rng rng(3);
    for (int i = 0; i < 40; ++i) {
      const tangle::TxHash trunk = ref.select_tip(rng);
      const tangle::TxHash branch = ref.select_tip(rng);
      tangle::TangleTx tx = tangle::make_tx(
          ref, issuer, trunk, branch,
          crypto::Sha256::digest(as_bytes("pv-payload" + std::to_string(i))),
          i, rng);
      if (i == 20) tx.payload.v[0] ^= 1;  // breaks the signature
      else ASSERT_TRUE(ref.attach(tx).ok());
      txs.push_back(tx);
    }
    txs.push_back(txs[7]);  // duplicate, rejected in the stateful phase
  }

  struct TangleOutcome {
    std::vector<std::string> codes;
    std::size_t size = 0;
    std::vector<tangle::TxHash> tips;
    std::size_t genesis_weight = 0;
    std::uint64_t pv_batches = 0;
    std::uint64_t pv_checks = 0;
  };
  auto run_mode = [&](std::size_t threads) {
    obs::MetricsRegistry reg;
    tangle::Tangle tangle(params);
    tangle.set_probe(obs::Probe{&reg, nullptr, {}});
    if (threads > 0) {
      tangle.set_verify_pool(make_pool(threads));
      tangle.set_parallel_validation(true);
    }
    TangleOutcome out;
    for (const tangle::TangleTx& tx : txs) {
      const Status st = tangle.attach(tx);
      out.codes.push_back(st.ok() ? "ok" : st.error().code);
    }
    out.size = tangle.size();
    out.tips = tangle.tips();
    out.genesis_weight = tangle.cumulative_weight(tangle.genesis());
    if (const obs::Counter* c = reg.find_counter("parallel.validate.batches"))
      out.pv_batches = c->value();
    if (const obs::Counter* c = reg.find_counter("parallel.validate.checks"))
      out.pv_checks = c->value();
    return out;
  };

  const TangleOutcome base = run_mode(0);
  EXPECT_EQ(base.codes[20], "bad-signature");
  EXPECT_EQ(base.codes.back(), "duplicate");
  EXPECT_EQ(base.genesis_weight, base.size);
  EXPECT_EQ(base.pv_batches, 0u);

  TangleOutcome prev{};
  bool have_prev = false;
  for (const Mode& mode : kPipelineModes) {
    SCOPED_TRACE(mode.name);
    const TangleOutcome got = run_mode(mode.threads);
    EXPECT_EQ(got.codes, base.codes);
    EXPECT_EQ(got.size, base.size);
    EXPECT_EQ(got.tips, base.tips);
    EXPECT_EQ(got.genesis_weight, base.genesis_weight);
    EXPECT_GT(got.pv_batches, 0u);
    // Work accounting is worker-count independent.
    if (have_prev) {
      EXPECT_EQ(got.pv_batches, prev.pv_batches);
      EXPECT_EQ(got.pv_checks, prev.pv_checks);
    }
    prev = got;
    have_prev = true;
  }
}

}  // namespace
}  // namespace dlt
