// Shared fixtures for blockchain tests: cheap-PoW params, funded genesis,
// and a reference block assembler that mirrors what ChainNode does.
#pragma once

#include <vector>

#include "chain/blockchain.hpp"

namespace dlt::chain::testutil {

inline ChainParams cheap_pow_utxo() {
  ChainParams p = bitcoin_like();
  p.initial_difficulty = 4.0;  // a few real hash attempts per block
  p.retarget_window = 0;       // fixed difficulty unless a test opts in
  p.block_interval = 10.0;
  return p;
}

inline ChainParams cheap_pow_account() {
  ChainParams p = ethereum_like();
  p.initial_difficulty = 4.0;
  p.retarget_window = 0;
  p.block_interval = 10.0;
  return p;
}

inline std::vector<crypto::KeyPair> make_keys(std::size_t n,
                                              std::uint64_t base = 0x100) {
  std::vector<crypto::KeyPair> keys;
  for (std::size_t i = 0; i < n; ++i)
    keys.push_back(crypto::KeyPair::from_seed(base + i));
  return keys;
}

inline GenesisSpec fund_all(const std::vector<crypto::KeyPair>& keys,
                            Amount each) {
  GenesisSpec g;
  for (const auto& k : keys) g.allocations.emplace_back(k.account_id(), each);
  return g;
}

/// Assembles and PoW-solves a block extending `parent_hash` with the given
/// transactions (already including any coinbase for UTXO chains).
inline Block seal_block(const Blockchain& chain, const BlockHash& parent_hash,
                        std::variant<UtxoTxList, AccountTxList> txs,
                        const crypto::AccountId& proposer,
                        double timestamp = -1.0) {
  const Block* parent = chain.find(parent_hash);
  Block b;
  b.header.height = parent->header.height + 1;
  b.header.parent = parent_hash;
  b.header.timestamp =
      timestamp >= 0 ? timestamp
                     : parent->header.timestamp + chain.params().block_interval;
  b.header.difficulty = chain.next_difficulty(parent_hash);
  b.header.proposer = proposer;
  b.txs = std::move(txs);
  b.header.merkle_root = b.compute_merkle_root();
  for (std::uint64_t nonce = 0;; ++nonce) {
    b.header.nonce = nonce;
    if (meets_target(b.header.pow_digest(), b.header.difficulty)) break;
  }
  return b;
}

/// Convenience: seal an empty UTXO block (coinbase only) on the tip.
inline Block seal_empty_utxo(const Blockchain& chain,
                             const crypto::AccountId& miner,
                             const BlockHash& parent) {
  const Block* p = chain.find(parent);
  UtxoTxList txs{UtxoTransaction::coinbase(miner, chain.params().block_reward,
                                           p->header.height + 1)};
  return seal_block(chain, parent, std::move(txs), miner);
}

/// Seals an account-model block: computes the state root on the tip.
/// Only valid when `parent` is the current tip.
inline Block seal_account_tip(const Blockchain& chain, AccountTxList txs,
                              const crypto::AccountId& proposer) {
  Block b;
  const BlockHash parent = chain.tip_hash();
  auto root = chain.compute_state_root(txs, proposer);
  b = seal_block(chain, parent, txs, proposer);
  b.header.state_root = *root;
  // Re-solve: state_root participates in the PoW payload.
  for (std::uint64_t nonce = 0;; ++nonce) {
    b.header.nonce = nonce;
    if (meets_target(b.header.pow_digest(), b.header.difficulty)) break;
  }
  b.header.merkle_root = b.compute_merkle_root();
  return b;
}

}  // namespace dlt::chain::testutil
