// Weighted elections (paper §III-B): tally semantics, vote supersession.
#include <gtest/gtest.h>

#include "lattice/voting.hpp"

namespace dlt::lattice {
namespace {

crypto::AccountId rep(int i) {
  return crypto::KeyPair::from_seed(100 + static_cast<std::uint64_t>(i))
      .account_id();
}
BlockHash cand(int i) {
  return crypto::Sha256::digest(as_bytes("cand" + std::to_string(i)));
}

TEST(Election, EmptyHasNoLeader) {
  Election e(Root{}, 0.0);
  EXPECT_FALSE(e.leader().has_value());
  EXPECT_EQ(e.candidate_count(), 0u);
}

TEST(Election, WeightedLeader) {
  Election e(Root{}, 0.0);
  e.add_vote(rep(0), 100, cand(0), 1);
  e.add_vote(rep(1), 50, cand(1), 1);
  e.add_vote(rep(2), 60, cand(1), 1);
  auto leader = e.leader();
  ASSERT_TRUE(leader.has_value());
  // "The winning transaction is the one that gained the most votes with
  // regards to the voter's weight": 110 vs 100.
  EXPECT_EQ(leader->first, cand(1));
  EXPECT_EQ(leader->second, 110u);
  EXPECT_EQ(e.candidate_count(), 2u);
  EXPECT_EQ(e.voter_count(), 3u);
  EXPECT_EQ(e.total_voted_weight(), 210u);
}

TEST(Election, LaterVoteSupersedes) {
  Election e(Root{}, 0.0);
  e.add_vote(rep(0), 100, cand(0), 1);
  EXPECT_EQ(e.weight_for(cand(0)), 100u);
  // The representative switches sides with a higher sequence.
  e.add_vote(rep(0), 100, cand(1), 2);
  EXPECT_EQ(e.weight_for(cand(0)), 0u);
  EXPECT_EQ(e.weight_for(cand(1)), 100u);
  EXPECT_EQ(e.voter_count(), 1u);
}

TEST(Election, StaleVoteIgnored) {
  Election e(Root{}, 0.0);
  e.add_vote(rep(0), 100, cand(0), 5);
  e.add_vote(rep(0), 100, cand(1), 3);  // older sequence
  EXPECT_EQ(e.weight_for(cand(0)), 100u);
  EXPECT_EQ(e.weight_for(cand(1)), 0u);
}

TEST(Election, TieBreaksDeterministically) {
  Election e(Root{}, 0.0);
  e.add_vote(rep(0), 100, cand(0), 1);
  e.add_vote(rep(1), 100, cand(1), 1);
  auto l1 = e.leader();
  auto l2 = e.leader();
  ASSERT_TRUE(l1.has_value());
  EXPECT_EQ(l1->first, l2->first);  // stable across calls
}

TEST(Election, ZeroWeightVotesCountNothing) {
  Election e(Root{}, 0.0);
  e.add_vote(rep(0), 0, cand(0), 1);
  auto leader = e.leader();
  ASSERT_TRUE(leader.has_value());
  EXPECT_EQ(leader->second, 0u);
}

}  // namespace
}  // namespace dlt::lattice
