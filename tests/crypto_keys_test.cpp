// Signatures (Schnorr, toy group) and hashcash PoW (paper §III).
#include <gtest/gtest.h>

#include <vector>

#include "crypto/digest_cache.hpp"
#include "crypto/hashcash.hpp"
#include "crypto/keys.hpp"

namespace dlt::crypto {
namespace {

TEST(Keys, SignVerifyRoundTrip) {
  Rng rng(1);
  KeyPair kp = KeyPair::generate(rng);
  const Bytes msg = to_bytes("transfer 100 to bob");
  const Signature sig = kp.sign(ByteView{msg.data(), msg.size()}, rng);
  EXPECT_TRUE(verify(kp.public_key(), ByteView{msg.data(), msg.size()}, sig));
}

TEST(Keys, WrongMessageRejected) {
  Rng rng(2);
  KeyPair kp = KeyPair::generate(rng);
  const Bytes msg = to_bytes("pay alice");
  const Bytes other = to_bytes("pay mallory");
  const Signature sig = kp.sign(ByteView{msg.data(), msg.size()}, rng);
  EXPECT_FALSE(
      verify(kp.public_key(), ByteView{other.data(), other.size()}, sig));
}

TEST(Keys, WrongKeyRejected) {
  Rng rng(3);
  KeyPair alice = KeyPair::generate(rng);
  KeyPair bob = KeyPair::generate(rng);
  const Bytes msg = to_bytes("hello");
  const Signature sig = alice.sign(ByteView{msg.data(), msg.size()}, rng);
  EXPECT_FALSE(verify(bob.public_key(), ByteView{msg.data(), msg.size()}, sig));
}

TEST(Keys, TamperedSignatureRejected) {
  Rng rng(4);
  KeyPair kp = KeyPair::generate(rng);
  const Bytes msg = to_bytes("x");
  Signature sig = kp.sign(ByteView{msg.data(), msg.size()}, rng);
  sig.s ^= 1;
  EXPECT_FALSE(verify(kp.public_key(), ByteView{msg.data(), msg.size()}, sig));
  sig.s ^= 1;
  sig.r ^= 1;
  EXPECT_FALSE(verify(kp.public_key(), ByteView{msg.data(), msg.size()}, sig));
}

TEST(Keys, DegenerateSignatureValuesRejected) {
  Rng rng(5);
  KeyPair kp = KeyPair::generate(rng);
  const Bytes msg = to_bytes("x");
  EXPECT_FALSE(verify(kp.public_key(), ByteView{msg.data(), msg.size()},
                      Signature{0, 0}));
  EXPECT_FALSE(verify(0, ByteView{msg.data(), msg.size()}, Signature{1, 1}));
}

TEST(Keys, DeterministicFromSeed) {
  KeyPair a = KeyPair::from_seed(77);
  KeyPair b = KeyPair::from_seed(77);
  KeyPair c = KeyPair::from_seed(78);
  EXPECT_EQ(a.public_key(), b.public_key());
  EXPECT_EQ(a.account_id(), b.account_id());
  EXPECT_NE(a.public_key(), c.public_key());
}

TEST(Keys, AccountIdBindsPubkey) {
  KeyPair kp = KeyPair::from_seed(9);
  EXPECT_EQ(kp.account_id(), account_of(kp.public_key()));
  EXPECT_NE(kp.account_id(), account_of(kp.public_key() + 1));
}

TEST(Keys, SignaturesRandomized) {
  // Fresh nonce per signature: same message, different signatures, both
  // valid.
  Rng rng(6);
  KeyPair kp = KeyPair::generate(rng);
  const Bytes msg = to_bytes("m");
  const Signature s1 = kp.sign(ByteView{msg.data(), msg.size()}, rng);
  const Signature s2 = kp.sign(ByteView{msg.data(), msg.size()}, rng);
  EXPECT_NE(s1, s2);
  EXPECT_TRUE(verify(kp.public_key(), ByteView{msg.data(), msg.size()}, s1));
  EXPECT_TRUE(verify(kp.public_key(), ByteView{msg.data(), msg.size()}, s2));
}

TEST(Hashcash, SolveAndVerify) {
  const Bytes payload = to_bytes("block-header");
  auto sol = solve(ByteView{payload.data(), payload.size()}, 10);
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(
      verify(ByteView{payload.data(), payload.size()}, sol->nonce, 10));
  EXPECT_TRUE(meets_difficulty(sol->digest, 10));
}

TEST(Hashcash, HigherDifficultyStillVerifiesLower) {
  const Bytes payload = to_bytes("p");
  auto sol = solve(ByteView{payload.data(), payload.size()}, 12);
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(verify(ByteView{payload.data(), payload.size()}, sol->nonce, 8));
}

TEST(Hashcash, WrongNonceFails) {
  const Bytes payload = to_bytes("p2");
  auto sol = solve(ByteView{payload.data(), payload.size()}, 12);
  ASSERT_TRUE(sol.has_value());
  // A neighbouring nonce almost surely fails a 12-bit target.
  EXPECT_FALSE(
      verify(ByteView{payload.data(), payload.size()}, sol->nonce + 1, 12));
}

TEST(Hashcash, MaxTriesBoundsSearch) {
  const Bytes payload = to_bytes("hard");
  auto sol = solve(ByteView{payload.data(), payload.size()}, 60,
                   /*start_nonce=*/0, /*max_tries=*/10);
  EXPECT_FALSE(sol.has_value());
}

TEST(Hashcash, ExpectedTriesScale) {
  EXPECT_DOUBLE_EQ(expected_tries(0), 1.0);
  EXPECT_DOUBLE_EQ(expected_tries(10), 1024.0);
  EXPECT_DOUBLE_EQ(expected_tries(20) / expected_tries(10), 1024.0);
}

// ---------------------------------------------------------------------------
// account_of per-thread LRU: pushing well past the capacity (> 2^16
// distinct keys) must evict only the least-recently-used entries, keep the
// counters exact, and never change a derived id (cost, not results).

TEST(AccountCache, LruEvictsOldestBeyondCapacityWithExactCounters) {
  ASSERT_TRUE(DigestCache::enabled());
  account_cache_reset();
  const std::size_t cap = account_cache_capacity();
  ASSERT_GE(cap, std::size_t{1} << 16);
  const std::uint64_t base = 50'000;
  const std::size_t total = cap + (cap >> 2);  // > 2^16 distinct keys

  std::vector<AccountId> oldest, newest;  // sampled ids from the first pass
  for (std::size_t i = 0; i < total; ++i) {
    const AccountId id = account_of(base + i);
    if (i < 4) oldest.push_back(id);
    if (i >= total - 4) newest.push_back(id);
  }
  AccountCacheStats s = account_cache_stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, total);
  EXPECT_EQ(s.evictions, total - cap);

  // The most recent keys are resident: pure hits, identical ids.
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(account_of(base + total - 4 + i), newest[i]);
  s = account_cache_stats();
  EXPECT_EQ(s.hits, 4u);
  EXPECT_EQ(s.misses, total);

  // The oldest keys were evicted: misses that re-derive identical ids.
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(account_of(base + i), oldest[i]);
  s = account_cache_stats();
  EXPECT_EQ(s.hits, 4u);
  EXPECT_EQ(s.misses, total + 4);
  EXPECT_EQ(s.evictions, total - cap + 4);

  account_cache_reset();
  s = account_cache_stats();
  EXPECT_EQ(s.hits + s.misses + s.evictions, 0u);
}

TEST(AccountCache, HitRefreshesRecencySoHotKeysSurviveEviction) {
  ASSERT_TRUE(DigestCache::enabled());
  account_cache_reset();
  const std::size_t cap = account_cache_capacity();
  const std::uint64_t base = 9'000'000;
  for (std::size_t i = 0; i < cap; ++i) (void)account_of(base + i);

  (void)account_of(base);  // moves the LRU tail back to the front
  EXPECT_EQ(account_cache_stats().hits, 1u);

  // One new key evicts the least-recent entry — now base+1, not base.
  (void)account_of(base + cap);
  (void)account_of(base);  // still resident
  const AccountCacheStats before = account_cache_stats();
  EXPECT_EQ(before.hits, 2u);
  (void)account_of(base + 1);  // evicted: re-derives
  const AccountCacheStats after = account_cache_stats();
  EXPECT_EQ(after.hits, 2u);
  EXPECT_EQ(after.misses, before.misses + 1);
  account_cache_reset();
}

TEST(Hashcash, SolveEffortMatchesDifficultyStatistically) {
  // Mean tries across many puzzles should be within ~3x of 2^bits.
  const int bits = 8;
  double total_tries = 0;
  const int puzzles = 50;
  for (int i = 0; i < puzzles; ++i) {
    const Bytes payload = to_bytes("puzzle-" + std::to_string(i));
    auto sol = solve(ByteView{payload.data(), payload.size()}, bits);
    ASSERT_TRUE(sol.has_value());
    total_tries += static_cast<double>(sol->tries);
  }
  const double mean = total_tries / puzzles;
  EXPECT_GT(mean, expected_tries(bits) / 3.0);
  EXPECT_LT(mean, expected_tries(bits) * 3.0);
}

}  // namespace
}  // namespace dlt::crypto
