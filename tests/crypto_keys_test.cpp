// Signatures (Schnorr, toy group) and hashcash PoW (paper §III).
#include <gtest/gtest.h>

#include "crypto/hashcash.hpp"
#include "crypto/keys.hpp"

namespace dlt::crypto {
namespace {

TEST(Keys, SignVerifyRoundTrip) {
  Rng rng(1);
  KeyPair kp = KeyPair::generate(rng);
  const Bytes msg = to_bytes("transfer 100 to bob");
  const Signature sig = kp.sign(ByteView{msg.data(), msg.size()}, rng);
  EXPECT_TRUE(verify(kp.public_key(), ByteView{msg.data(), msg.size()}, sig));
}

TEST(Keys, WrongMessageRejected) {
  Rng rng(2);
  KeyPair kp = KeyPair::generate(rng);
  const Bytes msg = to_bytes("pay alice");
  const Bytes other = to_bytes("pay mallory");
  const Signature sig = kp.sign(ByteView{msg.data(), msg.size()}, rng);
  EXPECT_FALSE(
      verify(kp.public_key(), ByteView{other.data(), other.size()}, sig));
}

TEST(Keys, WrongKeyRejected) {
  Rng rng(3);
  KeyPair alice = KeyPair::generate(rng);
  KeyPair bob = KeyPair::generate(rng);
  const Bytes msg = to_bytes("hello");
  const Signature sig = alice.sign(ByteView{msg.data(), msg.size()}, rng);
  EXPECT_FALSE(verify(bob.public_key(), ByteView{msg.data(), msg.size()}, sig));
}

TEST(Keys, TamperedSignatureRejected) {
  Rng rng(4);
  KeyPair kp = KeyPair::generate(rng);
  const Bytes msg = to_bytes("x");
  Signature sig = kp.sign(ByteView{msg.data(), msg.size()}, rng);
  sig.s ^= 1;
  EXPECT_FALSE(verify(kp.public_key(), ByteView{msg.data(), msg.size()}, sig));
  sig.s ^= 1;
  sig.r ^= 1;
  EXPECT_FALSE(verify(kp.public_key(), ByteView{msg.data(), msg.size()}, sig));
}

TEST(Keys, DegenerateSignatureValuesRejected) {
  Rng rng(5);
  KeyPair kp = KeyPair::generate(rng);
  const Bytes msg = to_bytes("x");
  EXPECT_FALSE(verify(kp.public_key(), ByteView{msg.data(), msg.size()},
                      Signature{0, 0}));
  EXPECT_FALSE(verify(0, ByteView{msg.data(), msg.size()}, Signature{1, 1}));
}

TEST(Keys, DeterministicFromSeed) {
  KeyPair a = KeyPair::from_seed(77);
  KeyPair b = KeyPair::from_seed(77);
  KeyPair c = KeyPair::from_seed(78);
  EXPECT_EQ(a.public_key(), b.public_key());
  EXPECT_EQ(a.account_id(), b.account_id());
  EXPECT_NE(a.public_key(), c.public_key());
}

TEST(Keys, AccountIdBindsPubkey) {
  KeyPair kp = KeyPair::from_seed(9);
  EXPECT_EQ(kp.account_id(), account_of(kp.public_key()));
  EXPECT_NE(kp.account_id(), account_of(kp.public_key() + 1));
}

TEST(Keys, SignaturesRandomized) {
  // Fresh nonce per signature: same message, different signatures, both
  // valid.
  Rng rng(6);
  KeyPair kp = KeyPair::generate(rng);
  const Bytes msg = to_bytes("m");
  const Signature s1 = kp.sign(ByteView{msg.data(), msg.size()}, rng);
  const Signature s2 = kp.sign(ByteView{msg.data(), msg.size()}, rng);
  EXPECT_NE(s1, s2);
  EXPECT_TRUE(verify(kp.public_key(), ByteView{msg.data(), msg.size()}, s1));
  EXPECT_TRUE(verify(kp.public_key(), ByteView{msg.data(), msg.size()}, s2));
}

TEST(Hashcash, SolveAndVerify) {
  const Bytes payload = to_bytes("block-header");
  auto sol = solve(ByteView{payload.data(), payload.size()}, 10);
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(
      verify(ByteView{payload.data(), payload.size()}, sol->nonce, 10));
  EXPECT_TRUE(meets_difficulty(sol->digest, 10));
}

TEST(Hashcash, HigherDifficultyStillVerifiesLower) {
  const Bytes payload = to_bytes("p");
  auto sol = solve(ByteView{payload.data(), payload.size()}, 12);
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(verify(ByteView{payload.data(), payload.size()}, sol->nonce, 8));
}

TEST(Hashcash, WrongNonceFails) {
  const Bytes payload = to_bytes("p2");
  auto sol = solve(ByteView{payload.data(), payload.size()}, 12);
  ASSERT_TRUE(sol.has_value());
  // A neighbouring nonce almost surely fails a 12-bit target.
  EXPECT_FALSE(
      verify(ByteView{payload.data(), payload.size()}, sol->nonce + 1, 12));
}

TEST(Hashcash, MaxTriesBoundsSearch) {
  const Bytes payload = to_bytes("hard");
  auto sol = solve(ByteView{payload.data(), payload.size()}, 60,
                   /*start_nonce=*/0, /*max_tries=*/10);
  EXPECT_FALSE(sol.has_value());
}

TEST(Hashcash, ExpectedTriesScale) {
  EXPECT_DOUBLE_EQ(expected_tries(0), 1.0);
  EXPECT_DOUBLE_EQ(expected_tries(10), 1024.0);
  EXPECT_DOUBLE_EQ(expected_tries(20) / expected_tries(10), 1024.0);
}

TEST(Hashcash, SolveEffortMatchesDifficultyStatistically) {
  // Mean tries across many puzzles should be within ~3x of 2^bits.
  const int bits = 8;
  double total_tries = 0;
  const int puzzles = 50;
  for (int i = 0; i < puzzles; ++i) {
    const Bytes payload = to_bytes("puzzle-" + std::to_string(i));
    auto sol = solve(ByteView{payload.data(), payload.size()}, bits);
    ASSERT_TRUE(sol.has_value());
    total_tries += static_cast<double>(sol->tries);
  }
  const double mean = total_tries / puzzles;
  EXPECT_GT(mean, expected_tries(bits) / 3.0);
  EXPECT_LT(mean, expected_tries(bits) * 3.0);
}

}  // namespace
}  // namespace dlt::crypto
