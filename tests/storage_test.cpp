// Storage engine (ISSUE 9): append-only segmented block log + state
// backends. Covers catalog semantics (upsert last-wins, tombstones,
// compaction), the memory/disk accounting parity that underpins the
// storage determinism contract, reopen persistence, and crash recovery
// from truncated or corrupted tails.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "storage/block_log.hpp"
#include "storage/config.hpp"
#include "storage/crc32.hpp"
#include "storage/ledger_store.hpp"
#include "storage/state_backend.hpp"
#include "support/bytes.hpp"

namespace dlt::storage {
namespace {

Hash256 key_of(std::uint8_t tag) {
  Hash256 h;
  h[0] = tag;
  h[31] = static_cast<Byte>(tag ^ 0xFF);
  return h;
}

Bytes payload_of(std::size_t n, std::uint8_t fill) {
  return Bytes(n, fill);
}

/// Fresh scratch directory per test, removed on destruction.
struct ScratchDir {
  std::filesystem::path path;
  explicit ScratchDir(const std::string& tag) {
    path = std::filesystem::temp_directory_path() /
           ("dlt_storage_test_" + tag + "_" +
            std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

BlockLog::Options options_for(StorageMode mode, const std::string& dir,
                              std::size_t segment_bytes = 1u << 20,
                              bool truncate = true) {
  BlockLog::Options o;
  o.mode = mode;
  o.dir = dir;
  o.segment_bytes = segment_bytes;
  o.truncate = truncate;
  return o;
}

// ------------------------------------------------------------ crc32

TEST(Crc32, KnownVectorAndIncremental) {
  // CRC-32("123456789") = 0xCBF43926 (IEEE reflected, the check value).
  const Bytes data = to_bytes("123456789");
  EXPECT_EQ(crc32(data), 0xCBF43926u);

  std::uint32_t crc = crc32_init();
  crc = crc32_update(crc, ByteView{data.data(), 4});
  crc = crc32_update(crc, ByteView{data.data() + 4, 5});
  EXPECT_EQ(crc32_final(crc), 0xCBF43926u);

  EXPECT_EQ(crc32(Bytes{}), 0u);
}

// -------------------------------------------------------- block log

TEST(BlockLog, AppendReadEraseRoundtrip) {
  BlockLog log(options_for(StorageMode::kMemory, ""));
  const Hash256 a = key_of(1), b = key_of(2);

  log.append(RecordType::kHeader, a, payload_of(100, 0xAA));
  log.append(RecordType::kBody, a, payload_of(300, 0xBB));
  log.append(RecordType::kHeader, b, payload_of(100, 0xCC));

  EXPECT_TRUE(log.contains(RecordType::kHeader, a));
  EXPECT_TRUE(log.contains(RecordType::kBody, a));
  EXPECT_FALSE(log.contains(RecordType::kBody, b));
  EXPECT_EQ(log.live_records(), 3u);

  const auto body = log.read(RecordType::kBody, a);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(*body, payload_of(300, 0xBB));

  EXPECT_TRUE(log.erase(RecordType::kBody, a));
  EXPECT_FALSE(log.erase(RecordType::kBody, a));  // already gone
  EXPECT_FALSE(log.read(RecordType::kBody, a).has_value());
  EXPECT_EQ(log.live_records(), 2u);
}

TEST(BlockLog, UpsertIsLastWinsAndDeadBytesAccrue) {
  BlockLog log(options_for(StorageMode::kMemory, ""));
  const Hash256 a = key_of(3);

  log.append(RecordType::kBlock, a, payload_of(64, 0x01));
  const std::uint64_t live_once = log.live_bytes();
  log.append(RecordType::kBlock, a, payload_of(64, 0x02));

  EXPECT_EQ(log.live_records(), 1u);
  EXPECT_EQ(log.live_bytes(), live_once);         // one live frame
  EXPECT_EQ(log.dead_bytes(), live_once);         // the shadowed frame
  EXPECT_EQ(*log.read(RecordType::kBlock, a), payload_of(64, 0x02));
}

TEST(BlockLog, RotationBySegmentBytesAndCompaction) {
  // 1 KiB segments; 200-byte payloads (245-byte frames) → 4 per segment.
  BlockLog log(options_for(StorageMode::kMemory, "", 1024));
  for (std::uint8_t i = 0; i < 12; ++i)
    log.append(RecordType::kSite, key_of(i), payload_of(200, i));
  EXPECT_EQ(log.segment_count(), 3u);

  // Erase 8 of 12, then compact: live set shrinks to one segment.
  for (std::uint8_t i = 0; i < 8; ++i)
    EXPECT_TRUE(log.erase(RecordType::kSite, key_of(i)));
  const std::uint64_t before = log.physical_bytes();
  const std::uint64_t reclaimed = log.compact();
  EXPECT_GT(reclaimed, 0u);
  EXPECT_EQ(log.physical_bytes(), before - reclaimed);
  EXPECT_EQ(log.segment_count(), 1u);
  EXPECT_EQ(log.live_records(), 4u);
  for (std::uint8_t i = 8; i < 12; ++i)
    EXPECT_EQ(*log.read(RecordType::kSite, key_of(i)), payload_of(200, i));
}

TEST(BlockLog, ForEachVisitsLiveRecordsInAppendOrder) {
  BlockLog log(options_for(StorageMode::kMemory, ""));
  log.append(RecordType::kBlock, key_of(1), payload_of(8, 1));
  log.append(RecordType::kBlock, key_of(2), payload_of(8, 2));
  log.append(RecordType::kBlock, key_of(3), payload_of(8, 3));
  log.append(RecordType::kBlock, key_of(1), payload_of(8, 9));  // re-append
  log.erase(RecordType::kBlock, key_of(2));

  std::vector<std::uint8_t> seen;
  log.for_each([&](RecordType type, const Hash256& key, ByteView payload) {
    EXPECT_EQ(type, RecordType::kBlock);
    seen.push_back(payload[0]);
    (void)key;
  });
  // key 3 first (older live frame), then key 1's re-append.
  EXPECT_EQ(seen, (std::vector<std::uint8_t>{3, 9}));
}

TEST(BlockLog, MemoryAndDiskAccountingIdentical) {
  ScratchDir scratch("parity");
  BlockLog mem(options_for(StorageMode::kMemory, "", 2048));
  BlockLog disk(options_for(StorageMode::kDisk, scratch.str(), 2048));

  const auto drive = [](BlockLog& log) {
    for (std::uint8_t i = 0; i < 20; ++i)
      log.append(RecordType::kHeader, key_of(i), payload_of(100 + i * 7, i));
    for (std::uint8_t i = 0; i < 20; i += 3)
      log.erase(RecordType::kHeader, key_of(i));
    for (std::uint8_t i = 0; i < 5; ++i)  // upserts
      log.append(RecordType::kHeader, key_of(i + 1), payload_of(50, 0xEE));
  };
  drive(mem);
  drive(disk);

  EXPECT_EQ(mem.physical_bytes(), disk.physical_bytes());
  EXPECT_EQ(mem.live_bytes(), disk.live_bytes());
  EXPECT_EQ(mem.dead_bytes(), disk.dead_bytes());
  EXPECT_EQ(mem.segment_count(), disk.segment_count());
  EXPECT_EQ(mem.live_records(), disk.live_records());
  EXPECT_EQ(mem.compact(), disk.compact());
  EXPECT_EQ(mem.physical_bytes(), disk.physical_bytes());

  // Disk physical accounting equals real file bytes (after flush).
  disk.sync();
  std::uint64_t file_bytes = 0;
  for (const auto& e : std::filesystem::directory_iterator(scratch.path))
    if (e.path().extension() == ".dlog") file_bytes += e.file_size();
  EXPECT_EQ(disk.physical_bytes(), file_bytes);
}

TEST(BlockLog, ReopenRecoversCatalogAndTombstones) {
  ScratchDir scratch("reopen");
  std::uint64_t physical = 0;
  {
    BlockLog log(options_for(StorageMode::kDisk, scratch.str(), 1024));
    for (std::uint8_t i = 0; i < 10; ++i)
      log.append(RecordType::kBlock, key_of(i), payload_of(120, i));
    log.append(RecordType::kBlock, key_of(4), payload_of(60, 0x44));
    log.erase(RecordType::kBlock, key_of(7));
    log.sync();
    physical = log.physical_bytes();
  }
  BlockLog log(options_for(StorageMode::kDisk, scratch.str(), 1024, false));
  EXPECT_EQ(log.physical_bytes(), physical);
  EXPECT_EQ(log.recovered_records(), 9u);
  EXPECT_EQ(log.truncated_tail_bytes(), 0u);
  EXPECT_FALSE(log.contains(RecordType::kBlock, key_of(7)));
  EXPECT_EQ(*log.read(RecordType::kBlock, key_of(4)), payload_of(60, 0x44));
  EXPECT_EQ(*log.read(RecordType::kBlock, key_of(9)), payload_of(120, 9));

  // The reopened log keeps appending where it left off.
  log.append(RecordType::kBlock, key_of(42), payload_of(10, 0xAB));
  EXPECT_EQ(*log.read(RecordType::kBlock, key_of(42)), payload_of(10, 0xAB));
}

TEST(BlockLog, TruncatedTailIsDroppedOnReopen) {
  ScratchDir scratch("torn");
  std::string last_segment;
  {
    BlockLog log(options_for(StorageMode::kDisk, scratch.str()));
    for (std::uint8_t i = 0; i < 6; ++i)
      log.append(RecordType::kSite, key_of(i), payload_of(100, i));
    log.sync();
    last_segment = scratch.str() + "/seg-000000.dlog";
  }
  // Kill the writer mid-append: chop 30 bytes off the last frame.
  const std::uint64_t size = std::filesystem::file_size(last_segment);
  std::filesystem::resize_file(last_segment, size - 30);

  BlockLog log(options_for(StorageMode::kDisk, scratch.str(), 1u << 20,
                           false));
  EXPECT_EQ(log.recovered_records(), 5u);  // the torn 6th is gone
  EXPECT_GT(log.truncated_tail_bytes(), 0u);
  EXPECT_FALSE(log.contains(RecordType::kSite, key_of(5)));
  for (std::uint8_t i = 0; i < 5; ++i)
    EXPECT_EQ(*log.read(RecordType::kSite, key_of(i)), payload_of(100, i));

  // Appending after recovery lands on a clean frame boundary.
  log.append(RecordType::kSite, key_of(5), payload_of(100, 5));
  log.sync();
  EXPECT_EQ(std::filesystem::file_size(last_segment), log.physical_bytes());
}

TEST(BlockLog, TornCrcIsDroppedOnReopen) {
  ScratchDir scratch("crc");
  {
    BlockLog log(options_for(StorageMode::kDisk, scratch.str()));
    for (std::uint8_t i = 0; i < 4; ++i)
      log.append(RecordType::kDelta, key_of(i), payload_of(80, i));
    log.sync();
  }
  // Flip one payload byte inside the *last* frame (offset −1 from EOF).
  const std::string seg = scratch.str() + "/seg-000000.dlog";
  {
    std::fstream f(seg, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put('\x5A');
  }
  BlockLog log(options_for(StorageMode::kDisk, scratch.str(), 1u << 20,
                           false));
  EXPECT_EQ(log.recovered_records(), 3u);
  EXPECT_GT(log.truncated_tail_bytes(), 0u);
  EXPECT_FALSE(log.contains(RecordType::kDelta, key_of(3)));
}

// --------------------------------------------------- state backends

StorageConfig config_for(StorageMode mode) {
  StorageConfig c;
  c.mode = mode;
  return c;
}

TEST(StateBackend, PutGetEraseOnBothKinds) {
  ScratchDir scratch("state");
  for (const StorageMode mode : {StorageMode::kMemory, StorageMode::kDisk}) {
    auto state = make_state_backend(config_for(mode), scratch.str(), true);
    const Hash256 a = key_of(1), b = key_of(2);

    state->put(a, payload_of(40, 0x11));
    state->put(b, payload_of(40, 0x22));
    state->put(a, payload_of(20, 0x33));  // upsert shrinks
    EXPECT_EQ(state->entry_count(), 2u);
    EXPECT_EQ(*state->get(a), payload_of(20, 0x33));
    EXPECT_TRUE(state->contains(b));

    EXPECT_TRUE(state->erase(b));
    EXPECT_FALSE(state->erase(b));
    EXPECT_FALSE(state->get(b).has_value());
    EXPECT_EQ(state->entry_count(), 1u);
  }
}

TEST(StateBackend, MemoryAndMmapAccountingIdentical) {
  ScratchDir scratch("state_parity");
  auto mem = make_state_backend(config_for(StorageMode::kMemory), "", true);
  auto disk =
      make_state_backend(config_for(StorageMode::kDisk), scratch.str(), true);

  const auto drive = [](StateBackend& s) {
    for (std::uint8_t i = 0; i < 30; ++i)
      s.put(key_of(i), payload_of(20 + i * 3, i));
    for (std::uint8_t i = 0; i < 30; i += 4) s.erase(key_of(i));
    for (std::uint8_t i = 1; i < 10; i += 2)
      s.put(key_of(i), payload_of(15, 0x77));
  };
  drive(*mem);
  drive(*disk);

  EXPECT_EQ(mem->physical_bytes(), disk->physical_bytes());
  EXPECT_EQ(mem->live_bytes(), disk->live_bytes());
  EXPECT_EQ(mem->entry_count(), disk->entry_count());
  EXPECT_EQ(mem->compact(), disk->compact());
  EXPECT_EQ(mem->physical_bytes(), disk->physical_bytes());

  // Same live contents in the same sequence order.
  std::vector<std::pair<Hash256, Bytes>> from_mem, from_disk;
  mem->for_each([&](const Hash256& k, ByteView v) {
    from_mem.emplace_back(k, Bytes(v.begin(), v.end()));
  });
  disk->for_each([&](const Hash256& k, ByteView v) {
    from_disk.emplace_back(k, Bytes(v.begin(), v.end()));
  });
  EXPECT_EQ(from_mem, from_disk);
}

TEST(StateBackend, MmapReopenAndTornTail) {
  ScratchDir scratch("state_reopen");
  std::uint64_t physical = 0;
  {
    auto state =
        make_state_backend(config_for(StorageMode::kDisk), scratch.str(),
                           true);
    for (std::uint8_t i = 0; i < 8; ++i)
      state->put(key_of(i), payload_of(64, i));
    state->erase(key_of(2));
    state->sync();
    physical = state->physical_bytes();
  }
  // Destructor truncated the arena to its used length.
  const std::string arena = scratch.str() + "/state.arena";
  EXPECT_EQ(std::filesystem::file_size(arena), physical);

  {
    auto state = make_state_backend(config_for(StorageMode::kDisk),
                                    scratch.str(), false);
    EXPECT_EQ(state->recovered_entries(), 7u);
    EXPECT_EQ(state->physical_bytes(), physical);
    EXPECT_FALSE(state->contains(key_of(2)));
    EXPECT_EQ(*state->get(key_of(7)), payload_of(64, 7));
  }

  // Torn tail: chop off the erase marker, all of put(7), and 10 bytes
  // into put(6). Reopen stops at the torn put(6) — so 6..7 are gone and
  // the erase of 2 never happened.
  const std::uint64_t chop = StateBackend::frame_size(0) +
                             StateBackend::frame_size(64) + 10;
  std::filesystem::resize_file(arena,
                               std::filesystem::file_size(arena) - chop);
  auto state = make_state_backend(config_for(StorageMode::kDisk),
                                  scratch.str(), false);
  EXPECT_EQ(state->recovered_entries(), 6u);
  EXPECT_FALSE(state->contains(key_of(6)));
  EXPECT_FALSE(state->contains(key_of(7)));
  EXPECT_TRUE(state->contains(key_of(2)));  // its erase marker was torn
  EXPECT_EQ(*state->get(key_of(5)), payload_of(64, 5));
}

// ------------------------------------------------------ ledger store

TEST(LedgerStore, DiskInstanceDirectoriesAndGauges) {
  ScratchDir scratch("store");
  StorageConfig config;
  config.mode = StorageMode::kDisk;
  config.path = scratch.str();

  obs::MetricsRegistry registry;
  LedgerStore store(config, "chain-s7/node0");
  store.attach_probe(obs::Probe{&registry, nullptr, "node.0."});

  store.log().append(RecordType::kHeader, key_of(1), payload_of(100, 1));
  store.state().put(key_of(2), payload_of(50, 2));
  store.note_pruned(123);
  store.commit();

  EXPECT_TRUE(std::filesystem::exists(scratch.path / "chain-s7" / "node0" /
                                      "seg-000000.dlog"));
  EXPECT_EQ(registry.gauge("node.0.storage.log_bytes").value(),
            static_cast<double>(store.log_bytes()));
  EXPECT_EQ(registry.gauge("node.0.storage.state_bytes").value(),
            static_cast<double>(store.state_bytes()));
  EXPECT_EQ(registry.gauge("node.0.storage.segments").value(), 1.0);
  EXPECT_EQ(registry.gauge("node.0.storage.pruned_bytes").value(), 123.0);
}

TEST(LedgerStore, MemoryModeTouchesNoFilesystem) {
  StorageConfig config;  // defaults to memory
  LedgerStore store(config, "lattice-s1/node3");
  EXPECT_FALSE(store.disk());
  EXPECT_TRUE(store.dir().empty());
  store.log().append(RecordType::kBlock, key_of(9), payload_of(10, 9));
  EXPECT_GT(store.log_bytes(), 0u);
}

TEST(StorageConfig, EnvOverrideParsing) {
  {
    StorageConfig c;
    ::setenv("DLT_STORAGE", "disk:/tmp/dlt-env-test", 1);
    apply_env_storage(c);
    EXPECT_EQ(c.mode, StorageMode::kDisk);
    EXPECT_EQ(c.path, "/tmp/dlt-env-test");
  }
  {
    StorageConfig c;
    ::setenv("DLT_STORAGE", "disk", 1);
    apply_env_storage(c);
    EXPECT_EQ(c.mode, StorageMode::kDisk);
    EXPECT_TRUE(c.path.empty());
  }
  {
    StorageConfig c;
    c.mode = StorageMode::kDisk;
    ::setenv("DLT_STORAGE", "memory", 1);
    apply_env_storage(c);
    EXPECT_EQ(c.mode, StorageMode::kMemory);
  }
  {
    StorageConfig c;
    ::setenv("DLT_STORAGE", "floppy", 1);
    apply_env_storage(c);
    EXPECT_EQ(c.mode, StorageMode::kMemory);  // invalid → untouched
  }
  ::unsetenv("DLT_STORAGE");
}

}  // namespace
}  // namespace dlt::storage
