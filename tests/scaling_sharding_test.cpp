// Sharding (paper §VI-A): placement, intra/cross-shard transfers,
// receipts, conservation, capacity scaling.
#include <gtest/gtest.h>

#include "crypto/keys.hpp"
#include "scaling/sharding.hpp"

namespace dlt::scaling {
namespace {

crypto::AccountId acct(std::uint64_t i) {
  return crypto::KeyPair::from_seed(0x5000 + i).account_id();
}

/// Finds an account on the requested shard.
crypto::AccountId acct_on_shard(const ShardedLedger& ledger,
                                std::size_t shard, std::uint64_t salt = 0) {
  for (std::uint64_t i = salt;; ++i) {
    const crypto::AccountId a = acct(i);
    if (ledger.shard_of(a) == shard) return a;
  }
}

TEST(Sharding, PlacementDeterministic) {
  ShardedLedger ledger(ShardParams{4, 100, 15.0});
  const crypto::AccountId a = acct(1);
  EXPECT_EQ(ledger.shard_of(a), ledger.shard_of(a));
  EXPECT_LT(ledger.shard_of(a), 4u);
}

TEST(Sharding, IntraShardTransfer) {
  ShardedLedger ledger(ShardParams{4, 100, 15.0});
  const auto a = acct_on_shard(ledger, 0);
  const auto b = acct_on_shard(ledger, 0, 1000);
  ledger.credit(a, 500);

  auto cross = ledger.transfer(a, b, 200);
  ASSERT_TRUE(cross.ok());
  EXPECT_FALSE(*cross);  // same shard
  EXPECT_EQ(ledger.balance_of(b), 0u);  // not yet sealed
  ledger.seal_round();
  EXPECT_EQ(ledger.balance_of(a), 300u);
  EXPECT_EQ(ledger.balance_of(b), 200u);
}

TEST(Sharding, CrossShardTakesTwoRounds) {
  ShardedLedger ledger(ShardParams{4, 100, 15.0});
  const auto a = acct_on_shard(ledger, 0);
  const auto b = acct_on_shard(ledger, 1);
  ledger.credit(a, 500);

  auto cross = ledger.transfer(a, b, 200);
  ASSERT_TRUE(cross.ok());
  EXPECT_TRUE(*cross);

  ledger.seal_round();  // debit + receipt emission on shard 0
  EXPECT_EQ(ledger.balance_of(a), 300u);
  EXPECT_EQ(ledger.balance_of(b), 0u);  // receipt not yet redeemed
  EXPECT_EQ(ledger.total_supply(), 500u);  // value in flight still counted

  ledger.seal_round();  // redemption on shard 1
  EXPECT_EQ(ledger.balance_of(b), 200u);
  EXPECT_EQ(ledger.aggregate_stats().receipts_emitted, 1u);
  EXPECT_EQ(ledger.aggregate_stats().receipts_redeemed, 1u);
}

TEST(Sharding, InsufficientBalanceRefused) {
  ShardedLedger ledger(ShardParams{2, 100, 15.0});
  const auto a = acct_on_shard(ledger, 0);
  const auto b = acct_on_shard(ledger, 1);
  ledger.credit(a, 10);
  EXPECT_FALSE(ledger.transfer(a, b, 11).ok());
}

TEST(Sharding, ConservationUnderRandomTraffic) {
  Rng rng(9);
  ShardedLedger ledger(ShardParams{8, 50, 15.0});
  std::vector<crypto::AccountId> accounts;
  for (std::uint64_t i = 0; i < 40; ++i) {
    accounts.push_back(acct(i));
    ledger.credit(accounts.back(), 1000);
  }
  const std::uint64_t supply = ledger.total_supply();

  for (int round = 0; round < 30; ++round) {
    for (int t = 0; t < 60; ++t) {
      const auto& from = accounts[rng.uniform(accounts.size())];
      const auto& to = accounts[rng.uniform(accounts.size())];
      if (from == to) continue;
      (void)ledger.transfer(from, to, 1 + rng.uniform(5));
    }
    ledger.seal_round();
    EXPECT_EQ(ledger.total_supply(), supply) << "round " << round;
  }
  // Drain queues.
  for (int i = 0; i < 10; ++i) ledger.seal_round();
  EXPECT_EQ(ledger.pending_ops(), 0u);
  EXPECT_EQ(ledger.total_supply(), supply);
  EXPECT_EQ(ledger.aggregate_stats().receipts_emitted,
            ledger.aggregate_stats().receipts_redeemed);
}

TEST(Sharding, CapacityScalesWithShardCount) {
  // "No longer forcing all nodes in the network to process all incoming
  // transactions": total per-round capacity is K * block_tx_capacity.
  for (std::size_t k : {1u, 2u, 4u, 8u}) {
    ShardedLedger ledger(ShardParams{k, 10, 15.0});
    // Saturate: every shard gets plenty of intra-shard work.
    std::vector<crypto::AccountId> accounts;
    for (std::uint64_t i = 0; i < 20 * k; ++i) {
      accounts.push_back(acct(i));
      ledger.credit(accounts.back(), 1'000'000);
    }
    Rng rng(k);
    for (int t = 0; t < 2000; ++t) {
      const auto& from = accounts[rng.uniform(accounts.size())];
      const auto& to = accounts[rng.uniform(accounts.size())];
      if (from == to) continue;
      (void)ledger.transfer(from, to, 1);
    }
    ledger.seal_round();
    const std::uint64_t processed = ledger.aggregate_stats().ops_processed;
    EXPECT_LE(processed, 10u * k);
    EXPECT_GE(processed, 10u * k - k);  // essentially saturated
  }
}

TEST(Sharding, QueuePeakTracked) {
  ShardedLedger ledger(ShardParams{1, 5, 15.0});
  const auto a = acct_on_shard(ledger, 0);
  const auto b = acct_on_shard(ledger, 0, 777);
  ledger.credit(a, 1'000'000);
  for (int i = 0; i < 20; ++i) (void)ledger.transfer(a, b, 1);
  ledger.seal_round();
  EXPECT_GE(ledger.stats(0).queue_peak, 20u);
  EXPECT_EQ(ledger.pending_ops(), 15u);  // 5 processed
}

}  // namespace
}  // namespace dlt::scaling
