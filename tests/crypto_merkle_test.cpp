// Merkle tree: roots, inclusion proofs, tamper detection (paper §II-A).
#include <gtest/gtest.h>

#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"

namespace dlt::crypto {
namespace {

std::vector<Hash256> make_leaves(std::size_t n) {
  std::vector<Hash256> leaves;
  leaves.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string s = "leaf-" + std::to_string(i);
    leaves.push_back(Sha256::digest(as_bytes(s)));
  }
  return leaves;
}

TEST(Merkle, EmptyTreeHasCanonicalRoot) {
  MerkleTree tree({});
  EXPECT_EQ(tree.root(), MerkleTree::empty_root());
  EXPECT_EQ(tree.leaf_count(), 0u);
}

TEST(Merkle, SingleLeafRootIsLeaf) {
  auto leaves = make_leaves(1);
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(), leaves[0]);
}

TEST(Merkle, RootMatchesComputeRoot) {
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 8u, 13u, 64u}) {
    auto leaves = make_leaves(n);
    MerkleTree tree(leaves);
    EXPECT_EQ(tree.root(), MerkleTree::compute_root(leaves)) << n;
  }
}

TEST(Merkle, RootDependsOnOrder) {
  auto leaves = make_leaves(4);
  const Hash256 a = MerkleTree::compute_root(leaves);
  std::swap(leaves[0], leaves[1]);
  EXPECT_NE(a, MerkleTree::compute_root(leaves));
}

TEST(Merkle, RootDependsOnEveryLeaf) {
  auto leaves = make_leaves(7);
  const Hash256 base = MerkleTree::compute_root(leaves);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    auto tampered = leaves;
    tampered[i].v[0] ^= 1;
    EXPECT_NE(base, MerkleTree::compute_root(tampered)) << i;
  }
}

TEST(Merkle, ProofOutOfRange) {
  MerkleTree tree(make_leaves(4));
  EXPECT_FALSE(tree.prove(4).ok());
}

class MerkleProofSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleProofSweep, AllLeavesProve) {
  const std::size_t n = GetParam();
  auto leaves = make_leaves(n);
  MerkleTree tree(leaves);
  for (std::size_t i = 0; i < n; ++i) {
    auto proof = tree.prove(i);
    ASSERT_TRUE(proof.ok()) << i;
    EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[i], i, *proof))
        << "n=" << n << " i=" << i;
  }
}

TEST_P(MerkleProofSweep, WrongLeafFailsVerification) {
  const std::size_t n = GetParam();
  auto leaves = make_leaves(n);
  MerkleTree tree(leaves);
  const Hash256 bogus = Sha256::digest(as_bytes("bogus"));
  for (std::size_t i = 0; i < n; ++i) {
    auto proof = tree.prove(i);
    ASSERT_TRUE(proof.ok());
    EXPECT_FALSE(MerkleTree::verify(tree.root(), bogus, i, *proof));
  }
}

TEST_P(MerkleProofSweep, TamperedProofFails) {
  const std::size_t n = GetParam();
  if (n < 2) return;  // single leaf has an empty proof
  auto leaves = make_leaves(n);
  MerkleTree tree(leaves);
  auto proof = tree.prove(0);
  ASSERT_TRUE(proof.ok());
  (*proof)[0].sibling.v[5] ^= 0xff;
  EXPECT_FALSE(MerkleTree::verify(tree.root(), leaves[0], 0, *proof));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16,
                                           17, 33, 100));

TEST(Merkle, ProofLengthLogarithmic) {
  MerkleTree tree(make_leaves(1024));
  auto proof = tree.prove(512);
  ASSERT_TRUE(proof.ok());
  EXPECT_EQ(proof->size(), 10u);  // log2(1024)
}

}  // namespace
}  // namespace dlt::crypto
