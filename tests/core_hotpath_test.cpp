// Determinism guarantees of the crypto hot-path layer: a cluster run must
// be bit-identical whether signature verification goes through the shared
// cache, the parallel batch-verification pool, or neither.
#include <gtest/gtest.h>

#include <sstream>

#include "core/chain_cluster.hpp"
#include "core/lattice_cluster.hpp"
#include "crypto/digest_cache.hpp"

namespace dlt::core {
namespace {

// Every RunMetrics field a divergence could show up in, flattened for one
// string compare (readable failure diffs).
std::string fingerprint(const RunMetrics& m) {
  std::ostringstream os;
  os << m.system << " dur=" << m.sim_duration << " sub=" << m.submitted
     << " rej=" << m.rejected << " inc=" << m.included
     << " conf=" << m.confirmed << " pend=" << m.pending_end
     << " reorg=" << m.reorgs << " orph=" << m.orphaned_blocks
     << " depth=" << m.max_reorg_depth << " blocks=" << m.blocks_produced
     << " bytes=" << m.stored_bytes << " msgs=" << m.messages
     << " mbytes=" << m.message_bytes
     << " ilat=" << m.inclusion_latency.median() << "/"
     << m.inclusion_latency.p95()
     << " clat=" << m.confirmation_latency.median() << "/"
     << m.confirmation_latency.p95();
  return os.str();
}

ChainClusterConfig hotpath_chain_config(chain::TxModel model) {
  ChainClusterConfig cfg;
  cfg.params = chain::bitcoin_like();
  cfg.params.tx_model = model;
  if (model == chain::TxModel::kAccount) cfg.params = chain::ethereum_like();
  cfg.params.verify_pow = false;
  cfg.params.block_interval = 20.0;
  cfg.params.retarget_window = 0;
  cfg.node_count = 4;
  cfg.miner_count = 2;
  cfg.total_hashrate = 1e6 / 20.0;
  cfg.params.initial_difficulty = 1e6;
  cfg.account_count = 8;
  cfg.genesis_outputs_per_account = 4;
  cfg.link = net::LinkParams{0.05, 0.01, 1e7};
  cfg.seed = 1234;
  return cfg;
}

struct ChainOutcome {
  std::string metrics;
  chain::BlockHash tip;
  bool converged = false;
};

ChainOutcome run_chain(const ChainClusterConfig& cfg) {
  ChainCluster cluster(cfg);
  cluster.start();
  Rng wl_rng(99);
  WorkloadConfig wl;
  wl.account_count = 8;
  wl.tx_rate = 1.0;
  wl.duration = 300.0;
  cluster.schedule_workload(generate_payments(wl, wl_rng));
  cluster.run_for(600.0);
  ChainOutcome out;
  out.metrics = fingerprint(cluster.metrics());
  out.tip = cluster.node(0).chain().tip_hash();
  out.converged = cluster.converged();
  return out;
}

void expect_identical(const ChainOutcome& a, const ChainOutcome& b) {
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.tip, b.tip);
  EXPECT_EQ(a.converged, b.converged);
}

TEST(HotPathDeterminism, ParallelBatchVerifyMatchesSerialUtxo) {
  ChainClusterConfig serial = hotpath_chain_config(chain::TxModel::kUtxo);
  ChainClusterConfig parallel = serial;
  parallel.crypto.verify_threads = 2;
  expect_identical(run_chain(serial), run_chain(parallel));
}

TEST(HotPathDeterminism, ParallelBatchVerifyMatchesSerialAccount) {
  ChainClusterConfig serial = hotpath_chain_config(chain::TxModel::kAccount);
  ChainClusterConfig parallel = serial;
  parallel.crypto.verify_threads = 4;
  expect_identical(run_chain(serial), run_chain(parallel));
}

TEST(HotPathDeterminism, SigcacheOnOffIdenticalOutcome) {
  ChainClusterConfig with = hotpath_chain_config(chain::TxModel::kUtxo);
  ChainClusterConfig without = with;
  without.crypto.shared_sigcache = false;
  expect_identical(run_chain(with), run_chain(without));
}

TEST(HotPathDeterminism, DigestMemoOnOffIdenticalOutcome) {
  const ChainClusterConfig cfg =
      hotpath_chain_config(chain::TxModel::kUtxo);
  const ChainOutcome memoized = run_chain(cfg);
  crypto::DigestCache::set_enabled(false);
  const ChainOutcome uncached = run_chain(cfg);
  crypto::DigestCache::set_enabled(true);
  expect_identical(memoized, uncached);
}

TEST(HotPathDeterminism, LatticeSigcacheOnOffIdenticalOutcome) {
  LatticeClusterConfig cfg;
  cfg.node_count = 4;
  cfg.representative_count = 3;
  cfg.account_count = 8;
  cfg.params.verify_work = false;
  cfg.link = net::LinkParams{0.05, 0.01, 1e7};
  cfg.seed = 77;

  auto run = [](const LatticeClusterConfig& c) {
    LatticeCluster cluster(c);
    cluster.fund_accounts();
    Rng wl_rng(5);
    WorkloadConfig wl;
    wl.account_count = 8;
    wl.tx_rate = 2.0;
    wl.duration = 60.0;
    cluster.schedule_workload(generate_payments(wl, wl_rng));
    cluster.run_for(120.0);
    return fingerprint(cluster.metrics()) +
           (cluster.converged() ? " converged" : " diverged");
  };

  const std::string with = run(cfg);
  LatticeClusterConfig no_cache = cfg;
  no_cache.crypto.shared_sigcache = false;
  EXPECT_EQ(with, run(no_cache));
}

}  // namespace
}  // namespace dlt::core
