// Stress and robustness: deep reorgs, decoder fuzzing, long-running
// lattice churn. Complements the targeted unit suites.
#include <gtest/gtest.h>

#include "chain_test_util.hpp"
#include "lattice_test_util.hpp"
#include "support/serialize.hpp"

namespace dlt {
namespace {

using chain::testutil::cheap_pow_utxo;
using chain::testutil::fund_all;
using chain::testutil::make_keys;
using chain::testutil::seal_empty_utxo;

TEST(DeepReorg, FiftyBlockSwitchKeepsStateExact) {
  auto keys = make_keys(2);
  chain::Blockchain chain(cheap_pow_utxo(), fund_all(keys, 1000));
  chain::Blockchain rival(cheap_pow_utxo(), fund_all(keys, 1000));

  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(chain
                    .submit(seal_empty_utxo(chain, keys[0].account_id(),
                                            chain.tip_hash()))
                    .ok());
  }
  for (int i = 0; i < 52; ++i) {
    ASSERT_TRUE(rival
                    .submit(seal_empty_utxo(rival, keys[1].account_id(),
                                            rival.tip_hash()))
                    .ok());
  }
  const chain::Amount before_total = chain.utxo_set().total_value();
  (void)before_total;

  // Feed the whole rival chain; a 50-deep reorg must execute cleanly.
  for (std::uint32_t h = 1; h <= rival.height(); ++h)
    ASSERT_TRUE(chain.submit(*rival.at_height(h)).ok()) << h;

  EXPECT_EQ(chain.tip_hash(), rival.tip_hash());
  EXPECT_EQ(chain.height(), 52u);
  EXPECT_EQ(chain.fork_stats().max_reorg_depth, 50u);
  // State identical to a node that never saw the losing branch.
  EXPECT_EQ(chain.utxo_set().total_value(),
            rival.utxo_set().total_value());
  EXPECT_EQ(chain.utxo_set().size(), rival.utxo_set().size());
  // keys[0]'s 50 orphaned coinbases are gone; keys[1] owns 52.
  EXPECT_EQ(chain.utxo_set().find_owned(keys[1].account_id()).size(), 53u);
}

TEST(DeepReorg, FlipFlopBranchesStayConsistent) {
  // Two branches alternately taking the lead: every switch must leave the
  // UTXO set exactly consistent with the active chain.
  auto keys = make_keys(2);
  chain::Blockchain chain(cheap_pow_utxo(), fund_all(keys, 1000));
  chain::Blockchain a(cheap_pow_utxo(), fund_all(keys, 1000));
  chain::Blockchain b(cheap_pow_utxo(), fund_all(keys, 1000));

  for (int round = 0; round < 6; ++round) {
    chain::Blockchain& leader = (round % 2 == 0) ? a : b;
    const auto& miner = keys[round % 2];
    // Extend the leader until it is strictly ahead of both.
    const std::uint32_t target =
        std::max(a.height(), b.height()) + 1;
    while (leader.height() < target) {
      ASSERT_TRUE(leader
                      .submit(seal_empty_utxo(leader, miner.account_id(),
                                              leader.tip_hash()))
                      .ok());
    }
    for (std::uint32_t h = 1; h <= leader.height(); ++h)
      (void)chain.submit(*leader.at_height(h));
    EXPECT_EQ(chain.tip_hash(), leader.tip_hash()) << round;
    EXPECT_EQ(
        chain.utxo_set().total_value(),
        1000 * 2 + static_cast<chain::Amount>(chain.height()) *
                       chain.params().block_reward)
        << round;
  }
  EXPECT_GE(chain.fork_stats().reorgs, 5u);
}

TEST(DecoderFuzz, RandomBytesNeverCrashTheReader) {
  Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes junk(rng.uniform(64), 0);
    for (auto& b : junk) b = static_cast<Byte>(rng.next());
    Reader r(ByteView{junk.data(), junk.size()});
    // Exercise every decoder; all failures must come back as Results.
    (void)r.u8();
    (void)r.u16();
    (void)r.u32();
    (void)r.varint();
    (void)r.blob();
    (void)r.str();
    (void)r.fixed<32>();
    (void)r.u64();
  }
  SUCCEED();
}

TEST(DecoderFuzz, VarintRoundTripsAllBoundaries) {
  for (int shift = 0; shift < 64; ++shift) {
    for (std::int64_t delta : {-1, 0, 1}) {
      const std::uint64_t v = (1ULL << shift) + static_cast<std::uint64_t>(delta);
      Writer w;
      w.varint(v);
      Reader r(ByteView{w.bytes().data(), w.size()});
      auto back = r.varint();
      ASSERT_TRUE(back.ok());
      EXPECT_EQ(*back, v);
    }
  }
}

TEST(LatticeChurn, ThousandBlockSessionStaysConsistent) {
  using namespace lattice;
  using testutil::Builder;
  using testutil::cheap_params;

  auto genesis = crypto::KeyPair::from_seed(1);
  Rng rng(3);
  Ledger ledger(cheap_params(), genesis.account_id(), genesis.account_id(),
                1'000'000'000);
  Builder b{ledger, rng, cheap_params().work_bits};

  std::vector<crypto::KeyPair> keys;
  for (int i = 0; i < 20; ++i)
    keys.push_back(crypto::KeyPair::from_seed(0x600 + i));
  // Open everyone.
  for (const auto& k : keys) {
    LatticeBlock send = b.send(genesis, k.account_id(), 1'000'000);
    ASSERT_TRUE(ledger.process(send).ok());
    ASSERT_TRUE(
        ledger.process(b.open(k, send.hash(), 1'000'000, k.account_id()))
            .ok());
  }

  // Random churn: sends, receives, representative changes, occasional
  // rollbacks of the latest uncemented block.
  std::uint64_t ops = 0;
  while (ops < 1000) {
    const auto& from = keys[rng.uniform(keys.size())];
    const auto& to = keys[rng.uniform(keys.size())];
    if (from.account_id() == to.account_id()) continue;
    const double dice = rng.uniform01();
    if (dice < 0.55) {
      if (!ledger.account(from.account_id()) ||
          ledger.balance_of(from.account_id()) < 10)
        continue;
      LatticeBlock send = b.send(from, to.account_id(), 1 + rng.uniform(9));
      ASSERT_TRUE(ledger.process(send).ok());
      ++ops;
    } else if (dice < 0.9) {
      auto pendings = ledger.pending_for(to.account_id());
      if (pendings.empty()) continue;
      // The account may have been erased by a rollback of its open
      // block; claiming then requires a fresh open, not a receive.
      LatticeBlock claim =
          ledger.account(to.account_id())
              ? b.receive(to, pendings[0].first, pendings[0].second.amount)
              : b.open(to, pendings[0].first, pendings[0].second.amount,
                       to.account_id());
      ASSERT_TRUE(ledger.process(claim).ok());
      ++ops;
    } else if (dice < 0.97) {
      if (!ledger.account(from.account_id())) continue;
      LatticeBlock change = b.change(from, to.account_id());
      ASSERT_TRUE(ledger.process(change).ok());
      ++ops;
    } else {
      const auto head = ledger.head_of(from.account_id());
      if (!head || ledger.is_cemented(*head)) continue;
      (void)ledger.rollback(*head);
      ++ops;
    }
    ASSERT_TRUE(ledger.conserves_value()) << "after op " << ops;
  }
  EXPECT_GT(ledger.block_count(), 500u);
  EXPECT_TRUE(ledger.conserves_value());
  // Weight table sums to the settled supply.
  lattice::Amount weight_sum = 0;
  for (const auto& k : keys)
    weight_sum += ledger.weight_of(k.account_id());
  weight_sum += ledger.weight_of(genesis.account_id());
  EXPECT_EQ(weight_sum, ledger.total_weight());
}

}  // namespace
}  // namespace dlt
