// Ledger-size management: body pruning, state pruning, fast sync
// (paper §V-A).
#include <gtest/gtest.h>

#include <map>

#include "chain/fast_sync.hpp"
#include "chain_test_util.hpp"

namespace dlt::chain {
namespace {

using testutil::cheap_pow_account;
using testutil::cheap_pow_utxo;
using testutil::fund_all;
using testutil::make_keys;
using testutil::seal_account_tip;
using testutil::seal_empty_utxo;

class PruningUtxoTest : public ::testing::Test {
 protected:
  PruningUtxoTest()
      : keys(make_keys(2)), chain(cheap_pow_utxo(), fund_all(keys, 1000)) {
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE(chain
                      .submit(seal_empty_utxo(chain, keys[0].account_id(),
                                              chain.tip_hash()))
                      .ok());
    }
  }
  std::vector<crypto::KeyPair> keys;
  Blockchain chain;
};

TEST_F(PruningUtxoTest, PruneBodiesReclaimsSpace) {
  const auto before = chain.storage();
  const std::uint64_t reclaimed = chain.prune_bodies(5);
  EXPECT_GT(reclaimed, 0u);
  const auto after = chain.storage();
  EXPECT_LT(after.bodies, before.bodies);
  EXPECT_EQ(after.headers, before.headers);  // headers always kept
  // Chainstate unaffected: balances still queryable.
  EXPECT_EQ(after.chainstate, before.chainstate);
}

TEST_F(PruningUtxoTest, PrunedNodeCannotServeHistory) {
  chain.prune_bodies(5);
  const Block* deep = chain.at_height(2);
  ASSERT_NE(deep, nullptr);
  // Header survives, the transactions do not (§V-A downside: "other nodes
  // are no longer able to download the entire history of a pruned node").
  EXPECT_EQ(deep->tx_count(), 0u);
  const Block* recent = chain.at_height(chain.height());
  EXPECT_GT(recent->tx_count(), 0u);
}

TEST_F(PruningUtxoTest, PruneIdempotent) {
  const std::uint64_t first = chain.prune_bodies(5);
  EXPECT_GT(first, 0u);
  EXPECT_EQ(chain.prune_bodies(5), 0u);
}

TEST_F(PruningUtxoTest, CannotReorgIntoPrunedHistory) {
  chain.prune_bodies(2);
  // A rival branch forking below the prune point must be refused even if
  // heavier. Build it on a scratch replica of the same chain.
  Blockchain scratch(cheap_pow_utxo(), fund_all(keys, 1000));
  Block fork_base = seal_empty_utxo(scratch, keys[1].account_id(),
                                    scratch.tip_hash());
  ASSERT_TRUE(scratch.submit(fork_base).ok());
  Block next = fork_base;
  // Extend the rival branch beyond our height.
  for (int i = 0; i < 25; ++i) {
    next = seal_empty_utxo(scratch, keys[1].account_id(),
                           scratch.tip_hash());
    ASSERT_TRUE(scratch.submit(next).ok());
  }
  // Feed the whole rival branch; the reorg attempt must fail at adoption.
  (void)chain.submit(fork_base);
  for (std::uint32_t h = 2; h <= scratch.height(); ++h) {
    auto res = chain.submit(*scratch.at_height(h));
    if (res.ok()) continue;
    EXPECT_EQ(res.error().code, "pruned-fork-point");
    return;  // refused as designed
  }
  FAIL() << "rival branch crossing the prune point was adopted";
}

class FastSyncTest : public ::testing::Test {
 protected:
  FastSyncTest()
      : keys(make_keys(4)),
        chain(cheap_pow_account(), fund_all(keys, 10'000'000)),
        rng(3) {}

  void grow(std::uint32_t blocks, std::size_t txs_per_block) {
    for (std::uint32_t i = 0; i < blocks; ++i) {
      AccountTxList txs;
      for (std::size_t t = 0; t < txs_per_block; ++t) {
        AccountTransaction tx;
        const std::size_t from = (t + i) % keys.size();
        std::size_t to = (from + 1) % keys.size();
        tx.to = keys[to].account_id();
        tx.value = 10;
        tx.nonce = nonces_[from]++;
        tx.gas_limit = 21'000;
        tx.gas_price = 1;
        tx.sign(keys[from], rng);
        txs.push_back(tx);
      }
      Block b = seal_account_tip(chain, std::move(txs),
                                 keys[0].account_id());
      ASSERT_TRUE(chain.submit(b).ok());
    }
  }

  std::vector<crypto::KeyPair> keys;
  Blockchain chain;
  Rng rng;
  std::map<std::size_t, std::uint64_t> nonces_;
};

TEST_F(FastSyncTest, FullSyncCountsEverything) {
  grow(10, 3);
  SyncPlan full = plan_full_sync(chain);
  EXPECT_EQ(full.txs_replayed, 30u);
  EXPECT_GT(full.body_bytes, 0u);
  EXPECT_EQ(full.receipt_bytes, 0u);
}

TEST_F(FastSyncTest, FastSyncSkipsReplayBeforePivot) {
  grow(20, 3);
  auto fast = plan_fast_sync(chain, /*pivot_offset=*/5);
  ASSERT_TRUE(fast.ok()) << fast.error().to_string();
  EXPECT_EQ(fast->pivot_height, chain.height() - 5);
  // Only post-pivot transactions are replayed.
  EXPECT_EQ(fast->txs_replayed, 5u * 3u);
  EXPECT_GT(fast->receipt_bytes, 0u);
  EXPECT_GT(fast->state_nodes, 0u);

  SyncPlan full = plan_full_sync(chain);
  EXPECT_LT(fast->txs_replayed, full.txs_replayed);
}

TEST_F(FastSyncTest, ExecuteFastSyncReconstructsVerifiedState) {
  grow(15, 4);
  auto state = execute_fast_sync(chain, /*pivot_offset=*/5);
  ASSERT_TRUE(state.ok()) << state.error().to_string();
  const Block* pivot = chain.at_height(chain.height() - 5);
  EXPECT_EQ(state->root(), pivot->header.state_root);
  // The reconstructed state answers balance queries correctly.
  auto expected = chain.state_db().get(pivot->header.state_root);
  ASSERT_TRUE(expected.has_value());
  for (const auto& k : keys)
    EXPECT_EQ(state->balance_of(k.account_id()),
              expected->balance_of(k.account_id()));
}

TEST_F(FastSyncTest, FastSyncFailsOnUtxoChain) {
  auto keys2 = make_keys(2);
  Blockchain utxo_chain(cheap_pow_utxo(), fund_all(keys2, 1000));
  EXPECT_FALSE(plan_fast_sync(utxo_chain).ok());
}

TEST_F(FastSyncTest, PrunedPivotDetected) {
  grow(12, 2);
  chain.prune_states(2);  // keep only the last 3 states
  auto fast = plan_fast_sync(chain, /*pivot_offset=*/8);
  ASSERT_FALSE(fast.ok());
  EXPECT_EQ(fast.error().code, "pruned-pivot");
}

TEST_F(FastSyncTest, StatePruningShrinksHistory) {
  grow(15, 3);
  const auto before = chain.storage();
  const std::size_t erased = chain.prune_states(3);
  EXPECT_GT(erased, 0u);
  const auto after = chain.storage();
  EXPECT_LT(after.state_history, before.state_history);
  // The current state survives pruning.
  EXPECT_GT(chain.world_state().account_count(), 0u);
}

}  // namespace
}  // namespace dlt::chain
