// End-to-end cluster integration: full simulated networks of each system
// processing payments (paper §III, §IV, §VI).
#include <gtest/gtest.h>

#include "core/chain_cluster.hpp"
#include "core/lattice_cluster.hpp"

namespace dlt::core {
namespace {

ChainClusterConfig small_pow_utxo() {
  ChainClusterConfig cfg;
  cfg.params = chain::bitcoin_like();
  cfg.params.verify_pow = false;  // statistical mining race (DESIGN.md)
  cfg.params.initial_difficulty = 1e6;
  cfg.params.block_interval = 30.0;
  cfg.params.retarget_window = 0;
  cfg.node_count = 5;
  cfg.miner_count = 3;
  cfg.total_hashrate = 1e6 / 30.0;  // ~one block per 30 s
  cfg.account_count = 10;
  cfg.link = net::LinkParams{0.05, 0.01, 1e7};
  return cfg;
}

TEST(ChainClusterPow, MinesAndConverges) {
  ChainCluster cluster(small_pow_utxo());
  cluster.start();
  cluster.run_for(1200.0);

  RunMetrics m = cluster.metrics();
  EXPECT_GT(m.blocks_produced, 10u);
  EXPECT_GT(cluster.node(0).chain().height(), 10u);
  // Let in-flight blocks settle, then all replicas agree.
  cluster.run_for(60.0);
  EXPECT_TRUE(cluster.converged());
}

TEST(ChainClusterPow, PaymentsIncludedAndConfirmed) {
  ChainCluster cluster(small_pow_utxo());
  cluster.start();

  Rng wl_rng(7);
  WorkloadConfig wl;
  wl.account_count = 10;
  wl.tx_rate = 0.2;
  wl.duration = 900.0;
  cluster.schedule_workload(generate_payments(wl, wl_rng));
  cluster.run_for(3000.0);

  RunMetrics m = cluster.metrics();
  EXPECT_GT(m.submitted, 50u);
  EXPECT_GT(m.included, 0u);
  EXPECT_GT(m.confirmed, 0u);
  EXPECT_LE(m.confirmed, m.included);
  EXPECT_GT(m.inclusion_latency.count(), 0u);
  EXPECT_GT(m.confirmation_latency.count(), 0u);
  // Confirmation takes ~6 more blocks than inclusion (paper §IV-A).
  EXPECT_GT(m.confirmation_latency.median(),
            m.inclusion_latency.median());
}

TEST(ChainClusterPow, ForksHappenUnderDelay) {
  ChainClusterConfig cfg = small_pow_utxo();
  cfg.params.block_interval = 5.0;  // fast blocks
  cfg.total_hashrate = 1e6 / 5.0;
  cfg.link = net::LinkParams{2.0, 0.5, 1e7};  // severe propagation delay
  cfg.seed = 11;
  ChainCluster cluster(cfg);
  cluster.start();
  cluster.run_for(2000.0);

  RunMetrics m = cluster.metrics();
  // With delay ~ 40% of the interval, forks are common (paper Fig. 4).
  EXPECT_GT(m.orphaned_blocks + m.reorgs, 0u);
}

TEST(ChainClusterPow, TraceEventCountsMatchRunMetrics) {
  ChainClusterConfig cfg = small_pow_utxo();
  cfg.params.block_interval = 5.0;  // fast blocks under heavy delay
  cfg.total_hashrate = 1e6 / 5.0;
  cfg.link = net::LinkParams{2.0, 0.5, 1e7};
  cfg.seed = 11;
  cfg.obs.trace_capacity = 1u << 20;
  ChainCluster cluster(cfg);
  cluster.start();
  cluster.run_for(2000.0);

  // The structured trace and the aggregate RunMetrics are two views of
  // the same run; the tentpole contract is that they never disagree.
  RunMetrics m = cluster.metrics();
  const obs::Tracer& tracer = cluster.tracer();
  ASSERT_EQ(tracer.dropped(), 0u);  // ring large enough to retain all
  EXPECT_GT(m.reorgs, 0u);
  // RunMetrics fork stats are node 0's view; filter the cluster-wide
  // trace down to node 0's reorg events.
  std::uint64_t node0_reorgs = 0;
  for (const obs::TraceEvent& ev : tracer.events())
    if (ev.type == obs::EventType::kReorgApplied && ev.node == 0)
      ++node0_reorgs;
  EXPECT_EQ(node0_reorgs, m.reorgs);
  // blocks_produced sums every miner, as does the kBlockMined stream.
  EXPECT_EQ(tracer.count_of(obs::EventType::kBlockMined),
            m.blocks_produced);
  // Registry counters, fed by the same probes, agree with the trace.
  const obs::Counter* reorgs =
      cluster.metrics_registry().find_counter("chain.reorgs");
  ASSERT_NE(reorgs, nullptr);
  EXPECT_EQ(reorgs->value(),
            tracer.count_of(obs::EventType::kReorgApplied));
}

TEST(ChainClusterAccount, EthereumStyleFlow) {
  ChainClusterConfig cfg;
  cfg.params = chain::ethereum_like();
  cfg.params.verify_pow = false;
  cfg.params.initial_difficulty = 1e5;
  cfg.params.retarget_window = 0;  // keep the interval fixed for the test
  cfg.node_count = 4;
  cfg.miner_count = 2;
  cfg.total_hashrate = 1e5 / 15.0;  // ~15 s blocks
  cfg.account_count = 8;
  ChainCluster cluster(cfg);
  cluster.start();

  Rng wl_rng(3);
  WorkloadConfig wl;
  wl.account_count = 8;
  wl.tx_rate = 1.0;
  wl.duration = 300.0;
  cluster.schedule_workload(generate_payments(wl, wl_rng));
  cluster.run_for(900.0);

  RunMetrics m = cluster.metrics();
  EXPECT_GT(m.included, 100u);
  EXPECT_GT(m.confirmed, 0u);
  cluster.run_for(60.0);
  EXPECT_TRUE(cluster.converged());
  // World state is consistent: supply = genesis + rewards.
  const auto& chain0 = cluster.node(0).chain();
  const chain::Amount supply = chain0.world_state().total_supply();
  const chain::Amount expected =
      8ull * 10'000'000ull +
      static_cast<chain::Amount>(chain0.height()) *
          chain0.params().block_reward;
  EXPECT_EQ(supply, expected);
}

TEST(ChainClusterPos, ProposesAndFinalizes) {
  ChainClusterConfig cfg;
  cfg.params = chain::pos_like();
  cfg.params.epoch_length = 10;
  cfg.node_count = 4;
  cfg.validator_count = 4;
  cfg.account_count = 6;
  ChainCluster cluster(cfg);
  cluster.start();
  // 150 slots (~15 epochs); stop between slots so the last proposal has
  // fully propagated when we compare replicas.
  cluster.run_for(602.0);

  // Blocks were proposed at ~4 s cadence (paper §VI-A: PoS at 4 s).
  const auto& chain0 = cluster.node(0).chain();
  EXPECT_GT(chain0.height(), 100u);
  // Casper votes finalized checkpoints; fork choice is locked below them.
  EXPECT_GT(chain0.finalized_height(), 0u);
  EXPECT_TRUE(cluster.converged());
}

TEST(LatticeCluster, FundsAndSettles) {
  LatticeClusterConfig cfg;
  cfg.node_count = 4;
  cfg.representative_count = 2;
  cfg.account_count = 12;
  cfg.params.work_bits = 2;
  LatticeCluster cluster(cfg);
  cluster.fund_accounts();

  // Every account funded and settled (Fig. 3 flow at scale).
  for (std::size_t i = 0; i < cfg.account_count; ++i) {
    EXPECT_EQ(cluster.node(0).ledger().balance_of(
                  cluster.account(i).account_id()),
              cfg.initial_balance)
        << i;
  }
  EXPECT_TRUE(cluster.node(0).ledger().pending().empty());
  EXPECT_TRUE(cluster.converged());
}

TEST(LatticeCluster, PaymentsFlowAndConfirm) {
  LatticeClusterConfig cfg;
  cfg.node_count = 4;
  cfg.representative_count = 2;
  cfg.account_count = 10;
  cfg.params.work_bits = 2;
  LatticeCluster cluster(cfg);
  cluster.fund_accounts();

  Rng wl_rng(5);
  WorkloadConfig wl;
  wl.account_count = 10;
  wl.tx_rate = 2.0;
  wl.duration = 60.0;
  wl.max_amount = 1000;
  cluster.schedule_workload(generate_payments(wl, wl_rng));
  cluster.run_for(120.0);

  RunMetrics m = cluster.metrics();
  EXPECT_GT(m.submitted, 60u);
  EXPECT_GT(m.confirmed, 0u);
  // No protocol-level block interval: confirmation is sub-second-to-
  // seconds, bounded by votes, not by 10-minute blocks (paper §VI-B).
  EXPECT_LT(m.confirmation_latency.median(), 10.0);
  EXPECT_TRUE(cluster.converged());
  for (std::size_t n = 0; n < cluster.node_count(); ++n)
    EXPECT_TRUE(cluster.node(n).ledger().conserves_value());
}

TEST(LatticeCluster, DeterministicReplay) {
  auto run_once = [] {
    LatticeClusterConfig cfg;
    cfg.node_count = 3;
    cfg.account_count = 6;
    cfg.params.work_bits = 2;
    cfg.seed = 99;
    LatticeCluster cluster(cfg);
    cluster.fund_accounts();
    Rng wl_rng(42);
    WorkloadConfig wl;
    wl.account_count = 6;
    wl.tx_rate = 1.0;
    wl.duration = 30.0;
    cluster.schedule_workload(generate_payments(wl, wl_rng));
    cluster.run_for(60.0);
    std::vector<lattice::BlockHash> heads;
    for (std::size_t i = 0; i < 6; ++i) {
      auto h = cluster.node(0).ledger().head_of(
          cluster.account(i).account_id());
      heads.push_back(h.value_or(lattice::BlockHash{}));
    }
    return heads;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace dlt::core
