// Transaction models: UTXO validation paths and account/gas semantics
// (paper §II-A, §VI-A).
#include <gtest/gtest.h>

#include "chain/account_tx.hpp"
#include "chain/transaction.hpp"
#include "chain/utxo.hpp"
#include "chain_test_util.hpp"

namespace dlt::chain {
namespace {

using testutil::make_keys;

class UtxoFixture : public ::testing::Test {
 protected:
  UtxoFixture() : keys(make_keys(3)), rng(1) {
    // Seed the set with a mint paying key0 1000 and key1 500.
    UtxoTransaction mint;
    mint.outputs.push_back(TxOut{1000, keys[0].account_id()});
    mint.outputs.push_back(TxOut{500, keys[1].account_id()});
    mint_id = mint.id();
    utxo.apply_transaction(mint);
  }

  UtxoTransaction spend(std::size_t key_index, const Outpoint& op,
                        Amount to_amount, Amount change,
                        std::size_t to_index = 2) {
    UtxoTransaction tx;
    tx.inputs.push_back(TxIn{op, 0, {}});
    tx.outputs.push_back(TxOut{to_amount, keys[to_index].account_id()});
    if (change > 0)
      tx.outputs.push_back(TxOut{change, keys[key_index].account_id()});
    tx.sign_all({keys[key_index]}, rng);
    return tx;
  }

  std::vector<crypto::KeyPair> keys;
  Rng rng;
  UtxoSet utxo;
  TxId mint_id;
};

TEST_F(UtxoFixture, ValidSpendReportsFee) {
  auto tx = spend(0, Outpoint{mint_id, 0}, 900, 90);
  auto fee = utxo.check_transaction(tx, 1);
  ASSERT_TRUE(fee.ok()) << fee.error().to_string();
  EXPECT_EQ(*fee, 10u);  // 1000 in, 990 out
}

TEST_F(UtxoFixture, ApplyAndRevertRestoreState) {
  auto tx = spend(0, Outpoint{mint_id, 0}, 900, 100);
  const Amount before = utxo.total_value();
  const std::size_t size_before = utxo.size();

  TxUndo undo = utxo.apply_transaction(tx);
  EXPECT_FALSE(utxo.contains(Outpoint{mint_id, 0}));
  EXPECT_TRUE(utxo.contains(Outpoint{tx.id(), 0}));
  EXPECT_EQ(utxo.total_value(), before);  // zero-fee conservation

  utxo.revert_transaction(undo);
  EXPECT_TRUE(utxo.contains(Outpoint{mint_id, 0}));
  EXPECT_FALSE(utxo.contains(Outpoint{tx.id(), 0}));
  EXPECT_EQ(utxo.size(), size_before);
  EXPECT_EQ(utxo.total_value(), before);
}

TEST_F(UtxoFixture, MissingInputRejected) {
  Outpoint bogus{mint_id, 9};
  auto tx = spend(0, bogus, 10, 0);
  auto fee = utxo.check_transaction(tx, 1);
  ASSERT_FALSE(fee.ok());
  EXPECT_EQ(fee.error().code, "missing-utxo");
}

TEST_F(UtxoFixture, WrongOwnerRejected) {
  // key1 tries to spend key0's output.
  auto tx = spend(1, Outpoint{mint_id, 0}, 10, 0);
  auto fee = utxo.check_transaction(tx, 1);
  ASSERT_FALSE(fee.ok());
  EXPECT_EQ(fee.error().code, "wrong-owner");
}

TEST_F(UtxoFixture, BadSignatureRejected) {
  auto tx = spend(0, Outpoint{mint_id, 0}, 10, 0);
  tx.inputs[0].signature.s ^= 1;
  auto fee = utxo.check_transaction(tx, 1);
  ASSERT_FALSE(fee.ok());
  EXPECT_EQ(fee.error().code, "bad-signature");
}

TEST_F(UtxoFixture, SignatureCoversOutputs) {
  // Tampering with outputs after signing invalidates the signature.
  auto tx = spend(0, Outpoint{mint_id, 0}, 900, 100);
  tx.outputs[0].value = 999;
  tx.outputs[1].value = 1;
  tx.invalidate_digests();  // direct field writes bypass the digest memo
  auto fee = utxo.check_transaction(tx, 1);
  ASSERT_FALSE(fee.ok());
  EXPECT_EQ(fee.error().code, "bad-signature");
}

TEST_F(UtxoFixture, InflationRejected) {
  auto tx = spend(0, Outpoint{mint_id, 0}, 2000, 0);
  auto fee = utxo.check_transaction(tx, 1);
  ASSERT_FALSE(fee.ok());
  EXPECT_EQ(fee.error().code, "inflation");
}

TEST_F(UtxoFixture, InternalDoubleSpendRejected) {
  UtxoTransaction tx;
  tx.inputs.push_back(TxIn{Outpoint{mint_id, 0}, 0, {}});
  tx.inputs.push_back(TxIn{Outpoint{mint_id, 0}, 0, {}});
  tx.outputs.push_back(TxOut{100, keys[2].account_id()});
  tx.sign_all({keys[0], keys[0]}, rng);
  auto fee = utxo.check_transaction(tx, 1);
  ASSERT_FALSE(fee.ok());
  EXPECT_EQ(fee.error().code, "double-spend");
}

TEST_F(UtxoFixture, LockHeightEnforced) {
  auto tx = spend(0, Outpoint{mint_id, 0}, 900, 100);
  tx.lock_height = 100;
  tx.sign_all({keys[0]}, rng);  // re-sign after mutation
  EXPECT_FALSE(utxo.check_transaction(tx, 50).ok());
  EXPECT_TRUE(utxo.check_transaction(tx, 100).ok());
}

TEST_F(UtxoFixture, EmptyOutputsRejected) {
  UtxoTransaction tx;
  tx.inputs.push_back(TxIn{Outpoint{mint_id, 0}, 0, {}});
  tx.sign_all({keys[0]}, rng);
  EXPECT_EQ(utxo.check_transaction(tx, 1).error().code, "no-outputs");
}

TEST_F(UtxoFixture, FindOwnedScansBalance) {
  auto coins = utxo.find_owned(keys[1].account_id());
  ASSERT_EQ(coins.size(), 1u);
  EXPECT_EQ(coins[0].second.value, 500u);
}

TEST(UtxoTransaction, CoinbaseShape) {
  auto cb = UtxoTransaction::coinbase(
      crypto::KeyPair::from_seed(1).account_id(), 50, 7);
  EXPECT_TRUE(cb.is_coinbase());
  EXPECT_EQ(cb.total_output(), 50u);
  // Height differentiates otherwise-identical coinbases (BIP-34).
  auto cb2 = UtxoTransaction::coinbase(
      crypto::KeyPair::from_seed(1).account_id(), 50, 8);
  EXPECT_NE(cb.id(), cb2.id());
}

TEST(UtxoTransaction, IdCommitsToContent) {
  auto keys = make_keys(2);
  Rng rng(2);
  UtxoTransaction tx;
  tx.inputs.push_back(TxIn{Outpoint{{}, 0}, 0, {}});
  tx.outputs.push_back(TxOut{5, keys[1].account_id()});
  tx.sign_all({keys[0]}, rng);
  const TxId before = tx.id();
  tx.outputs[0].value = 6;
  tx.invalidate_digests();
  EXPECT_NE(before, tx.id());
}

// --------------------------------------------------------------------------
// Account model

TEST(AccountTx, SignatureBindsSender) {
  Rng rng(3);
  auto key = crypto::KeyPair::from_seed(5);
  AccountTransaction tx;
  tx.to = crypto::KeyPair::from_seed(6).account_id();
  tx.value = 100;
  tx.sign(key, rng);
  EXPECT_TRUE(tx.verify_signature());
  EXPECT_EQ(tx.from, key.account_id());

  tx.value = 200;  // tamper
  tx.invalidate_digests();
  EXPECT_FALSE(tx.verify_signature());
}

TEST(AccountTx, ForeignPubkeyRejected) {
  Rng rng(4);
  auto key = crypto::KeyPair::from_seed(5);
  AccountTransaction tx;
  tx.to = crypto::KeyPair::from_seed(6).account_id();
  tx.sign(key, rng);
  tx.from = crypto::KeyPair::from_seed(7).account_id();  // claim other sender
  EXPECT_FALSE(tx.verify_signature());
}

TEST(AccountTx, IntrinsicGasSchedule) {
  AccountTransaction tx;
  tx.to = crypto::KeyPair::from_seed(1).account_id();
  EXPECT_EQ(tx.intrinsic_gas(), 21'000u);  // plain transfer

  tx.data_size = 100;
  EXPECT_EQ(tx.intrinsic_gas(), 21'000u + 100 * 68);

  AccountTransaction create;  // zero `to` => contract creation
  create.data_size = 10;
  EXPECT_TRUE(create.is_contract_creation());
  EXPECT_EQ(create.intrinsic_gas(), 21'000u + 10 * 68 + 32'000u);
}

TEST(AccountTx, MaxFeeAndSize) {
  AccountTransaction tx;
  tx.gas_limit = 50'000;
  tx.gas_price = 3;
  EXPECT_EQ(tx.max_fee(), 150'000u);
  tx.data_size = 64;
  EXPECT_EQ(tx.serialized_size(), 32 + 32 + 32 + 4 + 8 + 16 + 64u);
}

}  // namespace
}  // namespace dlt::chain
