// Tests for the crypto hot-path layer: digest memoization, the shared
// signature-verification cache, SHA-256/PoW midstates, and the
// batch-verification thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "chain/account_tx.hpp"
#include "chain/block.hpp"
#include "chain/transaction.hpp"
#include "crypto/digest_cache.hpp"
#include "crypto/hashcash.hpp"
#include "crypto/keys.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sigcache.hpp"
#include "lattice/block.hpp"
#include "support/thread_pool.hpp"

namespace dlt {
namespace {

// --------------------------------------------------------------------------
// SHA-256 midstate save/restore.

TEST(Sha256Midstate, RoundTripMatchesDirectDigest) {
  // Split points straddle the 64-byte block boundary to exercise both a
  // partially-filled buffer and a block-aligned midstate.
  const std::string msg(200, 'x');
  for (std::size_t split : {0u, 1u, 63u, 64u, 65u, 128u, 200u}) {
    crypto::Sha256 ctx;
    ctx.update(as_bytes(std::string_view(msg).substr(0, split)));
    const crypto::Sha256Midstate mid = ctx.midstate();

    crypto::Sha256 resumed = crypto::Sha256::from_midstate(mid);
    resumed.update(as_bytes(std::string_view(msg).substr(split)));

    EXPECT_EQ(resumed.finalize(), crypto::Sha256::digest(as_bytes(msg)))
        << "split at " << split;
  }
}

TEST(Sha256Midstate, ReusableForManySuffixes) {
  crypto::Sha256 ctx;
  ctx.update(as_bytes("common prefix "));
  const crypto::Sha256Midstate mid = ctx.midstate();
  for (const char* suffix : {"a", "bb", "ccc"}) {
    crypto::Sha256 resumed = crypto::Sha256::from_midstate(mid);
    resumed.update(as_bytes(suffix));
    EXPECT_EQ(resumed.finalize(),
              crypto::Sha256::digest(
                  as_bytes(std::string("common prefix ") + suffix)));
  }
}

TEST(PowMidstate, DigestMatchesPowHash) {
  const std::string payload = "block header bytes for mining";
  const crypto::PowMidstate mid(as_bytes(payload));
  for (std::uint64_t nonce :
       {0ull, 1ull, 255ull, 0x1234ull, 0xffffffffffffffffull}) {
    EXPECT_EQ(mid.digest(nonce), crypto::pow_hash(as_bytes(payload), nonce))
        << "nonce " << nonce;
  }
}

// --------------------------------------------------------------------------
// Digest memoization + invalidation.

TEST(DigestMemo, UtxoIdInvalidatedByExplicitCall) {
  Rng rng(1);
  auto key = crypto::KeyPair::from_seed(1);
  chain::UtxoTransaction tx;
  tx.inputs.push_back(
      chain::TxIn{chain::Outpoint{{}, 0}, key.public_key(), {}});
  tx.outputs.push_back(chain::TxOut{5, key.account_id()});
  tx.sign_all({key}, rng);

  const chain::TxId id1 = tx.id();
  EXPECT_EQ(tx.id(), id1);  // stable across repeated calls

  tx.outputs[0].value = 6;
  tx.invalidate_digests();
  EXPECT_NE(tx.id(), id1);  // recomputed over the new content
}

TEST(DigestMemo, SignAllInvalidatesIdButNotSighash) {
  Rng rng(2);
  auto key = crypto::KeyPair::from_seed(2);
  chain::UtxoTransaction tx;
  tx.inputs.push_back(
      chain::TxIn{chain::Outpoint{{}, 0}, key.public_key(), {}});
  tx.outputs.push_back(chain::TxOut{7, key.account_id()});

  const Hash256 sighash_before = tx.sighash();
  const chain::TxId id_before = tx.id();
  tx.sign_all({key}, rng);
  // Signatures are excluded from the sighash but included in the id.
  EXPECT_EQ(tx.sighash(), sighash_before);
  EXPECT_NE(tx.id(), id_before);
}

TEST(DigestMemo, AccountTxSignRefreshesDigests) {
  Rng rng(3);
  auto key = crypto::KeyPair::from_seed(3);
  chain::AccountTransaction tx;
  tx.to = crypto::KeyPair::from_seed(4).account_id();
  tx.value = 100;
  const Hash256 unsigned_id = tx.id();
  tx.sign(key, rng);  // sets from/pubkey/signature; must self-invalidate
  EXPECT_NE(tx.id(), unsigned_id);
  EXPECT_TRUE(tx.verify_signature());

  tx.nonce = 9;
  tx.invalidate_digests();
  EXPECT_FALSE(tx.verify_signature());  // sighash changed under the sig
}

TEST(DigestMemo, CopyRetainsCachedDigest) {
  lattice::LatticeBlock b;
  b.type = lattice::BlockType::kSend;
  b.account = crypto::KeyPair::from_seed(5).account_id();
  b.balance = 500;
  const Hash256 h = b.hash();

  lattice::LatticeBlock copy = b;  // content is byte-identical
  EXPECT_EQ(copy.hash(), h);

  copy.balance = 501;
  copy.invalidate_digests();
  EXPECT_NE(copy.hash(), h);
  EXPECT_EQ(b.hash(), h);  // original memo untouched
}

TEST(DigestMemo, BlockHeaderHashAndPowDigest) {
  chain::BlockHeader h;
  h.height = 3;
  h.timestamp = 1.5;
  const Hash256 hash1 = h.hash();

  // The nonce is outside pow_payload() but inside hash(): sweeping it must
  // change pow_digest() (midstate path) without disturbing pow_payload.
  const Hash256 d0 = h.pow_digest();
  h.nonce = 1;
  EXPECT_NE(h.pow_digest(), d0);
  EXPECT_EQ(h.pow_digest(), crypto::pow_hash(h.pow_payload(), h.nonce));

  h.nonce = 0;
  h.invalidate_digests();
  EXPECT_EQ(h.hash(), hash1);

  h.height = 4;
  h.invalidate_digests();
  EXPECT_NE(h.hash(), hash1);
}

TEST(DigestMemo, GlobalKillSwitchForcesRecompute) {
  chain::AccountTransaction tx;
  tx.value = 1;
  (void)tx.id();  // memoize

  crypto::DigestCache::set_enabled(false);
  tx.value = 2;  // no invalidate: with caching off the change must show
  const Hash256 fresh = tx.id();
  crypto::DigestCache::set_enabled(true);

  tx.invalidate_digests();
  EXPECT_EQ(tx.id(), fresh);
}

// --------------------------------------------------------------------------
// Signature cache.

TEST(SigCache, TamperedSignatureNeverHitsEvenWhenWarm) {
  Rng rng(7);
  auto key = crypto::KeyPair::from_seed(7);
  const Hash256 sighash = crypto::Sha256::digest(as_bytes("spend 100"));
  const crypto::Signature sig = key.sign(sighash.bytes(), rng);

  crypto::SignatureCache cache;
  ASSERT_TRUE(
      crypto::verify_cached(&cache, key.public_key(), sighash, sig));
  ASSERT_TRUE(
      crypto::verify_cached(&cache, key.public_key(), sighash, sig));
  EXPECT_EQ(cache.stats().hits, 1u);

  // Every tampered variant must miss the cache AND fail real verification.
  crypto::Signature bad = sig;
  bad.s ^= 1;
  EXPECT_FALSE(
      crypto::verify_cached(&cache, key.public_key(), sighash, bad));
  Hash256 other = crypto::Sha256::digest(as_bytes("spend 999"));
  EXPECT_FALSE(crypto::verify_cached(&cache, key.public_key(), other, sig));
  EXPECT_FALSE(crypto::verify_cached(
      &cache, crypto::KeyPair::from_seed(8).public_key(), sighash, sig));

  // Failures are never inserted: the cache still holds one entry.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(SigCache, NullCacheIsPlainVerification) {
  Rng rng(9);
  auto key = crypto::KeyPair::from_seed(9);
  const Hash256 sighash = crypto::Sha256::digest(as_bytes("msg"));
  const crypto::Signature sig = key.sign(sighash.bytes(), rng);
  EXPECT_TRUE(
      crypto::verify_cached(nullptr, key.public_key(), sighash, sig));
  crypto::Signature bad = sig;
  bad.r ^= 1;
  EXPECT_FALSE(
      crypto::verify_cached(nullptr, key.public_key(), sighash, bad));
}

TEST(SigCache, PeekDoesNotTouchStats) {
  Rng rng(10);
  auto key = crypto::KeyPair::from_seed(10);
  const Hash256 sighash = crypto::Sha256::digest(as_bytes("peek"));
  const crypto::Signature sig = key.sign(sighash.bytes(), rng);

  crypto::SignatureCache cache;
  EXPECT_FALSE(cache.peek(key.public_key(), sighash, sig));
  cache.insert(key.public_key(), sighash, sig);
  EXPECT_TRUE(cache.peek(key.public_key(), sighash, sig));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(SigCache, BoundedWithWholesaleReset) {
  crypto::SignatureCache cache(/*max_entries=*/4);
  Rng rng(11);
  auto key = crypto::KeyPair::from_seed(11);
  for (int i = 0; i < 10; ++i) {
    std::string msg = "m";
    msg += std::to_string(i);
    const Hash256 sighash = crypto::Sha256::digest(as_bytes(msg));
    cache.insert(key.public_key(), sighash, key.sign(sighash.bytes(), rng));
    EXPECT_LE(cache.size(), 4u);
  }
  EXPECT_GE(cache.stats().resets, 1u);
  EXPECT_EQ(cache.stats().insertions, 10u);
}

// --------------------------------------------------------------------------
// Thread pool.

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 4u}) {
    support::ThreadPool pool(threads);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> counts(kN);
    pool.parallel_for(kN, [&](std::size_t i) {
      counts[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(counts[i].load(), 1) << "threads=" << threads << " i=" << i;
  }
}

TEST(ThreadPool, HandlesEmptyAndRepeatedBatches) {
  support::ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round)
    pool.parallel_for(10, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  EXPECT_EQ(total.load(), 500);
}

}  // namespace
}  // namespace dlt
