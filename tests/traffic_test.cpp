// Differential + statistical harness for the open-loop traffic engine and
// admission control (ISSUE 10).
//
// Statistical half: the arrival processes are pinned by fixed-seed goldens
// (the per-arrival draw schedule is part of the determinism contract) and
// checked against their analytic shapes — Poisson interarrival moments,
// Zipf rank-frequency, the MMPP mean rate, the diurnal phase split.
//
// Differential half: for every ledger family, one over-saturation traffic
// run is replayed across the full determinism matrix
//   DLT_VERIFY_THREADS ∈ {0, 2, 4} × DLT_PARALLEL_STATE ∈ {0, 1}
//     × DLT_STORAGE ∈ {memory, disk}
// and must produce byte-identical traces, equal RunMetrics (including the
// admission tallies), and byte-identical filtered registry JSON. The
// admission counters must reconcile exactly in every configuration:
//   submitted == admitted + rejected + evicted + backpressured.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/chain_cluster.hpp"
#include "core/lattice_cluster.hpp"
#include "core/tangle_cluster.hpp"
#include "core/traffic.hpp"

namespace dlt {
namespace {

// ------------------------------------------------ arrival-process goldens

std::vector<core::TrafficEvent> drain(core::TrafficSource& src) {
  std::vector<core::TrafficEvent> events;
  core::TrafficEvent ev;
  while (src.next(ev)) events.push_back(ev);
  return events;
}

TEST(TrafficSource, FixedSeedGoldenStream) {
  // Default config (poisson, rate 10, duration 100, seed 0x7ea7f1c) over
  // 16 accounts: the first events are pinned exactly. Any change to the
  // per-arrival draw schedule — order, count, or distribution code —
  // trips this golden and must be treated as a determinism break.
  core::TrafficConfig tc;
  core::TrafficSource src(tc, 16);
  const auto events = drain(src);
  ASSERT_GE(events.size(), 4u);

  EXPECT_DOUBLE_EQ(events[0].time, 0.084151813167523473);
  EXPECT_EQ(events[0].from, 6u);
  EXPECT_EQ(events[0].to, 7u);
  EXPECT_EQ(events[0].amount, 36u);
  EXPECT_EQ(events[0].fee_class, 2u);

  EXPECT_DOUBLE_EQ(events[1].time, 0.11994892615636839);
  EXPECT_EQ(events[1].from, 1u);
  EXPECT_EQ(events[1].to, 3u);
  EXPECT_EQ(events[1].amount, 16u);
  EXPECT_EQ(events[1].fee_class, 1u);

  EXPECT_DOUBLE_EQ(events[2].time, 0.16841025579470523);
  EXPECT_EQ(events[2].from, 9u);
  EXPECT_DOUBLE_EQ(events[3].time, 0.35101565584541078);
  EXPECT_EQ(events[3].to, 10u);

  // Identical config + seed → identical stream, field for field.
  core::TrafficSource again(tc, 16);
  const auto replay = drain(again);
  ASSERT_EQ(replay.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(replay[i].time, events[i].time);
    EXPECT_EQ(replay[i].from, events[i].from);
    EXPECT_EQ(replay[i].to, events[i].to);
    EXPECT_EQ(replay[i].amount, events[i].amount);
    EXPECT_EQ(replay[i].fee_class, events[i].fee_class);
  }
}

TEST(TrafficSource, PoissonInterarrivalMoments) {
  core::TrafficConfig tc;
  tc.rate = 50.0;
  tc.duration = 200.0;  // ~10k arrivals
  core::TrafficSource src(tc, 16);
  const auto events = drain(src);
  ASSERT_GT(events.size(), 9000u);

  double prev = 0.0, sum = 0.0;
  std::vector<double> gaps;
  for (const core::TrafficEvent& ev : events) {
    gaps.push_back(ev.time - prev);
    sum += gaps.back();
    prev = ev.time;
  }
  const double mean = sum / static_cast<double>(gaps.size());
  double var = 0.0;
  for (double g : gaps) var += (g - mean) * (g - mean);
  var /= static_cast<double>(gaps.size());

  // Exponential(1/50): mean 0.02, variance 0.0004.
  EXPECT_NEAR(mean, 0.02, 0.02 * 0.05);
  EXPECT_NEAR(var, 0.0004, 0.0004 * 0.15);

  // Arrival times are strictly increasing and inside the window.
  EXPECT_LT(events.back().time, tc.duration);
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_GT(events[i].time, events[i - 1].time);
}

TEST(TrafficSource, ZipfSenderRankFrequency) {
  core::TrafficConfig tc;
  tc.rate = 100.0;
  tc.duration = 200.0;  // ~20k draws
  tc.zipf_s = 1.0;
  core::TrafficSource src(tc, 16);
  std::vector<std::uint64_t> freq(16, 0);
  core::TrafficEvent ev;
  std::uint64_t n = 0;
  while (src.next(ev)) {
    ASSERT_LT(ev.from, 16u);
    ++freq[ev.from];
    ++n;
  }
  ASSERT_GT(n, 15000u);

  // Zipf s=1: p(rank 0)/p(rank 1) = 2 exactly; sampling noise at this
  // volume keeps the ratio well inside [1.7, 2.3].
  const double ratio = static_cast<double>(freq[0]) /
                       static_cast<double>(std::max<std::uint64_t>(freq[1], 1));
  EXPECT_GT(ratio, 1.7);
  EXPECT_LT(ratio, 2.3);
  // Monotone head, steep tail (p0/p8 = 9).
  EXPECT_GT(freq[0], freq[1]);
  EXPECT_GT(freq[1], freq[2]);
  EXPECT_GT(freq[2], freq[4]);
  EXPECT_GT(freq[0], 4 * freq[8]);
}

TEST(TrafficSource, BurstyMeanRateMatchesAnalytic) {
  core::TrafficConfig tc;
  tc.process = core::ArrivalProcess::kBursty;
  tc.rate = 20.0;
  tc.duration = 600.0;  // ~50 ON/OFF cycles
  core::TrafficSource src(tc, 16);
  const auto events = drain(src);

  // MMPP-2 stationary mean: r·(mult·on + off_mult·off)/(on + off)
  //   = 20·(8·2 + 0.25·10)/12 = 30.83 tx/s → 18500 over the window.
  const double analytic = tc.rate *
                          (tc.burst_multiplier * tc.burst_on_mean +
                           tc.off_multiplier * tc.burst_off_mean) /
                          (tc.burst_on_mean + tc.burst_off_mean) *
                          tc.duration;
  const double got = static_cast<double>(events.size());
  EXPECT_GT(got, analytic * 0.70);
  EXPECT_LT(got, analytic * 1.30);

  // The process genuinely modulates: with ON dwells ~2 s at 160 tx/s and
  // OFF dwells ~10 s at 5 tx/s, 1-second bins must span a wide range.
  std::vector<std::uint64_t> bins(600, 0);
  for (const core::TrafficEvent& ev : events)
    ++bins[static_cast<std::size_t>(ev.time)];
  std::uint64_t peak = 0, quiet = ~0ULL;
  for (std::uint64_t b : bins) {
    peak = std::max(peak, b);
    quiet = std::min(quiet, b);
  }
  EXPECT_GT(peak, 50u);  // a full ON second runs near 160
  EXPECT_LT(quiet, 5u);  // a full OFF second near 5
}

TEST(TrafficSource, DiurnalPhaseSplit) {
  core::TrafficConfig tc;
  tc.process = core::ArrivalProcess::kDiurnal;
  tc.rate = 30.0;
  tc.duration = 600.0;  // 10 periods of 60 s
  core::TrafficSource src(tc, 16);
  const auto events = drain(src);
  ASSERT_GT(events.size(), 10000u);

  // sin > 0 on the first half-period: with amplitude 0.8 the analytic
  // split is (1 + 1.6/π)/(1 − 1.6/π) ≈ 3.07 : 1.
  std::uint64_t rising = 0, falling = 0;
  for (const core::TrafficEvent& ev : events) {
    const double phase = ev.time - 60.0 * std::floor(ev.time / 60.0);
    (phase < 30.0 ? rising : falling) += 1;
  }
  EXPECT_GT(rising, falling * 5 / 2);
}

TEST(TrafficSource, SenderNeverEqualsReceiver) {
  core::TrafficConfig tc;
  tc.rate = 100.0;
  tc.duration = 50.0;
  tc.hot_receiver_fraction = 0.5;  // stress the hot-set redraw loop
  tc.hot_receiver_count = 2;
  core::TrafficSource src(tc, 8);
  core::TrafficEvent ev;
  while (src.next(ev)) {
    EXPECT_NE(ev.from, ev.to);
    EXPECT_LT(ev.to, 8u);
    EXPECT_GE(ev.amount, tc.min_amount);
    EXPECT_LE(ev.amount, tc.max_amount);
    EXPECT_LT(ev.fee_class, tc.fee_class_count);
  }
}

// ------------------------------------------------- AdmissionQueue contract

core::QueuedPayment payment(std::uint64_t fee, std::uint64_t bytes,
                            std::size_t from = 0) {
  core::QueuedPayment p;
  p.from = from;
  p.fee = fee;
  p.bytes = bytes;
  return p;
}

TEST(AdmissionQueue, PopsHighestRateFifoAmongTies) {
  core::AdmissionQueue q(1000);
  ASSERT_EQ(q.push(payment(200, 100, 1), nullptr),
            core::AdmissionQueue::Push::kAdmitted);  // rate 2, seq 0
  ASSERT_EQ(q.push(payment(100, 100, 2), nullptr),
            core::AdmissionQueue::Push::kAdmitted);  // rate 1
  ASSERT_EQ(q.push(payment(200, 100, 3), nullptr),
            core::AdmissionQueue::Push::kAdmitted);  // rate 2, seq 2
  core::QueuedPayment out;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.from, 1u);  // highest rate, earliest seq
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.from, 3u);  // FIFO among the rate-2 tie
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.from, 2u);
  EXPECT_FALSE(q.pop(out));
  EXPECT_EQ(q.used_bytes(), 0u);
}

TEST(AdmissionQueue, EvictsLowestRateNewestFirst) {
  core::AdmissionQueue q(300);
  ASSERT_EQ(q.push(payment(300, 100, 1), nullptr),
            core::AdmissionQueue::Push::kAdmitted);  // rate 3
  ASSERT_EQ(q.push(payment(100, 100, 2), nullptr),
            core::AdmissionQueue::Push::kAdmitted);  // rate 1, seq 1
  ASSERT_EQ(q.push(payment(100, 100, 3), nullptr),
            core::AdmissionQueue::Push::kAdmitted);  // rate 1, seq 2
  std::vector<core::QueuedPayment> evicted;
  // Rate-2 newcomer needs 100 bytes: exactly one victim — the NEWEST of
  // the lowest-rate tie (seq order is the eviction tiebreak, reversed).
  ASSERT_EQ(q.push(payment(200, 100, 4), &evicted),
            core::AdmissionQueue::Push::kAdmitted);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].from, 3u);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.used_bytes(), 300u);
}

TEST(AdmissionQueue, EqualRateNeverDisplaces) {
  core::AdmissionQueue q(200);
  ASSERT_EQ(q.push(payment(100, 100, 1), nullptr),
            core::AdmissionQueue::Push::kAdmitted);
  ASSERT_EQ(q.push(payment(100, 100, 2), nullptr),
            core::AdmissionQueue::Push::kAdmitted);
  std::vector<core::QueuedPayment> evicted;
  // Same fee rate as everything pooled: strict inequality required.
  EXPECT_EQ(q.push(payment(100, 100, 3), &evicted),
            core::AdmissionQueue::Push::kBackpressured);
  EXPECT_TRUE(evicted.empty());
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.used_bytes(), 200u);
}

TEST(AdmissionQueue, BackpressurePlanLeavesQueueUntouched) {
  // Two-phase contract: the plan walks X(rate 5) after Y(rate 1) and
  // fails on X — Y must NOT have been evicted by the failed attempt.
  core::AdmissionQueue q(250);
  ASSERT_EQ(q.push(payment(750, 150, 1), nullptr),
            core::AdmissionQueue::Push::kAdmitted);  // X: rate 5
  ASSERT_EQ(q.push(payment(100, 100, 2), nullptr),
            core::AdmissionQueue::Push::kAdmitted);  // Y: rate 1
  std::vector<core::QueuedPayment> evicted;
  // Z needs 200 bytes: evicting Y frees 100, the next victim is X with
  // rate 5 >= 2 → backpressure, and the queue is byte-identical.
  EXPECT_EQ(q.push(payment(400, 200, 3), &evicted),
            core::AdmissionQueue::Push::kBackpressured);
  EXPECT_TRUE(evicted.empty());
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.used_bytes(), 250u);
  core::QueuedPayment out;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.from, 1u);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.from, 2u);  // Y survived the failed push
}

TEST(AdmissionQueue, OversizedPaymentBackpressuresEvenWhenEmpty) {
  core::AdmissionQueue q(100);
  std::vector<core::QueuedPayment> evicted;
  EXPECT_EQ(q.push(payment(1000, 101, 1), &evicted),
            core::AdmissionQueue::Push::kBackpressured);
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(evicted.empty());
}

TEST(AdmissionQueue, MultiVictimEviction) {
  core::AdmissionQueue q(300);
  ASSERT_EQ(q.push(payment(100, 100, 1), nullptr),
            core::AdmissionQueue::Push::kAdmitted);  // rate 1, seq 0
  ASSERT_EQ(q.push(payment(200, 100, 2), nullptr),
            core::AdmissionQueue::Push::kAdmitted);  // rate 2
  ASSERT_EQ(q.push(payment(100, 100, 3), nullptr),
            core::AdmissionQueue::Push::kAdmitted);  // rate 1, seq 2
  std::vector<core::QueuedPayment> evicted;
  // 200-byte newcomer at rate 3 must displace both rate-1 entries,
  // newest-lowest first.
  ASSERT_EQ(q.push(payment(600, 200, 4), &evicted),
            core::AdmissionQueue::Push::kAdmitted);
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(evicted[0].from, 3u);  // newest of the lowest tie goes first
  EXPECT_EQ(evicted[1].from, 1u);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.used_bytes(), 300u);
}

// ---------------------------------------------------- differential harness

/// Fresh scratch directory per disk-mode run, removed on destruction.
struct ScratchDir {
  std::filesystem::path path;
  explicit ScratchDir(const std::string& tag) {
    path = std::filesystem::temp_directory_path() /
           ("dlt_traffic_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

/// One cell of the determinism matrix: verify-thread count ×
/// parallel-state toggle × storage mode. threads == 0 is the serial
/// reference path.
struct DiffMode {
  const char* name;
  std::size_t threads;
  bool parallel_state;
  bool disk;
};

constexpr DiffMode kDiffModes[] = {
    {"t2-mem", 2, false, false},
    {"t4-ps-mem", 4, true, false},
    {"serial-disk", 0, false, true},
    {"t2-ps-disk", 2, true, true},
};

bool volatile_metric(const std::string& key) {
  // profile/_us/workers are wall-clock members; parallel.* counts the
  // parallel machinery's own batching, which differs by execution mode
  // even when the simulation outcome is byte-identical.
  return key.find("profile.") != std::string::npos ||
         key.find("_us") != std::string::npos ||
         key.find(".workers") != std::string::npos ||
         key.compare(0, 9, "parallel.") == 0;
}

/// Same linear-scan registry filter as the state-sharding and storage
/// harnesses: drop wall-clock members, keep everything else byte-exact.
std::string filter_registry_json(const std::string& obj) {
  std::string out = "{";
  bool first = true;
  std::size_t i = 1;
  while (i + 1 < obj.size()) {
    if (obj[i] == ',') {
      ++i;
      continue;
    }
    const std::size_t key_end = obj.find('"', i + 1);
    const std::string key = obj.substr(i + 1, key_end - i - 1);
    i = key_end + 2;
    const std::size_t value_start = i;
    if (obj[i] == '{') {
      int depth = 0;
      do {
        if (obj[i] == '{') ++depth;
        if (obj[i] == '}') --depth;
        ++i;
      } while (depth > 0);
    } else {
      while (i + 1 < obj.size() && obj[i] != ',') ++i;
    }
    std::string value = obj.substr(value_start, i - value_start);
    if (volatile_metric(key)) continue;
    if (!value.empty() && value[0] == '{') value = filter_registry_json(value);
    if (!first) out += ',';
    first = false;
    out += '"';
    out += key;
    out += "\":";
    out += value;
  }
  out += '}';
  return out;
}

struct TrafficOutcome {
  std::string trace;
  core::RunMetrics metrics;
  std::string registry_json;
  bool converged = false;
};

void expect_outcome_eq(const TrafficOutcome& got, const TrafficOutcome& ref,
                       const char* mode) {
  SCOPED_TRACE(mode);
  EXPECT_EQ(got.trace, ref.trace);
  EXPECT_EQ(got.registry_json, ref.registry_json);
  const core::RunMetrics& a = got.metrics;
  const core::RunMetrics& b = ref.metrics;
  EXPECT_EQ(a.system, b.system);
  EXPECT_DOUBLE_EQ(a.sim_duration, b.sim_duration);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.included, b.included);
  EXPECT_EQ(a.confirmed, b.confirmed);
  EXPECT_EQ(a.pending_end, b.pending_end);
  EXPECT_EQ(a.blocks_produced, b.blocks_produced);
  EXPECT_EQ(a.stored_bytes, b.stored_bytes);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.message_bytes, b.message_bytes);
  EXPECT_EQ(a.admission_submitted, b.admission_submitted);
  EXPECT_EQ(a.admission_admitted, b.admission_admitted);
  EXPECT_EQ(a.admission_rejected, b.admission_rejected);
  EXPECT_EQ(a.admission_evicted, b.admission_evicted);
  EXPECT_EQ(a.admission_backpressured, b.admission_backpressured);
}

/// Every differential run must show real admission pressure (the point of
/// the over-saturation config) and reconcile exactly.
void expect_admission_contract(const TrafficOutcome& o, const char* mode) {
  SCOPED_TRACE(mode);
  const core::RunMetrics& m = o.metrics;
  EXPECT_GT(m.admission_submitted, 0u);
  EXPECT_EQ(m.admission_submitted,
            m.admission_admitted + m.admission_rejected + m.admission_evicted +
                m.admission_backpressured);
  EXPECT_GT(m.admission_evicted + m.admission_backpressured, 0u);
}

template <typename Config>
void apply_diff_mode(Config& cfg, const DiffMode& mode,
                     const ScratchDir* scratch) {
  cfg.crypto.verify_threads = mode.threads;
  cfg.crypto.parallel_state = mode.parallel_state;
  if (mode.disk) {
    cfg.storage.mode = storage::StorageMode::kDisk;
    cfg.storage.path = scratch->str();
  }
}

/// Over-saturation traffic shape shared by the differential runs: arrivals
/// far above the service rate into deliberately small queues.
core::TrafficConfig saturating_traffic(double rate, double duration,
                                       std::uint64_t queue_bytes) {
  core::TrafficConfig tc;
  tc.enabled = true;
  tc.rate = rate;
  tc.duration = duration;
  tc.queue_capacity_bytes = queue_bytes;
  return tc;
}

// ---- chain (account model) ----

TrafficOutcome run_chain_account(const DiffMode& mode, bool enable_mode) {
  ScratchDir scratch(std::string("chain_") + mode.name);
  core::ChainClusterConfig cfg;
  cfg.params = chain::pos_like();
  cfg.params.verify_pow = false;
  cfg.params.retarget_window = 0;
  cfg.params.initial_difficulty = 1e6;
  cfg.params.block_interval = 2.0;
  cfg.params.confirmation_depth = 3;
  cfg.node_count = 3;
  cfg.miner_count = 2;
  cfg.validator_count = 3;
  cfg.total_hashrate = 1e6 / 2.0;
  cfg.account_count = 12;
  cfg.initial_balance = 1'000'000'000;
  cfg.seed = 77;
  cfg.obs.trace_capacity = 1u << 16;
  cfg.traffic = saturating_traffic(60.0, 15.0, 6 * 1024);
  if (enable_mode) apply_diff_mode(cfg, mode, &scratch);

  core::ChainCluster cluster(cfg);
  cluster.start();
  cluster.schedule_traffic();
  cluster.run_for(15.0 + 2.0 * 5.0);

  TrafficOutcome out;
  out.trace = cluster.tracer().to_jsonl();
  out.metrics = cluster.metrics();
  out.registry_json =
      filter_registry_json(cluster.metrics_registry().to_json().to_string());
  out.converged = cluster.converged();
  return out;
}

TEST(TrafficDifferential, ChainAccountMatrix) {
  const TrafficOutcome ref =
      run_chain_account(DiffMode{"ref", 0, false, false}, false);
  expect_admission_contract(ref, "ref");
  EXPECT_GT(ref.metrics.confirmed, 0u);
  for (const DiffMode& mode : kDiffModes) {
    const TrafficOutcome got = run_chain_account(mode, true);
    expect_outcome_eq(got, ref, mode.name);
    expect_admission_contract(got, mode.name);
  }
}

// ---- chain (UTXO model: fee-market eviction with input unreserve) ----

TrafficOutcome run_chain_utxo(const DiffMode& mode, bool enable_mode) {
  ScratchDir scratch(std::string("utxo_") + mode.name);
  core::ChainClusterConfig cfg;
  cfg.params = chain::bitcoin_like();
  cfg.params.verify_pow = false;
  cfg.params.retarget_window = 0;
  cfg.params.initial_difficulty = 1e6;
  cfg.params.block_interval = 2.0;
  cfg.params.confirmation_depth = 3;
  cfg.node_count = 3;
  cfg.miner_count = 2;
  cfg.total_hashrate = 1e6 / 2.0;
  cfg.account_count = 12;
  cfg.initial_balance = 1'000'000'000;
  // Enough independent coins for every arrival the window can produce.
  cfg.genesis_outputs_per_account = 80;
  cfg.seed = 78;
  cfg.obs.trace_capacity = 1u << 16;
  cfg.traffic = saturating_traffic(50.0, 15.0, 8 * 1024);
  if (enable_mode) apply_diff_mode(cfg, mode, &scratch);

  core::ChainCluster cluster(cfg);
  cluster.start();
  cluster.schedule_traffic();
  cluster.run_for(15.0 + 2.0 * 5.0);

  TrafficOutcome out;
  out.trace = cluster.tracer().to_jsonl();
  out.metrics = cluster.metrics();
  out.registry_json =
      filter_registry_json(cluster.metrics_registry().to_json().to_string());
  out.converged = cluster.converged();
  return out;
}

TEST(TrafficDifferential, ChainUtxoMatrix) {
  const TrafficOutcome ref =
      run_chain_utxo(DiffMode{"ref", 0, false, false}, false);
  expect_admission_contract(ref, "ref");
  EXPECT_GT(ref.metrics.confirmed, 0u);
  for (const DiffMode& mode : kDiffModes) {
    const TrafficOutcome got = run_chain_utxo(mode, true);
    expect_outcome_eq(got, ref, mode.name);
    expect_admission_contract(got, mode.name);
  }
}

// ---- lattice ----

TrafficOutcome run_lattice(const DiffMode& mode, bool enable_mode) {
  ScratchDir scratch(std::string("lattice_") + mode.name);
  core::LatticeClusterConfig cfg;
  cfg.node_count = 3;
  cfg.representative_count = 2;
  cfg.account_count = 12;
  cfg.params.work_bits = 2;
  cfg.seed = 79;
  cfg.obs.trace_capacity = 1u << 16;
  cfg.traffic = saturating_traffic(60.0, 12.0, 2 * 1024);
  if (enable_mode) apply_diff_mode(cfg, mode, &scratch);

  core::LatticeCluster cluster(cfg);
  cluster.fund_accounts();
  cluster.schedule_traffic();
  cluster.run_for(12.0 + 15.0);

  TrafficOutcome out;
  out.trace = cluster.tracer().to_jsonl();
  out.metrics = cluster.metrics();
  out.registry_json =
      filter_registry_json(cluster.metrics_registry().to_json().to_string());
  out.converged = cluster.converged();
  return out;
}

TEST(TrafficDifferential, LatticeMatrix) {
  const TrafficOutcome ref = run_lattice(DiffMode{"ref", 0, false, false},
                                         false);
  expect_admission_contract(ref, "ref");
  EXPECT_GT(ref.metrics.confirmed, 0u);
  for (const DiffMode& mode : kDiffModes) {
    const TrafficOutcome got = run_lattice(mode, true);
    expect_outcome_eq(got, ref, mode.name);
    expect_admission_contract(got, mode.name);
  }
}

// ---- tangle ----

TrafficOutcome run_tangle(const DiffMode& mode, bool enable_mode) {
  ScratchDir scratch(std::string("tangle_") + mode.name);
  core::TangleClusterConfig cfg;
  cfg.node_count = 3;
  cfg.account_count = 12;
  cfg.params.work_bits = 2;
  cfg.seed = 80;
  cfg.obs.trace_capacity = 1u << 16;
  // Short window: MCMC attach cost grows with cone size, and the matrix
  // replays this run five times.
  cfg.traffic = saturating_traffic(60.0, 6.0, 1536);
  cfg.traffic.drain_burst = 2;
  if (enable_mode) apply_diff_mode(cfg, mode, &scratch);

  core::TangleCluster cluster(cfg);
  cluster.start();
  cluster.schedule_traffic();
  cluster.run_for(6.0 + 10.0);

  TrafficOutcome out;
  out.trace = cluster.tracer().to_jsonl();
  out.metrics = cluster.metrics();
  out.registry_json =
      filter_registry_json(cluster.metrics_registry().to_json().to_string());
  out.converged = cluster.converged();
  return out;
}

TEST(TrafficDifferential, TangleMatrix) {
  const TrafficOutcome ref = run_tangle(DiffMode{"ref", 0, false, false},
                                        false);
  expect_admission_contract(ref, "ref");
  EXPECT_GT(ref.metrics.confirmed, 0u);
  for (const DiffMode& mode : kDiffModes) {
    const TrafficOutcome got = run_tangle(mode, true);
    expect_outcome_eq(got, ref, mode.name);
    expect_admission_contract(got, mode.name);
  }
}

// Enabling traffic must not shift the cluster RNG chain: a no-traffic run
// before and after the feature landed draws identical node/network
// streams, which the frozen-seed cluster goldens elsewhere already pin.
// Here we assert the weaker live property: a traffic run and a
// traffic-off run share every pre-workload construction draw, so their
// traces agree byte-for-byte up to the first arrival event.
TEST(TrafficDifferential, TrafficOffKeepsAdmissionZero) {
  core::TangleClusterConfig cfg;
  cfg.node_count = 3;
  cfg.account_count = 12;
  cfg.params.work_bits = 2;
  cfg.seed = 81;
  core::TangleCluster cluster(cfg);
  cluster.start();
  cluster.schedule_traffic();  // no-op: traffic.enabled defaults to false
  cluster.run_for(20.0);
  const core::RunMetrics m = cluster.metrics();
  EXPECT_EQ(m.admission_submitted, 0u);
  EXPECT_EQ(m.admission_admitted, 0u);
  EXPECT_EQ(m.admission_rejected, 0u);
  EXPECT_EQ(m.admission_evicted, 0u);
  EXPECT_EQ(m.admission_backpressured, 0u);
}

}  // namespace
}  // namespace dlt
