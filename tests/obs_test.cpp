// Observability layer (ISSUE 2): metrics registry semantics, tracer ring
// behaviour, JSONL escaping, and the determinism contract — identical
// seeds give byte-identical traces, parallel verification included, and
// tracing on/off never changes a RunMetrics value.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/chain_cluster.hpp"
#include "core/lattice_cluster.hpp"
#include "core/tangle_cluster.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "support/json.hpp"

namespace dlt::obs {
namespace {

// ---------------------------------------------------------------- registry

TEST(MetricsRegistry, CounterCreateOnUseAndAccumulate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("chain.blocks_mined"), nullptr);
  Counter& c = reg.counter("chain.blocks_mined");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name returns the same metric; the reference stays stable even
  // after unrelated registrations (map nodes don't move).
  Counter& again = reg.counter("chain.blocks_mined");
  EXPECT_EQ(&again, &c);
  for (int i = 0; i < 64; ++i) reg.counter("filler." + std::to_string(i));
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(reg.find_counter("chain.blocks_mined"), &c);
}

TEST(MetricsRegistry, GaugeLastWriteWins) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("mempool.size");
  g.set(10.0);
  g.set(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
}

TEST(MetricsRegistry, HistogramMomentsAndPercentiles) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("latency");
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.summary().mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.summary().min(), 1.0);
  EXPECT_DOUBLE_EQ(h.summary().max(), 100.0);
  EXPECT_NEAR(h.percentiles().median(), 50.5, 1.0);
  EXPECT_NEAR(h.percentiles().p95(), 95.0, 1.5);
}

TEST(MetricsRegistry, JsonIsNameOrderedAndComplete) {
  MetricsRegistry reg;
  // Register deliberately out of name order.
  reg.counter("zeta").inc(2);
  reg.counter("alpha").inc(1);
  reg.gauge("mid").set(7.5);
  reg.histogram("lat").observe(1.0);
  const std::string json = reg.to_json().to_string();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
  EXPECT_NE(json.find("\"alpha\":1"), std::string::npos);
  EXPECT_NE(json.find("\"zeta\":2"), std::string::npos);
}

TEST(MetricsRegistry, HistogramJsonExportsP999) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat");
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  const std::string json = reg.to_json().to_string();
  EXPECT_NE(json.find("\"p999\""), std::string::npos);
  EXPECT_NEAR(h.percentiles().p999(), 999.0, 1.5);
}

// ---------------------------------------------------------- latency tracker

TEST(LatencyTracker, StampsStagesAndFeedsHistograms) {
  MetricsRegistry reg;
  Tracer tracer;
  tracer.enable(64);
  LatencyTracker lt;
  lt.enable(Probe{&reg, &tracer});

  lt.on_submit(7, 1.0, 0);
  EXPECT_TRUE(lt.on_admit(7, 1.5, 0));
  EXPECT_TRUE(lt.on_include(7, 3.0, 0, 42));
  EXPECT_EQ(lt.in_flight(), 1u);
  EXPECT_TRUE(lt.on_confirm(7, 10.0, 0, 42));
  EXPECT_EQ(lt.in_flight(), 0u);
  EXPECT_EQ(lt.submitted(), 1u);
  EXPECT_EQ(lt.confirmed(), 1u);

  EXPECT_DOUBLE_EQ(
      reg.find_histogram("latency.submit_to_admit")->summary().mean(), 0.5);
  EXPECT_DOUBLE_EQ(
      reg.find_histogram("latency.admit_to_include")->summary().mean(), 1.5);
  EXPECT_DOUBLE_EQ(
      reg.find_histogram("latency.include_to_confirm")->summary().mean(),
      7.0);
  EXPECT_DOUBLE_EQ(
      reg.find_histogram("latency.submit_to_confirm")->summary().mean(),
      9.0);

  // One typed trace event per stage, all keyed by the same id.
  EXPECT_EQ(tracer.count_of(EventType::kTxSubmitted), 1u);
  EXPECT_EQ(tracer.count_of(EventType::kTxAdmitted), 1u);
  EXPECT_EQ(tracer.count_of(EventType::kTxIncluded), 1u);
  EXPECT_EQ(tracer.count_of(EventType::kTxConfirmed), 1u);
  for (const auto& ev : tracer.events()) EXPECT_EQ(ev.a, 7u);

  // Retired entries reject late stamps.
  EXPECT_FALSE(lt.on_confirm(7, 11.0, 0));
}

TEST(LatencyTracker, UnknownIdsReturnFalseAndRecordNothing) {
  MetricsRegistry reg;
  LatencyTracker lt;
  lt.enable(Probe{&reg, nullptr});
  // Funding sends / direct test submissions never pass through on_submit,
  // so stage stamps for them must not pollute the workload histograms.
  EXPECT_FALSE(lt.on_admit(99, 1.0, 0));
  EXPECT_FALSE(lt.on_include(99, 2.0, 0));
  EXPECT_FALSE(lt.on_confirm(99, 3.0, 0));
  EXPECT_EQ(reg.find_histogram("latency.submit_to_confirm")->count(), 0u);
  EXPECT_EQ(lt.submitted(), 0u);
}

TEST(LatencyTracker, FirstStampWinsAndMissingStagesDegrade) {
  MetricsRegistry reg;
  LatencyTracker lt;
  lt.enable(Probe{&reg, nullptr});

  lt.on_submit(1, 1.0, 0);
  lt.on_submit(1, 2.0, 0);            // duplicate submit ignored
  EXPECT_TRUE(lt.on_admit(1, 3.0, 0));
  EXPECT_TRUE(lt.on_admit(1, 4.0, 0));  // restamp ignored
  // Confirm without include: only the end-to-end histogram advances.
  EXPECT_TRUE(lt.on_confirm(1, 5.0, 0));
  EXPECT_DOUBLE_EQ(
      reg.find_histogram("latency.submit_to_admit")->summary().mean(), 2.0);
  EXPECT_EQ(reg.find_histogram("latency.admit_to_include")->count(), 0u);
  EXPECT_EQ(reg.find_histogram("latency.include_to_confirm")->count(), 0u);
  EXPECT_DOUBLE_EQ(
      reg.find_histogram("latency.submit_to_confirm")->summary().mean(), 4.0);
}

TEST(LatencyTracker, UnincludeAllowsRestampAfterReorg) {
  MetricsRegistry reg;
  LatencyTracker lt;
  lt.enable(Probe{&reg, nullptr});
  lt.on_submit(5, 0.0, 0);
  EXPECT_TRUE(lt.on_include(5, 1.0, 0));
  lt.on_uninclude(5);                    // block disconnected
  EXPECT_TRUE(lt.on_include(5, 6.0, 0));  // re-included later
  EXPECT_TRUE(lt.on_confirm(5, 8.0, 0));
  EXPECT_DOUBLE_EQ(
      reg.find_histogram("latency.include_to_confirm")->summary().mean(),
      2.0);
}

TEST(LatencyTracker, DisabledTrackerIsInert) {
  LatencyTracker lt;
  EXPECT_FALSE(lt.enabled());
  lt.on_submit(1, 0.0, 0);
  EXPECT_FALSE(lt.on_admit(1, 1.0, 0));
  EXPECT_FALSE(lt.on_confirm(1, 2.0, 0));
  EXPECT_EQ(lt.in_flight(), 0u);
}

TEST(LatencyTracker, CaptureSetsInFlightGauge) {
  MetricsRegistry reg;
  LatencyTracker lt;
  lt.enable(Probe{&reg, nullptr});
  lt.on_submit(1, 0.0, 0);
  lt.on_submit(2, 0.0, 0);
  lt.capture();
  EXPECT_DOUBLE_EQ(reg.find_gauge("latency.in_flight")->value(), 2.0);
  lt.on_confirm(1, 1.0, 0);
  lt.capture();
  EXPECT_DOUBLE_EQ(reg.find_gauge("latency.in_flight")->value(), 1.0);
}

// ------------------------------------------------------------------ tracer

TEST(Tracer, DisabledRecordIsNoOp) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.record(1.0, EventType::kBlockMined, 0, 1, 2);
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.events().empty());
}

TEST(Tracer, RecordsTypedEventsInOrder) {
  Tracer tracer;
  tracer.enable(16);
  tracer.record(1.0, EventType::kBlockMined, 3, 10, 4);
  tracer.record(2.5, EventType::kReorgApplied, 1, 2, 12);
  EXPECT_EQ(tracer.recorded(), 2u);
  EXPECT_EQ(tracer.count_of(EventType::kBlockMined), 1u);
  EXPECT_EQ(tracer.count_of(EventType::kReorgApplied), 1u);
  EXPECT_EQ(tracer.count_of(EventType::kVoteCast), 0u);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].time, 1.0);
  EXPECT_EQ(events[0].type, EventType::kBlockMined);
  EXPECT_EQ(events[0].node, 3u);
  EXPECT_EQ(events[1].a, 2u);
  EXPECT_EQ(events[1].b, 12u);
}

TEST(Tracer, RingOverflowKeepsNewestAndCountsDropped) {
  Tracer tracer;
  tracer.enable(4);
  for (std::uint64_t i = 0; i < 10; ++i)
    tracer.record(static_cast<double>(i), EventType::kMessageSent, 0, i, 0);
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first unwrap of the most recent capacity_ events: 6,7,8,9.
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].a, 6 + i);
}

TEST(Tracer, ReenableResetsState) {
  Tracer tracer;
  tracer.enable(4);
  tracer.record(1.0, EventType::kBlockMined, 0);
  tracer.enable(8);
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.events().empty());
  tracer.disable();
  EXPECT_FALSE(tracer.enabled());
}

TEST(Tracer, JsonlOneObjectPerLineWithTypedFields) {
  Tracer tracer;
  tracer.enable(8);
  tracer.record(12.5, EventType::kReorgApplied, 3, 2, 40);
  tracer.record(13.0, EventType::kBlockMined, 1, 41, 7);
  const std::string jsonl = tracer.to_jsonl();
  std::istringstream in(jsonl);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"ev\":\"reorg_applied\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"node\":3"), std::string::npos);
  EXPECT_NE(lines[0].find("\"depth\":2"), std::string::npos);
  EXPECT_NE(lines[1].find("\"ev\":\"block_mined\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"txs\":7"), std::string::npos);
}

TEST(Tracer, SummaryJsonCountsByType) {
  Tracer tracer;
  tracer.enable(4);
  for (int i = 0; i < 6; ++i)
    tracer.record(static_cast<double>(i), EventType::kVoteCast, 0);
  const std::string summary = tracer.summary_json().to_string();
  EXPECT_NE(summary.find("\"recorded\":6"), std::string::npos);
  EXPECT_NE(summary.find("\"dropped\":2"), std::string::npos);
  EXPECT_NE(summary.find("\"vote_cast\":6"), std::string::npos);
}

TEST(Tracer, CapacityFromEnv) {
  unsetenv("DLT_TRACE");
  EXPECT_EQ(trace_capacity_from_env(), 0u);
  setenv("DLT_TRACE", "0", 1);
  EXPECT_EQ(trace_capacity_from_env(), 0u);
  setenv("DLT_TRACE", "1", 1);
  EXPECT_EQ(trace_capacity_from_env(), std::size_t{1} << 20);
  setenv("DLT_TRACE", "4096", 1);
  EXPECT_EQ(trace_capacity_from_env(), 4096u);
  unsetenv("DLT_TRACE");
}

// ------------------------------------------------- streaming JSONL sink

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(TracerSink, StreamMatchesRingExportByteForByte) {
  const std::string path = testing::TempDir() + "dlt_sink_full.jsonl";
  Tracer tracer;
  tracer.enable(64);
  ASSERT_TRUE(tracer.stream_to(path));
  EXPECT_TRUE(tracer.sink_active());
  tracer.record(1.0, EventType::kBlockMined, 0, 5, 2);
  tracer.record(2.0, EventType::kSendIssued, 1, 100, 3);
  tracer.record(2.5, EventType::kTipAttached, 2, 42, 2);
  tracer.close_sink();
  EXPECT_FALSE(tracer.sink_active());
  // Nothing wrapped, so the write-through file and the ring export are
  // the same bytes.
  EXPECT_EQ(slurp(path), tracer.to_jsonl());
  // The summary advertises where the stream went.
  EXPECT_NE(tracer.summary_json().to_string().find("dlt_sink_full.jsonl"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(TracerSink, KeepsFullFidelityAfterRingWraps) {
  const std::string path = testing::TempDir() + "dlt_sink_wrap.jsonl";
  Tracer tracer;
  tracer.enable(4);  // tiny ring: would drop 6 of 10 events on its own
  ASSERT_TRUE(tracer.stream_to(path));
  for (std::uint64_t i = 0; i < 10; ++i)
    tracer.record(static_cast<double>(i), EventType::kMessageSent, 0, i, 0);
  tracer.close_sink();
  // With a write-through sink nothing is lost, so dropped stays 0 ...
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 0u);
  // ... the file holds every event, and the ring still serves the newest.
  std::istringstream in(slurp(path));
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 10u);
  EXPECT_NE(lines[0].find("\"t\":0"), std::string::npos);
  EXPECT_NE(lines[9].find("\"t\":9"), std::string::npos);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].a, 6u);
  std::remove(path.c_str());
}

TEST(TracerSink, SinkOnlyModeBuffersNothing) {
  const std::string path = testing::TempDir() + "dlt_sink_only.jsonl";
  Tracer tracer;
  // stream_to on a disabled tracer enables sink-only mode: no ring at all.
  ASSERT_TRUE(tracer.stream_to(path));
  EXPECT_TRUE(tracer.enabled());
  tracer.record(1.0, EventType::kVoteCast, 3, 7, 9);
  tracer.record(2.0, EventType::kVoteCast, 3, 8, 9);
  EXPECT_EQ(tracer.recorded(), 2u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_TRUE(tracer.events().empty());  // nothing retained in memory
  tracer.close_sink();
  EXPECT_FALSE(tracer.enabled());  // sink-only: closing ends recording
  std::istringstream in(slurp(path));
  std::size_t lines = 0;
  for (std::string line; std::getline(in, line);) ++lines;
  EXPECT_EQ(lines, 2u);
  std::remove(path.c_str());
}

TEST(TracerSink, OpenFailureLeavesTracerUsable) {
  Tracer tracer;
  tracer.enable(8);
  EXPECT_FALSE(tracer.stream_to("/nonexistent-dir/trace.jsonl"));
  EXPECT_FALSE(tracer.sink_active());
  tracer.record(1.0, EventType::kBlockMined, 0);
  EXPECT_EQ(tracer.recorded(), 1u);
}

TEST(TracerSink, SinkPathFromEnv) {
  unsetenv("DLT_TRACE_SINK");
  EXPECT_EQ(trace_sink_from_env(), "");
  setenv("DLT_TRACE_SINK", "/tmp/t.jsonl", 1);
  EXPECT_EQ(trace_sink_from_env(), "/tmp/t.jsonl");
  unsetenv("DLT_TRACE_SINK");
}


// --------------------------------------------------------- JSONL escaping

/// Minimal unescaper for the subset json_escape emits; round-tripping
/// through it proves exported strings parse back to the original bytes.
std::string json_unescape(const std::string& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out.push_back(s[i]);
      continue;
    }
    ++i;
    switch (s[i]) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case 'n': out.push_back('\n'); break;
      case 't': out.push_back('\t'); break;
      case 'r': out.push_back('\r'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'u': {
        const int code = std::stoi(s.substr(i + 1, 4), nullptr, 16);
        out.push_back(static_cast<char>(code));
        i += 4;
        break;
      }
      default: out.push_back(s[i]);
    }
  }
  return out;
}

TEST(JsonEscape, RoundTripsControlAndQuoteCharacters) {
  const std::string nasty =
      "plain \"quoted\" back\\slash\nnewline\ttab\rcr\x01ctl";
  const std::string escaped = support::json_escape(nasty);
  // The escaped form is JSONL-safe: no raw newlines or quotes survive.
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(escaped.find('\t'), std::string::npos);
  EXPECT_EQ(json_unescape(escaped), nasty);
}

// ---------------------------------------------------- determinism contract

core::ChainClusterConfig traced_fork_config() {
  core::ChainClusterConfig cfg;
  cfg.params = chain::bitcoin_like();
  cfg.params.verify_pow = false;
  cfg.params.initial_difficulty = 1e6;
  cfg.params.block_interval = 5.0;
  cfg.params.retarget_window = 0;
  cfg.node_count = 4;
  cfg.miner_count = 3;
  cfg.total_hashrate = 1e6 / 5.0;
  cfg.account_count = 8;
  cfg.link = net::LinkParams{1.0, 0.3, 1e7};  // delay → forks + reorgs
  cfg.seed = 11;
  cfg.obs.trace_capacity = 1u << 16;
  return cfg;
}

std::string run_traced_chain(core::ChainClusterConfig cfg) {
  core::ChainCluster cluster(cfg);
  cluster.start();
  Rng wl_rng(7);
  core::WorkloadConfig wl;
  wl.account_count = cfg.account_count;
  wl.tx_rate = 0.5;
  wl.duration = 300.0;
  cluster.schedule_workload(core::generate_payments(wl, wl_rng));
  cluster.run_for(400.0);
  EXPECT_TRUE(cluster.tracer().enabled());
  EXPECT_GT(cluster.tracer().recorded(), 0u);
  return cluster.tracer().to_jsonl();
}

TEST(TracerSink, ClusterStreamsWholeRunThroughTinyRing) {
  const std::string sink_path = testing::TempDir() + "dlt_sink_cluster.jsonl";
  // Reference: ring big enough to retain everything.
  core::ChainClusterConfig cfg = traced_fork_config();
  core::ChainCluster reference(cfg);
  reference.start();
  reference.run_for(200.0);
  ASSERT_EQ(reference.tracer().dropped(), 0u);

  // Same seed, 16-event ring + write-through sink: the file carries the
  // run's complete trace even though the ring wrapped many times over.
  cfg.obs.trace_capacity = 16;
  cfg.obs.trace_sink = sink_path;
  core::ChainCluster streamed(cfg);
  streamed.start();
  streamed.run_for(200.0);
  EXPECT_EQ(streamed.tracer().dropped(), 0u);
  streamed.tracer().close_sink();
  EXPECT_EQ(slurp(sink_path), reference.tracer().to_jsonl());
  std::remove(sink_path.c_str());
}

TEST(TraceDeterminism, IdenticalSeedsGiveByteIdenticalJsonl) {
  const std::string a = run_traced_chain(traced_fork_config());
  const std::string b = run_traced_chain(traced_fork_config());
  EXPECT_EQ(a, b);
}

TEST(TraceDeterminism, ParallelVerifyMatchesSerialTrace) {
  core::ChainClusterConfig serial = traced_fork_config();
  serial.crypto.verify_threads = 0;
  core::ChainClusterConfig parallel = traced_fork_config();
  parallel.crypto.verify_threads = 2;
  // Worker threads never record; the trace is made on the sim thread in
  // event-firing order, so the files are byte-identical.
  EXPECT_EQ(run_traced_chain(serial), run_traced_chain(parallel));
}

TEST(TraceDeterminism, LatticeIdenticalSeedsGiveByteIdenticalJsonl) {
  auto run_once = [] {
    core::LatticeClusterConfig cfg;
    cfg.node_count = 3;
    cfg.representative_count = 2;
    cfg.account_count = 6;
    cfg.params.work_bits = 2;
    cfg.seed = 99;
    cfg.obs.trace_capacity = 1u << 16;
    core::LatticeCluster cluster(cfg);
    cluster.fund_accounts();
    Rng wl_rng(42);
    core::WorkloadConfig wl;
    wl.account_count = 6;
    wl.tx_rate = 1.0;
    wl.duration = 30.0;
    wl.max_amount = 1000;
    cluster.schedule_workload(core::generate_payments(wl, wl_rng));
    cluster.run_for(60.0);
    EXPECT_GT(cluster.tracer().count_of(EventType::kSendIssued), 0u);
    return cluster.tracer().to_jsonl();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(TraceDeterminism, TracingOffChangesNoRunMetric) {
  auto run_once = [](std::size_t trace_capacity) {
    core::ChainClusterConfig cfg = traced_fork_config();
    cfg.obs.trace_capacity = trace_capacity;
    core::ChainCluster cluster(cfg);
    cluster.start();
    Rng wl_rng(7);
    core::WorkloadConfig wl;
    wl.account_count = cfg.account_count;
    wl.tx_rate = 0.5;
    wl.duration = 300.0;
    cluster.schedule_workload(core::generate_payments(wl, wl_rng));
    cluster.run_for(400.0);
    return cluster.metrics();
  };
  const core::RunMetrics off = run_once(0);
  const core::RunMetrics on = run_once(1u << 16);
  EXPECT_EQ(off.submitted, on.submitted);
  EXPECT_EQ(off.rejected, on.rejected);
  EXPECT_EQ(off.included, on.included);
  EXPECT_EQ(off.confirmed, on.confirmed);
  EXPECT_EQ(off.pending_end, on.pending_end);
  EXPECT_EQ(off.reorgs, on.reorgs);
  EXPECT_EQ(off.orphaned_blocks, on.orphaned_blocks);
  EXPECT_EQ(off.max_reorg_depth, on.max_reorg_depth);
  EXPECT_EQ(off.blocks_produced, on.blocks_produced);
  EXPECT_EQ(off.messages, on.messages);
  EXPECT_EQ(off.message_bytes, on.message_bytes);
  EXPECT_EQ(off.inclusion_latency.count(), on.inclusion_latency.count());
  EXPECT_EQ(off.confirmation_latency.count(),
            on.confirmation_latency.count());
  if (off.confirmation_latency.count() > 0) {
    EXPECT_DOUBLE_EQ(off.confirmation_latency.median(),
                     on.confirmation_latency.median());
  }
}

TEST(ClusterMetricsExport, RegistryAndTraceSummarySectionsPresent) {
  core::ChainClusterConfig cfg = traced_fork_config();
  core::ChainCluster cluster(cfg);
  cluster.start();
  cluster.run_for(120.0);
  const std::string metrics = cluster.metrics_json().to_string();
  EXPECT_NE(metrics.find("\"chain.blocks_mined\""), std::string::npos);
  EXPECT_NE(metrics.find("\"sim.events_fired\""), std::string::npos);
  const std::string summary = cluster.trace_summary_json().to_string();
  EXPECT_NE(summary.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(summary.find("\"block_mined\""), std::string::npos);
}

}  // namespace
}  // namespace dlt::obs
