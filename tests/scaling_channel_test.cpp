// Payment channels (paper §VI-A): off-chain updates, dispute game, and
// on-chain funding/settlement against a real UTXO chain.
#include <gtest/gtest.h>

#include "chain_test_util.hpp"
#include "scaling/channel.hpp"

namespace dlt::scaling {
namespace {

using chain::testutil::cheap_pow_utxo;
using chain::testutil::fund_all;
using chain::testutil::make_keys;
using chain::testutil::seal_block;

class ChannelTest : public ::testing::Test {
 protected:
  ChannelTest()
      : keys(make_keys(2)),
        rng(5),
        channel(keys[0], keys[1], 1000, 500, rng) {}

  std::vector<crypto::KeyPair> keys;
  Rng rng;
  PaymentChannel channel;
};

TEST_F(ChannelTest, OpenState) {
  EXPECT_EQ(channel.balance_a(), 1000u);
  EXPECT_EQ(channel.balance_b(), 500u);
  EXPECT_EQ(channel.capacity(), 1500u);
  EXPECT_EQ(channel.sequence(), 0u);
  EXPECT_TRUE(channel.latest().verify(keys[0].public_key(),
                                      keys[1].public_key()));
}

TEST_F(ChannelTest, PaymentsMoveBalanceBothWays) {
  ASSERT_TRUE(channel.pay(300, /*from_a=*/true, rng).ok());
  EXPECT_EQ(channel.balance_a(), 700u);
  EXPECT_EQ(channel.balance_b(), 800u);
  ASSERT_TRUE(channel.pay(100, /*from_a=*/false, rng).ok());
  EXPECT_EQ(channel.balance_a(), 800u);
  EXPECT_EQ(channel.balance_b(), 700u);
  EXPECT_EQ(channel.sequence(), 2u);
  EXPECT_EQ(channel.payments_made(), 2u);
  EXPECT_EQ(channel.capacity(), 1500u);  // channel conserves value
}

TEST_F(ChannelTest, OverdraftRefused) {
  auto st = channel.pay(1001, true, rng);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, "insufficient-channel-balance");
  EXPECT_EQ(channel.sequence(), 0u);  // state unchanged
}

TEST_F(ChannelTest, ManyMicropaymentsNoChainCost) {
  // "Micro transactions at high volume and speed, avoiding the transaction
  // cap of the network" -- thousands of payments, zero on-chain txs.
  for (int i = 0; i < 5000; ++i)
    ASSERT_TRUE(channel.pay(1, i % 2 == 0, rng).ok());
  EXPECT_EQ(channel.payments_made(), 5000u);
  EXPECT_EQ(channel.capacity(), 1500u);
}

TEST_F(ChannelTest, EveryStateCoSigned) {
  ASSERT_TRUE(channel.pay(10, true, rng).ok());
  const SignedState& s = channel.latest();
  EXPECT_TRUE(s.verify(keys[0].public_key(), keys[1].public_key()));
  // Signatures do not transfer to a doctored state.
  SignedState forged = s;
  forged.state.balance_a += 100;
  EXPECT_FALSE(forged.verify(keys[0].public_key(), keys[1].public_key()));
}

TEST_F(ChannelTest, DisputeNewerStateWins) {
  ASSERT_TRUE(channel.pay(400, true, rng).ok());   // seq 1: a=600
  ASSERT_TRUE(channel.pay(200, true, rng).ok());   // seq 2: a=400
  // Party A cheats by publishing the stale seq-1 state.
  auto stale = channel.state_at(1);
  ASSERT_TRUE(stale.has_value());
  auto counter = channel.latest();

  SignedState settled = PaymentChannel::resolve_dispute(
      *stale, counter, keys[0].public_key(), keys[1].public_key());
  EXPECT_EQ(settled.state.sequence, 2u);
  EXPECT_EQ(settled.state.balance_a, 400u);
}

TEST_F(ChannelTest, DisputeWithoutCounterproofStands) {
  ASSERT_TRUE(channel.pay(400, true, rng).ok());
  auto claim = channel.latest();
  SignedState settled = PaymentChannel::resolve_dispute(
      claim, std::nullopt, keys[0].public_key(), keys[1].public_key());
  EXPECT_EQ(settled.state.sequence, claim.state.sequence);
}

TEST_F(ChannelTest, DisputeRejectsForgedCounterproof) {
  ASSERT_TRUE(channel.pay(400, true, rng).ok());
  auto claim = channel.latest();
  SignedState forged = claim;
  forged.state.sequence = 99;
  forged.state.balance_b = 1500;
  SignedState settled = PaymentChannel::resolve_dispute(
      claim, forged, keys[0].public_key(), keys[1].public_key());
  EXPECT_EQ(settled.state.sequence, claim.state.sequence);
}

TEST(ChannelOnChain, FundAndSettleOnRealChain) {
  // End-to-end §VI-A lifecycle: lock funds on chain, stream payments off
  // chain, close, and verify the final balances land on chain.
  auto keys = make_keys(3);
  Rng rng(6);
  chain::Blockchain bc(cheap_pow_utxo(), fund_all(keys, 10'000));
  const crypto::AccountId miner = keys[2].account_id();

  PaymentChannel channel(keys[0], keys[1], 4000, 2000, rng);

  auto coins_a = bc.utxo_set().find_owned(keys[0].account_id());
  auto coins_b = bc.utxo_set().find_owned(keys[1].account_id());
  chain::UtxoTransaction funding =
      channel.make_funding_tx(coins_a, coins_b, rng);

  chain::UtxoTxList txs{chain::UtxoTransaction::coinbase(
                            miner, bc.params().block_reward, 1),
                        funding};
  ASSERT_TRUE(
      bc.submit(seal_block(bc, bc.tip_hash(), std::move(txs), miner)).ok());

  // Off-chain phase: many payments, no blocks needed.
  for (int i = 0; i < 1000; ++i)
    ASSERT_TRUE(channel.pay(1, i % 3 != 0, rng).ok());
  const SignedState final_state = channel.cooperative_close();

  // Settlement: one on-chain tx pays each side its final balance.
  chain::UtxoTransaction settle = channel.make_settlement_tx(
      chain::Outpoint{funding.id(), 0}, final_state, rng);
  chain::UtxoTxList txs2{chain::UtxoTransaction::coinbase(
                             miner, bc.params().block_reward, 2),
                         settle};
  ASSERT_TRUE(
      bc.submit(seal_block(bc, bc.tip_hash(), std::move(txs2), miner)).ok());

  // a: 10000 - 4000 deposit + final_a; b: 10000 - 2000 + final_b.
  chain::Amount bal_a = 0, bal_b = 0;
  for (const auto& [op, out] :
       bc.utxo_set().find_owned(keys[0].account_id()))
    bal_a += out.value;
  for (const auto& [op, out] :
       bc.utxo_set().find_owned(keys[1].account_id()))
    bal_b += out.value;
  EXPECT_EQ(bal_a, 6000u + final_state.state.balance_a);
  EXPECT_EQ(bal_b, 8000u + final_state.state.balance_b);
  // 1000 payments cost exactly 2 on-chain transactions.
}

}  // namespace
}  // namespace dlt::scaling
