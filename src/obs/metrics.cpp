#include "obs/metrics.hpp"

namespace dlt::obs {

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

support::JsonObject MetricsRegistry::to_json() const {
  support::JsonObject root;

  support::JsonObject counters;
  for (const auto& [name, c] : counters_) counters.put(name, c.value());
  root.put_raw("counters", counters.to_string());

  support::JsonObject gauges;
  for (const auto& [name, g] : gauges_) gauges.put(name, g.value());
  root.put_raw("gauges", gauges.to_string());

  support::JsonObject histograms;
  for (const auto& [name, h] : histograms_) {
    support::JsonObject ho;
    ho.put("count", h.count());
    ho.put("mean", h.summary().mean());
    ho.put("min", h.summary().min());
    ho.put("max", h.summary().max());
    ho.put("stddev", h.summary().stddev());
    ho.put("median", h.percentiles().median());
    ho.put("p95", h.percentiles().p95());
    ho.put("p99", h.percentiles().p99());
    ho.put("p999", h.percentiles().p999());
    histograms.put_raw(name, ho.to_string());
  }
  root.put_raw("histograms", histograms.to_string());

  return root;
}

}  // namespace dlt::obs
