// LatencyTracker: end-to-end transaction-lifecycle latency (ISSUE 7
// tentpole). Stamps each tracked transaction at the lifecycle stages
//
//   submit  — the workload handed the payment to the cluster
//   admit   — a node accepted it into its mempool/ledger locally
//   include — it landed in a block / batch on the reference replica
//   confirm — the ledger's confirmation rule fired (depth-k for the
//             chain, vote quorum for the lattice, tip-cone coverage
//             for the tangle; see DESIGN.md "Latency semantics")
//
// in deterministic simulation time, and feeds the per-stage histograms
//
//   latency.submit_to_admit     latency.admit_to_include
//   latency.include_to_confirm  latency.submit_to_confirm
//
// in the cluster MetricsRegistry (p50/p99/p999 via the registry JSON
// export). Each stamp also emits a typed trace event through the
// cluster Tracer (tx_submitted / tx_admitted / tx_included /
// tx_confirmed), all keyed by the same obs::trace_id so tools/
// trace_plot.py can reassemble per-transaction timelines.
//
// Determinism contract: every stamp is a sim-time value recorded on the
// serial simulation thread; the tracker holds no wall-clock state and
// draws no randomness (the histograms' reservoir RNG is fixed-seed), so
// same-seed runs — serial or parallel (verify/state) — produce
// byte-identical latency.* JSON and trace bytes.
//
// Only transactions registered via on_submit are tracked: stage calls
// for unknown ids (funding sends, blocks submitted directly to a node
// in tests, re-gossiped duplicates) return false and record nothing,
// so the histograms measure exactly the engine-submitted workload.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "obs/probe.hpp"

namespace dlt::obs {

class LatencyTracker {
 public:
  /// Sentinel issuer tag: the submission carries no issuer attribution
  /// and is excluded from the per-issuer fairness stats.
  static constexpr std::uint64_t kNoIssuer = ~0ULL;
  /// Sentinel fee class: untagged submissions skip the per-class
  /// latency.class.<k>.submit_to_confirm histograms (ISSUE 10).
  static constexpr std::uint32_t kNoClass = ~0U;

  /// Per-issuer inclusion tally (fairness.inclusion_gini input, ISSUE 8):
  /// how many of an issuer's submissions reached the include stage. Kept
  /// separately from the in-flight entries because confirm retires those.
  struct IssuerStats {
    std::uint64_t submitted = 0;
    std::uint64_t included = 0;
  };

  /// Wires the latency.* histograms (and the in-flight gauge) into the
  /// probe's registry and starts tracking. `sample_cap` bounds each
  /// histogram's percentile memory (0 = exact, unbounded).
  void enable(const Probe& probe, std::size_t sample_cap = 0);
  bool enabled() const { return enabled_; }

  /// Registers a workload transaction at submission time. First write
  /// wins; duplicate ids are ignored. `issuer` tags the submission for
  /// the per-issuer fairness stats (workload account index in clusters;
  /// kNoIssuer = untracked).
  /// `fee_class` additionally buckets this transaction's eventual
  /// confirmation latency into latency.class.<k>.submit_to_confirm.
  void on_submit(std::uint64_t id, double t, std::uint32_t node,
                 std::uint64_t issuer = kNoIssuer,
                 std::uint32_t fee_class = kNoClass);
  /// Stage stamps for a tracked id; return false (and record nothing)
  /// when `id` was never submitted — callers may then fall back to their
  /// historical trace emission. First write per stage wins.
  bool on_admit(std::uint64_t id, double t, std::uint32_t node);
  bool on_include(std::uint64_t id, double t, std::uint32_t node,
                  std::uint64_t aux = 0);
  /// A reorg disconnected the including block: clears the include stamp
  /// so the eventual re-inclusion restamps it.
  void on_uninclude(std::uint64_t id);
  /// Confirmation: flushes the stage deltas into the histograms, emits
  /// tx_confirmed, and retires the entry (later calls return false).
  bool on_confirm(std::uint64_t id, double t, std::uint32_t node,
                  std::uint64_t aux = 0);
  /// Fee-market eviction (ISSUE 10): retires the entry WITHOUT touching
  /// the latency histograms (the tx never confirmed), emits tx_evicted.
  /// Returns false for unknown/already-retired ids so callers can gate
  /// their admission.* accounting on whether the entry was live.
  bool on_evict(std::uint64_t id, double t, std::uint32_t node);

  /// Transactions submitted but not yet confirmed.
  std::size_t in_flight() const { return entries_.size(); }
  std::uint64_t submitted() const { return submitted_; }
  std::uint64_t confirmed() const { return confirmed_; }
  std::uint64_t evicted() const { return evicted_; }

  /// Per-issuer submission/inclusion tallies for issuer-tagged
  /// submissions. Iterate sorted by issuer for deterministic aggregation
  /// (core::inclusion_gini does).
  const std::unordered_map<std::uint64_t, IssuerStats>& issuer_stats() const {
    return issuer_stats_;
  }

  /// Refreshes the latency.in_flight gauge (call before registry export).
  void capture();

 private:
  struct Entry {
    double submit = -1.0;
    double admit = -1.0;
    double include = -1.0;
    std::uint64_t issuer = kNoIssuer;
    std::uint32_t fee_class = kNoClass;
  };

  Histogram* class_histogram(std::uint32_t fee_class);

  bool enabled_ = false;
  Probe probe_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::unordered_map<std::uint64_t, IssuerStats> issuer_stats_;
  std::unordered_map<std::uint32_t, Histogram*> class_hist_;
  std::size_t sample_cap_ = 0;
  std::uint64_t submitted_ = 0;
  std::uint64_t confirmed_ = 0;
  std::uint64_t evicted_ = 0;

  // Cached registry metrics (non-null once enabled with a registry).
  Histogram* submit_to_admit_ = nullptr;
  Histogram* admit_to_include_ = nullptr;
  Histogram* include_to_confirm_ = nullptr;
  Histogram* submit_to_confirm_ = nullptr;
  Gauge* in_flight_ = nullptr;
};

}  // namespace dlt::obs
