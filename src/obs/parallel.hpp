// Shared metric wiring for the parallel block-validation pipeline
// (chain/lattice/tangle all report under the same `parallel.validate.*`
// names so benches and the determinism gate read one schema).
//
// Determinism contract: `batches` and `checks` count simulation work and
// are identical for a given seed at every worker count; `workers` reflects
// the pool size (tools/check.sh --determinism excludes it via
// bench_diff.py --ignore); `join_us` is wall-clock and carries the `_us`
// marker that keeps it out of every regression gate, like `profile.*`.
#pragma once

#include <cstddef>

#include "obs/metrics.hpp"
#include "obs/probe.hpp"

namespace dlt::obs {

struct ParallelValidationMetrics {
  Counter* batches = nullptr;   // blocks routed through the pipeline
  Counter* checks = nullptr;    // stateless checks sharded across workers
  Gauge* workers = nullptr;     // pool concurrency (caller included)
  Histogram* join_us = nullptr; // wall-clock shard start -> join complete

  void wire(const Probe& probe) {
    batches = probe.counter("parallel.validate.batches");
    checks = probe.counter("parallel.validate.checks");
    workers = probe.gauge("parallel.validate.workers");
    join_us = probe.histogram("parallel.validate.join_us");
  }

  void record_batch(std::size_t check_count, std::size_t worker_count) {
    inc(batches);
    inc(checks, check_count);
    set(workers, static_cast<double>(worker_count));
  }
};

/// Metric wiring for the sharded state-application pipeline
/// (`CryptoConfig::parallel_state`), shared by all three ledgers under the
/// `parallel.state.*` names.
///
/// Determinism contract: `batches`, `groups`, `demotions` and `txs` are
/// derived from the conflict partition, which is computed on the
/// simulation thread — they are identical for a given seed at every worker
/// count (the gate diffs them exactly). `workers` reflects pool size and
/// is exempted like its validate counterpart; `join_us` is wall-clock.
struct ParallelStateMetrics {
  Counter* batches = nullptr;    // blocks/batches routed through sharding
  Counter* groups = nullptr;     // conflict groups formed (pre-demotion)
  Counter* demotions = nullptr;  // batches demoted to the serial path
  Counter* txs = nullptr;        // items applied via concurrent groups
  Gauge* workers = nullptr;      // pool concurrency (caller included)
  Histogram* join_us = nullptr;  // wall-clock group start -> join complete

  void wire(const Probe& probe) {
    batches = probe.counter("parallel.state.batches");
    groups = probe.counter("parallel.state.groups");
    demotions = probe.counter("parallel.state.demotions");
    txs = probe.counter("parallel.state.txs");
    workers = probe.gauge("parallel.state.workers");
    join_us = probe.histogram("parallel.state.join_us");
  }

  /// Records one partitioned batch. Call on the simulation thread with
  /// values derived from the ConflictPartitioner only.
  void record_batch(std::size_t group_count, std::size_t worker_count) {
    inc(batches);
    inc(groups, group_count);
    set(workers, static_cast<double>(worker_count));
  }
  void record_demotion() { inc(demotions); }
  void record_applied(std::size_t item_count) { inc(txs, item_count); }
};

}  // namespace dlt::obs
