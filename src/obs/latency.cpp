#include "obs/latency.hpp"

#include <string>

namespace dlt::obs {

void LatencyTracker::enable(const Probe& probe, std::size_t sample_cap) {
  enabled_ = true;
  probe_ = probe;
  sample_cap_ = sample_cap;
  submit_to_admit_ = probe_.histogram("latency.submit_to_admit");
  admit_to_include_ = probe_.histogram("latency.admit_to_include");
  include_to_confirm_ = probe_.histogram("latency.include_to_confirm");
  submit_to_confirm_ = probe_.histogram("latency.submit_to_confirm");
  in_flight_ = probe_.gauge("latency.in_flight");
  if (sample_cap > 0) {
    if (submit_to_admit_) submit_to_admit_->set_sample_cap(sample_cap);
    if (admit_to_include_) admit_to_include_->set_sample_cap(sample_cap);
    if (include_to_confirm_)
      include_to_confirm_->set_sample_cap(sample_cap);
    if (submit_to_confirm_) submit_to_confirm_->set_sample_cap(sample_cap);
  }
}

void LatencyTracker::on_submit(std::uint64_t id, double t,
                               std::uint32_t node, std::uint64_t issuer,
                               std::uint32_t fee_class) {
  if (!enabled_) return;
  auto [it, fresh] = entries_.try_emplace(id);
  if (!fresh) return;  // duplicate id: first submission wins
  it->second.submit = t;
  it->second.issuer = issuer;
  it->second.fee_class = fee_class;
  ++submitted_;
  if (issuer != kNoIssuer) ++issuer_stats_[issuer].submitted;
  probe_.trace(t, EventType::kTxSubmitted, node, id, 0);
}

bool LatencyTracker::on_admit(std::uint64_t id, double t,
                              std::uint32_t node) {
  if (!enabled_) return false;
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  if (it->second.admit >= 0.0) return true;  // restamp: first wins
  it->second.admit = t;
  probe_.trace(t, EventType::kTxAdmitted, node, id, 0);
  return true;
}

bool LatencyTracker::on_include(std::uint64_t id, double t,
                                std::uint32_t node, std::uint64_t aux) {
  if (!enabled_) return false;
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  if (it->second.include >= 0.0) return true;  // restamp: first wins
  it->second.include = t;
  if (it->second.issuer != kNoIssuer)
    ++issuer_stats_[it->second.issuer].included;
  probe_.trace(t, EventType::kTxIncluded, node, id, aux);
  return true;
}

void LatencyTracker::on_uninclude(std::uint64_t id) {
  if (!enabled_) return;
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  if (it->second.include >= 0.0 && it->second.issuer != kNoIssuer)
    --issuer_stats_[it->second.issuer].included;  // re-inclusion recounts
  it->second.include = -1.0;
}

bool LatencyTracker::on_confirm(std::uint64_t id, double t,
                                std::uint32_t node, std::uint64_t aux) {
  if (!enabled_) return false;
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  const Entry e = it->second;
  entries_.erase(it);
  ++confirmed_;
  if (e.admit >= 0.0) observe(submit_to_admit_, e.admit - e.submit);
  if (e.include >= 0.0) {
    // A stage that coincided with submission (lattice/tangle local apply)
    // contributes a zero-width delta, keeping stage sums == end-to-end.
    const double admitted = e.admit >= 0.0 ? e.admit : e.submit;
    observe(admit_to_include_, e.include - admitted);
    observe(include_to_confirm_, t - e.include);
  }
  observe(submit_to_confirm_, t - e.submit);
  if (e.fee_class != kNoClass)
    observe(class_histogram(e.fee_class), t - e.submit);
  probe_.trace(t, EventType::kTxConfirmed, node, id, aux);
  return true;
}

bool LatencyTracker::on_evict(std::uint64_t id, double t,
                              std::uint32_t node) {
  if (!enabled_) return false;
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  if (it->second.include >= 0.0 && it->second.issuer != kNoIssuer)
    --issuer_stats_[it->second.issuer].included;  // never made it
  entries_.erase(it);
  ++evicted_;
  probe_.trace(t, EventType::kTxEvicted, node, id, 0);
  return true;
}

Histogram* LatencyTracker::class_histogram(std::uint32_t fee_class) {
  auto it = class_hist_.find(fee_class);
  if (it != class_hist_.end()) return it->second;
  Histogram* h = probe_.histogram("latency.class." +
                                  std::to_string(fee_class) +
                                  ".submit_to_confirm");
  if (h && sample_cap_ > 0) h->set_sample_cap(sample_cap_);
  class_hist_.emplace(fee_class, h);
  return h;
}

void LatencyTracker::capture() {
  if (!enabled_) return;
  set(in_flight_, static_cast<double>(entries_.size()));
}

}  // namespace dlt::obs
