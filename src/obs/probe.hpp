// Probe: the handle nodes and the network hold into the observability
// layer. A default-constructed Probe is inert — every helper is a null
// check — so un-instrumented configs (unit tests, examples) pay a branch
// per event and nothing else.
//
// Ownership: the cluster driver (or bench harness) owns the
// MetricsRegistry and Tracer; probes are non-owning views wired in at
// construction. Hot paths should resolve registry metrics once
// (`probe.metrics->counter("...")`) and keep the pointer.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dlt::obs {

struct Probe {
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
  /// Prepended to every registry name this probe resolves (e.g. "node.3.").
  /// Empty by default, so a probe without a namespace behaves exactly as
  /// before; per-node namespacing is opt-in via ClusterObs::probe_for.
  std::string prefix;

  explicit operator bool() const { return metrics || tracer; }

  /// Records a trace event iff a tracer is attached and enabled.
  void trace(double time, EventType type, std::uint32_t node,
             std::uint64_t a = 0, std::uint64_t b = 0) const {
    if (tracer && tracer->enabled()) tracer->record(time, type, node, a, b);
  }

  /// Registry accessors that tolerate a detached probe. The prefix is
  /// applied once at resolve time; cached metric pointers stay hot.
  Counter* counter(const std::string& name) const {
    return metrics ? &metrics->counter(prefix.empty() ? name : prefix + name)
                   : nullptr;
  }
  Gauge* gauge(const std::string& name) const {
    return metrics ? &metrics->gauge(prefix.empty() ? name : prefix + name)
                   : nullptr;
  }
  Histogram* histogram(const std::string& name) const {
    return metrics
               ? &metrics->histogram(prefix.empty() ? name : prefix + name)
               : nullptr;
  }
};

/// Null-tolerant mutation helpers for cached metric pointers.
inline void inc(Counter* c, std::uint64_t n = 1) {
  if (c) c->inc(n);
}
inline void set(Gauge* g, double v) {
  if (g) g->set(v);
}
inline void observe(Histogram* h, double x) {
  if (h) h->observe(x);
}

}  // namespace dlt::obs
