// Deterministic structured tracer (ISSUE 2 tentpole).
//
// Records typed simulation-time events into a fixed-capacity in-memory
// ring buffer with optional JSONL export. The determinism contract:
//
//  - Timestamps come from sim::Simulation::now() ONLY — never wall clock.
//    Wall-clock profiling (obs::ProfileTimer) feeds the MetricsRegistry
//    and is kept out of traces by construction.
//  - Events are recorded on the serial simulation thread in event-firing
//    order. Worker threads (the verify-pool prefetch) never record, so a
//    trace from a parallel run is byte-identical to a serial run.
//  - With the tracer disabled the record path is a single branch; no
//    RunMetrics value may change based on whether tracing is on.
//
// Together these make two identical-seed runs produce bit-for-bit
// identical JSONL files, which is what tools/bench_diff.py and the
// acceptance tests rely on.
#pragma once

#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "support/bytes.hpp"
#include "support/json.hpp"

namespace dlt::obs {

/// First 8 bytes of a digest/identifier as a trace payload — enough to
/// correlate events without hauling full hashes through the ring buffer.
template <std::size_t N>
std::uint64_t trace_id(const FixedBytes<N>& h) {
  static_assert(N >= 8, "trace ids need at least 8 bytes of digest");
  std::uint64_t out = 0;
  std::memcpy(&out, h.data(), sizeof(out));
  return out;
}

enum class EventType : std::uint8_t {
  kBlockMined = 0,    // a=height, b=txs
  kBlockReceived,     // a=height, b=id (hash prefix)
  kForkOpened,        // a=height, b=id — block parked on a side chain
  kReorgApplied,      // a=depth, b=new tip height
  kVoteCast,          // a=target, b=id
  kQuorumReached,     // a=target, b=id
  kSendIssued,        // a=amount, b=peer
  kReceiveSettled,    // a=amount, b=peer
  kTxIncluded,        // a=id (tx hash prefix), b=height
  kTxConfirmed,       // a=id, b=height
  kMessageSent,       // a=kind (net::MessageType), b=bytes
  kTipAttached,       // a=id, b=parents (tangle)
  kTxSubmitted,       // a=id, b=aux — workload payment entered the cluster
  kTxAdmitted,        // a=id, b=aux — accepted into mempool/ledger locally
  kTxEvicted,         // a=id, b=aux — displaced by the fee market (ISSUE 10)
  kEventCount_,       // sentinel — keep last
};

constexpr std::size_t kEventTypeCount =
    static_cast<std::size_t>(EventType::kEventCount_);

/// snake_case name used in JSONL output ("block_mined", ...).
const char* event_type_name(EventType t);
/// Field names for the a/b payloads of `t` ("height", "txs", ...).
const char* event_field_a(EventType t);
const char* event_field_b(EventType t);

/// Fixed-size POD record; 32 bytes, trivially copyable.
struct TraceEvent {
  double time = 0.0;           // sim seconds
  std::uint32_t node = 0;      // originating node (net::NodeId or cluster idx)
  EventType type = EventType::kBlockMined;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class Tracer {
 public:
  /// Starts recording into a ring of `capacity` events. Calling enable on
  /// a live tracer resets it.
  void enable(std::size_t capacity);
  void disable();
  bool enabled() const { return enabled_; }

  /// Opens a write-through JSONL sink at `path`: every record() appends one
  /// line immediately, so long runs keep full fidelity even after the ring
  /// wraps (`dropped` stays 0 while a sink is active — nothing is lost).
  /// Enables the tracer if it is not already (capacity 0 = sink-only mode,
  /// no ring memory at all). Returns false (after logging) on open failure.
  bool stream_to(const std::string& path);
  /// Flushes and closes the sink; the ring (if any) keeps recording.
  void close_sink();
  bool sink_active() const { return sink_ != nullptr; }
  const std::string& sink_path() const { return sink_path_; }

  void record(double time, EventType type, std::uint32_t node,
              std::uint64_t a = 0, std::uint64_t b = 0) {
    if (!enabled_) return;
    ++recorded_;
    ++per_type_[static_cast<std::size_t>(type)];
    const TraceEvent ev{time, node, type, a, b};
    if (sink_) write_sink(ev);
    if (capacity_ == 0) return;  // sink-only mode: no ring
    if (ring_.size() < capacity_) {
      ring_.push_back(ev);
    } else {
      // Overwrite the oldest event; the ring keeps the most recent
      // `capacity_` events. Without a sink the rest count as dropped; with
      // a write-through sink they already hit disk, so nothing is lost.
      ring_[head_] = ev;
      head_ = (head_ + 1) % capacity_;
      if (!sink_) ++dropped_;
    }
  }

  /// Total record() calls since enable(); >= events().size().
  std::uint64_t recorded() const { return recorded_; }
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t count_of(EventType t) const {
    return per_type_[static_cast<std::size_t>(t)];
  }

  /// Retained events, oldest first (unwraps the ring).
  std::vector<TraceEvent> events() const;

  /// One JSON object per line, e.g.
  ///   {"t":12.5,"ev":"reorg_applied","node":3,"depth":2,"height":40}
  static std::string event_json(const TraceEvent& ev);
  std::string to_jsonl() const;
  /// Writes to_jsonl() to `path`; false (after logging) on failure.
  bool export_jsonl(const std::string& path) const;

  /// {"enabled":...,"recorded":...,"dropped":...,"retained":...,
  ///  "by_type":{...nonzero types, name order...},
  ///  "first_time":...,"last_time":...}
  support::JsonObject summary_json() const;

 private:
  void write_sink(const TraceEvent& ev);

  bool enabled_ = false;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;  // oldest element once the ring has wrapped
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t per_type_[kEventTypeCount] = {};
  std::vector<TraceEvent> ring_;
  std::unique_ptr<std::ofstream> sink_;
  std::string sink_path_;
};

/// Reads the DLT_TRACE environment variable: unset/"0" → 0 (disabled),
/// "1" → default capacity (1<<20 events), otherwise the numeric value.
/// Benches use this to opt into JSONL export without recompiling.
std::size_t trace_capacity_from_env();

/// Reads DLT_TRACE_SINK: a non-empty value is a path for the streaming
/// JSONL sink (write-through; see Tracer::stream_to). Empty/unset → "".
std::string trace_sink_from_env();

}  // namespace dlt::obs
