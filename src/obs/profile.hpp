// ProfileTimer: scoped wall-clock timing for hot paths (block validation,
// signature verification, PoW solving).
//
// Wall-clock durations are inherently nondeterministic, so they feed the
// MetricsRegistry ONLY — by convention under a "profile." name prefix,
// which tools/bench_diff.py ignores by default — and are never recorded
// into traces. Sim-time observables and traces stay bit-for-bit
// reproducible regardless of host load.
#pragma once

#include <chrono>

#include "obs/metrics.hpp"

namespace dlt::obs {

class ProfileTimer {
 public:
  /// Starts timing iff `sink` is non-null; destructor observes elapsed
  /// microseconds. The disabled path never touches the clock.
  explicit ProfileTimer(Histogram* sink) : sink_(sink) {
    if (sink_) start_ = std::chrono::steady_clock::now();
  }
  ~ProfileTimer() { stop(); }

  ProfileTimer(const ProfileTimer&) = delete;
  ProfileTimer& operator=(const ProfileTimer&) = delete;

  /// Records early and disarms (idempotent).
  void stop() {
    if (!sink_) return;
    const auto end = std::chrono::steady_clock::now();
    sink_->observe(
        std::chrono::duration<double, std::micro>(end - start_).count());
    sink_ = nullptr;
  }

 private:
  Histogram* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dlt::obs
