#include "obs/trace.hpp"

#include <cstdlib>
#include <fstream>
#include <map>

#include "support/log.hpp"

namespace dlt::obs {

namespace {

struct EventSchema {
  const char* name;
  const char* a;
  const char* b;
};

// Indexed by EventType; keep in sync with the enum.
constexpr EventSchema kSchemas[kEventTypeCount] = {
    {"block_mined", "height", "txs"},
    {"block_received", "height", "id"},
    {"fork_opened", "height", "id"},
    {"reorg_applied", "depth", "height"},
    {"vote_cast", "target", "id"},
    {"quorum_reached", "target", "id"},
    {"send_issued", "amount", "peer"},
    {"receive_settled", "amount", "peer"},
    {"tx_included", "id", "height"},
    {"tx_confirmed", "id", "height"},
    {"message_sent", "kind", "bytes"},
    {"tip_attached", "id", "parents"},
    {"tx_submitted", "id", "aux"},
    {"tx_admitted", "id", "aux"},
    {"tx_evicted", "id", "aux"},
};

const EventSchema& schema(EventType t) {
  return kSchemas[static_cast<std::size_t>(t)];
}

}  // namespace

const char* event_type_name(EventType t) { return schema(t).name; }
const char* event_field_a(EventType t) { return schema(t).a; }
const char* event_field_b(EventType t) { return schema(t).b; }

void Tracer::enable(std::size_t capacity) {
  if (capacity == 0) {
    disable();
    return;
  }
  enabled_ = true;
  capacity_ = capacity;
  head_ = 0;
  recorded_ = 0;
  dropped_ = 0;
  for (auto& c : per_type_) c = 0;
  ring_.clear();
  ring_.reserve(capacity_);
}

void Tracer::disable() {
  enabled_ = false;
  capacity_ = 0;
  head_ = 0;
  ring_.clear();
  ring_.shrink_to_fit();
  close_sink();
}

bool Tracer::stream_to(const std::string& path) {
  auto out = std::make_unique<std::ofstream>(path);
  if (!*out) {
    DLT_LOG_WARN("cannot open trace sink %s", path.c_str());
    return false;
  }
  sink_ = std::move(out);
  sink_path_ = path;
  // Sink-only mode: a tracer with no ring still records through the sink.
  enabled_ = true;
  return true;
}

void Tracer::close_sink() {
  if (!sink_) return;
  sink_->flush();
  sink_.reset();
  // Keep sink_path_ so callers can report where the trace landed.
  if (capacity_ == 0) enabled_ = false;  // sink-only tracer is done
}

void Tracer::write_sink(const TraceEvent& ev) {
  *sink_ << event_json(ev) << '\n';
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // head_ is the oldest element once wrapped; before wrapping head_ == 0.
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

std::string Tracer::event_json(const TraceEvent& ev) {
  const EventSchema& s = schema(ev.type);
  std::string out = "{\"t\":";
  out += support::json_number(ev.time);
  out += ",\"ev\":\"";
  out += s.name;
  out += "\",\"node\":";
  out += std::to_string(ev.node);
  out += ",\"";
  out += s.a;
  out += "\":";
  out += std::to_string(ev.a);
  out += ",\"";
  out += s.b;
  out += "\":";
  out += std::to_string(ev.b);
  out += "}";
  return out;
}

std::string Tracer::to_jsonl() const {
  std::string out;
  for (const TraceEvent& ev : events()) {
    out += event_json(ev);
    out += "\n";
  }
  return out;
}

bool Tracer::export_jsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    DLT_LOG_WARN("cannot write trace %s", path.c_str());
    return false;
  }
  out << to_jsonl();
  return out.good();
}

support::JsonObject Tracer::summary_json() const {
  support::JsonObject o;
  o.put("enabled", enabled_);
  o.put("recorded", recorded_);
  o.put("dropped", dropped_);
  o.put("retained", static_cast<std::uint64_t>(ring_.size()));

  // Per-type counts in schema-name order for deterministic output; only
  // nonzero entries so quiet runs stay compact.
  std::map<std::string, std::uint64_t> by_type;
  for (std::size_t i = 0; i < kEventTypeCount; ++i)
    if (per_type_[i] > 0) by_type[kSchemas[i].name] = per_type_[i];
  support::JsonObject types;
  for (const auto& [name, n] : by_type) types.put(name, n);
  o.put_raw("by_type", types.to_string());

  if (!ring_.empty()) {
    const std::vector<TraceEvent> evs = events();
    o.put("first_time", evs.front().time);
    o.put("last_time", evs.back().time);
  }
  // Only mention the sink when one was attached, so ring-only runs keep
  // their exact historical summary bytes.
  if (!sink_path_.empty()) o.put("sink", sink_path_);
  return o;
}

std::size_t trace_capacity_from_env() {
  const char* env = std::getenv("DLT_TRACE");
  if (!env || !*env) return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env) return 0;          // non-numeric → disabled
  if (v == 0) return 0;              // "0" → disabled
  if (v == 1) return std::size_t{1} << 20;  // "1" → default capacity
  return static_cast<std::size_t>(v);
}

std::string trace_sink_from_env() {
  const char* env = std::getenv("DLT_TRACE_SINK");
  return (env && *env) ? std::string(env) : std::string();
}

}  // namespace dlt::obs
