// MetricsRegistry: named counters / gauges / histograms that nodes and
// cluster drivers register into (ISSUE 2 tentpole).
//
// Design constraints:
//  - Hot paths hold a `Counter*` / `Histogram*` obtained once at wiring
//    time, so the per-event cost is a null check plus an increment; the
//    registry map is only walked at registration and export time.
//  - Backing storage is std::map so references stay stable across later
//    registrations and JSON export iterates in name order — export output
//    is deterministic regardless of registration order.
//  - Histograms reuse support::Summary (Welford) + support::Percentiles
//    (exact quantiles) rather than inventing a third accumulator.
//
// The registry is not thread-safe; all simulation-side mutation happens on
// the serial sim thread. Wall-clock ProfileTimer observations also land
// here (under a "profile." prefix) from that same thread.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "support/json.hpp"
#include "support/stats.hpp"

namespace dlt::obs {

/// Monotonic event count (blocks mined, messages sent, ...).
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value (mempool size, tip height, ...).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Distribution of observations: streaming moments + exact percentiles.
class Histogram {
 public:
  void observe(double x) {
    summary_.add(x);
    percentiles_.add(x);
  }
  std::uint64_t count() const { return summary_.count(); }
  const Summary& summary() const { return summary_; }
  const Percentiles& percentiles() const { return percentiles_; }

  /// Bounds percentile memory via deterministic reservoir sampling (see
  /// support::Percentiles::set_sample_cap); 0 = exact, unbounded.
  void set_sample_cap(std::size_t cap) { percentiles_.set_sample_cap(cap); }

 private:
  Summary summary_;
  Percentiles percentiles_;
};

class MetricsRegistry {
 public:
  /// Returns the metric with `name`, creating it on first use. References
  /// stay valid for the registry's lifetime (map nodes are stable).
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  /// Lookup without creating; nullptr when absent.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// {"counters":{...},"gauges":{...},"histograms":{...}} with members in
  /// name order. Histograms export count/mean/min/max/stddev plus
  /// median/p95/p99/p999.
  support::JsonObject to_json() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace dlt::obs
