#include "sim/simulation.hpp"

#include <cassert>

namespace dlt::sim {

EventId Simulation::schedule_at(Time at, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule into the past");
  if (at < now_) at = now_;
  const EventId id = next_seq_;
  heap_.push(Event{at, next_seq_, id});
  fns_.emplace(id, std::move(fn));
  ++next_seq_;
  return id;
}

bool Simulation::cancel(EventId id) {
  auto it = fns_.find(id);
  if (it == fns_.end()) return false;
  fns_.erase(it);
  cancelled_.insert(id);
  ++cancelled_total_;
  return true;
}

bool Simulation::step() {
  while (!heap_.empty()) {
    Event ev = heap_.top();
    heap_.pop();
    auto c = cancelled_.find(ev.id);
    if (c != cancelled_.end()) {
      cancelled_.erase(c);
      continue;
    }
    auto it = fns_.find(ev.id);
    assert(it != fns_.end());
    std::function<void()> fn = std::move(it->second);
    fns_.erase(it);
    now_ = ev.at;
    ++fired_;
    fn();
    return true;
  }
  return false;
}

std::uint64_t Simulation::run_until(Time horizon) {
  std::uint64_t n = 0;
  stop_requested_ = false;
  while (!heap_.empty() && !stop_requested_) {
    // Peek past cancelled entries without firing.
    Event top = heap_.top();
    if (cancelled_.count(top.id)) {
      heap_.pop();
      cancelled_.erase(top.id);
      continue;
    }
    if (top.at > horizon) break;
    if (step()) ++n;
  }
  if (now_ < horizon) now_ = horizon;
  return n;
}

std::uint64_t Simulation::run() {
  std::uint64_t n = 0;
  stop_requested_ = false;
  while (!stop_requested_ && step()) ++n;
  return n;
}

}  // namespace dlt::sim
