#include "sim/simulation.hpp"

#include <chrono>

namespace dlt::sim {
namespace {

constexpr std::uint32_t slot_of(EventId id) {
  return static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
}
constexpr std::uint32_t generation_of(EventId id) {
  return static_cast<std::uint32_t>(id >> 32);
}

// RAII accumulator so every exit path of run()/run_until() books its
// wall-clock into the events/sec trajectory.
class WallTimer {
 public:
  explicit WallTimer(double& acc)
      : acc_(acc), start_(std::chrono::steady_clock::now()) {}
  ~WallTimer() {
    acc_ += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start_)
                .count();
  }

 private:
  double& acc_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

void Simulation::release_slot(std::uint32_t index) {
  Slot& slot = slot_at(index);
  slot.fn.reset();
  slot.occupied = false;
  ++slot.generation;  // invalidates every outstanding EventId for this slot
  free_.push_back(index);
  --live_;
}

bool Simulation::cancel(EventId id) {
  if (id == kInvalidEvent) return false;
  const std::uint32_t index = slot_of(id);
  if (index >= slot_count_) return false;
  Slot& slot = slot_at(index);
  if (!slot.occupied || slot.generation != generation_of(id)) return false;
  release_slot(index);  // the heap entry goes stale and is dropped on pop
  ++cancelled_total_;
  ++stale_in_heap_;
  return true;
}

void Simulation::drop_stale_tops_slow() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    const Slot& slot = slot_at(static_cast<std::uint32_t>(top.key & kSlotMask));
    if (slot.occupied && slot.key == top.key) return;
    heap_pop_front();
    --stale_in_heap_;
    if (stale_in_heap_ == 0) return;
  }
}

bool Simulation::step() {
  drop_stale_tops();
  if (heap_.empty()) return false;
  const HeapEntry top = heap_.front();
  heap_pop_front();
  // Invalidate the event's id before invoking (cancel-after-fire and
  // cancel-from-within return false, as the hash-map scheduler's did), but
  // keep the slot off the free list until the callback returns: chunk
  // addresses are stable, so the callback can run in place even while it
  // schedules new events into fresh slots.
  const std::uint32_t index = static_cast<std::uint32_t>(top.key & kSlotMask);
  Slot& slot = slot_at(index);
  slot.occupied = false;
  ++slot.generation;
  --live_;
  now_ = std::bit_cast<Time>(top.at_bits);
  ++fired_;
  slot.fn();
  slot.fn.reset();
  free_.push_back(index);
  return true;
}

std::uint64_t Simulation::run_until(Time horizon) {
  WallTimer timer(wall_seconds_);
  std::uint64_t n = 0;
  stop_requested_ = false;
  while (!stop_requested_) {
    drop_stale_tops();
    if (heap_.empty() || std::bit_cast<Time>(heap_.front().at_bits) > horizon)
      break;
    if (step()) ++n;
  }
  if (now_ < horizon) now_ = horizon;
  return n;
}

std::uint64_t Simulation::run() {
  WallTimer timer(wall_seconds_);
  std::uint64_t n = 0;
  stop_requested_ = false;
  while (!stop_requested_ && step()) ++n;
  return n;
}

}  // namespace dlt::sim
