// Discrete-event simulation engine.
//
// All network behaviour in the reproduction runs on simulated time: mining
// races, message propagation delays, vote round-trips, workload arrivals.
// Determinism contract: given identical seeds and identical schedule calls,
// a run is bit-for-bit reproducible (events at equal timestamps fire in
// scheduling order).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace dlt::sim {

/// Simulated time in seconds.
using Time = double;

using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now). Returns a handle that
  /// can be cancelled until it fires.
  EventId schedule_at(Time at, std::function<void()> fn);

  /// Schedules `fn` after `delay` seconds.
  EventId schedule_in(Time delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Returns false if it already fired or was
  /// already cancelled.
  bool cancel(EventId id);

  /// Runs a single event. Returns false if the queue is empty.
  bool step();

  /// Runs until the queue drains or `horizon` is passed (events scheduled
  /// beyond the horizon stay queued). Returns the number of events fired.
  std::uint64_t run_until(Time horizon);

  /// Runs until the queue drains entirely.
  std::uint64_t run();

  /// Asks run()/run_until() to return after the current event.
  void request_stop() { stop_requested_ = true; }

  std::size_t pending() const { return heap_.size() - cancelled_.size(); }
  std::uint64_t events_fired() const { return fired_; }
  /// Scheduler counters exported by the observability layer (sim.* gauges).
  std::uint64_t events_scheduled() const { return next_seq_ - 1; }
  std::uint64_t events_cancelled() const { return cancelled_total_; }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;  // tiebreak: FIFO among equal timestamps
    EventId id;
    // fn lives in fns_ (heap nodes must be copyable for priority_queue).
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::uint64_t cancelled_total_ = 0;
  bool stop_requested_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_map<EventId, std::function<void()>> fns_;
};

}  // namespace dlt::sim
