// Discrete-event simulation engine.
//
// All network behaviour in the reproduction runs on simulated time: mining
// races, message propagation delays, vote round-trips, workload arrivals.
// Determinism contract: given identical seeds and identical schedule calls,
// a run is bit-for-bit reproducible (events at equal timestamps fire in
// scheduling order).
//
// Implementation: an indexed slab scheduler. Events live in a free-list
// slab of fixed-size chunks (stable addresses, so a firing callback runs
// in place while it schedules more events); callbacks are stored inline in
// the slot via support::InplaceFunction, and the time-ordered binary heap
// holds only POD entries (time, FIFO sequence, slot, generation).
// Scheduling, cancelling and firing touch no hash table and — once the
// slab and heap have grown to the run's high-water mark — no allocator.
// Cancellation marks the slot free and bumps its generation; the stale
// heap entry is discarded lazily when it surfaces. EventId packs
// (generation, slot); a reused slot invalidates old ids by generation
// mismatch, so cancel-after-fire and double-cancel return false exactly as
// the historical hash-map scheduler did.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/inplace_function.hpp"

namespace dlt::sim {

/// Simulated time in seconds.
using Time = double;

/// Packed (generation << 32 | slot + 1) handle; 0 is never issued.
using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

class Simulation {
 public:
  /// 64 bytes covers every scheduler lambda in the tree (the largest is
  /// the network delivery closure); bigger callables heap-box transparently.
  using Callback = support::InplaceFunction<void(), 64>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now). Returns a handle that
  /// can be cancelled until it fires.
  EventId schedule_at(Time at, Callback fn) {
    const std::uint32_t index = open_slot(at);
    Slot& slot = slot_at(index);
    slot.fn = std::move(fn);
    return pack(index, slot.generation);
  }

  /// Hot-path overload: constructs the callback directly in its slot (one
  /// copy of the callable instead of temporary-then-move).
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback>>>
  EventId schedule_at(Time at, F&& fn) {
    const std::uint32_t index = open_slot(at);
    Slot& slot = slot_at(index);
    slot.fn.emplace(std::forward<F>(fn));
    return pack(index, slot.generation);
  }

  /// Schedules `fn` after `delay` seconds.
  template <typename F>
  EventId schedule_in(Time delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancels a pending event. Returns false if it already fired or was
  /// already cancelled.
  bool cancel(EventId id);

  /// Runs a single event. Returns false if the queue is empty.
  bool step();

  /// Runs until the queue drains or `horizon` is passed (events scheduled
  /// beyond the horizon stay queued). Returns the number of events fired.
  std::uint64_t run_until(Time horizon);

  /// Runs until the queue drains entirely.
  std::uint64_t run();

  /// Asks run()/run_until() to return after the current event.
  void request_stop() { stop_requested_ = true; }

  std::size_t pending() const { return live_; }
  std::uint64_t events_fired() const { return fired_; }
  /// Scheduler counters exported by the observability layer (sim.* gauges).
  std::uint64_t events_scheduled() const { return next_seq_ - 1; }
  std::uint64_t events_cancelled() const { return cancelled_total_; }
  /// High-water mark of the time-ordered heap (live + stale entries).
  std::size_t heap_peak() const { return heap_peak_; }
  /// Slots ever allocated in the slab (its memory footprint).
  std::size_t slab_capacity() const { return slot_count_; }
  /// Wall-clock seconds spent inside run()/run_until(), accumulated across
  /// calls; events_fired() / wall_seconds() is the engine's events/sec.
  double wall_seconds() const { return wall_seconds_; }

 private:
  struct Slot {
    Callback fn;
    std::uint64_t key = 0;  // packed (seq, slot) of the current booking
    std::uint32_t generation = 0;
    bool occupied = false;
  };
  // 16-byte POD heap node, min-ordered by (at, key). Time is stored as its
  // IEEE-754 bit pattern: simulated time is never negative, so the uint64
  // comparison is order-preserving and the sift loops run on integer
  // compares with no FP latency. The key packs the global FIFO sequence
  // into the high 40 bits and the slot index into the low 24, so comparing
  // keys compares sequences (seqs are unique; the slot bits never decide).
  // A node is stale when its key no longer matches its slot's current
  // booking.
  struct HeapEntry {
    std::uint64_t at_bits;
    std::uint64_t key;
  };
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;
  static constexpr std::uint64_t pack_key(std::uint64_t seq,
                                          std::uint32_t slot) {
    return (seq << kSlotBits) | slot;
  }
  // Branchless ordering: sift loops compare quasi-random timestamps, so a
  // short-circuit comparator mispredicts ~50% per level. Bitwise | and &
  // force setcc arithmetic instead of branches.
  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    return (a.at_bits < b.at_bits) |
           ((a.at_bits == b.at_bits) & (a.key < b.key));
  }

  // 4-ary heap: the pop sift is a serial dependency chain (each level's
  // load address depends on the previous level's pick), so halving the
  // number of levels vs a binary heap halves the chain; the min-of-four
  // pick is a branchless compare tree. Measured on the self-rescheduling
  // workload this is the difference between the heap being ~90% of
  // per-event cost and ~2x legacy throughput overall.
  void heap_push(const HeapEntry& e) {
    heap_.push_back(e);
    HeapEntry* h = heap_.data();
    std::size_t hole = heap_.size() - 1;
    // Newly scheduled events usually carry the latest timestamp, so this
    // loop exits on the first compare in steady state.
    while (hole > 0) {
      const std::size_t parent = (hole - 1) >> 2;
      if (!earlier(e, h[parent])) break;
      h[hole] = h[parent];
      hole = parent;
    }
    h[hole] = e;
  }

  void heap_pop_front() {
    const std::size_t n = heap_.size() - 1;
    HeapEntry* h = heap_.data();
    const HeapEntry last = h[n];
    heap_.pop_back();
    if (n == 0) return;
    std::size_t hole = 0;
    for (;;) {
      const std::size_t c0 = 4 * hole + 1;
      if (c0 >= n) break;
      std::size_t m;
      if (c0 + 4 <= n) {
        // Branchless min of the four children (compare tree, cmov picks).
        const std::size_t a =
            c0 + static_cast<std::size_t>(earlier(h[c0 + 1], h[c0]));
        const std::size_t b =
            c0 + 2 + static_cast<std::size_t>(earlier(h[c0 + 3], h[c0 + 2]));
        m = earlier(h[b], h[a]) ? b : a;
      } else {
        m = c0;  // partial quad at the frontier (at most once per pop)
        for (std::size_t c = c0 + 1; c < n; ++c)
          if (earlier(h[c], h[m])) m = c;
      }
      // `last` is a leaf value, so this exit is rarely taken before the
      // bottom — the branch stays predictable.
      if (!earlier(h[m], last)) break;
      h[hole] = h[m];
      hole = m;
    }
    h[hole] = last;
  }

  static constexpr EventId pack(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) |
           (static_cast<EventId>(slot) + 1);
  }

  // Chunked slab: slot addresses never move, so step() can run a callback
  // in place while it schedules (and thereby grows the slab).
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  Slot& slot_at(std::uint32_t index) {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }
  const Slot& slot_at(std::uint32_t index) const {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }

  std::uint32_t acquire_slot() {
    if (!free_.empty()) {
      const std::uint32_t index = free_.back();
      free_.pop_back();
      return index;
    }
    if ((slot_count_ & (kChunkSize - 1)) == 0)
      chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    assert(slot_count_ < (1u << kSlotBits) && "slab slot index overflow");
    return slot_count_++;
  }
  void release_slot(std::uint32_t index);
  /// Books an empty occupied slot at time `at` (heap entry pushed, counters
  /// bumped); the caller fills in the callback.
  std::uint32_t open_slot(Time at) {
    assert(at >= now_ && "cannot schedule into the past");
    if (at < now_) at = now_;
    at += 0.0;  // canonicalize -0.0: its bit pattern would sort after +inf
    const std::uint32_t index = acquire_slot();
    Slot& slot = slot_at(index);
    slot.occupied = true;
    slot.key = pack_key(next_seq_, index);
    heap_push(HeapEntry{std::bit_cast<std::uint64_t>(at), slot.key});
    if (heap_.size() > heap_peak_) heap_peak_ = heap_.size();
    ++live_;
    ++next_seq_;
    assert(next_seq_ < (1ull << 40) && "event sequence overflow");
    return index;
  }
  /// Pops stale heap tops; afterwards the front (if any) is live. Only
  /// cancel() makes heap entries go stale (step() pops before it
  /// invalidates), so with no cancellations outstanding this is one
  /// counter compare — no slot probe per event.
  void drop_stale_tops() {
    if (stale_in_heap_ == 0) return;
    drop_stale_tops_slow();
  }
  void drop_stale_tops_slow();

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::uint64_t cancelled_total_ = 0;
  bool stop_requested_ = false;

  std::vector<HeapEntry> heap_;  // 4-ary min-heap (heap_push/heap_pop_front)
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_ = 0;
  std::vector<std::uint32_t> free_;  // LIFO free list (deterministic reuse)
  std::size_t stale_in_heap_ = 0;    // cancelled entries not yet popped
  std::size_t live_ = 0;
  std::size_t heap_peak_ = 0;
  double wall_seconds_ = 0.0;
};

}  // namespace dlt::sim
