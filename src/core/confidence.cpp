#include "core/confidence.hpp"

#include <cmath>

namespace dlt::core {

double catch_up_probability(double q, std::uint32_t z) {
  if (q <= 0.0) return 0.0;
  const double p = 1.0 - q;
  if (q >= p) return 1.0;
  return std::pow(q / p, static_cast<double>(z));
}

double reversal_probability(double q, std::uint32_t z) {
  if (q <= 0.0) return 0.0;
  const double p = 1.0 - q;
  if (q >= p) return 1.0;
  const double lambda = static_cast<double>(z) * (q / p);

  double sum = 0.0;
  double poisson = std::exp(-lambda);  // Pois(0)
  for (std::uint32_t k = 0; k <= z; ++k) {
    if (k > 0) poisson *= lambda / static_cast<double>(k);
    const double catch_up = std::pow(q / p, static_cast<double>(z - k));
    sum += poisson * (1.0 - catch_up);
  }
  return 1.0 - sum;
}

std::uint32_t depth_for_risk(double q, double risk, std::uint32_t max_depth) {
  for (std::uint32_t z = 0; z <= max_depth; ++z) {
    if (reversal_probability(q, z) <= risk) return z;
  }
  return max_depth;
}

}  // namespace dlt::core
