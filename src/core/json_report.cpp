#include "core/json_report.hpp"

#include <sstream>

namespace dlt::core {

namespace {

JsonObject percentiles_json(const Percentiles& p) {
  JsonObject o;
  o.put("count", static_cast<std::uint64_t>(p.count()));
  o.put("median", p.median());
  o.put("p95", p.p95());
  o.put("p99", p.p99());
  o.put("p999", p.p999());
  return o;
}

}  // namespace

JsonObject run_metrics_json(const RunMetrics& m) {
  JsonObject o;
  o.put("system", m.system);
  o.put("sim_duration", m.sim_duration);
  o.put("submitted", m.submitted);
  o.put("rejected", m.rejected);
  o.put("included", m.included);
  o.put("confirmed", m.confirmed);
  o.put("pending_end", m.pending_end);
  o.put("tps_included", m.tps_included());
  o.put("tps_confirmed", m.tps_confirmed());
  o.put_raw("inclusion_latency",
            percentiles_json(m.inclusion_latency).to_string());
  o.put_raw("confirmation_latency",
            percentiles_json(m.confirmation_latency).to_string());
  o.put("reorgs", m.reorgs);
  o.put("orphaned_blocks", m.orphaned_blocks);
  o.put("max_reorg_depth", static_cast<std::uint64_t>(m.max_reorg_depth));
  o.put("blocks_produced", m.blocks_produced);
  o.put("stored_bytes", m.stored_bytes);
  o.put("messages", m.messages);
  o.put("message_bytes", m.message_bytes);
  if (m.admission_submitted > 0) {
    JsonObject a;
    a.put("submitted", m.admission_submitted);
    a.put("admitted", m.admission_admitted);
    a.put("rejected", m.admission_rejected);
    a.put("evicted", m.admission_evicted);
    a.put("backpressured", m.admission_backpressured);
    o.put_raw("admission", a.to_string());
  }
  return o;
}

std::string latency_summary_line(const obs::MetricsRegistry& registry) {
  const obs::Histogram* h =
      registry.find_histogram("latency.submit_to_confirm");
  if (!h || h->count() == 0) return {};
  const Percentiles& p = h->percentiles();
  std::ostringstream os;
  os << "Lifecycle submit->confirm: p50 " << json_number(p.median())
     << "s, p99 " << json_number(p.p99()) << "s over " << h->count()
     << " confirmed txs";
  return os.str();
}

}  // namespace dlt::core
