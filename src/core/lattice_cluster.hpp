// A complete simulated block-lattice (Nano-like) network: nodes owning
// accounts, representatives, and a workload driver (paper §II-B, §VI-B).
#pragma once

#include <memory>
#include <vector>

#include "core/cluster_common.hpp"
#include "core/metrics.hpp"
#include "core/workload.hpp"
#include "lattice/node.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace dlt::core {

struct LatticeClusterConfig {
  lattice::LatticeParams params;
  std::size_t node_count = 8;
  /// Nodes [0, representative_count) hold delegated weight and vote.
  std::size_t representative_count = 4;

  Topology topology = Topology::kComplete;
  net::LinkParams link{};
  std::size_t random_degree = 4;

  std::size_t account_count = 50;
  lattice::Amount initial_balance = 10'000'000;
  /// Total genesis supply; 0 = auto (accounts get ~80% of supply, so the
  /// genesis holder is NOT a standing majority and confirmation genuinely
  /// requires representative votes, paper §III-B).
  lattice::Amount supply = 0;

  /// Per-node role assignment (defaults to all historical, §V-B).
  std::vector<lattice::NodeRole> roles;

  /// Crypto hot-path knobs (shared sigcache for block + vote checks).
  CryptoConfig crypto{};

  /// Observability knobs (metrics registry is always on; tracing opt-in).
  ObsConfig obs{};

  std::uint64_t seed = 42;
};

class LatticeCluster {
 public:
  explicit LatticeCluster(LatticeClusterConfig config);

  sim::Simulation& simulation() { return sim_; }
  net::Network& network() { return *net_; }
  lattice::LatticeNode& node(std::size_t i) { return *nodes_[i]; }
  std::size_t node_count() const { return nodes_.size(); }
  const crypto::KeyPair& account(std::size_t i) const {
    return accounts_[i];
  }
  lattice::LatticeNode& owner_of(std::size_t account_index) {
    return *nodes_[account_index % nodes_.size()];
  }

  /// Distributes `initial_balance` from the genesis account to every
  /// workload account (send + open pairs, Fig. 3), then settles.
  void fund_accounts();

  /// One payment: the owner node issues the send; the receiver's node
  /// auto-receives when the send arrives (if online).
  Status submit_payment(std::size_t from, std::size_t to,
                        lattice::Amount amount);

  void schedule_workload(const std::vector<PaymentEvent>& events);
  void run_for(double seconds);

  /// Toggles the sharded validation pipeline on every node's ledger
  /// (no-op per node without a verify pool). Safe mid-run: either mode
  /// yields byte-identical simulation output for a given seed.
  void set_parallel_validation(bool on);

  RunMetrics metrics() const;

  /// All nodes hold identical account heads (convergence check).
  bool converged() const;

  /// The cluster-wide signature cache (null when crypto.shared_sigcache is
  /// off); benches read its hit-rate stats.
  crypto::SignatureCache* sigcache() { return crypto_.sigcache.get(); }
  const crypto::SignatureCache* sigcache() const {
    return crypto_.sigcache.get();
  }

  /// Cluster-wide observability state (nodes and the network feed it).
  obs::MetricsRegistry& metrics_registry() { return obs_.metrics; }
  const obs::MetricsRegistry& metrics_registry() const {
    return obs_.metrics;
  }
  obs::Tracer& tracer() { return obs_.tracer; }
  const obs::Tracer& tracer() const { return obs_.tracer; }
  /// Registry JSON with sim.* gauges refreshed — the bench `metrics`
  /// section.
  support::JsonObject metrics_json() {
    obs_.capture_sim(sim_);
    return obs_.metrics.to_json();
  }
  support::JsonObject trace_summary_json() const {
    return obs_.tracer.summary_json();
  }

 private:
  LatticeClusterConfig config_;
  Rng rng_;
  ClusterCrypto crypto_;
  ClusterObs obs_;
  sim::Simulation sim_;
  std::unique_ptr<net::Network> net_;
  std::vector<std::unique_ptr<lattice::LatticeNode>> nodes_;
  std::vector<crypto::KeyPair> accounts_;
  crypto::KeyPair genesis_key_;

  // Workload tallies live in the cluster registry (obs_.metrics); these
  // are cached handles into it.
  obs::Counter* submitted_ = nullptr;
  obs::Counter* rejected_ = nullptr;
};

}  // namespace dlt::core
