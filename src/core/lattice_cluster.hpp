// A complete simulated block-lattice (Nano-like) network: nodes owning
// accounts, representatives, and a workload driver (paper §II-B, §VI-B).
//
// Since the engine unification, LatticeCluster is a thin facade over
// core::ClusterEngine<LatticeTraits>: the engine owns the sim loop,
// topology, crypto/obs wiring and RunMetrics assembly; LatticeTraits
// supplies the lattice-specific policy (genesis/supply, account→node
// ownership, voting identities, confirmation stats). Public API unchanged.
#pragma once

#include <vector>

#include "core/cluster_engine.hpp"
#include "lattice/node.hpp"

namespace dlt::core {

struct LatticeClusterConfig {
  lattice::LatticeParams params;
  std::size_t node_count = 8;
  /// Nodes [0, representative_count) hold delegated weight and vote.
  std::size_t representative_count = 4;

  Topology topology = Topology::kComplete;
  net::LinkParams link{};
  std::size_t random_degree = 4;

  std::size_t account_count = 50;
  lattice::Amount initial_balance = 10'000'000;
  /// Total genesis supply; 0 = auto (accounts get ~80% of supply, so the
  /// genesis holder is NOT a standing majority and confirmation genuinely
  /// requires representative votes, paper §III-B).
  lattice::Amount supply = 0;

  /// Per-node role assignment (defaults to all historical, §V-B).
  std::vector<lattice::NodeRole> roles;

  /// Crypto hot-path knobs (shared sigcache for block + vote checks).
  CryptoConfig crypto{};

  /// Observability knobs (metrics registry is always on; tracing opt-in).
  ObsConfig obs{};

  /// Persistence mode for every node's ledger store (ISSUE 9). Memory mode
  /// (default) keeps the same write-through accounting in RAM; disk mode
  /// adds the segmented log + mmap state backend. Byte-identical traces
  /// either way; see storage/config.hpp and apply_env_storage.
  storage::StorageConfig storage{};

  /// Open-loop traffic engine + admission control (ISSUE 10): arrivals
  /// park in per-owner-node AdmissionQueues (byte-capacity fee market)
  /// drained on the traffic.drain_interval cadence into real sends.
  TrafficConfig traffic{};

  std::uint64_t seed = 42;
};

/// Ledger policy plugged into ClusterEngine (see cluster_engine.hpp for
/// the full contract). Definitions live in lattice_cluster.cpp.
struct LatticeTraits {
  using Config = LatticeClusterConfig;
  using Node = lattice::LatticeNode;
  using Amount = lattice::Amount;

  struct State {
    crypto::KeyPair genesis_key = crypto::KeyPair::from_seed(0x6e5);
    // Traffic admission queues, one per owner node (lazily sized on the
    // first arrival), plus the drain-event arm flags.
    std::vector<AdmissionQueue> queues;
    std::vector<char> drain_armed;
  };

  static State make_state(Config& config);
  static std::string system_name(const Config& config);
  static void build_nodes(ClusterEngine<LatticeTraits>& e);
  static void after_topology(ClusterEngine<LatticeTraits>& e);
  static void wire_lifecycle(ClusterEngine<LatticeTraits>& e);
  static void start(ClusterEngine<LatticeTraits>& e);
  static SubmitOutcome submit_payment(ClusterEngine<LatticeTraits>& e,
                                      std::size_t from, std::size_t to,
                                      Amount amount);
  static void submit_traffic(ClusterEngine<LatticeTraits>& e,
                             const TrafficEvent& ev);
  static void set_parallel_validation(ClusterEngine<LatticeTraits>& e,
                                      bool on);
  static void set_parallel_state(ClusterEngine<LatticeTraits>& e, bool on);
  static void fill_metrics(const ClusterEngine<LatticeTraits>& e,
                           RunMetrics& m);
  static bool converged(const ClusterEngine<LatticeTraits>& e);
};

class LatticeCluster : public ClusterEngine<LatticeTraits> {
 public:
  using ClusterEngine<LatticeTraits>::ClusterEngine;

  lattice::LatticeNode& owner_of(std::size_t account_index) {
    return node(account_index % node_count());
  }

  /// Distributes `initial_balance` from the genesis account to every
  /// workload account (send + open pairs, Fig. 3), then settles.
  void fund_accounts();
};

}  // namespace dlt::core
