#include "core/chain_cluster.hpp"

#include <cassert>

namespace dlt::core {

ChainCluster::ChainCluster(ChainClusterConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      crypto_(make_cluster_crypto(config_.crypto)),
      obs_(config_.obs) {
  submitted_ = &obs_.metrics.counter("cluster.submitted");
  rejected_ = &obs_.metrics.counter("cluster.rejected");

  net_ = std::make_unique<net::Network>(sim_, rng_.fork());
  net_->set_probe(obs_.probe());

  // Workload accounts funded in the genesis allocation (paper §II-A: the
  // initial state is hard-coded in the first block).
  accounts_ = make_workload_accounts(config_.account_count);
  chain::GenesisSpec genesis;
  for (std::size_t i = 0; i < config_.account_count; ++i) {
    const std::size_t coins =
        std::max<std::size_t>(1, config_.genesis_outputs_per_account);
    for (std::size_t j = 0; j < coins; ++j)
      genesis.allocations.emplace_back(accounts_[i].account_id(),
                                       config_.initial_balance);
  }
  next_nonce_.assign(config_.account_count, 0);

  // PoS stake table shared by every node.
  std::vector<chain::StakeAllocation> stakes;
  if (config_.params.consensus == chain::ConsensusKind::kProofOfStake) {
    for (std::size_t i = 0; i < config_.validator_count; ++i) {
      const crypto::KeyPair key = crypto::KeyPair::from_seed(0x4000 + i);
      stakes.push_back(chain::StakeAllocation{
          key.account_id(), key.public_key(), config_.stake_per_validator});
    }
  }

  for (std::size_t i = 0; i < config_.node_count; ++i) {
    chain::NodeConfig nc;
    nc.wallet_seed = 0x4000 + i;  // validators sign with their stake key
    if (config_.params.consensus == chain::ConsensusKind::kProofOfWork &&
        i < config_.miner_count) {
      nc.hashrate = config_.total_hashrate /
                    static_cast<double>(config_.miner_count);
      nc.solve_pow = config_.params.verify_pow;
    }
    nc.sigcache = crypto_.sigcache;
    // Batch verification stages results in a sigcache; give each node a
    // private one if the cluster-wide cache is disabled.
    if (crypto_.verify_pool && !nc.sigcache)
      nc.sigcache = std::make_shared<crypto::SignatureCache>(
          config_.crypto.sigcache_capacity);
    nc.verify_pool = crypto_.verify_pool;
    nc.parallel_validation = config_.crypto.parallel_validation;
    nc.probe = obs_.probe();
    nodes_.push_back(std::make_unique<chain::ChainNode>(
        *net_, config_.params, genesis, nc, rng_.fork(), stakes));
  }

  std::vector<net::NodeId> ids;
  for (const auto& n : nodes_) ids.push_back(n->id());
  build_topology(*net_, ids, config_.topology, config_.link,
                 config_.random_degree, rng_);
}

void ChainCluster::start() {
  for (auto& n : nodes_) n->start();
}

void ChainCluster::set_parallel_validation(bool on) {
  for (auto& n : nodes_) n->chain().set_parallel_validation(on);
}

Status ChainCluster::submit_payment(std::size_t from, std::size_t to,
                                    chain::Amount amount) {
  Status st = config_.params.tx_model == chain::TxModel::kUtxo
                  ? submit_utxo_payment(from, to, amount)
                  : submit_account_payment(from, to, amount);
  if (st.ok())
    submitted_->inc();
  else
    rejected_->inc();
  return st;
}

Status ChainCluster::submit_utxo_payment(std::size_t from, std::size_t to,
                                         chain::Amount amount) {
  chain::ChainNode& node = *nodes_[0];
  const crypto::KeyPair& key = accounts_[from];
  const chain::Amount fee = 1000;

  // Coin selection against the reference node's chainstate, skipping
  // outpoints already committed to in-flight transactions. for_each_owned
  // walks the same wallet-index order as find_owned but stops as soon as
  // enough value is gathered, instead of materializing the whole wallet.
  std::vector<std::pair<chain::Outpoint, chain::TxOut>> selected;
  chain::Amount gathered = 0;
  node.chain().utxo_set().for_each_owned(
      key.account_id(),
      [&](const chain::Outpoint& op, const chain::TxOut& out) {
        if (reserved_.count(op)) return true;
        selected.emplace_back(op, out);
        gathered += out.value;
        return gathered < amount + fee;
      });
  if (gathered < amount + fee)
    return make_error("insufficient-funds", "wallet cannot cover amount+fee");

  chain::UtxoTransaction tx;
  for (const auto& [op, out] : selected)
    tx.inputs.push_back(chain::TxIn{op, key.public_key(), {}});
  tx.outputs.push_back(
      chain::TxOut{amount, accounts_[to].account_id()});
  if (gathered > amount + fee)
    tx.outputs.push_back(
        chain::TxOut{gathered - amount - fee, key.account_id()});
  tx.sign_all({key}, rng_);

  Status st = node.submit_transaction(tx);
  if (st.ok())
    for (const auto& [op, out] : selected) reserved_.insert(op);
  // Reserved outpoints are released lazily: once spent they vanish from
  // the UTXO set and future scans skip them anyway. Compact with a
  // doubling threshold so the scan cost stays amortized O(1) per payment.
  if (reserved_.size() > reserved_compact_at_) {
    for (auto it = reserved_.begin(); it != reserved_.end();) {
      it = node.chain().utxo_set().contains(*it) ? std::next(it)
                                                 : reserved_.erase(it);
    }
    reserved_compact_at_ = std::max<std::size_t>(8192, reserved_.size() * 2);
  }
  return st;
}

Status ChainCluster::submit_account_payment(std::size_t from, std::size_t to,
                                            chain::Amount amount) {
  chain::ChainNode& node = *nodes_[0];
  const crypto::KeyPair& key = accounts_[from];

  chain::AccountTransaction tx;
  tx.to = accounts_[to].account_id();
  tx.value = amount;
  tx.nonce = next_nonce_[from];
  if (config_.account_tx_data_mean > 0)
    tx.data_size = static_cast<std::uint32_t>(
        rng_.uniform(2 * config_.account_tx_data_mean + 1));
  tx.gas_limit = tx.intrinsic_gas();
  tx.gas_price = 1 + rng_.uniform(10);  // a little fee-market variety
  tx.sign(key, rng_);

  Status st = node.submit_transaction(tx);
  if (st.ok()) ++next_nonce_[from];
  return st;
}

void ChainCluster::schedule_workload(const std::vector<PaymentEvent>& events) {
  for (const PaymentEvent& ev : events) {
    sim_.schedule_at(sim_.now() + ev.time, [this, ev] {
      (void)submit_payment(ev.from, ev.to, ev.amount);
    });
  }
}

void ChainCluster::run_for(double seconds) {
  sim_.run_until(sim_.now() + seconds);
}

RunMetrics ChainCluster::metrics() const {
  RunMetrics m;
  m.system = config_.params.name;
  m.sim_duration = sim_.now();
  m.submitted = submitted_->value();
  m.rejected = rejected_->value();

  const chain::Blockchain& chain = nodes_[0]->chain();
  // Included: payments on the active chain (excludes coinbases).
  std::uint64_t included = 0, confirmed = 0;
  for (std::uint32_t h = 1; h <= chain.height(); ++h) {
    const chain::Block* b = chain.at_height(h);
    const std::uint64_t txs =
        b->is_utxo() ? b->tx_count() - 1 : b->tx_count();
    included += txs;
    if (chain.height() - h + 1 >= chain.params().confirmation_depth)
      confirmed += txs;
  }
  m.included = included;
  m.confirmed = confirmed;
  m.pending_end = nodes_[0]->mempool_size();

  for (const auto& n : nodes_) m.blocks_produced += n->blocks_mined();
  // Latencies live on node 0 (the submission node).
  m.inclusion_latency = nodes_[0]->timings().inclusion_latency;
  m.confirmation_latency = nodes_[0]->timings().confirmation_latency;

  const chain::ForkStats& f = chain.fork_stats();
  m.reorgs = f.reorgs;
  m.orphaned_blocks = f.side_chain_blocks + f.blocks_disconnected;
  m.max_reorg_depth = f.max_reorg_depth;
  m.stored_bytes = chain.storage().total();
  m.messages = net_->traffic().messages;
  m.message_bytes = net_->traffic().bytes;
  return m;
}

bool ChainCluster::converged() const {
  const chain::BlockHash tip = nodes_[0]->chain().tip_hash();
  for (const auto& n : nodes_)
    if (!(n->chain().tip_hash() == tip)) return false;
  return true;
}

}  // namespace dlt::core
