#include "core/chain_cluster.hpp"

#include <cassert>

namespace dlt::core {

namespace {

using Engine = ClusterEngine<ChainTraits>;

SubmitOutcome submit_utxo_payment(Engine& e, std::size_t from,
                                  std::size_t to, chain::Amount amount,
                                  chain::Amount fee = 1000) {
  chain::ChainNode& node = e.node(0);
  ChainTraits::State& state = e.state();
  const crypto::KeyPair& key = e.account(from);

  // Coin selection against the reference node's chainstate, skipping
  // outpoints already committed to in-flight transactions. for_each_owned
  // walks the same wallet-index order as find_owned but stops as soon as
  // enough value is gathered, instead of materializing the whole wallet.
  std::vector<std::pair<chain::Outpoint, chain::TxOut>> selected;
  chain::Amount gathered = 0;
  node.chain().utxo_set().for_each_owned(
      key.account_id(),
      [&](const chain::Outpoint& op, const chain::TxOut& out) {
        if (state.reserved.count(op)) return true;
        selected.emplace_back(op, out);
        gathered += out.value;
        return gathered < amount + fee;
      });
  if (gathered < amount + fee)
    return SubmitOutcome{
        make_error("insufficient-funds", "wallet cannot cover amount+fee")};

  chain::UtxoTransaction tx;
  for (const auto& [op, out] : selected)
    tx.inputs.push_back(chain::TxIn{op, key.public_key(), {}});
  tx.outputs.push_back(
      chain::TxOut{amount, e.account(to).account_id()});
  if (gathered > amount + fee)
    tx.outputs.push_back(
        chain::TxOut{gathered - amount - fee, key.account_id()});
  tx.sign_all({key}, e.rng());

  Status st = node.submit_transaction(tx);
  if (st.ok())
    for (const auto& [op, out] : selected) state.reserved.insert(op);
  // Reserved outpoints are released lazily: once spent they vanish from
  // the UTXO set and future scans skip them anyway. Compact with a
  // doubling threshold so the scan cost stays amortized O(1) per payment.
  if (state.reserved.size() > state.reserved_compact_at) {
    for (auto it = state.reserved.begin(); it != state.reserved.end();) {
      it = node.chain().utxo_set().contains(*it) ? std::next(it)
                                                 : state.reserved.erase(it);
    }
    state.reserved_compact_at =
        std::max<std::size_t>(8192, state.reserved.size() * 2);
  }
  SubmitOutcome out{st};
  out.tx_id = obs::trace_id(tx.id());
  out.node = node.id();
  out.admitted = st.ok();  // pool add succeeded; inclusion comes later
  return out;
}

// `gas_price_override` > 0 pins the fee (traffic fee classes); 0 keeps
// the legacy random draw so pre-traffic RNG streams stay untouched.
SubmitOutcome submit_account_payment(Engine& e, std::size_t from,
                                     std::size_t to, chain::Amount amount,
                                     std::uint64_t gas_price_override = 0) {
  chain::ChainNode& node = e.node(0);
  ChainTraits::State& state = e.state();
  const crypto::KeyPair& key = e.account(from);

  chain::AccountTransaction tx;
  tx.to = e.account(to).account_id();
  tx.value = amount;
  tx.nonce = state.next_nonce[from];
  if (e.config().account_tx_data_mean > 0)
    tx.data_size = static_cast<std::uint32_t>(
        e.rng().uniform(2 * e.config().account_tx_data_mean + 1));
  tx.gas_limit = tx.intrinsic_gas();
  tx.gas_price = gas_price_override > 0
                     ? gas_price_override
                     : 1 + e.rng().uniform(10);  // a little fee-market variety
  tx.sign(key, e.rng());

  Status st = node.submit_transaction(tx);
  if (st.ok()) ++state.next_nonce[from];
  SubmitOutcome out{st};
  out.tx_id = obs::trace_id(tx.id());
  out.node = node.id();
  out.admitted = st.ok();
  return out;
}

// Fee-market eviction accounting shared by both evict handlers: retire
// the lifecycle entry (gating on it being live guards against double
// counts from reorg-reinject churn) and move the tx from admitted to
// evicted. Traffic runs own the workload — mixing schedule_workload with
// a capacity-capped pool would let closed-loop evictions skew these
// tallies (see DESIGN.md "Admission determinism contract").
void note_evicted(Engine& e, std::uint64_t id) {
  if (obs::LatencyTracker* t = e.lifecycle_tracker()) {
    if (!t->on_evict(id, e.simulation().now(), e.node(0).id()))
      return;  // not an engine-submitted tx (or already retired)
  }
  AdmissionStats& adm = e.admission();
  if (adm.admitted == 0) return;
  --adm.admitted;
  ++adm.evicted;
}

}  // namespace

ChainTraits::State ChainTraits::make_state(Config& config) {
  State state;
  state.next_nonce.assign(config.account_count, 0);
  return state;
}

std::string ChainTraits::system_name(const Config& config) {
  return config.params.name;
}

void ChainTraits::build_nodes(Engine& e) {
  const Config& config = e.config();

  // Workload accounts funded in the genesis allocation (paper §II-A: the
  // initial state is hard-coded in the first block).
  chain::GenesisSpec genesis;
  for (std::size_t i = 0; i < config.account_count; ++i) {
    const std::size_t coins =
        std::max<std::size_t>(1, config.genesis_outputs_per_account);
    for (std::size_t j = 0; j < coins; ++j)
      genesis.allocations.emplace_back(e.account(i).account_id(),
                                       config.initial_balance);
  }

  // PoS stake table shared by every node.
  std::vector<chain::StakeAllocation> stakes;
  if (config.params.consensus == chain::ConsensusKind::kProofOfStake) {
    for (std::size_t i = 0; i < config.validator_count; ++i) {
      const crypto::KeyPair key = crypto::KeyPair::from_seed(0x4000 + i);
      stakes.push_back(chain::StakeAllocation{
          key.account_id(), key.public_key(), config.stake_per_validator});
    }
  }

  const ClusterCrypto& crypto = e.crypto_handles();
  for (std::size_t i = 0; i < config.node_count; ++i) {
    chain::NodeConfig nc;
    nc.wallet_seed = 0x4000 + i;  // validators sign with their stake key
    if (config.params.consensus == chain::ConsensusKind::kProofOfWork &&
        i < config.miner_count) {
      nc.hashrate =
          config.total_hashrate / static_cast<double>(config.miner_count);
      nc.solve_pow = config.params.verify_pow;
    }
    nc.sigcache = crypto.sigcache;
    // Batch verification stages results in a sigcache; give each node a
    // private one if the cluster-wide cache is disabled.
    if (crypto.verify_pool && !nc.sigcache)
      nc.sigcache = std::make_shared<crypto::SignatureCache>(
          config.crypto.sigcache_capacity);
    nc.verify_pool = crypto.verify_pool;
    nc.parallel_validation = config.crypto.parallel_validation;
    nc.parallel_state = config.crypto.parallel_state;
    nc.probe = e.node_probe(i);
    nc.lifecycle = e.lifecycle_tracker();
    if (config.traffic.enabled) {
      nc.mempool_capacity_bytes = config.traffic.queue_capacity_bytes;
      nc.mempool_replacement = true;
    }
    // Every node gets a store (memory mode by default) so storage.* gauges
    // appear in every report and the memory/disk differential stays a pure
    // config flip (ISSUE 9).
    nc.store = std::make_shared<storage::LedgerStore>(
        config.storage, system_name(config) + "-s" +
                            std::to_string(config.seed) + "/node" +
                            std::to_string(i));
    nc.store->attach_probe(e.node_probe(i));
    e.add_node(std::make_unique<chain::ChainNode>(
        e.network(), config.params, genesis, nc, e.rng().fork(), stakes));
  }
}

void ChainTraits::after_topology(Engine& e) {
  if (!e.config().traffic.enabled) return;
  // Node 0 takes every engine submission, so only its evict handlers
  // feed the admission tallies; replica pools evict silently.
  State& st = e.state();
  st.account_index.reserve(e.account_count());
  for (std::size_t i = 0; i < e.account_count(); ++i)
    st.account_index.emplace(e.account(i).account_id(), i);

  e.node(0).utxo_pool().set_evict_handler(
      [&e](const chain::UtxoTransaction& tx) {
        // Release the wallet's coin reservations so the sender can
        // rebuild the payment from the same outpoints.
        ChainTraits::State& s = e.state();
        for (const chain::TxIn& in : tx.inputs) s.reserved.erase(in.prevout);
        note_evicted(e, obs::trace_id(tx.id()));
      });
  e.node(0).account_pool().set_evict_handler(
      [&e](const chain::AccountTransaction& tx) {
        // Wallet nonce rollback: a capacity eviction frees the nonce slot
        // (tail eviction — nothing above it is pooled), so the sender
        // re-uses it and its queue stays gap-free. A replacement leaves
        // the slot occupied; keep the wallet counter where it is.
        ChainTraits::State& s = e.state();
        auto idx = s.account_index.find(tx.from);
        if (idx != s.account_index.end() &&
            !e.node(0).account_pool().contains_nonce(tx.from, tx.nonce) &&
            tx.nonce < s.next_nonce[idx->second])
          s.next_nonce[idx->second] = tx.nonce;
        note_evicted(e, obs::trace_id(tx.id()));
      });
}

// Chain confirmation (depth-k) is detected by ChainNode's block-connect
// hook, which calls the tracker directly; nothing extra to install.
void ChainTraits::wire_lifecycle(Engine&) {}

void ChainTraits::start(Engine& e) {
  for (std::size_t i = 0; i < e.node_count(); ++i) e.node(i).start();
}

SubmitOutcome ChainTraits::submit_payment(Engine& e, std::size_t from,
                                          std::size_t to, Amount amount) {
  return e.config().params.tx_model == chain::TxModel::kUtxo
             ? submit_utxo_payment(e, from, to, amount)
             : submit_account_payment(e, from, to, amount);
}

void ChainTraits::submit_traffic(Engine& e, const TrafficEvent& ev) {
  const TrafficConfig& tc = e.config().traffic;
  const std::uint64_t mult = fee_class_multiplier(ev.fee_class);
  const SubmitOutcome out =
      e.config().params.tx_model == chain::TxModel::kUtxo
          ? submit_utxo_payment(
                e, ev.from, ev.to, static_cast<chain::Amount>(ev.amount),
                static_cast<chain::Amount>(tc.base_fee * mult))
          : submit_account_payment(e, ev.from, ev.to,
                                   static_cast<chain::Amount>(ev.amount),
                                   mult);
  AdmissionStats& adm = e.admission();
  if (out.status.ok()) {
    ++adm.admitted;
    if (obs::LatencyTracker* t = e.lifecycle_tracker()) {
      const double now = e.simulation().now();
      t->on_submit(out.tx_id, now, out.node,
                   static_cast<std::uint64_t>(ev.from), ev.fee_class);
      if (out.admitted) t->on_admit(out.tx_id, now, out.node);
      if (out.included) t->on_include(out.tx_id, now, out.node);
    }
  } else if (out.status.error().code == "mempool-full") {
    ++adm.backpressured;
  } else {
    ++adm.rejected;
    e.rejected_counter().inc();
  }
}

void ChainTraits::set_parallel_validation(Engine& e, bool on) {
  for (std::size_t i = 0; i < e.node_count(); ++i)
    e.node(i).chain().set_parallel_validation(on);
}

void ChainTraits::set_parallel_state(Engine& e, bool on) {
  for (std::size_t i = 0; i < e.node_count(); ++i)
    e.node(i).chain().set_parallel_state(on);
}

void ChainTraits::fill_metrics(const Engine& e, RunMetrics& m) {
  const chain::Blockchain& chain = e.node(0).chain();
  // Included: payments on the active chain (excludes coinbases).
  std::uint64_t included = 0, confirmed = 0;
  for (std::uint32_t h = 1; h <= chain.height(); ++h) {
    const chain::Block* b = chain.at_height(h);
    const std::uint64_t txs =
        b->is_utxo() ? b->tx_count() - 1 : b->tx_count();
    included += txs;
    if (chain.height() - h + 1 >= chain.params().confirmation_depth)
      confirmed += txs;
  }
  m.included = included;
  m.confirmed = confirmed;
  m.pending_end = e.node(0).mempool_size();

  for (std::size_t i = 0; i < e.node_count(); ++i)
    m.blocks_produced += e.node(i).blocks_mined();
  // Latencies live on node 0 (the submission node).
  m.inclusion_latency = e.node(0).timings().inclusion_latency;
  m.confirmation_latency = e.node(0).timings().confirmation_latency;

  const chain::ForkStats& f = chain.fork_stats();
  m.reorgs = f.reorgs;
  m.orphaned_blocks = f.side_chain_blocks + f.blocks_disconnected;
  m.max_reorg_depth = f.max_reorg_depth;
  m.stored_bytes = chain.storage().total();
}

bool ChainTraits::converged(const Engine& e) {
  const chain::BlockHash tip = e.node(0).chain().tip_hash();
  for (std::size_t i = 0; i < e.node_count(); ++i)
    if (!(e.node(i).chain().tip_hash() == tip)) return false;
  return true;
}

}  // namespace dlt::core
