#include "core/chain_cluster.hpp"

#include <cassert>

namespace dlt::core {

namespace {

using Engine = ClusterEngine<ChainTraits>;

SubmitOutcome submit_utxo_payment(Engine& e, std::size_t from,
                                  std::size_t to, chain::Amount amount) {
  chain::ChainNode& node = e.node(0);
  ChainTraits::State& state = e.state();
  const crypto::KeyPair& key = e.account(from);
  const chain::Amount fee = 1000;

  // Coin selection against the reference node's chainstate, skipping
  // outpoints already committed to in-flight transactions. for_each_owned
  // walks the same wallet-index order as find_owned but stops as soon as
  // enough value is gathered, instead of materializing the whole wallet.
  std::vector<std::pair<chain::Outpoint, chain::TxOut>> selected;
  chain::Amount gathered = 0;
  node.chain().utxo_set().for_each_owned(
      key.account_id(),
      [&](const chain::Outpoint& op, const chain::TxOut& out) {
        if (state.reserved.count(op)) return true;
        selected.emplace_back(op, out);
        gathered += out.value;
        return gathered < amount + fee;
      });
  if (gathered < amount + fee)
    return SubmitOutcome{
        make_error("insufficient-funds", "wallet cannot cover amount+fee")};

  chain::UtxoTransaction tx;
  for (const auto& [op, out] : selected)
    tx.inputs.push_back(chain::TxIn{op, key.public_key(), {}});
  tx.outputs.push_back(
      chain::TxOut{amount, e.account(to).account_id()});
  if (gathered > amount + fee)
    tx.outputs.push_back(
        chain::TxOut{gathered - amount - fee, key.account_id()});
  tx.sign_all({key}, e.rng());

  Status st = node.submit_transaction(tx);
  if (st.ok())
    for (const auto& [op, out] : selected) state.reserved.insert(op);
  // Reserved outpoints are released lazily: once spent they vanish from
  // the UTXO set and future scans skip them anyway. Compact with a
  // doubling threshold so the scan cost stays amortized O(1) per payment.
  if (state.reserved.size() > state.reserved_compact_at) {
    for (auto it = state.reserved.begin(); it != state.reserved.end();) {
      it = node.chain().utxo_set().contains(*it) ? std::next(it)
                                                 : state.reserved.erase(it);
    }
    state.reserved_compact_at =
        std::max<std::size_t>(8192, state.reserved.size() * 2);
  }
  SubmitOutcome out{st};
  out.tx_id = obs::trace_id(tx.id());
  out.node = node.id();
  out.admitted = st.ok();  // pool add succeeded; inclusion comes later
  return out;
}

SubmitOutcome submit_account_payment(Engine& e, std::size_t from,
                                     std::size_t to, chain::Amount amount) {
  chain::ChainNode& node = e.node(0);
  ChainTraits::State& state = e.state();
  const crypto::KeyPair& key = e.account(from);

  chain::AccountTransaction tx;
  tx.to = e.account(to).account_id();
  tx.value = amount;
  tx.nonce = state.next_nonce[from];
  if (e.config().account_tx_data_mean > 0)
    tx.data_size = static_cast<std::uint32_t>(
        e.rng().uniform(2 * e.config().account_tx_data_mean + 1));
  tx.gas_limit = tx.intrinsic_gas();
  tx.gas_price = 1 + e.rng().uniform(10);  // a little fee-market variety
  tx.sign(key, e.rng());

  Status st = node.submit_transaction(tx);
  if (st.ok()) ++state.next_nonce[from];
  SubmitOutcome out{st};
  out.tx_id = obs::trace_id(tx.id());
  out.node = node.id();
  out.admitted = st.ok();
  return out;
}

}  // namespace

ChainTraits::State ChainTraits::make_state(Config& config) {
  State state;
  state.next_nonce.assign(config.account_count, 0);
  return state;
}

std::string ChainTraits::system_name(const Config& config) {
  return config.params.name;
}

void ChainTraits::build_nodes(Engine& e) {
  const Config& config = e.config();

  // Workload accounts funded in the genesis allocation (paper §II-A: the
  // initial state is hard-coded in the first block).
  chain::GenesisSpec genesis;
  for (std::size_t i = 0; i < config.account_count; ++i) {
    const std::size_t coins =
        std::max<std::size_t>(1, config.genesis_outputs_per_account);
    for (std::size_t j = 0; j < coins; ++j)
      genesis.allocations.emplace_back(e.account(i).account_id(),
                                       config.initial_balance);
  }

  // PoS stake table shared by every node.
  std::vector<chain::StakeAllocation> stakes;
  if (config.params.consensus == chain::ConsensusKind::kProofOfStake) {
    for (std::size_t i = 0; i < config.validator_count; ++i) {
      const crypto::KeyPair key = crypto::KeyPair::from_seed(0x4000 + i);
      stakes.push_back(chain::StakeAllocation{
          key.account_id(), key.public_key(), config.stake_per_validator});
    }
  }

  const ClusterCrypto& crypto = e.crypto_handles();
  for (std::size_t i = 0; i < config.node_count; ++i) {
    chain::NodeConfig nc;
    nc.wallet_seed = 0x4000 + i;  // validators sign with their stake key
    if (config.params.consensus == chain::ConsensusKind::kProofOfWork &&
        i < config.miner_count) {
      nc.hashrate =
          config.total_hashrate / static_cast<double>(config.miner_count);
      nc.solve_pow = config.params.verify_pow;
    }
    nc.sigcache = crypto.sigcache;
    // Batch verification stages results in a sigcache; give each node a
    // private one if the cluster-wide cache is disabled.
    if (crypto.verify_pool && !nc.sigcache)
      nc.sigcache = std::make_shared<crypto::SignatureCache>(
          config.crypto.sigcache_capacity);
    nc.verify_pool = crypto.verify_pool;
    nc.parallel_validation = config.crypto.parallel_validation;
    nc.parallel_state = config.crypto.parallel_state;
    nc.probe = e.node_probe(i);
    nc.lifecycle = e.lifecycle_tracker();
    // Every node gets a store (memory mode by default) so storage.* gauges
    // appear in every report and the memory/disk differential stays a pure
    // config flip (ISSUE 9).
    nc.store = std::make_shared<storage::LedgerStore>(
        config.storage, system_name(config) + "-s" +
                            std::to_string(config.seed) + "/node" +
                            std::to_string(i));
    nc.store->attach_probe(e.node_probe(i));
    e.add_node(std::make_unique<chain::ChainNode>(
        e.network(), config.params, genesis, nc, e.rng().fork(), stakes));
  }
}

void ChainTraits::after_topology(Engine&) {}

// Chain confirmation (depth-k) is detected by ChainNode's block-connect
// hook, which calls the tracker directly; nothing extra to install.
void ChainTraits::wire_lifecycle(Engine&) {}

void ChainTraits::start(Engine& e) {
  for (std::size_t i = 0; i < e.node_count(); ++i) e.node(i).start();
}

SubmitOutcome ChainTraits::submit_payment(Engine& e, std::size_t from,
                                          std::size_t to, Amount amount) {
  return e.config().params.tx_model == chain::TxModel::kUtxo
             ? submit_utxo_payment(e, from, to, amount)
             : submit_account_payment(e, from, to, amount);
}

void ChainTraits::set_parallel_validation(Engine& e, bool on) {
  for (std::size_t i = 0; i < e.node_count(); ++i)
    e.node(i).chain().set_parallel_validation(on);
}

void ChainTraits::set_parallel_state(Engine& e, bool on) {
  for (std::size_t i = 0; i < e.node_count(); ++i)
    e.node(i).chain().set_parallel_state(on);
}

void ChainTraits::fill_metrics(const Engine& e, RunMetrics& m) {
  const chain::Blockchain& chain = e.node(0).chain();
  // Included: payments on the active chain (excludes coinbases).
  std::uint64_t included = 0, confirmed = 0;
  for (std::uint32_t h = 1; h <= chain.height(); ++h) {
    const chain::Block* b = chain.at_height(h);
    const std::uint64_t txs =
        b->is_utxo() ? b->tx_count() - 1 : b->tx_count();
    included += txs;
    if (chain.height() - h + 1 >= chain.params().confirmation_depth)
      confirmed += txs;
  }
  m.included = included;
  m.confirmed = confirmed;
  m.pending_end = e.node(0).mempool_size();

  for (std::size_t i = 0; i < e.node_count(); ++i)
    m.blocks_produced += e.node(i).blocks_mined();
  // Latencies live on node 0 (the submission node).
  m.inclusion_latency = e.node(0).timings().inclusion_latency;
  m.confirmation_latency = e.node(0).timings().confirmation_latency;

  const chain::ForkStats& f = chain.fork_stats();
  m.reorgs = f.reorgs;
  m.orphaned_blocks = f.side_chain_blocks + f.blocks_disconnected;
  m.max_reorg_depth = f.max_reorg_depth;
  m.stored_bytes = chain.storage().total();
}

bool ChainTraits::converged(const Engine& e) {
  const chain::BlockHash tip = e.node(0).chain().tip_hash();
  for (std::size_t i = 0; i < e.node_count(); ++i)
    if (!(e.node(i).chain().tip_hash() == tip)) return false;
  return true;
}

}  // namespace dlt::core
