// Open-loop heavy-traffic workload engine + admission control (ISSUE 10).
//
// The closed-loop workloads (core/workload.hpp) pre-draw a payment list
// whose offered load tracks achieved TPS by construction. TrafficSource
// instead generates arrivals on sim-time events *independent of ledger
// progress* — the open-loop shape production ledgers face — from three
// arrival processes:
//
//   poisson — homogeneous rate r
//   bursty  — 2-state MMPP: exponential ON/OFF dwells; the rate is
//             r·burst_multiplier while ON and r·off_multiplier while OFF
//   diurnal — sinusoidal modulation r·(1 + A·sin(2πt/period))
//
// all realized by Lewis–Shedler thinning against the process's peak rate,
// so every process draws from ONE dedicated Rng stream (config.traffic.seed,
// split from nothing else — see DESIGN.md "Admission determinism contract").
// Senders are Zipf-distributed (zipf_s, 0 = uniform) and receivers skew
// onto a small hot set (hot_receiver_fraction/hot_receiver_count) to shape
// read/write-key conflicts for the ConflictPartitioner.
//
// Each arrival carries a fee class k ∈ [0, fee_class_count): the fee paid
// is base_fee · fee_class_multiplier(k) (geometric ladder 1, 4, 16, ...),
// and obs::LatencyTracker buckets confirmation latency per class into
// latency.class.<k>.submit_to_confirm.
//
// Admission control:
//   chain   — chain::UtxoMempool / chain::AccountMempool grow a
//             byte-capacity fee market (lowest-fee-rate eviction,
//             opt-in replacement; see chain/mempool.hpp).
//   lattice — per-owner-node AdmissionQueue (below) drained on a fixed
//   tangle    service cadence (drain_interval / drain_burst).
//
// Outcomes tally into AdmissionStats, which must reconcile exactly:
//   submitted == admitted + rejected + evicted + backpressured
// (admitted counts transactions still standing: an eviction or a
// drain-time validation failure moves a tx out of admitted).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "support/rng.hpp"

namespace dlt::core {

enum class ArrivalProcess : std::uint8_t {
  kPoisson = 0,
  kBursty,
  kDiurnal,
};

const char* to_string(ArrivalProcess process);

struct TrafficConfig {
  /// Master switch: off keeps every cluster byte-identical to the
  /// pre-traffic engine (no extra RNG draws, no mempool caps).
  bool enabled = false;

  ArrivalProcess process = ArrivalProcess::kPoisson;
  /// Base arrival rate r in tx/s (bursty/diurnal modulate around it).
  double rate = 10.0;
  /// Arrival-window length in sim seconds; generation stops after it.
  double duration = 100.0;

  // Bursty (MMPP-2) shape: rate multiplier while a burst is ON, the
  // trickle multiplier while OFF, and the exponential dwell means.
  double burst_multiplier = 8.0;
  double off_multiplier = 0.25;
  double burst_on_mean = 2.0;
  double burst_off_mean = 10.0;

  // Diurnal shape: r(t) = rate · (1 + amplitude · sin(2πt/period)).
  double diurnal_period = 60.0;
  double diurnal_amplitude = 0.8;

  /// Sender skew: Zipf exponent over the workload accounts (0 = uniform).
  double zipf_s = 1.0;
  /// Receiver (write-key) skew: with this probability the receiver is
  /// drawn uniformly from the first hot_receiver_count accounts.
  double hot_receiver_fraction = 0.2;
  std::size_t hot_receiver_count = 4;

  /// Number of fee classes; class k pays base_fee·fee_class_multiplier(k).
  std::size_t fee_class_count = 3;
  std::uint64_t base_fee = 1000;

  std::uint64_t min_amount = 1;
  std::uint64_t max_amount = 100;

  // Admission-control shape.
  /// Byte capacity of each admission pipeline: the chain mempool cap and
  /// the per-node lattice/tangle AdmissionQueue cap. 0 = unlimited.
  std::uint64_t queue_capacity_bytes = 64 * 1024;
  /// Nominal accounting size of one queued lattice/tangle payment (the
  /// chain uses real serialized sizes).
  std::uint64_t payment_bytes = 168;
  /// Lattice/tangle queue service cadence: every drain_interval seconds a
  /// non-empty queue issues up to drain_burst payments into the ledger.
  double drain_interval = 0.2;
  std::size_t drain_burst = 4;

  /// Dedicated arrival RNG stream seed — deliberately NOT forked from the
  /// cluster seed chain, so enabling traffic never shifts node/network
  /// draws (DESIGN.md "Admission determinism contract").
  std::uint64_t seed = 0x7ea7f1cULL;
};

/// Fee multiplier of class k: geometric ladder 1, 4, 16, ... (k clamps
/// at 31 to keep the shift defined).
std::uint64_t fee_class_multiplier(std::uint32_t fee_class);

/// DLT_TRAFFIC_* environment overrides (bench/gate knobs):
///   DLT_TRAFFIC_PROCESS=poisson|bursty|diurnal
///   DLT_TRAFFIC_RATE=<tx/s>          DLT_TRAFFIC_DURATION=<s>
///   DLT_TRAFFIC_ZIPF_S=<exponent>    DLT_TRAFFIC_CLASSES=<n>
///   DLT_TRAFFIC_QUEUE_BYTES=<bytes>  DLT_TRAFFIC_SEED=<u64>
/// Unset or unparsable values leave `config` untouched.
void apply_env_traffic(TrafficConfig& config);

/// One generated arrival, in seconds relative to the traffic start.
struct TrafficEvent {
  double time = 0.0;
  std::size_t from = 0;
  std::size_t to = 0;
  std::uint64_t amount = 1;
  std::uint32_t fee_class = 0;
};

/// Pull-based arrival generator. next() advances the single arrival Rng
/// by a fixed per-arrival draw schedule (thinning gap [+ accept draw for
/// modulated processes], sender, receiver, amount, fee class) so the
/// event stream is a pure function of (config, account_count).
class TrafficSource {
 public:
  TrafficSource(const TrafficConfig& config, std::size_t account_count);

  /// Produces the next arrival; false once `duration` is exhausted.
  bool next(TrafficEvent& event);

  /// The thinning envelope rate (peak of the modulated process).
  double peak_rate() const { return peak_rate_; }

 private:
  double rate_at(double t);  // advances the bursty state machine to t

  TrafficConfig cfg_;
  std::size_t accounts_;
  Rng rng_;
  double t_ = 0.0;
  double peak_rate_ = 0.0;
  // Bursty state machine (lazily advanced by rate_at).
  bool burst_on_ = false;
  double next_switch_ = 0.0;
};

/// Admission outcome tallies. The reconciliation identity is the
/// correctness contract every test/gate asserts.
struct AdmissionStats {
  std::uint64_t submitted = 0;      // arrivals fired into the cluster
  std::uint64_t admitted = 0;       // standing in a mempool/queue or beyond
  std::uint64_t rejected = 0;       // refused by validation (bad nonce, ...)
  std::uint64_t evicted = 0;        // admitted, then displaced by fee market
  std::uint64_t backpressured = 0;  // refused at capacity (fee too low)

  bool reconciles() const {
    return submitted == admitted + rejected + evicted + backpressured;
  }
};

/// A payment parked in a lattice/tangle admission queue.
struct QueuedPayment {
  double submit_time = 0.0;
  std::size_t from = 0;
  std::size_t to = 0;
  std::uint64_t amount = 1;
  std::uint32_t fee_class = 0;
  std::uint64_t fee = 0;
  std::uint64_t bytes = 0;
};

/// Byte-capacity fee-market queue for the ledgers without a real mempool
/// (lattice accounts, tangle issuers). One ordered index serves both
/// ends: drain pops the highest fee rate (FIFO among ties), eviction
/// removes the lowest fee rate (newest among ties) — the same canonical
/// tiebreaks as chain::UtxoMempool, so admission behaviour is
/// paradigm-uniform and independent of any container iteration order.
class AdmissionQueue {
 public:
  AdmissionQueue() = default;
  explicit AdmissionQueue(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  enum class Push : std::uint8_t { kAdmitted, kBackpressured };

  /// Admits `p`, evicting strictly-lower-fee-rate victims into `evicted`
  /// (newest-lowest first) as needed; backpressures when `p` cannot fit
  /// without displacing an equal-or-better payer.
  Push push(const QueuedPayment& p, std::vector<QueuedPayment>* evicted);

  /// Pops the best payment (highest fee rate, FIFO ties); false if empty.
  bool pop(QueuedPayment& out);

  bool empty() const { return by_rate_.empty(); }
  std::size_t size() const { return by_rate_.size(); }
  std::uint64_t used_bytes() const { return used_; }
  std::uint64_t capacity_bytes() const { return capacity_; }

 private:
  struct Key {
    double rate;        // fee per byte
    std::uint64_t seq;  // admission order, unique
  };
  struct Order {
    bool operator()(const Key& a, const Key& b) const {
      if (a.rate != b.rate) return a.rate > b.rate;  // best payer first
      return a.seq < b.seq;                          // FIFO among ties
    }
  };

  std::map<Key, QueuedPayment, Order> by_rate_;
  std::uint64_t capacity_ = 0;
  std::uint64_t used_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dlt::core
