#include "core/workload.hpp"

namespace dlt::core {

std::vector<PaymentEvent> generate_payments(const WorkloadConfig& config,
                                            Rng& rng) {
  std::vector<PaymentEvent> events;
  const double mean_gap = 1.0 / config.tx_rate;
  double t = 0.0;
  for (;;) {
    t += rng.exponential(mean_gap);
    if (t >= config.duration) break;
    PaymentEvent ev;
    ev.time = t;
    auto pick = [&]() -> std::size_t {
      if (config.pick == AccountPick::kZipf)
        return rng.zipf(config.account_count, config.zipf_s);
      return rng.uniform(config.account_count);
    };
    ev.from = pick();
    do {
      ev.to = pick();
    } while (ev.to == ev.from && config.account_count > 1);
    ev.amount = rng.uniform_range(config.min_amount, config.max_amount);
    events.push_back(ev);
  }
  return events;
}

std::vector<PaymentEvent> generate_spam(std::size_t attacker,
                                        std::size_t victim, std::size_t count,
                                        double start, double spacing) {
  std::vector<PaymentEvent> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    PaymentEvent ev;
    ev.time = start + static_cast<double>(i) * spacing;
    ev.from = attacker;
    ev.to = victim;
    ev.amount = 1;
    events.push_back(ev);
  }
  return events;
}

}  // namespace dlt::core
