#include "core/lattice_cluster.hpp"

#include <cassert>

namespace dlt::core {

LatticeCluster::LatticeCluster(LatticeClusterConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      crypto_(make_cluster_crypto(config_.crypto)),
      obs_(config_.obs),
      genesis_key_(crypto::KeyPair::from_seed(0x6e5)) {
  submitted_ = &obs_.metrics.counter("cluster.submitted");
  rejected_ = &obs_.metrics.counter("cluster.rejected");

  if (config_.supply == 0) {
    config_.supply = config_.initial_balance *
                     static_cast<lattice::Amount>(config_.account_count) *
                     5 / 4;
  }
  net_ = std::make_unique<net::Network>(sim_, rng_.fork());
  net_->set_probe(obs_.probe());

  accounts_ = make_workload_accounts(config_.account_count);

  for (std::size_t i = 0; i < config_.node_count; ++i) {
    lattice::LatticeNodeConfig nc;
    if (i < config_.roles.size()) nc.role = config_.roles[i];
    nc.solve_work = config_.params.verify_work;
    nc.sigcache = crypto_.sigcache;
    nc.verify_pool = crypto_.verify_pool;
    nc.parallel_validation = config_.crypto.parallel_validation;
    nc.probe = obs_.probe();
    nodes_.push_back(std::make_unique<lattice::LatticeNode>(
        *net_, config_.params, genesis_key_, config_.supply, nc,
        rng_.fork()));
  }

  // Voting identities. Node 0's is the genesis account itself, so the
  // genesis weight votes from the start; every other node gets a dedicated
  // representative account that accumulates weight via delegation.
  nodes_[0]->add_account(genesis_key_);
  for (std::size_t i = 1; i < config_.node_count; ++i)
    nodes_[i]->add_account(crypto::KeyPair::from_seed(0x7000 + i));

  // Workload accounts are controlled by their owner node.
  for (std::size_t i = 0; i < config_.account_count; ++i)
    owner_of(i).add_account(accounts_[i]);

  std::vector<net::NodeId> ids;
  for (const auto& n : nodes_) ids.push_back(n->id());
  build_topology(*net_, ids, config_.topology, config_.link,
                 config_.random_degree, rng_);

  for (auto& n : nodes_) n->start();
}

void LatticeCluster::fund_accounts() {
  // Genesis account showers every workload account (send blocks); owner
  // nodes auto-receive (open blocks) as the sends arrive -- Fig. 3 flow.
  for (std::size_t i = 0; i < config_.account_count; ++i) {
    auto sent = nodes_[0]->send(genesis_key_, accounts_[i].account_id(),
                                config_.initial_balance);
    assert(sent);
    (void)sent;
  }
  // Let sends propagate and receives settle.
  run_for(30.0);

  // Delegate each account's weight to a representative, spreading voting
  // weight across representative_count nodes (kChange blocks, §III-B).
  // Delegations go to nodes 1..R (never the genesis holder), so voting
  // weight is spread across representatives and quorum requires real
  // network rounds.
  const std::size_t reps = std::max<std::size_t>(
      1, std::min(config_.representative_count, nodes_.size() - 1));
  for (std::size_t i = 0; i < config_.account_count; ++i) {
    lattice::LatticeNode& owner = owner_of(i);
    const std::size_t rep_node = 1 + (i % reps);
    const crypto::KeyPair* rep = nodes_[rep_node]->representative_key();
    assert(rep);
    (void)owner.change_representative(accounts_[i], rep->account_id());
  }
  run_for(30.0);
}

Status LatticeCluster::submit_payment(std::size_t from, std::size_t to,
                                      lattice::Amount amount) {
  lattice::LatticeNode& owner = owner_of(from);
  auto res = owner.send(accounts_[from], accounts_[to].account_id(), amount);
  if (res) {
    submitted_->inc();
    return Status::success();
  }
  rejected_->inc();
  return res.error();
}

void LatticeCluster::schedule_workload(
    const std::vector<PaymentEvent>& events) {
  for (const PaymentEvent& ev : events) {
    sim_.schedule_at(sim_.now() + ev.time, [this, ev] {
      (void)submit_payment(ev.from, ev.to, ev.amount);
    });
  }
}

void LatticeCluster::run_for(double seconds) {
  sim_.run_until(sim_.now() + seconds);
}

void LatticeCluster::set_parallel_validation(bool on) {
  for (auto& n : nodes_) n->ledger().set_parallel_validation(on);
}

RunMetrics LatticeCluster::metrics() const {
  RunMetrics m;
  m.system = "nano-like";
  m.sim_duration = sim_.now();
  m.submitted = submitted_->value();
  m.rejected = rejected_->value();

  const lattice::Ledger& ledger = nodes_[0]->ledger();
  // Included payments = send blocks in the reference ledger.
  std::uint64_t sends = 0;
  for (std::size_t i = 0; i < config_.account_count; ++i) {
    const lattice::AccountInfo* info =
        ledger.account(accounts_[i].account_id());
    if (!info) continue;
    for (const lattice::LatticeBlock& b : info->chain)
      if (b.type == lattice::BlockType::kSend) ++sends;
  }
  // Plus sends from the genesis chain (funding).
  if (const lattice::AccountInfo* g =
          ledger.account(genesis_key_.account_id())) {
    for (const lattice::LatticeBlock& b : g->chain)
      if (b.type == lattice::BlockType::kSend) ++sends;
  }
  m.included = sends;
  m.confirmed = nodes_[0]->confirmations().blocks_confirmed;
  m.pending_end = ledger.pending().size();  // unsettled sends (Fig. 3)

  m.confirmation_latency = nodes_[0]->confirmations().time_to_confirm;
  m.blocks_produced = ledger.block_count();
  m.stored_bytes = ledger.storage().total();
  m.messages = net_->traffic().messages;
  m.message_bytes = net_->traffic().bytes;
  return m;
}

bool LatticeCluster::converged() const {
  for (std::size_t i = 0; i < config_.account_count; ++i) {
    auto head0 = nodes_[0]->ledger().head_of(accounts_[i].account_id());
    for (std::size_t n = 1; n < nodes_.size(); ++n) {
      if (nodes_[n]->config().role == lattice::NodeRole::kLight) continue;
      if (nodes_[n]->ledger().head_of(accounts_[i].account_id()) != head0)
        return false;
    }
  }
  return true;
}

}  // namespace dlt::core
