#include "core/lattice_cluster.hpp"

#include <cassert>

namespace dlt::core {

namespace {

using Engine = ClusterEngine<LatticeTraits>;

lattice::LatticeNode& owner_of(Engine& e, std::size_t account_index) {
  return e.node(account_index % e.node_count());
}

// ---- Open-loop admission pipeline (ISSUE 10) ----------------------------
// The lattice has no mempool: send() applies synchronously. Admission
// control therefore lives in a per-owner-node AdmissionQueue in front of
// the ledger, drained on a fixed service cadence (drain_interval /
// drain_burst) so offered load past the service rate queues, evicts, or
// backpressures instead of being absorbed instantly.

void ensure_queues(Engine& e) {
  LatticeTraits::State& st = e.state();
  if (!st.queues.empty()) return;
  st.queues.assign(e.node_count(),
                   AdmissionQueue(e.config().traffic.queue_capacity_bytes));
  st.drain_armed.assign(e.node_count(), 0);
}

void arm_drain(Engine& e, std::size_t owner);

void drain_queue(Engine& e, std::size_t owner) {
  LatticeTraits::State& st = e.state();
  st.drain_armed[owner] = 0;
  AdmissionQueue& q = st.queues[owner];
  AdmissionStats& adm = e.admission();
  obs::LatencyTracker* tracker = e.lifecycle_tracker();
  const std::size_t burst =
      std::max<std::size_t>(1, e.config().traffic.drain_burst);
  for (std::size_t i = 0; i < burst; ++i) {
    QueuedPayment p;
    if (!q.pop(p)) break;
    lattice::LatticeNode& node = e.node(owner);
    auto res = node.send(e.account(p.from), e.account(p.to).account_id(),
                         static_cast<lattice::Amount>(p.amount));
    if (!res) {
      // Drain-time validation failure (insufficient balance): the tx
      // leaves the admitted population as an explicit rejection.
      if (adm.admitted > 0) --adm.admitted;
      ++adm.rejected;
      e.rejected_counter().inc();
      continue;
    }
    if (tracker) {
      const double now = e.simulation().now();
      const std::uint64_t id = obs::trace_id(*res);
      // Submit is stamped at ENQUEUE time, so submit→confirm includes
      // the admission-queue wait — the open-loop latency of interest.
      tracker->on_submit(id, p.submit_time, node.id(),
                         static_cast<std::uint64_t>(p.from), p.fee_class);
      tracker->on_admit(id, now, node.id());
      tracker->on_include(id, now, node.id());
    }
  }
  if (!q.empty()) arm_drain(e, owner);
}

void arm_drain(Engine& e, std::size_t owner) {
  LatticeTraits::State& st = e.state();
  if (st.drain_armed[owner]) return;
  st.drain_armed[owner] = 1;
  e.simulation().schedule_in(e.config().traffic.drain_interval,
                             [&e, owner] { drain_queue(e, owner); });
}

}  // namespace

LatticeTraits::State LatticeTraits::make_state(Config& config) {
  if (config.supply == 0) {
    config.supply = config.initial_balance *
                    static_cast<lattice::Amount>(config.account_count) * 5 /
                    4;
  }
  return State{};
}

std::string LatticeTraits::system_name(const Config&) { return "nano-like"; }

void LatticeTraits::build_nodes(Engine& e) {
  const Config& config = e.config();
  const ClusterCrypto& crypto = e.crypto_handles();
  const crypto::KeyPair& genesis_key = e.state().genesis_key;

  for (std::size_t i = 0; i < config.node_count; ++i) {
    lattice::LatticeNodeConfig nc;
    if (i < config.roles.size()) nc.role = config.roles[i];
    nc.solve_work = config.params.verify_work;
    nc.sigcache = crypto.sigcache;
    nc.verify_pool = crypto.verify_pool;
    nc.parallel_validation = config.crypto.parallel_validation;
    nc.parallel_state = config.crypto.parallel_state;
    nc.probe = e.node_probe(i);
    nc.lifecycle = e.lifecycle_tracker();
    // Every node gets a store (memory mode by default) so storage.* gauges
    // appear in every report and the memory/disk differential stays a pure
    // config flip (ISSUE 9).
    nc.store = std::make_shared<storage::LedgerStore>(
        config.storage, system_name(config) + "-s" +
                            std::to_string(config.seed) + "/node" +
                            std::to_string(i));
    nc.store->attach_probe(e.node_probe(i));
    e.add_node(std::make_unique<lattice::LatticeNode>(
        e.network(), config.params, genesis_key, config.supply, nc,
        e.rng().fork()));
  }

  // Voting identities. Node 0's is the genesis account itself, so the
  // genesis weight votes from the start; every other node gets a dedicated
  // representative account that accumulates weight via delegation.
  e.node(0).add_account(genesis_key);
  for (std::size_t i = 1; i < config.node_count; ++i)
    e.node(i).add_account(crypto::KeyPair::from_seed(0x7000 + i));

  // Workload accounts are controlled by their owner node.
  for (std::size_t i = 0; i < config.account_count; ++i)
    owner_of(e, i).add_account(e.account(i));
}

void LatticeTraits::after_topology(Engine& e) {
  for (std::size_t i = 0; i < e.node_count(); ++i) e.node(i).start();
}

// Lattice nodes auto-start during construction (after_topology); an
// explicit start() is a no-op kept for API symmetry with the other ledgers.
void LatticeTraits::start(Engine&) {}

// Lattice confirmation (vote quorum) is detected by each node's vote
// tally, which calls the tracker directly — the first replica to observe
// quorum stamps the confirmation; nothing extra to install.
void LatticeTraits::wire_lifecycle(Engine&) {}

SubmitOutcome LatticeTraits::submit_payment(Engine& e, std::size_t from,
                                            std::size_t to, Amount amount) {
  lattice::LatticeNode& owner = owner_of(e, from);
  auto res =
      owner.send(e.account(from), e.account(to).account_id(), amount);
  if (!res) return SubmitOutcome{res.error()};
  SubmitOutcome out;
  out.tx_id = obs::trace_id(*res);
  out.node = owner.id();
  // send() built, applied and gossiped the block before returning: the
  // lattice has no mempool, so admit and include coincide with submit.
  out.admitted = true;
  out.included = true;
  return out;
}

void LatticeTraits::submit_traffic(Engine& e, const TrafficEvent& ev) {
  const TrafficConfig& tc = e.config().traffic;
  ensure_queues(e);
  const std::size_t owner = ev.from % e.node_count();
  QueuedPayment p;
  p.submit_time = e.simulation().now();
  p.from = ev.from;
  p.to = ev.to;
  p.amount = ev.amount;
  p.fee_class = ev.fee_class;
  p.fee = tc.base_fee * fee_class_multiplier(ev.fee_class);
  p.bytes = tc.payment_bytes;
  std::vector<QueuedPayment> evicted;
  const auto res = e.state().queues[owner].push(p, &evicted);
  AdmissionStats& adm = e.admission();
  // Queue-evicted payments never reached the ledger, so there is no
  // lifecycle entry to retire — only the tallies move.
  for (std::size_t i = 0; i < evicted.size(); ++i) {
    if (adm.admitted > 0) --adm.admitted;
    ++adm.evicted;
  }
  if (res == AdmissionQueue::Push::kBackpressured) {
    ++adm.backpressured;
    return;
  }
  ++adm.admitted;
  arm_drain(e, owner);
}

void LatticeTraits::set_parallel_validation(Engine& e, bool on) {
  for (std::size_t i = 0; i < e.node_count(); ++i)
    e.node(i).ledger().set_parallel_validation(on);
}

void LatticeTraits::set_parallel_state(Engine& e, bool on) {
  for (std::size_t i = 0; i < e.node_count(); ++i)
    e.node(i).ledger().set_parallel_state(on);
}

void LatticeTraits::fill_metrics(const Engine& e, RunMetrics& m) {
  const lattice::Ledger& ledger = e.node(0).ledger();
  // Included payments = send blocks in the reference ledger.
  std::uint64_t sends = 0;
  for (std::size_t i = 0; i < e.config().account_count; ++i) {
    const lattice::AccountInfo* info =
        ledger.account(e.account(i).account_id());
    if (!info) continue;
    for (const lattice::LatticeBlock& b : info->chain)
      if (b.type == lattice::BlockType::kSend) ++sends;
  }
  // Plus sends from the genesis chain (funding).
  if (const lattice::AccountInfo* g =
          ledger.account(e.state().genesis_key.account_id())) {
    for (const lattice::LatticeBlock& b : g->chain)
      if (b.type == lattice::BlockType::kSend) ++sends;
  }
  m.included = sends;
  m.confirmed = e.node(0).confirmations().blocks_confirmed;
  m.pending_end = ledger.pending().size();  // unsettled sends (Fig. 3)

  m.confirmation_latency = e.node(0).confirmations().time_to_confirm;
  m.blocks_produced = ledger.block_count();
  m.stored_bytes = ledger.storage().total();
}

bool LatticeTraits::converged(const Engine& e) {
  for (std::size_t i = 0; i < e.config().account_count; ++i) {
    auto head0 = e.node(0).ledger().head_of(e.account(i).account_id());
    for (std::size_t n = 1; n < e.node_count(); ++n) {
      if (e.node(n).config().role == lattice::NodeRole::kLight) continue;
      if (e.node(n).ledger().head_of(e.account(i).account_id()) != head0)
        return false;
    }
  }
  return true;
}

void LatticeCluster::fund_accounts() {
  // Genesis account showers every workload account (send blocks); owner
  // nodes auto-receive (open blocks) as the sends arrive -- Fig. 3 flow.
  const crypto::KeyPair& genesis_key = state().genesis_key;
  for (std::size_t i = 0; i < config().account_count; ++i) {
    auto sent = node(0).send(genesis_key, account(i).account_id(),
                             config().initial_balance);
    assert(sent);
    (void)sent;
  }
  // Let sends propagate and receives settle.
  run_for(30.0);

  // Delegate each account's weight to a representative, spreading voting
  // weight across representative_count nodes (kChange blocks, §III-B).
  // Delegations go to nodes 1..R (never the genesis holder), so voting
  // weight is spread across representatives and quorum requires real
  // network rounds.
  const std::size_t reps = std::max<std::size_t>(
      1, std::min(config().representative_count, node_count() - 1));
  for (std::size_t i = 0; i < config().account_count; ++i) {
    lattice::LatticeNode& owner = owner_of(i);
    const std::size_t rep_node = 1 + (i % reps);
    const crypto::KeyPair* rep = node(rep_node).representative_key();
    assert(rep);
    (void)owner.change_representative(account(i), rep->account_id());
  }
  run_for(30.0);
}

}  // namespace dlt::core
