// Adversary actor layer (ISSUE 8 tentpole): attack strategies that run
// against live clusters, turning the paper's §IV honest-participant
// confirmation story into measured safety/fairness experiments.
//
// Actors and the metrics they publish into the cluster registry:
//
//   TangleAdversary (kParasite) — builds a withheld parasite chain that
//     double-spends an honest payment from a stale anchor, then releases
//     it; `attack.parasite.flip_probability` is the probability a fresh
//     tip-selection walk approves the parasite side (SoK: Diving into
//     DAG-based Blockchain Systems).
//   TangleAdversary (kSpam) — lazy-tip spam: bursts of transactions that
//     approve a stale anchor instead of recent tips, starving honest tips
//     of approvers; `attack.spam.honest_tip_share` is the honest fraction
//     of the reference replica's tips.
//   TangleAdversary (kRace) — double-spend race composed with the
//     existing partition injection (net::Network::set_partitions): two
//     conflicting spends issued on opposite sides of a partition, healed
//     later; `attack.race.side_{a,b}_confidence` are each side's
//     walk confidences on its own reference replica.
//   ChainSelfishMiner — private (selfish) mining on the chain side for
//     contrast: mines a withheld branch at `power / (1 - power)` of the
//     cluster hashrate and releases it to orphan honest blocks;
//     `attack.selfish.revenue_share` is the attacker's fraction of the
//     active chain.
//
// Every actor also publishes `fairness.inclusion_gini` — the Gini
// coefficient over per-issuer inclusion rates from the issuer-tagged
// obs::LatencyTracker stats (Fairness and Efficiency in DAG-based
// Cryptocurrencies).
//
// Determinism contract (see DESIGN.md "Adversary determinism contract"):
// adversary randomness comes from a private Rng seeded off
// AdversaryConfig::key_seed — never forked from the engine RNG — and all
// actions run as simulation events on the serial sim thread. A zero-power
// adversary schedules nothing and draws nothing, so its run is
// byte-identical to the honest baseline; any-power runs are byte-identical
// across DLT_VERIFY_THREADS / DLT_PARALLEL_STATE settings
// (tests/adversarial_test.cpp).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/chain_cluster.hpp"
#include "core/tangle_cluster.hpp"

namespace dlt::core {

// ---------------------------------------------------------------------------
// Tangle-side adversary.

enum class AdversaryKind { kNone, kParasite, kSpam, kRace };

struct AdversaryConfig {
  AdversaryKind kind = AdversaryKind::kNone;
  /// Attacker power in [0, 1]: scales the parasite size relative to the
  /// honest tangle, the spam burst size, or the race's minority-side node
  /// share. Exactly 0 disables the adversary (honest baseline, no events,
  /// no draws).
  double power = 0.0;
  /// Cluster node whose replica and gossip endpoint the adversary uses.
  std::size_t node = 0;
  /// When the attack begins (parasite target issued / first spam burst /
  /// partition opens).
  double start_time = 4.0;
  /// Parasite release / race heal instant.
  double release_time = 10.0;
  /// Spam burst spacing (simulated seconds).
  double interval = 1.0;
  /// Spam: no bursts are scheduled at or after this time (0 = unbounded).
  double stop_time = 0.0;
  /// Spam txs per burst at power 1 (burst = max(1, power * scale)).
  double spam_burst_scale = 12.0;
  /// Own weight stamped on every adversary transaction (ISSUE 9): the
  /// large-weight-spam variant sets this above 1 to out-weigh honest
  /// unit-weight traffic in cumulative-weight tip selection. Values above
  /// the cluster's TangleParams::max_own_weight are rejected on attach.
  std::uint64_t tx_weight = 1;
  /// Adversary identity and private RNG stream seed.
  std::uint64_t key_seed = 0xAD5EED01;
  /// walk_confidence samples used by measure().
  int measure_samples = 256;
};

class TangleAdversary {
 public:
  TangleAdversary(TangleCluster& cluster, AdversaryConfig config);

  /// True when the adversary will act (kind set and power > 0).
  bool active() const {
    return config_.kind != AdversaryKind::kNone && config_.power > 0.0;
  }

  /// Schedules the attack into the cluster simulation. No-op when
  /// inactive: the honest run stays byte-identical.
  void start();

  /// Computes the attack metrics on the reference replica and publishes
  /// them as registry gauges (attack.*, fairness.inclusion_gini). Call
  /// after the run; draws only from a fixed-seed measurement RNG.
  void measure();

  // Measured values (valid after measure()).
  double flip_probability() const { return flip_probability_; }
  double honest_tip_share() const { return honest_tip_share_; }
  double side_a_confidence() const { return side_a_confidence_; }
  double side_b_confidence() const { return side_b_confidence_; }

  crypto::AccountId account() const { return key_.account_id(); }
  std::size_t txs_injected() const { return injected_; }
  const tangle::TxHash& parasite_root() const { return parasite_root_; }
  const tangle::TxHash& honest_target() const { return honest_target_; }

 private:
  tangle::TangleTx build_tx(const tangle::TxHash& trunk,
                            const tangle::TxHash& branch,
                            const Hash256& spend_key);
  void issue_parasite_target();
  void release_parasite();
  void spam_burst();
  void open_race();
  void heal_race();

  TangleCluster& cluster_;
  AdversaryConfig config_;
  crypto::KeyPair key_;
  Rng rng_;                 // private stream: Rng(key_seed), never forked
  Hash256 contested_key_;   // the double-spent key (parasite / race)
  tangle::TxHash honest_target_{};  // parasite: the honest spend A
  tangle::TxHash parasite_root_{};  // parasite: the withheld conflict B
  tangle::TxHash race_a_{}, race_b_{};
  std::size_t race_side_b_node_ = 0;
  std::uint64_t payload_seq_ = 0;
  std::size_t injected_ = 0;

  double flip_probability_ = 0.0;
  double honest_tip_share_ = 1.0;
  double side_a_confidence_ = 0.0;
  double side_b_confidence_ = 0.0;
};

// ---------------------------------------------------------------------------
// Chain-side adversaries.

struct SelfishMinerConfig {
  /// Attacker share of TOTAL network hashrate in [0, 1): the miner runs at
  /// power / (1 - power) times the cluster's honest hashrate. Exactly 0
  /// disables the miner (honest baseline).
  double power = 0.0;
  /// Cluster node used as the gossip origin for released blocks.
  std::size_t node = 0;
  double start_time = 0.0;
  /// How often the withhold/release state machine re-examines the public
  /// chain (simulated seconds).
  double poll_interval = 2.0;
  /// Adversary identity and private RNG stream seed.
  std::uint64_t key_seed = 0xAD5EED02;
};

/// Private (selfish) mining against a ChainCluster: mines a withheld
/// branch off the observed public tip, abandons it when the public chain
/// wins, and releases it wholesale once ahead of an advancing public
/// chain — orphaning the honest blocks in between. Requires
/// params.verify_pow == false (the cluster default: the mining race is
/// modelled statistically; see DESIGN.md).
class ChainSelfishMiner {
 public:
  ChainSelfishMiner(ChainCluster& cluster, SelfishMinerConfig config);

  bool active() const { return config_.power > 0.0; }

  /// Schedules mining + the release state machine. No-op when inactive.
  void start();

  /// Publishes attack.selfish.* gauges (and fairness.inclusion_gini) from
  /// the reference replica's active chain. Call after the run.
  void measure();

  double revenue_share() const { return revenue_share_; }
  std::uint64_t blocks_mined() const { return blocks_mined_; }
  std::uint64_t blocks_released() const { return blocks_released_; }
  crypto::AccountId account() const { return key_.account_id(); }

 private:
  void refork_to_public_tip();
  void schedule_mining();
  void mine_private_block();
  void poll();
  void release();

  ChainCluster& cluster_;
  SelfishMinerConfig config_;
  crypto::KeyPair key_;
  Rng rng_;  // private stream: Rng(key_seed), never forked
  double hashrate_ = 0.0;

  chain::BlockHash fork_point_{};
  std::uint32_t fork_height_ = 0;
  double fork_difficulty_ = 1.0;
  double last_timestamp_ = 0.0;
  std::vector<chain::Block> withheld_;
  sim::EventId mining_event_ = sim::kInvalidEvent;

  std::uint64_t blocks_mined_ = 0;
  std::uint64_t blocks_released_ = 0;
  double revenue_share_ = 0.0;
};

/// Deterministic private-chain builder over a standalone chain::Blockchain
/// — the actor behind the tests' hand-rolled withhold-and-release
/// scenarios. Seals empty (coinbase-only) blocks with the exact reference
/// discipline (timestamp = parent + block_interval, nonce searched from
/// zero), so a release is byte-identical to the historical
/// seal_empty_utxo loops for the same params/genesis.
class PrivateChainMiner {
 public:
  struct ReleaseOutcome {
    std::size_t accepted = 0;       // submits that returned ok
    bool reorged = false;           // any submit reported kReorged
    std::uint32_t reorg_depth = 0;  // deepest single reorg observed
  };

  PrivateChainMiner(const chain::ChainParams& params,
                    const chain::GenesisSpec& genesis,
                    crypto::AccountId miner);

  /// Mines `n` empty blocks on the private tip.
  void extend(std::size_t n);

  const chain::Blockchain& chain() const { return chain_; }

  /// Releases the withheld branch into `victim` in height order. Rejected
  /// blocks (e.g. below a finalized checkpoint) are skipped, as a real
  /// victim would drop them.
  ReleaseOutcome release_into(chain::Blockchain& victim) const;

 private:
  chain::Blockchain chain_;
  crypto::AccountId miner_;
};

/// The merchant double-spend race model (paper §IV-A, Nakamoto's
/// convention): honest chain mines `depth` confirmations while an
/// attacker with hash share `q` mines privately, then the attacker races
/// until caught up (win) or hopelessly behind. Pure function of the seed;
/// the tests' historical inline model is kept as a parity oracle.
struct RaceOutcome {
  int attacker_wins = 0;
  int trials = 0;
};
RaceOutcome run_double_spend_races(double q, std::uint32_t depth, int trials,
                                   std::uint64_t seed);

// ---------------------------------------------------------------------------
// Fairness / stationarity metrics.

/// Gini coefficient over per-issuer inclusion rates (included/submitted)
/// from the issuer-tagged LatencyTracker stats: 0 = perfectly fair, 1 =
/// maximally concentrated. Issuers are aggregated in sorted-id order so
/// the value is deterministic; issuers without submissions are excluded.
double inclusion_gini(const obs::LatencyTracker& tracker);

/// Sliding-window mean/variance of the tip count — the Feng–King–Duffy
/// one-endedness check: an honest tangle's tip process is stationary
/// (windowed mean converges, variance stays bounded), while lazy-tip spam
/// makes the tip count grow without bound.
class TipStationarity {
 public:
  explicit TipStationarity(std::size_t window = 32) : window_(window) {}

  void sample(std::size_t tip_count);
  std::size_t samples() const { return seen_; }
  /// Mean over the trailing window (0 when empty).
  double mean() const;
  /// Population variance over the trailing window (0 when empty).
  double variance() const;

  /// Publishes tangle.tips.stationarity.{mean,variance} gauges.
  void publish(obs::Probe probe) const;

 private:
  std::size_t window_;
  std::size_t seen_ = 0;
  std::deque<double> ring_;
};

}  // namespace dlt::core
