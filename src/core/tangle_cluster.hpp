// A complete simulated tangle (IOTA-like) network driven by the generic
// cluster engine — the third ledger paradigm finally gets a cluster driver
// (paper §II-B footnote 1; the DAG family the SoK literature treats as its
// own class).
//
// TangleTraits supplies the tangle-specific policy: every workload account
// maps to an issuing node (round-robin), a payment becomes a transaction
// whose payload commits to (from, to, amount, sequence), and confirmation
// is tip-cone confidence crossing `confirmation_threshold` (compare the
// chain's depth rule, §IV).
#pragma once

#include <vector>

#include "core/cluster_engine.hpp"
#include "tangle/node.hpp"

namespace dlt::core {

struct TangleClusterConfig {
  tangle::TangleParams params;
  std::size_t node_count = 6;

  Topology topology = Topology::kComplete;
  net::LinkParams link{};
  std::size_t random_degree = 4;

  std::size_t account_count = 50;
  /// A transaction counts as confirmed when at least this fraction of the
  /// reference replica's tips approve it (confirmation_confidence ≥
  /// threshold — the tangle's analogue of confirmation depth).
  double confirmation_threshold = 0.5;
  /// How often (simulated seconds) the lifecycle sweep re-evaluates
  /// tip-cone confidence on the reference replica to stamp confirmation
  /// times. Only scheduled when lifecycle tracking is on; 0 = never.
  double confirmation_sweep_interval = 1.0;

  /// Crypto hot-path knobs (verify pool for the sharded sig+work checks;
  /// the tangle does not use a sigcache — its signatures are one-shot).
  CryptoConfig crypto{};

  /// Observability knobs (metrics registry is always on; tracing opt-in).
  ObsConfig obs{};

  /// Persistence mode for every node's ledger store (ISSUE 9). Memory mode
  /// (default) keeps the same write-through accounting in RAM; disk mode
  /// adds the segmented log + mmap state backend. Byte-identical traces
  /// either way; see storage/config.hpp and apply_env_storage.
  storage::StorageConfig storage{};

  /// Open-loop traffic engine + admission control (ISSUE 10): arrivals
  /// park in per-issuer-node AdmissionQueues (byte-capacity fee market)
  /// drained on the traffic.drain_interval cadence into real issues.
  TrafficConfig traffic{};

  std::uint64_t seed = 42;
};

/// Ledger policy plugged into ClusterEngine (see cluster_engine.hpp for
/// the full contract). Definitions live in tangle_cluster.cpp.
struct TangleTraits {
  using Config = TangleClusterConfig;
  using Node = tangle::TangleNode;
  using Amount = std::uint64_t;

  struct State {
    /// Payment sequence number folded into each payload commitment so
    /// repeated (from, to, amount) triples stay distinct transactions.
    std::uint64_t payment_seq = 0;
    // Traffic admission queues, one per issuer node (lazily sized on the
    // first arrival), plus the drain-event arm flags.
    std::vector<AdmissionQueue> queues;
    std::vector<char> drain_armed;
  };

  static State make_state(Config& config);
  static std::string system_name(const Config& config);
  static void build_nodes(ClusterEngine<TangleTraits>& e);
  static void after_topology(ClusterEngine<TangleTraits>& e);
  static void wire_lifecycle(ClusterEngine<TangleTraits>& e);
  static void start(ClusterEngine<TangleTraits>& e);
  static SubmitOutcome submit_payment(ClusterEngine<TangleTraits>& e,
                                      std::size_t from, std::size_t to,
                                      Amount amount);
  static void submit_traffic(ClusterEngine<TangleTraits>& e,
                             const TrafficEvent& ev);
  static void set_parallel_validation(ClusterEngine<TangleTraits>& e,
                                      bool on);
  static void set_parallel_state(ClusterEngine<TangleTraits>& e, bool on);
  static void fill_metrics(const ClusterEngine<TangleTraits>& e,
                           RunMetrics& m);
  static bool converged(const ClusterEngine<TangleTraits>& e);
};

class TangleCluster : public ClusterEngine<TangleTraits> {
 public:
  using ClusterEngine<TangleTraits>::ClusterEngine;

  /// The node that issues for workload account `account_index`.
  tangle::TangleNode& issuer_of(std::size_t account_index) {
    return node(account_index % node_count());
  }
};

}  // namespace dlt::core
