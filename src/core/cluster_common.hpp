// Wiring shared by ChainCluster and LatticeCluster: network topology
// construction, the deterministic workload-account key schedule, and the
// crypto hot-path handles (shared sigcache + batch-verification pool) that
// both cluster kinds thread through their nodes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "crypto/keys.hpp"
#include "crypto/sigcache.hpp"
#include "net/network.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace dlt::core {

enum class Topology { kComplete, kRandom, kSmallWorld };

/// Crypto hot-path knobs common to both cluster kinds.
struct CryptoConfig {
  /// One signature-verification cache shared by every node: the first node
  /// to verify a (pubkey, sighash, signature) triple serves the other N-1.
  /// Disable for attack experiments that want per-node verification cost.
  bool shared_sigcache = true;
  std::size_t sigcache_capacity = 1u << 18;
  /// Total threads for batch signature verification during block connect
  /// (0 = serial; 1 = a pool that runs inline, useful for differential
  /// tests). Results join in index order, so RunMetrics and converged tips
  /// are bit-identical to a serial run on the same seed.
  std::size_t verify_threads = 0;
  /// Run the full sharded validation pipeline (stateless checks across
  /// the pool, verdicts consumed by the serial apply phase) instead of the
  /// prefetch-only reference. Needs verify_threads >= 1.
  bool parallel_validation = false;
  /// Shard the *stateful* apply phase too: transactions are partitioned
  /// into disjoint conflict groups (core/partition.hpp) that are checked
  /// concurrently against a frozen snapshot, then committed serially in
  /// tx order; conflicting batches demote to the serial reference path.
  /// Needs verify_threads >= 1. Off by default; either setting yields
  /// byte-identical traces, metrics and ledger state for a given seed.
  bool parallel_state = false;
};

/// Applies the environment overrides used by benches and the determinism
/// gate, logging the resolved config (DLT_LOG_INFO) whenever any override
/// was present:
///  - DLT_VERIFY_THREADS=N (N > 0): sets verify_threads AND turns on the
///    sharded pipeline — a single worker runs it inline. (Historically N=1
///    silently kept the prefetch-only path; simulation output is
///    byte-identical either way, so the pipeline is now the env default.)
///  - DLT_PARALLEL_VALIDATION=1/true/on|0/false/off: explicit pipeline
///    override, applied after DLT_VERIFY_THREADS. Enabling it with
///    verify_threads still 0 bumps verify_threads to 1 so the pool exists.
///  - DLT_PARALLEL_STATE=1/true/on|0/false/off: toggles the sharded
///    state-application pipeline (conflict-group apply). Enabling it with
///    verify_threads still 0 bumps verify_threads to 1 so the pool exists.
/// Unset/invalid values leave `config` untouched.
void apply_env_crypto(CryptoConfig& config);

/// Instantiated handles a cluster hands to each of its nodes.
struct ClusterCrypto {
  std::shared_ptr<crypto::SignatureCache> sigcache;
  std::shared_ptr<support::ThreadPool> verify_pool;
};

ClusterCrypto make_cluster_crypto(const CryptoConfig& config);

/// Observability knobs common to both cluster kinds. The registry is
/// always on (cheap: pointer-cached counters); tracing is opt-in because
/// the ring buffer holds trace_capacity events in memory.
struct ObsConfig {
  /// Trace ring capacity in events; 0 = tracing disabled (the record path
  /// collapses to a branch, and no RunMetrics value may change either way).
  std::size_t trace_capacity = 0;
  /// Streaming JSONL sink path; non-empty = every trace event is written
  /// through to this file as it is recorded, so long runs keep full
  /// fidelity after the ring wraps (`dropped` stays 0 while active). May be
  /// combined with a ring (trace_capacity > 0) or used alone.
  std::string trace_sink;
  /// Namespace each node's registry metrics under "node.<id>." (see
  /// ClusterObs::probe_for), making cross-node skew measurable. Off by
  /// default: aggregated counters keep their historical names/bytes.
  bool per_node_metrics = false;
  /// Track per-transaction lifecycle latency (obs::LatencyTracker): each
  /// engine-submitted payment is stamped at submit/admit/include/confirm
  /// in sim time, feeding the latency.* histograms and tx_* trace events.
  /// On by default (cheap: one hash-map entry per in-flight payment);
  /// turn off to reproduce pre-lifecycle registry/trace bytes exactly.
  bool track_latency = true;
  /// Per-histogram percentile sample cap for the latency.* histograms
  /// (deterministic reservoir above it; 0 = exact, unbounded).
  std::size_t latency_sample_cap = 1u << 16;
};

/// Cluster-owned observability state. Nodes and the network hold
/// non-owning Probes into it; the cluster driver exports it into
/// BENCH_*.json (metrics + trace_summary) at the end of a run.
struct ClusterObs {
  obs::MetricsRegistry metrics;
  obs::Tracer tracer;
  obs::LatencyTracker lifecycle;
  bool per_node_metrics = false;

  explicit ClusterObs(const ObsConfig& config)
      : per_node_metrics(config.per_node_metrics) {
    if (config.trace_capacity > 0) tracer.enable(config.trace_capacity);
    if (!config.trace_sink.empty()) tracer.stream_to(config.trace_sink);
    if (config.track_latency)
      lifecycle.enable(probe(), config.latency_sample_cap);
  }
  obs::Probe probe() { return obs::Probe{&metrics, &tracer, {}}; }
  /// Probe for node `i`: identical to probe() unless per_node_metrics is
  /// on, in which case registry names resolve under "node.<i>.".
  obs::Probe probe_for(std::size_t i) {
    obs::Probe p = probe();
    if (per_node_metrics) p.prefix = "node." + std::to_string(i) + ".";
    return p;
  }

  /// Copies scheduler counters into sim.* gauges and refreshes the
  /// latency.in_flight gauge (call before export).
  void capture_sim(const sim::Simulation& sim);
};

/// Workload account keys on the shared deterministic seed schedule, so
/// fixtures and benches line up across cluster kinds.
std::vector<crypto::KeyPair> make_workload_accounts(std::size_t count);

/// Wires `ids` into the requested topology over `net`.
void build_topology(net::Network& net, const std::vector<net::NodeId>& ids,
                    Topology topology, const net::LinkParams& link,
                    std::size_t random_degree, Rng& rng);

}  // namespace dlt::core
