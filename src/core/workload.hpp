// Payment workload generation shared by benches and examples.
//
// Transactions arrive as a Poisson process at a target rate; sender and
// receiver accounts are drawn uniformly or zipf-skewed (real payment
// traffic concentrates on popular merchants). A spam profile models the
// §III-B attack that Nano's per-block hashcash throttles.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace dlt::core {

enum class AccountPick { kUniform, kZipf };

struct WorkloadConfig {
  std::size_t account_count = 100;
  double tx_rate = 1.0;          // transactions per simulated second
  double duration = 600.0;       // seconds of traffic
  AccountPick pick = AccountPick::kZipf;
  double zipf_s = 1.0;
  std::uint64_t min_amount = 1;
  std::uint64_t max_amount = 1000;
};

struct PaymentEvent {
  double time = 0.0;
  std::size_t from = 0;   // account indices
  std::size_t to = 0;
  std::uint64_t amount = 0;
};

/// Materializes the full arrival schedule (deterministic given the rng).
std::vector<PaymentEvent> generate_payments(const WorkloadConfig& config,
                                            Rng& rng);

/// A burst of `count` spam transactions from one attacker account at
/// maximum speed (inter-arrival `spacing` seconds).
std::vector<PaymentEvent> generate_spam(std::size_t attacker,
                                        std::size_t victim, std::size_t count,
                                        double start, double spacing);

}  // namespace dlt::core
