#include "core/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "support/log.hpp"

namespace dlt::core {

const char* to_string(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kPoisson:
      return "poisson";
    case ArrivalProcess::kBursty:
      return "bursty";
    case ArrivalProcess::kDiurnal:
      return "diurnal";
  }
  return "unknown";
}

std::uint64_t fee_class_multiplier(std::uint32_t fee_class) {
  const std::uint32_t k = std::min<std::uint32_t>(fee_class, 31);
  return 1ULL << (2 * k);
}

namespace {

bool env_double(const char* name, double* out) {
  const char* v = std::getenv(name);
  if (!v || !*v) return false;
  char* end = nullptr;
  const double x = std::strtod(v, &end);
  if (end == v || *end != '\0') return false;
  *out = x;
  return true;
}

bool env_u64(const char* name, std::uint64_t* out) {
  const char* v = std::getenv(name);
  if (!v || !*v) return false;
  char* end = nullptr;
  const unsigned long long x = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(x);
  return true;
}

}  // namespace

void apply_env_traffic(TrafficConfig& config) {
  if (const char* v = std::getenv("DLT_TRAFFIC_PROCESS"); v && *v) {
    const std::string s(v);
    if (s == "poisson") {
      config.process = ArrivalProcess::kPoisson;
    } else if (s == "bursty") {
      config.process = ArrivalProcess::kBursty;
    } else if (s == "diurnal") {
      config.process = ArrivalProcess::kDiurnal;
    } else {
      DLT_LOG_WARN("ignoring DLT_TRAFFIC_PROCESS=%s (not poisson|bursty|diurnal)",
                   v);
    }
  }
  env_double("DLT_TRAFFIC_RATE", &config.rate);
  env_double("DLT_TRAFFIC_DURATION", &config.duration);
  env_double("DLT_TRAFFIC_ZIPF_S", &config.zipf_s);
  if (std::uint64_t n = 0; env_u64("DLT_TRAFFIC_CLASSES", &n) && n > 0)
    config.fee_class_count = static_cast<std::size_t>(n);
  env_u64("DLT_TRAFFIC_QUEUE_BYTES", &config.queue_capacity_bytes);
  env_u64("DLT_TRAFFIC_SEED", &config.seed);
}

TrafficSource::TrafficSource(const TrafficConfig& config,
                             std::size_t account_count)
    : cfg_(config),
      accounts_(account_count == 0 ? 1 : account_count),
      rng_(config.seed) {
  switch (cfg_.process) {
    case ArrivalProcess::kPoisson:
      peak_rate_ = cfg_.rate;
      break;
    case ArrivalProcess::kBursty:
      peak_rate_ = cfg_.rate * std::max(cfg_.burst_multiplier,
                                        cfg_.off_multiplier);
      // The OFF→ON→OFF trajectory is drawn lazily by rate_at; start OFF
      // with the first switch drawn on demand.
      next_switch_ = -1.0;
      break;
    case ArrivalProcess::kDiurnal:
      peak_rate_ = cfg_.rate * (1.0 + std::max(0.0, cfg_.diurnal_amplitude));
      break;
  }
}

double TrafficSource::rate_at(double t) {
  switch (cfg_.process) {
    case ArrivalProcess::kPoisson:
      return cfg_.rate;
    case ArrivalProcess::kBursty: {
      // Advance the ON/OFF trajectory to t. Candidates arrive in
      // non-decreasing t, so this walk is monotone and each dwell is
      // drawn exactly once regardless of the thinning pattern.
      if (next_switch_ < 0.0)
        next_switch_ = rng_.exponential(cfg_.burst_off_mean);
      while (t >= next_switch_) {
        burst_on_ = !burst_on_;
        next_switch_ += rng_.exponential(burst_on_ ? cfg_.burst_on_mean
                                                   : cfg_.burst_off_mean);
      }
      return cfg_.rate *
             (burst_on_ ? cfg_.burst_multiplier : cfg_.off_multiplier);
    }
    case ArrivalProcess::kDiurnal: {
      const double phase = 2.0 * 3.14159265358979323846 * t /
                           std::max(cfg_.diurnal_period, 1e-9);
      const double r =
          cfg_.rate * (1.0 + cfg_.diurnal_amplitude * std::sin(phase));
      return std::max(r, 0.0);
    }
  }
  return cfg_.rate;
}

bool TrafficSource::next(TrafficEvent& event) {
  if (peak_rate_ <= 0.0 || cfg_.duration <= 0.0) return false;
  // Lewis–Shedler thinning against the peak-rate envelope.
  for (;;) {
    t_ += rng_.exponential(1.0 / peak_rate_);
    if (t_ >= cfg_.duration) return false;
    if (cfg_.process == ArrivalProcess::kPoisson) break;  // envelope == rate
    const double accept = rate_at(t_) / peak_rate_;
    if (rng_.uniform01() < accept) break;
  }

  event.time = t_;
  // Per-arrival draw schedule — fixed order, documented in DESIGN.md;
  // reordering changes every downstream arrival for a given seed.
  event.from = cfg_.zipf_s > 0.0
                   ? rng_.zipf(accounts_, cfg_.zipf_s)
                   : static_cast<std::size_t>(rng_.uniform(
                         static_cast<std::uint64_t>(accounts_)));
  const std::size_t hot =
      std::min(std::max<std::size_t>(cfg_.hot_receiver_count, 1), accounts_);
  do {
    const bool use_hot = cfg_.hot_receiver_fraction > 0.0 &&
                         rng_.uniform01() < cfg_.hot_receiver_fraction;
    const std::size_t span = use_hot ? hot : accounts_;
    event.to = static_cast<std::size_t>(
        rng_.uniform(static_cast<std::uint64_t>(span)));
  } while (event.to == event.from && accounts_ > 1);
  event.amount = rng_.uniform_range(cfg_.min_amount,
                                    std::max(cfg_.min_amount, cfg_.max_amount));
  const std::uint64_t classes =
      cfg_.fee_class_count == 0 ? 1 : cfg_.fee_class_count;
  event.fee_class = static_cast<std::uint32_t>(rng_.uniform(classes));
  return true;
}

AdmissionQueue::Push AdmissionQueue::push(const QueuedPayment& p,
                                          std::vector<QueuedPayment>* evicted) {
  const std::uint64_t bytes = p.bytes == 0 ? 1 : p.bytes;
  if (capacity_ > 0 && bytes > capacity_) return Push::kBackpressured;
  const double rate =
      static_cast<double>(p.fee) / static_cast<double>(bytes);
  if (capacity_ > 0 && used_ + bytes > capacity_) {
    // Plan before evicting: victims are the lowest fee rate, newest among
    // ties (reverse of the drain order), and only strictly-lower payers
    // qualify — equal rates never displace, so admission is independent
    // of arrival interleaving. If the plan cannot free enough bytes the
    // push backpressures WITHOUT disturbing the queue.
    std::uint64_t freed = 0;
    auto cut = by_rate_.end();
    while (used_ - freed + bytes > capacity_) {
      if (cut == by_rate_.begin()) return Push::kBackpressured;
      auto victim = std::prev(cut);
      if (victim->first.rate >= rate) return Push::kBackpressured;
      freed += victim->second.bytes;
      cut = victim;
    }
    // Commit, surfacing victims newest-lowest first (the plan order).
    for (auto it = by_rate_.end(); it != cut;) {
      --it;
      used_ -= it->second.bytes;
      if (evicted) evicted->push_back(it->second);
    }
    by_rate_.erase(cut, by_rate_.end());
  }
  QueuedPayment stored = p;
  stored.bytes = bytes;
  by_rate_.emplace(Key{rate, next_seq_++}, stored);
  used_ += bytes;
  return Push::kAdmitted;
}

bool AdmissionQueue::pop(QueuedPayment& out) {
  if (by_rate_.empty()) return false;
  auto it = by_rate_.begin();
  out = it->second;
  used_ -= it->second.bytes;
  by_rate_.erase(it);
  return true;
}

}  // namespace dlt::core
