#include "core/cluster_common.hpp"

#include <cstdlib>
#include <cstring>
#include <optional>

#include "support/log.hpp"

namespace dlt::core {

ClusterCrypto make_cluster_crypto(const CryptoConfig& config) {
  ClusterCrypto out;
  if (config.shared_sigcache)
    out.sigcache =
        std::make_shared<crypto::SignatureCache>(config.sigcache_capacity);
  // A 1-thread pool runs parallel_for inline; only build one when the
  // pipeline asked for it, so prefetch-era configs keep their exact
  // pool-or-not behavior.
  if (config.verify_threads > 1 ||
      ((config.parallel_validation || config.parallel_state) &&
       config.verify_threads == 1))
    out.verify_pool =
        std::make_shared<support::ThreadPool>(config.verify_threads);
  return out;
}

namespace {

/// "1"/"true"/"on"/"yes" → true, "0"/"false"/"off"/"no" → false,
/// anything else → nullopt (ignored, like an invalid DLT_VERIFY_THREADS).
std::optional<bool> parse_bool_env(const char* s) {
  if (!std::strcmp(s, "1") || !std::strcmp(s, "true") ||
      !std::strcmp(s, "on") || !std::strcmp(s, "yes"))
    return true;
  if (!std::strcmp(s, "0") || !std::strcmp(s, "false") ||
      !std::strcmp(s, "off") || !std::strcmp(s, "no"))
    return false;
  return std::nullopt;
}

}  // namespace

void apply_env_crypto(CryptoConfig& config) {
  bool overridden = false;

  const char* threads_env = std::getenv("DLT_VERIFY_THREADS");
  if (threads_env && *threads_env != '\0') {
    char* end = nullptr;
    const unsigned long v = std::strtoul(threads_env, &end, 10);
    if (end != threads_env && *end == '\0' && v > 0) {
      config.verify_threads = static_cast<std::size_t>(v);
      // A single worker runs the sharded pipeline inline; N=1 used to be
      // silently ignored here, leaving the prefetch-only path.
      config.parallel_validation = true;
      overridden = true;
    }
  }

  const char* pipeline_env = std::getenv("DLT_PARALLEL_VALIDATION");
  if (pipeline_env && *pipeline_env != '\0') {
    if (const std::optional<bool> on = parse_bool_env(pipeline_env)) {
      config.parallel_validation = *on;
      // The pipeline needs a pool to shard onto.
      if (*on && config.verify_threads == 0) config.verify_threads = 1;
      overridden = true;
    }
  }

  const char* state_env = std::getenv("DLT_PARALLEL_STATE");
  if (state_env && *state_env != '\0') {
    if (const std::optional<bool> on = parse_bool_env(state_env)) {
      config.parallel_state = *on;
      // The sharded stateful phase needs a pool to run groups on.
      if (*on && config.verify_threads == 0) config.verify_threads = 1;
      overridden = true;
    }
  }

  if (overridden) {
    DLT_LOG_INFO("crypto env override: verify_threads=%zu "
                 "parallel_validation=%s parallel_state=%s "
                 "shared_sigcache=%s",
                 config.verify_threads,
                 config.parallel_validation ? "on" : "off",
                 config.parallel_state ? "on" : "off",
                 config.shared_sigcache ? "on" : "off");
  }
}

void ClusterObs::capture_sim(const sim::Simulation& sim) {
  metrics.gauge("sim.events_fired")
      .set(static_cast<double>(sim.events_fired()));
  metrics.gauge("sim.events_scheduled")
      .set(static_cast<double>(sim.events_scheduled()));
  metrics.gauge("sim.events_cancelled")
      .set(static_cast<double>(sim.events_cancelled()));
  metrics.gauge("sim.pending").set(static_cast<double>(sim.pending()));
  metrics.gauge("sim.now").set(sim.now());
  // Scheduler memory behaviour (slab high-water marks) and the wall-clock
  // events/sec trajectory. events_per_sec and wall_seconds are wall-clock
  // measurements — bench_diff.py treats them as profile noise, never as a
  // determinism surface.
  metrics.gauge("sim.heap_peak").set(static_cast<double>(sim.heap_peak()));
  metrics.gauge("sim.slab_capacity")
      .set(static_cast<double>(sim.slab_capacity()));
  metrics.gauge("sim.wall_seconds").set(sim.wall_seconds());
  if (sim.wall_seconds() > 0.0)
    metrics.gauge("sim.events_per_sec")
        .set(static_cast<double>(sim.events_fired()) / sim.wall_seconds());
  lifecycle.capture();
}

std::vector<crypto::KeyPair> make_workload_accounts(std::size_t count) {
  std::vector<crypto::KeyPair> accounts;
  accounts.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    accounts.push_back(crypto::KeyPair::from_seed(0x9000 + i));
  return accounts;
}

void build_topology(net::Network& net, const std::vector<net::NodeId>& ids,
                    Topology topology, const net::LinkParams& link,
                    std::size_t random_degree, Rng& rng) {
  switch (topology) {
    case Topology::kComplete:
      net::build_complete(net, ids, link);
      break;
    case Topology::kRandom:
      net::build_random(net, ids, random_degree, rng, link);
      break;
    case Topology::kSmallWorld:
      net::build_small_world(net, ids, /*k=*/4, /*beta=*/0.1, rng, link);
      break;
  }
}

}  // namespace dlt::core
