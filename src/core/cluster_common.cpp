#include "core/cluster_common.hpp"

#include <cstdlib>

namespace dlt::core {

ClusterCrypto make_cluster_crypto(const CryptoConfig& config) {
  ClusterCrypto out;
  if (config.shared_sigcache)
    out.sigcache =
        std::make_shared<crypto::SignatureCache>(config.sigcache_capacity);
  // A 1-thread pool runs parallel_for inline; only build one when the
  // pipeline asked for it, so prefetch-era configs keep their exact
  // pool-or-not behavior.
  if (config.verify_threads > 1 ||
      (config.parallel_validation && config.verify_threads == 1))
    out.verify_pool =
        std::make_shared<support::ThreadPool>(config.verify_threads);
  return out;
}

void apply_env_crypto(CryptoConfig& config) {
  const char* env = std::getenv("DLT_VERIFY_THREADS");
  if (!env || *env == '\0') return;
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0') return;
  if (v == 0) return;
  config.verify_threads = static_cast<std::size_t>(v);
  if (v > 1) config.parallel_validation = true;
}

void ClusterObs::capture_sim(const sim::Simulation& sim) {
  metrics.gauge("sim.events_fired")
      .set(static_cast<double>(sim.events_fired()));
  metrics.gauge("sim.events_scheduled")
      .set(static_cast<double>(sim.events_scheduled()));
  metrics.gauge("sim.events_cancelled")
      .set(static_cast<double>(sim.events_cancelled()));
  metrics.gauge("sim.pending").set(static_cast<double>(sim.pending()));
  metrics.gauge("sim.now").set(sim.now());
}

std::vector<crypto::KeyPair> make_workload_accounts(std::size_t count) {
  std::vector<crypto::KeyPair> accounts;
  accounts.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    accounts.push_back(crypto::KeyPair::from_seed(0x9000 + i));
  return accounts;
}

void build_topology(net::Network& net, const std::vector<net::NodeId>& ids,
                    Topology topology, const net::LinkParams& link,
                    std::size_t random_degree, Rng& rng) {
  switch (topology) {
    case Topology::kComplete:
      net::build_complete(net, ids, link);
      break;
    case Topology::kRandom:
      net::build_random(net, ids, random_degree, rng, link);
      break;
    case Topology::kSmallWorld:
      net::build_small_world(net, ids, /*k=*/4, /*beta=*/0.1, rng, link);
      break;
  }
}

}  // namespace dlt::core
