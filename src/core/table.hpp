// Tiny fixed-width table printer for bench output -- every bench prints
// the rows/series the paper reports through this.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

namespace dlt::core {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
      widths[c] = headers_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
        widths[c] = std::max(widths[c], r[c].size());

    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < widths.size(); ++c) {
        const std::string& s = c < cells.size() ? cells[c] : std::string{};
        os << "| " << s << std::string(widths[c] - s.size() + 1, ' ');
      }
      os << "|\n";
    };
    line(headers_);
    for (std::size_t c = 0; c < widths.size(); ++c)
      os << "|" << std::string(widths[c] + 2, '-');
    os << "|\n";
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}
inline std::string fmt_u(std::uint64_t v) { return std::to_string(v); }

}  // namespace dlt::core
