// Analytic confirmation confidence for PoW chains (paper §IV-A).
//
// "As the chain increases in length over the referent block, the
// probability of the block being discarded decreases. Depending on the
// implementation, there is a suggested number of blocks that need to be
// appended above the referent one before it is safe to say that it will
// remain in the chain with great certainty" -- 6 for Bitcoin, 5-11 for
// Ethereum. These are Nakamoto's gambler's-ruin numbers; this module
// computes them exactly so the simulation results can be cross-checked.
#pragma once

#include <cstdint>

namespace dlt::core {

/// Probability an attacker with hash share q (honest share p = 1-q) ever
/// catches up from z blocks behind: 1 if q >= p, else (q/p)^z.
double catch_up_probability(double q, std::uint32_t z);

/// Nakamoto's full double-spend success probability after the merchant
/// waits for z confirmations (Poisson-mixed attacker progress):
///   P = 1 - sum_{k=0}^{z} Pois(k; z*q/p) * (1 - (q/p)^(z-k))
double reversal_probability(double q, std::uint32_t z);

/// Smallest confirmation depth z such that the reversal probability is at
/// most `risk` (e.g. risk = 0.001 reproduces Bitcoin's 6 blocks at q~0.10).
std::uint32_t depth_for_risk(double q, double risk,
                             std::uint32_t max_depth = 1000);

}  // namespace dlt::core
