// Conflict partitioning for the sharded state-application pipeline: the
// stateful analogue of core/validation.hpp's stateless verdicts.
//
// A block (or batch) of transactions is partitioned into disjoint conflict
// groups by the state keys each item reads or writes: UTXO outpoints and
// account ids for the chain, account heads / block hashes / send links for
// the lattice, approved sites and spend keys for the tangle. Two items
// sharing any key land in the same group; groups therefore never exchange
// state, so each can be checked concurrently against a frozen pre-block
// snapshot plus a group-local overlay while the serial join commits
// mutations in exact item order.
//
// Determinism contract: the partition is a pure function of the key
// sequence fed in on the simulation thread — groups, their order and the
// demotion decision derived from them are identical at every worker count.
// Canonical form: a group's id is its smallest member index, members stay
// in ascending (input) order, and groups() lists groups by ascending id.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "support/bytes.hpp"

namespace dlt::core {

class ConflictPartitioner {
 public:
  explicit ConflictPartitioner(std::size_t items) : parent_(items) {
    for (std::size_t i = 0; i < items; ++i) parent_[i] = i;
  }

  std::size_t item_count() const { return parent_.size(); }

  /// Declares that `item` touches `key`, uniting it with every earlier
  /// item that touched the same key. Duplicate (item, key) pairs are
  /// harmless; keys may repeat within one item.
  void add_key(std::size_t item, const Hash256& key) {
    auto [it, inserted] = key_owner_.emplace(key, item);
    if (!inserted) unite(it->second, item);
  }

  /// Canonical group id of `item`: the smallest index in its group.
  std::size_t group_of(std::size_t item) { return find(item); }

  /// Number of disjoint groups (1 for a fully-conflicting input, N for a
  /// fully-disjoint one).
  std::size_t group_count() {
    std::size_t n = 0;
    for (std::size_t i = 0; i < parent_.size(); ++i)
      if (find(i) == i) ++n;
    return n;
  }

  /// All groups, ordered by ascending group id; members ascending. The
  /// layout is independent of key insertion multiplicity and of any
  /// worker count — it depends only on the (item, key) sequence.
  std::vector<std::vector<std::size_t>> groups() {
    std::unordered_map<std::size_t, std::size_t> slot;  // root -> index
    std::vector<std::vector<std::size_t>> out;
    for (std::size_t i = 0; i < parent_.size(); ++i) {
      const std::size_t root = find(i);
      auto [it, inserted] = slot.emplace(root, out.size());
      if (inserted) out.emplace_back();
      out[it->second].push_back(i);
    }
    // Roots are minimal members, and items are scanned ascending, so a
    // group is created exactly when its smallest member is visited: the
    // vector is already ordered by ascending group id.
    return out;
  }

 private:
  std::size_t find(std::size_t i) {
    while (parent_[i] != i) {
      parent_[i] = parent_[parent_[i]];  // path halving
      i = parent_[i];
    }
    return i;
  }

  /// Union keeping the smaller root as representative, so group ids are
  /// canonical (smallest member) regardless of union order.
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (b < a) std::swap(a, b);
    parent_[b] = a;
  }

  std::vector<std::size_t> parent_;
  std::unordered_map<Hash256, std::size_t> key_owner_;
};

}  // namespace dlt::core
