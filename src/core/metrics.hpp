// Aggregated run metrics reported by the cluster drivers (paper §IV-§VI).
#pragma once

#include <cstdint>
#include <string>

#include "support/stats.hpp"

namespace dlt::core {

struct RunMetrics {
  std::string system;
  double sim_duration = 0.0;

  std::uint64_t submitted = 0;     // payments injected
  std::uint64_t rejected = 0;      // refused at submission
  std::uint64_t included = 0;      // landed in the ledger
  std::uint64_t confirmed = 0;     // reached the confirmation rule
  std::uint64_t pending_end = 0;   // backlog at end of run (§VI)

  double tps_included() const {
    return sim_duration > 0 ? static_cast<double>(included) / sim_duration
                            : 0.0;
  }
  double tps_confirmed() const {
    return sim_duration > 0 ? static_cast<double>(confirmed) / sim_duration
                            : 0.0;
  }

  Percentiles inclusion_latency;
  Percentiles confirmation_latency;

  // Fork dynamics (§IV-A).
  std::uint64_t reorgs = 0;
  std::uint64_t orphaned_blocks = 0;
  std::uint32_t max_reorg_depth = 0;
  std::uint64_t blocks_produced = 0;

  // Ledger size (§V).
  std::uint64_t stored_bytes = 0;

  // Network cost.
  std::uint64_t messages = 0;
  std::uint64_t message_bytes = 0;

  // Open-loop admission control (ISSUE 10); all zero unless the traffic
  // engine ran. Invariant: admission_submitted == admission_admitted +
  // admission_rejected + admission_evicted + admission_backpressured.
  std::uint64_t admission_submitted = 0;
  std::uint64_t admission_admitted = 0;
  std::uint64_t admission_rejected = 0;
  std::uint64_t admission_evicted = 0;
  std::uint64_t admission_backpressured = 0;
};

}  // namespace dlt::core
