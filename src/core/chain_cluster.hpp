// A complete simulated blockchain network: nodes, miners/validators,
// wallets, and a workload driver. The drivers behind the §IV-§VI benches.
#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "chain/node.hpp"
#include "core/cluster_common.hpp"
#include "core/metrics.hpp"
#include "core/workload.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace dlt::core {

struct ChainClusterConfig {
  chain::ChainParams params;
  std::size_t node_count = 8;
  std::size_t miner_count = 4;     // PoW: nodes [0, miner_count) mine
  double total_hashrate = 1.0e6;   // split evenly across miners
  std::size_t validator_count = 4; // PoS: staked nodes
  chain::Amount stake_per_validator = 1'000'000;

  Topology topology = Topology::kComplete;
  net::LinkParams link{};
  std::size_t random_degree = 4;

  std::size_t account_count = 50;
  chain::Amount initial_balance = 10'000'000;
  /// UTXO model: number of independent genesis coins per account (each of
  /// initial_balance). Saturation benches need many spendable outpoints.
  std::size_t genesis_outputs_per_account = 1;
  /// Account model: mean calldata bytes per transaction (drawn uniformly
  /// in [0, 2*mean]). Real Ethereum transactions average well above the
  /// 21k intrinsic gas; this reproduces that gas weighting (paper §VI-A).
  std::uint32_t account_tx_data_mean = 0;

  /// Crypto hot-path knobs (shared sigcache, batch verification).
  CryptoConfig crypto{};

  /// Observability knobs (metrics registry is always on; tracing opt-in).
  ObsConfig obs{};

  std::uint64_t seed = 42;
};

class ChainCluster {
 public:
  explicit ChainCluster(ChainClusterConfig config);

  sim::Simulation& simulation() { return sim_; }
  net::Network& network() { return *net_; }
  chain::ChainNode& node(std::size_t i) { return *nodes_[i]; }
  std::size_t node_count() const { return nodes_.size(); }
  const crypto::KeyPair& account(std::size_t i) const {
    return accounts_[i];
  }

  /// Starts miners/validators.
  void start();

  /// Toggles the sharded validation pipeline on every node's chain
  /// (effective for subsequently connected blocks; no-op per node without
  /// a verify pool). Safe mid-run: either mode yields byte-identical
  /// simulation output for a given seed.
  void set_parallel_validation(bool on);

  /// Builds, signs and submits one payment between workload accounts
  /// (UTXO: coin selection + change; account model: nonce tracking).
  Status submit_payment(std::size_t from, std::size_t to,
                        chain::Amount amount);

  /// Schedules an entire workload into the simulation.
  void schedule_workload(const std::vector<PaymentEvent>& events);

  /// Runs the simulation for `seconds` of simulated time.
  void run_for(double seconds);

  /// Snapshot of aggregated metrics (reference view: node 0).
  RunMetrics metrics() const;

  /// True when every node agrees on the tip (convergence checks).
  bool converged() const;

  /// The cluster-wide signature cache (null when crypto.shared_sigcache is
  /// off); benches read its hit-rate stats.
  crypto::SignatureCache* sigcache() { return crypto_.sigcache.get(); }
  const crypto::SignatureCache* sigcache() const {
    return crypto_.sigcache.get();
  }

  /// Cluster-wide observability state (nodes and the network feed it).
  obs::MetricsRegistry& metrics_registry() { return obs_.metrics; }
  const obs::MetricsRegistry& metrics_registry() const {
    return obs_.metrics;
  }
  obs::Tracer& tracer() { return obs_.tracer; }
  const obs::Tracer& tracer() const { return obs_.tracer; }
  /// Registry JSON with sim.* gauges refreshed — the bench `metrics`
  /// section.
  support::JsonObject metrics_json() {
    obs_.capture_sim(sim_);
    return obs_.metrics.to_json();
  }
  support::JsonObject trace_summary_json() const {
    return obs_.tracer.summary_json();
  }

 private:
  Status submit_utxo_payment(std::size_t from, std::size_t to,
                             chain::Amount amount);
  Status submit_account_payment(std::size_t from, std::size_t to,
                                chain::Amount amount);

  ChainClusterConfig config_;
  Rng rng_;
  ClusterCrypto crypto_;
  ClusterObs obs_;
  sim::Simulation sim_;
  std::unique_ptr<net::Network> net_;
  std::vector<std::unique_ptr<chain::ChainNode>> nodes_;
  std::vector<crypto::KeyPair> accounts_;

  // UTXO wallet bookkeeping: outpoints already committed to in-flight txs.
  std::unordered_set<chain::Outpoint> reserved_;
  std::size_t reserved_compact_at_ = 8192;
  // Account-model wallet bookkeeping: next nonce per workload account.
  std::vector<std::uint64_t> next_nonce_;

  // Workload tallies live in the cluster registry (obs_.metrics); these
  // are cached handles into it.
  obs::Counter* submitted_ = nullptr;
  obs::Counter* rejected_ = nullptr;
};

}  // namespace dlt::core
