// A complete simulated blockchain network: nodes, miners/validators,
// wallets, and a workload driver. The drivers behind the §IV-§VI benches.
//
// Since the engine unification, ChainCluster is a thin facade over
// core::ClusterEngine<ChainTraits>: the engine owns the sim loop, topology,
// crypto/obs wiring and RunMetrics assembly; ChainTraits supplies the
// chain-specific policy (genesis allocation, PoS stakes, UTXO coin
// selection / account nonces, fork stats). The public API is unchanged.
#pragma once

#include <unordered_set>
#include <vector>

#include "chain/node.hpp"
#include "core/cluster_engine.hpp"

namespace dlt::core {

struct ChainClusterConfig {
  chain::ChainParams params;
  std::size_t node_count = 8;
  std::size_t miner_count = 4;     // PoW: nodes [0, miner_count) mine
  double total_hashrate = 1.0e6;   // split evenly across miners
  std::size_t validator_count = 4; // PoS: staked nodes
  chain::Amount stake_per_validator = 1'000'000;

  Topology topology = Topology::kComplete;
  net::LinkParams link{};
  std::size_t random_degree = 4;

  std::size_t account_count = 50;
  chain::Amount initial_balance = 10'000'000;
  /// UTXO model: number of independent genesis coins per account (each of
  /// initial_balance). Saturation benches need many spendable outpoints.
  std::size_t genesis_outputs_per_account = 1;
  /// Account model: mean calldata bytes per transaction (drawn uniformly
  /// in [0, 2*mean]). Real Ethereum transactions average well above the
  /// 21k intrinsic gas; this reproduces that gas weighting (paper §VI-A).
  std::uint32_t account_tx_data_mean = 0;

  /// Crypto hot-path knobs (shared sigcache, batch verification).
  CryptoConfig crypto{};

  /// Observability knobs (metrics registry is always on; tracing opt-in).
  ObsConfig obs{};

  /// Persistence mode for every node's ledger store (ISSUE 9). Memory mode
  /// (default) keeps the same write-through accounting in RAM; disk mode
  /// adds the segmented log + mmap state backend. Byte-identical traces
  /// either way; see storage/config.hpp and apply_env_storage.
  storage::StorageConfig storage{};

  /// Open-loop traffic engine + admission control (ISSUE 10). When
  /// enabled, every node's mempool runs the byte-capacity fee market
  /// (traffic.queue_capacity_bytes, replacement on) and
  /// ClusterEngine::schedule_traffic() drives arrivals.
  TrafficConfig traffic{};

  std::uint64_t seed = 42;
};

/// Ledger policy plugged into ClusterEngine (see cluster_engine.hpp for
/// the full contract). Definitions live in chain_cluster.cpp.
struct ChainTraits {
  using Config = ChainClusterConfig;
  using Node = chain::ChainNode;
  using Amount = chain::Amount;

  /// Driver-side wallet bookkeeping.
  struct State {
    // UTXO model: outpoints already committed to in-flight txs.
    std::unordered_set<chain::Outpoint> reserved;
    std::size_t reserved_compact_at = 8192;
    // Account model: next nonce per workload account.
    std::vector<std::uint64_t> next_nonce;
    // Traffic engine (ISSUE 10): reverse account lookup so the mempool
    // evict handler can roll a sender's wallet nonce back to the evicted
    // slot (the wallet re-uses it, keeping the sender's queue gap-free).
    std::unordered_map<crypto::AccountId, std::size_t> account_index;
  };

  static State make_state(Config& config);
  static std::string system_name(const Config& config);
  static void build_nodes(ClusterEngine<ChainTraits>& e);
  static void after_topology(ClusterEngine<ChainTraits>& e);
  static void wire_lifecycle(ClusterEngine<ChainTraits>& e);
  static void start(ClusterEngine<ChainTraits>& e);
  static SubmitOutcome submit_payment(ClusterEngine<ChainTraits>& e,
                                      std::size_t from, std::size_t to,
                                      Amount amount);
  static void submit_traffic(ClusterEngine<ChainTraits>& e,
                             const TrafficEvent& ev);
  static void set_parallel_validation(ClusterEngine<ChainTraits>& e, bool on);
  static void set_parallel_state(ClusterEngine<ChainTraits>& e, bool on);
  static void fill_metrics(const ClusterEngine<ChainTraits>& e,
                           RunMetrics& m);
  static bool converged(const ClusterEngine<ChainTraits>& e);
};

class ChainCluster : public ClusterEngine<ChainTraits> {
 public:
  using ClusterEngine<ChainTraits>::ClusterEngine;
};

}  // namespace dlt::core
