// The generic cluster engine: one driver for all three ledger paradigms.
//
// ChainCluster, LatticeCluster and TangleCluster used to duplicate the
// simulation loop, topology construction, workload scheduling, crypto
// wiring (shared sigcache + verify pool), observability plumbing and
// RunMetrics assembly. ClusterEngine<Traits> owns all of that once; a
// LedgerTraits type supplies only the ledger-specific policy — node
// construction, payment submission, metric extraction and the convergence
// predicate. See DESIGN.md "Engine layering" for the traits contract.
//
// Determinism contract (inherited from the pre-refactor drivers and pinned
// by tests/cluster_engine_test.cpp): for a given seed, the engine performs
// the exact RNG stream splits of the historical drivers —
//
//   1. Rng(config.seed)
//   2. rng.fork()            → the network (latency jitter, loss)
//   3. rng.fork() per node   → node-local randomness, in index order
//   4. rng                   → topology wiring (random / small-world)
//
// and the construction order counters → network → workload accounts →
// nodes → topology → Traits::after_topology. Any reordering changes every
// downstream draw, so traces would diverge; keep this sequence frozen.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/cluster_common.hpp"
#include "core/metrics.hpp"
#include "core/traffic.hpp"
#include "core/workload.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "support/result.hpp"

namespace dlt::core {

/// What Traits::submit_payment reports back to the engine: the status the
/// caller sees, plus what the lifecycle tracker needs — the transaction's
/// trace id, the submission node, and which lifecycle stages completed
/// synchronously inside the call (the lattice applies a send locally
/// before returning, so admit and include coincide with submit; the chain
/// only admits to the mempool; async stages are stamped later by the
/// node-side hooks).
struct SubmitOutcome {
  Status status = Status::success();
  std::uint64_t tx_id = 0;   // obs::trace_id of the tx/block hash
  std::uint32_t node = 0;    // node that took the submission
  bool admitted = false;     // admitted into mempool/ledger during submit
  bool included = false;     // included on the reference replica already
};

/// Generic cluster driver parameterized by a ledger policy. `Traits` must
/// provide (see ChainTraits / LatticeTraits / TangleTraits):
///
///   using Config;  // cluster config: seed, node_count, account_count,
///                  // topology/link/random_degree, crypto, obs, ...
///   using Node;    // per-node network participant type
///   using Amount;  // payment amount type
///   struct State;  // driver-side bookkeeping (wallets, nonces, ...)
///
///   static State make_state(Config&);           // may normalize config
///   static std::string system_name(const Config&);
///   static void build_nodes(ClusterEngine&);    // forks rng per node
///   static void after_topology(ClusterEngine&); // e.g. auto-start
///   static void wire_lifecycle(ClusterEngine&); // confirmation events
///   static void start(ClusterEngine&);
///   static SubmitOutcome submit_payment(ClusterEngine&, std::size_t from,
///                                       std::size_t to, Amount);
///   static void submit_traffic(ClusterEngine&, const TrafficEvent&);
///                  // open-loop arrival → admission pipeline (ISSUE 10):
///                  // classify into engine.admission() and stamp the
///                  // lifecycle tracker with the arrival's fee class
///   static void set_parallel_validation(ClusterEngine&, bool);
///   static void set_parallel_state(ClusterEngine&, bool);
///   static void fill_metrics(const ClusterEngine&, RunMetrics&);
///   static bool converged(const ClusterEngine&);
///
/// wire_lifecycle is the confirmation-event trait hook (ISSUE 7): called
/// once after topology when lifecycle tracking is enabled, it installs
/// whatever per-ledger machinery turns "confirmed" into
/// LatencyTracker::on_confirm calls (the chain and lattice confirm from
/// existing node hooks, so theirs are no-ops; the tangle schedules a
/// recurring tip-cone coverage sweep).
template <typename Traits>
class ClusterEngine {
 public:
  using Config = typename Traits::Config;
  using Node = typename Traits::Node;
  using Amount = typename Traits::Amount;
  using State = typename Traits::State;

  explicit ClusterEngine(Config config)
      : config_(std::move(config)),
        rng_(config_.seed),
        crypto_(make_cluster_crypto(config_.crypto)),
        obs_(config_.obs),
        state_(Traits::make_state(config_)) {
    submitted_ = &obs_.metrics.counter("cluster.submitted");
    rejected_ = &obs_.metrics.counter("cluster.rejected");

    net_ = std::make_unique<net::Network>(sim_, rng_.fork());
    net_->set_probe(obs_.probe());

    // Workload accounts on the shared deterministic seed schedule, so
    // fixtures line up across ledger kinds.
    accounts_ = make_workload_accounts(config_.account_count);

    Traits::build_nodes(*this);

    std::vector<net::NodeId> ids;
    ids.reserve(nodes_.size());
    for (const auto& n : nodes_) ids.push_back(n->id());
    build_topology(*net_, ids, config_.topology, config_.link,
                   config_.random_degree, rng_);

    Traits::after_topology(*this);

    if (obs_.lifecycle.enabled()) Traits::wire_lifecycle(*this);
  }

  // ---- Generic driver surface (identical across ledger kinds) -----------

  sim::Simulation& simulation() { return sim_; }
  const sim::Simulation& simulation() const { return sim_; }
  net::Network& network() { return *net_; }
  const net::Network& network() const { return *net_; }
  Node& node(std::size_t i) { return *nodes_[i]; }
  const Node& node(std::size_t i) const { return *nodes_[i]; }
  std::size_t node_count() const { return nodes_.size(); }
  const crypto::KeyPair& account(std::size_t i) const { return accounts_[i]; }
  std::size_t account_count() const { return accounts_.size(); }

  /// Starts the ledger's active roles (miners, validators, voters, ...).
  void start() { Traits::start(*this); }

  /// Builds, signs and submits one payment between workload accounts,
  /// tallying cluster.submitted / cluster.rejected and registering the
  /// transaction with the lifecycle tracker (submit stamp, plus whatever
  /// stages the ledger completed synchronously inside the call — all at
  /// the same sim instant, so stamp order within it is immaterial).
  Status submit_payment(std::size_t from, std::size_t to, Amount amount) {
    SubmitOutcome out = Traits::submit_payment(*this, from, to, amount);
    if (out.status.ok()) {
      submitted_->inc();
      if (obs_.lifecycle.enabled()) {
        const double now = sim_.now();
        // Tagged with the sending account so per-issuer inclusion rates
        // (fairness.inclusion_gini, core/adversary.hpp) are attributable.
        obs_.lifecycle.on_submit(out.tx_id, now, out.node,
                                 static_cast<std::uint64_t>(from));
        if (out.admitted) obs_.lifecycle.on_admit(out.tx_id, now, out.node);
        if (out.included)
          obs_.lifecycle.on_include(out.tx_id, now, out.node);
      }
    } else {
      rejected_->inc();
    }
    return out.status;
  }

  /// Schedules an entire workload into the simulation.
  void schedule_workload(const std::vector<PaymentEvent>& events) {
    for (const PaymentEvent& ev : events) {
      sim_.schedule_at(sim_.now() + ev.time, [this, ev] {
        (void)submit_payment(ev.from, ev.to, static_cast<Amount>(ev.amount));
      });
    }
  }

  /// Starts the open-loop traffic engine (ISSUE 10): arrivals generate on
  /// sim-time events from config().traffic, independent of ledger
  /// progress, each handed to Traits::submit_traffic which classifies it
  /// into the admission() tallies. No-op unless traffic.enabled. The
  /// arrival stream draws from its own dedicated Rng (traffic.seed) and
  /// is scheduled one-event-ahead, so it composes with any other
  /// scheduled workload without shifting the cluster RNG chain.
  void schedule_traffic() {
    const TrafficConfig& tc = config_.traffic;
    if (!tc.enabled || tc.rate <= 0.0 || tc.duration <= 0.0) return;
    traffic_ = std::make_unique<TrafficSource>(tc, accounts_.size());
    traffic_start_ = sim_.now();
    schedule_next_arrival();
  }

  /// Open-loop admission tallies (all zero unless schedule_traffic ran).
  AdmissionStats& admission() { return admission_; }
  const AdmissionStats& admission() const { return admission_; }

  /// Runs the simulation for `seconds` of simulated time.
  void run_for(double seconds) { sim_.run_until(sim_.now() + seconds); }

  /// Toggles the sharded validation pipeline on every node (no-op per node
  /// without a verify pool). Safe mid-run: either mode yields
  /// byte-identical simulation output for a given seed.
  void set_parallel_validation(bool on) {
    Traits::set_parallel_validation(*this, on);
  }

  /// Toggles the sharded stateful-apply pipeline on every node's ledger
  /// (Traits::set_parallel_state). Byte-identical output either way.
  void set_parallel_state(bool on) { Traits::set_parallel_state(*this, on); }

  /// Snapshot of aggregated metrics (reference view: node 0). The engine
  /// fills the ledger-independent fields; Traits::fill_metrics the rest.
  RunMetrics metrics() const {
    RunMetrics m;
    m.system = Traits::system_name(config_);
    m.sim_duration = sim_.now();
    m.submitted = submitted_->value();
    m.rejected = rejected_->value();
    Traits::fill_metrics(*this, m);
    m.messages = net_->traffic().messages;
    m.message_bytes = net_->traffic().bytes;
    m.admission_submitted = admission_.submitted;
    m.admission_admitted = admission_.admitted;
    m.admission_rejected = admission_.rejected;
    m.admission_evicted = admission_.evicted;
    m.admission_backpressured = admission_.backpressured;
    return m;
  }

  /// True when every node agrees on the ledger frontier.
  bool converged() const { return Traits::converged(*this); }

  /// The cluster-wide signature cache (null when crypto.shared_sigcache is
  /// off); benches read its hit-rate stats.
  crypto::SignatureCache* sigcache() { return crypto_.sigcache.get(); }
  const crypto::SignatureCache* sigcache() const {
    return crypto_.sigcache.get();
  }

  /// Cluster-wide observability state (nodes and the network feed it).
  obs::MetricsRegistry& metrics_registry() { return obs_.metrics; }
  const obs::MetricsRegistry& metrics_registry() const {
    return obs_.metrics;
  }
  obs::Tracer& tracer() { return obs_.tracer; }
  const obs::Tracer& tracer() const { return obs_.tracer; }
  /// The transaction-lifecycle tracker; nullptr while tracking is off
  /// (obs.track_latency=false), so node hooks fall back to their
  /// historical trace emission with a single pointer check.
  obs::LatencyTracker* lifecycle_tracker() {
    return obs_.lifecycle.enabled() ? &obs_.lifecycle : nullptr;
  }
  const obs::LatencyTracker& lifecycle() const { return obs_.lifecycle; }
  /// Registry JSON with sim.* gauges refreshed — the bench `metrics`
  /// section.
  support::JsonObject metrics_json() {
    obs_.capture_sim(sim_);
    if (config_.traffic.enabled) {
      obs_.metrics.gauge("admission.submitted")
          .set(static_cast<double>(admission_.submitted));
      obs_.metrics.gauge("admission.admitted")
          .set(static_cast<double>(admission_.admitted));
      obs_.metrics.gauge("admission.rejected")
          .set(static_cast<double>(admission_.rejected));
      obs_.metrics.gauge("admission.evicted")
          .set(static_cast<double>(admission_.evicted));
      obs_.metrics.gauge("admission.backpressured")
          .set(static_cast<double>(admission_.backpressured));
    }
    return obs_.metrics.to_json();
  }
  support::JsonObject trace_summary_json() const {
    return obs_.tracer.summary_json();
  }

  // ---- Traits-facing surface (node construction, submission paths) ------

  Config& config() { return config_; }
  const Config& config() const { return config_; }
  Rng& rng() { return rng_; }
  ClusterCrypto& crypto_handles() { return crypto_; }
  const ClusterCrypto& crypto_handles() const { return crypto_; }
  ClusterObs& obs() { return obs_; }
  State& state() { return state_; }
  const State& state() const { return state_; }
  /// Probe for node `i`; namespaced under "node.<i>." when
  /// obs.per_node_metrics is on (see ClusterObs::probe_for).
  obs::Probe node_probe(std::size_t i) { return obs_.probe_for(i); }
  void add_node(std::unique_ptr<Node> node) {
    nodes_.push_back(std::move(node));
  }
  obs::Counter& submitted_counter() { return *submitted_; }
  obs::Counter& rejected_counter() { return *rejected_; }

 private:
  // One-event-ahead arrival scheduling: each fired arrival books the next
  // one, so the sim's event queue never holds more than one future
  // arrival no matter how far past saturation the offered load runs.
  void schedule_next_arrival() {
    TrafficEvent ev;
    if (!traffic_->next(ev)) return;
    sim_.schedule_at(traffic_start_ + ev.time, [this, ev] {
      ++admission_.submitted;
      submitted_->inc();
      Traits::submit_traffic(*this, ev);
      schedule_next_arrival();
    });
  }

  // Declaration order is load-bearing: rng_ before crypto_/obs_ (ctor init
  // list), sim_ before net_ (network holds a reference), nodes_ after net_
  // (nodes deregister against a live network on destruction).
  Config config_;
  Rng rng_;
  ClusterCrypto crypto_;
  ClusterObs obs_;
  State state_;
  sim::Simulation sim_;
  std::unique_ptr<net::Network> net_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<crypto::KeyPair> accounts_;

  // Open-loop traffic engine state (ISSUE 10).
  std::unique_ptr<TrafficSource> traffic_;
  double traffic_start_ = 0.0;
  AdmissionStats admission_;

  // Workload tallies live in the cluster registry (obs_.metrics); these
  // are cached handles into it.
  obs::Counter* submitted_ = nullptr;
  obs::Counter* rejected_ = nullptr;
};

}  // namespace dlt::core
