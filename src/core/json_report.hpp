// Machine-readable bench reports.
//
// The JSON emitter itself lives in support/json.hpp so the observability
// layer (src/obs) can serialize without depending on core; this header
// re-exports it under the historical dlt::core names and adds the
// RunMetrics serializer shared by every cluster bench.
//
// Benches print human tables to stdout and additionally write
// BENCH_<name>.json via write_bench_report(), so the perf trajectory can be
// tracked across PRs by tooling (tools/bench_diff.py) instead of by
// eyeballing tables.
#pragma once

#include <string>

#include "core/metrics.hpp"
#include "obs/metrics.hpp"
#include "support/json.hpp"

namespace dlt::core {

using support::JsonArray;
using support::JsonObject;
using support::json_escape;
using support::json_number;
using support::write_bench_report;

/// Serializes a RunMetrics aggregate (counts, tps, latency percentiles,
/// fork dynamics, storage, traffic) as a JsonObject for bench reports.
JsonObject run_metrics_json(const RunMetrics& m);

/// One-line human summary of the end-to-end lifecycle histogram
/// ("latency.submit_to_confirm" p50/p99, obs/latency.hpp) for bench
/// stdout. Empty when lifecycle tracking is off or nothing confirmed.
std::string latency_summary_line(const obs::MetricsRegistry& registry);

}  // namespace dlt::core
