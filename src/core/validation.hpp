// Verdicts produced by the sharded stateless-validation phase and consumed
// by the serial state-application phase — the shared vocabulary of the
// collect/shard/join pipeline across all three ledgers (chain, lattice,
// tangle).
//
// The pipeline runs the expensive pure checks (signatures, signer
// derivation, proof-of-work) on the verify pool, writing each result into a
// pre-sized slot. The serial consume loop then reads the slots in the same
// order the serial reference path would have performed the checks, so the
// error reported for an invalid input is identical: every check is a pure
// function of its input, which makes a verdict slot equivalent to an
// inline check at the same position in the serial order.
//
// Chain blocks carry per-input signatures (UTXO) or one authorizing
// signature per transaction (account model) → InputVerdict/TxVerdict/
// BlockVerdicts. Lattice blocks and tangle transactions carry one signature
// plus one hashcash each → StatelessVerdict. Depends only on crypto/, so
// any ledger layer can include it.
#pragma once

#include <cstddef>
#include <vector>

#include "crypto/keys.hpp"

namespace dlt::core {

/// One signed input (UTXO model) or the single authorizing signature of an
/// account transaction.
struct InputVerdict {
  crypto::AccountId signer{};  // account_of(pubkey), for the owner check
  bool sig_ok = false;         // signature valid over the tx sighash
};

struct TxVerdict {
  std::vector<InputVerdict> inputs;  // index-aligned with tx.inputs
};

/// Index-aligned with the block's transaction list.
struct BlockVerdicts {
  std::vector<TxVerdict> txs;

  const TxVerdict* tx(std::size_t i) const {
    return i < txs.size() ? &txs[i] : nullptr;
  }
};

/// The single-signature + single-work verdict used by ledgers whose unit of
/// validation carries exactly one authorization (lattice blocks, tangle
/// transactions). `work_ok` is pre-set to true when the ledger skips work
/// verification so the consume phase stays branch-free.
struct StatelessVerdict {
  bool sig_ok = false;
  bool work_ok = true;
};

}  // namespace dlt::core
