#include "core/tangle_cluster.hpp"

#include <unordered_map>
#include <unordered_set>

#include "crypto/hash.hpp"
#include "support/serialize.hpp"

namespace dlt::core {

namespace {

using Engine = ClusterEngine<TangleTraits>;

/// Payload commitment for a workload payment: the tangle carries opaque
/// content, so the payment is committed, not interpreted.
Hash256 payment_payload(std::size_t from, std::size_t to,
                        std::uint64_t amount, std::uint64_t seq) {
  Writer w;
  w.u64(from);
  w.u64(to);
  w.u64(amount);
  w.u64(seq);
  return crypto::tagged_hash("dlt/tangle-payment",
                             ByteView{w.bytes().data(), w.size()});
}

}  // namespace

TangleTraits::State TangleTraits::make_state(Config&) { return State{}; }

std::string TangleTraits::system_name(const Config&) { return "iota-like"; }

void TangleTraits::build_nodes(Engine& e) {
  const Config& config = e.config();
  const ClusterCrypto& crypto = e.crypto_handles();
  for (std::size_t i = 0; i < config.node_count; ++i) {
    tangle::TangleNodeConfig nc;
    nc.verify_pool = crypto.verify_pool;
    nc.parallel_validation = config.crypto.parallel_validation;
    nc.parallel_state = config.crypto.parallel_state;
    nc.probe = e.node_probe(i);
    e.add_node(std::make_unique<tangle::TangleNode>(
        e.network(), config.params, nc, e.rng().fork()));
  }
}

void TangleTraits::after_topology(Engine&) {}

// Tangle nodes are purely reactive (no miners/voters to schedule); start()
// is a no-op kept for API symmetry with the other ledgers.
void TangleTraits::start(Engine&) {}

Status TangleTraits::submit_payment(Engine& e, std::size_t from,
                                    std::size_t to, Amount amount) {
  const Hash256 payload =
      payment_payload(from, to, amount, e.state().payment_seq++);
  tangle::TangleNode& issuer = e.node(from % e.node_count());
  auto res = issuer.issue(e.account(from), payload);
  if (res) return Status::success();
  return res.error();
}

void TangleTraits::set_parallel_validation(Engine& e, bool on) {
  for (std::size_t i = 0; i < e.node_count(); ++i)
    e.node(i).tangle().set_parallel_validation(on);
}

void TangleTraits::set_parallel_state(Engine& e, bool on) {
  for (std::size_t i = 0; i < e.node_count(); ++i)
    e.node(i).tangle().set_parallel_state(on);
}

void TangleTraits::fill_metrics(const Engine& e, RunMetrics& m) {
  const tangle::Tangle& tangle = e.node(0).tangle();

  // Included: every transaction in the reference replica except genesis.
  m.included = tangle.size() > 0 ? tangle.size() - 1 : 0;
  m.blocks_produced = m.included;

  // Confirmed: one past-cone walk per tip accumulates, for every
  // transaction, how many tips approve it; confidence = approvers / tips
  // (confirmation_confidence, batched so the scan is O(tips × cone)
  // instead of O(txs × tips × cone)).
  const std::vector<tangle::TxHash> tips = tangle.tips();
  std::unordered_map<tangle::TxHash, std::size_t> approve_count;
  for (const tangle::TxHash& tip : tips)
    for (const tangle::TxHash& h : tangle.past_cone(tip))
      ++approve_count[h];
  std::uint64_t confirmed = 0;
  if (!tips.empty()) {
    const double threshold =
        e.config().confirmation_threshold * static_cast<double>(tips.size());
    for (const auto& [hash, count] : approve_count) {
      if (hash == tangle.genesis()) continue;
      if (static_cast<double>(count) >= threshold) ++confirmed;
    }
  }
  m.confirmed = confirmed;

  // Backlog: tips are exactly the transactions nothing approves yet.
  m.pending_end = tangle.tip_count();
  m.stored_bytes = tangle.stored_bytes();
}

bool TangleTraits::converged(const Engine& e) {
  const tangle::Tangle& reference = e.node(0).tangle();
  const std::vector<tangle::TxHash> ref_tips = reference.tips();
  const std::unordered_set<tangle::TxHash> ref_tip_set(ref_tips.begin(),
                                                       ref_tips.end());
  for (std::size_t i = 0; i < e.node_count(); ++i) {
    const tangle::Tangle& t = e.node(i).tangle();
    if (t.size() != reference.size()) return false;
    const std::vector<tangle::TxHash> tips = t.tips();
    if (tips.size() != ref_tip_set.size()) return false;
    for (const tangle::TxHash& tip : tips)
      if (!ref_tip_set.count(tip)) return false;
    if (e.node(i).gap_pool_size() != 0) return false;
  }
  return true;
}

}  // namespace dlt::core
