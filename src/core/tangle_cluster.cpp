#include "core/tangle_cluster.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "crypto/hash.hpp"
#include "support/serialize.hpp"

namespace dlt::core {

namespace {

using Engine = ClusterEngine<TangleTraits>;

/// Payload commitment for a workload payment: the tangle carries opaque
/// content, so the payment is committed, not interpreted.
Hash256 payment_payload(std::size_t from, std::size_t to,
                        std::uint64_t amount, std::uint64_t seq) {
  Writer w;
  w.u64(from);
  w.u64(to);
  w.u64(amount);
  w.u64(seq);
  return crypto::tagged_hash("dlt/tangle-payment",
                             ByteView{w.bytes().data(), w.size()});
}

/// One lifecycle sweep: recompute tip-cone confidence on the reference
/// replica (same batched scan as fill_metrics) and stamp confirmation for
/// every tracked transaction that crossed the threshold. Hashes are
/// processed in sorted order so the confirm-event stream is canonical.
void run_confirmation_sweep(Engine& e) {
  obs::LatencyTracker* tracker = e.lifecycle_tracker();
  if (!tracker || tracker->in_flight() == 0) return;

  const tangle::Tangle& tangle = e.node(0).tangle();
  const std::vector<tangle::TxHash> tips = tangle.tips();
  if (tips.empty()) return;
  std::unordered_map<tangle::TxHash, std::size_t> approve_count;
  for (const tangle::TxHash& tip : tips)
    for (const tangle::TxHash& h : tangle.past_cone(tip))
      ++approve_count[h];

  const double threshold =
      e.config().confirmation_threshold * static_cast<double>(tips.size());
  std::vector<tangle::TxHash> crossed;
  for (const auto& [hash, count] : approve_count) {
    if (hash == tangle.genesis()) continue;
    if (static_cast<double>(count) >= threshold) crossed.push_back(hash);
  }
  std::sort(crossed.begin(), crossed.end());
  const double now = e.simulation().now();
  for (const tangle::TxHash& hash : crossed)
    tracker->on_confirm(obs::trace_id(hash), now, e.node(0).id());
}

void schedule_confirmation_sweep(Engine& e, double interval) {
  e.simulation().schedule_in(interval, [&e, interval] {
    run_confirmation_sweep(e);
    schedule_confirmation_sweep(e, interval);
  });
}

// ---- Open-loop admission pipeline (ISSUE 10) ----------------------------
// Mirrors the lattice: issue() attaches synchronously, so admission
// control is a per-issuer-node AdmissionQueue drained on a fixed service
// cadence. See lattice_cluster.cpp for the rationale.

void ensure_queues(Engine& e) {
  TangleTraits::State& st = e.state();
  if (!st.queues.empty()) return;
  st.queues.assign(e.node_count(),
                   AdmissionQueue(e.config().traffic.queue_capacity_bytes));
  st.drain_armed.assign(e.node_count(), 0);
}

void arm_drain(Engine& e, std::size_t issuer);

void drain_queue(Engine& e, std::size_t issuer_index) {
  TangleTraits::State& st = e.state();
  st.drain_armed[issuer_index] = 0;
  AdmissionQueue& q = st.queues[issuer_index];
  AdmissionStats& adm = e.admission();
  obs::LatencyTracker* tracker = e.lifecycle_tracker();
  const std::size_t burst =
      std::max<std::size_t>(1, e.config().traffic.drain_burst);
  for (std::size_t i = 0; i < burst; ++i) {
    QueuedPayment p;
    if (!q.pop(p)) break;
    const Hash256 payload =
        payment_payload(p.from, p.to, p.amount, st.payment_seq++);
    tangle::TangleNode& issuer = e.node(issuer_index);
    auto res = issuer.issue(e.account(p.from), payload);
    if (!res) {
      if (adm.admitted > 0) --adm.admitted;
      ++adm.rejected;
      e.rejected_counter().inc();
      continue;
    }
    if (tracker) {
      const double now = e.simulation().now();
      const std::uint64_t id = obs::trace_id(*res);
      // Submit is stamped at ENQUEUE time (queue wait counts); include
      // means "attached on the reference replica", so it is stamped here
      // only when node 0 issues — otherwise node 0 stamps it on gossip.
      tracker->on_submit(id, p.submit_time, issuer.id(),
                         static_cast<std::uint64_t>(p.from), p.fee_class);
      tracker->on_admit(id, now, issuer.id());
      if (issuer.id() == e.node(0).id())
        tracker->on_include(id, now, issuer.id());
    }
  }
  if (!q.empty()) arm_drain(e, issuer_index);
}

void arm_drain(Engine& e, std::size_t issuer) {
  TangleTraits::State& st = e.state();
  if (st.drain_armed[issuer]) return;
  st.drain_armed[issuer] = 1;
  e.simulation().schedule_in(e.config().traffic.drain_interval,
                             [&e, issuer] { drain_queue(e, issuer); });
}

}  // namespace

TangleTraits::State TangleTraits::make_state(Config&) { return State{}; }

std::string TangleTraits::system_name(const Config&) { return "iota-like"; }

void TangleTraits::build_nodes(Engine& e) {
  const Config& config = e.config();
  const ClusterCrypto& crypto = e.crypto_handles();
  for (std::size_t i = 0; i < config.node_count; ++i) {
    tangle::TangleNodeConfig nc;
    nc.verify_pool = crypto.verify_pool;
    nc.parallel_validation = config.crypto.parallel_validation;
    nc.parallel_state = config.crypto.parallel_state;
    nc.probe = e.node_probe(i);
    nc.lifecycle = e.lifecycle_tracker();
    nc.lifecycle_observer = (i == 0);
    // Every node gets a store (memory mode by default) so storage.* gauges
    // appear in every report and the memory/disk differential stays a pure
    // config flip (ISSUE 9).
    nc.store = std::make_shared<storage::LedgerStore>(
        config.storage, system_name(config) + "-s" +
                            std::to_string(config.seed) + "/node" +
                            std::to_string(i));
    nc.store->attach_probe(e.node_probe(i));
    e.add_node(std::make_unique<tangle::TangleNode>(
        e.network(), config.params, nc, e.rng().fork()));
  }
}

void TangleTraits::after_topology(Engine&) {}

// The tangle has no per-node quorum event to hook; confirmation (tip-cone
// confidence crossing the threshold, §IV) is re-evaluated by a recurring
// deterministic sweep on the reference replica.
void TangleTraits::wire_lifecycle(Engine& e) {
  const double interval = e.config().confirmation_sweep_interval;
  if (interval > 0) schedule_confirmation_sweep(e, interval);
}

// Tangle nodes are purely reactive (no miners/voters to schedule); start()
// is a no-op kept for API symmetry with the other ledgers.
void TangleTraits::start(Engine&) {}

SubmitOutcome TangleTraits::submit_payment(Engine& e, std::size_t from,
                                           std::size_t to, Amount amount) {
  const Hash256 payload =
      payment_payload(from, to, amount, e.state().payment_seq++);
  tangle::TangleNode& issuer = e.node(from % e.node_count());
  auto res = issuer.issue(e.account(from), payload);
  if (!res) return SubmitOutcome{res.error()};
  SubmitOutcome out;
  out.tx_id = obs::trace_id(*res);
  out.node = issuer.id();
  // issue() attached locally before gossiping: admission is synchronous.
  // Inclusion means "attached on the reference replica", so it coincides
  // with submit only when node 0 itself is the issuer; otherwise node 0
  // stamps it on gossip receipt.
  out.admitted = true;
  out.included = (issuer.id() == e.node(0).id());
  return out;
}

void TangleTraits::submit_traffic(Engine& e, const TrafficEvent& ev) {
  const TrafficConfig& tc = e.config().traffic;
  ensure_queues(e);
  const std::size_t issuer = ev.from % e.node_count();
  QueuedPayment p;
  p.submit_time = e.simulation().now();
  p.from = ev.from;
  p.to = ev.to;
  p.amount = ev.amount;
  p.fee_class = ev.fee_class;
  p.fee = tc.base_fee * fee_class_multiplier(ev.fee_class);
  p.bytes = tc.payment_bytes;
  std::vector<QueuedPayment> evicted;
  const auto res = e.state().queues[issuer].push(p, &evicted);
  AdmissionStats& adm = e.admission();
  // Queue-evicted payments never reached the ledger, so there is no
  // lifecycle entry to retire — only the tallies move.
  for (std::size_t i = 0; i < evicted.size(); ++i) {
    if (adm.admitted > 0) --adm.admitted;
    ++adm.evicted;
  }
  if (res == AdmissionQueue::Push::kBackpressured) {
    ++adm.backpressured;
    return;
  }
  ++adm.admitted;
  arm_drain(e, issuer);
}

void TangleTraits::set_parallel_validation(Engine& e, bool on) {
  for (std::size_t i = 0; i < e.node_count(); ++i)
    e.node(i).tangle().set_parallel_validation(on);
}

void TangleTraits::set_parallel_state(Engine& e, bool on) {
  for (std::size_t i = 0; i < e.node_count(); ++i)
    e.node(i).tangle().set_parallel_state(on);
}

void TangleTraits::fill_metrics(const Engine& e, RunMetrics& m) {
  const tangle::Tangle& tangle = e.node(0).tangle();

  // Included: every transaction in the reference replica except genesis.
  m.included = tangle.size() > 0 ? tangle.size() - 1 : 0;
  m.blocks_produced = m.included;

  // Confirmed: one past-cone walk per tip accumulates, for every
  // transaction, how many tips approve it; confidence = approvers / tips
  // (confirmation_confidence, batched so the scan is O(tips × cone)
  // instead of O(txs × tips × cone)).
  const std::vector<tangle::TxHash> tips = tangle.tips();
  std::unordered_map<tangle::TxHash, std::size_t> approve_count;
  for (const tangle::TxHash& tip : tips)
    for (const tangle::TxHash& h : tangle.past_cone(tip))
      ++approve_count[h];
  std::uint64_t confirmed = 0;
  if (!tips.empty()) {
    const double threshold =
        e.config().confirmation_threshold * static_cast<double>(tips.size());
    for (const auto& [hash, count] : approve_count) {
      if (hash == tangle.genesis()) continue;
      if (static_cast<double>(count) >= threshold) ++confirmed;
    }
  }
  m.confirmed = confirmed;

  // Backlog: tips are exactly the transactions nothing approves yet.
  m.pending_end = tangle.tip_count();
  m.stored_bytes = tangle.stored_bytes();
}

bool TangleTraits::converged(const Engine& e) {
  const tangle::Tangle& reference = e.node(0).tangle();
  const std::vector<tangle::TxHash> ref_tips = reference.tips();
  const std::unordered_set<tangle::TxHash> ref_tip_set(ref_tips.begin(),
                                                       ref_tips.end());
  for (std::size_t i = 0; i < e.node_count(); ++i) {
    const tangle::Tangle& t = e.node(i).tangle();
    if (t.size() != reference.size()) return false;
    const std::vector<tangle::TxHash> tips = t.tips();
    if (tips.size() != ref_tip_set.size()) return false;
    for (const tangle::TxHash& tip : tips)
      if (!ref_tip_set.count(tip)) return false;
    if (e.node(i).gap_pool_size() != 0) return false;
  }
  return true;
}

}  // namespace dlt::core
