#include "core/adversary.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "crypto/hash.hpp"
#include "support/serialize.hpp"

namespace dlt::core {

namespace {

// Interned once; released selfish blocks ride the nodes' own block topic.
const net::MsgType kMsgBlock = net::msg_type("block");

Hash256 adversary_spend_key(std::uint64_t key_seed) {
  Writer w;
  w.u64(key_seed);
  return crypto::tagged_hash("dlt/adv-spend",
                             ByteView{w.bytes().data(), w.size()});
}

Hash256 adversary_payload(std::uint64_t key_seed, std::uint64_t seq) {
  Writer w;
  w.u64(key_seed);
  w.u64(seq);
  return crypto::tagged_hash("dlt/adv-payload",
                             ByteView{w.bytes().data(), w.size()});
}

void set_gauge(obs::MetricsRegistry& registry, const std::string& name,
               double value) {
  registry.gauge(name).set(value);
}

}  // namespace

// ---------------------------------------------------------------------------
// TangleAdversary

TangleAdversary::TangleAdversary(TangleCluster& cluster,
                                 AdversaryConfig config)
    : cluster_(cluster),
      config_(config),
      key_(crypto::KeyPair::from_seed(config.key_seed)),
      rng_(config.key_seed),
      contested_key_(adversary_spend_key(config.key_seed)) {}

tangle::TangleTx TangleAdversary::build_tx(const tangle::TxHash& trunk,
                                           const tangle::TxHash& branch,
                                           const Hash256& spend_key) {
  const double now = cluster_.simulation().now();
  const Hash256 payload = adversary_payload(config_.key_seed, payload_seq_++);
  return tangle::make_tx(cluster_.node(config_.node).tangle(), key_, trunk,
                         branch, payload, now, rng_, spend_key,
                         config_.tx_weight);
}

void TangleAdversary::start() {
  if (!active()) return;
  sim::Simulation& sim = cluster_.simulation();
  switch (config_.kind) {
    case AdversaryKind::kParasite:
      sim.schedule_at(config_.start_time, [this] { issue_parasite_target(); });
      sim.schedule_at(config_.release_time, [this] { release_parasite(); });
      break;
    case AdversaryKind::kSpam:
      sim.schedule_at(config_.start_time, [this] { spam_burst(); });
      break;
    case AdversaryKind::kRace:
      sim.schedule_at(config_.start_time, [this] { open_race(); });
      sim.schedule_at(config_.release_time, [this] { heal_race(); });
      break;
    case AdversaryKind::kNone:
      break;
  }
}

void TangleAdversary::issue_parasite_target() {
  // The honest payment the attacker wants reverted: attached to the
  // current frontier like any legitimate transaction, carrying the
  // contested spend key.
  tangle::TangleNode& node = cluster_.node(config_.node);
  const std::vector<Hash256> avoid{contested_key_};
  const tangle::TxHash trunk = node.tangle().select_tip(rng_, avoid);
  const tangle::TxHash branch = node.tangle().select_tip(rng_, avoid);
  tangle::TangleTx target = build_tx(trunk, branch, contested_key_);
  honest_target_ = target.hash();
  if (node.inject(target).ok()) ++injected_;
}

void TangleAdversary::release_parasite() {
  // Withheld parasite chain, built and released at once: a conflicting
  // root anchored at genesis (stale, so the honest cone never contains
  // it), a spine accreting cumulative weight, and a fan of fresh leaves
  // competing for tip selection. power scales both against the honest
  // tangle size at release time.
  tangle::TangleNode& node = cluster_.node(config_.node);
  const double size_est =
      static_cast<double>(cluster_.node(0).tangle().size());
  const auto arm = static_cast<std::size_t>(
      std::max(1.0, std::round(config_.power * 0.5 * size_est)));

  tangle::TangleTx root = build_tx(node.tangle().genesis(),
                                   node.tangle().genesis(), contested_key_);
  parasite_root_ = root.hash();
  if (node.inject(root).ok()) ++injected_;

  tangle::TxHash spine = parasite_root_;
  for (std::size_t i = 1; i < arm; ++i) {
    tangle::TangleTx tx = build_tx(spine, spine, Hash256{});
    spine = tx.hash();
    if (node.inject(tx).ok()) ++injected_;
  }
  for (std::size_t i = 0; i < arm; ++i) {
    tangle::TangleTx leaf = build_tx(spine, spine, Hash256{});
    if (node.inject(leaf).ok()) ++injected_;
  }
}

void TangleAdversary::spam_burst() {
  // Lazy-tip spam: every transaction approves genesis instead of the
  // frontier, so it adds tips without ever approving honest ones.
  tangle::TangleNode& node = cluster_.node(config_.node);
  const auto burst = static_cast<std::size_t>(
      std::max(1.0, std::round(config_.power * config_.spam_burst_scale)));
  for (std::size_t i = 0; i < burst; ++i) {
    tangle::TangleTx tx = build_tx(node.tangle().genesis(),
                                   node.tangle().genesis(), Hash256{});
    if (node.inject(tx).ok()) ++injected_;
  }
  const double next = cluster_.simulation().now() + config_.interval;
  if (config_.stop_time > 0.0 && next >= config_.stop_time) return;
  cluster_.simulation().schedule_at(next, [this] { spam_burst(); });
}

void TangleAdversary::open_race() {
  // Minority side size scales with power (at least one node, never all).
  const std::size_t n = cluster_.node_count();
  const auto b_count = std::min(
      n - 1, std::max<std::size_t>(
                 1, static_cast<std::size_t>(
                        std::round(config_.power * static_cast<double>(n)))));
  race_side_b_node_ = n - b_count;
  std::vector<net::NodeId> side_a, side_b;
  for (std::size_t i = 0; i < race_side_b_node_; ++i)
    side_a.push_back(cluster_.node(i).id());
  for (std::size_t i = race_side_b_node_; i < n; ++i)
    side_b.push_back(cluster_.node(i).id());
  cluster_.network().set_partitions({side_a, side_b});

  // One conflicting spend per side, anchored at genesis so both attach
  // unconditionally on their own side.
  const tangle::TxHash genesis = cluster_.node(0).tangle().genesis();
  tangle::TangleTx tx_a = build_tx(genesis, genesis, contested_key_);
  race_a_ = tx_a.hash();
  if (cluster_.node(0).inject(tx_a).ok()) ++injected_;
  tangle::TangleTx tx_b = build_tx(genesis, genesis, contested_key_);
  race_b_ = tx_b.hash();
  if (cluster_.node(race_side_b_node_).inject(tx_b).ok()) ++injected_;
}

void TangleAdversary::heal_race() { cluster_.network().heal(); }

void TangleAdversary::measure() {
  obs::MetricsRegistry& reg = cluster_.metrics_registry();
  // Fixed-seed measurement stream: measuring never perturbs the run (it
  // happens after it) and is itself reproducible.
  Rng meas(config_.key_seed ^ 0x5EEDF00DULL);
  const tangle::Tangle& reference = cluster_.node(0).tangle();

  switch (config_.kind) {
    case AdversaryKind::kParasite: {
      flip_probability_ =
          active() ? reference.walk_confidence(parasite_root_, meas,
                                               config_.measure_samples)
                   : 0.0;
      set_gauge(reg, "attack.parasite.flip_probability", flip_probability_);
      break;
    }
    case AdversaryKind::kSpam: {
      // Approver share: the probability that a fresh tip selection (the
      // replica's configured strategy) lands on an honest-issued tip.
      // Walk-weighted rather than a raw tip-count ratio: under MCMC the
      // weight bias keeps selections off weight-1 spam tips, and raw
      // counts are not monotone (honest traffic that approves a spam tip
      // mints new honest-issued tips).
      auto clean = [&](const tangle::TxHash& tip) {
        const tangle::TangleTx* tx = reference.find(tip);
        if (!tx) return tip == reference.genesis();
        return tx->issuer != key_.account_id();
      };
      int hits = 0;
      for (int i = 0; i < config_.measure_samples; ++i)
        if (clean(reference.select_tip(meas))) ++hits;
      honest_tip_share_ =
          config_.measure_samples > 0
              ? static_cast<double>(hits) /
                    static_cast<double>(config_.measure_samples)
              : 1.0;
      set_gauge(reg, "attack.spam.honest_tip_share", honest_tip_share_);
      break;
    }
    case AdversaryKind::kRace: {
      // Each side judges its own spend on its own replica: the tangle has
      // no backfill, so partitioned-away history stays invisible and the
      // two views legitimately disagree (tests assert on that).
      side_a_confidence_ =
          active() ? cluster_.node(0).tangle().walk_confidence(
                         race_a_, meas, config_.measure_samples)
                   : 0.0;
      side_b_confidence_ =
          active() ? cluster_.node(race_side_b_node_)
                         .tangle()
                         .walk_confidence(race_b_, meas,
                                          config_.measure_samples)
                   : 0.0;
      set_gauge(reg, "attack.race.side_a_confidence", side_a_confidence_);
      set_gauge(reg, "attack.race.side_b_confidence", side_b_confidence_);
      break;
    }
    case AdversaryKind::kNone:
      break;
  }
  set_gauge(reg, "fairness.inclusion_gini",
            inclusion_gini(cluster_.lifecycle()));
}

// ---------------------------------------------------------------------------
// ChainSelfishMiner

ChainSelfishMiner::ChainSelfishMiner(ChainCluster& cluster,
                                     SelfishMinerConfig config)
    : cluster_(cluster),
      config_(config),
      key_(crypto::KeyPair::from_seed(config.key_seed)),
      rng_(config.key_seed) {
  if (config_.power > 0.0 && config_.power < 1.0) {
    hashrate_ = config_.power / (1.0 - config_.power) *
                cluster_.config().total_hashrate;
  }
}

void ChainSelfishMiner::start() {
  if (!active()) return;
  assert(cluster_.config().params.tx_model == chain::TxModel::kUtxo &&
         "selfish miner builds coinbase-only UTXO blocks");
  cluster_.simulation().schedule_at(config_.start_time, [this] {
    refork_to_public_tip();
    poll();
  });
}

void ChainSelfishMiner::refork_to_public_tip() {
  const chain::Blockchain& pub = cluster_.node(config_.node).chain();
  fork_point_ = pub.tip_hash();
  fork_height_ = pub.height();
  // Cached at the fork: next_difficulty() needs the parent in the public
  // index, which later private parents are not. Exact while no retarget
  // boundary is crossed (retarget_window 0, or runs shorter than it).
  fork_difficulty_ = pub.next_difficulty(fork_point_);
  last_timestamp_ = pub.find(fork_point_)->header.timestamp;
  withheld_.clear();
  schedule_mining();
}

void ChainSelfishMiner::schedule_mining() {
  if (mining_event_ != sim::kInvalidEvent)
    cluster_.simulation().cancel(mining_event_);
  const double mean_solve = fork_difficulty_ / hashrate_;
  const double delay = rng_.exponential(mean_solve);
  mining_event_ = cluster_.simulation().schedule_in(delay, [this] {
    mining_event_ = sim::kInvalidEvent;
    mine_private_block();
  });
}

void ChainSelfishMiner::mine_private_block() {
  const chain::ChainParams& params = cluster_.config().params;
  const chain::BlockHash parent =
      withheld_.empty() ? fork_point_ : withheld_.back().hash();
  const auto height =
      fork_height_ + static_cast<std::uint32_t>(withheld_.size()) + 1;

  chain::Block block;
  block.header.height = height;
  block.header.parent = parent;
  block.header.timestamp =
      std::max(cluster_.simulation().now(), last_timestamp_);
  block.header.difficulty = fork_difficulty_;
  block.header.proposer = key_.account_id();
  block.txs = chain::UtxoTxList{chain::UtxoTransaction::coinbase(
      key_.account_id(), params.block_reward, height)};
  block.header.merkle_root = block.compute_merkle_root();
  if (params.verify_pow) {
    for (std::uint64_t nonce = 0;; ++nonce) {
      block.header.nonce = nonce;
      if (chain::meets_target(block.header.pow_digest(),
                              block.header.difficulty))
        break;
    }
  } else {
    block.header.nonce = rng_.next();
  }

  last_timestamp_ = block.header.timestamp;
  withheld_.push_back(std::move(block));
  ++blocks_mined_;
  schedule_mining();
}

void ChainSelfishMiner::poll() {
  const chain::Blockchain& pub = cluster_.node(config_.node).chain();
  const std::uint32_t pub_height = pub.height();
  const auto priv_height =
      fork_height_ + static_cast<std::uint32_t>(withheld_.size());

  if (pub_height > fork_height_) {
    // The public chain advanced past our fork point: release if we are
    // strictly ahead (orphaning the honest blocks), otherwise the branch
    // lost — abandon it and refork.
    if (!withheld_.empty() && priv_height > pub_height) {
      release();
    } else {
      refork_to_public_tip();
    }
  }
  cluster_.simulation().schedule_in(config_.poll_interval,
                                    [this] { poll(); });
}

void ChainSelfishMiner::release() {
  const chain::ChainParams& params = cluster_.config().params;
  const net::NodeId origin = cluster_.node(config_.node).id();
  const std::vector<net::NodeId>& peers =
      cluster_.network().neighbors(origin);
  for (const chain::Block& block : withheld_) {
    const net::Message msg = net::make_message(
        kMsgBlock, block,
        block.serialized_size() + params.simulated_extra_block_bytes);
    // Gossip reaches every node except the origin; a bounce off the first
    // neighbor delivers the block to the origin's own replica too.
    cluster_.network().gossip(origin, msg);
    if (!peers.empty()) cluster_.network().send(peers.front(), origin, msg);
  }
  blocks_released_ += withheld_.size();

  // Keep mining privately on our released tip; the next poll re-anchors
  // against whatever the public chain does with the release.
  const chain::Block& tip = withheld_.back();
  fork_point_ = tip.hash();
  fork_height_ = tip.header.height;
  last_timestamp_ = tip.header.timestamp;
  withheld_.clear();
  schedule_mining();
}

void ChainSelfishMiner::measure() {
  const chain::Blockchain& ref = cluster_.node(0).chain();
  std::uint64_t mine = 0;
  for (std::uint32_t h = 1; h <= ref.height(); ++h) {
    const chain::Block* b = ref.at_height(h);
    if (b && b->header.proposer == key_.account_id()) ++mine;
  }
  revenue_share_ = ref.height() == 0
                       ? 0.0
                       : static_cast<double>(mine) /
                             static_cast<double>(ref.height());
  obs::MetricsRegistry& reg = cluster_.metrics_registry();
  set_gauge(reg, "attack.selfish.revenue_share", revenue_share_);
  set_gauge(reg, "attack.selfish.blocks_mined",
            static_cast<double>(blocks_mined_));
  set_gauge(reg, "attack.selfish.blocks_released",
            static_cast<double>(blocks_released_));
  set_gauge(reg, "fairness.inclusion_gini",
            inclusion_gini(cluster_.lifecycle()));
}

// ---------------------------------------------------------------------------
// PrivateChainMiner

PrivateChainMiner::PrivateChainMiner(const chain::ChainParams& params,
                                     const chain::GenesisSpec& genesis,
                                     crypto::AccountId miner)
    : chain_(params, genesis), miner_(miner) {}

void PrivateChainMiner::extend(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const chain::BlockHash parent = chain_.tip_hash();
    const chain::Block* p = chain_.find(parent);
    chain::Block b;
    b.header.height = p->header.height + 1;
    b.header.parent = parent;
    b.header.timestamp =
        p->header.timestamp + chain_.params().block_interval;
    b.header.difficulty = chain_.next_difficulty(parent);
    b.header.proposer = miner_;
    b.txs = chain::UtxoTxList{chain::UtxoTransaction::coinbase(
        miner_, chain_.params().block_reward, b.header.height)};
    b.header.merkle_root = b.compute_merkle_root();
    for (std::uint64_t nonce = 0;; ++nonce) {
      b.header.nonce = nonce;
      if (chain::meets_target(b.header.pow_digest(), b.header.difficulty))
        break;
    }
    const auto res = chain_.submit(b);
    assert(res.ok());
    (void)res;
  }
}

PrivateChainMiner::ReleaseOutcome PrivateChainMiner::release_into(
    chain::Blockchain& victim) const {
  ReleaseOutcome out;
  for (std::uint32_t h = 1; h <= chain_.height(); ++h) {
    const auto res = victim.submit(*chain_.at_height(h));
    if (!res.ok()) continue;
    ++out.accepted;
    if (res->outcome == chain::Accept::kReorged) {
      out.reorged = true;
      out.reorg_depth = std::max(out.reorg_depth, res->reorg_depth);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Double-spend race model

RaceOutcome run_double_spend_races(double q, std::uint32_t depth, int trials,
                                   std::uint64_t seed) {
  Rng rng(seed);
  RaceOutcome out;
  out.trials = trials;
  for (int t = 0; t < trials; ++t) {
    // Honest chain mines `depth` blocks; attacker mines privately.
    int attacker = 0;
    int honest = 0;
    while (honest < static_cast<int>(depth)) {
      if (rng.chance(q))
        ++attacker;
      else
        ++honest;
    }
    // Attacker keeps going until ahead or hopeless.
    int deficit = honest - attacker;
    bool win = deficit <= 0;  // caught up = wins (Nakamoto's convention)
    int steps = 0;
    while (!win && steps < 10000) {
      if (rng.chance(q))
        --deficit;
      else
        ++deficit;
      if (deficit <= 0) win = true;
      if (deficit > 60) break;  // < 1e-12 recovery probability
      ++steps;
    }
    if (win) ++out.attacker_wins;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Fairness / stationarity metrics

double inclusion_gini(const obs::LatencyTracker& tracker) {
  std::vector<std::pair<std::uint64_t, double>> rates;
  for (const auto& [issuer, stats] : tracker.issuer_stats()) {
    if (stats.submitted == 0) continue;
    rates.emplace_back(issuer, static_cast<double>(stats.included) /
                                   static_cast<double>(stats.submitted));
  }
  if (rates.empty()) return 0.0;
  std::sort(rates.begin(), rates.end());
  double sum = 0.0;
  for (const auto& [issuer, rate] : rates) sum += rate;
  const auto n = static_cast<double>(rates.size());
  const double mean = sum / n;
  if (mean <= 0.0) return 0.0;
  double abs_diff = 0.0;
  for (const auto& [ii, xi] : rates)
    for (const auto& [ij, xj] : rates) abs_diff += std::abs(xi - xj);
  return abs_diff / (2.0 * n * n * mean);
}

void TipStationarity::sample(std::size_t tip_count) {
  ring_.push_back(static_cast<double>(tip_count));
  if (ring_.size() > window_) ring_.pop_front();
  ++seen_;
}

double TipStationarity::mean() const {
  if (ring_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : ring_) sum += v;
  return sum / static_cast<double>(ring_.size());
}

double TipStationarity::variance() const {
  if (ring_.empty()) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : ring_) acc += (v - m) * (v - m);
  return acc / static_cast<double>(ring_.size());
}

void TipStationarity::publish(obs::Probe probe) const {
  obs::set(probe.gauge("tangle.tips.stationarity.mean"), mean());
  obs::set(probe.gauge("tangle.tips.stationarity.variance"), variance());
}

}  // namespace dlt::core
