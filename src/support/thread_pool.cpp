#include "support/thread_pool.hpp"

namespace dlt::support {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Inline path: the first exception propagates directly, untouched.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    remaining_.store(n, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  run_indices(&fn, n);  // the caller is a worker too
  std::unique_lock<std::mutex> lock(mutex_);
  // Wait for the work AND for every worker to leave run_indices: a worker
  // that just consumed the batch's last index still probes next_ once more
  // before returning, and resetting next_ for the following batch while it
  // does so would hand it a fresh index paired with this batch's dead fn.
  done_cv_.wait(lock, [this] {
    return remaining_.load(std::memory_order_acquire) == 0 && active_ == 0;
  });
  // Clear the batch so a late-waking worker from this generation sees an
  // exhausted index range and never dereferences a dead fn.
  fn_ = nullptr;
  n_ = 0;
  std::exception_ptr err = error_;
  error_ = nullptr;
  lock.unlock();
  if (err) std::rethrow_exception(err);
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = fn_;
      n = n_;
      if (fn != nullptr) ++active_;
    }
    if (fn != nullptr) {
      run_indices(fn, n);
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_indices(const std::function<void(std::size_t)>* fn,
                             std::size_t n) {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    // Indices claimed after a failure are consumed without running so the
    // join still completes; the exception surfaces on the caller.
    if (!failed_.load(std::memory_order_acquire)) {
      try {
        (*fn)(i);
      } catch (...) {
        capture_exception(i);
      }
    }
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mutex_);  // pair with done_cv_ wait
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::capture_exception(std::size_t index) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!error_ || index < error_index_) {
    error_ = std::current_exception();
    error_index_ = index;
  }
  failed_.store(true, std::memory_order_release);
}

}  // namespace dlt::support
