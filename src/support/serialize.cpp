#include "support/serialize.hpp"

namespace dlt {

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<Byte>(v));
  buf_.push_back(static_cast<Byte>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<Byte>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<Byte>(v >> (8 * i)));
}

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<Byte>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<Byte>(v));
}

void Writer::raw(ByteView bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void Writer::blob(ByteView bytes) {
  varint(bytes.size());
  raw(bytes);
}

void Writer::str(std::string_view s) {
  blob(as_bytes(s));
}

Result<std::uint8_t> Reader::u8() {
  if (remaining() < 1) return make_error("truncated", "u8");
  return data_[pos_++];
}

Result<std::uint16_t> Reader::u16() {
  if (remaining() < 2) return make_error("truncated", "u16");
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i)
    v |= static_cast<std::uint16_t>(data_[pos_++]) << (8 * i);
  return v;
}

Result<std::uint32_t> Reader::u32() {
  if (remaining() < 4) return make_error("truncated", "u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

Result<std::uint64_t> Reader::u64() {
  if (remaining() < 8) return make_error("truncated", "u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

Result<std::uint64_t> Reader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (remaining() < 1) return make_error("truncated", "varint");
    if (shift >= 64) return make_error("overflow", "varint too long");
    const Byte b = data_[pos_++];
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

Result<Bytes> Reader::raw(std::size_t n) {
  if (remaining() < n) return make_error("truncated", "raw");
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Result<Bytes> Reader::blob() {
  auto len = varint();
  if (!len) return len.error();
  if (*len > remaining()) return make_error("truncated", "blob length");
  return raw(static_cast<std::size_t>(*len));
}

Result<std::string> Reader::str() {
  auto b = blob();
  if (!b) return b.error();
  return std::string(b->begin(), b->end());
}

std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace dlt
