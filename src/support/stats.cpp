#include "support/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace dlt {

void Summary::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Summary::merge(const Summary& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double delta = o.mean_ - mean_;
  const auto n = static_cast<double>(n_), m = static_cast<double>(o.n_);
  m2_ += o.m2_ + delta * delta * n * m / (n + m);
  mean_ += delta * m / (n + m);
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double Summary::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

std::string Summary::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.4g min=%.4g max=%.4g sd=%.4g",
                static_cast<unsigned long long>(n_), mean(), min(), max(),
                stddev());
  return buf;
}

void Percentiles::add(double x) {
  ++seen_;
  if (cap_ == 0 || xs_.size() < cap_) {
    xs_.push_back(x);
    sorted_ = false;
    return;
  }
  // Algorithm R: the new observation replaces a uniformly random retained
  // sample with probability cap/seen. Replacing by index stays uniform even
  // after quantile() sorted the vector in place — any index is still a
  // uniformly random retained element.
  const std::uint64_t j = next_rand() % seen_;
  if (j < cap_) {
    xs_[static_cast<std::size_t>(j)] = x;
    sorted_ = false;
  }
}

void Percentiles::set_sample_cap(std::size_t cap) {
  cap_ = cap;
  if (cap_ > 0 && xs_.size() > cap_) {
    xs_.resize(cap_);
    xs_.shrink_to_fit();
    sorted_ = false;
  }
}

std::uint64_t Percentiles::next_rand() {
  // splitmix64: tiny, deterministic, private state; never touches the
  // simulation's RNG streams.
  std::uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double Percentiles::quantile(double q) const {
  if (xs_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(xs_.size() - 1);
  const auto i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  if (i + 1 >= xs_.size()) return xs_.back();
  return xs_[i] * (1.0 - frac) + xs_[i + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double span = hi_ - lo_;
  auto i = static_cast<std::size_t>((x - lo_) / span *
                                    static_cast<double>(counts_.size()));
  if (i >= counts_.size()) i = counts_.size() - 1;
  ++counts_[i];
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[256];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                 static_cast<double>(peak) *
                                 static_cast<double>(width));
    std::snprintf(line, sizeof(line), "[%10.3g, %10.3g) %8llu |",
                  bucket_lo(i), bucket_hi(i),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

std::string format_bytes(std::uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  if (u == 0)
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  else
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, units[u]);
  return buf;
}

std::string format_si(double v) {
  const char* units[] = {"", "k", "M", "G", "T"};
  int u = 0;
  double a = std::fabs(v);
  while (a >= 1000.0 && u < 4) {
    a /= 1000.0;
    v /= 1000.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g%s", v, units[u]);
  return buf;
}

}  // namespace dlt
