// Hex encoding/decoding for digests and debug output.
#pragma once

#include <optional>
#include <string>

#include "support/bytes.hpp"

namespace dlt {

/// Lower-case hex encoding of an arbitrary byte view.
std::string to_hex(ByteView bytes);

template <std::size_t N>
std::string to_hex(const FixedBytes<N>& b) {
  return to_hex(b.view());
}

/// Short prefix form used in log lines and chain diagrams (first 4 bytes).
std::string short_hex(ByteView bytes, std::size_t prefix_bytes = 4);

template <std::size_t N>
std::string short_hex(const FixedBytes<N>& b, std::size_t prefix_bytes = 4) {
  return short_hex(b.view(), prefix_bytes);
}

/// Decodes hex (upper or lower case). Returns nullopt on bad length/char.
std::optional<Bytes> from_hex(std::string_view hex);

/// Decodes into a fixed-size array; nullopt unless exactly N bytes decode.
template <std::size_t N>
std::optional<FixedBytes<N>> fixed_from_hex(std::string_view hex) {
  auto raw = from_hex(hex);
  if (!raw || raw->size() != N) return std::nullopt;
  return FixedBytes<N>::from_view(*raw);
}

}  // namespace dlt
