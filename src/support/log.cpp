#include "support/log.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace dlt {
namespace {

/// Parses DLT_LOG_LEVEL: a level name (case-insensitive) or a numeric
/// value matching the enum. Unset or unparseable → the compiled default.
LogLevel level_from_env(LogLevel fallback) {
  const char* env = std::getenv("DLT_LOG_LEVEL");
  if (!env || !*env) return fallback;
  std::string s;
  for (const char* p = env; *p; ++p)
    s += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  if (s == "trace") return LogLevel::Trace;
  if (s == "debug") return LogLevel::Debug;
  if (s == "info") return LogLevel::Info;
  if (s == "warn" || s == "warning") return LogLevel::Warn;
  if (s == "error") return LogLevel::Error;
  if (s == "off" || s == "none") return LogLevel::Off;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end != env && v >= 0 && v <= static_cast<long>(LogLevel::Off))
    return static_cast<LogLevel>(v);
  return fallback;
}

LogLevel g_level = level_from_env(LogLevel::Warn);

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace dlt
