#include "support/rng.hpp"

#include <cassert>
#include <cmath>

namespace dlt {
namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: seeds the xoshiro state from a single word.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // All-zero state is invalid for xoshiro; splitmix64 never yields it for
  // four consecutive outputs, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::uniform_range(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  if (lo == 0 && hi == ~0ULL) return next();
  return lo + uniform(hi - lo + 1);
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform01();
  } while (u1 == 0.0);
  const double u2 = uniform01();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

std::size_t Rng::zipf(std::size_t n, double s) {
  assert(n > 0);
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[i] = acc;
    }
    for (auto& c : zipf_cdf_) c /= acc;
  }
  const double u = uniform01();
  // Binary search the CDF.
  std::size_t lo = 0, hi = n - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (zipf_cdf_[mid] < u)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

Rng Rng::fork() {
  return Rng(next() ^ 0xa5a5a5a5a5a5a5a5ULL);
}

}  // namespace dlt
