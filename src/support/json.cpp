#include "support/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "support/log.hpp"

namespace dlt::support {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

JsonObject& JsonObject::emit(const std::string& key,
                             const std::string& encoded) {
  members_.emplace_back(key, encoded);
  return *this;
}

JsonObject& JsonObject::put(const std::string& key, const std::string& value) {
  return emit(key, "\"" + json_escape(value) + "\"");
}
JsonObject& JsonObject::put(const std::string& key, const char* value) {
  return put(key, std::string(value));
}
JsonObject& JsonObject::put(const std::string& key, double value) {
  return emit(key, json_number(value));
}
JsonObject& JsonObject::put(const std::string& key, std::uint64_t value) {
  return emit(key, std::to_string(value));
}
JsonObject& JsonObject::put(const std::string& key, std::int64_t value) {
  return emit(key, std::to_string(value));
}
JsonObject& JsonObject::put(const std::string& key, int value) {
  return emit(key, std::to_string(value));
}
JsonObject& JsonObject::put(const std::string& key, bool value) {
  return emit(key, value ? "true" : "false");
}
JsonObject& JsonObject::put_raw(const std::string& key,
                                const std::string& json) {
  return emit(key, json);
}

std::string JsonObject::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + json_escape(members_[i].first) + "\":" + members_[i].second;
  }
  out += "}";
  return out;
}

JsonArray& JsonArray::push_raw(const std::string& json) {
  items_.push_back(json);
  return *this;
}

std::string JsonArray::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) out += ",";
    out += items_[i];
  }
  out += "]";
  return out;
}

bool write_bench_report(const std::string& bench_name,
                        const JsonObject& root) {
  const std::string path = "BENCH_" + bench_name + ".json";
  std::ofstream out(path);
  if (!out) {
    DLT_LOG_WARN("cannot write %s", path.c_str());
    return false;
  }
  out << root.to_string() << "\n";
  return out.good();
}

}  // namespace dlt::support
