// Minimal JSON emitter shared by the bench reports and the observability
// layer (obs::MetricsRegistry / obs::Tracer JSON export).
//
// Lives in support (not core) so low-level modules can serialize without
// depending on the cluster drivers. Only what reports need: objects,
// arrays, strings, numbers, bools -- no parsing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dlt::support {

std::string json_escape(const std::string& s);
/// Doubles print round-trippably; non-finite values become null (JSON has
/// no NaN/Inf).
std::string json_number(double v);

class JsonObject {
 public:
  JsonObject& put(const std::string& key, const std::string& value);
  JsonObject& put(const std::string& key, const char* value);
  JsonObject& put(const std::string& key, double value);
  JsonObject& put(const std::string& key, std::uint64_t value);
  JsonObject& put(const std::string& key, std::int64_t value);
  JsonObject& put(const std::string& key, int value);
  JsonObject& put(const std::string& key, bool value);
  /// Nests pre-encoded JSON (another object's / array's to_string()).
  JsonObject& put_raw(const std::string& key, const std::string& json);

  std::string to_string() const;

 private:
  JsonObject& emit(const std::string& key, const std::string& encoded);
  std::vector<std::pair<std::string, std::string>> members_;
};

class JsonArray {
 public:
  JsonArray& push_raw(const std::string& json);
  std::size_t size() const { return items_.size(); }
  std::string to_string() const;

 private:
  std::vector<std::string> items_;
};

/// Writes `root` to BENCH_<bench_name>.json in the working directory.
/// Returns false (after logging) if the file cannot be written.
bool write_bench_report(const std::string& bench_name, const JsonObject& root);

}  // namespace dlt::support
