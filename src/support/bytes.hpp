// Basic byte-buffer vocabulary types shared by every module.
//
// The whole codebase traffics in opaque byte strings (hashes, serialized
// blocks, keys). We standardize on std::vector<std::uint8_t> for owned
// buffers and std::span<const std::uint8_t> for views, plus a fixed-size
// array wrapper used for digests and identifiers.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dlt {

using Byte = std::uint8_t;
using Bytes = std::vector<Byte>;
using ByteView = std::span<const Byte>;

/// Fixed-size byte array with value semantics, ordering and hashing.
/// Used for digests (Hash256), account ids, signatures, etc.
template <std::size_t N>
struct FixedBytes {
  std::array<Byte, N> v{};

  constexpr FixedBytes() = default;
  explicit FixedBytes(const std::array<Byte, N>& a) : v(a) {}

  static constexpr std::size_t size() { return N; }
  const Byte* data() const { return v.data(); }
  Byte* data() { return v.data(); }

  Byte operator[](std::size_t i) const { return v[i]; }
  Byte& operator[](std::size_t i) { return v[i]; }

  auto operator<=>(const FixedBytes&) const = default;

  ByteView view() const { return ByteView{v.data(), N}; }
  Bytes bytes() const { return Bytes(v.begin(), v.end()); }

  bool is_zero() const {
    for (Byte b : v)
      if (b != 0) return false;
    return true;
  }

  /// Fills from a view; view must be exactly N bytes (asserted by caller).
  static FixedBytes from_view(ByteView view) {
    FixedBytes out;
    const std::size_t n = view.size() < N ? view.size() : N;
    std::memcpy(out.v.data(), view.data(), n);
    return out;
  }
};

using Hash256 = FixedBytes<32>;

inline ByteView as_bytes(std::string_view s) {
  return ByteView{reinterpret_cast<const Byte*>(s.data()), s.size()};
}

inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

}  // namespace dlt

namespace std {
template <std::size_t N>
struct hash<dlt::FixedBytes<N>> {
  size_t operator()(const dlt::FixedBytes<N>& b) const noexcept {
    // Digests are uniformly distributed, but mix head and tail so that
    // adversarially similar non-digest values still spread.
    size_t head = 0, tail = 0;
    constexpr size_t take = sizeof(size_t) < N ? sizeof(size_t) : N;
    std::memcpy(&head, b.v.data(), take);
    std::memcpy(&tail, b.v.data() + (N - take), take);
    return head ^ (tail * 0x9e3779b97f4a7c15ULL);
  }
};
}  // namespace std
