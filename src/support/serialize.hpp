// Compact binary serialization.
//
// Two jobs in this codebase:
//  1. Canonical byte encodings that get hashed (block headers, transactions)
//     -- these must be deterministic and stable.
//  2. Byte-accounting for the ledger-size experiments (paper §V): every
//     ledger entry reports its serialized size, and the growth curves in
//     bench_ledger_size integrate those sizes.
//
// Encoding rules: fixed-width integers are little-endian; variable-length
// integers use LEB128-style varints; byte strings are varint length-prefixed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/bytes.hpp"
#include "support/result.hpp"

namespace dlt {

class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void varint(std::uint64_t v);
  void raw(ByteView bytes);
  void blob(ByteView bytes);  // varint length prefix + bytes
  void str(std::string_view s);

  template <std::size_t N>
  void fixed(const FixedBytes<N>& b) {
    raw(b.view());
  }

  const Bytes& bytes() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(ByteView data) : data_(data) {}

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u32();
  Result<std::uint64_t> u64();
  Result<std::uint64_t> varint();
  Result<Bytes> raw(std::size_t n);
  Result<Bytes> blob();
  Result<std::string> str();

  template <std::size_t N>
  Result<FixedBytes<N>> fixed() {
    auto r = raw(N);
    if (!r) return r.error();
    return FixedBytes<N>::from_view(*r);
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }

 private:
  ByteView data_;
  std::size_t pos_ = 0;
};

/// Size in bytes of varint(v) without materializing it.
std::size_t varint_size(std::uint64_t v);

}  // namespace dlt
