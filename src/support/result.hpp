// Lightweight Result<T> for recoverable validation errors.
//
// DLT validation code rejects inputs constantly (bad signature, unknown
// predecessor, double spend, ...). Exceptions are reserved for programming
// errors; expected rejections travel as values. This is a minimal
// std::expected stand-in (we target GCC 12 / C++20, which lacks it).
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace dlt {

/// Error payload: machine-readable code plus human-readable detail.
struct Error {
  std::string code;    // stable identifier, e.g. "double-spend"
  std::string detail;  // free-form context for logs/tests

  std::string to_string() const {
    return detail.empty() ? code : code + ": " + detail;
  }
};

inline Error make_error(std::string code, std::string detail = {}) {
  return Error{std::move(code), std::move(detail)};
}

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error err) : v_(std::move(err)) {}  // NOLINT: implicit by design

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(v_);
  }

  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Error> v_;
};

/// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;                               // success
  Status(Error err) : err_(std::move(err)) {}       // NOLINT: implicit
  static Status success() { return Status{}; }

  bool ok() const { return err_.code.empty(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(!ok());
    return err_;
  }

  std::string to_string() const { return ok() ? "ok" : err_.to_string(); }

 private:
  Error err_{};
};

}  // namespace dlt
