// Deterministic pseudo-random generation for simulations and workloads.
//
// Every stochastic element in the system (mining races, network jitter,
// workload inter-arrival, zipf account popularity) draws from an Rng seeded
// explicitly, so a run is exactly reproducible from its seed. The engine is
// xoshiro256** (public-domain algorithm by Blackman & Vigna): fast, tiny
// state, and -- unlike std::mt19937 distributions -- our distribution code
// is self-contained so results are identical across standard libraries.
#pragma once

#include <cstdint>
#include <vector>

namespace dlt {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xdeadbeefcafebabeULL);

  /// UniformRandomBitGenerator interface (usable with std <random> too).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound). bound must be > 0. Unbiased (rejection).
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial.
  bool chance(double p);

  /// Exponential variate with the given mean (> 0). Models Poisson
  /// inter-arrival times: block discovery, transaction arrivals.
  double exponential(double mean);

  /// Normal variate (Box-Muller), for latency jitter.
  double normal(double mean, double stddev);

  /// Zipf-distributed rank in [0, n): rank 0 most popular. Models skewed
  /// account popularity in payment workloads. s is the exponent (~1.0).
  std::size_t zipf(std::size_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for per-node streams).
  Rng fork();

 private:
  std::uint64_t s_[4];

  // Zipf sampling uses a cached harmonic table per (n, s).
  std::size_t zipf_n_ = 0;
  double zipf_s_ = 0.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace dlt
