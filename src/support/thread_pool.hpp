// Deterministic fork-join worker pool for batch signature verification.
//
// Not a general task scheduler: the single entry point is parallel_for(),
// which blocks the caller until every index has run. Workers and the caller
// pull indices from a shared atomic counter; callers that need deterministic
// output write results into a pre-sized array slot per index and consume
// them in index order after the join. Nothing about scheduling order leaks
// into simulation state, so the bit-for-bit determinism contract
// (src/sim/simulation.hpp) holds regardless of thread timing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dlt::support {

class ThreadPool {
 public:
  /// `threads` is the total concurrency: the caller participates, so
  /// threads-1 workers are spawned. threads <= 1 runs everything inline.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Runs fn(0) .. fn(n-1), each exactly once, returning after all have
  /// completed. fn must be safe to call concurrently for distinct indices
  /// and must not call parallel_for reentrantly. n == 0 is a no-op.
  ///
  /// If fn throws, the batch still joins (every index is consumed, though
  /// indices claimed after the first failure are skipped) and the caller
  /// rethrows the captured exception with the lowest index among those
  /// that ran. The pool stays usable for subsequent batches. Exceptions
  /// are for bugs/resource exhaustion only: validation verdicts must be
  /// returned as data, never thrown, or the skip would break determinism.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  void run_indices(const std::function<void(std::size_t)>* fn, std::size_t n);
  void capture_exception(std::size_t index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* fn_ = nullptr;  // guarded by mutex_
  std::size_t n_ = 0;                                     // guarded by mutex_
  std::uint64_t generation_ = 0;                          // guarded by mutex_
  std::size_t active_ = 0;  // workers inside run_indices; guarded by mutex_
  bool stop_ = false;                                     // guarded by mutex_
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> remaining_{0};
  std::atomic<bool> failed_{false};         // a worker threw this batch
  std::exception_ptr error_;                // guarded by mutex_
  std::size_t error_index_ = 0;             // guarded by mutex_
};

}  // namespace dlt::support
