// InplaceFunction: a move-only callable wrapper with small-buffer storage.
//
// std::function heap-allocates most capturing lambdas and drags in copyable
// semantics the scheduler never needs. The slab scheduler (sim/simulation)
// stores one callback per event slot; keeping the callable inline means
// schedule/cancel/fire touch no allocator in the common case. Callables
// larger than the buffer fall back to a single heap box, so capacity is a
// fast path, not a correctness limit.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace dlt::support {

template <typename Signature, std::size_t Capacity = 48>
class InplaceFunction;  // only the R(Args...) specialization exists

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  InplaceFunction() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<
                std::decay_t<F>, InplaceFunction>>>
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace_any(std::forward<F>(f));
  }

  InplaceFunction(InplaceFunction&& other) noexcept { take(other); }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  /// Drops the held callable (destroying its captures immediately).
  /// Trivial callables have no manager, so this is two pointer writes.
  void reset() {
    if (manage_) manage_(buf_, nullptr, Op::kDestroy);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  /// Replaces the held callable, constructing the new one in place — one
  /// copy/move of `f`, vs two for `*this = InplaceFunction(f)`.
  template <typename F>
  void emplace(F&& f) {
    reset();
    emplace_any(std::forward<F>(f));
  }

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) {
    assert(invoke_ && "calling an empty InplaceFunction");
    return invoke_(buf_, std::forward<Args>(args)...);
  }

 private:
  enum class Op { kMove, kDestroy };
  using Invoke = R (*)(void*, Args&&...);
  using Manage = void (*)(void* self, void* dst, Op);

  template <typename F>
  static F* as(void* p) {
    return std::launder(reinterpret_cast<F*>(p));
  }

  template <typename F>
  static constexpr bool fits() {
    return sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

  template <typename F, typename Src>
  void emplace_inline(Src&& f) {
    ::new (static_cast<void*>(buf_)) F(std::forward<Src>(f));
    invoke_ = [](void* p, Args&&... args) -> R {
      return (*as<F>(p))(std::forward<Args>(args)...);
    };
    if constexpr (std::is_trivially_copyable_v<F> &&
                  std::is_trivially_destructible_v<F>) {
      // The buffer bytes ARE the callable's whole state: no destroy call
      // on reset and a plain memcpy on move. This is the scheduler's fast
      // path — most event callbacks capture only pointers and PODs.
      manage_ = nullptr;
    } else {
      manage_ = [](void* self, void* dst, Op op) {
        F* held = as<F>(self);
        if (op == Op::kMove) ::new (dst) F(std::move(*held));
        held->~F();
      };
    }
  }

  template <typename F>
  void emplace_any(F&& f) {
    using Held = std::decay_t<F>;
    if constexpr (fits<Held>()) {
      emplace_inline<Held>(std::forward<F>(f));
    } else {
      // Oversized callable: box it behind one allocation. The box (a
      // unique_ptr) always fits, so the wrapper machinery stays uniform.
      struct Boxed {
        std::unique_ptr<Held> held;
        R operator()(Args&&... args) {
          return (*held)(std::forward<Args>(args)...);
        }
      };
      emplace_inline<Boxed>(Boxed{std::make_unique<Held>(std::forward<F>(f))});
    }
  }

  void take(InplaceFunction& other) {
    if (other.manage_) {
      other.manage_(other.buf_, buf_, Op::kMove);  // move-construct + destroy
    } else if (other.invoke_) {
      std::memcpy(buf_, other.buf_, Capacity);  // trivial: bytes are state
    } else {
      return;
    }
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace dlt::support
