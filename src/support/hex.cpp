#include "support/hex.hpp"

namespace dlt {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(ByteView bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (Byte b : bytes) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

std::string short_hex(ByteView bytes, std::size_t prefix_bytes) {
  if (bytes.size() <= prefix_bytes) return to_hex(bytes);
  return to_hex(bytes.subspan(0, prefix_bytes)) + "..";
}

std::optional<Bytes> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<Byte>((hi << 4) | lo));
  }
  return out;
}

}  // namespace dlt
