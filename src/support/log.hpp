// Minimal leveled logger. Simulations are chatty; default level is Warn so
// tests and benches stay quiet, while examples turn on Info for narration.
//
// The initial level can be overridden without recompiling via the
// DLT_LOG_LEVEL environment variable (trace|debug|info|warn|error|off,
// case-insensitive; numeric 0-5 also accepted). set_log_level() still wins
// once called.
//
// The DLT_LOG_* macros guard on log_enabled() BEFORE evaluating their
// arguments, so a disabled call site costs one branch — no formatting, no
// temporaries like `status.to_string().c_str()` on hot paths.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace dlt {

enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

LogLevel log_level();
void set_log_level(LogLevel level);
/// True when a message at `level` would be emitted. The macros use this to
/// skip argument evaluation entirely when the level is disabled.
inline bool log_enabled(LogLevel level) { return level >= log_level(); }

namespace detail {
void log_line(LogLevel level, const std::string& msg);

template <typename... Args>
std::string format(const char* fmt, Args&&... args) {
  const int n = std::snprintf(nullptr, 0, fmt, std::forward<Args>(args)...);
  if (n <= 0) return fmt;
  std::string out(static_cast<std::size_t>(n), '\0');
  std::snprintf(out.data(), out.size() + 1, fmt, std::forward<Args>(args)...);
  return out;
}
inline std::string format(const char* fmt) { return fmt; }
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const char* fmt, Args&&... args) {
  if (!log_enabled(level)) return;
  detail::log_line(level, detail::format(fmt, std::forward<Args>(args)...));
}

#define DLT_LOG_AT(level, ...)                          \
  do {                                                  \
    if (::dlt::log_enabled(level))                      \
      ::dlt::log(level, __VA_ARGS__);                   \
  } while (0)

#define DLT_LOG_TRACE(...) DLT_LOG_AT(::dlt::LogLevel::Trace, __VA_ARGS__)
#define DLT_LOG_DEBUG(...) DLT_LOG_AT(::dlt::LogLevel::Debug, __VA_ARGS__)
#define DLT_LOG_INFO(...) DLT_LOG_AT(::dlt::LogLevel::Info, __VA_ARGS__)
#define DLT_LOG_WARN(...) DLT_LOG_AT(::dlt::LogLevel::Warn, __VA_ARGS__)
#define DLT_LOG_ERROR(...) DLT_LOG_AT(::dlt::LogLevel::Error, __VA_ARGS__)

}  // namespace dlt
