// Minimal leveled logger. Simulations are chatty; default level is Warn so
// tests and benches stay quiet, while examples turn on Info for narration.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace dlt {

enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, const std::string& msg);

template <typename... Args>
std::string format(const char* fmt, Args&&... args) {
  const int n = std::snprintf(nullptr, 0, fmt, std::forward<Args>(args)...);
  if (n <= 0) return fmt;
  std::string out(static_cast<std::size_t>(n), '\0');
  std::snprintf(out.data(), out.size() + 1, fmt, std::forward<Args>(args)...);
  return out;
}
inline std::string format(const char* fmt) { return fmt; }
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const char* fmt, Args&&... args) {
  if (level < log_level()) return;
  detail::log_line(level, detail::format(fmt, std::forward<Args>(args)...));
}

#define DLT_LOG_INFO(...) ::dlt::log(::dlt::LogLevel::Info, __VA_ARGS__)
#define DLT_LOG_DEBUG(...) ::dlt::log(::dlt::LogLevel::Debug, __VA_ARGS__)
#define DLT_LOG_WARN(...) ::dlt::log(::dlt::LogLevel::Warn, __VA_ARGS__)
#define DLT_LOG_ERROR(...) ::dlt::log(::dlt::LogLevel::Error, __VA_ARGS__)

}  // namespace dlt
