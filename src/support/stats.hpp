// Statistics accumulators used by the metrics layer and the benches.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace dlt {

/// Streaming summary: count / mean / min / max / stddev (Welford).
class Summary {
 public:
  void add(double x);
  void merge(const Summary& other);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const;
  double stddev() const;
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  std::string to_string() const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Retains samples for exact percentiles. Below the (optional) sample cap
/// every observation is kept and quantiles are exact; above it, a
/// deterministic reservoir (Algorithm R driven by a fixed-seed splitmix64
/// stream) keeps a uniform subset so memory stays O(cap) for million-tx
/// runs. Identical add/quantile call sequences produce byte-identical
/// results — the reservoir never consults wall clock or global RNG state.
class Percentiles {
 public:
  void add(double x);
  /// Total observations seen (not the retained sample count).
  std::uint64_t count() const { return seen_; }
  /// Samples currently retained; == count() while under the cap.
  std::size_t sample_count() const { return xs_.size(); }

  /// Caps retained samples; 0 (default) keeps everything. Set before
  /// observing: an existing oversized sample set is truncated, which is
  /// deterministic but no longer uniform.
  void set_sample_cap(std::size_t cap);
  std::size_t sample_cap() const { return cap_; }

  /// q in [0, 1]; linear interpolation between order statistics.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
  double p999() const { return quantile(0.999); }

 private:
  std::uint64_t next_rand();

  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
  std::uint64_t seen_ = 0;
  std::size_t cap_ = 0;
  std::uint64_t rng_state_ = 0x6c617465'6e637931ull;  // fixed seed
};

/// Fixed-bucket histogram over [lo, hi); overflow/underflow tracked.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::uint64_t count() const { return total_; }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  std::size_t buckets() const { return counts_.size(); }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const { return bucket_lo(i + 1); }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }

  /// ASCII rendering for bench output.
  std::string render(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

/// Human formatting helpers for bench tables.
std::string format_bytes(std::uint64_t bytes);
std::string format_si(double v);  // 3.2k, 1.5M, ...

}  // namespace dlt
