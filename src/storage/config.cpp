#include "storage/config.hpp"

#include <cstdlib>
#include <cstring>

#include "support/log.hpp"

namespace dlt::storage {

const char* to_string(StorageMode mode) {
  switch (mode) {
    case StorageMode::kMemory:
      return "memory";
    case StorageMode::kDisk:
      return "disk";
  }
  return "?";
}

void apply_env_storage(StorageConfig& config) {
  const char* env = std::getenv("DLT_STORAGE");
  if (!env || *env == '\0') return;

  if (!std::strcmp(env, "memory")) {
    config.mode = StorageMode::kMemory;
  } else if (!std::strcmp(env, "disk")) {
    config.mode = StorageMode::kDisk;
  } else if (!std::strncmp(env, "disk:", 5) && env[5] != '\0') {
    config.mode = StorageMode::kDisk;
    config.path = env + 5;
  } else {
    DLT_LOG_WARN("ignoring invalid DLT_STORAGE=%s "
                 "(want memory|disk|disk:<path>)",
                 env);
    return;
  }

  DLT_LOG_INFO("storage env override: mode=%s path=%s", to_string(config.mode),
               config.path.empty() ? "dlt-storage" : config.path.c_str());
}

}  // namespace dlt::storage
