// StateBackend: the key-value store behind each ledger's mutable state
// (UTXO entries, account snapshots, lattice heads).
//
// Two implementations with byte-identical accounting:
//   MemoryStateBackend — values live in an unordered_map; the arena
//     arithmetic (frame sizes, append offsets) is still tracked so the
//     storage gauges match disk mode exactly.
//   MmapStateBackend — values live in a memory-mapped append-only arena
//     file (`state.arena`). Appends grow the mapping by doubling
//     (ftruncate + remap); `sync()` msyncs; the destructor truncates the
//     file to its used length so on-disk bytes equal physical_bytes().
//
// Arena frame layout mirrors the block log (45-byte overhead + payload):
//   u32 magic | u8 flags | 32B key | u32 len | u32 crc | payload
// flags: 0 = put, 1 = erase marker. Upserts append (the old frame becomes
// dead weight); `compact()` rewrites live entries in insertion-sequence
// order. Reopen scans frames, truncates the first torn one, and rebuilds
// the last-wins index.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "storage/config.hpp"
#include "support/bytes.hpp"

namespace dlt::storage {

class StateBackend {
 public:
  static constexpr std::size_t kFrameOverhead = 4 + 1 + 32 + 4 + 4;
  static constexpr std::size_t kArenaHeaderBytes = 16;

  virtual ~StateBackend() = default;

  virtual void put(const Hash256& key, ByteView value) = 0;
  /// Appends an erase marker; returns false (appending nothing) when the
  /// key is absent.
  virtual bool erase(const Hash256& key) = 0;
  virtual std::optional<Bytes> get(const Hash256& key) const = 0;
  virtual bool contains(const Hash256& key) const = 0;
  /// Visits live entries in insertion-sequence order (deterministic).
  virtual void for_each(
      const std::function<void(const Hash256&, ByteView)>& fn) const = 0;

  virtual std::size_t entry_count() const = 0;
  virtual std::uint64_t live_bytes() const = 0;
  /// Header + every appended frame, live or dead — equals the arena
  /// file's used length in disk mode.
  virtual std::uint64_t physical_bytes() const = 0;
  /// Rewrites the live set; returns reclaimed physical bytes.
  virtual std::uint64_t compact() = 0;
  virtual void sync() = 0;
  virtual const char* kind() const = 0;

  /// Entries recovered by a truncate=false reopen (0 for memory mode).
  virtual std::size_t recovered_entries() const { return 0; }

  static std::size_t frame_size(std::size_t payload_len) {
    return kFrameOverhead + payload_len;
  }
};

/// `dir` is the instance directory for disk mode (ignored for memory).
std::unique_ptr<StateBackend> make_state_backend(const StorageConfig& config,
                                                 const std::string& dir,
                                                 bool truncate);

}  // namespace dlt::storage
