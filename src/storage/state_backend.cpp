#include "storage/state_backend.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cstring>
#include <filesystem>
#include <vector>

#include "storage/crc32.hpp"
#include "support/log.hpp"

namespace dlt::storage {

namespace {

constexpr std::uint32_t kFrameMagic = 0x57A7EA4Au;
constexpr std::uint64_t kArenaMagic = 0x44'4C'54'41'52'4E'30'31ULL;  // DLTARN01
constexpr std::uint32_t kArenaVersion = 1;
constexpr std::uint8_t kFlagPut = 0;
constexpr std::uint8_t kFlagErase = 1;
constexpr std::size_t kInitialCapacity = 1u << 16;

void put_u32(Byte* p, std::uint32_t v) {
  p[0] = static_cast<Byte>(v);
  p[1] = static_cast<Byte>(v >> 8);
  p[2] = static_cast<Byte>(v >> 16);
  p[3] = static_cast<Byte>(v >> 24);
}

std::uint32_t get_u32(const Byte* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void put_u64(Byte* p, std::uint64_t v) {
  put_u32(p, static_cast<std::uint32_t>(v));
  put_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t get_u64(const Byte* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

std::uint32_t frame_crc(std::uint8_t flags, const Hash256& key,
                        ByteView payload) {
  std::uint32_t crc = crc32_init();
  crc = crc32_update(crc, ByteView{&flags, 1});
  crc = crc32_update(crc, key.view());
  Byte len[4];
  put_u32(len, static_cast<std::uint32_t>(payload.size()));
  crc = crc32_update(crc, ByteView{len, 4});
  crc = crc32_update(crc, payload);
  return crc32_final(crc);
}

// ------------------------------------------------------------- memory

class MemoryStateBackend final : public StateBackend {
 public:
  MemoryStateBackend() : physical_(kArenaHeaderBytes) {}

  void put(const Hash256& key, ByteView value) override {
    auto [it, inserted] = map_.try_emplace(key);
    if (!inserted) live_ -= frame_size(it->second.value.size());
    it->second.value.assign(value.begin(), value.end());
    it->second.seq = next_seq_++;
    const std::uint64_t frame = frame_size(value.size());
    live_ += frame;
    physical_ += frame;
  }

  bool erase(const Hash256& key) override {
    const auto it = map_.find(key);
    if (it == map_.end()) return false;
    live_ -= frame_size(it->second.value.size());
    map_.erase(it);
    physical_ += frame_size(0);  // the erase marker frame
    return true;
  }

  std::optional<Bytes> get(const Hash256& key) const override {
    const auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    return it->second.value;
  }

  bool contains(const Hash256& key) const override {
    return map_.count(key) > 0;
  }

  void for_each(const std::function<void(const Hash256&, ByteView)>& fn)
      const override {
    std::vector<const std::pair<const Hash256, Slot>*> live;
    live.reserve(map_.size());
    for (const auto& kv : map_) live.push_back(&kv);
    std::sort(live.begin(), live.end(), [](const auto* a, const auto* b) {
      return a->second.seq < b->second.seq;
    });
    for (const auto* kv : live) fn(kv->first, kv->second.value);
  }

  std::size_t entry_count() const override { return map_.size(); }
  std::uint64_t live_bytes() const override { return live_; }
  std::uint64_t physical_bytes() const override { return physical_; }

  std::uint64_t compact() override {
    const std::uint64_t before = physical_;
    physical_ = kArenaHeaderBytes + live_;
    // Renumber in current sequence order so post-compaction iteration is
    // identical to a disk-mode rewrite.
    std::vector<std::pair<std::uint64_t, Slot*>> order;
    order.reserve(map_.size());
    for (auto& kv : map_) order.emplace_back(kv.second.seq, &kv.second);
    std::sort(order.begin(), order.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    next_seq_ = 0;
    for (auto& [seq, slot] : order) slot->seq = next_seq_++;
    return before - physical_;
  }

  void sync() override {}
  const char* kind() const override { return "memory"; }

 private:
  struct Slot {
    Bytes value;
    std::uint64_t seq = 0;
  };
  std::unordered_map<Hash256, Slot> map_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t live_ = 0;
  std::uint64_t physical_ = 0;
};

// --------------------------------------------------------------- mmap

class MmapStateBackend final : public StateBackend {
 public:
  MmapStateBackend(std::string dir, bool truncate) : dir_(std::move(dir)) {
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/state.arena";
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd_ < 0) {
      DLT_LOG_ERROR("storage: cannot open %s", path_.c_str());
      std::abort();
    }
    if (truncate) {
      start_fresh();
    } else {
      recover();
    }
  }

  ~MmapStateBackend() override {
    if (base_) {
      ::msync(base_, capacity_, MS_SYNC);
      ::munmap(base_, capacity_);
    }
    if (fd_ >= 0) {
      // Shrink the file to its used length: on-disk bytes == physical.
      if (::ftruncate(fd_, static_cast<off_t>(used_)) != 0)
        DLT_LOG_WARN("storage: final truncate of %s failed", path_.c_str());
      ::close(fd_);
    }
  }

  void put(const Hash256& key, ByteView value) override {
    const std::uint64_t offset = append_frame(kFlagPut, key, value);
    auto [it, inserted] = index_.try_emplace(key);
    if (!inserted) live_ -= frame_size(it->second.len);
    it->second =
        Slot{offset, static_cast<std::uint32_t>(value.size()), next_seq_++};
    live_ += frame_size(value.size());
  }

  bool erase(const Hash256& key) override {
    const auto it = index_.find(key);
    if (it == index_.end()) return false;
    live_ -= frame_size(it->second.len);
    index_.erase(it);
    append_frame(kFlagErase, key, {});
    return true;
  }

  std::optional<Bytes> get(const Hash256& key) const override {
    const auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
    const Byte* p = base_ + it->second.offset + kFrameOverhead;
    return Bytes(p, p + it->second.len);
  }

  bool contains(const Hash256& key) const override {
    return index_.count(key) > 0;
  }

  void for_each(const std::function<void(const Hash256&, ByteView)>& fn)
      const override {
    std::vector<const std::pair<const Hash256, Slot>*> live;
    live.reserve(index_.size());
    for (const auto& kv : index_) live.push_back(&kv);
    std::sort(live.begin(), live.end(), [](const auto* a, const auto* b) {
      return a->second.seq < b->second.seq;
    });
    for (const auto* kv : live)
      fn(kv->first,
         ByteView{base_ + kv->second.offset + kFrameOverhead,
                  kv->second.len});
  }

  std::size_t entry_count() const override { return index_.size(); }
  std::uint64_t live_bytes() const override { return live_; }
  std::uint64_t physical_bytes() const override { return used_; }

  std::uint64_t compact() override {
    const std::uint64_t before = used_;
    struct Live {
      Hash256 key;
      Bytes value;
      std::uint64_t seq;
    };
    std::vector<Live> live;
    live.reserve(index_.size());
    for (const auto& [key, slot] : index_) {
      const Byte* p = base_ + slot.offset + kFrameOverhead;
      live.push_back(Live{key, Bytes(p, p + slot.len), slot.seq});
    }
    std::sort(live.begin(), live.end(),
              [](const Live& a, const Live& b) { return a.seq < b.seq; });
    start_fresh();
    for (const Live& rec : live) put(rec.key, rec.value);
    return before - used_;
  }

  void sync() override {
    if (base_) ::msync(base_, used_, MS_SYNC);
  }

  const char* kind() const override { return "mmap"; }
  std::size_t recovered_entries() const override { return recovered_; }

 private:
  struct Slot {
    std::uint64_t offset;
    std::uint32_t len;
    std::uint64_t seq;
  };

  void map(std::uint64_t capacity) {
    if (base_) ::munmap(base_, capacity_);
    if (::ftruncate(fd_, static_cast<off_t>(capacity)) != 0) {
      DLT_LOG_ERROR("storage: ftruncate(%s, %llu) failed", path_.c_str(),
                    static_cast<unsigned long long>(capacity));
      std::abort();
    }
    void* p = ::mmap(nullptr, capacity, PROT_READ | PROT_WRITE, MAP_SHARED,
                     fd_, 0);
    if (p == MAP_FAILED) {
      DLT_LOG_ERROR("storage: mmap(%s) failed", path_.c_str());
      std::abort();
    }
    base_ = static_cast<Byte*>(p);
    capacity_ = capacity;
  }

  void start_fresh() {
    index_.clear();
    next_seq_ = 0;
    live_ = 0;
    map(kInitialCapacity);
    std::memset(base_, 0, kArenaHeaderBytes);
    put_u64(base_, kArenaMagic);
    put_u32(base_ + 8, kArenaVersion);
    used_ = kArenaHeaderBytes;
  }

  void ensure_capacity(std::uint64_t need) {
    if (need <= capacity_) return;
    std::uint64_t capacity = capacity_ ? capacity_ : kInitialCapacity;
    while (capacity < need) capacity *= 2;
    map(capacity);
  }

  std::uint64_t append_frame(std::uint8_t flags, const Hash256& key,
                             ByteView payload) {
    const std::size_t frame = frame_size(payload.size());
    ensure_capacity(used_ + frame);
    Byte* p = base_ + used_;
    put_u32(p, kFrameMagic);
    p[4] = flags;
    std::memcpy(p + 5, key.data(), 32);
    put_u32(p + 37, static_cast<std::uint32_t>(payload.size()));
    put_u32(p + 41, frame_crc(flags, key, payload));
    if (!payload.empty())
      std::memcpy(p + kFrameOverhead, payload.data(), payload.size());
    const std::uint64_t offset = used_;
    used_ += frame;
    return offset;
  }

  void recover() {
    struct stat st{};
    if (::fstat(fd_, &st) != 0 ||
        static_cast<std::uint64_t>(st.st_size) < kArenaHeaderBytes) {
      start_fresh();
      return;
    }
    const std::uint64_t file_size = static_cast<std::uint64_t>(st.st_size);
    std::uint64_t capacity = kInitialCapacity;
    while (capacity < file_size) capacity *= 2;
    map(capacity);
    if (get_u64(base_) != kArenaMagic) {
      start_fresh();
      return;
    }
    std::uint64_t pos = kArenaHeaderBytes;
    while (pos + kFrameOverhead <= file_size) {
      const Byte* p = base_ + pos;
      if (get_u32(p) != kFrameMagic) break;
      const std::uint8_t flags = p[4];
      const Hash256 key = Hash256::from_view(ByteView{p + 5, 32});
      const std::uint32_t len = get_u32(p + 37);
      const std::uint32_t crc = get_u32(p + 41);
      if (pos + kFrameOverhead + len > file_size) break;
      if (frame_crc(flags, key, ByteView{p + kFrameOverhead, len}) != crc)
        break;
      if (flags == kFlagErase) {
        const auto it = index_.find(key);
        if (it != index_.end()) {
          live_ -= frame_size(it->second.len);
          index_.erase(it);
        }
      } else {
        auto [it, inserted] = index_.try_emplace(key);
        if (!inserted) live_ -= frame_size(it->second.len);
        it->second = Slot{pos, len, next_seq_++};
        live_ += frame_size(len);
      }
      pos += kFrameOverhead + len;
    }
    used_ = pos;  // anything past the first torn frame is dropped
    recovered_ = index_.size();
  }

  std::string dir_;
  std::string path_;
  int fd_ = -1;
  Byte* base_ = nullptr;
  std::uint64_t capacity_ = 0;
  std::uint64_t used_ = 0;
  std::uint64_t live_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t recovered_ = 0;
  std::unordered_map<Hash256, Slot> index_;
};

}  // namespace

std::unique_ptr<StateBackend> make_state_backend(const StorageConfig& config,
                                                 const std::string& dir,
                                                 bool truncate) {
  if (config.mode == StorageMode::kDisk)
    return std::make_unique<MmapStateBackend>(dir, truncate);
  return std::make_unique<MemoryStateBackend>();
}

}  // namespace dlt::storage
