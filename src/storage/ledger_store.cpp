#include "storage/ledger_store.hpp"

namespace dlt::storage {

LedgerStore::LedgerStore(const StorageConfig& config,
                         const std::string& instance, bool truncate)
    : config_(config) {
  if (config_.mode == StorageMode::kDisk) {
    const std::string root =
        config_.path.empty() ? std::string("dlt-storage") : config_.path;
    dir_ = root + "/" + instance;
  }

  BlockLog::Options log_options;
  log_options.mode = config_.mode;
  log_options.dir = dir_;
  log_options.segment_bytes = config_.segment_bytes;
  log_options.truncate = truncate;
  log_ = std::make_unique<BlockLog>(std::move(log_options));
  state_ = make_state_backend(config_, dir_, truncate);
}

void LedgerStore::attach_probe(const obs::Probe& probe) {
  g_log_bytes_ = probe.gauge("storage.log_bytes");
  g_state_bytes_ = probe.gauge("storage.state_bytes");
  g_segments_ = probe.gauge("storage.segments");
  g_pruned_bytes_ = probe.gauge("storage.pruned_bytes");
  commit();
}

void LedgerStore::commit() {
  obs::set(g_log_bytes_, static_cast<double>(log_->physical_bytes()));
  obs::set(g_state_bytes_, static_cast<double>(state_->physical_bytes()));
  obs::set(g_segments_, static_cast<double>(log_->segment_count()));
  obs::set(g_pruned_bytes_, static_cast<double>(pruned_bytes_));
  if (config_.sync_on_commit) {
    log_->sync();
    state_->sync();
  }
}

}  // namespace dlt::storage
