// Storage-layer configuration shared by every ledger and cluster driver.
//
// Two modes behind one switch:
//   kMemory — the log and state backend live in RAM (the historical
//             behaviour; nothing touches the filesystem).
//   kDisk   — the same data structures write through to an append-only
//             segmented log plus a memory-mapped state arena under
//             `path/<instance>/`.
//
// The determinism contract (DESIGN.md "Storage determinism contract")
// requires that every byte-accounting figure the simulation can observe —
// frame sizes, segment rotation points, physical/live/dead byte gauges —
// is computed by identical arithmetic in both modes, so switching modes
// can never shift a trace or a RunMetrics value.
#pragma once

#include <cstddef>
#include <string>

namespace dlt::storage {

enum class StorageMode {
  kMemory,
  kDisk,
};

const char* to_string(StorageMode mode);

struct StorageConfig {
  StorageMode mode = StorageMode::kMemory;
  /// Root directory for disk mode; each ledger instance gets its own
  /// subdirectory. Empty means "dlt-storage" under the working directory.
  std::string path;
  /// Log segment rotation threshold. Rotation is pure arithmetic on
  /// appended bytes, identical across modes.
  std::size_t segment_bytes = 1u << 20;
  /// fsync/msync the log and arena at every LedgerStore::commit(). Off by
  /// default: benches measure sizes, not fsync latency, and recovery
  /// correctness is exercised by the torn-tail tests either way.
  bool sync_on_commit = false;
};

/// Applies the `DLT_STORAGE` environment override used by benches and the
/// determinism gate, logging the resolved config when present:
///   DLT_STORAGE=memory          — in-RAM backends (the default)
///   DLT_STORAGE=disk            — disk backends under ./dlt-storage
///   DLT_STORAGE=disk:/some/dir  — disk backends under /some/dir
/// Unset or invalid values leave `config` untouched.
void apply_env_storage(StorageConfig& config);

}  // namespace dlt::storage
