// CRC-32 (IEEE 802.3 polynomial, reflected) for storage-frame integrity.
//
// Every record appended to the block log or state arena carries a CRC over
// its type, key and payload; reopen treats the first mismatch as a torn
// tail and truncates there. Table-based, no dependencies.
#pragma once

#include <array>
#include <cstdint>

#include "support/bytes.hpp"

namespace dlt::storage {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// Incremental update: feed successive chunks with the running value
/// (start from crc32_init()), finish with crc32_final().
inline std::uint32_t crc32_update(std::uint32_t crc, ByteView data) {
  for (Byte b : data)
    crc = detail::kCrc32Table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  return crc;
}

inline constexpr std::uint32_t crc32_init() { return 0xFFFFFFFFu; }
inline constexpr std::uint32_t crc32_final(std::uint32_t crc) {
  return crc ^ 0xFFFFFFFFu;
}

inline std::uint32_t crc32(ByteView data) {
  return crc32_final(crc32_update(crc32_init(), data));
}

}  // namespace dlt::storage
